package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/metrics"
	"astro/internal/shard"
	"astro/internal/types"
)

// Smallbank (paper §VI-C2) is the BLOCKBENCH adaptation of the H-Store
// Smallbank benchmark: bank accounts with a checking and a savings xlog
// per owner, exercised by six transaction types. Same-owner transactions
// appear as full payments between the owner's two xlogs; cross-owner
// transactions move funds between checking accounts and are the ones that
// may cross shards.

// OpKind enumerates the Smallbank transaction family.
type OpKind int

// The six Smallbank transaction types.
const (
	OpTransactSavings OpKind = iota + 1 // adjust savings (savings -> checking)
	OpDepositChecking                   // deposit to checking (savings -> checking)
	OpSendPayment                       // checking -> partner checking
	OpWriteCheck                        // checking -> partner checking
	OpAmalgamate                        // move savings into checking
	OpQuery                             // read both balances
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpTransactSavings:
		return "TransactSavings"
	case OpDepositChecking:
		return "DepositChecking"
	case OpSendPayment:
		return "SendPayment"
	case OpWriteCheck:
		return "WriteCheck"
	case OpAmalgamate:
		return "Amalgamate"
	case OpQuery:
		return "Query"
	default:
		return "Unknown"
	}
}

// Account id scheme: owner o holds checking xlog 2o and savings xlog 2o+1.
// Both map to the same shard, as the paper requires.

// CheckingOf returns the checking xlog of an owner.
func CheckingOf(owner int) types.ClientID { return types.ClientID(2 * owner) }

// SavingsOf returns the savings xlog of an owner.
func SavingsOf(owner int) types.ClientID { return types.ClientID(2*owner + 1) }

// OwnerOf inverts the account mapping.
func OwnerOf(c types.ClientID) int { return int(c / 2) }

// Maps derives the sharding maps for the Smallbank account scheme over a
// topology: both xlogs of an owner land in the same shard
// (owner mod NumShards), and representatives spread owners round-robin
// within the shard.
func Maps(top shard.Topology) (shardOf func(types.ClientID) types.ShardID, repOf func(types.ClientID) types.ReplicaID) {
	shardOf = func(c types.ClientID) types.ShardID {
		return types.ShardID(OwnerOf(c) % top.NumShards)
	}
	repOf = func(c types.ClientID) types.ReplicaID {
		o := OwnerOf(c)
		s := o % top.NumShards
		within := (o / top.NumShards) % top.PerShard
		return types.ReplicaID(s*top.PerShard + within)
	}
	return shardOf, repOf
}

// BalanceQuerier is the optional client capability used by OpQuery.
type BalanceQuerier interface {
	QueryBalance(timeout time.Duration) (types.Amount, error)
}

// OwnerHandles bundles one owner's two payment clients.
type OwnerHandles struct {
	Owner    int
	Checking PaymentClient
	Savings  PaymentClient
}

// SmallbankConfig drives the Smallbank workload.
type SmallbankConfig struct {
	// Owners are the closed-loop workers, one goroutine each.
	Owners []OwnerHandles
	// Topology is used to classify cross-shard operations.
	Topology shard.Topology
	// CrossShardTarget is the desired fraction of cross-shard
	// transactions over all transactions; the paper's Smallbank setup
	// yields 12.5%. The generator derives the partner-selection bias
	// from it. Default 0.125.
	CrossShardTarget float64
	// Duration is how long to generate load.
	Duration time.Duration
	// OpTimeout bounds each confirmation wait. Default 30s.
	OpTimeout time.Duration
	// Hist records per-transaction latency; Timeline counts completions.
	Hist     *metrics.Histogram
	Timeline *metrics.Timeline
	// Seed makes runs reproducible.
	Seed int64
}

// SmallbankResult extends Result with the measured operation mix.
type SmallbankResult struct {
	Result
	// CrossShardOps counts transactions whose spender and beneficiary
	// xlogs live in different shards.
	CrossShardOps uint64
	// PerKind counts completed transactions by type.
	PerKind map[OpKind]uint64
}

// CrossShardFraction returns the measured cross-shard share.
func (r SmallbankResult) CrossShardFraction() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.CrossShardOps) / float64(r.Ops)
}

// RunSmallbank runs the Smallbank workload.
func RunSmallbank(cfg SmallbankConfig) SmallbankResult {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.CrossShardTarget <= 0 {
		cfg.CrossShardTarget = 0.125
	}
	// Only SendPayment and WriteCheck (2 of 6 kinds) can cross shards;
	// bias their partner choice so the overall fraction hits the target.
	crossBias := cfg.CrossShardTarget * 6 / 2
	if cfg.Topology.NumShards < 2 {
		crossBias = 0
	}
	if crossBias > 1 {
		crossBias = 1
	}

	var ops, errs, cross atomic.Uint64
	perKind := make([]atomic.Uint64, OpQuery+1)
	stop := make(chan struct{})
	start := time.Now()

	var wg sync.WaitGroup
	for i, oh := range cfg.Owners {
		wg.Add(1)
		go func(idx int, oh OwnerHandles) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)*7919))
			for {
				select {
				case <-stop:
					return
				default:
				}
				kind := OpKind(rng.Intn(6) + 1)
				t0 := time.Now()
				isCross, err := runOp(rng, cfg, oh, kind, crossBias)
				if err != nil {
					errs.Add(1)
					continue
				}
				ops.Add(1)
				perKind[kind].Add(1)
				if isCross {
					cross.Add(1)
				}
				if cfg.Hist != nil {
					cfg.Hist.Record(time.Since(t0))
				}
				if cfg.Timeline != nil {
					cfg.Timeline.Add(1)
				}
			}
		}(i, oh)
	}

	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()

	res := SmallbankResult{
		Result:        Result{Ops: ops.Load(), Errors: errs.Load(), Elapsed: time.Since(start)},
		CrossShardOps: cross.Load(),
		PerKind:       make(map[OpKind]uint64),
	}
	for k := OpTransactSavings; k <= OpQuery; k++ {
		if n := perKind[k].Load(); n > 0 {
			res.PerKind[k] = n
		}
	}
	return res
}

// runOp executes one Smallbank transaction and reports whether it crossed
// shards.
func runOp(rng *rand.Rand, cfg SmallbankConfig, oh OwnerHandles, kind OpKind, crossBias float64) (bool, error) {
	amount := types.Amount(rng.Int63n(10) + 1)
	switch kind {
	case OpTransactSavings, OpDepositChecking:
		// Same-owner transfer savings -> checking: a full payment
		// between two xlogs of the same shard.
		return false, payWait(oh.Savings, CheckingOf(oh.Owner), amount, cfg.OpTimeout)
	case OpAmalgamate:
		// Move a larger chunk of savings into checking.
		return false, payWait(oh.Savings, CheckingOf(oh.Owner), amount*5, cfg.OpTimeout)
	case OpSendPayment, OpWriteCheck:
		partner := pickPartner(rng, cfg, oh.Owner, crossBias)
		isCross := cfg.Topology.NumShards > 1 && partner%cfg.Topology.NumShards != oh.Owner%cfg.Topology.NumShards
		return isCross, payWait(oh.Checking, CheckingOf(partner), amount, cfg.OpTimeout)
	case OpQuery:
		if q, ok := oh.Checking.(BalanceQuerier); ok {
			_, err := q.QueryBalance(cfg.OpTimeout)
			return false, err
		}
		return false, nil
	default:
		return false, nil
	}
}

func payWait(cl PaymentClient, b types.ClientID, x types.Amount, timeout time.Duration) error {
	id, err := cl.Pay(b, x)
	if err != nil {
		return err
	}
	return cl.WaitConfirm(id, timeout)
}

// pickPartner selects a counterparty owner, biased toward other shards
// with probability crossBias.
func pickPartner(rng *rand.Rand, cfg SmallbankConfig, self int, crossBias float64) int {
	n := len(cfg.Owners)
	if n <= 1 {
		return self
	}
	wantCross := cfg.Topology.NumShards > 1 && rng.Float64() < crossBias
	for attempt := 0; attempt < 16; attempt++ {
		p := cfg.Owners[rng.Intn(n)].Owner
		if p == self {
			continue
		}
		isCross := p%cfg.Topology.NumShards != self%cfg.Topology.NumShards
		if isCross == wantCross {
			return p
		}
	}
	// Fall back to any distinct partner.
	for {
		p := cfg.Owners[rng.Intn(n)].Owner
		if p != self {
			return p
		}
	}
}
