package workload

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"astro/internal/metrics"
	"astro/internal/shard"
	"astro/internal/types"
)

// fakeClient is an in-memory PaymentClient with configurable latency.
type fakeClient struct {
	id      types.ClientID
	latency time.Duration
	fail    bool

	mu   sync.Mutex
	seq  types.Seq
	paid []types.Payment
	bal  types.Amount
}

func (f *fakeClient) ID() types.ClientID { return f.id }

func (f *fakeClient) Pay(b types.ClientID, x types.Amount) (types.PaymentID, error) {
	if f.fail {
		return types.PaymentID{}, errors.New("fake failure")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	f.paid = append(f.paid, types.Payment{Spender: f.id, Seq: f.seq, Beneficiary: b, Amount: x})
	return types.PaymentID{Spender: f.id, Seq: f.seq}, nil
}

func (f *fakeClient) WaitConfirm(types.PaymentID, time.Duration) error {
	time.Sleep(f.latency)
	return nil
}

func (f *fakeClient) QueryBalance(time.Duration) (types.Amount, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bal, nil
}

func (f *fakeClient) payments() []types.Payment {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]types.Payment, len(f.paid))
	copy(out, f.paid)
	return out
}

func TestRunUniform(t *testing.T) {
	a := &fakeClient{id: 1, latency: time.Millisecond}
	b := &fakeClient{id: 2, latency: time.Millisecond}
	hist := &metrics.Histogram{}
	tl := metrics.NewTimeline(10, 100*time.Millisecond)
	res := RunUniform(UniformConfig{
		Clients:       []PaymentClient{a, b},
		Beneficiaries: []types.ClientID{1, 2, 3},
		Duration:      200 * time.Millisecond,
		MaxAmount:     50,
		Hist:          hist,
		Timeline:      tl,
		Seed:          1,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if hist.Count() != res.Ops {
		t.Errorf("hist count %d != ops %d", hist.Count(), res.Ops)
	}
	if res.Throughput() <= 0 {
		t.Error("throughput not positive")
	}
	// Amounts within bounds, beneficiaries from the pool, no self-pay
	// unless forced.
	for _, p := range append(a.payments(), b.payments()...) {
		if p.Amount < 1 || p.Amount > 50 {
			t.Fatalf("amount %d out of range", p.Amount)
		}
		if p.Beneficiary != 1 && p.Beneficiary != 2 && p.Beneficiary != 3 {
			t.Fatalf("beneficiary %d not in pool", p.Beneficiary)
		}
	}
	var binTotal uint64
	for _, n := range tl.Bins() {
		binTotal += n
	}
	if binTotal != res.Ops {
		t.Errorf("timeline total %d != ops %d", binTotal, res.Ops)
	}
}

func TestRunUniformCountsErrors(t *testing.T) {
	a := &fakeClient{id: 1, fail: true}
	res := RunUniform(UniformConfig{
		Clients:       []PaymentClient{a},
		Beneficiaries: []types.ClientID{2},
		Duration:      50 * time.Millisecond,
	})
	if res.Ops != 0 {
		t.Error("failed ops counted as success")
	}
	if res.Errors == 0 {
		t.Error("errors not counted")
	}
}

func TestAccountScheme(t *testing.T) {
	if CheckingOf(3) != 6 || SavingsOf(3) != 7 {
		t.Error("account ids wrong")
	}
	if OwnerOf(CheckingOf(5)) != 5 || OwnerOf(SavingsOf(5)) != 5 {
		t.Error("OwnerOf not inverse")
	}
}

func TestSmallbankMapsSameShard(t *testing.T) {
	top := shard.Topology{NumShards: 3, PerShard: 4}
	shardOf, repOf := Maps(top)
	for o := 0; o < 60; o++ {
		chk, sav := CheckingOf(o), SavingsOf(o)
		if shardOf(chk) != shardOf(sav) {
			t.Fatalf("owner %d xlogs in different shards", o)
		}
		if top.ReplicaShard(repOf(chk)) != shardOf(chk) {
			t.Fatalf("owner %d representative outside shard", o)
		}
	}
}

func TestRunSmallbank(t *testing.T) {
	top := shard.Topology{NumShards: 2, PerShard: 4}
	var owners []OwnerHandles
	for o := 0; o < 8; o++ {
		owners = append(owners, OwnerHandles{
			Owner:    o,
			Checking: &fakeClient{id: CheckingOf(o), latency: time.Millisecond, bal: 100},
			Savings:  &fakeClient{id: SavingsOf(o), latency: time.Millisecond, bal: 100},
		})
	}
	hist := &metrics.Histogram{}
	res := RunSmallbank(SmallbankConfig{
		Owners:   owners,
		Topology: top,
		Duration: 300 * time.Millisecond,
		Hist:     hist,
		Seed:     2,
	})
	if res.Ops == 0 {
		t.Fatal("no smallbank ops completed")
	}
	if res.Errors != 0 {
		t.Errorf("errors = %d", res.Errors)
	}
	if len(res.PerKind) < 4 {
		t.Errorf("op mix too narrow: %v", res.PerKind)
	}
	// Cross-shard fraction should be in the neighbourhood of the 12.5%
	// target (generous tolerance for a short run).
	frac := res.CrossShardFraction()
	if frac <= 0.02 || frac >= 0.4 {
		t.Errorf("cross-shard fraction = %.3f, want ~0.125", frac)
	}
}

func TestSmallbankSingleShardNoCross(t *testing.T) {
	top := shard.Topology{NumShards: 1, PerShard: 4}
	var owners []OwnerHandles
	for o := 0; o < 4; o++ {
		owners = append(owners, OwnerHandles{
			Owner:    o,
			Checking: &fakeClient{id: CheckingOf(o)},
			Savings:  &fakeClient{id: SavingsOf(o)},
		})
	}
	res := RunSmallbank(SmallbankConfig{
		Owners:   owners,
		Topology: top,
		Duration: 100 * time.Millisecond,
		Seed:     3,
	})
	if res.CrossShardOps != 0 {
		t.Errorf("cross-shard ops on a single shard: %d", res.CrossShardOps)
	}
}

func TestOpKindString(t *testing.T) {
	kinds := []OpKind{OpTransactSavings, OpDepositChecking, OpSendPayment, OpWriteCheck, OpAmalgamate, OpQuery}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "Unknown" || seen[s] {
			t.Errorf("bad name for %d: %q", k, s)
		}
		seen[s] = true
	}
	if OpKind(0).String() != "Unknown" {
		t.Error("zero kind should be Unknown")
	}
}

func TestResultThroughput(t *testing.T) {
	r := Result{Ops: 100, Elapsed: 2 * time.Second}
	if r.Throughput() != 50 {
		t.Errorf("throughput = %v", r.Throughput())
	}
	if (Result{}).Throughput() != 0 {
		t.Error("zero result throughput")
	}
}

func TestPopulationSynthesizesPool(t *testing.T) {
	a := &fakeClient{id: 1}
	res := RunUniform(UniformConfig{
		Clients:    []PaymentClient{a},
		Population: 100,
		Duration:   30 * time.Millisecond,
		Seed:       4,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	for _, p := range a.payments() {
		if p.Beneficiary < 1 || p.Beneficiary > 100 {
			t.Fatalf("beneficiary %d outside population 1..100", p.Beneficiary)
		}
	}
}

func TestZipfBeneficiarySkew(t *testing.T) {
	pool := make([]types.ClientID, 1000)
	for i := range pool {
		pool[i] = types.ClientID(i + 1)
	}
	const draws = 20000

	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(len(pool)-1))
	skewed := map[types.ClientID]int{}
	for i := 0; i < draws; i++ {
		skewed[pickBeneficiary(rng, zipf, pool, 0)]++
	}
	// Zipf s=1.5 gives rank 1 a ~1/zeta(1.5) ~ 38% share.
	if frac := float64(skewed[1]) / draws; frac < 0.15 {
		t.Errorf("rank-1 share under skew = %.3f, want > 0.15", frac)
	}

	rng = rand.New(rand.NewSource(7))
	uniform := map[types.ClientID]int{}
	for i := 0; i < draws; i++ {
		uniform[pickBeneficiary(rng, nil, pool, 0)]++
	}
	for c, n := range uniform {
		if frac := float64(n) / draws; frac > 0.02 {
			t.Errorf("uniform draw favors %d with share %.3f", c, frac)
		}
	}
}

func TestSkewedRunStaysInPopulation(t *testing.T) {
	a := &fakeClient{id: 1}
	res := RunUniform(UniformConfig{
		Clients:    []PaymentClient{a},
		Population: 500,
		Skew:       1.3,
		Duration:   30 * time.Millisecond,
		Seed:       5,
	})
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	counts := map[types.ClientID]int{}
	for _, p := range a.payments() {
		if p.Beneficiary < 1 || p.Beneficiary > 500 {
			t.Fatalf("beneficiary %d outside population", p.Beneficiary)
		}
		counts[p.Beneficiary]++
	}
	// The skewed draw concentrates: far fewer distinct beneficiaries than
	// a uniform draw over 500 would touch in the same number of payments.
	if len(counts) >= int(res.Ops) {
		t.Errorf("no concentration: %d distinct beneficiaries over %d ops", len(counts), res.Ops)
	}
}
