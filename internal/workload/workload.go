// Package workload provides the load generators of the evaluation: a
// uniform closed-loop payment workload (the microbenchmarks of §VI-C1 and
// the robustness experiments of §VI-D) and the Smallbank transaction
// family (§VI-C2).
//
// Clients are closed-loop, like the paper's client threads: each submits a
// payment, waits for its confirmation, and immediately submits the next.
// Offered load is controlled by the number of concurrent clients.
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/metrics"
	"astro/internal/types"
)

// PaymentClient abstracts over core.Client (Astro) and consensus.Client
// (baseline): submit a payment, then wait for its confirmation.
type PaymentClient interface {
	ID() types.ClientID
	Pay(b types.ClientID, x types.Amount) (types.PaymentID, error)
	WaitConfirm(id types.PaymentID, timeout time.Duration) error
}

// UniformConfig drives a uniform random-transfer workload.
type UniformConfig struct {
	// Clients are the closed-loop workers.
	Clients []PaymentClient
	// Beneficiaries is the pool of destination accounts; each payment
	// picks one uniformly (excluding the spender when possible).
	Beneficiaries []types.ClientID
	// Population synthesizes the beneficiary pool when Beneficiaries is
	// empty: destination accounts are client IDs 1..Population. Large
	// populations are how the paged-state experiments open up an account
	// space far wider than any client set — most of it receives a payment
	// rarely or never and stays cold.
	Population int
	// Skew is the Zipf exponent of the beneficiary draw: rank 1 (the
	// first pool entry) is the most popular, frequency falling off as
	// rank^-Skew. Values > 1 enable the skewed picker (math/rand's Zipf
	// generator requires s > 1); 0 or anything <= 1 keeps the uniform
	// draw. Skewed draws over a large Population reproduce the
	// hot-set/cold-tail pattern bounded-residency paging is built for.
	Skew float64
	// Duration is how long to generate load.
	Duration time.Duration
	// MaxAmount bounds the uniformly drawn payment amount (>= 1).
	MaxAmount types.Amount
	// OpTimeout bounds each confirmation wait. Default 30s.
	OpTimeout time.Duration
	// Hist, if non-nil, records per-payment confirmation latencies.
	Hist *metrics.Histogram
	// Timeline, if non-nil, counts confirmations over time.
	Timeline *metrics.Timeline
	// Seed makes the generated sequence reproducible.
	Seed int64
}

// Result summarizes a load run.
type Result struct {
	// Ops is the number of confirmed payments.
	Ops uint64
	// Errors is the number of failed or timed-out operations.
	Errors uint64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
}

// Throughput returns confirmed payments per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunUniform runs the uniform workload until the configured duration
// elapses and returns aggregate results.
func RunUniform(cfg UniformConfig) Result {
	if cfg.OpTimeout <= 0 {
		cfg.OpTimeout = 30 * time.Second
	}
	if cfg.MaxAmount < 1 {
		cfg.MaxAmount = 1
	}
	pool := cfg.Beneficiaries
	if len(pool) == 0 && cfg.Population > 0 {
		pool = make([]types.ClientID, cfg.Population)
		for i := range pool {
			pool[i] = types.ClientID(i + 1)
		}
	}
	var ops, errs atomic.Uint64
	stop := make(chan struct{})
	start := time.Now()

	var wg sync.WaitGroup
	for i, cl := range cfg.Clients {
		wg.Add(1)
		go func(idx int, cl PaymentClient) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(idx)))
			var zipf *rand.Zipf
			if cfg.Skew > 1 && len(pool) > 0 {
				zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(len(pool)-1))
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				b := pickBeneficiary(rng, zipf, pool, cl.ID())
				x := types.Amount(rng.Int63n(int64(cfg.MaxAmount))) + 1
				t0 := time.Now()
				id, err := cl.Pay(b, x)
				if err != nil {
					errs.Add(1)
					continue
				}
				if err := cl.WaitConfirm(id, cfg.OpTimeout); err != nil {
					errs.Add(1)
					continue
				}
				lat := time.Since(t0)
				ops.Add(1)
				if cfg.Hist != nil {
					cfg.Hist.Record(lat)
				}
				if cfg.Timeline != nil {
					cfg.Timeline.Add(1)
				}
			}
		}(i, cl)
	}

	time.Sleep(cfg.Duration)
	close(stop)
	wg.Wait()
	return Result{Ops: ops.Load(), Errors: errs.Load(), Elapsed: time.Since(start)}
}

func pickBeneficiary(rng *rand.Rand, zipf *rand.Zipf, pool []types.ClientID, self types.ClientID) types.ClientID {
	if len(pool) == 0 {
		return self
	}
	draw := func() types.ClientID {
		if zipf != nil {
			return pool[zipf.Uint64()]
		}
		return pool[rng.Intn(len(pool))]
	}
	for attempt := 0; attempt < 4; attempt++ {
		if b := draw(); b != self {
			return b
		}
	}
	return pool[rng.Intn(len(pool))]
}
