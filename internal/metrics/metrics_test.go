package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero histogram not zero")
	}
	for i := 0; i < 100; i++ {
		h.Record(10 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	if m := h.Mean(); m != 10*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	p50 := h.Quantile(0.5)
	if p50 < 9*time.Millisecond || p50 > 12*time.Millisecond {
		t.Errorf("p50 = %v, want ~10ms", p50)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: %v %v %v", p50, p95, p99)
	}
	// ~5% bucket resolution: p95 should be near 950ms.
	if p95 < 900*time.Millisecond || p95 > 1050*time.Millisecond {
		t.Errorf("p95 = %v, want ~950ms", p95)
	}
}

func TestHistogramQuantileBoundProperty(t *testing.T) {
	// For any sample set, Quantile(q) is an upper bound on at least a q
	// fraction of samples, within bucket resolution.
	f := func(samples []uint32, qRaw uint8) bool {
		if len(samples) == 0 {
			return true
		}
		q := float64(qRaw%100+1) / 100
		var h Histogram
		for _, s := range samples {
			h.Record(time.Duration(s%1_000_000) * time.Microsecond)
		}
		bound := h.Quantile(q)
		below := 0
		for _, s := range samples {
			if time.Duration(s%1_000_000)*time.Microsecond <= bound {
				below++
			}
		}
		return float64(below) >= q*float64(len(samples))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Record(-time.Second) // clamped to 0
	h.Record(0)
	h.Record(time.Nanosecond)
	h.Record(24 * time.Hour) // clamped to top bucket
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Quantile(1) < time.Minute {
		t.Error("max sample lost")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline(10, 50*time.Millisecond)
	tl.Add(3)
	tl.Add(2)
	time.Sleep(60 * time.Millisecond)
	tl.Add(7)
	bins := tl.Bins()
	if bins[0] != 5 {
		t.Errorf("bin 0 = %d, want 5", bins[0])
	}
	var total uint64
	for _, b := range bins {
		total += b
	}
	if total != 12 {
		t.Errorf("total = %d, want 12", total)
	}
	if r := tl.Rate(10); r != 200 {
		t.Errorf("Rate(10) = %v with 50ms bins, want 200", r)
	}
	if tl.BinWidth() != 50*time.Millisecond {
		t.Error("BinWidth")
	}
}

func TestTimelineOutOfRangeDropped(t *testing.T) {
	tl := NewTimeline(1, 10*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	tl.Add(5) // beyond the window
	if tl.Bins()[0] != 0 {
		t.Error("out-of-window event recorded")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.String()
	if s == "" {
		t.Error("empty String()")
	}
}
