// Package metrics provides the measurement instruments of the experiment
// harness: a thread-safe log-bucketed latency histogram (for the paper's
// average/95th/99th percentile latencies) and a per-second throughput
// timeline (for the robustness figures).
package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Histogram records durations into geometrically spaced buckets covering
// 1µs to ~17 minutes with ~5% resolution. All methods are safe for
// concurrent use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
}

const (
	numBuckets  = 420
	bucketBase  = 1000.0 // 1µs in ns
	bucketRatio = 1.05   // ~5% resolution; covers ~1µs to ~13min
)

var bucketBounds [numBuckets]float64

func init() {
	b := bucketBase
	for i := 0; i < numBuckets; i++ {
		bucketBounds[i] = b
		b *= bucketRatio
	}
}

// bucketFor returns the index of the bucket containing d.
func bucketFor(d time.Duration) int {
	ns := float64(d.Nanoseconds())
	if ns <= bucketBase {
		return 0
	}
	i := int(math.Log(ns/bucketBase) / math.Log(bucketRatio))
	if i >= numBuckets {
		return numBuckets - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the average observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) with the
// histogram's bucket resolution.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return time.Duration(bucketBounds[i] * bucketRatio)
		}
	}
	return time.Duration(bucketBounds[numBuckets-1] * bucketRatio)
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v",
		h.Count(), h.Mean().Round(time.Millisecond),
		h.Quantile(0.50).Round(time.Millisecond),
		h.Quantile(0.95).Round(time.Millisecond),
		h.Quantile(0.99).Round(time.Millisecond))
}

// EWMA is an exponentially weighted moving average of durations with a
// fixed 7/8 decay — the smoothing the scheduler uses for per-lane task
// queue latency and the chain signers use for signing cost. Observations
// and reads are lock-free; concurrent observers may each fold their sample
// into the same predecessor (a lost update), which only weakens the
// smoothing, never corrupts the value — fine for an instrument.
type EWMA struct {
	v atomic.Int64 // nanoseconds; 0 = no observation yet
}

// Observe folds one sample into the average. The first sample seeds it.
func (e *EWMA) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	old := e.v.Load()
	if old == 0 {
		e.v.Store(int64(d))
		return
	}
	e.v.Store((7*old + int64(d)) / 8)
}

// Set overwrites the average (seeding from a probe measurement).
func (e *EWMA) Set(d time.Duration) { e.v.Store(int64(d)) }

// Value returns the current average; zero means nothing was observed.
func (e *EWMA) Value() time.Duration { return time.Duration(e.v.Load()) }

// Timeline counts events into fixed-width time bins from a start instant —
// the throughput-over-time curves of the robustness experiments.
type Timeline struct {
	start time.Time
	width time.Duration
	bins  []atomic.Uint64
}

// NewTimeline creates a timeline covering n bins of the given width
// starting now.
func NewTimeline(n int, width time.Duration) *Timeline {
	if n < 1 {
		n = 1
	}
	if width <= 0 {
		width = time.Second
	}
	return &Timeline{start: time.Now(), width: width, bins: make([]atomic.Uint64, n)}
}

// Add records count events at the current instant. Events outside the
// covered window are dropped.
func (t *Timeline) Add(count uint64) {
	i := int(time.Since(t.start) / t.width)
	if i < 0 || i >= len(t.bins) {
		return
	}
	t.bins[i].Add(count)
}

// BinWidth returns the bin width.
func (t *Timeline) BinWidth() time.Duration { return t.width }

// Bins returns a snapshot of all bin counts.
func (t *Timeline) Bins() []uint64 {
	out := make([]uint64, len(t.bins))
	for i := range t.bins {
		out[i] = t.bins[i].Load()
	}
	return out
}

// Rate converts a bin count into events per second.
func (t *Timeline) Rate(count uint64) float64 {
	return float64(count) / t.width.Seconds()
}
