// Package shard defines the static sharding topology of an Astro II
// deployment (paper §V): the partition of replicas into shards, the
// assignment of xlogs (clients) to shards, and the representative mapping
// within each shard.
//
// The topology is pure data — the cross-shard protocol itself (CREDIT
// messages and dependency certificates) lives in internal/core and is
// driven entirely by these mappings: the spender's shard broadcasts and
// settles; settling replicas unicast CREDITs to the beneficiary's
// representative, which may be in another shard.
package shard

import (
	"fmt"

	"astro/internal/types"
)

// Topology describes a sharded deployment with uniform shard sizes.
// Replica identities are assigned in contiguous blocks: shard s owns
// replicas [s·PerShard, (s+1)·PerShard).
type Topology struct {
	// NumShards is the number of shards (>= 1).
	NumShards int
	// PerShard is the number of replicas in each shard; the Byzantine
	// threshold applies per shard (paper §V), so PerShard >= 3f+1.
	PerShard int
}

// Validate checks the topology is well-formed.
func (t Topology) Validate() error {
	if t.NumShards < 1 {
		return fmt.Errorf("shard: NumShards = %d", t.NumShards)
	}
	if t.PerShard < 4 {
		return fmt.Errorf("shard: PerShard = %d, need >= 4 (3f+1, f>=1)", t.PerShard)
	}
	return nil
}

// F returns the per-shard Byzantine fault threshold.
func (t Topology) F() int { return types.MaxFaults(t.PerShard) }

// TotalReplicas returns the replica count across all shards.
func (t Topology) TotalReplicas() int { return t.NumShards * t.PerShard }

// Replicas returns the replica identities of one shard.
func (t Topology) Replicas(s types.ShardID) []types.ReplicaID {
	out := make([]types.ReplicaID, t.PerShard)
	base := int(s) * t.PerShard
	for i := range out {
		out[i] = types.ReplicaID(base + i)
	}
	return out
}

// AllReplicas returns every replica identity in the deployment.
func (t Topology) AllReplicas() []types.ReplicaID {
	out := make([]types.ReplicaID, 0, t.TotalReplicas())
	for s := 0; s < t.NumShards; s++ {
		out = append(out, t.Replicas(types.ShardID(s))...)
	}
	return out
}

// ReplicaShard maps a replica to its shard.
func (t Topology) ReplicaShard(r types.ReplicaID) types.ShardID {
	return types.ShardID(int(r) / t.PerShard)
}

// ShardOf maps a client (xlog) to the shard replicating it.
func (t Topology) ShardOf(c types.ClientID) types.ShardID {
	return types.ShardID(uint64(c) % uint64(t.NumShards))
}

// RepOf maps a client to its representative replica, which always belongs
// to the client's shard (the representative brokers the client's payments
// into its shard's broadcast group).
func (t Topology) RepOf(c types.ClientID) types.ReplicaID {
	s := t.ShardOf(c)
	within := int(uint64(c) / uint64(t.NumShards) % uint64(t.PerShard))
	return types.ReplicaID(int(s)*t.PerShard + within)
}

// CrossShard reports whether a payment between the two clients crosses a
// shard boundary (spender's shard settles; beneficiary's representative
// lives elsewhere).
func (t Topology) CrossShard(spender, beneficiary types.ClientID) bool {
	return t.ShardOf(spender) != t.ShardOf(beneficiary)
}

// Directory enumerates the replica membership of any shard — nil for a
// shard the caller has no knowledge of. It is the lookup a restarted
// representative needs to reach *another* shard's signers when
// re-requesting CREDIT signatures for cross-shard spenders
// (core.Config.ShardMembers): the spender's shard settled the payment,
// so only its members can re-sign the credit. Topology implements it
// statically; reconfig.ShardDirectory overlays view changes.
type Directory func(types.ShardID) []types.ReplicaID

// Directory returns the topology's static membership directory.
func (t Topology) Directory() Directory {
	return func(s types.ShardID) []types.ReplicaID {
		if int(s) < 0 || int(s) >= t.NumShards {
			return nil
		}
		return t.Replicas(s)
	}
}
