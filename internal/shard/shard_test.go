package shard

import (
	"testing"
	"testing/quick"

	"astro/internal/types"
)

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{NumShards: 2, PerShard: 4}).Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	if err := (Topology{NumShards: 0, PerShard: 4}).Validate(); err == nil {
		t.Error("zero shards accepted")
	}
	if err := (Topology{NumShards: 1, PerShard: 3}).Validate(); err == nil {
		t.Error("sub-quorum shard accepted")
	}
}

func TestTopologyPartition(t *testing.T) {
	top := Topology{NumShards: 3, PerShard: 4}
	if top.TotalReplicas() != 12 {
		t.Fatalf("total = %d", top.TotalReplicas())
	}
	seen := make(map[types.ReplicaID]types.ShardID)
	for s := 0; s < 3; s++ {
		rs := top.Replicas(types.ShardID(s))
		if len(rs) != 4 {
			t.Fatalf("shard %d has %d replicas", s, len(rs))
		}
		for _, r := range rs {
			if prev, dup := seen[r]; dup {
				t.Fatalf("replica %d in shards %d and %d", r, prev, s)
			}
			seen[r] = types.ShardID(s)
			if top.ReplicaShard(r) != types.ShardID(s) {
				t.Errorf("ReplicaShard(%d) = %d, want %d", r, top.ReplicaShard(r), s)
			}
		}
	}
	if len(seen) != 12 {
		t.Errorf("partition covers %d replicas", len(seen))
	}
	if len(top.AllReplicas()) != 12 {
		t.Errorf("AllReplicas = %d", len(top.AllReplicas()))
	}
}

func TestRepOfStaysInShard(t *testing.T) {
	f := func(c uint64, shards, per uint8) bool {
		top := Topology{NumShards: int(shards%5) + 1, PerShard: int(per%13) + 4}
		client := types.ClientID(c)
		rep := top.RepOf(client)
		return top.ReplicaShard(rep) == top.ShardOf(client)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRepOfSpreadsWithinShard(t *testing.T) {
	top := Topology{NumShards: 2, PerShard: 4}
	reps := make(map[types.ReplicaID]int)
	for c := types.ClientID(0); c < 80; c++ {
		reps[top.RepOf(c)]++
	}
	if len(reps) != 8 {
		t.Fatalf("only %d replicas act as representatives", len(reps))
	}
	for r, count := range reps {
		if count != 10 {
			t.Errorf("replica %d represents %d clients, want 10", r, count)
		}
	}
}

func TestCrossShard(t *testing.T) {
	top := Topology{NumShards: 2, PerShard: 4}
	if top.CrossShard(0, 2) { // both even => shard 0
		t.Error("same-shard pair reported cross-shard")
	}
	if !top.CrossShard(0, 1) { // even/odd => shards 0/1
		t.Error("cross-shard pair missed")
	}
}

func TestPerShardFaultThreshold(t *testing.T) {
	top := Topology{NumShards: 4, PerShard: 52}
	if top.F() != 17 {
		t.Errorf("F = %d, want 17 for 52-replica shards", top.F())
	}
}
