package shard_test

import (
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/shard"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// shardedCluster wires a full Astro II deployment over a topology.
type shardedCluster struct {
	t        *testing.T
	net      *memnet.Network
	top      shard.Topology
	replicas map[types.ReplicaID]*core.Replica
	clients  map[types.ClientID]*core.Client
}

func newShardedCluster(t *testing.T, top shard.Topology, genesis func(types.ClientID) types.Amount) *shardedCluster {
	t.Helper()
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := &shardedCluster{
		t:        t,
		net:      memnet.New(memnet.WithSeed(5)),
		top:      top,
		replicas: make(map[types.ReplicaID]*core.Replica),
		clients:  make(map[types.ClientID]*core.Client),
	}
	t.Cleanup(sc.net.Close)

	registry := crypto.NewRegistry()
	keys := make(map[types.ReplicaID]*crypto.KeyPair)
	for _, r := range top.AllReplicas() {
		keys[r] = crypto.MustGenerateKeyPair()
		registry.Add(r, keys[r].Public())
	}
	allShards := make([]types.ShardID, top.NumShards)
	for i := range allShards {
		allShards[i] = types.ShardID(i)
	}

	for s := 0; s < top.NumShards; s++ {
		members := top.Replicas(types.ShardID(s))
		for _, id := range members {
			mux := transport.NewMux(sc.net.Node(transport.ReplicaNode(id)))
			rep, err := core.NewReplica(core.Config{
				Version:      core.AstroII,
				Self:         id,
				Replicas:     members,
				F:            top.F(),
				Mux:          mux,
				RepOf:        top.RepOf,
				ShardOf:      top.ShardOf,
				ReplicaShard: top.ReplicaShard,
				ShardMembers: top.Directory(),
				Shards:       allShards,
				Genesis:      genesis,
				BatchSize:    4,
				BatchDelay:   2 * time.Millisecond,
				Keys:         keys[id],
				Registry:     registry,
			})
			if err != nil {
				t.Fatalf("replica %d: %v", id, err)
			}
			sc.replicas[id] = rep
		}
	}
	return sc
}

func (sc *shardedCluster) client(id types.ClientID) *core.Client {
	if c, ok := sc.clients[id]; ok {
		return c
	}
	mux := transport.NewMux(sc.net.Node(transport.ClientNode(id)))
	c := core.NewClient(id, sc.top.RepOf, mux)
	sc.clients[id] = c
	return c
}

func (sc *shardedCluster) payAndWait(c *core.Client, b types.ClientID, x types.Amount) {
	sc.t.Helper()
	id, err := c.Pay(b, x)
	if err != nil {
		sc.t.Fatal(err)
	}
	if err := c.WaitConfirm(id, 15*time.Second); err != nil {
		sc.t.Fatalf("confirm %v: %v", id, err)
	}
}

func genesisRich(types.ClientID) types.Amount { return 1000 }

func TestCrossShardPayment(t *testing.T) {
	top := shard.Topology{NumShards: 2, PerShard: 4}
	sc := newShardedCluster(t, top, genesisRich)

	// Client 0 lives in shard 0, client 1 in shard 1.
	if !top.CrossShard(0, 1) {
		t.Fatal("test precondition: 0->1 must be cross-shard")
	}
	alice := sc.client(0)
	sc.payAndWait(alice, 1, 100)

	// Every replica of shard 0 eventually settles the withdrawal (the
	// client's confirmation only proves its representative has).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := 0
		for _, id := range top.Replicas(0) {
			if sc.replicas[id].Balance(0) == 900 {
				ok++
			}
		}
		if ok == top.PerShard {
			break
		}
		if time.Now().After(deadline) {
			for _, id := range top.Replicas(0) {
				t.Logf("replica %d: balance(0) = %d", id, sc.replicas[id].Balance(0))
			}
			t.Fatal("shard-0 replicas did not settle the withdrawal")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Shard 1 has not touched client 0's xlog.
	for _, id := range top.Replicas(1) {
		if n := len(sc.replicas[id].XLogSnapshot(0)); n != 0 {
			t.Errorf("shard-1 replica %d holds %d entries of a shard-0 xlog", id, n)
		}
	}
	// The beneficiary's representative (shard 1) accumulates the
	// dependency: spendable balance reflects the transfer.
	repBob := sc.replicas[top.RepOf(1)]
	deadline = time.Now().Add(10 * time.Second)
	for repBob.Balance(1) != 1100 {
		if time.Now().After(deadline) {
			t.Fatalf("beneficiary spendable balance = %d, want 1100", repBob.Balance(1))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCrossShardDependencySpend(t *testing.T) {
	// The beneficiary spends funds received cross-shard: the dependency
	// certificate transfers trust from shard 0 to shard 1 (paper §V).
	top := shard.Topology{NumShards: 2, PerShard: 4}
	gen := func(c types.ClientID) types.Amount {
		if c == 0 {
			return 500
		}
		return 0
	}
	sc := newShardedCluster(t, top, gen)
	alice := sc.client(0) // shard 0
	bob := sc.client(1)   // shard 1

	sc.payAndWait(alice, 1, 200)
	// Bob pays Carol (client 3, shard 1) using only the cross-shard
	// dependency.
	sc.payAndWait(bob, 3, 150)

	for _, id := range top.Replicas(1) {
		deadline := time.Now().Add(10 * time.Second)
		for sc.replicas[id].Balance(1) != 50 {
			if time.Now().After(deadline) {
				t.Fatalf("shard-1 replica %d: balance(1) = %d, want 50", id, sc.replicas[id].Balance(1))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestIntraShardUnaffectedBySharding(t *testing.T) {
	top := shard.Topology{NumShards: 3, PerShard: 4}
	sc := newShardedCluster(t, top, genesisRich)
	// Clients 0 and 3 are both in shard 0 (0 mod 3 == 3 mod 3).
	alice := sc.client(0)
	sc.payAndWait(alice, 3, 250)
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := 0
		for _, id := range top.Replicas(0) {
			if sc.replicas[id].Balance(0) == 750 {
				ok++
			}
		}
		if ok == top.PerShard {
			return
		}
		if time.Now().After(deadline) {
			for _, id := range top.Replicas(0) {
				t.Logf("replica %d: balance = %d", id, sc.replicas[id].Balance(0))
			}
			t.Fatal("balances did not converge")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestShardsProgressIndependently(t *testing.T) {
	// Crash an entire shard: payments within other shards still settle —
	// no cross-shard coordination sits on the critical path (paper §V).
	top := shard.Topology{NumShards: 2, PerShard: 4}
	sc := newShardedCluster(t, top, genesisRich)
	for _, id := range top.Replicas(1) {
		sc.net.Crash(transport.ReplicaNode(id))
	}
	alice := sc.client(0) // shard 0
	sc.payAndWait(alice, 2, 10)
	deadline := time.Now().Add(5 * time.Second)
	for {
		settled := 0
		for _, id := range top.Replicas(0) {
			if sc.replicas[id].SettledCount() > 0 {
				settled++
			}
		}
		if settled == top.PerShard {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d shard-0 replicas settled", settled, top.PerShard)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGlobalConservationAcrossShards(t *testing.T) {
	// Money is conserved system-wide: settled balances plus dependencies
	// pending at representatives account for all genesis funds.
	top := shard.Topology{NumShards: 2, PerShard: 4}
	sc := newShardedCluster(t, top, genesisRich)

	clients := []types.ClientID{0, 1, 2, 3}
	for _, c := range clients {
		sc.client(c)
	}
	sc.payAndWait(sc.client(0), 1, 100) // cross
	sc.payAndWait(sc.client(1), 2, 50)  // cross
	sc.payAndWait(sc.client(2), 0, 25)  // same shard 0? 2->0: both even => shard 0, intra
	sc.payAndWait(sc.client(3), 2, 10)  // 3->2 cross

	// Spendable balance per client as seen by its representative equals
	// genesis +/- transfers once all credits have arrived.
	want := map[types.ClientID]types.Amount{
		0: 1000 - 100 + 25,
		1: 1000 + 100 - 50,
		2: 1000 + 50 - 25 + 10,
		3: 1000 - 10,
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ok := true
		var total types.Amount
		for c, w := range want {
			got := sc.replicas[top.RepOf(c)].Balance(c)
			total += got
			if got != w {
				ok = false
			}
		}
		if ok {
			if total != 4000 {
				t.Fatalf("total = %d, want 4000", total)
			}
			return
		}
		if time.Now().After(deadline) {
			for c, w := range want {
				t.Logf("client %d: got %d want %d", c, sc.replicas[top.RepOf(c)].Balance(c), w)
			}
			t.Fatal("balances did not converge")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
