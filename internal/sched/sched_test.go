package sched

// Ordering-invariant tests for the lane runtime. Run with -race: the FIFO
// and mutual-exclusion tests mutate shared state from flow tasks WITHOUT
// locks, so the race detector itself proves the serialization guarantee.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlowFIFOUnderCrossFlowLoad hammers several flows from concurrent
// submitters and asserts every flow observes its own tasks in submission
// order while other flows churn.
func TestFlowFIFOUnderCrossFlowLoad(t *testing.T) {
	rt := New(4)
	defer rt.Close()

	const flows = 8
	const perFlow = 2000
	type rec struct {
		mu   sync.Mutex
		seqs []int
	}
	recs := make([]*rec, flows)
	var wg sync.WaitGroup
	ns := rt.KeySpace()
	for f := 0; f < flows; f++ {
		recs[f] = &rec{}
		fl := rt.Flow(ns+uint64(f), 64)
		r := recs[f]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perFlow; i++ {
				i := i
				fl.Submit(func() {
					r.mu.Lock()
					r.seqs = append(r.seqs, i)
					r.mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for f := 0; f < flows; f++ {
		for {
			recs[f].mu.Lock()
			n := len(recs[f].seqs)
			recs[f].mu.Unlock()
			if n == perFlow {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("flow %d: %d/%d tasks ran", f, n, perFlow)
			}
			time.Sleep(time.Millisecond)
		}
		for i, s := range recs[f].seqs {
			if s != i {
				t.Fatalf("flow %d: position %d holds task %d — FIFO violated", f, i, s)
			}
		}
	}
}

// TestFlowExclusionUnderStealing runs one flow's tasks against a counter
// with NO synchronization while sibling lanes are kept hungry (so steals
// happen): the race detector proves tasks of one flow never overlap, and
// the final count proves none were lost or doubled.
func TestFlowExclusionUnderStealing(t *testing.T) {
	rt := New(4)
	defer rt.Close()

	const n = 5000
	fl := rt.Flow(rt.KeySpace(), 128)
	var counter int // deliberately unsynchronized
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		fl.Submit(func() {
			counter++
			if counter == n {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("counter = %d, want %d", counter, n)
	}
}

// TestStealRescuesBlockedLane wedges a flow's task on its home lane and
// asserts a second flow homed to the SAME lane still runs — stolen by a
// sibling — so a blocked handler never stalls other serialization
// domains. This is the lane-level form of the transport no-head-of-line
// guarantee.
func TestStealRescuesBlockedLane(t *testing.T) {
	rt := New(2)
	defer rt.Close()

	ns := rt.KeySpace()
	// Find two flows with the same home lane (round-robin homes make
	// every second flow collide on a 2-lane runtime).
	fl1 := rt.Flow(ns+1, 16)
	var fl2 *Flow
	for i := uint64(2); ; i++ {
		fl2 = rt.Flow(ns+i, 16)
		if fl2.Home() == fl1.Home() {
			break
		}
	}

	gate := make(chan struct{})
	entered := make(chan struct{})
	fl1.Submit(func() {
		close(entered)
		<-gate // wedge the home lane
	})
	<-entered

	ran := make(chan struct{})
	fl2.Submit(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("flow on a wedged lane was never stolen by the sibling")
	}
	close(gate)
	if s := rt.Stats(); s.Stolen == 0 {
		t.Fatal("stats report zero steals after a forced steal")
	}
}

// TestHelpFlowsWaitOnEveryLane is the regression test for the Bracha
// settlement deadlock: tasks running on EVERY lane each fan work out to
// other flows and wait for it. With Help (unkeyed-only stealing) this
// deadlocks — keyed flows drain only on lanes, and every lane is the
// waiter; HelpFlows must let each waiter finish its own fan-out on its
// own stack.
func TestHelpFlowsWaitOnEveryLane(t *testing.T) {
	rt := New(2)
	defer rt.Close()

	ns := rt.KeySpace()
	const waiters = 4 // more concurrent waiters than lanes
	var wg sync.WaitGroup
	for w := 0; w < waiters; w++ {
		src := rt.Flow(ns+uint64(w), 16)
		// Fan-out targets deliberately shared across the waiters, like
		// settlement stripes shared across deliverers.
		targets := []*Flow{
			rt.Flow(ns+100, 64),
			rt.Flow(ns+101, 64),
			rt.Flow(ns+102, 64),
		}
		wg.Add(1)
		src.Submit(func() {
			defer wg.Done()
			done := make(chan struct{})
			var pending atomic.Int32
			pending.Store(int32(len(targets)))
			for _, fl := range targets {
				fl.Submit(func() {
					if pending.Add(-1) == 0 {
						close(done)
					}
				})
			}
			rt.HelpFlows(done, targets)
		})
	}
	finished := make(chan struct{})
	go func() {
		wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("fan-out waiters on every lane deadlocked")
	}
}

// TestUnkeyedStealAndHelp checks that unkeyed work spills across lanes,
// that an external goroutine can steal it (RunStolen), and that Help runs
// work until its done channel closes.
func TestUnkeyedStealAndHelp(t *testing.T) {
	rt := New(2)
	defer rt.Close()

	// Wedge both lanes so queued unkeyed tasks can only run via helpers.
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		rt.Submit(func() {
			started <- struct{}{}
			<-gate
		})
	}
	<-started
	<-started

	var ran atomic.Int32
	const n = 50
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		rt.Submit(func() {
			if ran.Add(1) == n {
				close(done)
			}
		})
	}
	rt.Help(done) // the test goroutine itself must be able to drain them
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
	if rt.RunStolen() {
		t.Fatal("RunStolen found work after everything drained")
	}
	close(gate)
}

// TestCloseDrainsQueued asserts Close waits for the in-flight task AND
// runs everything still queued — keyed and unkeyed — before returning
// (futures queued behind a close must still resolve).
func TestCloseDrainsQueued(t *testing.T) {
	rt := New(2)
	fl := rt.Flow(rt.KeySpace(), 64)

	var ran atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{})
	fl.Submit(func() {
		close(entered)
		<-gate
		ran.Add(1)
	})
	<-entered
	const queued = 32
	for i := 0; i < queued; i++ {
		fl.Submit(func() { ran.Add(1) })
		rt.Submit(func() { ran.Add(1) })
	}

	closed := make(chan struct{})
	go func() {
		rt.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a task was still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close never returned")
	}
	if got := ran.Load(); got != 2*queued+1 {
		t.Fatalf("ran %d tasks through Close, want %d (drain lost work)", got, 2*queued+1)
	}

	// Post-close submissions run inline, immediately.
	inline := false
	fl.Submit(func() { inline = true })
	if !inline {
		t.Fatal("post-Close flow submission did not run inline")
	}
	inline = false
	rt.Submit(func() { inline = true })
	if !inline {
		t.Fatal("post-Close unkeyed submission did not run inline")
	}
	rt.Close() // idempotent
}

// TestFlowBackpressure fills a capacity-1 flow behind a wedged task and
// asserts Submit blocks (bounded memory) without losing anything.
func TestFlowBackpressure(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	fl := rt.Flow(rt.KeySpace(), 1)

	gate := make(chan struct{})
	entered := make(chan struct{})
	fl.Submit(func() {
		close(entered)
		<-gate
	})
	<-entered
	fl.Submit(func() {}) // fills the single slot

	blocked := make(chan struct{})
	var ran atomic.Int32
	go func() {
		for i := 0; i < 16; i++ {
			fl.Submit(func() { ran.Add(1) })
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("Submit did not block on a full capacity-1 flow")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("blocked submitter never released after the wedge lifted")
	}
	deadline := time.Now().Add(5 * time.Second)
	for ran.Load() != 16 {
		if time.Now().After(deadline) {
			t.Fatalf("ran %d queued tasks, want 16 — backpressure lost work", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestKeySpaceAndFlowIdentity: same key → same flow; distinct namespaces
// → distinct flows; distinct components can therefore never alias.
func TestKeySpaceAndFlowIdentity(t *testing.T) {
	rt := New(2)
	defer rt.Close()
	ns1, ns2 := rt.KeySpace(), rt.KeySpace()
	if ns1 == ns2 {
		t.Fatal("KeySpace returned the same namespace twice")
	}
	if rt.Flow(ns1+3, 0) != rt.Flow(ns1+3, 0) {
		t.Fatal("same key resolved to two flows")
	}
	if rt.Flow(ns1+3, 0) == rt.Flow(ns2+3, 0) {
		t.Fatal("distinct namespaces aliased one flow")
	}

	// Release unregisters: the key maps to a fresh flow afterwards, and
	// the registry does not grow with departed components.
	fl := rt.Flow(ns1+3, 0)
	before := rt.Stats().Flows
	fl.Release()
	if got := rt.Stats().Flows; got != before-1 {
		t.Fatalf("flows after Release = %d, want %d", got, before-1)
	}
	if rt.Flow(ns1+3, 0) == fl {
		t.Fatal("released flow still resolved by key")
	}
}

// TestSingleLaneSerial: a 1-lane runtime runs everything on one goroutine
// — the fixture mode dedicated pools rely on (wedging the lane provably
// stops all execution).
func TestSingleLaneSerial(t *testing.T) {
	rt := New(1)
	defer rt.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	rt.Submit(func() {
		close(entered)
		<-gate
	})
	<-entered
	ran := make(chan struct{}, 1)
	rt.Submit(func() { ran <- struct{}{} })
	select {
	case <-ran:
		t.Fatal("second task ran while the only lane was wedged")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("task never ran after the lane freed up")
	}
}
