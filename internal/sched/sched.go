package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/metrics"
)

// Task is one unit of work. Tasks must not call Runtime.Close and must not
// assume which goroutine runs them; keyed tasks may additionally assume
// the flow guarantees documented on Flow.
type Task func()

// item is a queued task stamped with its enqueue time, so lanes can track
// queue latency without the submitter's cooperation.
type item struct {
	fn  Task
	enq time.Time
}

// Flow scheduling states; see Flow.state.
const (
	flowIdle uint8 = iota
	flowQueued
	flowRunning
)

// Tunables. Queue capacities bound memory and convert overload into
// submitter backpressure, exactly like the dispatch queues and verifier
// task channel they replace.
const (
	// DefaultFlowQueue is the per-flow task capacity used when a flow is
	// created with capacity <= 0 (matches the old per-channel dispatch
	// queue depth).
	DefaultFlowQueue = 1024
	// DefaultTaskQueue is the per-lane unkeyed task capacity (matches the
	// old verifier channel's workers*128 sizing at typical lane counts).
	DefaultTaskQueue = 256
	// flowDrainBatch bounds how many tasks one scheduling of a flow may
	// run before the flow is requeued, so one busy flow cannot starve the
	// rest of its lane's run queue.
	flowDrainBatch = 32
	// parkSweep is the idle lane's periodic steal sweep. It is the
	// liveness backstop for any wake token lost to a full buffer: parked
	// lanes rescan every runnable queue at least this often.
	parkSweep = time.Millisecond
	// helpPark bounds how long an external helper (Runtime.Help,
	// verifier future waits) sleeps between steal sweeps.
	helpPark = 200 * time.Microsecond
)

// Runtime is a lane-based worker runtime: a fixed set of worker goroutines
// ("lanes"), each draining a bounded local run queue, with bounded
// work-stealing between lanes. It is the single concurrency substrate of
// the hot path — transport dispatch, settlement stripe fan-out, and
// signature verify/sign work all execute on the same lanes. See doc.go
// for the ordering and blocking discipline.
type Runtime struct {
	lanes []*lane

	taskCap int

	done chan struct{}

	// closeMu guards closed against concurrent submissions: unkeyed
	// submitters hold the read side across their (non-blocking) channel
	// sends, so no task can be enqueued after Close has decided to drain.
	closeMu sync.RWMutex
	closed  bool

	wg sync.WaitGroup

	// rr spreads flow homes and unkeyed submissions round-robin across
	// lanes: consecutive flow creations land on distinct lanes, so the
	// channels of one endpoint (or the stripes of one replica) are
	// lane-affine AND spread, without a hash's collision luck.
	rr atomic.Uint64

	// keyNS hands out disjoint key namespaces (KeySpace), so independent
	// components never alias each other's flows on the shared runtime.
	keyNS atomic.Uint64

	flowMu      sync.Mutex
	flows       map[uint64]*Flow
	flowsClosed bool
}

// lane is one worker: a pinned goroutine, a run queue of runnable flows,
// and a bounded channel of unkeyed (stealable) tasks.
type lane struct {
	idx  int
	wake chan struct{} // capacity 1; non-blocking nudges

	mu   sync.Mutex
	runq []*Flow // runnable flows, FIFO

	tasks chan item // unkeyed work; any lane or helper may receive

	// parked is set while the lane is blocked waiting for work; wakers
	// consult it to decide whether a nudge is needed.
	parked atomic.Bool

	executed atomic.Uint64 // tasks run on this lane (keyed + unkeyed)
	stolen   atomic.Uint64 // flows/tasks this lane took from siblings
	latency  metrics.EWMA  // submit→start queue latency
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithTaskQueue sets the per-lane unkeyed task queue capacity.
func WithTaskQueue(n int) Option {
	return func(rt *Runtime) {
		if n > 0 {
			rt.taskCap = n
		}
	}
}

// New creates a runtime with the given number of lanes; lanes <= 0 selects
// max(2, GOMAXPROCS). A single-lane runtime is fully serial — every task,
// keyed or not, runs on the one goroutine in submission-visible order —
// which some fixtures rely on; multi-lane runtimes steal.
func New(lanes int, opts ...Option) *Runtime {
	if lanes <= 0 {
		lanes = runtime.GOMAXPROCS(0)
		if lanes < 2 {
			// A lone lane cannot steal around a task blocked in protocol
			// wait: keep a second lane even on single-core hosts so one
			// wedged handler never stalls every other flow. (The OS
			// multiplexes the two onto one core, as it did the dispatch
			// goroutines this runtime replaces.)
			lanes = 2
		}
	}
	rt := &Runtime{
		taskCap: DefaultTaskQueue,
		done:    make(chan struct{}),
		flows:   make(map[uint64]*Flow),
	}
	for _, o := range opts {
		o(rt)
	}
	for i := 0; i < lanes; i++ {
		rt.lanes = append(rt.lanes, &lane{
			idx:   i,
			wake:  make(chan struct{}, 1),
			tasks: make(chan item, rt.taskCap),
		})
	}
	rt.wg.Add(lanes)
	for _, ln := range rt.lanes {
		go rt.run(ln)
	}
	return rt
}

var (
	defaultOnce sync.Once
	defaultRT   *Runtime
)

// Default returns the process-wide shared runtime, creating it on first
// use. It is never closed; every component of an in-process deployment
// shares its lanes, which is what sizes concurrency to the host instead of
// to the number of components.
func Default() *Runtime {
	defaultOnce.Do(func() { defaultRT = New(0) })
	return defaultRT
}

// Lanes returns the number of lanes.
func (rt *Runtime) Lanes() int { return len(rt.lanes) }

// KeySpace returns a fresh key namespace base. Each call reserves 2^32
// keys; components derive their flow keys as base+i so distinct components
// on the shared runtime can never collide.
func (rt *Runtime) KeySpace() uint64 {
	return rt.keyNS.Add(1) << 32
}

func (rt *Runtime) isClosed() bool {
	rt.closeMu.RLock()
	defer rt.closeMu.RUnlock()
	return rt.closed
}

// Flow returns (creating if needed) the flow registered under key.
// capacity bounds its queue (<= 0 selects DefaultFlowQueue) and applies
// only at creation. After Close, Flow returns an unregistered closed flow
// whose submissions run inline.
func (rt *Runtime) Flow(key uint64, capacity int) *Flow {
	if capacity <= 0 {
		capacity = DefaultFlowQueue
	}
	rt.flowMu.Lock()
	defer rt.flowMu.Unlock()
	if fl, ok := rt.flows[key]; ok {
		return fl
	}
	fl := &Flow{
		rt:   rt,
		key:  key,
		home: int(rt.rr.Add(1)) % len(rt.lanes),
		cap:  capacity,
	}
	fl.notFull.L = &fl.mu
	if rt.flowsClosed {
		fl.closed = true
		return fl
	}
	rt.flows[key] = fl
	return fl
}

// Submit enqueues an unkeyed task: it may run on any lane, in no
// particular order relative to other tasks, and may be stolen by waiting
// helpers. Submit blocks until the task is accepted — it never runs the
// task on the caller while the runtime is open (the verifier's signing
// hand-off depends on that) — and runs it inline only after Close.
func (rt *Runtime) Submit(t Task) {
	it := item{fn: t, enq: time.Now()}
	for {
		rt.closeMu.RLock()
		if rt.closed {
			rt.closeMu.RUnlock()
			t()
			return
		}
		if ln := rt.trySpill(it); ln != nil {
			rt.closeMu.RUnlock()
			rt.wakeFor(ln)
			return
		}
		rt.closeMu.RUnlock()
		// Every unkeyed queue is full: the pool is saturated. Run one
		// queued task on the caller before retrying — never t itself
		// (the never-on-caller contract), but draining someone else's
		// task guarantees progress even when the submitters ARE the
		// lanes (a dispatch-flow handler feeding the signer can find
		// every lane blocked right here; sleeping alone would then
		// wedge the runtime). Only if nothing is stealable either do we
		// back off and wait for an external drainer.
		if rt.RunStolen() {
			continue
		}
		select {
		case <-rt.done:
		case <-time.After(helpPark):
		}
	}
}

// TrySubmit enqueues an unkeyed task without blocking; false means every
// lane's queue is full (or the runtime is closed) and the caller should
// run the task inline.
func (rt *Runtime) TrySubmit(t Task) bool {
	it := item{fn: t, enq: time.Now()}
	rt.closeMu.RLock()
	if rt.closed {
		rt.closeMu.RUnlock()
		return false
	}
	ln := rt.trySpill(it)
	rt.closeMu.RUnlock()
	if ln == nil {
		return false
	}
	rt.wakeFor(ln)
	return true
}

// trySpill offers the item to the round-robin home lane first, then to
// every other lane, non-blocking. Returns the accepting lane, or nil.
// Callers hold closeMu.RLock (so the send cannot race a drain decision).
func (rt *Runtime) trySpill(it item) *lane {
	home := int(rt.rr.Add(1)) % len(rt.lanes)
	for i := 0; i < len(rt.lanes); i++ {
		ln := rt.lanes[(home+i)%len(rt.lanes)]
		select {
		case ln.tasks <- it:
			return ln
		default:
		}
	}
	return nil
}

// wakeFor nudges the lane now holding new work and, if that lane is busy
// running something, one parked sibling — the "wake a thief" rule that
// makes stealing responsive instead of timer-driven.
func (rt *Runtime) wakeFor(ln *lane) {
	rt.wakeLane(ln)
	if !ln.parked.Load() {
		rt.wakeAnyParked(ln.idx)
	}
}

func (rt *Runtime) wakeLane(ln *lane) {
	select {
	case ln.wake <- struct{}{}:
	default:
	}
}

func (rt *Runtime) wakeAnyParked(except int) {
	for i, ln := range rt.lanes {
		if i != except && ln.parked.Load() {
			rt.wakeLane(ln)
			return
		}
	}
}

// RunStolen pops one unkeyed task from any lane and runs it on the
// caller. It is the helping primitive: goroutines blocked on a result
// whose computation may be queued behind them lend themselves to the
// runtime instead of deadlocking or idling. Keyed flows are never stolen
// here — they carry ordering guarantees a foreign goroutine's stack
// cannot honor mid-wait (see doc.go).
func (rt *Runtime) RunStolen() bool {
	start := int(rt.rr.Add(1)) % len(rt.lanes)
	for i := 0; i < len(rt.lanes); i++ {
		ln := rt.lanes[(start+i)%len(rt.lanes)]
		select {
		case it := <-ln.tasks:
			rt.execOn(nil, it)
			return true
		default:
		}
	}
	return false
}

// Help runs stealable (unkeyed) work on the caller until done closes —
// the waiting side of keyed fan-out: a goroutine that has queued keyed
// work on the lanes and must wait for it contributes verification and
// signing throughput meanwhile.
func (rt *Runtime) Help(done <-chan struct{}) {
	var timer *time.Timer
	for {
		select {
		case <-done:
			return
		default:
		}
		if rt.RunStolen() {
			continue
		}
		if timer == nil {
			timer = time.NewTimer(helpPark)
			defer timer.Stop()
		} else {
			timer.Reset(helpPark)
		}
		select {
		case <-done:
			return
		case <-timer.C:
		}
	}
}

// HelpFlows runs work on the caller until done closes, preferring the
// given flows — the caller's own fan-out — and falling back to stealable
// unkeyed tasks. Unlike Help, it guarantees the caller's flows make
// progress even when every lane is blocked waiting: a deliverer that
// fanned a settlement wave across stripe flows and runs ON a lane (the
// Bracha protocol delivers on the dispatch path) can always finish its
// own wave by draining those flows itself. Callers must own the flows in
// the sense that their tasks cannot re-enter this wait.
func (rt *Runtime) HelpFlows(done <-chan struct{}, flows []*Flow) {
	var timer *time.Timer
	for {
		select {
		case <-done:
			return
		default:
		}
		progressed := false
		for _, fl := range flows {
			if fl.TryDrain() {
				progressed = true
			}
		}
		if progressed || rt.RunStolen() {
			continue
		}
		if timer == nil {
			timer = time.NewTimer(helpPark)
			defer timer.Stop()
		} else {
			timer.Reset(helpPark)
		}
		select {
		case <-done:
			return
		case <-timer.C:
		}
	}
}

// execOn runs an item on a lane (ln non-nil) or a helper (ln nil).
// Helpers are outside the lane set, so their executions carry no per-lane
// accounting.
func (rt *Runtime) execOn(ln *lane, it item) {
	if ln == nil {
		it.fn()
		return
	}
	ln.latency.Observe(time.Since(it.enq))
	it.fn()
	ln.executed.Add(1)
}

// run is one lane's goroutine.
func (rt *Runtime) run(ln *lane) {
	defer rt.wg.Done()
	timer := time.NewTimer(parkSweep)
	defer timer.Stop()
	for {
		select {
		case <-rt.done:
			rt.drainAndExit(ln)
			return
		default:
		}
		if rt.findWork(ln) {
			continue
		}
		// Park: own queues are selectable directly; siblings' work
		// arrives via wake tokens, with the periodic sweep as the
		// lost-token backstop.
		ln.parked.Store(true)
		if rt.findWork(ln) { // re-check after publishing parked
			ln.parked.Store(false)
			continue
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(parkSweep)
		select {
		case <-rt.done:
			ln.parked.Store(false)
			rt.drainAndExit(ln)
			return
		case <-ln.wake:
		case it := <-ln.tasks:
			ln.parked.Store(false)
			rt.execOn(ln, it)
			continue
		case <-timer.C:
		}
		ln.parked.Store(false)
	}
}

// findWork runs one scheduling quantum: own flows first (protocol
// handlers are latency-sensitive), then own unkeyed tasks, then one
// bounded steal sweep over the siblings. Reports whether anything ran.
func (rt *Runtime) findWork(ln *lane) bool {
	if fl := ln.popFlow(); fl != nil {
		rt.drainFlow(ln, fl)
		return true
	}
	select {
	case it := <-ln.tasks:
		rt.execOn(ln, it)
		return true
	default:
	}
	return rt.steal(ln)
}

// steal makes one sweep over the sibling lanes, taking a runnable flow or
// one unkeyed task. One sweep per idle iteration bounds the stealing: a
// lane with local work never scans, and an idle lane's scan is O(lanes).
func (rt *Runtime) steal(ln *lane) bool {
	n := len(rt.lanes)
	for i := 1; i < n; i++ {
		sib := rt.lanes[(ln.idx+i)%n]
		if fl := sib.popFlow(); fl != nil {
			ln.stolen.Add(1)
			rt.drainFlow(ln, fl)
			return true
		}
		select {
		case it := <-sib.tasks:
			ln.stolen.Add(1)
			rt.execOn(ln, it)
			return true
		default:
		}
	}
	return false
}

// popFlow pops run-queue entries until one resolves to a claimable flow
// (queued→running) or the queue empties. Entries are hints: a flow a
// waiter already claimed via TryDrain is skipped.
func (ln *lane) popFlow() *Flow {
	for {
		ln.mu.Lock()
		if len(ln.runq) == 0 {
			ln.mu.Unlock()
			return nil
		}
		fl := ln.runq[0]
		copy(ln.runq, ln.runq[1:])
		ln.runq = ln.runq[:len(ln.runq)-1]
		ln.mu.Unlock()
		fl.mu.Lock()
		if fl.state == flowQueued {
			fl.state = flowRunning
			fl.mu.Unlock()
			return fl
		}
		fl.mu.Unlock() // stale hint; the flow was claimed or emptied
	}
}

func (ln *lane) pushFlow(fl *Flow) {
	ln.mu.Lock()
	ln.runq = append(ln.runq, fl)
	ln.mu.Unlock()
}

// drainFlow runs up to flowDrainBatch tasks of a flow the caller has
// claimed (fl.state is flowRunning, so no other drainer can touch it).
// ln is nil when the caller is a foreign helper rather than a lane. A
// flow left nonempty is requeued on the draining lane — affinity follows
// the work, so a stolen flow keeps running where its state is now cached
// — or back on its home lane when a helper drained it.
func (rt *Runtime) drainFlow(ln *lane, fl *Flow) {
	for i := 0; i < flowDrainBatch; i++ {
		fl.mu.Lock()
		if fl.head == len(fl.q) {
			fl.q = fl.q[:0]
			fl.head = 0
			fl.state = flowIdle
			fl.mu.Unlock()
			return
		}
		it := fl.q[fl.head]
		fl.q[fl.head] = item{} // release the closure
		fl.head++
		fl.notFull.Signal()
		fl.mu.Unlock()
		rt.execOn(ln, it)
	}
	// Still nonempty: release the claim and requeue.
	fl.mu.Lock()
	fl.state = flowQueued
	fl.mu.Unlock()
	if ln != nil {
		ln.pushFlow(fl)
		return
	}
	home := rt.lanes[fl.home]
	home.pushFlow(fl)
	rt.wakeFor(home)
}

// Close stops the lanes after draining every queued task — keyed and
// unkeyed; nothing submitted before Close is lost (verification futures
// must resolve). Submissions after Close run inline on the caller, at
// which point flow ordering guarantees no longer apply. Close must not be
// called from a task, and not on the Default runtime. Safe to call twice.
func (rt *Runtime) Close() {
	rt.closeMu.Lock()
	if rt.closed {
		rt.closeMu.Unlock()
		rt.wg.Wait()
		return
	}
	rt.closed = true
	rt.closeMu.Unlock()

	// Mark every flow closed and wake blocked submitters (they run
	// inline once they observe the flag). After this loop no flow can
	// accept another task, so the lanes' final drain is exhaustive.
	rt.flowMu.Lock()
	rt.flowsClosed = true
	flows := make([]*Flow, 0, len(rt.flows))
	for _, fl := range rt.flows {
		flows = append(flows, fl)
	}
	rt.flowMu.Unlock()
	for _, fl := range flows {
		fl.mu.Lock()
		fl.closed = true
		fl.notFull.Broadcast()
		fl.mu.Unlock()
	}

	close(rt.done)
	rt.wg.Wait()
}

// drainAndExit is a lane's shutdown path: run everything still queued —
// own flows, own tasks, then whatever can be stolen — until a full sweep
// finds nothing. No new work can be queued at this point (flows are
// closed, unkeyed submitters observe closed under closeMu), so an empty
// sweep is final. Tasks running during the drain that submit more work
// execute it inline, which keeps the drain finite.
func (rt *Runtime) drainAndExit(ln *lane) {
	// Barrier: unkeyed submitters hold closeMu.RLock across their sends;
	// taking the write lock once guarantees every pre-close send has
	// either landed or observed closed.
	rt.closeMu.Lock()
	rt.closeMu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	for rt.findWorkClosing(ln) {
	}
}

// findWorkClosing is findWork without parking (shutdown never waits).
func (rt *Runtime) findWorkClosing(ln *lane) bool {
	return rt.findWork(ln)
}

// Flow is a serial FIFO task queue with lane affinity — the unit of
// ordered execution. Tasks submitted to one flow run exactly in
// submission order and never concurrently with each other, regardless of
// which lane happens to drain the flow: a flow is scheduled onto at most
// one lane at a time and moves wholesale when stolen. Two flows sharing a
// key (Runtime.Flow returns the same instance) therefore interleave only
// at task boundaries — the property protocol channels and their timers
// rely on.
//
// Submit blocks while the flow's queue is full: bounded memory, with
// backpressure on the producer (the endpoint reader, the BRB delivery
// goroutine), never loss.
type Flow struct {
	rt   *Runtime
	key  uint64
	home int
	cap  int

	mu      sync.Mutex
	notFull sync.Cond
	q       []item
	head    int
	// state tracks the flow's scheduling: idle (empty, nowhere), queued
	// (has work, claimable — a run-queue entry points at it), running
	// (claimed by exactly one drainer). The invariant "nonempty ⇒ queued
	// or running" guarantees exactly-one drainer and no forgotten work.
	// Run-queue entries are hints: a drainer claims the flow by moving
	// queued→running under fl.mu, and stale entries are skipped — which
	// is what lets a *waiter* (TryDrain) claim a flow out from under the
	// lanes without racing them.
	state  uint8
	closed bool

	submitted atomic.Uint64
}

// Key returns the flow's key.
func (fl *Flow) Key() uint64 { return fl.key }

// Home returns the flow's preferred lane index (its initial affinity;
// stealing may run it elsewhere).
func (fl *Flow) Home() int { return fl.home }

// Depth returns the number of queued tasks.
func (fl *Flow) Depth() int {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return len(fl.q) - fl.head
}

// Release unregisters the flow from the runtime, so a long-lived shared
// runtime does not accumulate the flows of components that come and go.
// The caller must guarantee no further Submit calls; tasks already queued
// still drain normally (drainers hold the flow by pointer, not by key).
// A later Runtime.Flow with the same key creates a fresh flow.
func (fl *Flow) Release() {
	fl.rt.flowMu.Lock()
	if fl.rt.flows[fl.key] == fl {
		delete(fl.rt.flows, fl.key)
	}
	fl.rt.flowMu.Unlock()
}

// Submit enqueues a task in FIFO position, blocking while the queue is
// full. After the runtime closes, tasks run inline on the caller.
func (fl *Flow) Submit(t Task) {
	fl.mu.Lock()
	for {
		if fl.closed {
			fl.mu.Unlock()
			t()
			return
		}
		if len(fl.q)-fl.head < fl.cap {
			break
		}
		fl.notFull.Wait()
	}
	if fl.head > 0 && len(fl.q) == cap(fl.q) {
		// Compact the consumed prefix before append would grow the
		// backing array: without this, a flow that never fully empties
		// (sustained backpressure) drags its dead prefix into every
		// reallocation and grows without bound. After compaction the
		// array is bounded by the live items, i.e. by fl.cap.
		n := copy(fl.q, fl.q[fl.head:])
		clear(fl.q[n:]) // release the dead closures
		fl.q = fl.q[:n]
		fl.head = 0
	}
	fl.q = append(fl.q, item{fn: t, enq: time.Now()})
	fl.submitted.Add(1)
	kick := fl.state == flowIdle
	if kick {
		fl.state = flowQueued
	}
	fl.mu.Unlock()
	if kick {
		ln := fl.rt.lanes[fl.home]
		ln.pushFlow(fl)
		fl.rt.wakeFor(ln)
	}
}

// TryDrain claims the flow if it is runnable and runs one bounded batch
// of its queued tasks on the caller; it reports whether anything ran.
// Any goroutine may drain a flow — exclusion and FIFO come from the
// claim protocol, not from lane identity — but callers must only drain
// flows whose tasks they know cannot re-enter their own wait state (the
// settlement deliverer drains its own stripe flows; see HelpFlows).
func (fl *Flow) TryDrain() bool {
	fl.mu.Lock()
	if fl.state != flowQueued || fl.head == len(fl.q) {
		fl.mu.Unlock()
		return false
	}
	fl.state = flowRunning
	fl.mu.Unlock()
	fl.rt.drainFlow(nil, fl)
	return true
}
