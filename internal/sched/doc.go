// Package sched is the unified lane scheduler: one stripe-affine worker
// runtime that every hot path of the Astro reproduction rides — transport
// dispatch (transport.Mux), settlement stripe fan-out
// (core.Replica.settleEntries), and signature verify/sign work
// (crypto/verifier). Before this package each of those grew its own
// concurrency substrate (per-channel dispatch goroutines, spawn-per-
// delivery settle fan-out, a dedicated verifier worker pool); unifying
// them sizes concurrency to the host once, keeps related work cache-warm
// on one lane, and replaces goroutine churn with persistent workers.
//
// # Model
//
// A Runtime owns N lanes (≈ GOMAXPROCS, floor 2), each a pinned goroutine
// draining a bounded local run queue. Work comes in two classes:
//
//   - Keyed work lives in Flows: per-key FIFO queues with a home lane.
//     A flow is scheduled onto at most one lane at a time and its tasks
//     run in exact submission order, so a flow is a serialization domain
//     — protocol channels, channel+timer pairs (SerializeWith), and
//     settlement stripes each map to one flow. Idle lanes steal runnable
//     flows wholesale from busy or blocked lanes, so affinity is a
//     preference, never a liveness dependence: a handler wedged on one
//     lane delays only its own flow.
//
//   - Unkeyed work (signature checks, pool-side signing drains) is
//     per-task stealable: any lane — and any goroutine blocked waiting on
//     a result, via Runtime.Help/RunStolen — may execute it, in no
//     defined order.
//
// # Ordering discipline
//
// The runtime provides exactly two ordering guarantees, and protocol
// correctness must be argued from them alone:
//
//  1. Per-flow FIFO + mutual exclusion: tasks of one flow never run
//     concurrently and never out of submission order, even across steals
//     (the flow moves between lanes wholesale, at task boundaries).
//  2. Submission-completes-before-return for Flow.Submit and
//     Runtime.Submit: when Submit returns, the task is queued (or, after
//     Close, already executed inline).
//
// Everything else — cross-flow order, unkeyed task order, which lane runs
// what — is unspecified. In particular, per-spender settlement FIFO holds
// because one spender maps to one stripe flow and delivery enqueues each
// batch's stripe tasks before the next batch's (the deliverer waits for
// its wave); per-channel transport FIFO holds because one channel maps to
// one flow fed by the single endpoint reader.
//
// # Blocking discipline
//
// Lanes are a fixed-size resource; a task that blocks parks a whole lane.
// The rules that keep the system live:
//
//   - A task may block on protocol waits (semaphores, full downstream
//     queues, verification futures) only if the thing it waits on makes
//     progress without this lane. Verification futures qualify: waiters
//     help by stealing unkeyed work (Future.Wait, Runtime.Help), so even
//     a single-lane runtime cannot deadlock on its own verification.
//   - A task that fans work out across flows and must wait for it uses
//     Runtime.HelpFlows(done, flows): the waiter drains ITS OWN flows on
//     its own stack (plus stealable unkeyed work), so the wait completes
//     even when every lane is blocked in the same kind of wait — the
//     Bracha protocol delivers on a dispatch lane, and its settlement
//     wave must not depend on any other lane being free. Arbitrary keyed
//     flows are never drained by general helpers (Runtime.Help runs
//     unkeyed work only): a helper's stack may already hold protocol
//     locks or semaphore slots (the BRB commit bound), and running
//     another flow's handler there can re-enter those. HelpFlows callers
//     vouch that the tasks of the flows they name cannot re-enter the
//     wait (settlement stripe tasks are pure state application).
//   - Runtime.Submit blocks until accepted and never runs the task on
//     the caller while the runtime is open — the contract the async
//     sign path needs ("an ECDSA never executes on a dispatch flow").
//
// # Continuation discipline
//
// PR 9 replaced the last per-message goroutines (the BRB commit
// coordinators) with completion continuations: a verification request
// carries a callback that fires exactly once when the tally settles.
// Continuations run in one of three places — inline on the submitter
// (memo hit, fast-verify regime, or a tally already decided), on the
// lane executing the final unkeyed verify task, or on a helper's stack
// inside Help/RunStolen (a blocked waiter may steal the task whose
// completion fires the callback). The rules that make that safe:
//
//   - A continuation must be non-blocking toward the verifier: it may
//     not wait on another verification future or submit-and-wait, since
//     the stack it runs on may BE a verifier lane or a helper already
//     inside Help. Fire-and-forget resubmission (Async, Detached) is
//     fine — those only enqueue.
//   - A continuation may re-enter a keyed flow only via Submit/HelpFlows
//     under the same vouching rule as any task: the flows it names must
//     not re-enter the wait it is completing. The BRB delivery drain
//     qualifies — commitVerified takes the protocol mutex, appends to
//     the FIFO queues, and drains deliveries without ever waiting on the
//     verifier (the validator's future was resolved before commit).
//   - Callers must not assume which stack runs the continuation, and in
//     particular must not hold a lock across the verify call that the
//     continuation also takes, unless the API is documented
//     inline-completion-free (the *Detached verifier entry points may
//     complete inline on the caller; see their comments).
//
// The spawn counter (Go/Spawns in this package) is the other half of the
// discipline: every deliberate hot-path goroutine spawn routes through
// sched.Go, so the guard suite can assert "zero goroutines per settled
// payment" as a number instead of a code-review claim.
//
// # Locking internals
//
// Lock order inside the package: Flow.mu and lane.mu are leaves and are
// never held together; Runtime.closeMu.RLock is held across unkeyed
// channel sends (never across blocking waits) so Close can barrier on
// in-flight submissions; flowMu only guards the key→flow registry.
// Close marks every flow closed (late submitters run inline), then lanes
// drain every queue to empty before exiting — nothing accepted before
// Close is lost, which is what lets verification futures always resolve.
package sched
