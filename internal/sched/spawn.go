package sched

import "sync/atomic"

// spawnCount tallies every goroutine the hot path deliberately spawns
// through Go. The steady-state pipeline target (ROADMAP item 4) is zero
// goroutines per settled payment: continuation-style commit coordinators
// and pinned stripe flows replace spawn-per-message fan-out, and the
// baseline paths that still spawn (Config.CommitSpawn, Config.SettleSpawn)
// are routed through Go so the allocation/spawn guard can assert the
// delta is zero with the baselines off — and nonzero with them on.
var spawnCount atomic.Uint64

// Go runs f on a fresh goroutine and counts the spawn. Hot-path code must
// use this instead of a bare `go` statement so regressions show up in
// Spawns() rather than only in a profile.
func Go(f func()) {
	spawnCount.Add(1)
	go f()
}

// Spawns returns the process-wide count of goroutines started via Go.
// Guard tests snapshot it around a steady-state window and assert the
// delta; it never decreases.
func Spawns() uint64 { return spawnCount.Load() }
