package sched

import (
	"fmt"
	"strings"
	"time"
)

// LaneStats is one lane's observability snapshot.
type LaneStats struct {
	// Lane is the lane index.
	Lane int
	// RunnableFlows is the current length of the lane's flow run queue.
	RunnableFlows int
	// QueuedTasks is the current depth of the lane's unkeyed task queue.
	QueuedTasks int
	// Executed counts tasks (keyed and unkeyed) run on this lane.
	Executed uint64
	// Stolen counts flows and tasks this lane took from siblings.
	Stolen uint64
	// Latency is the submit→start queue-latency EWMA.
	Latency time.Duration
}

// Stats is a runtime-wide observability snapshot.
type Stats struct {
	Lanes []LaneStats
	// Executed and Stolen aggregate the per-lane counters.
	Executed uint64
	Stolen   uint64
	// QueuedKeyed is the total depth across all registered flows (tasks
	// accepted but not yet started).
	QueuedKeyed int
	// Flows is the number of registered flows.
	Flows int
}

// Stats captures a snapshot of the runtime's lanes and flows. Counters
// are monotone; depths are instantaneous.
func (rt *Runtime) Stats() Stats {
	s := Stats{Lanes: make([]LaneStats, len(rt.lanes))}
	for i, ln := range rt.lanes {
		ln.mu.Lock()
		runnable := len(ln.runq)
		ln.mu.Unlock()
		ls := LaneStats{
			Lane:          i,
			RunnableFlows: runnable,
			QueuedTasks:   len(ln.tasks),
			Executed:      ln.executed.Load(),
			Stolen:        ln.stolen.Load(),
			Latency:       ln.latency.Value(),
		}
		s.Lanes[i] = ls
		s.Executed += ls.Executed
		s.Stolen += ls.Stolen
	}
	rt.flowMu.Lock()
	s.Flows = len(rt.flows)
	flows := make([]*Flow, 0, len(rt.flows))
	for _, fl := range rt.flows {
		flows = append(flows, fl)
	}
	rt.flowMu.Unlock()
	for _, fl := range flows {
		s.QueuedKeyed += fl.Depth()
	}
	return s
}

// Add accumulates another snapshot (the cluster harness aggregates the
// runtimes of a multi-runtime deployment; with one shared runtime it is
// the identity beyond the first).
func (s *Stats) Add(o Stats) {
	s.Executed += o.Executed
	s.Stolen += o.Stolen
	s.QueuedKeyed += o.QueuedKeyed
	s.Flows += o.Flows
	s.Lanes = append(s.Lanes, o.Lanes...)
}

// String summarizes the snapshot for logs and the experiment harness.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched{lanes=%d flows=%d exec=%d stolen=%d queued=%d",
		len(s.Lanes), s.Flows, s.Executed, s.Stolen, s.QueuedKeyed)
	for _, ls := range s.Lanes {
		fmt.Fprintf(&b, " L%d[q=%d/%d exec=%d steal=%d lat=%s]",
			ls.Lane, ls.RunnableFlows, ls.QueuedTasks, ls.Executed, ls.Stolen,
			ls.Latency.Round(time.Microsecond))
	}
	b.WriteString("}")
	return b.String()
}
