// Package wal provides durable replica state: an append-only, CRC-framed,
// fsync-batched write-ahead log with periodic compacted snapshots, behind a
// pluggable Backend interface.
//
// The replication layer (internal/core) records its externally visible
// commitments here — endorsements granted, batches broadcast, batches
// settled, dependency certificates accumulated — so that a replica killed
// without warning (kill -9, power loss) can restart from its data directory
// without violating the protocol's safety argument, which assumes replicas
// remember what they endorsed.
//
// # Durability contract
//
// A record is durable once the Sync that covers it returns. The file
// backend buffers appended records in memory and writes + fsyncs them as
// one batch on Sync; the Writer issues that Sync from a dedicated scheduler
// flow whenever the append queue drains (tail sync), so one fsync amortizes
// across a settlement wave instead of stalling settle lanes per record.
//
// What is fsynced when:
//
//   - Broadcast-slot reservations (a batch about to be broadcast under a
//     slot) are fsynced *before* the first wire message of that broadcast
//     leaves the replica — Writer.Barrier blocks until the covering Sync
//     completes. This is the one synchronous point in the hot path: without
//     it, a crash between send and fsync would let the restarted replica
//     reuse the slot for a different batch, which its peers (remembering
//     the first digest) would silently refuse.
//   - Endorsements and settled batches are appended asynchronously and
//     reach disk at the next tail sync or Barrier. An endorsement ack may
//     therefore be on the wire before its record is durable; the window is
//     one Sync batch. See "Residual windows" below.
//   - Snapshots are written to a temporary file, fsynced, atomically
//     renamed over the previous snapshot, the directory fsynced, and only
//     then is the log truncated. A crash between rename and truncate
//     leaves a new snapshot plus a stale log tail whose records are all
//     covered by the snapshot; replay of those records is idempotent.
//
// # Torn tails
//
// Every record is framed as
//
//	[u32 length][u32 crc32c][u8 kind][payload]
//
// with length = 1+len(payload) and the CRC (Castagnoli) computed over
// kind||payload. On Load the file backend replays frames in order and stops
// at the first incomplete or CRC-mismatching frame, truncating the file to
// the last valid prefix. A torn tail therefore means exactly this: the
// final Sync batch was interrupted mid-write, and every record in it is
// discarded as if the crash had happened just before that Sync. Because
// the upper layer orders its appends so that no record is acted on
// externally before the Sync covering it returns (the Barrier points
// above), dropping a torn suffix never forgets a commitment that reached
// the network.
//
// # Residual windows
//
// Two pieces of state are deliberately not covered:
//
//   - Endorsement records are appended before the ack is signed but their
//     fsync is asynchronous; a crash inside that window can forget an
//     endorsement whose ack reached the spender. The restarted replica
//     then refuses (ignores) a conflicting re-endorsement rather than
//     granting one — recovery merges endorsement memory from the log only
//     and never adopts it from peers, so the failure mode is liveness
//     (one lost ack among 2f+1) rather than safety.
//   - The broadcast layer's ack memory for *other* replicas' slots is not
//     persisted. After restart the replica may re-ack a slot it acked
//     before crashing; acks are deterministic over (origin, slot, digest),
//     so the re-ack is byte-identical and harmless.
//
// # Backends
//
// FileBackend stores one directory per replica: a log file and a snapshot
// file, managed as above. Nop discards everything and reports success; it
// keeps the full append/flow/Sync code path live with zero I/O, which is
// the measured baseline for the durability overhead (a nil Backend in
// core.Config disables the subsystem entirely, preserving the original
// memory-only behavior).
package wal
