package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrClosed is returned by backend operations after Close or Abort.
var ErrClosed = errors.New("wal: backend closed")

// MaxRecord bounds a single record's payload, mirroring wire.MaxChunk: no
// component of this repository produces a larger unit, and the bound keeps
// a corrupt length prefix from provoking a giant allocation during replay.
const MaxRecord = 16 << 20

// frameHeader is the fixed per-record framing overhead: u32 length,
// u32 CRC. The length counts the kind byte plus the payload.
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendFrame appends one framed record to dst and returns the extended
// slice. The frame is [u32 len][u32 crc32c][u8 kind][payload] with
// len = 1+len(payload) and the CRC computed over kind||payload.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(payload)))
	crc := crc32.Update(0, crcTable, []byte{kind})
	crc = crc32.Update(crc, crcTable, payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	dst = append(dst, kind)
	return append(dst, payload...)
}

// FrameSize returns the encoded size of a record with the given payload
// length.
func FrameSize(payloadLen int) int { return frameHeader + 1 + payloadLen }

// ScanFrames walks data frame by frame, invoking onRecord for each valid
// record, and returns the length of the valid prefix: the byte offset just
// past the last well-formed frame. Scanning stops — without error — at the
// first incomplete, oversized, or CRC-mismatching frame; everything beyond
// the returned offset is a torn tail. A non-nil error comes only from
// onRecord and aborts the scan after the offending record.
func ScanFrames(data []byte, onRecord func(kind byte, payload []byte) error) (int, error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < frameHeader+1 {
			return off, nil
		}
		ln := binary.BigEndian.Uint32(rest[0:4])
		if ln == 0 || ln > MaxRecord+1 {
			return off, nil
		}
		if uint64(len(rest)) < frameHeader+uint64(ln) {
			return off, nil
		}
		body := rest[frameHeader : frameHeader+ln]
		if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(rest[4:8]) {
			return off, nil
		}
		off += frameHeader + int(ln)
		if onRecord != nil {
			if err := onRecord(body[0], body[1:]); err != nil {
				return off, err
			}
		}
	}
}

// Backend is the pluggable storage layer beneath the Writer. Append
// buffers a record; Sync makes every buffered record durable as one batch.
// WriteSnapshot atomically replaces the snapshot with snap and discards
// the log — callers must guarantee that snap covers every record appended
// so far (the Writer does, by running snapshot builds on the same FIFO
// flow as appends). Load replays the stored state: the snapshot callback
// first (if a snapshot exists), then each log record in append order,
// repairing any torn tail. Close flushes and releases resources; Abort
// releases them without flushing, discarding unsynced records — the
// in-process stand-in for kill -9.
//
// Backends are safe for concurrent use, but the Writer serializes all
// calls on its flow anyway; concurrency safety matters only for Abort,
// which may race a kill against in-flight appends.
type Backend interface {
	Append(kind byte, payload []byte) error
	Sync() error
	WriteSnapshot(snap []byte) error
	Load(onSnapshot func(snap []byte) error, onRecord func(kind byte, payload []byte) error) error
	Close() error
	Abort()
}

// Nop is a Backend that discards everything and reports success. It keeps
// the full Writer code path live with zero I/O — the measured baseline
// for durability overhead.
type Nop struct{}

// Append implements Backend.
func (Nop) Append(byte, []byte) error { return nil }

// Sync implements Backend.
func (Nop) Sync() error { return nil }

// WriteSnapshot implements Backend.
func (Nop) WriteSnapshot([]byte) error { return nil }

// Load implements Backend: there is never anything to replay.
func (Nop) Load(func([]byte) error, func(byte, []byte) error) error { return nil }

// Close implements Backend.
func (Nop) Close() error { return nil }

// Abort implements Backend.
func (Nop) Abort() {}

func checkRecord(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord (%d)", len(payload), MaxRecord)
	}
	return nil
}
