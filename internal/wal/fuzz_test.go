package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzScanFrames feeds arbitrary bytes to the record decoder. Invariants:
// no panic, the valid prefix never exceeds the input, records re-encode to
// exactly the valid prefix, and a second scan of the valid prefix yields
// the same records (replay determinism after torn-tail repair).
func FuzzScanFrames(f *testing.F) {
	var seed []byte
	seed = AppendFrame(seed, 1, []byte("endorse"))
	seed = AppendFrame(seed, 2, bytes.Repeat([]byte{0x5a}, 64))
	seed = AppendFrame(seed, 3, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-3])               // torn tail
	f.Add(append([]byte(nil), 0, 0, 0, 0))  // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4, 5}) // oversized length
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []rec
		valid, err := ScanFrames(data, func(k byte, p []byte) error {
			recs = append(recs, rec{k, append([]byte(nil), p...)})
			return nil
		})
		if err != nil {
			t.Fatalf("callback never errors: %v", err)
		}
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		var reenc []byte
		for _, r := range recs {
			reenc = AppendFrame(reenc, r.kind, r.payload)
		}
		if !bytes.Equal(reenc, data[:valid]) {
			t.Fatalf("records do not re-encode to the valid prefix")
		}
		var again []rec
		valid2, _ := ScanFrames(data[:valid], func(k byte, p []byte) error {
			again = append(again, rec{k, append([]byte(nil), p...)})
			return nil
		})
		if valid2 != valid || len(again) != len(recs) {
			t.Fatalf("rescan of valid prefix diverged: %d/%d records, %d/%d bytes",
				len(again), len(recs), valid2, valid)
		}
	})
}

// FuzzFileLoad round-trips arbitrary bytes through a FileBackend: Load
// must not panic, must repair the file to its valid prefix, and a second
// Load must replay exactly the same records.
func FuzzFileLoad(f *testing.F) {
	var seed []byte
	seed = AppendFrame(seed, 1, []byte("payload"))
	seed = AppendFrame(seed, 2, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var first []rec
		if err := b.Load(nil, func(k byte, p []byte) error {
			first = append(first, rec{k, append([]byte(nil), p...)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		b2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer b2.Close()
		var second []rec
		if err := b2.Load(nil, func(k byte, p []byte) error {
			second = append(second, rec{k, append([]byte(nil), p...)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(first) != len(second) {
			t.Fatalf("repair not idempotent: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if first[i].kind != second[i].kind || !bytes.Equal(first[i].payload, second[i].payload) {
				t.Fatalf("record %d diverged across reload", i)
			}
		}
	})
}
