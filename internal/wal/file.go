package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// File names inside a FileBackend's data directory.
const (
	logName  = "wal.log"
	snapName = "snapshot"
)

// FileBackend stores the log and snapshot in one directory per replica.
// Appends accumulate in memory and reach the log file only on Sync (one
// write + one fsync per batch), so an Abort — the kill -9 model — loses
// exactly the records whose covering Sync has not returned, matching what
// the kernel page cache would lose on power failure.
type FileBackend struct {
	dir string

	mu     sync.Mutex
	log    *os.File
	buf    []byte // framed records appended since the last Sync
	err    error  // first I/O error; sticky
	closed bool
}

var _ Backend = (*FileBackend)(nil)

// Open creates or reopens a data directory. The log file is created empty
// on first use; existing contents are not read until Load.
func Open(dir string) (*FileBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &FileBackend{dir: dir, log: f}, nil
}

// Dir returns the backend's data directory.
func (b *FileBackend) Dir() string { return b.dir }

// Append implements Backend: the record is framed into the in-memory
// batch and becomes durable at the next Sync.
func (b *FileBackend) Append(kind byte, payload []byte) error {
	if err := checkRecord(payload); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	b.buf = AppendFrame(b.buf, kind, payload)
	return nil
}

// Sync implements Backend: every buffered record is written to the log
// and fsynced as one batch.
func (b *FileBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	if len(b.buf) == 0 {
		return nil
	}
	if _, err := b.log.Write(b.buf); err != nil {
		return b.fail(err)
	}
	if err := b.log.Sync(); err != nil {
		return b.fail(err)
	}
	b.buf = b.buf[:0]
	return nil
}

// WriteSnapshot implements Backend. The snapshot is written to a
// temporary file, fsynced, renamed over the previous snapshot, the
// directory fsynced, and only then is the log truncated; a crash between
// rename and truncate leaves a stale log tail whose records the snapshot
// already covers (replay is idempotent). Records buffered but not yet
// synced are discarded — by the Writer's FIFO discipline the snapshot
// covers them too.
func (b *FileBackend) WriteSnapshot(snap []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	tmp := filepath.Join(b.dir, snapName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return b.fail(err)
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		return b.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return b.fail(err)
	}
	if err := f.Close(); err != nil {
		return b.fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(b.dir, snapName)); err != nil {
		return b.fail(err)
	}
	if err := syncDir(b.dir); err != nil {
		return b.fail(err)
	}
	if err := b.log.Truncate(0); err != nil {
		return b.fail(err)
	}
	if _, err := b.log.Seek(0, 0); err != nil {
		return b.fail(err)
	}
	if err := b.log.Sync(); err != nil {
		return b.fail(err)
	}
	b.buf = b.buf[:0]
	return nil
}

// Load implements Backend: it invokes onSnapshot with the stored snapshot
// (if any), replays every valid log record in order through onRecord, and
// truncates the log to its last valid prefix, repairing any torn tail.
// Subsequent appends continue from that point.
func (b *FileBackend) Load(onSnapshot func([]byte) error, onRecord func(byte, []byte) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	snap, err := os.ReadFile(filepath.Join(b.dir, snapName))
	switch {
	case err == nil:
		if len(snap) > 0 && onSnapshot != nil {
			if err := onSnapshot(snap); err != nil {
				return err
			}
		}
	case os.IsNotExist(err):
	default:
		return b.fail(err)
	}
	data, err := os.ReadFile(filepath.Join(b.dir, logName))
	if err != nil {
		return b.fail(err)
	}
	valid, err := ScanFrames(data, onRecord)
	if err != nil {
		return err
	}
	if valid < len(data) {
		if err := b.log.Truncate(int64(valid)); err != nil {
			return b.fail(err)
		}
		if err := b.log.Sync(); err != nil {
			return b.fail(err)
		}
	}
	if _, err := b.log.Seek(int64(valid), 0); err != nil {
		return b.fail(err)
	}
	return nil
}

// Close implements Backend: buffered records are synced, then the log
// file is closed. Idempotent.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	var syncErr error
	if b.err == nil && len(b.buf) > 0 {
		if _, err := b.log.Write(b.buf); err != nil {
			syncErr = err
		} else if err := b.log.Sync(); err != nil {
			syncErr = err
		}
	}
	b.closed = true
	b.buf = nil
	if err := b.log.Close(); syncErr == nil {
		syncErr = err
	}
	return syncErr
}

// Abort implements Backend: unsynced records are discarded and the file
// is closed without flushing — the in-process equivalent of kill -9.
func (b *FileBackend) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.buf = nil
	b.log.Close()
}

func (b *FileBackend) usableLocked() error {
	if b.closed {
		return ErrClosed
	}
	return b.err
}

func (b *FileBackend) fail(err error) error {
	if b.err == nil {
		b.err = fmt.Errorf("wal: %w", err)
	}
	return b.err
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
