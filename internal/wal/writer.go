package wal

import (
	"sync"
	"sync/atomic"

	"astro/internal/sched"
)

// writerFlowQueue bounds the Writer's append queue. Submit blocks when the
// queue is full, so this is also the backpressure point: a replica cannot
// run more than this many records ahead of its disk.
const writerFlowQueue = 1024

// Writer serializes all backend operations on one dedicated scheduler
// flow, so appends from settle lanes, the endorsement path, and the
// broadcast path never contend on an I/O mutex and never block behind an
// fsync — except at an explicit Barrier.
//
// Fsync batching uses a tail-sync discipline: each Append increments a
// pending counter that its flow task decrements on entry; after writing a
// record to the backend, the task issues Sync only if no later append is
// already queued behind it. Under load one fsync covers a whole
// settlement wave; when idle every record syncs promptly.
type Writer struct {
	be   Backend
	rt   *sched.Runtime
	flow *sched.Flow

	pending atomic.Int64 // appends submitted but not yet started
	records atomic.Uint64
	syncs   atomic.Uint64
	closed  atomic.Bool

	mu  sync.Mutex
	err error
}

// NewWriter creates a Writer over be with a fresh flow on rt. The backend
// must already be loaded (Backend.Load) — the Writer only appends.
func NewWriter(be Backend, rt *sched.Runtime) *Writer {
	w := &Writer{be: be, rt: rt}
	w.flow = rt.Flow(rt.KeySpace(), writerFlowQueue)
	return w
}

// Append schedules one record for the log, taking ownership of payload.
// It returns once the record is queued; durability comes with the next
// covering Sync (tail sync or Barrier). Errors surface via Err.
func (w *Writer) Append(kind byte, payload []byte) {
	if w.closed.Load() {
		return
	}
	w.pending.Add(1)
	w.flow.Submit(func() {
		w.pending.Add(-1)
		if err := w.be.Append(kind, payload); err != nil {
			w.setErr(err)
			return
		}
		w.records.Add(1)
		if w.pending.Load() == 0 {
			w.sync()
		}
	})
}

// Barrier blocks until every record appended before the call is durable.
// It is safe to call from lane context: the wait helps drain the Writer's
// own flow (and stealable work) instead of parking.
func (w *Writer) Barrier() {
	if w.closed.Load() {
		return
	}
	done := make(chan struct{})
	w.flow.Submit(func() {
		w.sync()
		close(done)
	})
	w.rt.HelpFlows(done, []*sched.Flow{w.flow})
}

// Snapshot schedules a compaction: build runs on the Writer's flow — so
// it observes a state that includes every record appended before the call
// and none after — and its result replaces the snapshot, discarding the
// log. A nil build result skips the compaction.
func (w *Writer) Snapshot(build func() []byte) {
	if w.closed.Load() {
		return
	}
	w.flow.Submit(func() {
		snap := build()
		if snap == nil {
			return
		}
		if err := w.be.WriteSnapshot(snap); err != nil {
			w.setErr(err)
		}
	})
}

// Err returns the first backend error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns the number of records written and Syncs issued.
func (w *Writer) Stats() (records, syncs uint64) {
	return w.records.Load(), w.syncs.Load()
}

// Close flushes every queued record, fsyncs, closes the backend, and
// releases the flow. Idempotent; concurrent Appends that lose the race
// are dropped (the caller is shutting down).
func (w *Writer) Close() {
	if !w.closed.CompareAndSwap(false, true) {
		return
	}
	done := make(chan struct{})
	w.flow.Submit(func() {
		w.sync()
		close(done)
	})
	w.rt.HelpFlows(done, []*sched.Flow{w.flow})
	if err := w.be.Close(); err != nil {
		w.setErr(err)
	}
	w.flow.Release()
}

// Abort closes the backend without flushing, discarding unsynced records
// — the in-process kill -9. Queued flow tasks still run but hit the
// closed backend and become no-ops.
func (w *Writer) Abort() {
	if !w.closed.CompareAndSwap(false, true) {
		return
	}
	w.be.Abort()
	w.flow.Release()
}

func (w *Writer) sync() {
	if err := w.be.Sync(); err != nil {
		w.setErr(err)
		return
	}
	w.syncs.Add(1)
}

func (w *Writer) setErr(err error) {
	if err == nil || err == ErrClosed {
		return
	}
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}
