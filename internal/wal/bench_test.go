package wal

import (
	"fmt"
	"testing"

	"astro/internal/sched"
)

// BenchmarkWriterAppendFile measures the amortized cost of one durable
// record through the full Writer path (flow hop + framing + tail-sync
// fsync batching) against a real file. One Barrier per 256 records models
// the broadcast-reservation cadence.
func BenchmarkWriterAppendFile(b *testing.B) {
	benchWriterAppend(b, func(b *testing.B) Backend {
		be, err := Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return be
	})
}

// BenchmarkWriterAppendNop is the same path with the Nop backend: the
// gap to BenchmarkWriterAppendFile is the pure I/O (write+fsync) cost.
func BenchmarkWriterAppendNop(b *testing.B) {
	benchWriterAppend(b, func(*testing.B) Backend { return Nop{} })
}

func benchWriterAppend(b *testing.B, open func(*testing.B) Backend) {
	rt := sched.New(2)
	defer rt.Close()
	w := NewWriter(open(b), rt)
	payload := make([]byte, 96) // ~ one settled-batch record per payment
	b.SetBytes(int64(FrameSize(len(payload))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		w.Append(2, buf)
		if i%256 == 255 {
			w.Barrier()
		}
	}
	w.Barrier()
	b.StopTimer()
	w.Close()
	if err := w.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkReplay measures recovery-replay time as a function of log
// length: Load over a log of n records, the denominator of the
// "restart dip" in the recovery experiments.
func BenchmarkReplay(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			be, err := Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 96)
			for i := 0; i < n; i++ {
				if err := be.Append(2, payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := be.Sync(); err != nil {
				b.Fatal(err)
			}
			if err := be.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				got := 0
				if err := r.Load(nil, func(byte, []byte) error { got++; return nil }); err != nil {
					b.Fatal(err)
				}
				if got != n {
					b.Fatalf("replayed %d, want %d", got, n)
				}
				r.Close()
			}
		})
	}
}
