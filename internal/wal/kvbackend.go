package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"astro/internal/kv"
)

// manifestKey is the KV key holding the compacted snapshot (the PR 10
// incremental manifest, or a full image in resident mode). It shares the
// store with core's per-account records — distinct by prefix — so one
// index publish commits the manifest and every flushed account
// atomically.
var manifestKey = []byte("!manifest")

// KVBackend is a Backend whose snapshot side lives in an embedded KV
// store (internal/kv) instead of a single snapshot file. The append log
// keeps the exact FileBackend discipline (buffered appends, one fsync
// per Sync, torn-tail repair on Load); WriteSnapshot stores the snapshot
// bytes under a reserved key and publishes the store — fsync of the page
// file, then one atomic index rename — before truncating the log.
//
// The store doubles as the paging backend for core's bounded-residency
// account state (AccountStore): account records written by evictions and
// dirty flushes ride the same publish, so the committed cut is always
// manifest + accounts + log tail, with one commit point.
type KVBackend struct {
	dir   string
	store *kv.Store

	mu     sync.Mutex
	log    *os.File
	buf    []byte // framed records appended since the last Sync
	err    error  // first I/O error; sticky
	closed bool
}

var _ Backend = (*KVBackend)(nil)

// OpenKV creates or recovers a KV-backed data directory: the store's own
// recovery runs here (index load + bounded scan), the log is opened but
// not read until Load.
func OpenKV(dir string) (*KVBackend, error) {
	store, err := kv.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		store.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &KVBackend{dir: dir, store: store, log: f}, nil
}

// OpenAuto selects the backend for dir: the KV backend when paging is
// requested or when the directory already holds a KV store (so a replica
// restarted with paging off still sees every spilled account), else the
// plain file backend. The choice must stay stable per directory in the
// one remaining direction: a FileBackend directory restarted with paging
// on starts the store empty, which is safe only because the legacy
// snapshot file is then still read by Load (see below).
func OpenAuto(dir string, paged bool) (Backend, error) {
	if !paged {
		if _, err := os.Stat(filepath.Join(dir, "kv.index")); err != nil {
			return Open(dir)
		}
	}
	return OpenKV(dir)
}

// Dir returns the backend's data directory.
func (b *KVBackend) Dir() string { return b.dir }

// AccountStore exposes the embedded store for core's account pager. The
// store is long-lived (owned by this backend); core must stop using it
// after Close/Abort.
func (b *KVBackend) AccountStore() *kv.Store { return b.store }

// Append implements Backend: the record is framed into the in-memory
// batch and becomes durable at the next Sync.
func (b *KVBackend) Append(kind byte, payload []byte) error {
	if err := checkRecord(payload); err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	b.buf = AppendFrame(b.buf, kind, payload)
	return nil
}

// Sync implements Backend: every buffered record is written to the log
// and fsynced as one batch.
func (b *KVBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	if len(b.buf) == 0 {
		return nil
	}
	if _, err := b.log.Write(b.buf); err != nil {
		return b.fail(err)
	}
	if err := b.log.Sync(); err != nil {
		return b.fail(err)
	}
	b.buf = b.buf[:0]
	return nil
}

// WriteSnapshot implements Backend: the snapshot bytes are stored under
// the manifest key and the store is published — one fsync of the page
// file, then the atomic index rename that commits the manifest AND every
// account record written since the last publish — and only then is the
// log truncated. A crash between publish and truncate leaves a stale
// tail the snapshot already covers (replay is idempotent); a crash
// before the publish leaves the previous cut fully intact.
func (b *KVBackend) WriteSnapshot(snap []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	if err := b.store.Put(manifestKey, snap); err != nil {
		return b.fail(err)
	}
	if err := b.store.Publish(); err != nil {
		return b.fail(err)
	}
	if err := b.log.Truncate(0); err != nil {
		return b.fail(err)
	}
	if _, err := b.log.Seek(0, 0); err != nil {
		return b.fail(err)
	}
	if err := b.log.Sync(); err != nil {
		return b.fail(err)
	}
	b.buf = b.buf[:0]
	return nil
}

// Load implements Backend: the snapshot comes from the store's manifest
// key (falling back to a legacy FileBackend snapshot file, the
// paging-was-just-enabled migration), then the log replays with
// torn-tail repair, exactly like FileBackend.
func (b *KVBackend) Load(onSnapshot func([]byte) error, onRecord func(byte, []byte) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.usableLocked(); err != nil {
		return err
	}
	snap, ok, err := b.store.Get(manifestKey)
	if err != nil {
		return b.fail(err)
	}
	if !ok {
		if legacy, rerr := os.ReadFile(filepath.Join(b.dir, snapName)); rerr == nil {
			snap, ok = legacy, true
		}
	}
	if ok && len(snap) > 0 && onSnapshot != nil {
		if err := onSnapshot(snap); err != nil {
			return err
		}
	}
	data, err := os.ReadFile(filepath.Join(b.dir, logName))
	if err != nil {
		return b.fail(err)
	}
	valid, err := ScanFrames(data, onRecord)
	if err != nil {
		return err
	}
	if valid < len(data) {
		if err := b.log.Truncate(int64(valid)); err != nil {
			return b.fail(err)
		}
		if err := b.log.Sync(); err != nil {
			return b.fail(err)
		}
	}
	if _, err := b.log.Seek(int64(valid), 0); err != nil {
		return b.fail(err)
	}
	return nil
}

// Close implements Backend: buffered records are synced, the store
// publishes a final checkpoint, and both files close. Idempotent.
func (b *KVBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	var firstErr error
	if b.err == nil && len(b.buf) > 0 {
		if _, err := b.log.Write(b.buf); err != nil {
			firstErr = err
		} else if err := b.log.Sync(); err != nil {
			firstErr = err
		}
	}
	b.closed = true
	b.buf = nil
	if err := b.store.Close(); firstErr == nil {
		firstErr = err
	}
	if err := b.log.Close(); firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Abort implements Backend: unsynced records and unpublished store
// writes are discarded — the in-process equivalent of kill -9.
func (b *KVBackend) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.buf = nil
	b.store.Abort()
	b.log.Close()
}

// Err surfaces the backend's first I/O error (including the store's).
func (b *KVBackend) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	return b.store.Err()
}

func (b *KVBackend) usableLocked() error {
	if b.closed {
		return ErrClosed
	}
	return b.err
}

func (b *KVBackend) fail(err error) error {
	if b.err == nil {
		b.err = fmt.Errorf("wal: %w", err)
	}
	return b.err
}
