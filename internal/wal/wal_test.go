package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"astro/internal/sched"
)

type rec struct {
	kind    byte
	payload []byte
}

func loadAll(t *testing.T, b Backend) (snap []byte, recs []rec) {
	t.Helper()
	err := b.Load(
		func(s []byte) error { snap = append([]byte(nil), s...); return nil },
		func(k byte, p []byte) error {
			recs = append(recs, rec{k, append([]byte(nil), p...)})
			return nil
		},
	)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return snap, recs
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{1, []byte("alpha")},
		{2, nil},
		{3, bytes.Repeat([]byte{0xab}, 1000)},
	}
	for _, r := range want {
		if err := b.Append(r.kind, r.payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	snap, got := loadAll(t, b2)
	if snap != nil {
		t.Fatalf("unexpected snapshot %q", snap)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].kind != want[i].kind || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFileBackendCloseFlushesUnsynced(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(7, []byte("no explicit sync")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	_, got := loadAll(t, b2)
	if len(got) != 1 || got[0].kind != 7 {
		t.Fatalf("clean Close dropped buffered record: %v", got)
	}
}

func TestFileBackendAbortDiscardsUnsynced(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(2, []byte("torn away")); err != nil {
		t.Fatal(err)
	}
	b.Abort() // kill -9: the second record never reached disk

	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	_, got := loadAll(t, b2)
	if len(got) != 1 || got[0].kind != 1 {
		t.Fatalf("want only the synced record, got %v", got)
	}
}

func TestFileBackendSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.Append(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteSnapshot([]byte("state@5")); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	snap, got := loadAll(t, b2)
	if string(snap) != "state@5" {
		t.Fatalf("snapshot = %q", snap)
	}
	if len(got) != 1 || got[0].kind != 2 {
		t.Fatalf("want only post-snapshot records, got %v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName+".tmp")); !os.IsNotExist(err) {
		t.Fatalf("snapshot tmp file left behind: %v", err)
	}
}

// TestTornTailEveryOffset truncates the log at every byte offset inside
// the last record's frame and asserts replay stops cleanly at the last
// valid record: no panic, no partial apply, and the file is repaired to
// the valid prefix.
func TestTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	b, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Append(byte(i+1), bytes.Repeat([]byte{byte(i)}, 20+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(master, logName))
	if err != nil {
		t.Fatal(err)
	}
	lastLen := FrameSize(20 + 2*7)
	prefix := len(full) - lastLen
	if prefix < 0 {
		t.Fatalf("log smaller than last frame: %d < %d", len(full), lastLen)
	}

	for cut := prefix; cut < len(full); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, got := loadAll(t, b)
		if len(got) != 2 {
			t.Fatalf("cut at %d: got %d records, want 2", cut, len(got))
		}
		// The torn tail must be repaired on disk.
		st, err := os.Stat(filepath.Join(dir, logName))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() != int64(prefix) {
			t.Fatalf("cut at %d: log not truncated to valid prefix: %d != %d", cut, st.Size(), prefix)
		}
		// Appends must continue cleanly from the repaired tail.
		if err := b.Append(9, []byte("resumed")); err != nil {
			t.Fatal(err)
		}
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		b2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, again := loadAll(t, b2)
		if len(again) != 3 || again[2].kind != 9 {
			t.Fatalf("cut at %d: resume after repair failed: %v", cut, again)
		}
		b2.Close()
	}
}

// TestCorruptTailEveryOffset flips one bit at every byte offset inside the
// last record's frame and asserts replay stops at the last valid record.
func TestCorruptTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	b, err := Open(master)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := b.Append(byte(i+1), bytes.Repeat([]byte{byte(i)}, 20+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(master, logName))
	if err != nil {
		t.Fatal(err)
	}
	prefix := len(full) - FrameSize(20+2*7)

	for off := prefix; off < len(full); off++ {
		dir := t.TempDir()
		mut := append([]byte(nil), full...)
		mut[off] ^= 0x40
		if err := os.WriteFile(filepath.Join(dir, logName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		_, got := loadAll(t, b)
		// A flipped bit in the last frame must never yield a third record
		// (CRC or framing catches it), and must never lose the first two.
		if len(got) != 2 {
			t.Fatalf("corrupt at %d: got %d records, want 2", off, len(got))
		}
		b.Close()
	}
}

func TestScanFramesZeroAndOversizedLength(t *testing.T) {
	var log []byte
	log = AppendFrame(log, 1, []byte("ok"))
	valid := len(log)
	// Zero length: must stop, not loop forever.
	log = append(log, make([]byte, 16)...)
	n, err := ScanFrames(log, nil)
	if err != nil || n != valid {
		t.Fatalf("zero-length frame: n=%d err=%v, want %d", n, err, valid)
	}
	// Oversized length prefix: must stop, not allocate.
	log = log[:valid]
	log = append(log, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1)
	n, err = ScanFrames(log, nil)
	if err != nil || n != valid {
		t.Fatalf("oversized frame: n=%d err=%v, want %d", n, err, valid)
	}
}

// countBackend wraps Nop, counting operations, to observe the Writer's
// batching discipline.
type countBackend struct {
	mu      sync.Mutex
	appends int
	syncs   int
	snaps   [][]byte
}

func (c *countBackend) Append(byte, []byte) error {
	c.mu.Lock()
	c.appends++
	c.mu.Unlock()
	return nil
}

func (c *countBackend) Sync() error {
	c.mu.Lock()
	c.syncs++
	c.mu.Unlock()
	return nil
}

func (c *countBackend) WriteSnapshot(s []byte) error {
	c.mu.Lock()
	c.snaps = append(c.snaps, append([]byte(nil), s...))
	c.mu.Unlock()
	return nil
}

func (c *countBackend) Load(func([]byte) error, func(byte, []byte) error) error { return nil }
func (c *countBackend) Close() error                                            { return nil }
func (c *countBackend) Abort()                                                  {}

func TestWriterBarrierAndTailSync(t *testing.T) {
	rt := sched.New(2)
	defer rt.Close()
	cb := &countBackend{}
	w := NewWriter(cb, rt)

	const n = 500
	for i := 0; i < n; i++ {
		w.Append(1, []byte{byte(i)})
	}
	w.Barrier()
	cb.mu.Lock()
	appends, syncs := cb.appends, cb.syncs
	cb.mu.Unlock()
	if appends != n {
		t.Fatalf("appends = %d, want %d", appends, n)
	}
	if syncs == 0 {
		t.Fatal("no sync issued by barrier")
	}
	if syncs > appends {
		t.Fatalf("more syncs (%d) than appends (%d): tail sync not batching", syncs, appends)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close() // idempotent
}

func TestWriterSnapshotOrdering(t *testing.T) {
	rt := sched.New(2)
	defer rt.Close()
	cb := &countBackend{}
	w := NewWriter(cb, rt)

	w.Append(1, []byte("before"))
	w.Snapshot(func() []byte {
		// Runs on the flow: the append before must have reached the
		// backend already.
		cb.mu.Lock()
		defer cb.mu.Unlock()
		return []byte(fmt.Sprintf("appends=%d", cb.appends))
	})
	w.Barrier()
	cb.mu.Lock()
	snaps := len(cb.snaps)
	var first string
	if snaps > 0 {
		first = string(cb.snaps[0])
	}
	cb.mu.Unlock()
	if snaps != 1 || first != "appends=1" {
		t.Fatalf("snapshot ordering violated: %d snaps, first=%q", snaps, first)
	}
	w.Close()
}

func TestWriterFileEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rt := sched.New(2)
	defer rt.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(nil, nil); err != nil {
		t.Fatal(err)
	}
	w := NewWriter(b, rt)
	for i := 0; i < 100; i++ {
		w.Append(3, []byte{byte(i)})
	}
	w.Close()
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	_, got := loadAll(t, b2)
	if len(got) != 100 {
		t.Fatalf("got %d records, want 100", len(got))
	}
	for i, r := range got {
		if r.kind != 3 || len(r.payload) != 1 || r.payload[0] != byte(i) {
			t.Fatalf("record %d out of order or corrupt: %+v", i, r)
		}
	}
}

func TestWriterAbort(t *testing.T) {
	dir := t.TempDir()
	rt := sched.New(2)
	defer rt.Close()
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(b, rt)
	w.Append(1, []byte("x"))
	w.Barrier()
	w.Append(2, []byte("y")) // may or may not be synced before the kill
	w.Abort()
	if err := w.Err(); err != nil {
		t.Fatalf("abort must not surface errors: %v", err)
	}

	b2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	_, got := loadAll(t, b2)
	if len(got) < 1 || got[0].kind != 1 {
		t.Fatalf("barrier'd record lost across abort: %v", got)
	}
}
