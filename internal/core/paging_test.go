package core

import (
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"astro/internal/kv"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wal"
)

// pagedState builds a State paging against a fresh KV store in a temp
// directory, with the given cache bound.
func pagedState(t *testing.T, v Version, genesis func(types.ClientID) types.Amount, cache int) (*State, *kv.Store) {
	t.Helper()
	store, err := kv.Open(t.TempDir())
	if err != nil {
		t.Fatalf("kv open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	return NewStatePaged(v, genesis, nil, DefaultStateStripes, store, cache), store
}

// equivalenceOps is a deterministic delivery sequence over nClients
// accounts: every payment is funded (so settlement is immediate and the
// final state is order-independent), spenders cycle the key space, and
// beneficiaries hop a co-prime stride so credits land everywhere.
func equivalenceOps(nClients, nOps int) []BatchEntry {
	ops := make([]BatchEntry, 0, nOps)
	seqs := make(map[types.ClientID]types.Seq)
	for i := 0; i < nOps; i++ {
		sp := types.ClientID(i%nClients + 1)
		bn := types.ClientID((i*7+3)%nClients + 1)
		if bn == sp {
			bn = sp%types.ClientID(nClients) + 1
		}
		seqs[sp]++
		ops = append(ops, BatchEntry{Payment: pay(sp, seqs[sp], bn, types.Amount(i%17+1))})
	}
	return ops
}

// TestPagedResidentEquivalence drives the identical delivery sequence
// through a fully resident state and through paged states at generous and
// starvation-level cache bounds. Every observable — counters, total
// settled balance, the canonical account exports — must be identical:
// paging is a memory-management policy, never a semantics change.
func TestPagedResidentEquivalence(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		const nClients, nOps = 200, 2000
		gen := func(types.ClientID) types.Amount { return 1 << 20 }
		ops := equivalenceOps(nClients, nOps)

		run := func(s *State) {
			for _, e := range ops {
				s.ApplyEntry(e)
			}
		}
		want := NewState(v, gen, nil)
		run(want)
		wantAcc := want.ExportAccounts()
		wantCnt := want.Counters()
		wantTot := want.TotalSettledBalance()

		for _, cache := range []int{64, 4} {
			s, _ := pagedState(t, v, gen, cache)
			run(s)
			if got := s.Counters(); got != wantCnt {
				t.Errorf("cache %d: counters %+v, want %+v", cache, got, wantCnt)
			}
			if got := s.TotalSettledBalance(); got != wantTot {
				t.Errorf("cache %d: total %d, want %d", cache, got, wantTot)
			}
			if got := s.ExportAccounts(); !reflect.DeepEqual(got, wantAcc) {
				t.Errorf("cache %d: account exports diverge from resident state", cache)
			}
			st := s.PagingStats()
			if st.Evictions == 0 {
				t.Errorf("cache %d: no evictions — cache bound not exercised", cache)
			}
			if st.Resident > cache+2*DefaultStateStripes {
				t.Errorf("cache %d: %d accounts resident", cache, st.Resident)
			}
			if err := s.PagerErr(); err != nil {
				t.Errorf("cache %d: pager error: %v", cache, err)
			}
		}
	})
}

// TestPagedConcurrentEquivalence exercises the pager under the race
// detector: goroutines with disjoint spender sets settle concurrently
// against a starvation-level cache, so faults and evictions interleave
// across stripes, then the result is compared to the resident state.
func TestPagedConcurrentEquivalence(t *testing.T) {
	const nClients, nOps, workers = 128, 1536, 8
	gen := func(types.ClientID) types.Amount { return 1 << 20 }
	ops := equivalenceOps(nClients, nOps)

	want := NewState(AstroI, gen, nil)
	for _, e := range ops {
		want.ApplyEntry(e)
	}

	s, _ := pagedState(t, AstroI, gen, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, e := range ops {
				if int(e.Payment.Spender)%workers == w {
					s.ApplyEntry(e)
				}
			}
		}(w)
	}
	wg.Wait()

	if got, wantTot := s.TotalSettledBalance(), want.TotalSettledBalance(); got != wantTot {
		t.Errorf("total settled balance %d, want %d", got, wantTot)
	}
	if got := s.ExportAccounts(); !reflect.DeepEqual(got, want.ExportAccounts()) {
		t.Error("concurrent paged exports diverge from resident state")
	}
	if err := s.PagerErr(); err != nil {
		t.Errorf("pager error: %v", err)
	}
}

// TestPagedPersistenceRoundTrip flushes a paged state to its store,
// publishes, reopens the directory, and faults every account back into a
// fresh state: balances, sequence numbers, and xlogs must survive.
func TestPagedPersistenceRoundTrip(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		const nClients, nOps = 64, 500
		gen := func(types.ClientID) types.Amount { return 1 << 20 }
		dir := t.TempDir()
		store, err := kv.Open(dir)
		if err != nil {
			t.Fatalf("kv open: %v", err)
		}
		s := NewStatePaged(v, gen, nil, DefaultStateStripes, store, 16)
		for _, e := range equivalenceOps(nClients, nOps) {
			s.ApplyEntry(e)
		}
		want := s.ExportAccounts()
		if err := s.FlushDirty(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := store.Publish(); err != nil {
			t.Fatalf("publish: %v", err)
		}
		if err := store.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		store2, err := kv.Open(dir)
		if err != nil {
			t.Fatalf("kv reopen: %v", err)
		}
		defer store2.Close()
		s2 := NewStatePaged(v, gen, nil, DefaultStateStripes, store2, 16)
		if got := s2.ExportAccounts(); !reflect.DeepEqual(got, want) {
			t.Error("exports after reopen diverge")
		}
		// Fault a few accounts onto the hot path and re-verify invariants.
		for cl := types.ClientID(1); cl <= 8; cl++ {
			if !s2.XLog(cl).Verify() {
				t.Errorf("client %d: faulted xlog fails Verify", cl)
			}
		}
		if st := s2.PagingStats(); st.Faults == 0 {
			t.Error("no faults recorded on reopened state")
		}
	})
}

// pagedWalCluster builds a cluster whose replicas page their account
// state against KV-backed WALs with a starvation-level cache, aggressive
// snapshot cadence, and therefore constant eviction + incremental
// manifest traffic.
func pagedWalCluster(t *testing.T, version Version, n int, dir string, cache int) *cluster {
	t.Helper()
	return newCluster(t, version, n, genesis100, func(cfg *Config) {
		be, err := wal.OpenKV(filepath.Join(dir, "rep"+strconv.Itoa(int(cfg.Self))))
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		cfg.WAL = be
		cfg.WALSnapshotEvery = 3
		cfg.StateCacheAccounts = cache
	})
}

// TestPagedReplicaCloseRecover is TestReplicaCloseRecover with paging on:
// a clean shutdown writes an incremental manifest (dirty accounts + meta)
// instead of a full image, and the restarted replica faults its accounts
// back from the store.
func TestPagedReplicaCloseRecover(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		dir := t.TempDir()
		c := pagedWalCluster(t, v, 1, dir, 4)
		alice := c.client(1)
		for i := 0; i < 5; i++ {
			c.payAndWait(alice, 2, 10)
		}
		c.waitSettledEverywhere(5, 5*time.Second)
		deadline := time.Now().Add(5 * time.Second)
		for c.replicas[0].Balance(2) != 150 {
			if time.Now().After(deadline) {
				t.Fatalf("client 2's credits never materialized: balance %d",
					c.replicas[0].Balance(2))
			}
			time.Sleep(2 * time.Millisecond)
		}

		c.net.Crash(transport.ReplicaNode(0))
		c.replicas[0].Close()

		r := c.restart(0, dir, nil)
		if bal := r.Balance(1); bal != 50 {
			t.Errorf("balance(1) = %d, want 50", bal)
		}
		if bal := r.Balance(2); bal != 150 {
			t.Errorf("balance(2) = %d, want 150", bal)
		}
		if log := r.XLogSnapshot(1); len(log) != 5 {
			t.Errorf("xlog(1) = %d entries, want 5", len(log))
		}
		if seq := r.NextSeq(1); seq != 6 {
			t.Errorf("nextSeq(1) = %d, want 6", seq)
		}
		if err := r.WALErr(); err != nil {
			t.Errorf("wal error after recovery: %v", err)
		}
		if err := r.PagerErr(); err != nil {
			t.Errorf("pager error after recovery: %v", err)
		}

		if _, err := alice.SyncSeq(2 * time.Second); err != nil {
			t.Fatalf("sync seq: %v", err)
		}
		c.payAndWait(alice, 2, 10)
		if bal := r.Balance(1); bal != 40 {
			t.Errorf("balance(1) after restart payment = %d, want 40", bal)
		}
	})
}

// TestPagedReplicaKillRecover is the kill -9 conservation check with
// paging on: the victim's synced cut (manifest + published accounts +
// log tail) must rebuild a state that converges with the healthy peers,
// including credit-certificate balances.
func TestPagedReplicaKillRecover(t *testing.T) {
	dir := t.TempDir()
	c := pagedWalCluster(t, AstroII, 4, dir, 4)
	all := []types.ClientID{1, 2, 3, 100}
	victim := types.ReplicaID(3)
	for i := 0; i < 4; i++ {
		c.payAndWait(c.client(1), 100, 1)
		c.payAndWait(c.client(2), 100, 1)
	}
	c.payAndWait(c.client(1), 3, 20)
	c.payAndWait(c.client(1), 3, 20)
	c.waitSettledEverywhere(10, 10*time.Second)

	deadline := time.Now().Add(5 * time.Second)
	for c.replicas[victim].Balance(3) != 140 {
		if time.Now().After(deadline) {
			t.Fatalf("victim never saw client 3's credits: balance %d",
				c.replicas[victim].Balance(3))
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.replicas[victim].wal.Barrier()

	c.net.Crash(transport.ReplicaNode(victim))
	c.replicas[victim].Abandon()
	for i := 0; i < 3; i++ {
		c.payAndWait(c.clients[1], 100, 1)
		c.payAndWait(c.clients[2], 100, 1)
	}

	r := c.restart(victim, dir, c.replicas[0])
	waitXLogsMatch(t, c.replicas[0], r, all, 5*time.Second)
	for _, cl := range all {
		if want, got := c.replicas[0].state.Balance(cl), r.state.Balance(cl); want != got {
			t.Errorf("client %d: settled balance %d, want %d", cl, got, want)
		}
	}
	if got := r.Balance(3); got != 140 {
		t.Errorf("client 3 spendable balance after recovery = %d, want 140", got)
	}
	if err := r.PagerErr(); err != nil {
		t.Errorf("pager error after recovery: %v", err)
	}
	if cnt := r.Counters(); cnt.Conflicts != 0 {
		t.Errorf("recovery produced %d conflicts", cnt.Conflicts)
	}
}
