package core

import (
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Chain-by-digest references on the credit channel (PR 4; the payment-side
// twin of brb's chainref.go — see the protocol prose there and on the
// msgCredit* kinds). This file keeps the replica's reference state:
//
//   - creditChains: receiver side — per sending replica, a bounded LRU of
//     the chains that replica has defined, keyed by the locally recomputed
//     CreditChainDigest. Per-peer bounding means no replica can evict
//     another's definitions; the cache doubles as the chain *interning*
//     table — every CREDITBATCH or resolved CREDITREF from one signer
//     yields the same canonical []types.Digest backing, so the k DepSigs
//     of one wave share storage and the certificate encoder's
//     equal-chain test hits its pointer fast path;
//   - creditWaves: sender side — a bounded buffer of recently signed waves
//     (chain, signature, jobs), from which a CREDITNACK is answered with a
//     self-contained legacy CREDITBATCH. A wave evicted before a NACK
//     arrives is simply not retransmitted: the dependency still forms from
//     the other >= f+1 signers, which is the fault model's job anyway.
//
// Unlike the BRB side, there is no per-destination sent-set: every wave
// signs a brand-new chain (the digests of its freshly settled groups), so
// a chain is never referenced across waves and its CHAINDEF is simply
// sent ahead of each destination's first (and only) reference.
//
// Both structures hang off chainMu; the lock is never held across a
// transport send or a signature operation.

// creditChainCacheEntries bounds the per-peer credit chain caches and the
// retransmit buffer. At the creditChainCap chain length this is ~64 KiB
// per peer of digests plus one wave's jobs per retained entry.
const creditChainCacheEntries = 64

// CreditRefStats counts the credit-channel reference traffic at one
// replica, for tests and the benchmark harness: CREDITCHAINDEF/CREDITREF/
// legacy CREDITBATCH sends (NACK retransmits count under FullSends),
// inbound reference cache hits and misses, and NACK round trips. The
// shape is shared with the BRB commit path's identical protocol
// (types.RefStats).
type CreditRefStats = types.RefStats

// CreditRefStats returns the credit chain-reference counters.
func (r *Replica) CreditRefStats() CreditRefStats {
	return r.creditRefStats.Snapshot()
}

// retainedWave is one signed settlement wave kept for NACK retransmission.
type retainedWave struct {
	chain []types.Digest
	sig   []byte
	jobs  []creditJob
}

// learnCreditChain caches (and interns) a chain defined by peer, returning
// the canonical slice: the already-cached copy if the digest is known, the
// given one otherwise. Chains longer than an honest wave are not cached.
func (r *Replica) learnCreditChain(peer types.ReplicaID, digest types.Digest, chain []types.Digest) []types.Digest {
	if len(chain) == 0 || len(chain) > creditChainCap {
		return chain
	}
	r.chainMu.Lock()
	defer r.chainMu.Unlock()
	return r.creditChains.Intern(peer, digest, chain)
}

// knownCreditChain resolves a chain reference from peer, touching it. A
// per-peer miss falls through to the content-addressed any-peer probe:
// replicas with aligned wave boundaries sign byte-identical chains (the
// enqueue order in postSettle is replica-deterministic), so the chain this
// replica signed — or learned from any aligned signer — resolves every
// other signer's reference to it. The cache key is the locally recomputed
// digest, so a cross-peer hit is exactly as trustworthy as an own-peer one.
func (r *Replica) knownCreditChain(peer types.ReplicaID, digest types.Digest) ([]types.Digest, bool) {
	r.chainMu.Lock()
	defer r.chainMu.Unlock()
	if chain, ok := r.creditChains.Get(peer, digest); ok {
		return chain, true
	}
	return r.creditChains.GetAny(digest)
}

// retainCreditWave buffers a signed wave for NACK retransmission.
func (r *Replica) retainCreditWave(digest types.Digest, w retainedWave) {
	r.chainMu.Lock()
	r.creditWaves.Put(digest, w)
	r.chainMu.Unlock()
}

// handleCreditNack answers a destination that could not resolve a chain
// reference. In lazy-definition mode (the default) the NACK is the demand
// path: the chain's CREDITCHAINDEF goes out followed by the reference
// again, on the same FIFO channel. In eager mode a NACK means eviction,
// and the answer is the self-contained legacy CREDITBATCH.
func (r *Replica) handleCreditNack(from transport.NodeID, digest types.Digest) {
	r.creditRefStats.NacksReceived.Add(1)
	rep := types.ReplicaID(from)
	r.chainMu.Lock()
	wave, ok := r.creditWaves.Get(digest)
	r.chainMu.Unlock()
	if !ok {
		return // evicted; the >= f+1 other signers carry the dependency
	}
	var gs []creditBatchGroup
	for i, j := range wave.jobs {
		if j.rep == rep {
			gs = append(gs, creditBatchGroup{ChainIdx: uint32(i), Group: j.group})
		}
	}
	if len(gs) == 0 {
		return // NACK for a wave that had nothing addressed to the sender
	}
	if !r.cfg.EagerChainDefs {
		def := wire.NewWriter(creditChainDefSize(wave.chain))
		appendCreditChainDef(def, wave.chain)
		_ = r.cfg.Mux.Send(from, transport.ChanCredit, def.Bytes())
		r.creditRefStats.DefsSent.Add(1)
		r.creditRefStats.DefsDemanded.Add(1)
		m := creditRefMsg{Signer: r.cfg.Self, ChainDigest: digest, Sig: wave.sig, Groups: gs}
		ref := wire.NewWriter(creditRefSize(m))
		appendCreditRef(ref, m)
		_ = r.cfg.Mux.Send(from, transport.ChanCredit, ref.Bytes())
		r.creditRefStats.RefsSent.Add(1)
		return
	}
	msg := encodeCreditBatch(creditBatchMsg{Signer: r.cfg.Self, Chain: wave.chain, Sig: wave.sig, Groups: gs})
	_ = r.cfg.Mux.Send(from, transport.ChanCredit, msg)
	r.creditRefStats.FullSends.Add(1)
}
