package core

// Adversarial wire helpers for the credit channel, mirroring
// internal/brb/adversary.go: the pieces a Byzantine replica behavior
// needs to inspect and corrupt CREDIT traffic at the transport boundary,
// and to forge hostile NACKs. Wire-level only; no replica state. The
// same helpers seed the credit-channel fuzz corpora.

import "astro/internal/types"

// Exported credit message-kind bytes (first byte of every ChanCredit
// frame), for behaviors that dispatch on frame kind.
const (
	CreditKindSingle   = msgCreditSingle
	CreditKindBatch    = msgCreditBatch
	CreditKindChainDef = msgCreditChainDef
	CreditKindRef      = msgCreditRef
	CreditKindNack     = msgCreditNack
	CreditKindRedo     = msgCreditRedo
)

// CreditFrameKind returns a credit frame's kind byte (0 for an empty
// frame).
func CreditFrameKind(frame []byte) byte {
	if len(frame) == 0 {
		return 0
	}
	return frame[0]
}

// CorruptCreditRefs returns a structurally valid mutation of a
// CREDITCHAINDEF or CREDITREF frame with its chain digests perturbed by
// salt — the credit-channel half of the forged chain-reference attack. A
// corrupted definition caches a chain no wave signature matches; a
// corrupted reference names a chain the receiver does not know, forcing
// the CREDITNACK → legacy CREDITBATCH fallback. Other kinds return
// (nil, false).
func CorruptCreditRefs(frame []byte, salt byte) ([]byte, bool) {
	if salt == 0 {
		salt = 0xa5
	}
	switch CreditFrameKind(frame) {
	case msgCreditChainDef:
		chain, err := decodeCreditChainDef(frame[1:])
		if err != nil {
			return nil, false
		}
		for i := range chain {
			chain[i][0] ^= salt
		}
		return encodeCreditChainDef(chain), true
	case msgCreditRef:
		m, err := decodeCreditRef(frame[1:])
		if err != nil {
			return nil, false
		}
		m.ChainDigest[0] ^= salt
		return encodeCreditRef(m), true
	default:
		return nil, false
	}
}

// CreditNackFor builds the CREDITNACK a hostile receiver would answer a
// CREDITREF with, naming the referenced chain digest — the building block
// of a credit NACK storm. Returns (nil, false) for other kinds.
func CreditNackFor(frame []byte) ([]byte, bool) {
	if CreditFrameKind(frame) != msgCreditRef {
		return nil, false
	}
	m, err := decodeCreditRef(frame[1:])
	if err != nil {
		return nil, false
	}
	return encodeCreditNack(m.ChainDigest), true
}

// EncodeCreditNack builds a CREDITNACK for an arbitrary digest (forged
// NACKs naming chains that never existed). Exported for adversarial
// tests and fuzz seeding.
func EncodeCreditNack(missing types.Digest) []byte {
	return encodeCreditNack(missing)
}
