package core

// Adversarial wire helpers for the credit channel, mirroring
// internal/brb/adversary.go: the pieces a Byzantine replica behavior
// needs to inspect and corrupt CREDIT traffic at the transport boundary,
// and to forge hostile NACKs. Wire-level only; no replica state. The
// same helpers seed the credit-channel fuzz corpora.

import "astro/internal/types"

// Exported credit message-kind bytes (first byte of every ChanCredit
// frame), for behaviors that dispatch on frame kind.
const (
	CreditKindSingle   = msgCreditSingle
	CreditKindBatch    = msgCreditBatch
	CreditKindChainDef = msgCreditChainDef
	CreditKindRef      = msgCreditRef
	CreditKindNack     = msgCreditNack
	CreditKindRedo     = msgCreditRedo
)

// CreditFrameKind returns a credit frame's kind byte (0 for an empty
// frame).
func CreditFrameKind(frame []byte) byte {
	if len(frame) == 0 {
		return 0
	}
	return frame[0]
}

// CorruptCreditRefs returns a structurally valid mutation of a
// CREDITCHAINDEF or CREDITREF frame with its chain digests perturbed by
// salt — the credit-channel half of the forged chain-reference attack. A
// corrupted definition caches a chain no wave signature matches; a
// corrupted reference names a chain the receiver does not know, forcing
// the CREDITNACK → legacy CREDITBATCH fallback. Other kinds return
// (nil, false).
func CorruptCreditRefs(frame []byte, salt byte) ([]byte, bool) {
	if salt == 0 {
		salt = 0xa5
	}
	switch CreditFrameKind(frame) {
	case msgCreditChainDef:
		chain, err := decodeCreditChainDef(frame[1:])
		if err != nil {
			return nil, false
		}
		for i := range chain {
			chain[i][0] ^= salt
		}
		return encodeCreditChainDef(chain), true
	case msgCreditRef:
		m, err := decodeCreditRef(frame[1:])
		if err != nil {
			return nil, false
		}
		m.ChainDigest[0] ^= salt
		return encodeCreditRef(m), true
	default:
		return nil, false
	}
}

// CreditNackFor builds the CREDITNACK a hostile receiver would answer a
// CREDITREF with, naming the referenced chain digest — the building block
// of a credit NACK storm. Returns (nil, false) for other kinds.
func CreditNackFor(frame []byte) ([]byte, bool) {
	if CreditFrameKind(frame) != msgCreditRef {
		return nil, false
	}
	m, err := decodeCreditRef(frame[1:])
	if err != nil {
		return nil, false
	}
	return encodeCreditNack(m.ChainDigest), true
}

// EncodeCreditNack builds a CREDITNACK for an arbitrary digest (forged
// NACKs naming chains that never existed). Exported for adversarial
// tests and fuzz seeding.
func EncodeCreditNack(missing types.Digest) []byte {
	return encodeCreditNack(missing)
}

// ---------------------------------------------------------------------------
// Byzantine *client* wire helpers (payment channel). A hostile client owns a
// transport node and can emit arbitrary ChanPayment frames; these builders
// produce the canonical attack forms — forged/spoofed/equivocating submits,
// sequence races, replays, and reflected control traffic — used by the
// sim.HostileClient suite, the TCP chaos harness, and the fuzz corpora.

// EncodeSubmit builds a raw submit frame for an arbitrary payment and
// signature — including payments the sender has no right to submit
// (spoofed spenders), signatures that verify under nobody's key (forged),
// and byte-identical replays of history.
func EncodeSubmit(p types.Payment, sig []byte) []byte {
	return encodeSubmit(p, sig)
}

// EncodeConfirm builds a confirmation frame — hostile when reflected *at*
// a replica (clients are the only legitimate receivers).
func EncodeConfirm(id types.PaymentID) []byte {
	return encodeConfirm(id)
}

// DecodeConfirm parses a confirmation frame (kind byte included). The
// hostile-client harness seeds real settled history before attacking it
// and uses this to learn when the seed payment confirmed.
func DecodeConfirm(frame []byte) (types.PaymentID, bool) {
	if len(frame) != 17 || frame[0] != msgConfirm {
		return types.PaymentID{}, false
	}
	return types.PaymentID{
		Spender: types.ClientID(be64(frame[1:9])),
		Seq:     types.Seq(be64(frame[9:17])),
	}, true
}

// EncodeSeqReq builds a next-sequence query for an arbitrary client
// identity — the probe half of a SyncSeq race.
func EncodeSeqReq(c types.ClientID) []byte {
	return encodeSeqReq(c)
}

// EncodeBalanceReq builds a balance query for an arbitrary client identity.
func EncodeBalanceReq(c types.ClientID) []byte {
	return encodeBalanceReq(c)
}

// EncodeStatsReq builds an edge-stats query frame.
func EncodeStatsReq() []byte {
	return encodeStatsReq()
}

// EncodeCreditForged builds a single-group CREDIT frame claiming signer
// signed the group — from a client node it must die at the sender-class
// check before any signature verification.
func EncodeCreditForged(signer types.ReplicaID, group []types.Payment, sig []byte) []byte {
	return encodeCredit(creditMsg{Signer: signer, Group: group, Sig: sig})
}

// EncodeCreditRedoRaw builds a CREDITREDO request for arbitrary payment
// groups — the re-sign flood a hostile node aims at settled history.
func EncodeCreditRedoRaw(groups [][]types.Payment) []byte {
	return encodeCreditRedo(groups)
}
