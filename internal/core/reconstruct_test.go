package core

import (
	"testing"

	"astro/internal/types"
)

func TestReconstructState(t *testing.T) {
	// Build a history on a live state, snapshot the xlogs, reconstruct,
	// and compare balances.
	src := NewState(AstroI, genesis100, nil)
	history := []types.Payment{
		pay(1, 1, 2, 30),
		pay(2, 1, 3, 120), // funded only by 1's credit
		pay(3, 1, 1, 5),
		pay(1, 2, 3, 10),
	}
	for _, p := range history {
		src.ApplyEntry(BatchEntry{Payment: p})
	}
	if src.Counters().Settled != uint64(len(history)) {
		t.Fatalf("source history incomplete: %+v", src.Counters())
	}

	xlogs := make(map[types.ClientID][]types.Payment)
	for _, c := range src.Clients() {
		xlogs[c] = src.XLog(c).Snapshot()
	}
	dst, err := ReconstructState(genesis100, xlogs)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range src.Clients() {
		if got, want := dst.Balance(c), src.Balance(c); got != want {
			t.Errorf("client %d: reconstructed balance %d, want %d", c, got, want)
		}
		if got, want := dst.NextSeq(c), src.NextSeq(c); got != want {
			t.Errorf("client %d: reconstructed seq %d, want %d", c, got, want)
		}
	}
}

func TestReconstructReplayOrderIndependence(t *testing.T) {
	// Payment 2->3 depends on 1->2's credit. Reconstruction must succeed
	// even though client 2's xlog replays before client 1's credit only
	// when ordered map iteration would... the engine's queues handle it.
	xlogs := map[types.ClientID][]types.Payment{
		2: {pay(2, 1, 3, 150)}, // needs 1's credit
		1: {pay(1, 1, 2, 100)},
	}
	s, err := ReconstructState(genesis100, xlogs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Balance(2) != 50 || s.Balance(3) != 250 {
		t.Errorf("balances: 2=%d 3=%d", s.Balance(2), s.Balance(3))
	}
}

func TestReconstructRejectsForeignPayment(t *testing.T) {
	xlogs := map[types.ClientID][]types.Payment{
		1: {pay(2, 1, 3, 5)}, // spender != owner
	}
	if _, err := ReconstructState(genesis100, xlogs); err == nil {
		t.Fatal("foreign payment accepted")
	}
}

func TestReconstructRejectsGap(t *testing.T) {
	xlogs := map[types.ClientID][]types.Payment{
		1: {pay(1, 2, 3, 5)}, // starts at seq 2
	}
	if _, err := ReconstructState(genesis100, xlogs); err == nil {
		t.Fatal("gapped xlog accepted")
	}
}

func TestReconstructRejectsOverspend(t *testing.T) {
	// A history that could never have settled (insufficient funds with
	// no incoming credits) must be rejected.
	xlogs := map[types.ClientID][]types.Payment{
		1: {pay(1, 1, 2, 1000)}, // genesis is 100
	}
	if _, err := ReconstructState(genesis100, xlogs); err == nil {
		t.Fatal("overspending history accepted")
	}
}
