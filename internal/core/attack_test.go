package core

import (
	"testing"
	"time"

	"astro/internal/brb"
	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// TestPartialPaymentsAttackBlocked reproduces the attack of paper §IV:
// without totality, a malicious representative can make only a subset of
// replicas settle a payment crediting Bob. The dependency mechanism must
// ensure Bob cannot spend unless at least f+1 replicas (one correct)
// actually approved the credit.
//
// Construction: Alice's representative broadcasts her payment but delivers
// the COMMIT to a single replica (as in brb's no-totality test). That
// replica settles and emits one CREDIT — below the f+1 threshold, so no
// dependency certificate forms and Bob's spend stays held/unfunded.
func TestPartialPaymentsAttackBlocked(t *testing.T) {
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100 // Alice
		}
		return 0 // Bob and everyone else start broke
	}
	c := newCluster(t, AstroII, 4, gen)

	// Alice's representative is replica 1 (RepOf(1) = 1); the adversary
	// controls it. Craft the partial broadcast by hand: an honest-looking
	// batch with Alice's payment, PREPAREd to all (gathering ACKs needs
	// real signatures, so sign with the harness keys), COMMITted only to
	// replica 2 — Bob's representative (RepOf(2) = 2).
	payment := types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 50}
	batch := EncodeBatch([]BatchEntry{{Payment: payment}})
	origin := c.repOf(1)
	d := brb.SignedDigest(origin, 1, batch)

	// PREPARE to everyone so honest replicas record their ACK state (the
	// adversary needs their payload endorsement to be plausible); the
	// ACKs themselves flow back to replica 1, which we simply ignore.
	prep := brb.EncodePrepare(origin, 1, batch)
	for i := 0; i < 4; i++ {
		if i == int(origin) {
			continue
		}
		_ = c.replicas[int(origin)].cfg.Mux.Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, prep)
	}

	// Build a valid 2f+1 certificate with keys the adversary could have
	// gathered, and COMMIT only to Bob's representative.
	var cert = c.certFor(t, d, 0, 1, 3)
	commit := brb.EncodeCommit(origin, 1, batch, cert)
	_ = c.replicas[int(origin)].cfg.Mux.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanBRB, commit)

	// Bob's representative settles Alice's payment (it delivered), but
	// only ONE replica emits a CREDIT: no f+1 dependency certificate can
	// form, so Bob's spendable balance stays 0 and his spend is held.
	repBob := c.replicas[int(c.repOf(2))]
	deadline := time.Now().Add(3 * time.Second)
	for repBob.SettledCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Bob's representative never settled the partial payment")
		}
		time.Sleep(2 * time.Millisecond)
	}

	bob := c.client(2)
	if _, err := bob.Pay(3, 40); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if held := repBob.PendingSubmits(2); held != 1 {
		t.Fatalf("Bob's spend not held: pending = %d (partial payment became spendable!)", held)
	}
	if bal := repBob.Balance(2); bal != 50 {
		// The settled credit is visible at the one replica that settled,
		// but it is not *spendable* without the certificate. Balance here
		// reports settled state only for non-represented views; for the
		// representative it includes deps (none formed).
		t.Logf("note: balance at Bob's rep = %d (settled locally, no certificate)", bal)
	}
	// No replica other than Bob's representative settled anything.
	for i, r := range c.replicas {
		if types.ReplicaID(i) == c.repOf(2) {
			continue
		}
		if r.SettledCount() != 0 {
			t.Errorf("replica %d settled %d payments (commit was sent only to Bob's rep)", i, r.SettledCount())
		}
	}
}

// certFor builds a certificate over d signed by the given replicas.
func (c *cluster) certFor(t *testing.T, d types.Digest, ids ...int) (cert crypto.Certificate) {
	t.Helper()
	for _, id := range ids {
		sig, err := c.keys[id].Sign(d)
		if err != nil {
			t.Fatal(err)
		}
		cert.Add(crypto.PartialSig{Replica: types.ReplicaID(id), Sig: sig})
	}
	return cert
}

// TestValidatorRejectsForeignSpender: a replica must refuse to endorse a
// batch containing a payment whose spender it does not represent.
func TestValidatorRejectsForeignSpender(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	r := c.replicas[0]
	// Replica 2 (origin) broadcasting a payment of client 1 (represented
	// by replica 1): invalid.
	batch := EncodeBatch([]BatchEntry{{Payment: pay(1, 1, 2, 5)}})
	if r.validateBatch(2, 1, batch) {
		t.Error("batch with foreign spender endorsed")
	}
	// The correct origin passes.
	if !r.validateBatch(1, 1, batch) {
		t.Error("legitimate batch rejected")
	}
}

// TestValidatorRejectsConflict: having endorsed payment (s,n), a replica
// must not endorse a different payment with the same identifier.
func TestValidatorRejectsConflict(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	r := c.replicas[0]
	a := EncodeBatch([]BatchEntry{{Payment: pay(1, 1, 2, 5)}})
	b := EncodeBatch([]BatchEntry{{Payment: pay(1, 1, 3, 99)}})
	if !r.validateBatch(1, 1, a) {
		t.Fatal("first batch rejected")
	}
	if r.validateBatch(1, 2, b) {
		t.Error("conflicting payment endorsed for the same identifier")
	}
	// Re-endorsing the same payment (e.g. a retransmission) stays fine.
	if !r.validateBatch(1, 3, a) {
		t.Error("idempotent re-endorsement rejected")
	}
}

// TestValidatorRejectsMalformedBatch: undecodable payloads are never
// endorsed.
func TestValidatorRejectsMalformedBatch(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	if c.replicas[0].validateBatch(1, 1, []byte{0xFF, 0xFF, 0xFF, 0xFF}) {
		t.Error("garbage endorsed")
	}
}
