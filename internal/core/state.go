package core

import (
	"slices"
	"sync"

	"astro/internal/types"
)

// Version selects between the paper's two systems.
type Version int

// The two Astro variants (paper §IV).
const (
	// AstroI uses Bracha's BRB (MACs, O(N²), totality). Settle credits
	// the beneficiary directly; under-funded payments queue until funds
	// arrive (paper §IV "Comparison").
	AstroI Version = 1
	// AstroII uses signature-based BRB (O(N), no totality). Settle
	// withdraws only; beneficiaries are credited through dependency
	// certificates attached to their next outgoing payment (Listing 9).
	AstroII Version = 2
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case AstroI:
		return "Astro I"
	case AstroII:
		return "Astro II"
	default:
		return "Astro?"
	}
}

// account is the per-client replicated state: the xlog, the settled
// balance, delivered-but-unsettled payments keyed by sequence number, and
// (Astro II) the set of already-materialized dependency credits.
type account struct {
	balance  types.Amount
	xlog     *XLog
	queue    map[types.Seq]BatchEntry
	usedDeps map[types.PaymentID]struct{}
	// stuck marks an xlog whose next payment was delivered without
	// sufficient funds under Astro II semantics: the sequence number can
	// never advance (paper Listing 9's early return). Only a Byzantine
	// representative produces this.
	stuck bool

	// Paging fields (pager.go), meaningful only when the owning State is
	// paged: client keys the account's KV record, dirty marks in-memory
	// mutations the store has not seen, and lruPrev/lruNext thread the
	// stripe's recency list (head = most recent). All guarded by the
	// stripe's lock.
	client  types.ClientID
	dirty   bool
	lruPrev *account
	lruNext *account
}

// Counters summarizes a state's lifetime statistics.
type Counters struct {
	Settled   uint64 // payments applied to xlogs
	Dropped   uint64 // payments discarded (conflicts, stuck xlogs)
	Conflicts uint64 // equivocation attempts observed
}

// add folds another counter set into c.
func (c *Counters) add(o Counters) {
	c.Settled += o.Settled
	c.Dropped += o.Dropped
	c.Conflicts += o.Conflicts
}

// stateStripe is one lock domain of the striped settlement state: a
// disjoint subset of the accounts, guarded by its own mutex, with its own
// share of the lifetime counters.
type stateStripe struct {
	mu       sync.Mutex
	accounts map[types.ClientID]*account
	counters Counters
	// LRU recency list over the resident accounts, maintained only when
	// the owning State is paged (head = most recently touched).
	lruHead *account
	lruTail *account
}

// account returns the stripe's account for c — resident, faulted in from
// the paging store, or materialized with the genesis balance on first
// touch. The stripe's lock must be held. Fresh genesis accounts are NOT
// dirty: they re-materialize identically, so evicting one without a
// write-back is free.
func (st *stateStripe) account(c types.ClientID, s *State) *account {
	a, ok := st.accounts[c]
	if ok {
		if s.pager != nil {
			st.lruTouch(a)
		}
		return a
	}
	if p := s.pager; p != nil {
		ex, found, err := p.load(c)
		if err != nil {
			// Fail-stop via the sticky pager error; the genesis account
			// below keeps the engine runnable while PagerErr surfaces.
			p.fail(err)
		} else if found {
			a = accountFromExport(ex)
			st.insertAccount(c, a, s)
			p.faults.Add(1)
			return a
		}
	}
	a = &account{
		balance:  s.genesis(c),
		xlog:     NewXLog(c),
		queue:    make(map[types.Seq]BatchEntry),
		usedDeps: make(map[types.PaymentID]struct{}),
		client:   c,
	}
	st.insertAccount(c, a, s)
	return a
}

// insertAccount adds a resident account and, when paged, evicts from the
// cold end until the stripe is back under its residency bound. The
// stripe's lock must be held.
func (st *stateStripe) insertAccount(c types.ClientID, a *account, s *State) {
	st.accounts[c] = a
	p := s.pager
	if p == nil {
		return
	}
	st.lruPush(a)
	for len(st.accounts) > p.perStripe {
		victim := st.lruTail
		// perStripe >= 2 keeps the two most-recently-touched accounts —
		// the at-most-two pointers the Astro I transfer path holds —
		// unevictable; the victim therefore is never a live pointer.
		if victim == nil || victim == a || !st.evict(victim, s) {
			break
		}
	}
}

// evict writes a dirty victim back to the store and drops it from the
// stripe. On a write failure the account stays resident (losing it would
// silently diverge state); the sticky pager error surfaces instead and
// the cache runs over its bound. The stripe's lock must be held.
func (st *stateStripe) evict(a *account, s *State) bool {
	p := s.pager
	if a.dirty {
		if err := p.store.Put(accountKey(a.client), encodeAccountExport(exportLocked(a.client, a))); err != nil {
			p.fail(err)
			return false
		}
		a.dirty = false
		p.writebacks.Add(1)
	}
	st.lruRemove(a)
	delete(st.accounts, a.client)
	p.evictions.Add(1)
	return true
}

// lruPush links a to the recency head. The stripe's lock must be held.
func (st *stateStripe) lruPush(a *account) {
	a.lruPrev = nil
	a.lruNext = st.lruHead
	if st.lruHead != nil {
		st.lruHead.lruPrev = a
	}
	st.lruHead = a
	if st.lruTail == nil {
		st.lruTail = a
	}
}

// lruRemove unlinks a from the recency list. The stripe's lock must be held.
func (st *stateStripe) lruRemove(a *account) {
	if a.lruPrev != nil {
		a.lruPrev.lruNext = a.lruNext
	} else {
		st.lruHead = a.lruNext
	}
	if a.lruNext != nil {
		a.lruNext.lruPrev = a.lruPrev
	} else {
		st.lruTail = a.lruPrev
	}
	a.lruPrev, a.lruNext = nil, nil
}

// lruTouch moves a to the recency head. The stripe's lock must be held.
func (st *stateStripe) lruTouch(a *account) {
	if st.lruHead == a {
		return
	}
	st.lruRemove(a)
	st.lruPush(a)
}

// State is one replica's copy of the full system state (all xlogs of its
// shard) plus the approve/settle engine (paper Listings 3/4 and 8/9).
//
// The paper's blocking "wait until" conditions are realized as queues
// re-evaluated on every state change: approval criterion (1) — all
// preceding payments approved — holds a payment until its predecessor
// settles; criterion (2) — sufficient funds — holds (Astro I) or drops
// (Astro II) it until the balance covers the amount.
//
// # Locking discipline
//
// State is self-synchronized and striped: accounts are hash-sharded
// (types.MixedSharding) over independent lock domains, so settlements
// touching disjoint accounts proceed concurrently — the owning Replica
// fans delivered batches out per stripe. The rules, which together make
// every lock acquisition sequence ascend in stripe index (deadlock-free)
// and every individual settlement atomic under its stripes' locks (no
// torn transfers):
//
//   - single-account operations (Balance, NextSeq, the whole Astro II
//     settle path — withdrawal-only, Listing 9) lock exactly the
//     account's stripe;
//   - an Astro I settlement is a transfer: it holds the spender's and the
//     beneficiary's stripes together, acquired in ascending stripe order
//     (when the beneficiary's stripe sorts below the spender's, the
//     spender's lock is dropped, both are re-acquired in order, and the
//     xlog head is re-validated before settling);
//   - whole-state snapshots (Counters, TotalSettledBalance, Snapshot,
//     Clients) lock every stripe, in ascending order, and read under all
//     of them — a snapshot can never observe a half-applied transfer;
//   - stripe locks are leaves: State never calls out of the package (and
//     never into Replica) while holding one, so callers may acquire them
//     under their own locks.
//
// One stripe (NewStateStriped with stripes <= 1) degrades to exactly the
// pre-striping global-lock engine and is kept as the measured baseline.
type State struct {
	version   Version
	genesis   func(types.ClientID) types.Amount
	verifyDep func(Dependency) error // nil: accept (or Astro I, unused)
	stripeOf  func(types.ClientID) types.ShardID
	stripes   []*stateStripe
	// pager, when non-nil, bounds the resident account set and spills
	// cold accounts to an embedded KV store (pager.go). Nil — the
	// default — keeps every account resident, exactly the pre-paging
	// engine.
	pager *statePager
}

// DefaultStateStripes is the stripe count used when none is configured:
// comfortably above any host's core count so disjoint-account settlement
// is limited by cores, not lock domains, while keeping the per-State
// footprint (one map + mutex per stripe) negligible.
const DefaultStateStripes = 16

// NewState creates a state seeded by the genesis balance function, with
// the default stripe count. verifyDep, used only by Astro II, validates
// dependency certificates before they are credited; nil accepts all.
func NewState(version Version, genesis func(types.ClientID) types.Amount, verifyDep func(Dependency) error) *State {
	return NewStateStriped(version, genesis, verifyDep, DefaultStateStripes)
}

// NewStateStriped is NewState with an explicit stripe count; stripes <= 1
// selects a single global lock (the pre-striping baseline, kept for
// contention measurements).
func NewStateStriped(version Version, genesis func(types.ClientID) types.Amount, verifyDep func(Dependency) error, stripes int) *State {
	if genesis == nil {
		genesis = func(types.ClientID) types.Amount { return 0 }
	}
	if stripes < 1 {
		stripes = 1
	}
	// MixedSharding, not plain HashSharding: the clients a sharded
	// replica settles already share a residue class (shard assignment is
	// modulo), and an unmixed modulo stripe map would collapse them into
	// 1/gcd(stripes, shards) of the stripes.
	s := &State{
		version:   version,
		genesis:   genesis,
		verifyDep: verifyDep,
		stripeOf:  types.MixedSharding(stripes),
		stripes:   make([]*stateStripe, stripes),
	}
	for i := range s.stripes {
		s.stripes[i] = &stateStripe{accounts: make(map[types.ClientID]*account)}
	}
	return s
}

// Stripes returns the number of lock domains.
func (s *State) Stripes() int { return len(s.stripes) }

// StripeIndex returns the lock domain the client's account lives in; the
// owning Replica uses it to fan a delivered batch out per stripe.
func (s *State) StripeIndex(c types.ClientID) int { return int(s.stripeOf(c)) }

func (s *State) stripeFor(c types.ClientID) *stateStripe {
	return s.stripes[s.stripeOf(c)]
}

// lockAll acquires every stripe in ascending order — the whole-state
// snapshot entry point.
func (s *State) lockAll() {
	for _, st := range s.stripes {
		st.mu.Lock()
	}
}

func (s *State) unlockAll() {
	for _, st := range s.stripes {
		st.mu.Unlock()
	}
}

// Balance returns the client's settled balance. For Astro II this excludes
// dependencies not yet materialized (those live at the representative).
func (s *State) Balance(c types.ClientID) types.Amount {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.account(c, s).balance
}

// NextSeq returns the sequence number the client's next settleable payment
// must carry.
func (s *State) NextSeq(c types.ClientID) types.Seq {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	return types.Seq(st.account(c, s).xlog.Len() + 1)
}

// SettledAt returns the payment settled under (c, seq), if any — the
// replay/identity check of the representative's submission pre-screen.
func (s *State) SettledAt(c types.ClientID, seq types.Seq) (types.Payment, bool) {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	x := st.account(c, s).xlog
	// Compare in the unsigned domain: seq comes off the wire, and a huge
	// value converted to int first would wrap negative and index below
	// the log.
	if seq == 0 || seq > types.Seq(x.Len()) {
		return types.Payment{}, false
	}
	return x.At(int(seq) - 1), true
}

// XLogSnapshot returns a copy of the client's exclusive log for audit.
func (s *State) XLogSnapshot(c types.ClientID) []types.Payment {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.account(c, s).xlog.Snapshot()
}

// XLog returns the client's exclusive log as a live reference. It is a
// test/serial-use accessor: the caller must guarantee no concurrent
// settlement; concurrent contexts use XLogSnapshot. With paging enabled
// the reference is only valid until the next state operation (an
// eviction detaches it); paged contexts use XLogSnapshot.
func (s *State) XLog(c types.ClientID) *XLog {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.account(c, s).xlog
}

// Counters returns lifetime statistics as one consistent snapshot: every
// stripe is locked, so concurrent settlements are either fully included
// or not at all.
func (s *State) Counters() Counters {
	s.lockAll()
	defer s.unlockAll()
	var out Counters
	for _, st := range s.stripes {
		out.add(st.counters)
	}
	return out
}

// PendingCount returns the number of delivered-but-unsettled payments for
// the client.
func (s *State) PendingCount(c types.ClientID) int {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.account(c, s).queue)
}

// Clients returns all client identities with materialized accounts —
// resident or, for a paged state, spilled to the store.
func (s *State) Clients() []types.ClientID {
	s.lockAll()
	defer s.unlockAll()
	var out []types.ClientID
	for _, st := range s.stripes {
		for c := range st.accounts {
			out = append(out, c)
		}
	}
	if p := s.pager; p != nil {
		err := p.store.ForEachKey(func(k []byte) error {
			if c, ok := accountKeyClient(k); ok {
				if _, resident := s.stripeFor(c).accounts[c]; !resident {
					out = append(out, c)
				}
			}
			return nil
		})
		if err != nil {
			p.fail(err)
		}
	}
	return out
}

// Snapshot exports all xlogs — one consistent cut across every stripe —
// for reconfiguration state transfer. Cold accounts stream from the
// store without entering the cache.
func (s *State) Snapshot() map[types.ClientID][]types.Payment {
	s.lockAll()
	defer s.unlockAll()
	out := make(map[types.ClientID][]types.Payment)
	for _, st := range s.stripes {
		for c, a := range st.accounts {
			out[c] = a.xlog.Snapshot()
		}
	}
	_ = s.forEachColdLocked(func(ex AccountExport) error {
		out[ex.Client] = ex.XLog
		return nil
	})
	return out
}

// TotalSettledBalance sums all account balances under every stripe lock —
// used by conservation tests together with in-flight dependency
// accounting. Because individual settlements are atomic under their
// stripes' locks, the sum can never observe a torn transfer. Cold
// accounts are read from the store without entering the cache.
func (s *State) TotalSettledBalance() types.Amount {
	s.lockAll()
	defer s.unlockAll()
	var sum types.Amount
	for _, st := range s.stripes {
		for _, a := range st.accounts {
			sum += a.balance
		}
	}
	_ = s.forEachColdLocked(func(ex AccountExport) error {
		sum += ex.Balance
		return nil
	})
	return sum
}

// AccountExport is the full durable image of one account: everything the
// engine tracks for a client, in a directly serializable form. It feeds
// both the WAL snapshot and reconfiguration full-state transfer (a
// recovering replica is a joiner with a prefix).
type AccountExport struct {
	Client   types.ClientID
	Balance  types.Amount
	Stuck    bool
	XLog     []types.Payment
	Queue    []BatchEntry      // delivered-but-unsettled, ascending by Seq
	UsedDeps []types.PaymentID // materialized dependency credits, sorted
}

// sortBatchEntries orders a queue export ascending by sequence number —
// the canonical encoding order.
func sortBatchEntries(entries []BatchEntry) {
	slices.SortFunc(entries, func(x, y BatchEntry) int {
		return int(x.Payment.Seq) - int(y.Payment.Seq)
	})
}

// sortPaymentIDs orders a used-deps export by (spender, seq) — the
// canonical encoding order.
func sortPaymentIDs(ids []types.PaymentID) {
	slices.SortFunc(ids, func(x, y types.PaymentID) int {
		if x.Spender != y.Spender {
			if x.Spender < y.Spender {
				return -1
			}
			return 1
		}
		return int(x.Seq) - int(y.Seq)
	})
}

// ExportAccounts captures every materialized account — resident and, for
// a paged state, spilled — under all stripe locks: one consistent cut,
// like Snapshot, so no export can observe a half-applied transfer.
// Results are sorted by client for deterministic encodings. Audit and
// transfer paths that do not need the whole slice at once should prefer
// the streaming ForEachAccount.
func (s *State) ExportAccounts() []AccountExport {
	s.lockAll()
	defer s.unlockAll()
	var out []AccountExport
	_ = s.forEachAccountLocked(func(ex AccountExport) error {
		out = append(out, ex)
		return nil
	})
	slices.SortFunc(out, func(x, y AccountExport) int {
		if x.Client < y.Client {
			return -1
		}
		if x.Client > y.Client {
			return 1
		}
		return 0
	})
	return out
}

// ImportAccount installs one account's full image, replacing whatever the
// state holds for that client. Used by snapshot recovery (into a fresh
// state) and by MergeFullSnapshot (adopting a longer peer image).
func (s *State) ImportAccount(ex AccountExport) {
	st := s.stripeFor(ex.Client)
	st.mu.Lock()
	defer st.mu.Unlock()
	a := accountFromExport(ex)
	// Replacing an image the store has not seen: dirty, so an eviction or
	// the next incremental snapshot writes it back.
	a.dirty = true
	if old, ok := st.accounts[ex.Client]; ok && s.pager != nil {
		st.lruRemove(old)
	}
	delete(st.accounts, ex.Client)
	st.insertAccount(ex.Client, a, s)
}

// XLogLen returns the client's settled-log length without materializing a
// snapshot — the comparison MergeFullSnapshot uses to decide whether a
// peer image is ahead of the local one.
func (s *State) XLogLen(c types.ClientID) int {
	st := s.stripeFor(c)
	st.mu.Lock()
	if a, ok := st.accounts[c]; ok {
		n := a.xlog.Len()
		st.mu.Unlock()
		return n
	}
	st.mu.Unlock()
	// Cold account: read the spilled record without caching it (this is
	// a comparison path, not an access).
	if p := s.pager; p != nil {
		ex, ok, err := p.load(c)
		if err != nil {
			p.fail(err)
			return 0
		}
		if ok {
			return len(ex.XLog)
		}
	}
	return 0
}

// DepUsed reports whether the client has already materialized the credit
// of the given payment — the replay filter for logged dependency
// certificates (a dependency whose credits are spent must not re-enter the
// representative's attachable set).
func (s *State) DepUsed(c types.ClientID, id types.PaymentID) bool {
	st := s.stripeFor(c)
	st.mu.Lock()
	if a, ok := st.accounts[c]; ok {
		_, used := a.usedDeps[id]
		st.mu.Unlock()
		return used
	}
	st.mu.Unlock()
	if p := s.pager; p != nil {
		ex, ok, err := p.load(c)
		if err != nil {
			p.fail(err)
			return false
		}
		if ok {
			return slices.Contains(ex.UsedDeps, id)
		}
	}
	return false
}

// ApplyReplay feeds one logged batch entry back into the engine during
// crash recovery. It is ApplyEntry minus the counter accounting for
// duplicates: a snapshot plus an over-inclusive log tail (the
// crash-between-snapshot-rename-and-log-truncate window, and any record
// whose settlement the snapshot already covers) replays cleanly, without
// inflating the Conflicts counter that equivocation audits read.
func (s *State) ApplyReplay(e BatchEntry) []types.Payment {
	spender := e.Payment.Spender
	st := s.stripeFor(spender)
	st.mu.Lock()
	acct := st.account(spender, s)
	if acct.stuck || e.Payment.Seq < types.Seq(acct.xlog.Len()+1) {
		st.mu.Unlock()
		return nil // already settled (or unsettleable); snapshot covers it
	}
	if _, dup := acct.queue[e.Payment.Seq]; !dup {
		acct.queue[e.Payment.Seq] = e
		acct.dirty = true
	}
	st.mu.Unlock()
	return s.drain(spender)
}

// ApplyEntry feeds one delivered payment (with attached dependencies) into
// the approve/settle engine and returns every payment that settled as a
// consequence — the payment itself and, for Astro I, any queued payments
// its credit unblocked (transitively). Safe for concurrent use; entries
// for one spender must be applied in delivery order (the per-origin FIFO
// of the broadcast layer, which the Replica's per-stripe fan-out
// preserves).
func (s *State) ApplyEntry(e BatchEntry) []types.Payment {
	spender := e.Payment.Spender
	st := s.stripeFor(spender)
	st.mu.Lock()
	acct := st.account(spender, s)
	switch {
	case acct.stuck:
		st.counters.Dropped++
	case e.Payment.Seq < types.Seq(acct.xlog.Len()+1):
		// Stale duplicate: this identifier already settled. The BRB layer
		// delivers at most once per identifier, so this indicates replay
		// at the payment layer; ignore.
		st.counters.Dropped++
	default:
		if _, dup := acct.queue[e.Payment.Seq]; dup {
			// Second payment with the same identifier: equivocation
			// attempt that slipped past broadcast (different slots). First
			// delivery wins everywhere — FIFO delivery makes the order
			// identical at all correct replicas.
			st.counters.Conflicts++
			st.counters.Dropped++
		} else {
			acct.queue[e.Payment.Seq] = e
			acct.dirty = true
			st.mu.Unlock()
			return s.drain(spender)
		}
	}
	st.mu.Unlock()
	return nil
}

// drain settles every payment that has become approvable starting from
// client c, following credit cascades (Astro I) through a worklist.
func (s *State) drain(c types.ClientID) []types.Payment {
	if s.version == AstroII {
		return s.drainAstroII(c)
	}
	var settled []types.Payment
	work := []types.ClientID{c}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		for {
			p, ok := s.settleHeadAstroI(cur)
			if !ok {
				break
			}
			settled = append(settled, p)
			if p.Beneficiary != cur {
				work = append(work, p.Beneficiary)
			}
		}
	}
	return settled
}

// drainAstroII settles client c's approvable queue head(s) under the
// account's single stripe lock: Astro II settlement only ever touches the
// spender (withdrawal plus the spender's own dependency credits), so no
// cross-stripe coordination exists on this path.
func (s *State) drainAstroII(c types.ClientID) []types.Payment {
	st := s.stripeFor(c)
	st.mu.Lock()
	defer st.mu.Unlock()
	acct := st.account(c, s)
	var settled []types.Payment
	for !acct.stuck {
		next := types.Seq(acct.xlog.Len() + 1)
		e, ok := acct.queue[next]
		if !ok {
			break
		}
		// Every path from here mutates the account (credits, the stuck
		// mark, or the settlement itself).
		acct.dirty = true
		s.creditDependencies(c, acct, e.Deps)
		if acct.balance < e.Payment.Amount {
			// Listing 9 early return: the payment never settles and the
			// sequence number never advances. Only a faulty representative
			// broadcasts such a payment.
			delete(acct.queue, next)
			acct.stuck = true
			st.counters.Dropped++
			continue
		}
		acct.balance -= e.Payment.Amount
		// No direct beneficiary credit: the beneficiary receives the
		// funds through the CREDIT/dependency mechanism.
		delete(acct.queue, next)
		acct.xlog.Append(e.Payment)
		st.counters.Settled++
		settled = append(settled, e.Payment)
	}
	return settled
}

// settleHeadAstroI settles client cur's next queued payment if it is
// approvable, reporting the settled payment. An Astro I settlement is a
// transfer — debit, credit, xlog append — applied atomically under the
// spender's and beneficiary's stripe locks, acquired in ascending stripe
// order (see the locking discipline in State's doc).
func (s *State) settleHeadAstroI(cur types.ClientID) (types.Payment, bool) {
	si := int(s.stripeOf(cur))
	st := s.stripes[si]
	for {
		st.mu.Lock()
		acct := st.account(cur, s)
		if acct.stuck {
			st.mu.Unlock()
			return types.Payment{}, false
		}
		next := types.Seq(acct.xlog.Len() + 1)
		e, ok := acct.queue[next]
		if !ok || acct.balance < e.Payment.Amount {
			// Approval criterion (2) unmet: wait for credits (paper
			// queues under-funded payments).
			st.mu.Unlock()
			return types.Payment{}, false
		}
		ben := e.Payment.Beneficiary
		sj := int(s.stripeOf(ben))
		if sj == si {
			bacct := acct
			if ben != cur {
				bacct = st.account(ben, s)
			}
			settleTransfer(st, acct, bacct, e, next)
			st.mu.Unlock()
			return e.Payment, true
		}
		if sj > si {
			bst := s.stripes[sj]
			bst.mu.Lock()
			settleTransfer(st, acct, bst.account(ben, s), e, next)
			bst.mu.Unlock()
			st.mu.Unlock()
			return e.Payment, true
		}
		// The beneficiary's stripe sorts below the spender's: drop the
		// spender's lock, take both in ascending order, and re-validate
		// the head (a concurrent drain may have settled it — or its
		// funding — in the window).
		st.mu.Unlock()
		bst := s.stripes[sj]
		bst.mu.Lock()
		st.mu.Lock()
		acct = st.account(cur, s)
		next = types.Seq(acct.xlog.Len() + 1)
		e, ok = acct.queue[next]
		if ok && !acct.stuck && acct.balance >= e.Payment.Amount && int(s.stripeOf(e.Payment.Beneficiary)) == sj {
			settleTransfer(st, acct, bst.account(e.Payment.Beneficiary, s), e, next)
			bst.mu.Unlock()
			st.mu.Unlock()
			return e.Payment, true
		}
		bst.mu.Unlock()
		st.mu.Unlock()
		// The head changed under the re-lock; retry from the top (which
		// bails out if nothing settleable remains).
	}
}

// settleTransfer applies one Astro I settlement: debit the spender, credit
// the beneficiary, advance the xlog. Both accounts' stripe locks are held
// by the caller (they coincide for a same-stripe transfer), with st the
// spender's stripe — which is charged the counter.
func settleTransfer(st *stateStripe, acct, bacct *account, e BatchEntry, next types.Seq) {
	acct.balance -= e.Payment.Amount
	bacct.balance += e.Payment.Amount
	delete(acct.queue, next)
	acct.xlog.Append(e.Payment)
	acct.dirty = true
	bacct.dirty = true
	st.counters.Settled++
}

// creditDependencies materializes never-before-seen dependency credits
// into the client's balance (paper Listing 9, lines 44-48), enforcing
// at-most-once semantics through the usedDeps set (replay protection).
// The client's stripe lock is held; verifyDep, when set, runs under it
// (the Replica path screens dependencies before delivery and passes nil).
func (s *State) creditDependencies(c types.ClientID, acct *account, deps []Dependency) {
	for _, d := range deps {
		if s.verifyDep != nil {
			if err := s.verifyDep(d); err != nil {
				continue // unverifiable certificate: ignore, do not credit
			}
		}
		for _, q := range d.Group {
			if q.Beneficiary != c {
				continue
			}
			if _, used := acct.usedDeps[q.ID()]; used {
				continue
			}
			acct.usedDeps[q.ID()] = struct{}{}
			acct.balance += q.Amount
		}
	}
}
