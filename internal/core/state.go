package core

import (
	"astro/internal/types"
)

// Version selects between the paper's two systems.
type Version int

// The two Astro variants (paper §IV).
const (
	// AstroI uses Bracha's BRB (MACs, O(N²), totality). Settle credits
	// the beneficiary directly; under-funded payments queue until funds
	// arrive (paper §IV "Comparison").
	AstroI Version = 1
	// AstroII uses signature-based BRB (O(N), no totality). Settle
	// withdraws only; beneficiaries are credited through dependency
	// certificates attached to their next outgoing payment (Listing 9).
	AstroII Version = 2
)

// String implements fmt.Stringer.
func (v Version) String() string {
	switch v {
	case AstroI:
		return "Astro I"
	case AstroII:
		return "Astro II"
	default:
		return "Astro?"
	}
}

// account is the per-client replicated state: the xlog, the settled
// balance, delivered-but-unsettled payments keyed by sequence number, and
// (Astro II) the set of already-materialized dependency credits.
type account struct {
	balance  types.Amount
	xlog     *XLog
	queue    map[types.Seq]BatchEntry
	usedDeps map[types.PaymentID]struct{}
	// stuck marks an xlog whose next payment was delivered without
	// sufficient funds under Astro II semantics: the sequence number can
	// never advance (paper Listing 9's early return). Only a Byzantine
	// representative produces this.
	stuck bool
}

// Counters summarizes a state's lifetime statistics.
type Counters struct {
	Settled   uint64 // payments applied to xlogs
	Dropped   uint64 // payments discarded (conflicts, stuck xlogs)
	Conflicts uint64 // equivocation attempts observed
}

// State is one replica's copy of the full system state (all xlogs of its
// shard) plus the approve/settle engine (paper Listings 3/4 and 8/9).
//
// The paper's blocking "wait until" conditions are realized as queues
// re-evaluated on every state change: approval criterion (1) — all
// preceding payments approved — holds a payment until its predecessor
// settles; criterion (2) — sufficient funds — holds (Astro I) or drops
// (Astro II) it until the balance covers the amount.
//
// State is not self-synchronized; the owning Replica serializes access.
type State struct {
	version   Version
	genesis   func(types.ClientID) types.Amount
	verifyDep func(Dependency) error // nil: accept (or Astro I, unused)
	accounts  map[types.ClientID]*account
	counters  Counters
}

// NewState creates a state seeded by the genesis balance function.
// verifyDep, used only by Astro II, validates dependency certificates
// before they are credited; nil accepts all.
func NewState(version Version, genesis func(types.ClientID) types.Amount, verifyDep func(Dependency) error) *State {
	if genesis == nil {
		genesis = func(types.ClientID) types.Amount { return 0 }
	}
	return &State{
		version:   version,
		genesis:   genesis,
		verifyDep: verifyDep,
		accounts:  make(map[types.ClientID]*account),
	}
}

func (s *State) account(c types.ClientID) *account {
	a, ok := s.accounts[c]
	if !ok {
		a = &account{
			balance:  s.genesis(c),
			xlog:     NewXLog(c),
			queue:    make(map[types.Seq]BatchEntry),
			usedDeps: make(map[types.PaymentID]struct{}),
		}
		s.accounts[c] = a
	}
	return a
}

// Balance returns the client's settled balance. For Astro II this excludes
// dependencies not yet materialized (those live at the representative).
func (s *State) Balance(c types.ClientID) types.Amount {
	return s.account(c).balance
}

// NextSeq returns the sequence number the client's next settleable payment
// must carry.
func (s *State) NextSeq(c types.ClientID) types.Seq {
	return types.Seq(s.account(c).xlog.Len() + 1)
}

// XLog returns the client's exclusive log (live reference; callers must
// hold the replica's lock or use snapshots).
func (s *State) XLog(c types.ClientID) *XLog {
	return s.account(c).xlog
}

// Counters returns lifetime statistics.
func (s *State) Counters() Counters { return s.counters }

// PendingCount returns the number of delivered-but-unsettled payments for
// the client.
func (s *State) PendingCount(c types.ClientID) int {
	return len(s.account(c).queue)
}

// Clients returns all client identities with materialized accounts.
func (s *State) Clients() []types.ClientID {
	out := make([]types.ClientID, 0, len(s.accounts))
	for c := range s.accounts {
		out = append(out, c)
	}
	return out
}

// ApplyEntry feeds one delivered payment (with attached dependencies) into
// the approve/settle engine and returns every payment that settled as a
// consequence — the payment itself and, for Astro I, any queued payments
// its credit unblocked (transitively).
func (s *State) ApplyEntry(e BatchEntry) []types.Payment {
	spender := e.Payment.Spender
	acct := s.account(spender)
	if acct.stuck {
		s.counters.Dropped++
		return nil
	}
	if e.Payment.Seq < s.NextSeq(spender) {
		// Stale duplicate: this identifier already settled. The BRB layer
		// delivers at most once per identifier, so this indicates replay
		// at the payment layer; ignore.
		s.counters.Dropped++
		return nil
	}
	if _, dup := acct.queue[e.Payment.Seq]; dup {
		// Second payment with the same identifier: equivocation attempt
		// that slipped past broadcast (different slots). First delivery
		// wins everywhere — FIFO delivery makes the order identical at
		// all correct replicas.
		s.counters.Conflicts++
		s.counters.Dropped++
		return nil
	}
	acct.queue[e.Payment.Seq] = e
	return s.drain(spender)
}

// drain settles every payment that has become approvable starting from
// client c, following credit cascades (Astro I) through a worklist.
func (s *State) drain(c types.ClientID) []types.Payment {
	var settled []types.Payment
	work := []types.ClientID{c}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		acct := s.account(cur)
		if acct.stuck {
			continue
		}
		for {
			next := types.Seq(acct.xlog.Len() + 1)
			e, ok := acct.queue[next]
			if !ok {
				break
			}
			switch s.version {
			case AstroII:
				s.creditDependencies(cur, acct, e.Deps)
				if acct.balance < e.Payment.Amount {
					// Listing 9 early return: the payment never settles
					// and the sequence number never advances. Only a
					// faulty representative broadcasts such a payment.
					delete(acct.queue, next)
					acct.stuck = true
					s.counters.Dropped++
					continue
				}
				acct.balance -= e.Payment.Amount
				// No direct beneficiary credit: the beneficiary receives
				// the funds through the CREDIT/dependency mechanism.
			default: // AstroI
				if acct.balance < e.Payment.Amount {
					// Approval criterion (2) unmet: wait for credits
					// (paper queues under-funded payments).
					e = BatchEntry{}
					ok = false
				}
				if !ok {
					break
				}
				acct.balance -= e.Payment.Amount
				ben := s.account(e.Payment.Beneficiary)
				ben.balance += e.Payment.Amount
				work = append(work, e.Payment.Beneficiary)
			}
			if !ok {
				break
			}
			delete(acct.queue, next)
			acct.xlog.Append(e.Payment)
			s.counters.Settled++
			settled = append(settled, e.Payment)
		}
	}
	return settled
}

// creditDependencies materializes never-before-seen dependency credits
// into the client's balance (paper Listing 9, lines 44-48), enforcing
// at-most-once semantics through the usedDeps set (replay protection).
func (s *State) creditDependencies(c types.ClientID, acct *account, deps []Dependency) {
	for _, d := range deps {
		if s.verifyDep != nil {
			if err := s.verifyDep(d); err != nil {
				continue // unverifiable certificate: ignore, do not credit
			}
		}
		for _, q := range d.Group {
			if q.Beneficiary != c {
				continue
			}
			if _, used := acct.usedDeps[q.ID()]; used {
				continue
			}
			acct.usedDeps[q.ID()] = struct{}{}
			acct.balance += q.Amount
		}
	}
}

// TotalSettledBalance sums all account balances — used by conservation
// tests together with in-flight dependency accounting.
func (s *State) TotalSettledBalance() types.Amount {
	var sum types.Amount
	for _, a := range s.accounts {
		sum += a.balance
	}
	return sum
}
