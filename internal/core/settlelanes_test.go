package core

// Ordering-invariant tests for the lane-scheduled settlement fan-out
// (run under -race by the Makefile's race target): with stripes pinned to
// sched flows and work-stealing enabled, per-spender FIFO and
// conservation of money must hold exactly as they did under the
// spawn-per-delivery baseline, and the two fan-out modes must produce
// identical state.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// newSettleReplica builds a lone Astro I replica for driving
// settleEntries directly (no broadcast traffic involved).
func newSettleReplica(t testing.TB, stripes int, spawn bool) *Replica {
	t.Helper()
	net := memnet.New()
	t.Cleanup(net.Close)
	ids := []types.ReplicaID{0, 1, 2, 3}
	mux := transport.NewMux(net.Node(transport.ReplicaNode(0)))
	t.Cleanup(mux.Close)
	r, err := NewReplica(Config{
		Version:      AstroI,
		Self:         0,
		Replicas:     ids,
		F:            1,
		Mux:          mux,
		Genesis:      func(types.ClientID) types.Amount { return 1 << 30 },
		StateStripes: stripes,
		SettleSpawn:  spawn,
		Auth:         crypto.NewLinkAuthenticator(0, []byte("settle-test")),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestSettleLanesMatchesSpawnBaseline feeds identical multi-stripe
// batches through the pinned-lane fan-out and the spawn-per-delivery
// baseline and asserts byte-identical results: same settled list (order
// included — CREDIT group derivation depends on it), same balances, same
// counters.
func TestSettleLanesMatchesSpawnBaseline(t *testing.T) {
	lanes := newSettleReplica(t, 8, false)
	spawn := newSettleReplica(t, 8, true)
	if lanes.stripeFlows == nil {
		t.Fatal("default replica did not pin stripes to flows")
	}
	if spawn.stripeFlows != nil {
		t.Fatal("SettleSpawn replica still holds stripe flows")
	}

	const nClients = 40
	const batches = 20
	for b := 0; b < batches; b++ {
		var entries []BatchEntry
		for c := 1; c <= nClients; c++ {
			p := types.Payment{
				Spender:     types.ClientID(c),
				Seq:         types.Seq(b + 1),
				Beneficiary: types.ClientID(c%nClients + 1),
				Amount:      types.Amount(b + c),
			}
			entries = append(entries, BatchEntry{Payment: p})
		}
		a := lanes.settleEntries(entries)
		bb := spawn.settleEntries(entries)
		if len(a) != len(bb) {
			t.Fatalf("batch %d: lanes settled %d, spawn settled %d", b, len(a), len(bb))
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("batch %d: settled[%d] diverges: lanes %+v spawn %+v", b, i, a[i], bb[i])
			}
		}
	}
	for c := 1; c <= nClients; c++ {
		id := types.ClientID(c)
		if la, sp := lanes.Balance(id), spawn.Balance(id); la != sp {
			t.Fatalf("client %d: lanes balance %d, spawn balance %d", c, la, sp)
		}
	}
	cl, cs := lanes.Counters(), spawn.Counters()
	if cl != cs {
		t.Fatalf("counters diverge: lanes %+v spawn %+v", cl, cs)
	}
	if cl.Settled != nClients*batches {
		t.Fatalf("settled = %d, want %d", cl.Settled, nClients*batches)
	}
}

// TestSettleLanesPerSpenderFIFOUnderStealing runs several concurrent
// "origins", each delivering its own disjoint spenders' batches in
// sequence (the BRB per-origin serialization), against one lanes-mode
// replica. Stripe tasks from different origins contend for the same
// flows and get stolen between lanes; per-spender FIFO (xlog seq order),
// conservation of money, and zero drops must survive.
func TestSettleLanesPerSpenderFIFOUnderStealing(t *testing.T) {
	r := newSettleReplica(t, 8, false)

	const (
		origins    = 6
		perOrigin  = 8  // spenders per origin
		batchCount = 30 // sequential batches per origin
	)
	spender := func(o, i int) types.ClientID {
		return types.ClientID(o*perOrigin + i + 1)
	}
	// Materialize every account so the expected total is fixed before
	// transfers start crossing stripes.
	total := types.Amount(0)
	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			total += r.state.Balance(spender(o, i))
		}
	}

	var wg sync.WaitGroup
	for o := 0; o < origins; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for b := 1; b <= batchCount; b++ {
				var entries []BatchEntry
				for i := 0; i < perOrigin; i++ {
					sp := spender(o, i)
					// Beneficiaries stay inside this origin's client set so
					// the conserved total is checkable per test run.
					ben := spender(o, (i+b)%perOrigin)
					if ben == sp {
						ben = spender(o, (i+b+1)%perOrigin)
					}
					entries = append(entries, BatchEntry{Payment: types.Payment{
						Spender: sp, Seq: types.Seq(b), Beneficiary: ben, Amount: 1,
					}})
				}
				settled := r.settleEntries(entries)
				if len(settled) != perOrigin {
					panic(fmt.Sprintf("origin %d batch %d: settled %d of %d", o, b, len(settled), perOrigin))
				}
			}
		}(o)
	}
	wg.Wait()

	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			sp := spender(o, i)
			xlog := r.XLogSnapshot(sp)
			if len(xlog) != batchCount {
				t.Fatalf("spender %d: xlog holds %d payments, want %d", sp, len(xlog), batchCount)
			}
			for k, p := range xlog {
				if p.Seq != types.Seq(k+1) {
					t.Fatalf("spender %d: xlog position %d holds seq %d — per-spender FIFO violated", sp, k, p.Seq)
				}
			}
		}
	}
	counters := r.Counters()
	if counters.Dropped != 0 || counters.Conflicts != 0 {
		t.Fatalf("dropped/conflicts = %d/%d, want 0/0", counters.Dropped, counters.Conflicts)
	}
	got := types.Amount(0)
	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			got += r.state.Balance(spender(o, i))
		}
	}
	if got != total {
		t.Fatalf("conservation violated: total %d, want %d", got, total)
	}
}

// TestSettleLanesSurviveConcurrentCreditResends (PR 9) runs live
// settlement traffic — clients paying through the full broadcast +
// settle + credit pipeline on the lane runtime — while a NACK storm
// forces replica 0 to answer with lazy CREDITCHAINDEF + CREDITREF
// resends the whole time. The resend path shares chainMu and the credit
// channel with the pipeline under test; per-spender FIFO, conservation,
// and full settlement must survive the interleaving. Run under -race.
func TestSettleLanesSurviveConcurrentCreditResends(t *testing.T) {
	const seed = 1 << 20
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return seed })
	tap, msgs := c.creditTap(t, 9)

	// A retained wave addressed to the tap: the storm's NACKs name it,
	// so every one provokes a real def+ref answer from replica 0.
	group := []types.Payment{pay(100, 1, 101, 7)}
	chain := []types.Digest{CreditGroupDigest(group)}
	cd := CreditChainDigest(chain)
	sig, err := c.keys[0].Sign(cd)
	if err != nil {
		t.Fatal(err)
	}
	c.replicas[0].retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: []creditJob{{rep: 9, group: group}}})

	stop := make(chan struct{})
	var storm sync.WaitGroup
	storm.Add(2)
	go func() { // drain the tap so its endpoint never backpressures
		defer storm.Done()
		for {
			select {
			case <-stop:
				return
			case <-msgs:
			}
		}
	}()
	go func() {
		defer storm.Done()
		nack := encodeCreditNack(cd)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tap.Send(transport.ReplicaNode(0), transport.ChanCredit, nack)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const (
		nClients  = 4
		perClient = 25
	)
	cls := make([]*Client, nClients)
	for i := range cls {
		cls[i] = c.client(types.ClientID(i + 1))
	}
	errc := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		go func(i int) {
			cl := cls[i]
			ben := types.ClientID((i+1)%nClients + 1) // stays inside the client set
			for k := 0; k < perClient; k++ {
				id, err := cl.Pay(ben, 1)
				if err != nil {
					errc <- fmt.Errorf("client %d pay %d: %w", i+1, k, err)
					return
				}
				if err := cl.WaitConfirm(id, 10*time.Second); err != nil {
					errc <- fmt.Errorf("client %d confirm %d: %w", i+1, k, err)
					return
				}
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < nClients; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	storm.Wait()
	c.waitSettledEverywhere(nClients*perClient, 15*time.Second)

	for ri, r := range c.replicas {
		for i := 0; i < nClients; i++ {
			cid := types.ClientID(i + 1)
			xlog := r.XLogSnapshot(cid)
			if len(xlog) != perClient {
				t.Fatalf("replica %d: client %d xlog holds %d payments, want %d", ri, cid, len(xlog), perClient)
			}
			for k, p := range xlog {
				if p.Seq != types.Seq(k+1) {
					t.Fatalf("replica %d: client %d xlog position %d holds seq %d — FIFO violated", ri, cid, k, p.Seq)
				}
			}
		}
	}
	// Conservation in Astro II: a settled payment debits the spender, and
	// the beneficiary's share becomes an attachable dependency at its own
	// replica (balance moves only when that dependency rides a later
	// payment — state.go's "no direct beneficiary credit"). Certificates
	// complete asynchronously, so poll each client's balance plus
	// unattached dependency value at its owning replica.
	ownedTotal := func() types.Amount {
		total := types.Amount(0)
		for i := 0; i < nClients; i++ {
			cid := types.ClientID(i + 1)
			r := c.replicas[c.repOf(cid)]
			total += r.state.Balance(cid)
			r.repMu.Lock()
			for _, dep := range r.repDeps[cid] {
				total += dep.Value(cid)
			}
			r.repMu.Unlock()
		}
		return total
	}
	deadline := time.Now().Add(10 * time.Second)
	for ownedTotal() != types.Amount(nClients)*seed {
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: owned-balance total %d, want %d", ownedTotal(), types.Amount(nClients)*seed)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
