package core

// Ordering-invariant tests for the lane-scheduled settlement fan-out
// (run under -race by the Makefile's race target): with stripes pinned to
// sched flows and work-stealing enabled, per-spender FIFO and
// conservation of money must hold exactly as they did under the
// spawn-per-delivery baseline, and the two fan-out modes must produce
// identical state.

import (
	"fmt"
	"sync"
	"testing"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// newSettleReplica builds a lone Astro I replica for driving
// settleEntries directly (no broadcast traffic involved).
func newSettleReplica(t testing.TB, stripes int, spawn bool) *Replica {
	t.Helper()
	net := memnet.New()
	t.Cleanup(net.Close)
	ids := []types.ReplicaID{0, 1, 2, 3}
	mux := transport.NewMux(net.Node(transport.ReplicaNode(0)))
	t.Cleanup(mux.Close)
	r, err := NewReplica(Config{
		Version:      AstroI,
		Self:         0,
		Replicas:     ids,
		F:            1,
		Mux:          mux,
		Genesis:      func(types.ClientID) types.Amount { return 1 << 30 },
		StateStripes: stripes,
		SettleSpawn:  spawn,
		Auth:         crypto.NewLinkAuthenticator(0, []byte("settle-test")),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// TestSettleLanesMatchesSpawnBaseline feeds identical multi-stripe
// batches through the pinned-lane fan-out and the spawn-per-delivery
// baseline and asserts byte-identical results: same settled list (order
// included — CREDIT group derivation depends on it), same balances, same
// counters.
func TestSettleLanesMatchesSpawnBaseline(t *testing.T) {
	lanes := newSettleReplica(t, 8, false)
	spawn := newSettleReplica(t, 8, true)
	if lanes.stripeFlows == nil {
		t.Fatal("default replica did not pin stripes to flows")
	}
	if spawn.stripeFlows != nil {
		t.Fatal("SettleSpawn replica still holds stripe flows")
	}

	const nClients = 40
	const batches = 20
	for b := 0; b < batches; b++ {
		var entries []BatchEntry
		for c := 1; c <= nClients; c++ {
			p := types.Payment{
				Spender:     types.ClientID(c),
				Seq:         types.Seq(b + 1),
				Beneficiary: types.ClientID(c%nClients + 1),
				Amount:      types.Amount(b + c),
			}
			entries = append(entries, BatchEntry{Payment: p})
		}
		a := lanes.settleEntries(entries)
		bb := spawn.settleEntries(entries)
		if len(a) != len(bb) {
			t.Fatalf("batch %d: lanes settled %d, spawn settled %d", b, len(a), len(bb))
		}
		for i := range a {
			if a[i] != bb[i] {
				t.Fatalf("batch %d: settled[%d] diverges: lanes %+v spawn %+v", b, i, a[i], bb[i])
			}
		}
	}
	for c := 1; c <= nClients; c++ {
		id := types.ClientID(c)
		if la, sp := lanes.Balance(id), spawn.Balance(id); la != sp {
			t.Fatalf("client %d: lanes balance %d, spawn balance %d", c, la, sp)
		}
	}
	cl, cs := lanes.Counters(), spawn.Counters()
	if cl != cs {
		t.Fatalf("counters diverge: lanes %+v spawn %+v", cl, cs)
	}
	if cl.Settled != nClients*batches {
		t.Fatalf("settled = %d, want %d", cl.Settled, nClients*batches)
	}
}

// TestSettleLanesPerSpenderFIFOUnderStealing runs several concurrent
// "origins", each delivering its own disjoint spenders' batches in
// sequence (the BRB per-origin serialization), against one lanes-mode
// replica. Stripe tasks from different origins contend for the same
// flows and get stolen between lanes; per-spender FIFO (xlog seq order),
// conservation of money, and zero drops must survive.
func TestSettleLanesPerSpenderFIFOUnderStealing(t *testing.T) {
	r := newSettleReplica(t, 8, false)

	const (
		origins    = 6
		perOrigin  = 8  // spenders per origin
		batchCount = 30 // sequential batches per origin
	)
	spender := func(o, i int) types.ClientID {
		return types.ClientID(o*perOrigin + i + 1)
	}
	// Materialize every account so the expected total is fixed before
	// transfers start crossing stripes.
	total := types.Amount(0)
	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			total += r.state.Balance(spender(o, i))
		}
	}

	var wg sync.WaitGroup
	for o := 0; o < origins; o++ {
		wg.Add(1)
		go func(o int) {
			defer wg.Done()
			for b := 1; b <= batchCount; b++ {
				var entries []BatchEntry
				for i := 0; i < perOrigin; i++ {
					sp := spender(o, i)
					// Beneficiaries stay inside this origin's client set so
					// the conserved total is checkable per test run.
					ben := spender(o, (i+b)%perOrigin)
					if ben == sp {
						ben = spender(o, (i+b+1)%perOrigin)
					}
					entries = append(entries, BatchEntry{Payment: types.Payment{
						Spender: sp, Seq: types.Seq(b), Beneficiary: ben, Amount: 1,
					}})
				}
				settled := r.settleEntries(entries)
				if len(settled) != perOrigin {
					panic(fmt.Sprintf("origin %d batch %d: settled %d of %d", o, b, len(settled), perOrigin))
				}
			}
		}(o)
	}
	wg.Wait()

	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			sp := spender(o, i)
			xlog := r.XLogSnapshot(sp)
			if len(xlog) != batchCount {
				t.Fatalf("spender %d: xlog holds %d payments, want %d", sp, len(xlog), batchCount)
			}
			for k, p := range xlog {
				if p.Seq != types.Seq(k+1) {
					t.Fatalf("spender %d: xlog position %d holds seq %d — per-spender FIFO violated", sp, k, p.Seq)
				}
			}
		}
	}
	counters := r.Counters()
	if counters.Dropped != 0 || counters.Conflicts != 0 {
		t.Fatalf("dropped/conflicts = %d/%d, want 0/0", counters.Dropped, counters.Conflicts)
	}
	got := types.Amount(0)
	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			got += r.state.Balance(spender(o, i))
		}
	}
	if got != total {
		t.Fatalf("conservation violated: total %d, want %d", got, total)
	}
}
