package core

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// Message kinds on the payment channel (client <-> representative).
const (
	msgSubmit      byte = 1 // client -> representative: a new payment
	msgConfirm     byte = 2 // representative -> client: payment settled
	msgBalanceReq  byte = 3 // client -> representative: balance query
	msgBalanceResp byte = 4 // representative -> client: balance answer
	msgSeqReq      byte = 5 // client -> representative: next sequence query
	msgSeqResp     byte = 6 // representative -> client: next usable sequence
)

// Local event kinds on transport.ChanLocal.
const (
	localFlush byte = 1 // batch timer fired
)

func encodeSubmit(p types.Payment, sig []byte) []byte {
	w := wire.NewWriter(8 + types.PaymentWireSize + len(sig))
	w.U8(msgSubmit)
	w.Raw(p.AppendBinary(nil))
	w.Chunk(sig)
	return w.Bytes()
}

func decodeSubmit(payload []byte) (types.Payment, []byte, bool) {
	var p types.Payment
	r := wire.NewReader(payload)
	raw := r.Fixed(types.PaymentWireSize)
	if r.Err() != nil {
		return p, nil, false
	}
	if err := p.UnmarshalBinary(raw); err != nil {
		return p, nil, false
	}
	sig := r.Chunk()
	if r.Finish() != nil {
		return p, nil, false
	}
	return p, sig, true
}

func encodeConfirm(id types.PaymentID) []byte {
	w := wire.NewWriter(17)
	w.U8(msgConfirm)
	w.U64(uint64(id.Spender))
	w.U64(uint64(id.Seq))
	return w.Bytes()
}

func encodeBalanceReq(c types.ClientID) []byte {
	w := wire.NewWriter(9)
	w.U8(msgBalanceReq)
	w.U64(uint64(c))
	return w.Bytes()
}

func encodeBalanceResp(c types.ClientID, a types.Amount) []byte {
	w := wire.NewWriter(17)
	w.U8(msgBalanceResp)
	w.U64(uint64(c))
	w.U64(uint64(a))
	return w.Bytes()
}

func encodeSeqReq(c types.ClientID) []byte {
	w := wire.NewWriter(9)
	w.U8(msgSeqReq)
	w.U64(uint64(c))
	return w.Bytes()
}

func encodeSeqResp(c types.ClientID, s types.Seq) []byte {
	w := wire.NewWriter(17)
	w.U8(msgSeqResp)
	w.U64(uint64(c))
	w.U64(uint64(s))
	return w.Bytes()
}

// CREDIT message (transport.ChanCredit): a settling replica's signed
// endorsement that a group of payments (beneficiaries all represented by
// the destination replica) settled in its shard (paper §V, Listing 9).
type creditMsg struct {
	Signer types.ReplicaID
	Group  []types.Payment
	Sig    []byte
}

func encodeCredit(m creditMsg) []byte {
	w := wire.NewWriter(12 + len(m.Group)*types.PaymentWireSize + len(m.Sig))
	w.U32(uint32(m.Signer))
	w.U32(uint32(len(m.Group)))
	for _, p := range m.Group {
		w.AppendFunc(p.AppendBinary)
	}
	w.Chunk(m.Sig)
	return w.Bytes()
}

func decodeCredit(payload []byte) (creditMsg, error) {
	var m creditMsg
	r := wire.NewReader(payload)
	m.Signer = types.ReplicaID(r.U32())
	n := r.U32()
	if err := r.Err(); err != nil {
		return m, err
	}
	if n == 0 || n > maxGroup {
		return m, fmt.Errorf("credit: bad group size %d", n)
	}
	m.Group = make([]types.Payment, n)
	for i := range m.Group {
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return m, err
		}
		if err := m.Group[i].UnmarshalBinary(raw); err != nil {
			return m, err
		}
	}
	m.Sig = r.Chunk()
	if err := r.Finish(); err != nil {
		return m, err
	}
	return m, nil
}
