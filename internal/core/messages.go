package core

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// Message kinds on the payment channel (client <-> representative).
const (
	msgSubmit      byte = 1 // client -> representative: a new payment
	msgConfirm     byte = 2 // representative -> client: payment settled
	msgBalanceReq  byte = 3 // client -> representative: balance query
	msgBalanceResp byte = 4 // representative -> client: balance answer
	msgSeqReq      byte = 5 // client -> representative: next sequence query
	msgSeqResp     byte = 6 // representative -> client: next usable sequence
)

// Local event kinds on transport.ChanLocal.
const (
	localFlush byte = 1 // batch timer fired
)

func encodeSubmit(p types.Payment, sig []byte) []byte {
	w := wire.NewWriter(8 + types.PaymentWireSize + len(sig))
	w.U8(msgSubmit)
	w.Raw(p.AppendBinary(nil))
	w.Chunk(sig)
	return w.Bytes()
}

func decodeSubmit(payload []byte) (types.Payment, []byte, bool) {
	var p types.Payment
	r := wire.NewReader(payload)
	raw := r.Fixed(types.PaymentWireSize)
	if r.Err() != nil {
		return p, nil, false
	}
	if err := p.UnmarshalBinary(raw); err != nil {
		return p, nil, false
	}
	sig := r.Chunk()
	if r.Finish() != nil {
		return p, nil, false
	}
	return p, sig, true
}

func encodeConfirm(id types.PaymentID) []byte {
	w := wire.NewWriter(17)
	w.U8(msgConfirm)
	w.U64(uint64(id.Spender))
	w.U64(uint64(id.Seq))
	return w.Bytes()
}

func encodeBalanceReq(c types.ClientID) []byte {
	w := wire.NewWriter(9)
	w.U8(msgBalanceReq)
	w.U64(uint64(c))
	return w.Bytes()
}

func encodeBalanceResp(c types.ClientID, a types.Amount) []byte {
	w := wire.NewWriter(17)
	w.U8(msgBalanceResp)
	w.U64(uint64(c))
	w.U64(uint64(a))
	return w.Bytes()
}

func encodeSeqReq(c types.ClientID) []byte {
	w := wire.NewWriter(9)
	w.U8(msgSeqReq)
	w.U64(uint64(c))
	return w.Bytes()
}

func encodeSeqResp(c types.ClientID, s types.Seq) []byte {
	w := wire.NewWriter(17)
	w.U8(msgSeqResp)
	w.U64(uint64(c))
	w.U64(uint64(s))
	return w.Bytes()
}

// Message kinds on the credit channel (replica -> beneficiary's
// representative). A single-group CREDIT keeps the one-signature-per-group
// form; a CREDITBATCH carries one signature over a hash chain of group
// digests — the settlement-wave batching — together with the subset of the
// wave's groups addressed to the destination representative.
//
// The chain-reference forms (PR 4) split the CREDITBATCH in two: the chain
// itself travels once per destination as a CREDITCHAINDEF (content-
// addressed — the receiver recomputes the chain digest and caches the
// chain per sending replica), and the per-wave CREDITREF carries only the
// 32-byte chain digest, the shared signature, and the destination's groups
// with their chain indices. A receiver that cannot resolve the digest —
// evicted, or never seen — answers with a CREDITNACK naming it, and the
// signer retransmits the wave as a self-contained legacy CREDITBATCH from
// its bounded retransmit buffer. The chain is thus encoded once per wave
// (shared scratch) and crosses the wire at most once per destination, and
// a cache miss degrades to the PR 3 encoding instead of losing the CREDIT.
const (
	msgCreditSingle   byte = 1
	msgCreditBatch    byte = 2
	msgCreditChainDef byte = 3
	msgCreditRef      byte = 4
	msgCreditNack     byte = 5
	msgCreditRedo     byte = 6
	msgCreditRescan   byte = 7
)

// CREDIT message (transport.ChanCredit): a settling replica's signed
// endorsement that a group of payments (beneficiaries all represented by
// the destination replica) settled in its shard (paper §V, Listing 9).
type creditMsg struct {
	Signer types.ReplicaID
	Group  []types.Payment
	Sig    []byte
}

func encodeCredit(m creditMsg) []byte {
	w := wire.NewWriter(13 + len(m.Group)*types.PaymentWireSize + len(m.Sig))
	w.U8(msgCreditSingle)
	w.U32(uint32(m.Signer))
	appendPaymentGroup(w, m.Group)
	w.Chunk(m.Sig)
	return w.Bytes()
}

// decodeCredit parses a CREDIT payload after its kind byte.
func decodeCredit(payload []byte) (creditMsg, error) {
	var m creditMsg
	r := wire.NewReader(payload)
	m.Signer = types.ReplicaID(r.U32())
	group, err := decodePaymentGroup(r)
	if err != nil {
		return m, err
	}
	m.Group = group
	m.Sig = r.Chunk()
	if err := r.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// creditBatchMsg is one signer's CREDITBATCH: the full chain of group
// digests its signature covers, and the wave's groups whose beneficiaries
// this destination represents, each with its index into the chain. The
// receiver recomputes each group's digest, matches it against the chain,
// and verifies the one signature against CreditChainDigest(Chain) — so a
// wave crediting k groups costs the signer one ECDSA, and (through the
// verifier memo) the receiver one ECDSA per signer.
type creditBatchMsg struct {
	Signer types.ReplicaID
	Chain  []types.Digest
	Sig    []byte
	Groups []creditBatchGroup
}

// creditBatchGroup is one credit group of a CREDITBATCH with its position
// in the signed chain.
type creditBatchGroup struct {
	ChainIdx uint32
	Group    []types.Payment
}

func encodeCreditBatch(m creditBatchMsg) []byte {
	n := 1 + 4 + 4 + len(m.Chain)*32 + 4 + len(m.Sig) + 4
	for _, g := range m.Groups {
		n += 4 + 4 + len(g.Group)*types.PaymentWireSize
	}
	w := wire.NewWriter(n)
	w.U8(msgCreditBatch)
	w.U32(uint32(m.Signer))
	appendDigestChain(w, m.Chain)
	w.Chunk(m.Sig)
	w.U32(uint32(len(m.Groups)))
	for _, g := range m.Groups {
		w.U32(g.ChainIdx)
		appendPaymentGroup(w, g.Group)
	}
	return w.Bytes()
}

// decodeCreditBatch parses a CREDITBATCH payload after its kind byte.
func decodeCreditBatch(payload []byte) (creditBatchMsg, error) {
	var m creditBatchMsg
	r := wire.NewReader(payload)
	m.Signer = types.ReplicaID(r.U32())
	chain, err := decodeDigestChain(r)
	if err != nil {
		return m, err
	}
	if len(chain) == 0 {
		return m, fmt.Errorf("credit batch: empty chain")
	}
	m.Chain = chain
	m.Sig = r.Chunk()
	ng := r.U32()
	if err := r.Err(); err != nil {
		return m, err
	}
	if ng == 0 || ng > uint32(len(chain)) {
		return m, fmt.Errorf("credit batch: bad group count %d", ng)
	}
	m.Groups = make([]creditBatchGroup, 0, ng)
	for i := uint32(0); i < ng; i++ {
		idx := r.U32()
		if err := r.Err(); err != nil {
			return m, err
		}
		if idx >= uint32(len(chain)) {
			return m, fmt.Errorf("credit batch: chain index %d out of range", idx)
		}
		group, err := decodePaymentGroup(r)
		if err != nil {
			return m, err
		}
		m.Groups = append(m.Groups, creditBatchGroup{ChainIdx: idx, Group: group})
	}
	if err := r.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// creditChainDefSize is the exact size of a CREDITCHAINDEF message.
func creditChainDefSize(chain []types.Digest) int {
	return 1 + wire.DigestListSize(len(chain))
}

func appendCreditChainDef(w *wire.Writer, chain []types.Digest) {
	w.U8(msgCreditChainDef)
	wire.AppendDigestList(w, chain)
}

// encodeCreditChainDef encodes a chain definition for the credit channel.
func encodeCreditChainDef(chain []types.Digest) []byte {
	w := wire.NewWriter(creditChainDefSize(chain))
	appendCreditChainDef(w, chain)
	return w.Bytes()
}

// decodeCreditChainDef parses a CREDITCHAINDEF payload after its kind
// byte. Defined chains are bounded by the cap an honest wave drain
// produces, not the looser certificate bound.
func decodeCreditChainDef(payload []byte) ([]types.Digest, error) {
	r := wire.NewReader(payload)
	chain, err := wire.ReadDigestList[types.Digest](r, creditChainCap)
	if err != nil {
		return nil, err
	}
	if len(chain) == 0 {
		return nil, fmt.Errorf("credit chain def: empty chain")
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return chain, nil
}

// creditRefMsg is the chain-referencing form of a CREDITBATCH: same
// signer, signature, and groups, but the chain is named by digest.
type creditRefMsg struct {
	Signer      types.ReplicaID
	ChainDigest types.Digest
	Sig         []byte
	Groups      []creditBatchGroup
}

func creditRefSize(m creditRefMsg) int {
	n := 1 + 4 + 32 + 4 + len(m.Sig) + 4
	for _, g := range m.Groups {
		n += 4 + 4 + len(g.Group)*types.PaymentWireSize
	}
	return n
}

func appendCreditRef(w *wire.Writer, m creditRefMsg) {
	w.U8(msgCreditRef)
	w.U32(uint32(m.Signer))
	w.Bytes32(m.ChainDigest)
	w.Chunk(m.Sig)
	w.U32(uint32(len(m.Groups)))
	for _, g := range m.Groups {
		w.U32(g.ChainIdx)
		appendPaymentGroup(w, g.Group)
	}
}

func encodeCreditRef(m creditRefMsg) []byte {
	w := wire.NewWriter(creditRefSize(m))
	appendCreditRef(w, m)
	return w.Bytes()
}

// decodeCreditRef parses a CREDITREF payload after its kind byte. Chain
// indices are bounded against the chain cap here; the receiver re-checks
// them against the resolved chain's actual length.
func decodeCreditRef(payload []byte) (creditRefMsg, error) {
	var m creditRefMsg
	r := wire.NewReader(payload)
	m.Signer = types.ReplicaID(r.U32())
	m.ChainDigest = r.Bytes32()
	m.Sig = r.Chunk()
	ng := r.U32()
	if err := r.Err(); err != nil {
		return m, err
	}
	if ng == 0 || ng > creditChainCap {
		return m, fmt.Errorf("credit ref: bad group count %d", ng)
	}
	m.Groups = make([]creditBatchGroup, 0, ng)
	for i := uint32(0); i < ng; i++ {
		idx := r.U32()
		if err := r.Err(); err != nil {
			return m, err
		}
		if idx >= creditChainCap {
			return m, fmt.Errorf("credit ref: chain index %d out of range", idx)
		}
		group, err := decodePaymentGroup(r)
		if err != nil {
			return m, err
		}
		m.Groups = append(m.Groups, creditBatchGroup{ChainIdx: idx, Group: group})
	}
	if err := r.Finish(); err != nil {
		return m, err
	}
	return m, nil
}

// creditNackSize is the exact size of a CREDITNACK message.
const creditNackSize = 1 + 32

func encodeCreditNack(missing types.Digest) []byte {
	w := wire.NewWriter(creditNackSize)
	w.U8(msgCreditNack)
	w.Bytes32(missing)
	return w.Bytes()
}

func decodeCreditNack(payload []byte) (types.Digest, error) {
	r := wire.NewReader(payload)
	d := r.Bytes32()
	if err := r.Finish(); err != nil {
		return types.Digest{}, err
	}
	return d, nil
}

// maxRedoGroups bounds the group count of a CREDITREDO request.
const maxRedoGroups = 1 << 12

// encodeCreditRedo encodes a CREDITREDO: a restarted representative's
// request that the receiver re-sign CREDITs for the given groups. The
// requester is implicit in the transport sender; the receiver signs only
// groups it can verify as settled in its own xlogs and destined to the
// requester's clients, so the message carries no authority of its own.
func encodeCreditRedo(groups [][]types.Payment) []byte {
	n := 1 + 4
	for _, g := range groups {
		n += 4 + len(g)*types.PaymentWireSize
	}
	w := wire.NewWriter(n)
	w.U8(msgCreditRedo)
	w.U32(uint32(len(groups)))
	for _, g := range groups {
		appendPaymentGroup(w, g)
	}
	return w.Bytes()
}

// decodeCreditRedo parses a CREDITREDO payload after its kind byte.
func decodeCreditRedo(payload []byte) ([][]types.Payment, error) {
	r := wire.NewReader(payload)
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 || n > maxRedoGroups {
		return nil, fmt.Errorf("credit: bad redo group count %d", n)
	}
	groups := make([][]types.Payment, n)
	for i := range groups {
		g, err := decodePaymentGroup(r)
		if err != nil {
			return nil, err
		}
		groups[i] = g
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return groups, nil
}

// encodeCreditRescan encodes a CREDITRESCAN: a restarted representative's
// request that a *foreign* shard's replica scan its own settled xlogs for
// payments benefiting the requester's clients and re-sign them as fresh
// credit groups. Unlike CREDITREDO the requester cannot name the payments
// — it holds no copy of the foreign shard's xlogs — so the message is
// just the kind byte; the requester's identity rides the transport, and
// over-answering is harmless (duplicate certificates are dropped at the
// requester's attach-time dedup).
func encodeCreditRescan() []byte {
	w := wire.NewWriter(1)
	w.U8(msgCreditRescan)
	return w.Bytes()
}

// decodeCreditRescan parses a CREDITRESCAN payload after its kind byte.
func decodeCreditRescan(payload []byte) error {
	return wire.NewReader(payload).Finish()
}

func appendPaymentGroup(w *wire.Writer, group []types.Payment) {
	w.U32(uint32(len(group)))
	for _, p := range group {
		w.AppendFunc(p.AppendBinary)
	}
}

func decodePaymentGroup(r *wire.Reader) ([]types.Payment, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n == 0 || n > maxGroup {
		return nil, fmt.Errorf("credit: bad group size %d", n)
	}
	group := make([]types.Payment, n)
	for i := range group {
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := group[i].UnmarshalBinary(raw); err != nil {
			return nil, err
		}
	}
	return group, nil
}
