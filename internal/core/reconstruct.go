package core

import (
	"fmt"
	"sort"

	"astro/internal/types"
)

// ReconstructState rebuilds a replica's state from transferred exclusive
// logs — the final step of reconfiguration state transfer (paper Appendix
// A: "our state transfer protocol simply consists of sending all xlogs to
// the joining replica"). The xlogs are replayed through the normal
// approve/settle engine, so the reconstructed state satisfies exactly the
// invariants a replica that observed the history would hold.
//
// Reconstruction uses Astro I settle semantics (direct beneficiary
// credits): xlogs alone determine balances under direct crediting, which
// is also the paper's rationale for keeping full logs rather than bare
// balances. (Under Astro II semantics, balances additionally depend on
// which dependency certificates were attached where; Astro II state
// transfer ships those alongside, see reconfig.)
func ReconstructState(genesis func(types.ClientID) types.Amount, xlogs map[types.ClientID][]types.Payment) (*State, error) {
	s := NewState(AstroI, genesis, nil)

	// Validate per-xlog invariants up front: owner spends, gapless seqs.
	clients := make([]types.ClientID, 0, len(xlogs))
	for c, log := range xlogs {
		for i, p := range log {
			if p.Spender != c {
				return nil, fmt.Errorf("reconstruct: xlog %d contains foreign payment %v", c, p)
			}
			if p.Seq != types.Seq(i+1) {
				return nil, fmt.Errorf("reconstruct: xlog %d has gap at position %d (seq %d)", c, i, p.Seq)
			}
		}
		clients = append(clients, c)
	}
	sort.Slice(clients, func(i, j int) bool { return clients[i] < clients[j] })

	// Replay everything; the engine's pending queues resolve funding
	// order automatically (a payment that depended on an incoming credit
	// settles once the crediting payment replays).
	total := 0
	for _, c := range clients {
		for _, p := range xlogs[c] {
			s.ApplyEntry(BatchEntry{Payment: p})
			total++
		}
	}
	if got := int(s.Counters().Settled); got != total {
		return nil, fmt.Errorf("reconstruct: %d of %d payments did not settle (histories inconsistent with genesis)", total-got, total)
	}
	return s, nil
}
