package core

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wal"
)

// testImage builds a populated replicaImage exercising every section of
// the snapshot encoding: pending broadcasts, accounts with queues and
// used deps, endorsement memory, and representative dependencies with
// multi-signature certificates.
func testImage() replicaImage {
	pay := func(s types.ClientID, seq types.Seq, b types.ClientID, x types.Amount) types.Payment {
		return types.Payment{Spender: s, Seq: seq, Beneficiary: b, Amount: x}
	}
	dep := Dependency{
		Group: []types.Payment{pay(1, 3, 7, 25), pay(1, 3, 9, 5)},
		Cert: DepCert{Sigs: []DepSig{
			{Replica: 0, Sig: []byte("sig-zero")},
			{Replica: 2, Sig: []byte("sig-two"), Chain: []types.Digest{types.HashBytes([]byte("prev"))}},
		}},
	}
	return replicaImage{
		nextSlot: 42,
		pending: map[uint64][]byte{
			40: EncodeBatch([]BatchEntry{{Payment: pay(5, 1, 6, 10)}}),
			41: EncodeBatch([]BatchEntry{{Payment: pay(5, 2, 6, 1), Deps: []Dependency{dep}}}),
		},
		accounts: []AccountExport{
			{
				Client:  1,
				Balance: 70,
				XLog:    []types.Payment{pay(1, 1, 2, 30)},
				Queue:   []BatchEntry{{Payment: pay(1, 2, 3, 10), Sig: []byte("cs")}},
				UsedDeps: []types.PaymentID{
					{Spender: 9, Seq: 1}, {Spender: 9, Seq: 4},
				},
			},
			{Client: 2, Balance: 130, Stuck: true},
		},
		endorsed: map[types.PaymentID]types.Digest{
			{Spender: 1, Seq: 1}: types.HashPayment(pay(1, 1, 2, 30)),
			{Spender: 5, Seq: 1}: types.HashPayment(pay(5, 1, 6, 10)),
		},
		repDeps: map[types.ClientID][]Dependency{7: {dep}},
	}
}

func TestReplicaImageRoundTrip(t *testing.T) {
	img := testImage()
	enc := encodeReplicaImage(img)
	got, err := decodeReplicaImage(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.nextSlot != img.nextSlot {
		t.Errorf("nextSlot = %d, want %d", got.nextSlot, img.nextSlot)
	}
	if len(got.pending) != len(img.pending) {
		t.Fatalf("pending = %d slots, want %d", len(got.pending), len(img.pending))
	}
	for s, p := range img.pending {
		if !bytes.Equal(got.pending[s], p) {
			t.Errorf("pending[%d] mismatch", s)
		}
	}
	if !reflect.DeepEqual(got.accounts, img.accounts) {
		t.Errorf("accounts mismatch:\n got %+v\nwant %+v", got.accounts, img.accounts)
	}
	if !reflect.DeepEqual(got.endorsed, img.endorsed) {
		t.Errorf("endorsed mismatch")
	}
	if !reflect.DeepEqual(got.repDeps, img.repDeps) {
		t.Errorf("repDeps mismatch:\n got %+v\nwant %+v", got.repDeps, img.repDeps)
	}

	// Re-encoding the decoded image must be byte-identical: the encoding
	// is canonical (sorted slots/clients), so snapshot bytes are stable
	// across save/load cycles.
	if enc2 := encodeReplicaImage(got); !bytes.Equal(enc, enc2) {
		t.Errorf("re-encode not canonical: %d vs %d bytes", len(enc), len(enc2))
	}
}

func TestReplicaImageDecodeRejectsCorruption(t *testing.T) {
	enc := encodeReplicaImage(testImage())
	if _, err := decodeReplicaImage(nil); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := decodeReplicaImage(enc[:len(enc)-1]); err == nil {
		t.Error("truncated image accepted")
	}
	if _, err := decodeReplicaImage(append(bytes.Clone(enc), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	bad := bytes.Clone(enc)
	bad[0] = snapshotVersion + 1
	if _, err := decodeReplicaImage(bad); err == nil {
		t.Error("wrong version accepted")
	}
}

// walCluster builds a cluster whose replicas each write to their own
// file-backed WAL under dir, with aggressive snapshot cadence so tests
// exercise compaction too.
func walCluster(t *testing.T, version Version, n int, dir string) *cluster {
	t.Helper()
	return newCluster(t, version, n, genesis100, func(cfg *Config) {
		be, err := wal.Open(filepath.Join(dir, "rep"+strconv.Itoa(int(cfg.Self))))
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		cfg.WAL = be
		cfg.WALSnapshotEvery = 3
	})
}

// restart tears down replica id as if the process died (memnet crash +
// in-process abort), then rebuilds it over the same data directory and
// a fresh mux on the same endpoint, and anti-entropies from donor.
func (c *cluster) restart(id types.ReplicaID, dir string, donor *Replica) *Replica {
	c.t.Helper()
	node := transport.ReplicaNode(id)
	c.net.Crash(node)
	c.replicas[id].Abandon()

	c.net.Restore(node)
	cfg := c.cfgs[id]
	be, err := wal.OpenAuto(filepath.Join(dir, "rep"+strconv.Itoa(int(id))), cfg.StateCacheAccounts > 0)
	if err != nil {
		c.t.Fatalf("wal reopen: %v", err)
	}
	cfg.Mux = transport.NewMux(c.net.Node(node))
	cfg.WAL = be
	r, err := NewReplica(cfg)
	if err != nil {
		c.t.Fatalf("restart replica %d: %v", id, err)
	}
	c.replicas[id] = r
	if donor != nil {
		if err := r.MergeFullSnapshot(donor.FullSnapshot()); err != nil {
			c.t.Fatalf("merge snapshot: %v", err)
		}
	}
	return r
}

// waitXLogsMatch waits until got's exclusive logs for the given clients
// match want's.
func waitXLogsMatch(t *testing.T, want, got *Replica, clients []types.ClientID, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
		for _, cl := range clients {
			if !reflect.DeepEqual(want.XLogSnapshot(cl), got.XLogSnapshot(cl)) {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, cl := range clients {
				w, g := want.XLogSnapshot(cl), got.XLogSnapshot(cl)
				if !reflect.DeepEqual(w, g) {
					t.Errorf("client %d: xlog %v, want %v", cl, g, w)
				}
			}
			t.Fatal("xlogs never converged")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicaCloseRecover is the single-node durability round trip: a
// clean Close must leave a WAL+snapshot from which a new replica rebuilds
// the exact settled state, with no peers to catch up from.
func TestReplicaCloseRecover(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		dir := t.TempDir()
		c := walCluster(t, v, 1, dir)
		alice := c.client(1)
		for i := 0; i < 5; i++ {
			c.payAndWait(alice, 2, 10)
		}
		c.waitSettledEverywhere(5, 5*time.Second)

		// CREDIT signatures arrive asynchronously after settlement; wait
		// for client 2's credits to materialize (and hit the WAL) before
		// cutting the network, so recovery has a deterministic target.
		deadline := time.Now().Add(5 * time.Second)
		for c.replicas[0].Balance(2) != 150 {
			if time.Now().After(deadline) {
				t.Fatalf("client 2's credits never materialized: balance %d, want 150",
					c.replicas[0].Balance(2))
			}
			time.Sleep(2 * time.Millisecond)
		}

		c.net.Crash(transport.ReplicaNode(0))
		c.replicas[0].Close()

		r := c.restart(0, dir, nil)
		if bal := r.Balance(1); bal != 50 {
			t.Errorf("balance(1) = %d, want 50", bal)
		}
		if bal := r.Balance(2); bal != 150 {
			t.Errorf("balance(2) = %d, want 150", bal)
		}
		if log := r.XLogSnapshot(1); len(log) != 5 {
			t.Errorf("xlog(1) = %d entries, want 5", len(log))
		}
		if seq := r.NextSeq(1); seq != 6 {
			t.Errorf("nextSeq(1) = %d, want 6", seq)
		}
		if err := r.WALErr(); err != nil {
			t.Errorf("wal error after recovery: %v", err)
		}

		// The recovered replica must still be live: sync the client (its
		// confirmation channel died with the old replica) and pay again.
		if _, err := alice.SyncSeq(2 * time.Second); err != nil {
			t.Fatalf("sync seq: %v", err)
		}
		c.payAndWait(alice, 2, 10)
		if bal := r.Balance(1); bal != 40 {
			t.Errorf("balance(1) after restart payment = %d, want 40", bal)
		}
	})
}

// TestReplicaKillRecover kills a replica without any flush (kill -9:
// Abandon drops buffered WAL work on the floor), restarts it from disk,
// and anti-entropies the tail it lost from a healthy peer. Settled state
// must converge, credit certificates held by the victim as a
// representative must survive and remain spendable, and the restarted
// replica must settle new payments.
func TestReplicaKillRecover(t *testing.T) {
	dir := t.TempDir()
	c := walCluster(t, AstroII, 4, dir)
	all := []types.ClientID{1, 2, 3, 100}
	// Replica 3 represents client 3, which only receives in phase one:
	// its balance at the victim is pure credit-certificate state, the
	// part of recovery the merge cannot reconstruct (representative-local
	// dependencies are never adopted from peers).
	victim := types.ReplicaID(3)
	for i := 0; i < 4; i++ {
		c.payAndWait(c.client(1), 100, 1)
		c.payAndWait(c.client(2), 100, 1)
	}
	c.payAndWait(c.client(1), 3, 20)
	c.payAndWait(c.client(1), 3, 20)
	c.waitSettledEverywhere(10, 10*time.Second)

	// Wait for the victim to accumulate client 3's credits (CREDIT
	// signatures arrive asynchronously after settlement), then force the
	// WAL tail to disk — kill -9 legitimately loses unsynced appends, and
	// this test is about what a synced log must preserve.
	deadline := time.Now().Add(5 * time.Second)
	for c.replicas[victim].Balance(3) != 140 {
		if time.Now().After(deadline) {
			t.Fatalf("victim never saw client 3's credits: balance %d, want 140",
				c.replicas[victim].Balance(3))
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.replicas[victim].wal.Barrier()

	// Kill, then keep settling payments the victim misses entirely.
	c.net.Crash(transport.ReplicaNode(victim))
	c.replicas[victim].Abandon()
	for i := 0; i < 3; i++ {
		c.payAndWait(c.clients[1], 100, 1)
		c.payAndWait(c.clients[2], 100, 1)
	}

	// Restart from its own WAL, then merge the missed suffix from a
	// healthy peer (the transport-level equivalent lives in reconfig's
	// state fetch; core tests call the merge directly).
	r := c.restart(victim, dir, c.replicas[0])
	waitXLogsMatch(t, c.replicas[0], r, all, 5*time.Second)
	// Settled balances are a deterministic function of the delivered
	// batches, so once xlogs converge they must agree replica-for-replica
	// (Balance() itself differs by design: only the representative counts
	// unattached credits).
	for _, cl := range all {
		if want, got := c.replicas[0].state.Balance(cl), r.state.Balance(cl); want != got {
			t.Errorf("client %d: settled balance %d, want %d", cl, got, want)
		}
	}
	// The victim's representative-side credit certificates for client 3
	// came back from its own WAL.
	if got := r.Balance(3); got != 140 {
		t.Errorf("client 3 spendable balance after recovery = %d, want 140", got)
	}
	if cnt := r.Counters(); cnt.Conflicts != 0 {
		t.Errorf("recovery produced %d conflicts", cnt.Conflicts)
	}

	// Liveness and credit validity: client 3 spends more than its settled
	// balance, so the payment only settles if the recovered certificates
	// verify at every replica.
	cl3 := c.client(3)
	if _, err := cl3.SyncSeq(2 * time.Second); err != nil {
		t.Fatalf("sync seq: %v", err)
	}
	c.payAndWait(cl3, 100, 130)
	deadline = time.Now().Add(5 * time.Second)
	for {
		ok := true
		for _, rep := range c.replicas {
			if len(rep.XLogSnapshot(3)) != 1 {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			lens := make([]int, len(c.replicas))
			for i, rep := range c.replicas {
				lens[i] = len(rep.XLogSnapshot(3))
			}
			t.Fatalf("post-restart credit spend never settled everywhere: xlog lens %v", lens)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for i, rep := range c.replicas {
		if got := rep.state.Balance(3); got != 10 {
			t.Errorf("replica %d: client 3 settled balance = %d, want 10 (100+40-130)", i, got)
		}
		if cnt := rep.Counters(); cnt.Conflicts != 0 {
			t.Errorf("replica %d: %d conflicts", i, cnt.Conflicts)
		}
	}
}

// TestCloseFlushesBufferedWork ensures Close drains batches still sitting
// in the submit buffer into the WAL (as slot reservations) so a restart
// rebroadcasts rather than forgets them.
func TestCloseFlushesBufferedWork(t *testing.T) {
	dir := t.TempDir()
	c := walCluster(t, AstroI, 4, dir)
	alice := c.client(1)
	c.payAndWait(alice, 2, 10)
	c.waitSettledEverywhere(1, 5*time.Second)

	// Cut replica 0 off from the network so its next broadcast cannot
	// complete, then submit: the batch stays pending. Close must still
	// persist it.
	node := transport.ReplicaNode(0)
	c.net.Crash(node)
	if _, err := alice.Pay(2, 5); err != nil {
		t.Fatalf("pay: %v", err)
	}
	// The submission races the crash only at the network layer; give the
	// replica a moment to pull it into its buffer via the local channel.
	// Clients talk to their representative over memnet too, so resend
	// until the replica has it queued.
	deadline := time.Now().Add(2 * time.Second)
	for c.replicas[0].PendingSubmits(1) == 0 && c.replicas[0].BroadcastFailures() == 0 {
		if time.Now().After(deadline) {
			t.Skip("submission never reached the crashed replica's buffer")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.replicas[0].Close()

	// Reopen the backend raw and verify the close-time snapshot carries
	// the unfinished broadcast as a pending slot reservation.
	be, err := wal.Open(filepath.Join(dir, "rep0"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer be.Abort()
	var img replicaImage
	var sawSnapshot bool
	err = be.Load(
		func(snap []byte) error {
			sawSnapshot = true
			var derr error
			img, derr = decodeReplicaImage(snap)
			return derr
		},
		func(kind byte, payload []byte) error { return nil },
	)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !sawSnapshot {
		t.Fatal("Close wrote no snapshot")
	}
	if len(img.pending) == 0 {
		t.Fatal("close-time snapshot lost the buffered broadcast")
	}
	for slot, payload := range img.pending {
		entries, derr := DecodeBatch(payload)
		if derr != nil {
			t.Fatalf("slot %d: undecodable pending batch: %v", slot, derr)
		}
		if len(entries) == 0 {
			t.Errorf("slot %d: empty pending batch", slot)
		}
	}
}

// TestWALSnapshotCompaction checks that steady traffic with a tiny
// snapshot cadence actually rotates snapshots (recovery must come from
// a snapshot, not a replay of the full history).
func TestWALSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	c := walCluster(t, AstroI, 4, dir)
	alice := c.client(1)
	for i := 0; i < 12; i++ {
		c.payAndWait(alice, 2, 1)
	}
	c.waitSettledEverywhere(12, 10*time.Second)

	c.net.Crash(transport.ReplicaNode(0))
	c.replicas[0].Abandon()
	be, err := wal.Open(filepath.Join(dir, "rep0"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer be.Abort()
	var sawSnapshot bool
	records := 0
	err = be.Load(
		func(snap []byte) error {
			sawSnapshot = true
			_, derr := decodeReplicaImage(snap)
			return derr
		},
		func(kind byte, payload []byte) error { records++; return nil },
	)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !sawSnapshot {
		t.Fatal("no snapshot written despite WALSnapshotEvery=3 and 12 settles")
	}
	// 12 settled batches at cadence 3 → the newest snapshot covers most
	// of history; the tail must be much shorter than the full record
	// stream (4 records per batch worst case ⇒ 48+ without compaction).
	if records > 24 {
		t.Errorf("tail has %d records; compaction appears ineffective", records)
	}
}
