package core

// Regression test for the broadcast-failure path: a Broadcaster that
// rejects a batch must not crash the node (the pre-PR4 behavior was a
// panic); the batch is requeued and retried on the flush timer, and the
// payment still settles.

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/brb"
	"astro/internal/types"
)

// flakyBroadcaster fails the first n Broadcast calls, then delegates.
type flakyBroadcaster struct {
	inner brb.Broadcaster
	fails atomic.Int32
}

func (f *flakyBroadcaster) Broadcast(payload []byte) (uint64, error) {
	if f.fails.Add(-1) >= 0 {
		return 0, errors.New("transient broadcaster failure")
	}
	return f.inner.Broadcast(payload)
}

func (f *flakyBroadcaster) Delivered(origin types.ReplicaID) uint64 {
	return f.inner.Delivered(origin)
}

func TestBroadcastFailureRequeuesAndRetries(t *testing.T) {
	gen := func(c types.ClientID) types.Amount { return 1000 }
	c := newCluster(t, AstroII, 4, gen)

	rep := c.replicas[int(c.repOf(1))]
	fb := &flakyBroadcaster{inner: rep.bc}
	fb.fails.Store(2)
	rep.bc = fb

	// The submission's first flush fails twice; the requeue + flush-timer
	// retry must still carry it to settlement and confirmation.
	alice := c.client(1)
	c.payAndWait(alice, 2, 30)

	if got := rep.BroadcastFailures(); got != 2 {
		t.Fatalf("BroadcastFailures = %d, want 2", got)
	}
	c.waitSettledEverywhere(1, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(1); bal != 970 {
			t.Errorf("replica %d: balance(1) = %d, want 970", i, bal)
		}
	}
	// The projection was restored: nothing left in flight, later payments
	// flow without the failed attempts leaking inflight charge.
	c.payAndWait(alice, 2, 70)
	c.waitSettledEverywhere(2, 5*time.Second)
	if bal := rep.Balance(1); bal != 900 {
		t.Errorf("balance(1) after second payment = %d, want 900", bal)
	}
}
