package core

// Concurrency tests for the striped settlement state (run under -race by
// the Makefile's race target): conservation of money and per-client xlog
// FIFO must survive payments settling concurrently across stripes, and
// whole-state snapshots must be consistent cuts (no torn transfers).

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/types"
)

// TestSnapshotConsistencyUnderConcurrentSettle drives Astro I transfers —
// including cross-stripe ones, which hold two stripe locks — from many
// goroutines while a reader thread takes TotalSettledBalance snapshots.
// Every snapshot must show exactly the genesis total: money mid-transfer
// (debited but not credited) would be a torn read.
func TestSnapshotConsistencyUnderConcurrentSettle(t *testing.T) {
	const (
		nClients  = 24
		perClient = 50
	)
	s := NewStateStriped(AstroI, genesis100, nil, 8)
	// Materialize every account first so the expected total is fixed.
	for c := types.ClientID(1); c <= nClients; c++ {
		_ = s.Balance(c)
	}
	want := types.Amount(100 * nClients)

	var stop atomic.Bool
	snapErr := make(chan types.Amount, 1)
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for !stop.Load() {
			if got := s.TotalSettledBalance(); got != want {
				select {
				case snapErr <- got:
				default:
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := types.ClientID(1); c <= nClients; c++ {
		wg.Add(1)
		go func(c types.ClientID) {
			defer wg.Done()
			for i := 1; i <= perClient; i++ {
				// Beneficiaries cycle over all clients, so transfers
				// constantly cross stripe boundaries in both directions.
				ben := types.ClientID(uint64(c)+uint64(i))%nClients + 1
				s.ApplyEntry(BatchEntry{Payment: pay(c, types.Seq(i), ben, 1)})
			}
		}(c)
	}
	wg.Wait()
	stop.Store(true)
	snapWG.Wait()
	select {
	case got := <-snapErr:
		t.Fatalf("torn snapshot: TotalSettledBalance = %d, want %d", got, want)
	default:
	}

	if got := s.TotalSettledBalance(); got != want {
		t.Fatalf("final total = %d, want %d", got, want)
	}
	counters := s.Counters()
	if counters.Settled != nClients*perClient {
		t.Fatalf("settled = %d, want %d", counters.Settled, nClients*perClient)
	}
	if counters.Dropped != 0 || counters.Conflicts != 0 {
		t.Fatalf("dropped/conflicts = %d/%d, want 0/0", counters.Dropped, counters.Conflicts)
	}
	for c := types.ClientID(1); c <= nClients; c++ {
		if !s.XLog(c).Verify() || s.XLog(c).Len() != perClient {
			t.Fatalf("client %d xlog broken: len=%d", c, s.XLog(c).Len())
		}
	}
}

// TestStripedStateDisjointConcurrentApply settles disjoint Astro II
// accounts from concurrent appliers — the settlement fan-out the Replica
// performs per delivered batch — and checks per-client FIFO and exact
// counters afterwards.
func TestStripedStateDisjointConcurrentApply(t *testing.T) {
	const (
		nClients  = 16
		perClient = 100
	)
	s := NewState(AstroII, genesis100, nil)
	var wg sync.WaitGroup
	for c := types.ClientID(1); c <= nClients; c++ {
		wg.Add(1)
		go func(c types.ClientID) {
			defer wg.Done()
			// Deliver a few out of order to exercise the queue under the
			// stripe lock.
			for i := perClient; i >= 1; i-- {
				s.ApplyEntry(BatchEntry{Payment: pay(c, types.Seq(i), c+1, 1)})
			}
		}(c)
	}
	wg.Wait()
	counters := s.Counters()
	if counters.Settled != nClients*perClient {
		t.Fatalf("settled = %d, want %d", counters.Settled, nClients*perClient)
	}
	for c := types.ClientID(1); c <= nClients; c++ {
		if s.NextSeq(c) != perClient+1 {
			t.Fatalf("client %d NextSeq = %d", c, s.NextSeq(c))
		}
		if !s.XLog(c).Verify() {
			t.Fatalf("client %d xlog violates FIFO invariant", c)
		}
		if got := s.Balance(c); got != 0 {
			t.Fatalf("client %d balance = %d, want 0 (withdrawal-only)", c, got)
		}
	}
}

// TestConservationUnderConcurrentLoad is the cluster-level version: many
// clients of different representatives submit concurrently, so the
// payment, BRB, credit, and local-timer channels all carry load at once
// across the striped state. Afterwards every replica must hold identical,
// FIFO-clean xlogs, and the system-wide spendable balance must converge
// back to the genesis total (conservation of money — for Astro II this
// includes dependency certificates still parked at representatives).
func TestConservationUnderConcurrentLoad(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		const (
			nClients  = 8
			perClient = 6
		)
		c := newCluster(t, v, 4, genesis100)
		type sent struct {
			mu   sync.Mutex
			logs map[types.ClientID][]types.Payment
		}
		sub := sent{logs: make(map[types.ClientID][]types.Payment)}

		var wg sync.WaitGroup
		for i := 1; i <= nClients; i++ {
			cl := c.client(types.ClientID(i))
			wg.Add(1)
			go func(cl *Client) {
				defer wg.Done()
				me := cl.ID()
				for j := 1; j <= perClient; j++ {
					ben := types.ClientID(uint64(me)+uint64(j))%nClients + 1
					amt := types.Amount(j) // distinct amounts expose reordering
					id, err := cl.Pay(ben, amt)
					if err != nil {
						t.Error(err)
						return
					}
					sub.mu.Lock()
					sub.logs[me] = append(sub.logs[me], types.Payment{Spender: me, Seq: id.Seq, Beneficiary: ben, Amount: amt})
					sub.mu.Unlock()
					if err := cl.WaitConfirm(id, 15*time.Second); err != nil {
						t.Errorf("client %d: %v", me, err)
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		c.waitSettledEverywhere(nClients*perClient, 15*time.Second)

		// Per-client xlog FIFO, identical at every replica, matching the
		// submission order exactly.
		for i := 1; i <= nClients; i++ {
			id := types.ClientID(i)
			want := sub.logs[id]
			for ri, r := range c.replicas {
				log := r.XLogSnapshot(id)
				if len(log) != len(want) {
					t.Fatalf("replica %d: client %d xlog has %d entries, want %d", ri, i, len(log), len(want))
				}
				for j := range want {
					if log[j] != want[j] {
						t.Fatalf("replica %d: client %d xlog[%d] = %v, want %v (FIFO violated)", ri, i, j, log[j], want[j])
					}
				}
			}
		}

		// Conservation. Astro I: settled balances alone are the money.
		// Astro II: money settled away from a spender lives as a CREDIT
		// until f+1 signatures form the dependency at the beneficiary's
		// representative, so poll until the last waves land.
		want := types.Amount(100 * nClients)
		total := func() types.Amount {
			var sum types.Amount
			for i := 1; i <= nClients; i++ {
				id := types.ClientID(i)
				sum += c.replicas[int(c.repOf(id))].Balance(id)
			}
			return sum
		}
		deadline := time.Now().Add(10 * time.Second)
		for total() != want {
			if time.Now().After(deadline) {
				t.Fatalf("conservation violated: total spendable = %d, want %d", total(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}

		counters := c.replicas[0].Counters()
		if counters.Settled != nClients*perClient || counters.Dropped != 0 || counters.Conflicts != 0 {
			t.Fatalf("counters = %+v", counters)
		}
	})
}
