package core

// The hardened client submission loop: PayReliable keeps a payment alive
// across lost frames, representative restarts, partitions, and chaos-level
// packet loss, without ever creating the double-spend a naive retry would.
//
// The key property is idempotent resubmission: the sequence number is
// assigned (and the payment signed) exactly once, and every retry resends
// the byte-identical submit frame. The representative's preScreenSubmit
// then collapses retries into at most one broadcast slot:
//
//   - still in flight  -> endorsement memory hit, frame dropped, the
//     original settlement will confirm;
//   - already settled  -> a fresh confirmation is re-sent (the retry
//     answers the lost-confirmation case directly);
//   - never arrived    -> accepted as if it were the first copy.
//
// Calling Pay again on timeout instead would assign a *new* sequence
// number and strand the old one as a permanent xlog gap.

import (
	"errors"
	"fmt"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

// ErrGaveUp is returned when PayReliable exhausts its attempts. The
// payment may still settle later — the identifier remains valid and a
// later PayReliable retry of the same payment is safe.
var ErrGaveUp = errors.New("core: payment unconfirmed after all retries")

// RetryPolicy configures PayReliable. The zero value selects defaults
// suitable for a LAN deployment under moderate chaos.
type RetryPolicy struct {
	Attempts   int           // submit attempts before giving up; 0 means 8
	Timeout    time.Duration // per-attempt confirmation wait; 0 means 2s
	Backoff    time.Duration // base retry pause, doubled each attempt; 0 means 100ms
	MaxBackoff time.Duration // backoff cap; 0 means 2s
	Resync     bool          // SyncSeq before each retry (reconnect + resume)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 8
	}
	if p.Timeout <= 0 {
		p.Timeout = 2 * time.Second
	}
	if p.Backoff <= 0 {
		p.Backoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// jitterPause draws a uniformly jittered pause in [0.5, 1.5) × d from the
// client's splitmix64 stream, so a fleet of clients cut off by the same
// fault doesn't retry in lockstep.
func (c *Client) jitterPause(d time.Duration) time.Duration {
	x := c.retrySeed.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	u := float64(x>>11) / float64(1<<53)
	return time.Duration((0.5 + u) * float64(d))
}

// PayReliable submits a payment and retries the identical frame with
// jittered exponential backoff until it is confirmed or the policy is
// exhausted. Like Pay/WaitConfirm, it is meant to be driven from one
// goroutine per client. The returned PaymentID is valid even on error
// (the payment may settle after the caller gave up).
func (c *Client) PayReliable(b types.ClientID, x types.Amount, pol RetryPolicy) (types.PaymentID, error) {
	pol = pol.withDefaults()

	// Assign the sequence number and sign exactly once; retries must be
	// byte-identical to be idempotent at the representative.
	c.mu.Lock()
	p := types.Payment{Spender: c.id, Seq: c.nextSeq, Beneficiary: b, Amount: x}
	c.nextSeq++
	c.mu.Unlock()
	var sig []byte
	if c.keys != nil {
		var err error
		sig, err = c.keys.Sign(PaymentDigest(p))
		if err != nil {
			return types.PaymentID{}, fmt.Errorf("sign payment: %w", err)
		}
	}
	frame := encodeSubmit(p, sig)

	backoff := pol.Backoff
	var lastErr error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.jitterPause(backoff))
			if backoff *= 2; backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
			if pol.Resync {
				// Re-establish the connection and the sequence view in one
				// round trip. Harmless for this payment — SyncSeq never
				// moves the counter backwards and p is already assigned —
				// but it surfaces a restarted representative before the
				// resend, and primes tcpnet's redial.
				_, _ = c.SyncSeq(pol.Timeout)
			}
		}
		if err := c.mux.Send(transport.ReplicaNode(c.rep), transport.ChanPayment, frame); err != nil {
			lastErr = err
			continue // transport down: back off and redial
		}
		if err := c.WaitConfirm(p.ID(), pol.Timeout); err == nil {
			return p.ID(), nil
		} else {
			lastErr = err
		}
	}
	return p.ID(), fmt.Errorf("%w (attempts=%d, last error: %v)", ErrGaveUp, pol.Attempts, lastErr)
}
