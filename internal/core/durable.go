package core

import (
	"cmp"
	"fmt"
	"maps"
	"slices"

	"astro/internal/brb"
	"astro/internal/reconfig"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wal"
	"astro/internal/wire"
)

// Durable replica state (see internal/wal for the sync contract). The WAL
// records everything a replica has externalized an opinion about and must
// not forget across a crash:
//
//   - recEndorse: payments this replica endorsed through the BRB validator
//     — the memory that makes the double-spend check survive a restart (a
//     recovering replica never adopts endorsement memory from peers; only
//     its own log can prove what it promised);
//   - recBcast: a broadcast-slot reservation — slot plus batch payload,
//     fsynced (Barrier) before the first wire message, so a restarted
//     replica never reuses a slot peers may have acked under a different
//     payload, and can rebroadcast batches that were cut off mid-flight;
//   - recBcastDone: the reservation's release on self-delivery;
//   - recSettle: one delivered batch, post dependency screening, appended
//     after the settlement wave applied — replay drives the identical
//     entries through the identical engine;
//   - recDep: a completed dependency certificate registered for this
//     replica's clients (the beneficiary-side funds that exist nowhere
//     else until attached to a payment).
//
// Compaction snapshots capture the full image (snapshotVersion below); the
// identical encoding serves reconfig full-state transfer, so a recovering
// replica is just a joiner with a prefix.
const (
	recEndorse   byte = 1
	recSettle    byte = 2
	recDep       byte = 3
	recBcast     byte = 4
	recBcastDone byte = 5
)

// defaultWALSnapshotEvery is the compaction cadence: settled-batch records
// between snapshots. At the paper's 256-payment batches one snapshot
// covers ~1M payments of log tail — replay stays well under a second while
// snapshot I/O stays far off the settle path.
const defaultWALSnapshotEvery = 4096

// snapshotVersion is the full-image format version (both WAL snapshots and
// reconfig kindStateFull transfers). snapshotVersionManifest marks the
// PR 10 incremental form: the same image minus the xlog and account
// sections, whose content lives as per-account records in the KV store
// the snapshot publishes with — restart replays manifest + log tail and
// faults accounts lazily, instead of decoding a full-state image.
const (
	snapshotVersion         = 1
	snapshotVersionManifest = 2
)

// replicaImage is the decoded full image of a replica's durable state.
// manifest marks an incremental (v2) image, whose accounts slice is
// empty because the account state lives beside it in the KV store.
type replicaImage struct {
	nextSlot uint64
	pending  map[uint64][]byte
	accounts []AccountExport
	endorsed map[types.PaymentID]types.Digest
	repDeps  map[types.ClientID][]Dependency
	manifest bool
}

// encodeReplicaImage serializes a full image. The xlog section reuses the
// reconfig state-body encoding, so one format serves disk and state
// transfer.
func encodeReplicaImage(img replicaImage) []byte {
	xlogs := make(map[types.ClientID][]types.Payment, len(img.accounts))
	est := 1 + 8 + 4
	for _, p := range img.pending {
		est += 12 + len(p)
	}
	for _, ex := range img.accounts {
		xlogs[ex.Client] = ex.XLog
		est += 17 + batchSize(ex.Queue) + 4 + 16*len(ex.UsedDeps)
	}
	est += reconfig.StateBodySize(xlogs)
	est += 4 + 48*len(img.endorsed)
	est += 4
	for _, ds := range img.repDeps {
		est += 12
		for _, d := range ds {
			est += dependencySize(d)
		}
	}

	w := wire.NewWriter(est)
	if img.manifest {
		w.U8(snapshotVersionManifest)
	} else {
		w.U8(snapshotVersion)
	}
	w.U64(img.nextSlot)
	slots := make([]uint64, 0, len(img.pending))
	for s := range img.pending {
		slots = append(slots, s)
	}
	slices.Sort(slots)
	w.U32(uint32(len(slots)))
	for _, s := range slots {
		w.U64(s)
		w.Chunk(img.pending[s])
	}
	if !img.manifest {
		reconfig.AppendStateBody(w, xlogs)
		w.U32(uint32(len(img.accounts)))
		for _, ex := range img.accounts {
			w.U64(uint64(ex.Client))
			w.U64(uint64(ex.Balance))
			w.Bool(ex.Stuck)
			appendBatch(w, ex.Queue)
			w.U32(uint32(len(ex.UsedDeps)))
			for _, id := range ex.UsedDeps {
				w.U64(uint64(id.Spender))
				w.U64(uint64(id.Seq))
			}
		}
	}
	w.U32(uint32(len(img.endorsed)))
	eids := make([]types.PaymentID, 0, len(img.endorsed))
	for id := range img.endorsed {
		eids = append(eids, id)
	}
	slices.SortFunc(eids, func(a, b types.PaymentID) int {
		if a.Spender != b.Spender {
			return cmp.Compare(a.Spender, b.Spender)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	for _, id := range eids {
		w.U64(uint64(id.Spender))
		w.U64(uint64(id.Seq))
		w.Bytes32(img.endorsed[id])
	}
	w.U32(uint32(len(img.repDeps)))
	clients := make([]types.ClientID, 0, len(img.repDeps))
	for c := range img.repDeps {
		clients = append(clients, c)
	}
	slices.Sort(clients)
	for _, c := range clients {
		ds := img.repDeps[c]
		w.U64(uint64(c))
		w.U32(uint32(len(ds)))
		for _, d := range ds {
			encodeDependency(w, d)
		}
	}
	return w.Bytes()
}

// countFits guards decoded element counts against corrupt length prefixes:
// n elements of at least minSize bytes each must fit in what remains.
func countFits(r *wire.Reader, n uint32, minSize int) bool {
	return uint64(n)*uint64(minSize) <= uint64(r.Remaining())
}

// decodeReplicaImage parses a full (v1) or manifest (v2) image produced
// by encodeReplicaImage.
func decodeReplicaImage(data []byte) (replicaImage, error) {
	var img replicaImage
	r := wire.NewReader(data)
	v := r.U8()
	if r.Err() != nil || (v != snapshotVersion && v != snapshotVersionManifest) {
		return img, fmt.Errorf("core: snapshot version %d unsupported", v)
	}
	img.manifest = v == snapshotVersionManifest
	img.nextSlot = r.U64()
	np := r.U32()
	if r.Err() != nil || !countFits(r, np, 12) {
		return img, fmt.Errorf("core: snapshot pending section corrupt")
	}
	img.pending = make(map[uint64][]byte, np)
	for i := uint32(0); i < np; i++ {
		slot := r.U64()
		pl := r.Chunk()
		if r.Err() != nil {
			return img, fmt.Errorf("core: snapshot pending section corrupt")
		}
		img.pending[slot] = slices.Clone(pl)
	}
	if !img.manifest {
		xlogs, ok := reconfig.ReadStateBody(r)
		if !ok {
			return img, fmt.Errorf("core: snapshot xlog section corrupt")
		}
		na := r.U32()
		if r.Err() != nil || !countFits(r, na, 25) {
			return img, fmt.Errorf("core: snapshot account section corrupt")
		}
		img.accounts = make([]AccountExport, 0, na)
		for i := uint32(0); i < na; i++ {
			var ex AccountExport
			ex.Client = types.ClientID(r.U64())
			ex.Balance = types.Amount(r.U64())
			ex.Stuck = r.Bool()
			queue, err := readBatchEntries(r)
			if err != nil {
				return img, fmt.Errorf("core: snapshot account queue: %w", err)
			}
			if len(queue) > 0 {
				ex.Queue = queue
			}
			nu := r.U32()
			if r.Err() != nil || !countFits(r, nu, 16) {
				return img, fmt.Errorf("core: snapshot account section corrupt")
			}
			if nu > 0 {
				ex.UsedDeps = make([]types.PaymentID, nu)
			}
			for j := range ex.UsedDeps {
				ex.UsedDeps[j] = types.PaymentID{
					Spender: types.ClientID(r.U64()),
					Seq:     types.Seq(r.U64()),
				}
			}
			if xl := xlogs[ex.Client]; len(xl) > 0 {
				ex.XLog = xl
			}
			img.accounts = append(img.accounts, ex)
		}
	}
	ne := r.U32()
	if r.Err() != nil || !countFits(r, ne, 48) {
		return img, fmt.Errorf("core: snapshot endorsement section corrupt")
	}
	img.endorsed = make(map[types.PaymentID]types.Digest, ne)
	for i := uint32(0); i < ne; i++ {
		id := types.PaymentID{
			Spender: types.ClientID(r.U64()),
			Seq:     types.Seq(r.U64()),
		}
		img.endorsed[id] = r.Bytes32()
	}
	nr := r.U32()
	if r.Err() != nil || !countFits(r, nr, 12) {
		return img, fmt.Errorf("core: snapshot dependency section corrupt")
	}
	img.repDeps = make(map[types.ClientID][]Dependency, nr)
	for i := uint32(0); i < nr; i++ {
		c := types.ClientID(r.U64())
		nd := r.U32()
		if r.Err() != nil || !countFits(r, nd, 1) {
			return img, fmt.Errorf("core: snapshot dependency section corrupt")
		}
		ds := make([]Dependency, 0, nd)
		for j := uint32(0); j < nd; j++ {
			d, err := decodeDependency(r, nil)
			if err != nil {
				return img, fmt.Errorf("core: snapshot dependency: %w", err)
			}
			ds = append(ds, d)
		}
		img.repDeps[c] = ds
	}
	if err := r.Finish(); err != nil {
		return img, fmt.Errorf("core: snapshot trailing bytes: %w", err)
	}
	return img, nil
}

// encodeBcastRecord frames a recBcast payload: slot plus raw batch bytes.
func encodeBcastRecord(slot uint64, payload []byte) []byte {
	w := wire.NewWriter(8 + len(payload))
	w.U64(slot)
	w.Raw(payload)
	return w.Bytes()
}

func decodeBcastRecord(payload []byte) (uint64, []byte, error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("core: recBcast record of %d bytes", len(payload))
	}
	r := wire.NewReader(payload[:8])
	return r.U64(), payload[8:], nil
}

func encodeBcastDoneRecord(slot uint64) []byte {
	w := wire.NewWriter(8)
	w.U64(slot)
	return w.Bytes()
}

// captureImage assembles the full durable image. The sections are captured
// under their own locks (bcastMu, the state's stripes, repMu, endorsedMu —
// never nested), which is consistent by the log's FIFO discipline: every
// in-memory mutation happens before its WAL record is appended, and the
// snapshot build runs on the same flow after those appends, so whatever a
// truncated record described is already inside the image.
func (r *Replica) captureImage() replicaImage {
	img := r.captureMeta()
	img.accounts = r.state.ExportAccounts()
	return img
}

// captureMeta captures every image section except the accounts — the
// manifest of the incremental snapshot path, whose account state lives
// as per-account KV records instead of inside the image.
func (r *Replica) captureMeta() replicaImage {
	var img replicaImage
	r.bcastMu.Lock()
	img.nextSlot = r.nextBcastSlot
	img.pending = maps.Clone(r.pendingBcast)
	r.bcastMu.Unlock()
	if img.pending == nil {
		img.pending = make(map[uint64][]byte)
	}
	r.repMu.Lock()
	img.repDeps = make(map[types.ClientID][]Dependency, len(r.repDeps))
	for c, ds := range r.repDeps {
		img.repDeps[c] = slices.Clone(ds)
	}
	// Dependencies attached to batches that are buffered but not yet
	// slot-reserved would otherwise vanish with the buffer: the payments
	// themselves are legitimately volatile (the client retries an
	// unconfirmed submission, re-attaching deps), but the certificates are
	// the beneficiaries' only claim to their funds — fold them back into
	// the attachable set. Deps riding slot-reserved batches stay with the
	// batch (img.pending); restoreProjections re-strips them on replay.
	foldBack := func(entries []BatchEntry) {
		for _, e := range entries {
			if len(e.Deps) > 0 {
				img.repDeps[e.Payment.Spender] = append(img.repDeps[e.Payment.Spender], e.Deps...)
			}
		}
	}
	foldBack(r.buffer)
	for _, b := range r.sendQ {
		foldBack(b)
	}
	r.repMu.Unlock()
	r.endorsedMu.Lock()
	img.endorsed = maps.Clone(r.endorsed)
	r.endorsedMu.Unlock()
	if img.endorsed == nil {
		img.endorsed = make(map[types.PaymentID]types.Digest)
	}
	return img
}

// FullSnapshot returns the replica's full durable image — the WAL
// compaction payload, doubling as the reconfig full-state transfer body
// (reconfig.FullStateProvider).
func (r *Replica) FullSnapshot() []byte {
	return encodeReplicaImage(r.captureImage())
}

var _ reconfig.FullStateProvider = (*Replica)(nil)

// recover replays the backend's stored state into the freshly constructed
// replica: snapshot first, then the log tail. Called from NewReplica
// before the broadcast layer exists, single-threaded.
func (r *Replica) recover(be wal.Backend) error {
	err := be.Load(
		func(snap []byte) error {
			img, err := decodeReplicaImage(snap)
			if err != nil {
				return err
			}
			if err := r.installImage(img); err != nil {
				return err
			}
			r.recovered = true
			return nil
		},
		func(kind byte, payload []byte) error {
			r.recovered = true
			return r.replayRecord(kind, payload)
		},
	)
	if err != nil {
		return err
	}
	if r.recovered {
		r.restoreProjections()
	}
	return nil
}

// installImage adopts an image wholesale — the fresh-state snapshot
// install at the start of recovery. For a manifest (v2) image the
// account state is already beside it in the KV store: a paged state
// faults accounts lazily (the bounded-restart win — O(manifest + tail),
// not O(accounts)); a resident state on a KV directory loads them all
// now, so disabling paging never hides spilled accounts.
func (r *Replica) installImage(img replicaImage) error {
	switch {
	case !img.manifest:
		for _, ex := range img.accounts {
			r.state.ImportAccount(ex)
		}
	case r.state.Paged():
		// Accounts stay in the store; stripe fault-in serves them.
	case r.accountStore != nil:
		var exs []AccountExport
		err := r.accountStore.ForEach(func(k, v []byte) error {
			if _, ok := accountKeyClient(k); !ok {
				return nil
			}
			ex, err := decodeAccountExport(v)
			if err != nil {
				return err
			}
			exs = append(exs, ex)
			return nil
		})
		if err != nil {
			return fmt.Errorf("core: loading spilled accounts: %w", err)
		}
		for _, ex := range exs {
			r.state.ImportAccount(ex)
		}
	default:
		return fmt.Errorf("core: manifest snapshot requires a KV-backed WAL")
	}
	r.endorsed = img.endorsed
	r.repDeps = img.repDeps
	r.nextBcastSlot = img.nextSlot
	r.pendingBcast = img.pending
	return nil
}

// replayRecord applies one log record on top of the installed snapshot.
// Records may be over-inclusive — a crash between the snapshot rename and
// the log truncate leaves a tail the snapshot already covers — so every
// replay is duplicate-tolerant.
func (r *Replica) replayRecord(kind byte, payload []byte) error {
	switch kind {
	case recEndorse:
		rd := wire.NewReader(payload)
		n := rd.U32()
		if rd.Err() != nil || !countFits(rd, n, 48) {
			return fmt.Errorf("core: recEndorse record corrupt")
		}
		for i := uint32(0); i < n; i++ {
			id := types.PaymentID{
				Spender: types.ClientID(rd.U64()),
				Seq:     types.Seq(rd.U64()),
			}
			r.endorsed[id] = rd.Bytes32()
		}
		if err := rd.Finish(); err != nil {
			return fmt.Errorf("core: recEndorse record: %w", err)
		}
	case recSettle:
		entries, err := DecodeBatch(payload)
		if err != nil {
			return fmt.Errorf("core: recSettle record: %w", err)
		}
		var wave []types.Payment
		for _, e := range entries {
			wave = append(wave, r.state.ApplyReplay(e)...)
		}
		if len(wave) > 0 {
			r.settledTotal.Add(uint64(len(wave)))
			// Retain per-record waves: CREDIT re-sends must reproduce the
			// exact groups peers accumulated (group identity is the exact
			// payment list of one settlement wave per beneficiary rep).
			r.replayedWaves = append(r.replayedWaves, wave)
		}
	case recDep:
		rd := wire.NewReader(payload)
		d, err := decodeDependency(rd, nil)
		if err != nil {
			return fmt.Errorf("core: recDep record: %w", err)
		}
		if err := rd.Finish(); err != nil {
			return fmt.Errorf("core: recDep record: %w", err)
		}
		r.adoptDependency(d)
	case recBcast:
		slot, pl, err := decodeBcastRecord(payload)
		if err != nil {
			return err
		}
		if slot > r.nextBcastSlot {
			r.nextBcastSlot = slot
		}
		r.pendingBcast[slot] = slices.Clone(pl)
	case recBcastDone:
		if len(payload) != 8 {
			return fmt.Errorf("core: recBcastDone record of %d bytes", len(payload))
		}
		rd := wire.NewReader(payload)
		delete(r.pendingBcast, rd.U64())
	default:
		// Unknown kind: a newer format's record. The CRC proved it intact;
		// skipping is the forward-compatible choice.
	}
	return nil
}

// adoptDependency re-registers a logged (or snapshot-carried) dependency
// certificate for this replica's beneficiary clients, skipping clients
// whose credits already materialized (usedDeps travels with the account
// balance — re-adding a spent certificate would inflate the projected
// balance and let the representative broadcast an underfundable payment)
// and deduplicating by group digest against the attachable set.
func (r *Replica) adoptDependency(d Dependency) {
	dg := CreditGroupDigest(d.Group)
	for _, p := range d.Group {
		b := p.Beneficiary
		if r.cfg.RepOf(b) != r.cfg.Self {
			continue
		}
		used := false
		for _, q := range d.Group {
			if q.Beneficiary == b && r.state.DepUsed(b, q.ID()) {
				used = true
				break
			}
		}
		if used {
			continue
		}
		dup := false
		for _, ex := range r.repDeps[b] {
			if CreditGroupDigest(ex.Group) == dg {
				dup = true
				break
			}
		}
		if !dup {
			r.repDeps[b] = append(r.repDeps[b], d)
		}
	}
}

// restoreProjections rebuilds the representative-side in-flight accounting
// from the recovered reservation set: every slot-reserved batch is charged
// exactly as bufferLocked charged it originally, and dependencies riding
// those batches are stripped from the attachable set (they were removed at
// attach time; recDep replay re-added them).
func (r *Replica) restoreProjections() {
	r.myInflight = len(r.pendingBcast)
	attached := make(map[types.ClientID]map[types.Digest]bool)
	for _, payload := range r.pendingBcast {
		entries, err := DecodeBatch(payload)
		if err != nil {
			continue // cannot happen: the replica encoded these itself
		}
		for _, e := range entries {
			c := e.Payment.Spender
			if r.cfg.RepOf(c) != r.cfg.Self {
				continue
			}
			r.inflightOut[c] += e.Payment.Amount
			depVal := r.dedupedDepValue(c, e.Deps)
			for _, d := range e.Deps {
				set := attached[c]
				if set == nil {
					set = make(map[types.Digest]bool)
					attached[c] = set
				}
				set[CreditGroupDigest(d.Group)] = true
			}
			r.inflightDeps[c] += depVal
			r.attachedVal[e.Payment.ID()] = depVal
			if e.Payment.Seq > r.submittedHi[c] {
				r.submittedHi[c] = e.Payment.Seq
			}
		}
	}
	for c, set := range attached {
		ds := r.repDeps[c]
		kept := ds[:0]
		for _, d := range ds {
			if !set[CreditGroupDigest(d.Group)] {
				kept = append(kept, d)
			}
		}
		if len(kept) == 0 {
			delete(r.repDeps, c)
		} else {
			r.repDeps[c] = kept
		}
	}
}

// finishRecovery runs the post-construction half of the restart: re-enqueue
// CREDIT messages for the replayed settlement tail (peers that crashed
// before sending their share would otherwise starve an f+1 accumulation —
// re-sends are idempotent, receivers deduplicate by signer), and
// rebroadcast every reserved-but-undelivered slot.
func (r *Replica) finishRecovery() {
	if r.cfg.Version == AstroII && r.creditSigner != nil {
		for _, wave := range r.replayedWaves {
			groups := make(map[types.ReplicaID][]types.Payment)
			for _, p := range wave {
				rep := r.cfg.RepOf(p.Beneficiary)
				groups[rep] = append(groups[rep], p)
			}
			reps := make([]types.ReplicaID, 0, len(groups))
			for rep := range groups {
				reps = append(reps, rep)
			}
			slices.Sort(reps)
			for _, rep := range reps {
				r.creditSigner.Enqueue(creditJob{rep: rep, group: groups[rep]})
			}
		}
	}
	r.replayedWaves = nil
	if s, ok := r.bc.(*brb.Signed); ok && len(r.pendingBcast) > 0 {
		slots := make([]uint64, 0, len(r.pendingBcast))
		for slot := range r.pendingBcast {
			slots = append(slots, slot)
		}
		slices.Sort(slots)
		for _, slot := range slots {
			s.Rebroadcast(slot, r.pendingBcast[slot])
		}
	}
}

// MergeFullSnapshot folds a peer's full image into this replica — the
// catch-up step after FetchState. Adoption is per client and only where
// the peer is provably ahead — a strictly longer xlog, or equal xlog with
// more credit materialized (the peer has processed deliveries this
// replica missed while down; Astro II has no retransmission, so state
// transfer is the only way to learn them). The
// peer's endorsement memory, attachable dependency set, and broadcast
// sequence are never adopted: endorsements are promises only the local log
// can prove, and the rest is representative-local.
func (r *Replica) MergeFullSnapshot(snap []byte) error {
	img, err := decodeReplicaImage(snap)
	if err != nil {
		return err
	}
	if img.manifest {
		// A manifest carries no account state to merge; state transfer
		// always ships the full (v1) image.
		return fmt.Errorf("core: cannot merge a manifest snapshot")
	}
	var settled []types.Payment
	for _, ex := range img.accounts {
		// Per-account comparison (ExportAccount reads cold accounts
		// without caching them), not a whole-state local map — a paged
		// replica merging a million-account peer image must not fault its
		// entire state in to decide what to adopt.
		loc, materialized := r.state.ExportAccount(ex.Client)
		locBal := loc.Balance
		if !materialized {
			locBal = r.cfg.Genesis(ex.Client)
		}
		// Adopt where the peer has provably processed more: a strictly
		// longer xlog, or — for pure beneficiaries whose xlog cannot grow
		// — the same xlog with more credit materialized. Debits are fixed
		// by the xlog and credits only accumulate, so a higher balance at
		// equal length means extra credits; requiring the peer's used-dep
		// set to cover ours guarantees none of our own credits are lost
		// by the replacement.
		longer := len(ex.XLog) > len(loc.XLog)
		creditsAhead := len(ex.XLog) == len(loc.XLog) && ex.Balance > locBal &&
			coversUsedDeps(ex.UsedDeps, loc.UsedDeps)
		if !longer && !creditsAhead {
			continue
		}
		r.state.ImportAccount(ex)
		settled = append(settled, r.state.drain(ex.Client)...)
	}
	if len(settled) > 0 {
		r.settledTotal.Add(uint64(len(settled)))
	}
	r.requestCreditRedo()
	return nil
}

// requestCreditRedo closes the one durability gap a WAL cannot: CREDIT
// signatures addressed to this replica while it was down were dropped on
// the wire, and Astro has no retransmission, so the certificates for its
// clients' credits would strand below f+1 forever. After catch-up, scan
// the (now merged) xlogs for settled payments benefiting this replica's
// own clients that are not yet covered — not materialized into the
// beneficiary's used-dependency set, not held as an attachable
// certificate, not riding an in-flight batch — and ask each spender's
// shard to re-sign them as fresh credit groups. The requests flow
// through the ordinary CREDIT accumulation path, so f+1 identical
// re-signatures form a certificate exactly as at settlement time.
// Cross-shard spenders are reached through the Config.ShardMembers
// directory — their credits settled in *their* shard, so only its
// members can vouch; a shard the directory does not know is skipped
// (the pre-directory behavior).
func (r *Replica) requestCreditRedo() {
	if r.cfg.Version != AstroII || r.creditSigner == nil {
		return
	}
	img := r.captureImage()
	covered := make(map[types.PaymentID]struct{})
	for _, ds := range img.repDeps {
		for _, d := range ds {
			for _, p := range d.Group {
				covered[p.ID()] = struct{}{}
			}
		}
	}
	for _, payload := range img.pending {
		entries, err := DecodeBatch(payload)
		if err != nil {
			continue
		}
		for _, e := range entries {
			for _, d := range e.Deps {
				for _, p := range d.Group {
					covered[p.ID()] = struct{}{}
				}
			}
		}
	}
	used := make(map[types.ClientID]map[types.PaymentID]struct{})
	for _, ex := range img.accounts {
		if len(ex.UsedDeps) == 0 {
			continue
		}
		set := make(map[types.PaymentID]struct{}, len(ex.UsedDeps))
		for _, id := range ex.UsedDeps {
			set[id] = struct{}{}
		}
		used[ex.Client] = set
	}
	// Missing credits bucket by spender shard: a group's signers are the
	// spender shard's members, and the vouching check (redoGroupVouchable
	// → creditGroupInShard) requires shard-homogeneous groups.
	missing := make(map[types.ShardID][]types.Payment)
	for _, ex := range img.accounts {
		for _, p := range ex.XLog {
			if r.cfg.RepOf(p.Beneficiary) != r.cfg.Self {
				continue
			}
			if _, ok := used[p.Beneficiary][p.ID()]; ok {
				continue
			}
			if _, ok := covered[p.ID()]; ok {
				continue
			}
			s := r.cfg.ShardOf(p.Spender)
			missing[s] = append(missing[s], p)
		}
	}
	for s, pays := range missing {
		signers := r.cfg.ShardMembers(s)
		if len(signers) == 0 {
			// Unknown shard: no directory entry, no one to ask. The
			// credits strand exactly as before the directory existed.
			continue
		}
		// Deterministic group composition: every signer re-signs the
		// identical bytes, so the k responses accumulate into one
		// certificate.
		slices.SortFunc(pays, func(a, b types.Payment) int {
			if a.Spender != b.Spender {
				return cmp.Compare(a.Spender, b.Spender)
			}
			return cmp.Compare(a.Seq, b.Seq)
		})
		var groups [][]types.Payment
		for len(pays) > 0 {
			n := min(len(pays), maxGroup)
			groups = append(groups, pays[:n])
			pays = pays[n:]
		}
		for len(groups) > 0 {
			n := min(len(groups), maxRedoGroups)
			msg := encodeCreditRedo(groups[:n])
			groups = groups[n:]
			for _, peer := range signers {
				_ = r.cfg.Mux.Send(transport.ReplicaNode(peer), transport.ChanCredit, msg)
			}
		}
	}
	// Foreign shards hold the xlogs of cross-shard spenders, so credits
	// lost from there cannot even be enumerated locally: ask each
	// directory-known foreign shard to rescan its settled state for this
	// representative's clients and re-sign whatever it finds
	// (CREDITRESCAN). Over-answering is safe — certificates this replica
	// still holds are dropped by attach-time dedup.
	own := r.cfg.ReplicaShard(r.cfg.Self)
	rescan := encodeCreditRescan()
	for _, s := range r.cfg.Shards {
		if s == own {
			continue
		}
		for _, peer := range r.cfg.ShardMembers(s) {
			_ = r.cfg.Mux.Send(transport.ReplicaNode(peer), transport.ChanCredit, rescan)
		}
	}
}

// serveCreditRescan re-signs, for a restarted foreign representative,
// every settled payment in this shard's xlogs whose beneficiary the
// requester represents. The requester cannot name these payments itself —
// it holds no copy of this shard's xlogs — so the scan runs signer-side.
// Group composition is deterministic (sorted by spender then seq,
// chunked at maxGroup): the shard's replicas, whose settled states
// agree, produce identical groups, so their re-signatures accumulate
// into f+1 certificates at the requester exactly like CREDITREDO
// responses. Work per request is bounded by the CREDITREDO caps; the
// scan streams the account state (paging-friendly) and signing rides
// the ordinary credit signer, off this dispatch goroutine.
func (r *Replica) serveCreditRescan(requester types.ReplicaID) {
	if requester == r.cfg.Self || r.creditSigner == nil {
		return
	}
	own := r.cfg.ReplicaShard(r.cfg.Self)
	if r.cfg.ReplicaShard(requester) == own {
		// A same-shard requester enumerates its missing credits itself
		// (precise CREDITREDO); rescan is the cross-shard fallback only.
		return
	}
	var missing []types.Payment
	r.state.ForEachAccount(func(ex AccountExport) error {
		for _, p := range ex.XLog {
			if r.cfg.ShardOf(p.Spender) != own {
				continue // merged foreign history: not ours to vouch for
			}
			if r.cfg.RepOf(p.Beneficiary) != requester {
				continue
			}
			missing = append(missing, p)
		}
		return nil
	})
	if len(missing) == 0 {
		return
	}
	slices.SortFunc(missing, func(a, b types.Payment) int {
		if a.Spender != b.Spender {
			return cmp.Compare(a.Spender, b.Spender)
		}
		return cmp.Compare(a.Seq, b.Seq)
	})
	if len(missing) > maxRedoGroups*maxGroup {
		missing = missing[:maxRedoGroups*maxGroup]
	}
	for len(missing) > 0 {
		n := min(len(missing), maxGroup)
		r.creditSigner.Enqueue(creditJob{rep: requester, group: missing[:n]})
		missing = missing[n:]
	}
}

// coversUsedDeps reports whether super contains every id in sub.
func coversUsedDeps(super, sub []types.PaymentID) bool {
	if len(sub) == 0 {
		return true
	}
	if len(sub) > len(super) {
		return false
	}
	set := make(map[types.PaymentID]struct{}, len(super))
	for _, id := range super {
		set[id] = struct{}{}
	}
	for _, id := range sub {
		if _, ok := set[id]; !ok {
			return false
		}
	}
	return true
}

// reserveSlot predicts and records the slot the next Broadcast call will
// assign. Correct because the replica is the single serialized broadcaster
// (the sending discipline) and the BRB layer was seeded with the same
// FirstSlot.
func (r *Replica) reserveSlot(payload []byte) uint64 {
	r.bcastMu.Lock()
	r.nextBcastSlot++
	slot := r.nextBcastSlot
	r.pendingBcast[slot] = payload
	r.bcastMu.Unlock()
	return slot
}

// releaseSlot drops a reservation (on self-delivery, or when a Broadcast
// attempt failed and the retry path still owns the batch).
func (r *Replica) releaseSlot(slot uint64) {
	r.bcastMu.Lock()
	delete(r.pendingBcast, slot)
	r.bcastMu.Unlock()
}

// walSnapshotBuild builds the compaction payload on the WAL writer's
// flow (FIFO with appends, so the cut includes every record already
// logged): paged states flush their dirty accounts into the store and
// return the small manifest — snapshot cost tracks the write set, not
// the account population — while resident states return the full image.
// A pager error skips compaction entirely (the log keeps growing and the
// sticky error surfaces): neither a manifest over unflushed accounts nor
// a full export through a failing store is a safe cut.
func (r *Replica) walSnapshotBuild() []byte {
	if r.state.Paged() {
		if err := r.state.FlushDirty(); err != nil {
			return nil
		}
		img := r.captureMeta()
		img.manifest = true
		return encodeReplicaImage(img)
	}
	return r.FullSnapshot()
}

// walMaybeSnapshot triggers a compaction every WALSnapshotEvery settled
// batches.
func (r *Replica) walMaybeSnapshot() {
	every := r.cfg.WALSnapshotEvery
	if every <= 0 {
		return
	}
	if r.walBatches.Add(1)%uint64(every) == 0 {
		r.wal.Snapshot(r.walSnapshotBuild)
	}
}

// WALStats reports the number of records appended and fsync batches issued
// by the durability layer (zeros when disabled).
func (r *Replica) WALStats() (records, syncs uint64) {
	if r.wal == nil {
		return 0, 0
	}
	return r.wal.Stats()
}

// WALErr surfaces the first backend I/O error, if any.
func (r *Replica) WALErr() error {
	if r.wal == nil {
		return nil
	}
	return r.wal.Err()
}

// PagerErr surfaces the first account-paging I/O error, if any — the
// paging analogue of WALErr. A non-nil result means cold-account reads
// may degrade to genesis values; operators should treat it as fail-stop.
func (r *Replica) PagerErr() error { return r.state.PagerErr() }

// PagingStats reports the account pager's counters (faults, evictions,
// writebacks, dirty flushes, resident count); all zero when the state is
// fully resident.
func (r *Replica) PagingStats() PagingStats { return r.state.PagingStats() }

// Recovered reports whether this replica replayed any durable state at
// construction — the signal that a peer catch-up (reconfig.FetchState +
// MergeFullSnapshot) is worth attempting before serving.
func (r *Replica) Recovered() bool { return r.recovered }
