package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"astro/internal/types"
	"astro/internal/wire"
)

func pay(s types.ClientID, n types.Seq, b types.ClientID, x types.Amount) types.Payment {
	return types.Payment{Spender: s, Seq: n, Beneficiary: b, Amount: x}
}

func genesis100(types.ClientID) types.Amount { return 100 }

func TestXLogInvariants(t *testing.T) {
	x := NewXLog(7)
	if x.Owner() != 7 || x.Len() != 0 {
		t.Fatal("fresh xlog wrong")
	}
	x.Append(pay(7, 1, 8, 5))
	x.Append(pay(7, 2, 9, 3))
	if !x.Verify() {
		t.Error("valid xlog fails Verify")
	}
	if x.At(1).Seq != 2 {
		t.Error("At(1)")
	}
	snap := x.Snapshot()
	snap[0].Amount = 999
	if x.At(0).Amount == 999 {
		t.Error("Snapshot aliases internal storage")
	}

	bad := NewXLog(7)
	bad.Append(pay(8, 1, 9, 1)) // wrong spender
	if bad.Verify() {
		t.Error("wrong-spender xlog passes Verify")
	}
	gap := NewXLog(7)
	gap.Append(pay(7, 2, 9, 1)) // gap at seq 1
	if gap.Verify() {
		t.Error("gapped xlog passes Verify")
	}
}

func TestAstroISettleBasic(t *testing.T) {
	s := NewState(AstroI, genesis100, nil)
	settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 30)})
	if len(settled) != 1 {
		t.Fatalf("settled %d payments", len(settled))
	}
	if s.Balance(1) != 70 || s.Balance(2) != 130 {
		t.Errorf("balances: %d, %d", s.Balance(1), s.Balance(2))
	}
	if s.NextSeq(1) != 2 {
		t.Errorf("NextSeq = %d", s.NextSeq(1))
	}
	if s.XLog(1).Len() != 1 {
		t.Error("xlog not appended")
	}
}

func TestAstroISequenceGap(t *testing.T) {
	s := NewState(AstroI, genesis100, nil)
	// Seq 2 arrives first: approval criterion (1) holds it.
	if settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 2, 2, 10)}); len(settled) != 0 {
		t.Fatal("seq 2 settled before seq 1")
	}
	if s.PendingCount(1) != 1 {
		t.Error("payment not queued")
	}
	// Seq 1 arrives: both settle, in order.
	settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 3, 5)})
	if len(settled) != 2 {
		t.Fatalf("settled %d, want 2", len(settled))
	}
	if settled[0].Seq != 1 || settled[1].Seq != 2 {
		t.Error("settled out of order")
	}
	if s.Balance(1) != 85 {
		t.Errorf("balance = %d", s.Balance(1))
	}
}

func TestAstroIInsufficientFundsQueues(t *testing.T) {
	s := NewState(AstroI, func(c types.ClientID) types.Amount {
		if c == 1 {
			return 0
		}
		return 100
	}, nil)
	// Client 1 has nothing: payment waits (approval criterion 2).
	if settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 3, 10)}); len(settled) != 0 {
		t.Fatal("unfunded payment settled")
	}
	if s.PendingCount(1) != 1 {
		t.Error("unfunded payment not queued")
	}
	// Client 2 credits client 1; the queued payment settles transitively.
	settled := s.ApplyEntry(BatchEntry{Payment: pay(2, 1, 1, 50)})
	if len(settled) != 2 {
		t.Fatalf("settled %d, want 2 (credit + unblocked)", len(settled))
	}
	if s.Balance(1) != 40 || s.Balance(3) != 110 {
		t.Errorf("balances: 1=%d 3=%d", s.Balance(1), s.Balance(3))
	}
}

func TestAstroITransitiveChain(t *testing.T) {
	// 1 pays 2, 2 pays 3, 3 pays 4 — each funded only by the previous
	// credit. Deliver in reverse order; everything settles when the head
	// credit lands.
	zero := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 10
		}
		return 0
	}
	s := NewState(AstroI, zero, nil)
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(3, 1, 4, 10)})); n != 0 {
		t.Fatal("3->4 settled early")
	}
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(2, 1, 3, 10)})); n != 0 {
		t.Fatal("2->3 settled early")
	}
	settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 10)})
	if len(settled) != 3 {
		t.Fatalf("settled %d, want 3", len(settled))
	}
	if s.Balance(4) != 10 || s.Balance(1) != 0 || s.Balance(2) != 0 || s.Balance(3) != 0 {
		t.Error("chain balances wrong")
	}
}

func TestDuplicateAndConflictDropped(t *testing.T) {
	s := NewState(AstroI, genesis100, nil)
	s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 10)})
	// Replay of a settled identifier.
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 10)})); n != 0 {
		t.Error("replay settled")
	}
	// Conflicting payment queued for same identifier.
	s2 := NewState(AstroI, func(types.ClientID) types.Amount { return 0 }, nil)
	s2.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 10)}) // queues (unfunded)
	s2.ApplyEntry(BatchEntry{Payment: pay(1, 1, 3, 99)}) // conflict
	c := s2.Counters()
	if c.Conflicts != 1 {
		t.Errorf("conflicts = %d", c.Conflicts)
	}
}

func TestAstroIISettleNoDirectCredit(t *testing.T) {
	s := NewState(AstroII, genesis100, nil)
	settled := s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 30)})
	if len(settled) != 1 {
		t.Fatalf("settled %d", len(settled))
	}
	if s.Balance(1) != 70 {
		t.Errorf("spender balance = %d", s.Balance(1))
	}
	// Astro II: the beneficiary is NOT credited directly — funds flow
	// through the dependency mechanism (paper Listing 9).
	if s.Balance(2) != 100 {
		t.Errorf("beneficiary balance = %d, want 100 (unchanged)", s.Balance(2))
	}
}

func TestAstroIIDependencyCredit(t *testing.T) {
	s := NewState(AstroII, func(c types.ClientID) types.Amount { return 0 }, nil)
	// Client 2 spends 20 it only has via a dependency from client 1.
	dep := Dependency{Group: []types.Payment{pay(1, 1, 2, 25)}}
	settled := s.ApplyEntry(BatchEntry{Payment: pay(2, 1, 3, 20), Deps: []Dependency{dep}})
	if len(settled) != 1 {
		t.Fatalf("settled %d", len(settled))
	}
	if s.Balance(2) != 5 {
		t.Errorf("balance = %d, want 5 (25 credited - 20 spent)", s.Balance(2))
	}
}

func TestAstroIIDependencyReplayRejected(t *testing.T) {
	s := NewState(AstroII, func(c types.ClientID) types.Amount { return 0 }, nil)
	dep := Dependency{Group: []types.Payment{pay(1, 1, 2, 25)}}
	s.ApplyEntry(BatchEntry{Payment: pay(2, 1, 3, 20), Deps: []Dependency{dep}})
	// Replaying the same dependency on the next payment must not credit
	// again: only 5 remain, so a 20 payment wedges the xlog (Byzantine
	// representative behaviour).
	settled := s.ApplyEntry(BatchEntry{Payment: pay(2, 2, 3, 20), Deps: []Dependency{dep}})
	if len(settled) != 0 {
		t.Fatal("double-deposit: replayed dependency credited twice")
	}
	if s.Balance(2) != 5 {
		t.Errorf("balance = %d, want 5", s.Balance(2))
	}
	c := s.Counters()
	if c.Dropped != 1 {
		t.Errorf("dropped = %d", c.Dropped)
	}
}

func TestAstroIIUnfundedWedgesXlog(t *testing.T) {
	s := NewState(AstroII, func(types.ClientID) types.Amount { return 0 }, nil)
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(1, 1, 2, 10)})); n != 0 {
		t.Fatal("unfunded settled")
	}
	// Listing 9 semantics: seq never advances; later payments dropped.
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(1, 2, 2, 1)})); n != 0 {
		t.Fatal("payment settled on wedged xlog")
	}
	if s.NextSeq(1) != 1 {
		t.Errorf("NextSeq = %d, want 1", s.NextSeq(1))
	}
}

func TestAstroIIDependencyVerificationHook(t *testing.T) {
	rejectAll := func(Dependency) error { return ErrDepEmpty }
	s := NewState(AstroII, func(types.ClientID) types.Amount { return 0 }, rejectAll)
	dep := Dependency{Group: []types.Payment{pay(1, 1, 2, 25)}}
	if n := len(s.ApplyEntry(BatchEntry{Payment: pay(2, 1, 3, 20), Deps: []Dependency{dep}})); n != 0 {
		t.Fatal("payment settled with unverifiable dependency")
	}
	if s.Balance(2) != 0 {
		t.Error("unverifiable dependency credited")
	}
}

func TestConservationAstroIProperty(t *testing.T) {
	// Under Astro I, total balance is conserved across any sequence of
	// settles (money only moves).
	f := func(ops []struct {
		S, B uint8
		X    uint16
	}) bool {
		s := NewState(AstroI, genesis100, nil)
		seqs := make(map[types.ClientID]types.Seq)
		for _, op := range ops {
			sp := types.ClientID(op.S%8) + 1
			bn := types.ClientID(op.B%8) + 1
			seqs[sp]++
			s.ApplyEntry(BatchEntry{Payment: pay(sp, seqs[sp], bn, types.Amount(op.X%50))})
		}
		// Queued (unsettled) payments have not moved money yet; the total
		// settled balance must equal the genesis total of materialized
		// accounts (money only moves, never appears or vanishes).
		want := types.Amount(100 * len(s.Clients()))
		return s.TotalSettledBalance() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqMonotonicityProperty(t *testing.T) {
	// Whatever order entries arrive in, the xlog's sequence numbers are
	// exactly 1..Len.
	f := func(perm []uint8) bool {
		s := NewState(AstroI, genesis100, nil)
		n := len(perm)%10 + 1
		// Deliver seqs n..1 in reverse: worst-case reordering.
		for i := n; i >= 1; i-- {
			s.ApplyEntry(BatchEntry{Payment: pay(1, types.Seq(i), 2, 1)})
		}
		return s.XLog(1).Verify() && s.XLog(1).Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	entries := []BatchEntry{
		{Payment: pay(1, 1, 2, 10)},
		{Payment: pay(3, 7, 4, 20), Deps: []Dependency{
			{Group: []types.Payment{pay(9, 1, 3, 5), pay(9, 2, 3, 6)}},
		}},
	}
	data := EncodeBatch(entries)
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].Payment != entries[0].Payment || len(got[0].Deps) != 0 {
		t.Error("entry 0 mismatch")
	}
	if got[1].Payment != entries[1].Payment || len(got[1].Deps) != 1 {
		t.Fatal("entry 1 mismatch")
	}
	if len(got[1].Deps[0].Group) != 2 || got[1].Deps[0].Group[1] != pay(9, 2, 3, 6) {
		t.Error("dependency group mismatch")
	}
}

func TestBatchV2ChainInterning(t *testing.T) {
	// Two payments whose certificates cite the same two-signer chain: the
	// PR 9 batch form hoists it into a batch-wide table, so it is encoded
	// once per batch instead of once per certificate.
	chain := []types.Digest{types.HashBytes([]byte("g1")), types.HashBytes([]byte("g2"))}
	dep := func() Dependency {
		return Dependency{
			Group: []types.Payment{pay(9, 1, 3, 5)},
			Cert: DepCert{Sigs: []DepSig{
				{Replica: 0, Sig: []byte("sig-0")},
				{Replica: 2, Sig: []byte("sig-2"), Chain: chain},
				{Replica: 3, Sig: []byte("sig-3"), Chain: chain},
			}},
		}
	}
	entries := []BatchEntry{
		{Payment: pay(1, 1, 2, 10), Deps: []Dependency{dep()}},
		{Payment: pay(4, 2, 5, 20), Deps: []Dependency{dep()}},
	}

	v2 := EncodeBatch(entries)
	v1 := EncodeBatchV1(entries)
	if wire.NewReader(v2).U32() != batchV2Marker {
		t.Fatal("shared chains did not select the v2 form")
	}
	if len(v2) >= len(v1) {
		t.Errorf("v2 form (%d bytes) not smaller than v1 (%d bytes)", len(v2), len(v1))
	}

	for name, data := range map[string][]byte{"v2": v2, "v1": v1} {
		got, err := DecodeBatch(data)
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		if !reflect.DeepEqual(got, entries) {
			t.Fatalf("%s round trip mismatch", name)
		}
	}

	// The decoder hands every certificate citing table entry i the same
	// backing slice — the interning the table exists to transport.
	got, _ := DecodeBatch(v2)
	a := got[0].Deps[0].Cert.Sigs[1].Chain
	b := got[1].Deps[0].Cert.Sigs[2].Chain
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("decoded certificates do not share the table's chain backing")
	}

	// Chain-free batches must stay on the v1 wire: nothing to intern.
	plain := EncodeBatch([]BatchEntry{{Payment: pay(1, 1, 2, 3)}})
	if wire.NewReader(plain).U32() == batchV2Marker {
		t.Error("chain-free batch took the v2 form")
	}
}

func TestBatchV2RejectsMalformed(t *testing.T) {
	w := wire.NewWriter(16)
	w.U32(batchV2Marker)
	w.U32(0) // entries
	w.U32(0) // empty chain table: v2 with nothing interned is malformed
	if _, err := DecodeBatch(w.Bytes()); err == nil {
		t.Error("empty chain table accepted")
	}

	// A certificate citing a table index past the end must be rejected.
	chain := []types.Digest{types.HashBytes([]byte("g"))}
	entries := []BatchEntry{{Payment: pay(1, 1, 2, 10), Deps: []Dependency{{
		Group: []types.Payment{pay(9, 1, 3, 5)},
		Cert:  DepCert{Sigs: []DepSig{{Replica: 2, Sig: []byte("s"), Chain: chain}}},
	}}}}
	data := EncodeBatch(entries)
	// The sole chain index is the last u32 before the trailing sig bytes;
	// corrupt it by scanning for its encoding and bumping it out of range.
	idx := []byte{0, 0, 0, 0}
	for i := len(data) - 4; i >= 0; i-- {
		if string(data[i:i+4]) == string(idx) {
			bad := append([]byte(nil), data...)
			bad[i+3] = 7 // index 7 into a 1-entry table
			if _, err := DecodeBatch(bad); err == nil {
				t.Error("out-of-range chain index accepted")
			}
			return
		}
	}
	t.Fatal("chain index not found in encoding")
}

func TestBatchCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("absurd count accepted")
	}
	if _, err := DecodeBatch([]byte{0, 0, 0, 1, 1, 2}); err == nil {
		t.Error("truncated entry accepted")
	}
	// Trailing bytes rejected.
	data := append(EncodeBatch([]BatchEntry{{Payment: pay(1, 1, 2, 3)}}), 0xEE)
	if _, err := DecodeBatch(data); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBatchCodecProperty(t *testing.T) {
	f := func(s, b uint64, n, x uint64, count uint8) bool {
		entries := make([]BatchEntry, int(count)%20)
		for i := range entries {
			entries[i] = BatchEntry{Payment: types.Payment{
				Spender: types.ClientID(s + uint64(i)), Seq: types.Seq(n),
				Beneficiary: types.ClientID(b), Amount: types.Amount(x),
			}}
		}
		got, err := DecodeBatch(EncodeBatch(entries))
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i].Payment != entries[i].Payment {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionString(t *testing.T) {
	if AstroI.String() != "Astro I" || AstroII.String() != "Astro II" || Version(9).String() != "Astro?" {
		t.Error("Version.String")
	}
}
