package core

// Tests for settlement-wave CREDIT signing: the CREDITBATCH wire kind, the
// chain-capable dependency certificates it accumulates into, and the
// rejection of forged chains.

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// chainFor signs a chain of group digests with the given replicas' harness
// keys and returns per-signer CREDITBATCH payloads carrying the groups.
func (c *cluster) creditBatchFrom(t *testing.T, signer int, chain []types.Digest, groups []creditBatchGroup) []byte {
	t.Helper()
	sig, err := c.keys[signer].Sign(CreditChainDigest(chain))
	if err != nil {
		t.Fatal(err)
	}
	return encodeCreditBatch(creditBatchMsg{
		Signer: types.ReplicaID(signer),
		Chain:  chain,
		Sig:    sig,
		Groups: groups,
	})
}

// TestCreditBatchFormsDependency: two signers (f+1 for n=4) deliver the
// same credit group inside chain-signed CREDITBATCHes; the beneficiary's
// representative must assemble a dependency certificate from the chain
// signatures, and the beneficiary must be able to spend the funds — which
// exercises VerifyDependency's chain path end to end (attachment,
// screening at every replica, settlement).
func TestCreditBatchFormsDependency(t *testing.T) {
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	repBob := c.replicas[int(c.repOf(2))] // client 2 -> replica 2

	// A settlement wave of two groups; Bob's group sits at chain index 1.
	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	otherGroup := []types.Payment{pay(5, 1, 6, 7)}
	chain := []types.Digest{CreditGroupDigest(otherGroup), CreditGroupDigest(bobGroup)}
	groups := []creditBatchGroup{{ChainIdx: 1, Group: bobGroup}}

	for _, signer := range []int{0, 1} {
		msg := c.creditBatchFrom(t, signer, chain, groups)
		if err := c.replicas[signer].cfg.Mux.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanCredit, msg); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for repBob.Balance(2) != 40 {
		if time.Now().After(deadline) {
			t.Fatalf("dependency never formed from CREDITBATCH; balance = %d", repBob.Balance(2))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bob spends through the chain-signed dependency: the attached
	// certificate carries DepSig.Chain entries and must verify at every
	// replica's screen.
	bob := c.client(2)
	c.payAndWait(bob, 3, 25)
	c.waitSettledEverywhere(1, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(2); bal != 15 {
			t.Errorf("replica %d: settled balance(2) = %d, want 15", i, bal)
		}
	}
}

// TestCreditBatchRejectsForgeries: a CREDITBATCH whose group does not
// match the digest at its claimed chain index — or whose signature does
// not cover the chain — must not contribute to a dependency certificate.
func TestCreditBatchRejectsForgeries(t *testing.T) {
	gen := func(c types.ClientID) types.Amount { return 0 }
	c := newCluster(t, AstroII, 4, gen)
	repBob := c.replicas[int(c.repOf(2))]

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	good := CreditGroupDigest(bobGroup)
	wrong := CreditGroupDigest([]types.Payment{pay(1, 1, 2, 9999)})

	// Forgery 1: chain signed correctly, but the claimed index holds a
	// different group's digest.
	chain1 := []types.Digest{wrong, good}
	msg1 := c.creditBatchFrom(t, 0, chain1, []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}})
	// Forgery 2: index and digest match, but the signature covers some
	// other chain.
	chain2 := []types.Digest{good}
	sig, err := c.keys[1].Sign(CreditChainDigest([]types.Digest{wrong}))
	if err != nil {
		t.Fatal(err)
	}
	msg2 := encodeCreditBatch(creditBatchMsg{Signer: 1, Chain: chain2, Sig: sig, Groups: []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}}})

	for signer, msg := range map[int][]byte{0: msg1, 1: msg2} {
		if err := c.replicas[signer].cfg.Mux.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanCredit, msg); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if bal := repBob.Balance(2); bal != 0 {
		t.Fatalf("forged CREDITBATCH credited %d", bal)
	}
}

// TestVerifyDependencyChainSigs checks the certificate verifier directly:
// chain signatures endorse a group only when its digest appears in the
// chain, and mixed plain/chain certificates count distinct signers.
func TestVerifyDependencyChainSigs(t *testing.T) {
	reg := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, 3)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		reg.Add(types.ReplicaID(i), keys[i].Public())
	}
	oneShard := func(types.ClientID) types.ShardID { return 0 }
	repShard := func(types.ReplicaID) types.ShardID { return 0 }

	group := []types.Payment{pay(1, 1, 2, 10)}
	digest := CreditGroupDigest(group)
	other := CreditGroupDigest([]types.Payment{pay(3, 1, 4, 5)})
	chain := []types.Digest{other, digest}

	chainSig := func(i int, ch []types.Digest) DepSig {
		sig, err := keys[i].Sign(CreditChainDigest(ch))
		if err != nil {
			t.Fatal(err)
		}
		return DepSig{Replica: types.ReplicaID(i), Sig: sig, Chain: ch}
	}
	plainSig := func(i int) DepSig {
		sig, err := keys[i].Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		return DepSig{Replica: types.ReplicaID(i), Sig: sig}
	}

	// Mixed certificate: one plain, one chain signature — both endorse.
	d := Dependency{Group: group, Cert: DepCert{Sigs: []DepSig{plainSig(0), chainSig(1, chain)}}}
	if err := VerifyDependency(d, nil, reg, 1, oneShard, repShard); err != nil {
		t.Fatalf("mixed plain/chain certificate rejected: %v", err)
	}

	// A chain that does not contain the group's digest endorses nothing.
	bad := Dependency{Group: group, Cert: DepCert{Sigs: []DepSig{plainSig(0), chainSig(1, []types.Digest{other})}}}
	if err := VerifyDependency(bad, nil, reg, 1, oneShard, repShard); err == nil {
		t.Fatal("chain not containing the group digest accepted as endorsement")
	}

	// A chain signature replayed as a plain signature must fail (domain
	// separation).
	replay := chainSig(1, chain)
	replay.Chain = nil
	rd := Dependency{Group: group, Cert: DepCert{Sigs: []DepSig{plainSig(0), replay}}}
	if err := VerifyDependency(rd, nil, reg, 1, oneShard, repShard); err == nil {
		t.Fatal("chain signature replayed as single-group signature accepted")
	}
}

// TestBatchCodecChainCertRoundTrip: batch entries carrying dependencies
// with chain signatures survive the wire (extended certificate form), and
// plain certificates keep the legacy form.
func TestBatchCodecChainCertRoundTrip(t *testing.T) {
	chain := []types.Digest{types.HashBytes([]byte("g1")), types.HashBytes([]byte("g2"))}
	entries := []BatchEntry{
		{Payment: pay(3, 7, 4, 20), Deps: []Dependency{
			{
				Group: []types.Payment{pay(9, 1, 3, 5)},
				Cert: DepCert{Sigs: []DepSig{
					{Replica: 0, Sig: []byte("s0")},
					{Replica: 2, Sig: []byte("s2"), Chain: chain},
				}},
			},
		}},
	}
	got, err := DecodeBatch(EncodeBatch(entries))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	dep := got[0].Deps[0]
	if len(dep.Cert.Sigs) != 2 {
		t.Fatalf("cert has %d sigs", len(dep.Cert.Sigs))
	}
	if dep.Cert.Sigs[0].Chain != nil || string(dep.Cert.Sigs[0].Sig) != "s0" {
		t.Fatal("plain signature mangled")
	}
	cs := dep.Cert.Sigs[1]
	if cs.Replica != 2 || len(cs.Chain) != 2 || cs.Chain[0] != chain[0] || cs.Chain[1] != chain[1] {
		t.Fatal("chain signature mangled")
	}
}

// TestCreditCodecRoundTrip covers both credit wire kinds.
func TestCreditCodecRoundTrip(t *testing.T) {
	single := creditMsg{Signer: 3, Group: []types.Payment{pay(1, 1, 2, 10), pay(4, 2, 2, 5)}, Sig: []byte("sig")}
	enc := encodeCredit(single)
	if enc[0] != msgCreditSingle {
		t.Fatal("single kind byte wrong")
	}
	gotS, err := decodeCredit(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gotS.Signer != 3 || len(gotS.Group) != 2 || gotS.Group[1] != single.Group[1] || string(gotS.Sig) != "sig" {
		t.Fatalf("single round trip mangled: %+v", gotS)
	}

	batch := creditBatchMsg{
		Signer: 2,
		Chain:  []types.Digest{types.HashBytes([]byte("a")), types.HashBytes([]byte("b"))},
		Sig:    []byte("chain-sig"),
		Groups: []creditBatchGroup{
			{ChainIdx: 1, Group: []types.Payment{pay(7, 3, 8, 2)}},
		},
	}
	encB := encodeCreditBatch(batch)
	if encB[0] != msgCreditBatch {
		t.Fatal("batch kind byte wrong")
	}
	gotB, err := decodeCreditBatch(encB[1:])
	if err != nil {
		t.Fatal(err)
	}
	if gotB.Signer != 2 || len(gotB.Chain) != 2 || gotB.Chain[1] != batch.Chain[1] {
		t.Fatalf("batch header mangled: %+v", gotB)
	}
	if len(gotB.Groups) != 1 || gotB.Groups[0].ChainIdx != 1 || gotB.Groups[0].Group[0] != batch.Groups[0].Group[0] {
		t.Fatalf("batch groups mangled: %+v", gotB.Groups)
	}

	// Garbage and out-of-range indices are rejected.
	if _, err := decodeCreditBatch([]byte{0xFF, 0xFF}); err == nil {
		t.Fatal("garbage batch accepted")
	}
	oob := creditBatchMsg{Signer: 2, Chain: batch.Chain, Sig: batch.Sig, Groups: []creditBatchGroup{{ChainIdx: 7, Group: batch.Groups[0].Group}}}
	if _, err := decodeCreditBatch(encodeCreditBatch(oob)[1:]); err == nil {
		t.Fatal("out-of-range chain index accepted")
	}
}
