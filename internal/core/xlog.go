package core

import (
	"astro/internal/types"
)

// XLog is an exclusive log: the append-only record of all outgoing
// payments initiated by one client, ordered by the client-assigned
// sequence numbers (paper §II). Only the owner client's representative may
// cause appends, and the replication layer guarantees all correct replicas
// hold identical prefixes.
//
// Storing the full log (rather than just a balance and sequence number) is
// what enables auditability and reconfiguration state transfer.
type XLog struct {
	owner    types.ClientID
	payments []types.Payment
}

// NewXLog creates an empty exclusive log for a client.
func NewXLog(owner types.ClientID) *XLog {
	return &XLog{owner: owner}
}

// Owner returns the client exclusively allowed to append.
func (x *XLog) Owner() types.ClientID { return x.owner }

// Len returns the number of settled payments.
func (x *XLog) Len() int { return len(x.payments) }

// At returns the i-th settled payment (0-based; its Seq is i+1).
func (x *XLog) At(i int) types.Payment { return x.payments[i] }

// Append records a settled payment. The caller (the settle procedure)
// guarantees payments arrive in sequence order with the owner as spender.
func (x *XLog) Append(p types.Payment) {
	x.payments = append(x.payments, p)
}

// Snapshot returns a copy of the log contents, for audit and state
// transfer.
func (x *XLog) Snapshot() []types.Payment {
	out := make([]types.Payment, len(x.payments))
	copy(out, x.payments)
	return out
}

// Verify audits the log's internal consistency: the spender is always the
// owner and sequence numbers are exactly 1..Len with no gaps — the
// invariant the replication layer maintains.
func (x *XLog) Verify() bool {
	for i, p := range x.payments {
		if p.Spender != x.owner || p.Seq != types.Seq(i+1) {
			return false
		}
	}
	return true
}
