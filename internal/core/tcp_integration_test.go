package core

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/tcpnet"
	"astro/internal/types"
)

// TestEndToEndOverTCP runs a full 4-replica Astro II deployment over real
// loopback TCP — the path cmd/astro-node and cmd/astro-client exercise.
func TestEndToEndOverTCP(t *testing.T) {
	const n = 4
	ids := make([]types.ReplicaID, n)
	for i := range ids {
		ids[i] = types.ReplicaID(i)
	}

	// Start listeners on ephemeral ports first, then share the peer map.
	eps := make([]*tcpnet.Endpoint, n)
	peerMap := make(map[transport.NodeID]string)
	for i := 0; i < n; i++ {
		ep, err := tcpnet.New(tcpnet.Config{
			Self:   transport.ReplicaNode(ids[i]),
			Listen: "127.0.0.1:0",
			Peers:  peerMap, // shared map, filled below before any Send
		})
		if err != nil {
			t.Fatalf("endpoint %d: %v", i, err)
		}
		t.Cleanup(func() { _ = ep.Close() })
		eps[i] = ep
	}
	for i := 0; i < n; i++ {
		peerMap[transport.ReplicaNode(ids[i])] = eps[i].Addr().String()
	}

	registry := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, n)
	for i := 0; i < n; i++ {
		kp, err := crypto.DeriveKeyPair([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = kp
		registry.Add(ids[i], kp.Public())
	}

	replicas := make([]*Replica, n)
	for i := 0; i < n; i++ {
		mux := transport.NewMux(eps[i])
		r, err := NewReplica(Config{
			Version:    AstroII,
			Self:       ids[i],
			Replicas:   ids,
			F:          1,
			Mux:        mux,
			Genesis:    func(types.ClientID) types.Amount { return 1000 },
			BatchSize:  8,
			BatchDelay: 2 * time.Millisecond,
			Keys:       keys[i],
			Registry:   registry,
		})
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		replicas[i] = r
	}

	clientEp, err := tcpnet.New(tcpnet.Config{
		Self:  transport.ClientNode(1),
		Peers: peerMap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = clientEp.Close() })
	repOf := func(c types.ClientID) types.ReplicaID { return ids[uint64(c)%uint64(n)] }
	client := NewClient(1, repOf, transport.NewMux(clientEp))

	bal, err := client.QueryBalance(5 * time.Second)
	if err != nil {
		t.Fatalf("balance: %v", err)
	}
	if bal != 1000 {
		t.Fatalf("balance = %d", bal)
	}

	for i := 0; i < 3; i++ {
		id, err := client.Pay(2, 100)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatalf("payment %d over TCP: %v", i, err)
		}
	}

	bal, err = client.QueryBalance(5 * time.Second)
	if err != nil {
		t.Fatalf("balance after payments: %v", err)
	}
	if bal != 700 {
		t.Errorf("balance = %d, want 700", bal)
	}
}
