package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// Client is a lightweight Astro participant (paper §III, Listing 1). It
// orders its own payments by assigning sequence numbers and submits them to
// its representative replica, which brokers them into the replication
// layer. The client receives settlement confirmations and can query its
// balance.
type Client struct {
	id   types.ClientID
	rep  types.ReplicaID
	mux  *transport.Mux
	keys *crypto.KeyPair // nil unless end-to-end signatures are enabled

	mu      sync.Mutex
	nextSeq types.Seq

	confirms chan types.PaymentID
	balances chan types.Amount
	seqs     chan types.Seq
	stats    chan EdgeStats

	// retrySeed drives PayReliable's backoff jitter (reliable.go).
	retrySeed atomic.Uint64
}

// ErrTimeout is returned when a client-side wait expires.
var ErrTimeout = errors.New("core: client timed out")

// NewClient creates a client bound to its representative. The mux must be
// an endpoint on the client's own node (transport.ClientNode(id)).
func NewClient(id types.ClientID, repOf func(types.ClientID) types.ReplicaID, mux *transport.Mux) *Client {
	c := &Client{
		id:       id,
		rep:      repOf(id),
		mux:      mux,
		nextSeq:  1,
		confirms: make(chan types.PaymentID, 1<<12),
		balances: make(chan types.Amount, 8),
		seqs:     make(chan types.Seq, 8),
		stats:    make(chan EdgeStats, 8),
	}
	c.retrySeed.Store(uint64(time.Now().UnixNano()) ^ uint64(id)<<32)
	mux.Register(transport.ChanPayment, c.onMessage)
	return c
}

// NewAuthClient creates a client that signs every payment with its key —
// for deployments with end-to-end client signatures (core.Config
// ClientKeys). The key's public half must be registered with the
// replicas' ClientKeys registry.
func NewAuthClient(id types.ClientID, repOf func(types.ClientID) types.ReplicaID, mux *transport.Mux, keys *crypto.KeyPair) *Client {
	c := NewClient(id, repOf, mux)
	c.keys = keys
	return c
}

// ID returns the client's identity.
func (c *Client) ID() types.ClientID { return c.id }

// Representative returns the replica brokering this client's payments.
func (c *Client) Representative() types.ReplicaID { return c.rep }

// Pay submits a payment of amount x to beneficiary b (paper Listing 1):
// assign the next sequence number, increment it, and send the payment to
// the representative over the authenticated channel. It returns the
// payment's identifier; settlement is confirmed asynchronously through
// Confirmations.
func (c *Client) Pay(b types.ClientID, x types.Amount) (types.PaymentID, error) {
	c.mu.Lock()
	p := types.Payment{Spender: c.id, Seq: c.nextSeq, Beneficiary: b, Amount: x}
	c.nextSeq++
	c.mu.Unlock()
	var sig []byte
	if c.keys != nil {
		var err error
		sig, err = c.keys.Sign(PaymentDigest(p))
		if err != nil {
			return types.PaymentID{}, fmt.Errorf("sign payment: %w", err)
		}
	}
	if err := c.mux.Send(transport.ReplicaNode(c.rep), transport.ChanPayment, encodeSubmit(p, sig)); err != nil {
		return types.PaymentID{}, err
	}
	return p.ID(), nil
}

// Confirmations returns the stream of settled payment identifiers, in
// settlement order.
func (c *Client) Confirmations() <-chan types.PaymentID { return c.confirms }

// WaitConfirm blocks until the given payment is confirmed or the timeout
// expires. Confirmations arrive in sequence order, so waiting for id also
// drains all earlier confirmations.
func (c *Client) WaitConfirm(id types.PaymentID, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case got := <-c.confirms:
			if got == id {
				return nil
			}
			if got.Seq > id.Seq {
				// Confirmation order is per-xlog sequence order; seeing a
				// later seq means ours was confirmed earlier and already
				// consumed by another waiter — treat as confirmed.
				return nil
			}
		case <-deadline.C:
			return ErrTimeout
		}
	}
}

// QueryBalance asks the representative for this client's spendable
// balance (paper §III "Checking the Balance").
func (c *Client) QueryBalance(timeout time.Duration) (types.Amount, error) {
	if err := c.mux.Send(transport.ReplicaNode(c.rep), transport.ChanPayment, encodeBalanceReq(c.id)); err != nil {
		return 0, err
	}
	select {
	case bal := <-c.balances:
		return bal, nil
	case <-time.After(timeout):
		return 0, ErrTimeout
	}
}

// SyncSeq asks the representative for this client's next usable sequence
// number and adopts it. A client process is otherwise stateless across
// restarts: restarting from seq 1 would resubmit identifiers that already
// settled, and those payments silently never settle again. Call once at
// startup before the first Pay. It never moves the counter backwards, so
// calling it on a live client is harmless.
func (c *Client) SyncSeq(timeout time.Duration) (types.Seq, error) {
	// Discard responses queued by earlier timed-out calls, so the answer
	// consumed below is to *this* request, not a stale (lower) snapshot.
	for {
		select {
		case <-c.seqs:
			continue
		default:
		}
		break
	}
	if err := c.mux.Send(transport.ReplicaNode(c.rep), transport.ChanPayment, encodeSeqReq(c.id)); err != nil {
		return 0, err
	}
	select {
	case next := <-c.seqs:
		c.mu.Lock()
		if next > c.nextSeq {
			c.nextSeq = next
		}
		next = c.nextSeq
		c.mu.Unlock()
		return next, nil
	case <-time.After(timeout):
		return 0, ErrTimeout
	}
}

func (c *Client) onMessage(from transport.NodeID, payload []byte) {
	if len(payload) == 0 || from != transport.ReplicaNode(c.rep) {
		return
	}
	switch payload[0] {
	case msgConfirm:
		if len(payload) != 17 {
			return
		}
		var id types.PaymentID
		id.Spender = types.ClientID(be64(payload[1:9]))
		id.Seq = types.Seq(be64(payload[9:17]))
		if id.Spender != c.id {
			return
		}
		select {
		case c.confirms <- id:
		default: // confirmation buffer full: drop oldest semantics not needed; drop new
		}
	case msgBalanceResp:
		if len(payload) != 17 {
			return
		}
		if types.ClientID(be64(payload[1:9])) != c.id {
			return
		}
		select {
		case c.balances <- types.Amount(be64(payload[9:17])):
		default:
		}
	case msgSeqResp:
		if len(payload) != 17 {
			return
		}
		if types.ClientID(be64(payload[1:9])) != c.id {
			return
		}
		select {
		case c.seqs <- types.Seq(be64(payload[9:17])):
		default:
		}
	case msgStatsResp:
		s, ok := decodeStatsResp(payload[1:])
		if !ok {
			return
		}
		select {
		case c.stats <- s:
		default:
		}
	}
}

// QueryStats fetches the representative's edge-rejection counters — the
// observable form of "the replica is absorbing an attack".
func (c *Client) QueryStats(timeout time.Duration) (EdgeStats, error) {
	if err := c.mux.Send(transport.ReplicaNode(c.rep), transport.ChanPayment, encodeStatsReq()); err != nil {
		return EdgeStats{}, err
	}
	select {
	case s := <-c.stats:
		return s, nil
	case <-time.After(timeout):
		return EdgeStats{}, ErrTimeout
	}
}

func be64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
