package core

// PR 3 evidence benchmarks.
//
//   - BenchmarkStripedSettle measures the settlement engine under
//     concurrent appliers on disjoint accounts: the single global lock
//     (the pre-striping engine, kept as NewStateStriped(..., 1)) against
//     the hash-sharded stripes. On multi-core the striped engine scales
//     toward min(stripes, cores)×; on one core it must hold parity.
//   - BenchmarkCreditSignPipeline compares the serial per-group ECDSA the
//     delivery goroutine used to pay per CREDIT against the pool-side
//     chain signer, where the credit groups of pending settlement waves
//     collapse into one signature over a digest chain (cap 32).
//
// Regenerate BENCH_PR3.json with `make bench-pr3`.

import (
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

func benchStripedSettle(b *testing.B, stripes int) {
	s := NewStateStriped(AstroII, func(types.ClientID) types.Amount { return 1 << 40 }, nil, stripes)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// One client per applier goroutine: payments touch disjoint
		// accounts, so stripes are the only contention left.
		c := types.ClientID(next.Add(1))
		seq := types.Seq(0)
		for pb.Next() {
			seq++
			s.ApplyEntry(BatchEntry{Payment: types.Payment{
				Spender: c, Seq: seq, Beneficiary: c + 1_000_000, Amount: 1,
			}})
		}
	})
}

func BenchmarkStripedSettle(b *testing.B) {
	b.Run("global-lock", func(b *testing.B) { benchStripedSettle(b, 1) })
	b.Run("striped", func(b *testing.B) { benchStripedSettle(b, DefaultStateStripes) })
}

// BenchmarkCreditSignPipeline/inline-ecdsa is the baseline: one ECDSA per
// credit group, serial — what the delivery goroutine executed in-line per
// beneficiary-representative group before the chain signer.
// BenchmarkCreditSignPipeline/chain-batched streams b.N settlement-wave
// groups through a replica's credit signer and measures wall time until
// CREDITs covering all of them have been emitted.
func BenchmarkCreditSignPipeline(b *testing.B) {
	mkGroup := func(i int) []types.Payment {
		return []types.Payment{{
			Spender: types.ClientID(i%64 + 1), Seq: types.Seq(i/64 + 1),
			Beneficiary: types.ClientID(i%64 + 2), Amount: 1,
		}}
	}
	b.Run("inline-ecdsa", func(b *testing.B) {
		kp := crypto.MustGenerateKeyPair()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := kp.Sign(CreditGroupDigest(mkGroup(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("chain-batched", func(b *testing.B) {
		net := memnet.New()
		defer net.Close()
		replicaIDs := []types.ReplicaID{0, 1, 2, 3}
		registry := crypto.NewRegistry()
		keys := make([]*crypto.KeyPair, len(replicaIDs))
		for i := range keys {
			keys[i] = crypto.MustGenerateKeyPair()
			registry.Add(types.ReplicaID(i), keys[i].Public())
		}
		mux := transport.NewMux(net.Node(transport.ReplicaNode(1)))
		defer mux.Close()
		r, err := NewReplica(Config{
			Version:  AstroII,
			Self:     1,
			Replicas: replicaIDs,
			F:        1,
			Mux:      mux,
			Keys:     keys[1],
			Registry: registry,
		})
		if err != nil {
			b.Fatal(err)
		}

		// The destination representative counts emitted credit groups.
		var covered atomic.Int64
		allOut := make(chan struct{}, 1)
		target := int64(b.N)
		recv := transport.NewMux(net.Node(transport.ReplicaNode(0)))
		defer recv.Close()
		recv.Register(transport.ChanCredit, func(_ transport.NodeID, p []byte) {
			if len(p) == 0 {
				return
			}
			var n int64
			switch p[0] {
			case msgCreditSingle:
				n = 1
			case msgCreditBatch:
				m, err := decodeCreditBatch(p[1:])
				if err != nil {
					return
				}
				n = int64(len(m.Groups))
			}
			if covered.Add(n) >= target {
				select {
				case allOut <- struct{}{}:
				default:
				}
			}
		})

		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.creditSigner.Enqueue(creditJob{rep: 0, group: mkGroup(i)})
		}
		select {
		case <-allOut:
		case <-time.After(2 * time.Minute):
			b.Fatalf("credits covered %d/%d", covered.Load(), b.N)
		}
		b.StopTimer()
		ops, groups := r.CreditSignStats()
		if ops > 0 {
			b.ReportMetric(float64(groups)/float64(ops), "credits/ECDSA")
		}
	})
}
