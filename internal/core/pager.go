package core

// Paged account state (PR 10): State optionally backs its striped account
// maps with an embedded KV store (internal/kv), bounding resident memory
// to a configured hot set. Cold accounts live on disk as self-contained
// per-account records (the canonical AccountExport encoding) and fault
// back in on first touch; dirty accounts write back at eviction and at
// every incremental WAL snapshot (FlushDirty), so the published KV image
// plus the log tail is always a recoverable cut.
//
// # Authority invariant
//
// A resident account is authoritative: its KV copy, if any, is stale
// until the next write-back. A non-resident account's KV record is
// authoritative. Readers therefore consult memory first and fall through
// to the store without inserting (audit/merge paths must not defeat
// paging by faulting the world in); only the settle/submit paths
// materialize accounts into the cache.
//
// # Why eviction is crash-safe
//
// Evictions write complete account images with no fsync; durability
// comes from the snapshot path, which flushes every dirty account and
// then publishes the store atomically (one index rename) together with
// the manifest. A crash can lose post-publish evictions or retain them
// partially — both converge, because the WAL tail since the published
// cut replays every settlement duplicate-tolerantly on top of whichever
// image recovery finds (the same argument that makes the
// snapshot-rename/log-truncate window safe in PR 6).

import (
	"fmt"
	"sync"
	"sync/atomic"

	"astro/internal/kv"
	"astro/internal/types"
	"astro/internal/wire"
)

// accountRecVersion is the per-account KV record format version.
const accountRecVersion = 1

// accountKeyPrefix namespaces account records inside the shared store
// (the WAL backend keeps its manifest in the same store under a
// different prefix).
const accountKeyPrefix = 'a'

// accountKey returns the KV key for a client's account record.
func accountKey(c types.ClientID) []byte {
	k := make([]byte, 9)
	k[0] = accountKeyPrefix
	bePutU64(k[1:], uint64(c))
	return k
}

// accountKeyClient inverts accountKey; ok=false for foreign keys (the
// manifest, future record types).
func accountKeyClient(k []byte) (types.ClientID, bool) {
	if len(k) != 9 || k[0] != accountKeyPrefix {
		return 0, false
	}
	return types.ClientID(beU64(k[1:])), true
}

func bePutU64(b []byte, v uint64) {
	_ = b[7]
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func beU64(b []byte) uint64 {
	_ = b[7]
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// encodeAccountExport serializes one account as a self-contained durable
// record: the spill format of the pager and the unit the incremental
// snapshot flushes. Queue and UsedDeps are expected in the canonical
// order ExportAccounts produces.
func encodeAccountExport(ex AccountExport) []byte {
	est := 1 + 8 + 8 + 1 + 4 + len(ex.XLog)*types.PaymentWireSize +
		batchSize(ex.Queue) + 4 + 16*len(ex.UsedDeps)
	w := wire.NewWriter(est)
	w.U8(accountRecVersion)
	w.U64(uint64(ex.Client))
	w.U64(uint64(ex.Balance))
	w.Bool(ex.Stuck)
	w.U32(uint32(len(ex.XLog)))
	for _, p := range ex.XLog {
		w.AppendFunc(p.AppendBinary)
	}
	appendBatch(w, ex.Queue)
	w.U32(uint32(len(ex.UsedDeps)))
	for _, id := range ex.UsedDeps {
		w.U64(uint64(id.Spender))
		w.U64(uint64(id.Seq))
	}
	return w.Bytes()
}

// decodeAccountExport parses a record written by encodeAccountExport.
func decodeAccountExport(data []byte) (AccountExport, error) {
	var ex AccountExport
	r := wire.NewReader(data)
	if v := r.U8(); r.Err() != nil || v != accountRecVersion {
		return ex, fmt.Errorf("core: account record version %d unsupported", v)
	}
	ex.Client = types.ClientID(r.U64())
	ex.Balance = types.Amount(r.U64())
	ex.Stuck = r.Bool()
	nx := r.U32()
	if r.Err() != nil || !countFits(r, nx, types.PaymentWireSize) {
		return ex, fmt.Errorf("core: account record xlog corrupt")
	}
	if nx > 0 {
		ex.XLog = make([]types.Payment, nx)
	}
	for i := range ex.XLog {
		raw := r.Fixed(types.PaymentWireSize)
		if r.Err() != nil {
			return ex, fmt.Errorf("core: account record xlog corrupt")
		}
		if err := ex.XLog[i].UnmarshalBinary(raw); err != nil {
			return ex, err
		}
	}
	queue, err := readBatchEntries(r)
	if err != nil {
		return ex, fmt.Errorf("core: account record queue: %w", err)
	}
	if len(queue) > 0 {
		ex.Queue = queue
	}
	nu := r.U32()
	if r.Err() != nil || !countFits(r, nu, 16) {
		return ex, fmt.Errorf("core: account record deps corrupt")
	}
	if nu > 0 {
		ex.UsedDeps = make([]types.PaymentID, nu)
	}
	for i := range ex.UsedDeps {
		ex.UsedDeps[i] = types.PaymentID{
			Spender: types.ClientID(r.U64()),
			Seq:     types.Seq(r.U64()),
		}
	}
	if err := r.Finish(); err != nil {
		return ex, fmt.Errorf("core: account record trailing bytes: %w", err)
	}
	return ex, nil
}

// PagingStats counts pager activity since construction. Zero-valued when
// paging is off.
type PagingStats struct {
	Faults     uint64 // cold accounts loaded from the store into the cache
	Evictions  uint64 // accounts dropped from the cache (clean or written back)
	Writebacks uint64 // dirty evictions that wrote a record before dropping
	Flushed    uint64 // dirty accounts written by FlushDirty (snapshot path)
	Resident   int    // accounts currently in memory, across all stripes
}

// statePager is the paging side of a State: the backing store, the
// per-stripe residency bound, activity counters, and the sticky error
// that turns storage faults into fail-stop behavior (mirroring WALErr).
type statePager struct {
	store *kv.Store
	// perStripe bounds each stripe's resident accounts. Floor 2: the
	// Astro I transfer path holds at most two account pointers of one
	// stripe (spender, then beneficiary), and LRU eviction never selects
	// the two most-recently-touched — so held pointers stay resident.
	perStripe int

	faults     atomic.Uint64
	evictions  atomic.Uint64
	writebacks atomic.Uint64
	flushed    atomic.Uint64

	mu  sync.Mutex
	err error
}

// fail records the first pager error (sticky). Read paths that hit it
// degrade to genesis materialization; the error surfaces through
// State.PagerErr / Replica.PagerErr so harnesses treat the replica as
// failed rather than trusting silently diverged state.
func (p *statePager) fail(err error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil && err != nil {
		p.err = err
	}
	return p.err
}

func (p *statePager) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// load fetches and decodes a cold account record; ok=false if the store
// has never seen this client.
func (p *statePager) load(c types.ClientID) (AccountExport, bool, error) {
	val, ok, err := p.store.Get(accountKey(c))
	if err != nil || !ok {
		return AccountExport{}, false, err
	}
	ex, err := decodeAccountExport(val)
	if err != nil {
		return AccountExport{}, false, err
	}
	if ex.Client != c {
		return AccountExport{}, false, fmt.Errorf("core: account record for %d filed under %d", ex.Client, c)
	}
	return ex, true, nil
}

// NewStatePaged is NewStateStriped with a bounded hot-account cache over
// the given store: at most cacheAccounts accounts stay resident (spread
// across the stripes, floor two per stripe); the rest live as KV records
// and fault in on access. cacheAccounts <= 0 or a nil store selects the
// fully resident engine.
func NewStatePaged(version Version, genesis func(types.ClientID) types.Amount, verifyDep func(Dependency) error, stripes int, store *kv.Store, cacheAccounts int) *State {
	s := NewStateStriped(version, genesis, verifyDep, stripes)
	if store == nil || cacheAccounts <= 0 {
		return s
	}
	per := cacheAccounts / len(s.stripes)
	if per < 2 {
		per = 2
	}
	s.pager = &statePager{store: store, perStripe: per}
	return s
}

// Paged reports whether this state spills cold accounts to a store.
func (s *State) Paged() bool { return s.pager != nil }

// PagerErr surfaces the first paging I/O or decode error, if any.
func (s *State) PagerErr() error {
	if s.pager == nil {
		return nil
	}
	return s.pager.Err()
}

// PagingStats returns pager activity counters (zeros when paging is off).
func (s *State) PagingStats() PagingStats {
	var ps PagingStats
	if p := s.pager; p != nil {
		ps.Faults = p.faults.Load()
		ps.Evictions = p.evictions.Load()
		ps.Writebacks = p.writebacks.Load()
		ps.Flushed = p.flushed.Load()
	}
	s.lockAll()
	for _, st := range s.stripes {
		ps.Resident += len(st.accounts)
	}
	s.unlockAll()
	return ps
}

// FlushDirty writes every dirty resident account to the store and clears
// the dirty marks — the incremental snapshot's account pass. Stripes
// flush under their own locks, one at a time; per-account atomicity is
// all the recovery argument needs (the WAL tail replays anything a
// not-yet-flushed account was missing, duplicate-tolerantly). No-op for
// resident states.
func (s *State) FlushDirty() error {
	p := s.pager
	if p == nil {
		return nil
	}
	for _, st := range s.stripes {
		st.mu.Lock()
		for c, a := range st.accounts {
			if !a.dirty {
				continue
			}
			if err := p.store.Put(accountKey(c), encodeAccountExport(exportLocked(c, a))); err != nil {
				st.mu.Unlock()
				return p.fail(err)
			}
			a.dirty = false
			p.flushed.Add(1)
		}
		st.mu.Unlock()
	}
	return nil
}

// exportLocked builds one account's AccountExport in canonical order.
// The account's stripe lock must be held.
func exportLocked(c types.ClientID, a *account) AccountExport {
	ex := AccountExport{
		Client:  c,
		Balance: a.balance,
		Stuck:   a.stuck,
		XLog:    a.xlog.Snapshot(),
	}
	if len(a.queue) > 0 {
		ex.Queue = make([]BatchEntry, 0, len(a.queue))
		for _, e := range a.queue {
			ex.Queue = append(ex.Queue, e)
		}
		sortBatchEntries(ex.Queue)
	}
	if len(a.usedDeps) > 0 {
		ex.UsedDeps = make([]types.PaymentID, 0, len(a.usedDeps))
		for id := range a.usedDeps {
			ex.UsedDeps = append(ex.UsedDeps, id)
		}
		sortPaymentIDs(ex.UsedDeps)
	}
	return ex
}

// accountFromExport materializes the in-memory form of one image.
func accountFromExport(ex AccountExport) *account {
	a := &account{
		balance:  ex.Balance,
		xlog:     NewXLog(ex.Client),
		queue:    make(map[types.Seq]BatchEntry, len(ex.Queue)),
		usedDeps: make(map[types.PaymentID]struct{}, len(ex.UsedDeps)),
		stuck:    ex.Stuck,
		client:   ex.Client,
	}
	for _, p := range ex.XLog {
		a.xlog.Append(p)
	}
	for _, e := range ex.Queue {
		a.queue[e.Payment.Seq] = e
	}
	for _, id := range ex.UsedDeps {
		a.usedDeps[id] = struct{}{}
	}
	return a
}

// ForEachAccount streams every account — resident and cold — as one
// consistent cut under all stripe locks, without faulting cold accounts
// into the cache and without materializing a whole-state slice. This is
// the allocation-flat path the auditor and snapshot encoders use; order
// is unspecified.
func (s *State) ForEachAccount(fn func(AccountExport) error) error {
	s.lockAll()
	defer s.unlockAll()
	return s.forEachAccountLocked(fn)
}

// forEachAccountLocked implements ForEachAccount; every stripe lock must
// be held. Resident accounts shadow their (possibly stale) KV copies.
func (s *State) forEachAccountLocked(fn func(AccountExport) error) error {
	for _, st := range s.stripes {
		for c, a := range st.accounts {
			if err := fn(exportLocked(c, a)); err != nil {
				return err
			}
		}
	}
	return s.forEachColdLocked(fn)
}

// forEachColdLocked streams every non-resident account record out of the
// store (transient decode, no cache insert). Every stripe lock must be
// held, so residency cannot change mid-walk. No-op for resident states.
func (s *State) forEachColdLocked(fn func(AccountExport) error) error {
	p := s.pager
	if p == nil {
		return nil
	}
	err := p.store.ForEach(func(k, v []byte) error {
		c, ok := accountKeyClient(k)
		if !ok {
			return nil // foreign record (the WAL manifest)
		}
		if _, resident := s.stripeFor(c).accounts[c]; resident {
			return nil // memory is authoritative
		}
		ex, err := decodeAccountExport(v)
		if err != nil {
			return err
		}
		return fn(ex)
	})
	if err != nil {
		return p.fail(err)
	}
	return nil
}

// ExportAccount returns one account's image — from memory if resident,
// else from the store, without caching it — and ok=false for a client
// neither holds. The per-account comparison path of MergeFullSnapshot,
// which must not fault the peer's whole account set into the cache.
func (s *State) ExportAccount(c types.ClientID) (AccountExport, bool) {
	st := s.stripeFor(c)
	st.mu.Lock()
	if a, ok := st.accounts[c]; ok {
		ex := exportLocked(c, a)
		st.mu.Unlock()
		return ex, true
	}
	st.mu.Unlock()
	if p := s.pager; p != nil {
		ex, ok, err := p.load(c)
		if err != nil {
			p.fail(err)
			return AccountExport{}, false
		}
		return ex, ok
	}
	return AccountExport{}, false
}
