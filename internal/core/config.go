// Package core implements the Astro payment protocol (paper §III–§V):
// exclusive logs replicated through Byzantine reliable broadcast,
// client/representative interaction, batching, and — for Astro II — the
// CREDIT/dependency mechanism that replaces totality and enables
// asynchronous sharding.
package core

import (
	"errors"
	"time"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/sched"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wal"
)

// Config assembles one replica of an Astro deployment.
type Config struct {
	// Version selects Astro I (Bracha BRB, direct credits) or Astro II
	// (signed BRB, dependency certificates).
	Version Version
	// Self is this replica's identity.
	Self types.ReplicaID
	// Replicas lists the replicas of this replica's shard (including
	// Self), the broadcast group for its BRB instance.
	Replicas []types.ReplicaID
	// F is the number of Byzantine replicas tolerated per shard;
	// len(Replicas) >= 3F+1.
	F int
	// Mux is the node's transport multiplexer.
	Mux *transport.Mux

	// RepOf maps each client to its representative replica. The mapping
	// is public knowledge (paper §III). Defaults to client mod replicas
	// within the client's shard.
	RepOf func(types.ClientID) types.ReplicaID
	// ShardOf maps each client (xlog) to its shard. Defaults to a single
	// shard.
	ShardOf func(types.ClientID) types.ShardID
	// ReplicaShard maps each replica to its shard. Defaults to shard 0.
	ReplicaShard func(types.ReplicaID) types.ShardID
	// ShardMembers enumerates the replica membership of any shard (nil
	// result = unknown shard) — the directory a restarted representative
	// uses to reach another shard's signers when re-requesting CREDIT
	// signatures for cross-shard spenders (shard.Topology.Directory, or
	// reconfig.ShardDirectory.Members when views change). Defaults to a
	// directory that knows only this replica's own shard, under which
	// cross-shard credit redo degrades to the pre-PR-10 skip.
	ShardMembers func(types.ShardID) []types.ReplicaID
	// Shards lists every shard of the deployment — the enumeration
	// requestCreditRedo walks to send CREDITRESCAN to foreign shards
	// (whose settled payments it cannot name from local state).
	// Defaults to this replica's own shard only.
	Shards []types.ShardID
	// Genesis returns each client's initial balance; it must be identical
	// at all replicas. Defaults to zero balances.
	Genesis func(types.ClientID) types.Amount

	// BatchSize is the maximum payments per broadcast batch (paper uses
	// 256). Defaults to 256.
	BatchSize int
	// BatchDelay bounds how long a submitted payment may wait for its
	// batch to fill. Defaults to 5ms.
	BatchDelay time.Duration
	// StateStripes is the number of hash-sharded lock domains the
	// settlement state is split into: payments touching disjoint stripes
	// settle concurrently across the scheduler lanes. 0 selects
	// DefaultStateStripes; 1 keeps the pre-striping single global lock
	// (the measured contention baseline).
	StateStripes int
	// Sched is the lane runtime the settlement stripe fan-out executes
	// on: each stripe is pinned to a lane-affine flow, so the steady-state
	// settle path spawns zero goroutines per delivery. Nil selects the
	// process-wide shared runtime (sched.Default()) — the same lanes
	// transport dispatch and the verifier run on.
	Sched *sched.Runtime
	// SettleSpawn restores the PR 3 behavior of spawning one goroutine
	// per stripe group per delivered batch, as the measured baseline for
	// the pinned-stripe lanes (BENCH_PR5).
	SettleSpawn bool
	// CommitSpawn restores the goroutine-per-commit BRB coordinators
	// (PR 1–8), as the measured baseline for the continuation-style
	// commit path (BENCH_PR9). Off — the default — steady-state
	// settlement spawns zero goroutines per commit or delivery.
	CommitSpawn bool
	// EagerChainDefs restores the PR 4 behavior of defining every chain
	// ahead of its first reference, on both the BRB commit channel and
	// the credit channel, as the measured baseline for lazy definitions
	// (BENCH_PR9): by default a chain crosses the wire only when a
	// receiver demands it, which skips the definitions receivers never
	// need — their own chains, chains learned from other peers, and
	// credit waves whose dependency certificates complete from the other
	// signers first.
	EagerChainDefs bool

	// Auth supplies MAC link authentication for Astro I's broadcast.
	Auth *crypto.LinkAuthenticator
	// Keys is this replica's signing key (required for Astro II).
	Keys *crypto.KeyPair
	// Registry holds the public keys of all replicas of all shards
	// (required for Astro II).
	Registry *crypto.Registry
	// ClientKeys enables end-to-end client signatures (paper §VI-A):
	// when set, every submission and every batch entry must carry the
	// spender's signature, verified by all replicas before endorsement.
	// Nil disables client authentication (submissions are authenticated
	// by the transport only, and clients trust their representative).
	ClientKeys *crypto.ClientKeys
	// Verifier is the worker pool for signature verification on the
	// settlement hot path: client signatures of a batch are fanned out
	// before endorsement, BRB ack/commit checks run off the transport
	// dispatch goroutine, and CREDIT signatures verify asynchronously.
	// Nil selects the shared process-wide pool (verifier.Default).
	Verifier *verifier.Verifier

	// WAL is the durable-log backend. When set, the replica records
	// endorsements, broadcast-slot reservations, settled batches, and
	// completed dependency certificates through an append-only log plus
	// periodic compacted snapshots (see internal/wal for the durability
	// contract), and NewReplica replays whatever the backend holds before
	// going live — the kill -9 restart path. Nil disables durability
	// entirely; wal.Nop keeps the full logging code path live with zero
	// I/O (the measured overhead baseline).
	WAL wal.Backend
	// WALSnapshotEvery is the number of settled-batch records between
	// compacted snapshots. 0 selects the default (4096); negative disables
	// periodic compaction — the log then grows until Close writes the
	// final snapshot.
	WALSnapshotEvery int
	// StateCacheAccounts bounds the number of accounts held resident in
	// memory (spread across the state stripes, floor two per stripe);
	// cold accounts spill to the WAL backend's embedded KV store and
	// fault back in on access, and WAL snapshots become incremental
	// (dirty accounts + a manifest). Requires a KV-backed WAL
	// (wal.OpenKV / wal.OpenAuto). 0 — the default — keeps every account
	// resident, the measured baseline of every prior PR.
	StateCacheAccounts int
}

// Configuration errors.
var (
	ErrConfigMux     = errors.New("core: config requires Mux")
	ErrConfigQuorum  = errors.New("core: fewer than 3f+1 replicas")
	ErrConfigVersion = errors.New("core: unknown version")
	ErrConfigKeys    = errors.New("core: Astro II requires Keys and Registry")
	// ErrConfigStateCache rejects StateCacheAccounts > 0 without a WAL
	// backend that embeds a KV store (wal.OpenKV / wal.OpenAuto):
	// paging needs somewhere durable to spill cold accounts.
	ErrConfigStateCache = errors.New("core: StateCacheAccounts requires a KV-backed WAL")
)

func (c *Config) normalize() error {
	if c.Mux == nil {
		return ErrConfigMux
	}
	if c.Version != AstroI && c.Version != AstroII {
		return ErrConfigVersion
	}
	if len(c.Replicas) < 3*c.F+1 {
		return ErrConfigQuorum
	}
	if c.Version == AstroII && (c.Keys == nil || c.Registry == nil) {
		return ErrConfigKeys
	}
	if c.RepOf == nil {
		replicas := append([]types.ReplicaID(nil), c.Replicas...)
		c.RepOf = func(cl types.ClientID) types.ReplicaID {
			return replicas[uint64(cl)%uint64(len(replicas))]
		}
	}
	if c.ShardOf == nil {
		c.ShardOf = types.SingleShard
	}
	if c.ReplicaShard == nil {
		c.ReplicaShard = func(types.ReplicaID) types.ShardID { return 0 }
	}
	if c.Genesis == nil {
		c.Genesis = func(types.ClientID) types.Amount { return 0 }
	}
	if c.ShardMembers == nil {
		own := c.ReplicaShard(c.Self)
		members := append([]types.ReplicaID(nil), c.Replicas...)
		c.ShardMembers = func(s types.ShardID) []types.ReplicaID {
			if s != own {
				return nil
			}
			return members
		}
	}
	if len(c.Shards) == 0 {
		c.Shards = []types.ShardID{c.ReplicaShard(c.Self)}
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 5 * time.Millisecond
	}
	if c.StateStripes <= 0 {
		c.StateStripes = DefaultStateStripes
	}
	if c.Sched == nil {
		c.Sched = sched.Default()
	}
	if c.Verifier == nil {
		c.Verifier = verifier.Default()
	}
	if c.WALSnapshotEvery == 0 {
		c.WALSnapshotEvery = defaultWALSnapshotEvery
	}
	return nil
}
