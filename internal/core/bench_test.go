package core

import (
	"testing"

	"astro/internal/types"
)

func BenchmarkSettleAstroI(b *testing.B) {
	s := NewState(AstroI, func(types.ClientID) types.Amount { return 1 << 40 }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := types.Payment{
			Spender: types.ClientID(i % 64), Seq: types.Seq(i/64 + 1),
			Beneficiary: types.ClientID((i + 1) % 64), Amount: 1,
		}
		s.ApplyEntry(BatchEntry{Payment: p})
	}
}

func BenchmarkSettleAstroII(b *testing.B) {
	s := NewState(AstroII, func(types.ClientID) types.Amount { return 1 << 40 }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := types.Payment{
			Spender: types.ClientID(i % 64), Seq: types.Seq(i/64 + 1),
			Beneficiary: types.ClientID((i + 1) % 64), Amount: 1,
		}
		s.ApplyEntry(BatchEntry{Payment: p})
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	entries := make([]BatchEntry, 256)
	for i := range entries {
		entries[i] = BatchEntry{Payment: types.Payment{
			Spender: types.ClientID(i), Seq: 1, Beneficiary: types.ClientID(i + 1), Amount: 10,
		}}
	}
	b.ResetTimer()
	b.SetBytes(int64(256 * types.PaymentWireSize))
	for i := 0; i < b.N; i++ {
		EncodeBatch(entries)
	}
}

func BenchmarkBatchDecode(b *testing.B) {
	entries := make([]BatchEntry, 256)
	for i := range entries {
		entries[i] = BatchEntry{Payment: types.Payment{
			Spender: types.ClientID(i), Seq: 1, Beneficiary: types.ClientID(i + 1), Amount: 10,
		}}
	}
	data := EncodeBatch(entries)
	b.ResetTimer()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}
