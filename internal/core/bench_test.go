package core

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

func BenchmarkSettleAstroI(b *testing.B) {
	s := NewState(AstroI, func(types.ClientID) types.Amount { return 1 << 40 }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := types.Payment{
			Spender: types.ClientID(i % 64), Seq: types.Seq(i/64 + 1),
			Beneficiary: types.ClientID((i + 1) % 64), Amount: 1,
		}
		s.ApplyEntry(BatchEntry{Payment: p})
	}
}

func BenchmarkSettleAstroII(b *testing.B) {
	s := NewState(AstroII, func(types.ClientID) types.Amount { return 1 << 40 }, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := types.Payment{
			Spender: types.ClientID(i % 64), Seq: types.Seq(i/64 + 1),
			Beneficiary: types.ClientID((i + 1) % 64), Amount: 1,
		}
		s.ApplyEntry(BatchEntry{Payment: p})
	}
}

// BenchmarkSettleBatchECDSA drives the full replica path — submission,
// client-signature verification, signed BRB, settlement — with real ECDSA
// keys end to end: 4 replicas over an in-process network, 64 authenticated
// clients, 256-payment batches (the paper's §VI-A configuration). Reported
// per settled payment.
func BenchmarkSettleBatchECDSA(b *testing.B) {
	const (
		nReplicas = 4
		nClients  = 64
	)
	net := memnet.New(memnet.WithSeed(7))
	defer net.Close()

	replicaIDs := make([]types.ReplicaID, nReplicas)
	for i := range replicaIDs {
		replicaIDs[i] = types.ReplicaID(i)
	}
	registry := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, nReplicas)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		registry.Add(types.ReplicaID(i), keys[i].Public())
	}
	clientKeys := crypto.NewClientKeys()
	ckp := make([]*crypto.KeyPair, nClients)
	for i := range ckp {
		ckp[i] = crypto.MustGenerateKeyPair()
		clientKeys.Add(types.ClientID(i), ckp[i].Public())
	}
	repOf := func(cl types.ClientID) types.ReplicaID {
		return replicaIDs[uint64(cl)%uint64(nReplicas)]
	}

	replicas := make([]*Replica, nReplicas)
	for i := 0; i < nReplicas; i++ {
		self := types.ReplicaID(i)
		mux := transport.NewMux(net.Node(transport.ReplicaNode(self)))
		r, err := NewReplica(Config{
			Version:    AstroII,
			Self:       self,
			Replicas:   replicaIDs,
			F:          types.MaxFaults(nReplicas),
			Mux:        mux,
			RepOf:      repOf,
			Genesis:    func(types.ClientID) types.Amount { return 1 << 40 },
			BatchSize:  256,
			BatchDelay: time.Millisecond,
			Keys:       keys[i],
			Registry:   registry,
			ClientKeys: clientKeys,
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}

	// Pre-sign every submission so the timed section measures the
	// replica-side pipeline, not client-side signing.
	muxes := make([]*transport.Mux, nClients)
	for i := range muxes {
		muxes[i] = transport.NewMux(net.Node(transport.ClientNode(types.ClientID(i))))
	}
	submits := make([][]byte, b.N)
	for i := 0; i < b.N; i++ {
		cl := types.ClientID(i % nClients)
		p := types.Payment{
			Spender:     cl,
			Seq:         types.Seq(i/nClients + 1),
			Beneficiary: types.ClientID((i + 1) % nClients),
			Amount:      1,
		}
		sig, err := ckp[cl].Sign(PaymentDigest(p))
		if err != nil {
			b.Fatal(err)
		}
		submits[i] = encodeSubmit(p, sig)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := i % nClients
		rep := repOf(types.ClientID(cl))
		if err := muxes[cl].Send(transport.ReplicaNode(rep), transport.ChanPayment, submits[i]); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		all := true
		for _, r := range replicas {
			if r.SettledCount() < uint64(b.N) {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("timed out waiting for %d settles", b.N)
		}
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkBatchEncode(b *testing.B) {
	entries := make([]BatchEntry, 256)
	for i := range entries {
		entries[i] = BatchEntry{Payment: types.Payment{
			Spender: types.ClientID(i), Seq: 1, Beneficiary: types.ClientID(i + 1), Amount: 10,
		}}
	}
	b.ResetTimer()
	b.SetBytes(int64(256 * types.PaymentWireSize))
	for i := 0; i < b.N; i++ {
		EncodeBatch(entries)
	}
}

func BenchmarkBatchDecode(b *testing.B) {
	entries := make([]BatchEntry, 256)
	for i := range entries {
		entries[i] = BatchEntry{Payment: types.Payment{
			Spender: types.ClientID(i), Seq: 1, Beneficiary: types.ClientID(i + 1), Amount: 10,
		}}
	}
	data := EncodeBatch(entries)
	b.ResetTimer()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}
