package core

// Credit-channel NACK hardening: a CREDITNACK storm against a retained
// wave costs at most one legacy retransmit per NACK, NACKs naming unknown
// digests cost nothing beyond the counter, and senders outside the key
// registry never reach the handler at all. Run under -race: the storm
// hammers the dispatch path of a live replica.

import (
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

func waitNacks(t *testing.T, r *Replica, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r.CreditRefStats().NacksReceived >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("NacksReceived = %d, want >= %d", r.CreditRefStats().NacksReceived, want)
}

func TestCreditNackStormBoundedWork(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 },
		func(cfg *Config) { cfg.EagerChainDefs = true })
	tap, msgs := c.creditTap(t, 9)

	group := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(group)}
	cd := CreditChainDigest(chain)
	sig, err := c.keys[0].Sign(cd)
	if err != nil {
		t.Fatal(err)
	}
	c.replicas[0].retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: []creditJob{{rep: 9, group: group}}})

	base := c.replicas[0].CreditRefStats()
	const storm = 50
	nack := encodeCreditNack(cd)
	for i := 0; i < storm; i++ {
		if err := tap.Send(transport.ReplicaNode(0), transport.ChanCredit, nack); err != nil {
			t.Fatal(err)
		}
	}
	waitNacks(t, c.replicas[0], base.NacksReceived+storm)
	st := c.replicas[0].CreditRefStats()
	if resends := st.FullSends - base.FullSends; resends > storm {
		t.Errorf("amplification: %d retransmits for %d NACKs", resends, storm)
	}
	// Every retransmit the storm provoked is the bounded legacy form.
	drained := 0
	for done := false; !done; {
		select {
		case m := <-msgs:
			if m[0] != msgCreditBatch {
				t.Fatalf("unexpected reply kind %d", m[0])
			}
			drained++
		case <-time.After(200 * time.Millisecond):
			done = true
		}
	}
	if uint64(drained) != st.FullSends-base.FullSends {
		t.Errorf("observed %d retransmits, counters say %d", drained, st.FullSends-base.FullSends)
	}

	// Unknown digests: counter moves, no retransmit, no reply.
	pre := c.replicas[0].CreditRefStats()
	ghost := encodeCreditNack(types.HashBytes([]byte("never-retained")))
	for i := 0; i < storm; i++ {
		if err := tap.Send(transport.ReplicaNode(0), transport.ChanCredit, ghost); err != nil {
			t.Fatal(err)
		}
	}
	waitNacks(t, c.replicas[0], pre.NacksReceived+storm)
	if got := c.replicas[0].CreditRefStats().FullSends; got != pre.FullSends {
		t.Errorf("unknown-digest NACKs triggered %d retransmits", got-pre.FullSends)
	}
	select {
	case m := <-msgs:
		t.Fatalf("unexpected reply to unknown-digest NACK: kind %d", m[0])
	case <-time.After(100 * time.Millisecond):
	}
}

func TestCreditNackUnregisteredSenderIgnored(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 })

	group := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(group)}
	cd := CreditChainDigest(chain)
	sig, err := c.keys[0].Sign(cd)
	if err != nil {
		t.Fatal(err)
	}
	c.replicas[0].retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: []creditJob{{rep: 17, group: group}}})

	// Replica-space node 17 holds a retained job but is NOT in the key
	// registry: its NACKs must be dropped at the channel gate.
	mux := transport.NewMux(c.net.Node(transport.ReplicaNode(17)))
	t.Cleanup(mux.Close)
	base := c.replicas[0].CreditRefStats()
	nack := encodeCreditNack(cd)
	for i := 0; i < 50; i++ {
		if err := mux.Send(transport.ReplicaNode(0), transport.ChanCredit, nack); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	st := c.replicas[0].CreditRefStats()
	if st.NacksReceived != base.NacksReceived || st.FullSends != base.FullSends {
		t.Errorf("unregistered sender's NACKs processed: nacks %d->%d, fullsends %d->%d",
			base.NacksReceived, st.NacksReceived, base.FullSends, st.FullSends)
	}
}
