package core

// Tests for credit-channel chain-by-digest references: the
// CREDITCHAINDEF/CREDITREF/CREDITNACK codecs, dependency formation through
// references, the NACK -> legacy CREDITBATCH retransmit (never-seen and
// evicted chains), and the interned dependency-certificate wire form.

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

func TestCreditRefCodecRoundTrip(t *testing.T) {
	chain := []types.Digest{types.HashBytes([]byte("g1")), types.HashBytes([]byte("g2"))}

	def := encodeCreditChainDef(chain)
	if def[0] != msgCreditChainDef || len(def) != creditChainDefSize(chain) {
		t.Fatalf("chaindef kind/size wrong: %d/%d", def[0], len(def))
	}
	back, err := decodeCreditChainDef(def[1:])
	if err != nil || len(back) != 2 || back[0] != chain[0] || back[1] != chain[1] {
		t.Fatalf("chaindef round trip: %v %v", back, err)
	}
	if _, err := decodeCreditChainDef(encodeCreditChainDef(nil)[1:]); err == nil {
		t.Fatal("empty chaindef accepted")
	}

	m := creditRefMsg{
		Signer:      3,
		ChainDigest: CreditChainDigest(chain),
		Sig:         []byte("chain-sig"),
		Groups:      []creditBatchGroup{{ChainIdx: 1, Group: []types.Payment{pay(7, 3, 8, 2)}}},
	}
	enc := encodeCreditRef(m)
	if enc[0] != msgCreditRef || len(enc) != creditRefSize(m) {
		t.Fatalf("ref kind/size wrong: %d/%d want %d", enc[0], len(enc), creditRefSize(m))
	}
	got, err := decodeCreditRef(enc[1:])
	if err != nil {
		t.Fatal(err)
	}
	if got.Signer != 3 || got.ChainDigest != m.ChainDigest || string(got.Sig) != "chain-sig" {
		t.Fatalf("ref header mangled: %+v", got)
	}
	if len(got.Groups) != 1 || got.Groups[0].ChainIdx != 1 || got.Groups[0].Group[0] != m.Groups[0].Group[0] {
		t.Fatalf("ref groups mangled: %+v", got.Groups)
	}
	oob := m
	oob.Groups = []creditBatchGroup{{ChainIdx: creditChainCap, Group: m.Groups[0].Group}}
	if _, err := decodeCreditRef(encodeCreditRef(oob)[1:]); err == nil {
		t.Fatal("over-cap chain index accepted")
	}

	nack := encodeCreditNack(m.ChainDigest)
	if nack[0] != msgCreditNack || len(nack) != creditNackSize {
		t.Fatalf("nack kind/size wrong")
	}
	d, err := decodeCreditNack(nack[1:])
	if err != nil || d != m.ChainDigest {
		t.Fatalf("nack round trip: %v %v", d, err)
	}
}

// creditRefFrom signs a chain and returns the (CHAINDEF, CREDITREF) pair a
// signer would emit for the given groups.
func (c *cluster) creditRefFrom(t *testing.T, signer int, chain []types.Digest, groups []creditBatchGroup) (def, ref []byte) {
	t.Helper()
	sig, err := c.keys[signer].Sign(CreditChainDigest(chain))
	if err != nil {
		t.Fatal(err)
	}
	return encodeCreditChainDef(chain), encodeCreditRef(creditRefMsg{
		Signer:      types.ReplicaID(signer),
		ChainDigest: CreditChainDigest(chain),
		Sig:         sig,
		Groups:      groups,
	})
}

// TestCreditRefFormsDependency: the reference pair (CHAINDEF, then
// CREDITREF naming it) from f+1 signers must form a dependency exactly
// like the legacy CREDITBATCH — and the beneficiary must be able to spend
// through it, which round-trips the interned certificate form through a
// broadcast batch and every replica's screening.
func TestCreditRefFormsDependency(t *testing.T) {
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	repBob := c.replicas[int(c.repOf(2))] // client 2 -> replica 2

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	otherGroup := []types.Payment{pay(5, 1, 6, 7)}
	chain := []types.Digest{CreditGroupDigest(otherGroup), CreditGroupDigest(bobGroup)}
	groups := []creditBatchGroup{{ChainIdx: 1, Group: bobGroup}}

	for _, signer := range []int{0, 1} {
		def, ref := c.creditRefFrom(t, signer, chain, groups)
		for _, msg := range [][]byte{def, ref} {
			if err := c.replicas[signer].cfg.Mux.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanCredit, msg); err != nil {
				t.Fatal(err)
			}
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for repBob.Balance(2) != 40 {
		if time.Now().After(deadline) {
			t.Fatalf("dependency never formed from CREDITREF; balance = %d", repBob.Balance(2))
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := repBob.CreditRefStats(); st.RefHits != 2 || st.NacksSent != 0 {
		t.Fatalf("receiver stats = %+v, want 2 resolved references and no NACK", st)
	}

	// Bob spends through the chain-signed dependency: the attached
	// certificate travels in the interned wire form (both signers signed
	// the same chain — one table entry) and must verify at every screen.
	bob := c.client(2)
	c.payAndWait(bob, 3, 25)
	c.waitSettledEverywhere(1, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(2); bal != 15 {
			t.Errorf("replica %d: settled balance(2) = %d, want 15", i, bal)
		}
	}
}

// creditTap attaches a raw endpoint at an unused replica NodeID —
// registered in the shared key registry, since onCredit drops traffic
// from unknown replicas — and returns its inbound ChanCredit stream.
func (c *cluster) creditTap(t *testing.T, id types.ReplicaID) (*transport.Mux, chan []byte) {
	t.Helper()
	c.replicas[0].cfg.Registry.Add(id, crypto.MustGenerateKeyPair().Public())
	mux := transport.NewMux(c.net.Node(transport.ReplicaNode(id)))
	t.Cleanup(mux.Close)
	msgs := make(chan []byte, 64)
	mux.Register(transport.ChanCredit, func(_ transport.NodeID, p []byte) {
		buf := make([]byte, len(p))
		copy(buf, p)
		msgs <- buf
	})
	return mux, msgs
}

// TestCreditRefUnknownChainNacks: a CREDITREF naming a chain the receiver
// has never seen must be answered with a CREDITNACK naming the digest —
// and after the chain is defined, the same reference must resolve.
func TestCreditRefUnknownChainNacks(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 })
	tap, msgs := c.creditTap(t, 9)

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(bobGroup)}
	_, ref := c.creditRefFrom(t, 0, chain, []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}})

	if err := tap.Send(transport.ReplicaNode(2), transport.ChanCredit, ref); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if m[0] != msgCreditNack {
			t.Fatalf("kind = %d, want CREDITNACK", m[0])
		}
		d, err := decodeCreditNack(m[1:])
		if err != nil || d != CreditChainDigest(chain) {
			t.Fatalf("NACK digest = %x, %v", d[:6], err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no CREDITNACK for unresolvable CREDITREF")
	}
	if st := c.replicas[2].CreditRefStats(); st.RefMisses != 1 || st.NacksSent != 1 {
		t.Fatalf("receiver stats = %+v", st)
	}
}

// TestCreditChannelDropsUnknownSenders: chain definitions and references
// from a sender outside the key registry must be ignored — an unknown
// node must not be able to allocate a chain cache (or receive a NACK).
func TestCreditChannelDropsUnknownSenders(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 })
	// A raw endpoint at a replica-space NodeID with NO registry entry.
	mux := transport.NewMux(c.net.Node(transport.ReplicaNode(17)))
	t.Cleanup(mux.Close)
	msgs := make(chan []byte, 8)
	mux.Register(transport.ChanCredit, func(_ transport.NodeID, p []byte) { msgs <- p })

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(bobGroup)}
	_, ref := c.creditRefFrom(t, 0, chain, []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}})
	for _, msg := range [][]byte{encodeCreditChainDef(chain), ref} {
		if err := mux.Send(transport.ReplicaNode(2), transport.ChanCredit, msg); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case m := <-msgs:
		t.Fatalf("unknown sender got a reply (kind %d)", m[0])
	case <-time.After(200 * time.Millisecond):
	}
	r := c.replicas[2]
	r.chainMu.Lock()
	cached := r.creditChains.HasPeer(17)
	r.chainMu.Unlock()
	if cached {
		t.Fatal("unknown sender allocated a chain cache")
	}
	if st := r.CreditRefStats(); st.RefMisses != 0 || st.NacksSent != 0 {
		t.Fatalf("unknown sender's reference was processed: %+v", st)
	}
}

// TestCreditRefEvictionNacks: with the per-peer cache shrunk to one chain,
// a second definition evicts the first and a reference to the evicted
// chain NACKs — the eviction leg of the fallback.
func TestCreditRefEvictionNacks(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 })
	c.replicas[2].creditChains.SetCapacity(1) // before any credit traffic
	tap, msgs := c.creditTap(t, 9)

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	chainA := []types.Digest{CreditGroupDigest(bobGroup)}
	chainB := []types.Digest{types.HashBytes([]byte("other"))}
	_, ref := c.creditRefFrom(t, 0, chainA, []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}})

	for _, chain := range [][]types.Digest{chainA, chainB} {
		if err := tap.Send(transport.ReplicaNode(2), transport.ChanCredit, encodeCreditChainDef(chain)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tap.Send(transport.ReplicaNode(2), transport.ChanCredit, ref); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if m[0] != msgCreditNack {
			t.Fatalf("kind = %d, want CREDITNACK", m[0])
		}
		if d, _ := decodeCreditNack(m[1:]); d != CreditChainDigest(chainA) {
			t.Fatal("NACK names the wrong chain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no CREDITNACK after eviction")
	}
}

// TestCreditNackRetransmitsLegacyBatch: under the eager-definition
// baseline, a signer answering a CREDITNACK must resend the retained
// wave's groups for that destination as a self-contained legacy
// CREDITBATCH.
func TestCreditNackRetransmitsLegacyBatch(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 },
		func(cfg *Config) { cfg.EagerChainDefs = true })
	tap, msgs := c.creditTap(t, 9)

	group := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(group)}
	cd := CreditChainDigest(chain)
	sig, err := c.keys[0].Sign(cd)
	if err != nil {
		t.Fatal(err)
	}
	// Retain a wave at replica 0 whose single group is addressed to the
	// tap's "representative", then NACK it from the tap.
	c.replicas[0].retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: []creditJob{{rep: 9, group: group}}})
	if err := tap.Send(transport.ReplicaNode(0), transport.ChanCredit, encodeCreditNack(cd)); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		if m[0] != msgCreditBatch {
			t.Fatalf("kind = %d, want legacy CREDITBATCH", m[0])
		}
		got, err := decodeCreditBatch(m[1:])
		if err != nil {
			t.Fatal(err)
		}
		if got.Signer != 0 || len(got.Chain) != 1 || got.Chain[0] != chain[0] || len(got.Groups) != 1 || got.Groups[0].Group[0] != group[0] {
			t.Fatalf("retransmit mangled: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no legacy retransmit after CREDITNACK")
	}
	// A NACK for an unretained (evicted) wave is silently dropped.
	if err := tap.Send(transport.ReplicaNode(0), transport.ChanCredit, encodeCreditNack(types.HashBytes([]byte("gone")))); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-msgs:
		t.Fatalf("unexpected reply to unknown NACK: kind %d", m[0])
	case <-time.After(200 * time.Millisecond):
	}
}

// TestCreditNackAnsweredWithDefAndRef: under the lazy-definition default,
// a CREDITNACK is the demand path — the signer answers with the chain's
// CREDITCHAINDEF followed by the CREDITREF for the requester's groups (FIFO
// keeps them ordered), never the legacy full form, and the demand is
// counted against the deferred definitions.
func TestCreditNackAnsweredWithDefAndRef(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 0 })
	tap, msgs := c.creditTap(t, 9)

	group := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(group)}
	cd := CreditChainDigest(chain)
	sig, err := c.keys[0].Sign(cd)
	if err != nil {
		t.Fatal(err)
	}
	c.replicas[0].retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: []creditJob{{rep: 9, group: group}}})
	if err := tap.Send(transport.ReplicaNode(0), transport.ChanCredit, encodeCreditNack(cd)); err != nil {
		t.Fatal(err)
	}

	expect := func(kind byte) []byte {
		t.Helper()
		select {
		case m := <-msgs:
			if m[0] != kind {
				t.Fatalf("kind = %d, want %d", m[0], kind)
			}
			return m
		case <-time.After(5 * time.Second):
			t.Fatalf("no kind-%d answer to the CREDITNACK", kind)
			return nil
		}
	}
	def := expect(msgCreditChainDef)
	back, err := decodeCreditChainDef(def[1:])
	if err != nil || len(back) != 1 || back[0] != chain[0] {
		t.Fatalf("demanded definition mangled: %v %v", back, err)
	}
	ref := expect(msgCreditRef)
	m, err := decodeCreditRef(ref[1:])
	if err != nil || m.Signer != 0 || m.ChainDigest != cd || len(m.Groups) != 1 || m.Groups[0].Group[0] != group[0] {
		t.Fatalf("re-sent reference mangled: %+v %v", m, err)
	}
	st := c.replicas[0].CreditRefStats()
	if st.FullSends != 0 {
		t.Fatalf("lazy mode fell back to the legacy full form: %+v", st)
	}
	if st.DefsDemanded != 1 || st.DefsSent != 1 {
		t.Fatalf("demand not counted: %+v", st)
	}
}

// TestCreditRefCompleteCertDropsSilently: under the lazy default, a
// reference that cannot resolve but whose every group's certificate is
// already complete must be dropped without a NACK — the chain would only
// be used to discard the groups, so demanding it wastes the round trip.
func TestCreditRefCompleteCertDropsSilently(t *testing.T) {
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	repBob := c.replicas[int(c.repOf(2))]

	bobGroup := []types.Payment{pay(1, 1, 2, 40)}
	chain := []types.Digest{CreditGroupDigest(bobGroup)}
	groups := []creditBatchGroup{{ChainIdx: 0, Group: bobGroup}}

	// Form the dependency from f+1 signers through the self-contained
	// legacy batches (which also prime only those peers' cache sections).
	for _, signer := range []int{0, 1} {
		sig, err := c.keys[signer].Sign(CreditChainDigest(chain))
		if err != nil {
			t.Fatal(err)
		}
		msg := encodeCreditBatch(creditBatchMsg{Signer: types.ReplicaID(signer), Chain: chain, Sig: sig, Groups: groups})
		if err := c.replicas[signer].cfg.Mux.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanCredit, msg); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for repBob.Balance(2) != 40 {
		if time.Now().After(deadline) {
			t.Fatalf("dependency never formed; balance = %d", repBob.Balance(2))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A late reference from a third signer to a DIFFERENT chain (unknown at
	// the receiver) carrying only the completed group: silent drop.
	tap, msgs := c.creditTap(t, 9)
	lateChain := []types.Digest{types.HashBytes([]byte("padding")), CreditGroupDigest(bobGroup)}
	_, ref := c.creditRefFrom(t, 2, lateChain, []creditBatchGroup{{ChainIdx: 1, Group: bobGroup}})
	pre := repBob.CreditRefStats()
	if err := tap.Send(transport.ReplicaNode(c.repOf(2)), transport.ChanCredit, ref); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for repBob.CreditRefStats().RefMisses != pre.RefMisses+1 {
		if time.Now().After(deadline) {
			t.Fatalf("late reference never processed: %+v", repBob.CreditRefStats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := repBob.CreditRefStats(); st.NacksSent != pre.NacksSent {
		t.Fatalf("completed-certificate reference was NACKed: %+v", st)
	}
	select {
	case m := <-msgs:
		t.Fatalf("unexpected reply kind %d", m[0])
	case <-time.After(200 * time.Millisecond):
	}
}

// TestDepCertInterning: the interned certificate form stores each distinct
// chain once — k signers over one chain cost one table entry — while the
// round trip preserves every signature's chain content (shared backing on
// decode) and plain signatures stay chain-less.
func TestDepCertInterning(t *testing.T) {
	chainShared := []types.Digest{types.HashBytes([]byte("g1")), types.HashBytes([]byte("g2"))}
	chainOther := []types.Digest{types.HashBytes([]byte("g3"))}
	d := Dependency{
		Group: []types.Payment{pay(9, 1, 3, 5)},
		Cert: DepCert{Sigs: []DepSig{
			{Replica: 0, Sig: []byte("s0"), Chain: chainShared},
			{Replica: 1, Sig: []byte("s1"), Chain: chainShared},
			{Replica: 2, Sig: []byte("s2"), Chain: chainOther},
			{Replica: 3, Sig: []byte("s3")},
		}},
	}

	w := wire.NewWriter(dependencySize(d))
	encodeDependency(w, d)
	if w.Len() != dependencySize(d) {
		t.Fatalf("encoded %d bytes, size function says %d", w.Len(), dependencySize(d))
	}
	// The two copies of chainShared must be encoded once: the certificate
	// section carries exactly table(2 digests + 1 digest) + 4 sig records,
	// strictly less than the extended form's per-signature inline chains.
	certBytes := w.Len() - (4 + len(d.Group)*types.PaymentWireSize + 1)
	interned := 4 + wire.DigestListSize(2) + wire.DigestListSize(1) +
		4 + 4*(4+4+2+4)
	extended := 4 + 4*(4+4+2) + 2*wire.DigestListSize(2) + wire.DigestListSize(1) + wire.DigestListSize(0)
	if certBytes != interned {
		t.Fatalf("interned cert = %d bytes, want %d", certBytes, interned)
	}
	if certBytes >= extended {
		t.Fatalf("interned cert (%d B) not smaller than extended (%d B)", certBytes, extended)
	}

	back, err := decodeDependency(wire.NewReader(w.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	sigs := back.Cert.Sigs
	if len(sigs) != 4 {
		t.Fatalf("cert has %d sigs", len(sigs))
	}
	if len(sigs[0].Chain) != 2 || sigs[0].Chain[0] != chainShared[0] || len(sigs[2].Chain) != 1 || sigs[3].Chain != nil {
		t.Fatalf("chains mangled: %+v", sigs)
	}
	// Interning survives decode: the two shared-chain signatures alias one
	// backing array.
	if &sigs[0].Chain[0] != &sigs[1].Chain[0] {
		t.Fatal("decoded shared chains do not alias one table entry")
	}

	// The extended form still decodes (legacy producers).
	lw := wire.NewWriter(256)
	lw.U32(uint32(len(d.Group)))
	for _, p := range d.Group {
		lw.AppendFunc(p.AppendBinary)
	}
	lw.U8(depCertExtended)
	lw.U32(2)
	lw.U32(0)
	lw.Chunk([]byte("s0"))
	appendDigestChain(lw, chainShared)
	lw.U32(3)
	lw.Chunk([]byte("s3"))
	appendDigestChain(lw, nil)
	legacy, err := decodeDependency(wire.NewReader(lw.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.Cert.Sigs) != 2 || len(legacy.Cert.Sigs[0].Chain) != 2 || legacy.Cert.Sigs[1].Chain != nil {
		t.Fatalf("extended form no longer decodes: %+v", legacy.Cert.Sigs)
	}
}
