package core

// PR 4 evidence: wire bytes per credit at chain cap 32 — on the credit
// channel (the chain crosses once per destination per wave either way;
// the reference form stops re-encoding it per destination and pays only a
// 37-byte reference when a chain is already defined) and, the dominant
// term, in the dependency certificates that ride inside broadcast batches:
// the PR 3 extended form repeats every signer's full chain in every
// group's certificate, the interned form encodes each distinct chain once
// per certificate.

import (
	"testing"

	"astro/internal/types"
	"astro/internal/wire"
)

// benchWave builds an aligned settlement wave: `groups` credit groups of
// `groupLen` payments, spread round-robin over `dests` destination
// representatives, signed by `signers` replicas whose deterministic
// enqueue order (postSettle) produced the identical chain.
type benchWave struct {
	jobs   []creditJob
	chain  []types.Digest
	byRep  map[types.ReplicaID][]creditBatchGroup
	sig    []byte
	nDests int
}

func newBenchWave(groups, groupLen, dests int) *benchWave {
	w := &benchWave{byRep: make(map[types.ReplicaID][]creditBatchGroup), nDests: dests, sig: make([]byte, 71)}
	seq := types.Seq(1)
	for g := 0; g < groups; g++ {
		group := make([]types.Payment, groupLen)
		for i := range group {
			group[i] = pay(types.ClientID(100+g), seq, types.ClientID(200+g), 1)
			seq++
		}
		rep := types.ReplicaID(g % dests)
		w.jobs = append(w.jobs, creditJob{rep: rep, group: group})
		w.chain = append(w.chain, CreditGroupDigest(group))
		w.byRep[rep] = append(w.byRep[rep], creditBatchGroup{ChainIdx: uint32(g), Group: group})
	}
	return w
}

// BenchmarkCreditWireBytes measures the credit-channel bytes per credit
// group for one wave: the PR 3 CREDITBATCH (full chain re-encoded to every
// destination) against CHAINDEF + CREDITREF with a warm reference (the
// retransmission/repeat case the protocol amortizes) and with a cold one
// (first contact, chain defined once).
func BenchmarkCreditWireBytes(b *testing.B) {
	w := newBenchWave(creditChainCap, 8, 4)
	cd := CreditChainDigest(w.chain)

	b.Run("creditbatch-pr3", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for _, gs := range w.byRep {
				total += len(encodeCreditBatch(creditBatchMsg{Signer: 0, Chain: w.chain, Sig: w.sig, Groups: gs}))
			}
		}
		b.ReportMetric(float64(total)/float64(len(w.jobs)), "bytes/credit")
	})
	b.Run("creditref-cold", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for _, gs := range w.byRep {
				total += len(encodeCreditChainDef(w.chain)) // first contact: define
				total += len(encodeCreditRef(creditRefMsg{Signer: 0, ChainDigest: cd, Sig: w.sig, Groups: gs}))
			}
		}
		b.ReportMetric(float64(total)/float64(len(w.jobs)), "bytes/credit")
	})
	b.Run("creditref-warm", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for _, gs := range w.byRep {
				total += len(encodeCreditRef(creditRefMsg{Signer: 0, ChainDigest: cd, Sig: w.sig, Groups: gs}))
			}
		}
		b.ReportMetric(float64(total)/float64(len(w.jobs)), "bytes/credit")
	})
}

// encodeDependencyExtended replicates the PR 3 extended certificate
// encoding — every signature carrying its full chain inline — as the
// measured baseline for the interned form.
func encodeDependencyExtended(w *wire.Writer, d Dependency) {
	w.U32(uint32(len(d.Group)))
	for _, p := range d.Group {
		w.AppendFunc(p.AppendBinary)
	}
	w.U8(depCertExtended)
	w.U32(uint32(len(d.Cert.Sigs)))
	for _, ps := range d.Cert.Sigs {
		w.U32(uint32(ps.Replica))
		w.Chunk(ps.Sig)
		appendDigestChain(w, ps.Chain)
	}
}

// BenchmarkDepCertWireBytes measures the bytes one wave's dependencies add
// to broadcast batches, per credit group: each group's certificate carries
// f+1 chain signatures over the (aligned, identical) wave chain. The PR 3
// extended form repeats the 32-digest chain per signature; the interned
// form's table holds it once per certificate.
func BenchmarkDepCertWireBytes(b *testing.B) {
	w := newBenchWave(creditChainCap, 8, 4)
	const signers = 2 // f+1 for n=4
	deps := make([]Dependency, len(w.jobs))
	for i, j := range w.jobs {
		var cert DepCert
		for s := 0; s < signers; s++ {
			cert.Sigs = append(cert.Sigs, DepSig{Replica: types.ReplicaID(s), Sig: w.sig, Chain: w.chain})
		}
		deps[i] = Dependency{Group: j.group, Cert: cert}
	}
	measure := func(b *testing.B, enc func(*wire.Writer, Dependency)) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for _, d := range deps {
				buf := wire.NewWriter(dependencySize(d))
				enc(buf, d)
				total += buf.Len()
			}
		}
		b.ReportMetric(float64(total)/float64(len(deps)), "bytes/credit")
	}
	b.Run("extended-pr3", func(b *testing.B) { measure(b, encodeDependencyExtended) })
	b.Run("interned", func(b *testing.B) { measure(b, encodeDependency) })
}

// BenchmarkCreditChainEncodeAllocs counts the per-wave encoding work of
// the send path: the PR 3 loop re-encoded the chain once per destination;
// the reference form encodes it once per wave into pooled scratch.
func BenchmarkCreditChainEncodeAllocs(b *testing.B) {
	w := newBenchWave(creditChainCap, 8, 8)
	b.Run("per-dest-pr3", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for _, gs := range w.byRep {
				msg := encodeCreditBatch(creditBatchMsg{Signer: 0, Chain: w.chain, Sig: w.sig, Groups: gs})
				_ = msg
			}
		}
	})
	b.Run("shared-ref", func(b *testing.B) {
		b.ReportAllocs()
		cd := CreditChainDigest(w.chain)
		for n := 0; n < b.N; n++ {
			def := wire.AcquireWriter(creditChainDefSize(w.chain))
			appendCreditChainDef(def, w.chain)
			for _, gs := range w.byRep {
				m := creditRefMsg{Signer: 0, ChainDigest: cd, Sig: w.sig, Groups: gs}
				ref := wire.AcquireWriter(creditRefSize(m))
				appendCreditRef(ref, m)
				ref.Release()
			}
			def.Release()
		}
	})
}
