package core

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// A batch is the unit the representative broadcasts (paper §VI-A): a set
// of payments, potentially from different clients, assembled to amortize
// authentication and network overheads. In Astro II each payment may carry
// the dependencies its spender accumulated since their last broadcast
// (paper Listing 7).

// BatchEntry is one payment plus its attached dependencies (Astro II; the
// slice is empty for Astro I batches) and, when end-to-end client
// signatures are enabled, the spender's signature over the payment.
type BatchEntry struct {
	Payment types.Payment
	// Sig is the spender's signature over PaymentDigest(Payment); empty
	// when client authentication is disabled.
	Sig  []byte
	Deps []Dependency
}

// PaymentDigest is what a client signs when end-to-end client signatures
// are enabled: a domain-separated hash of the payment's canonical
// encoding.
func PaymentDigest(p types.Payment) types.Digest {
	buf := make([]byte, 0, 1+types.PaymentWireSize)
	buf = append(buf, 0x45) // domain: client payment
	buf = p.AppendBinary(buf)
	return types.HashBytes(buf)
}

// maxBatch bounds decoded batch sizes.
const maxBatch = 1 << 16

// batchSize returns the exact encoded size of a batch, for exact-capacity
// preallocation: one undersized guess doubles the hot path's allocations.
func batchSize(entries []BatchEntry) int {
	n := 4
	for _, e := range entries {
		n += types.PaymentWireSize + 4 + len(e.Sig) + 4
		for _, d := range e.Deps {
			n += dependencySize(d)
		}
	}
	return n
}

// appendBatch writes the broadcast payload for a batch into w.
func appendBatch(w *wire.Writer, entries []BatchEntry) {
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.AppendFunc(e.Payment.AppendBinary)
		w.Chunk(e.Sig)
		w.U32(uint32(len(e.Deps)))
		for _, d := range e.Deps {
			encodeDependency(w, d)
		}
	}
}

// EncodeBatch produces the broadcast payload for a batch.
func EncodeBatch(entries []BatchEntry) []byte {
	w := wire.NewWriter(batchSize(entries))
	appendBatch(w, entries)
	return w.Bytes()
}

// DecodeBatch parses a broadcast payload.
func DecodeBatch(payload []byte) ([]BatchEntry, error) {
	r := wire.NewReader(payload)
	entries, err := readBatchEntries(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return entries, nil
}

// readBatchEntries consumes one batch encoding (appendBatch) from the
// middle of a larger stream — the WAL snapshot embeds per-account queues
// this way.
func readBatchEntries(r *wire.Reader) ([]BatchEntry, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > maxBatch {
		return nil, fmt.Errorf("batch: %d entries exceeds cap", n)
	}
	entries := make([]BatchEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e BatchEntry
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := e.Payment.UnmarshalBinary(raw); err != nil {
			return nil, err
		}
		if sig := r.Chunk(); len(sig) > 0 {
			e.Sig = sig
		}
		nd := r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nd > maxBatch {
			return nil, fmt.Errorf("batch: %d deps exceeds cap", nd)
		}
		for j := uint32(0); j < nd; j++ {
			d, err := decodeDependency(r)
			if err != nil {
				return nil, err
			}
			e.Deps = append(e.Deps, d)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
