package core

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// A batch is the unit the representative broadcasts (paper §VI-A): a set
// of payments, potentially from different clients, assembled to amortize
// authentication and network overheads. In Astro II each payment may carry
// the dependencies its spender accumulated since their last broadcast
// (paper Listing 7).

// BatchEntry is one payment plus its attached dependencies (Astro II; the
// slice is empty for Astro I batches) and, when end-to-end client
// signatures are enabled, the spender's signature over the payment.
type BatchEntry struct {
	Payment types.Payment
	// Sig is the spender's signature over PaymentDigest(Payment); empty
	// when client authentication is disabled.
	Sig  []byte
	Deps []Dependency
}

// PaymentDigest is what a client signs when end-to-end client signatures
// are enabled: a domain-separated hash of the payment's canonical
// encoding.
func PaymentDigest(p types.Payment) types.Digest {
	buf := make([]byte, 0, 1+types.PaymentWireSize)
	buf = append(buf, 0x45) // domain: client payment
	buf = p.AppendBinary(buf)
	return types.HashBytes(buf)
}

// maxBatch bounds decoded batch sizes.
const maxBatch = 1 << 16

// batchV2Marker introduces the v2 batch form (PR 9): a batch-wide chain
// table ahead of the entries, with dependency certificates referencing it
// by index (depCertBatchRef) — each distinct chain encoded once per BATCH
// rather than once per certificate. The marker is unambiguous: a v1
// encoding starts with its entry count, which maxBatch keeps far below
// this value.
const batchV2Marker = ^uint32(0)

// batchChainTable collects the distinct chains across every dependency
// certificate of a batch, in first-appearance order. Empty when no
// certificate carries a chain — the batch then takes the v1 form.
func batchChainTable(entries []BatchEntry) [][]types.Digest {
	var table [][]types.Digest
	for _, e := range entries {
		for _, d := range e.Deps {
			for _, ps := range d.Cert.Sigs {
				if ps.Chain == nil {
					continue
				}
				dup := false
				for _, ch := range table {
					if sameChain(ch, ps.Chain) {
						dup = true
						break
					}
				}
				if !dup {
					table = append(table, ps.Chain)
				}
			}
		}
	}
	return table
}

// batchChainIdx resolves a chain against the batch table. The interning
// cache hands every holder of one chain the same backing slice, so this is
// almost always a pointer compare per probe.
func batchChainIdx(table [][]types.Digest, chain []types.Digest) uint32 {
	for i, ch := range table {
		if sameChain(ch, chain) {
			return uint32(i)
		}
	}
	// Unreachable: the table was built from these certificates.
	return noChainIdx
}

// batchSize returns the exact encoded size of a batch, for exact-capacity
// preallocation: one undersized guess doubles the hot path's allocations.
// The size is of the same form appendBatch emits (v2 when any certificate
// carries a chain).
func batchSize(entries []BatchEntry) int {
	table := batchChainTable(entries)
	if !batchV2Eligible(table) {
		return batchSizeV1(entries)
	}
	return batchSizeV2(entries, table)
}

// batchV2Eligible reports whether a chain table selects the v2 form: at
// least one chain to intern, and few enough to satisfy the decoder's cap.
func batchV2Eligible(table [][]types.Digest) bool {
	return len(table) > 0 && len(table) <= maxDepSigs
}

func batchSizeV1(entries []BatchEntry) int {
	n := 4
	for _, e := range entries {
		n += types.PaymentWireSize + 4 + len(e.Sig) + 4
		for _, d := range e.Deps {
			n += dependencySize(d)
		}
	}
	return n
}

func batchSizeV2(entries []BatchEntry, table [][]types.Digest) int {
	n := 4 + 4 + 4 // marker, entry count, table length
	for _, ch := range table {
		n += wire.DigestListSize(len(ch))
	}
	for _, e := range entries {
		n += types.PaymentWireSize + 4 + len(e.Sig) + 4
		for _, d := range e.Deps {
			n += dependencySizeBatchRef(d)
		}
	}
	return n
}

// appendBatch writes the broadcast payload for a batch into w: the v2
// form when any dependency certificate carries a chain, the v1 form
// otherwise (and as the measured baseline via appendBatchV1).
func appendBatch(w *wire.Writer, entries []BatchEntry) {
	table := batchChainTable(entries)
	if !batchV2Eligible(table) {
		appendBatchV1(w, entries)
		return
	}
	appendBatchV2(w, entries, table)
}

func appendBatchV1(w *wire.Writer, entries []BatchEntry) {
	w.U32(uint32(len(entries)))
	for _, e := range entries {
		w.AppendFunc(e.Payment.AppendBinary)
		w.Chunk(e.Sig)
		w.U32(uint32(len(e.Deps)))
		for _, d := range e.Deps {
			encodeDependency(w, d)
		}
	}
}

func appendBatchV2(w *wire.Writer, entries []BatchEntry, table [][]types.Digest) {
	w.U32(batchV2Marker)
	w.U32(uint32(len(entries)))
	w.U32(uint32(len(table)))
	for _, ch := range table {
		appendDigestChain(w, ch)
	}
	for _, e := range entries {
		w.AppendFunc(e.Payment.AppendBinary)
		w.Chunk(e.Sig)
		w.U32(uint32(len(e.Deps)))
		for _, d := range e.Deps {
			encodeDependencyBatchRef(w, d, table)
		}
	}
}

// EncodeBatch produces the broadcast payload for a batch.
func EncodeBatch(entries []BatchEntry) []byte {
	table := batchChainTable(entries)
	if !batchV2Eligible(table) {
		w := wire.NewWriter(batchSizeV1(entries))
		appendBatchV1(w, entries)
		return w.Bytes()
	}
	w := wire.NewWriter(batchSizeV2(entries, table))
	appendBatchV2(w, entries, table)
	return w.Bytes()
}

// EncodeBatchV1 produces the legacy (pre-interning) broadcast payload —
// the measured baseline for the wire-cost comparison, and what older
// producers emit. Exported for tests and benchmarks.
func EncodeBatchV1(entries []BatchEntry) []byte {
	w := wire.NewWriter(batchSizeV1(entries))
	appendBatchV1(w, entries)
	return w.Bytes()
}

// DecodeBatch parses a broadcast payload.
func DecodeBatch(payload []byte) ([]BatchEntry, error) {
	r := wire.NewReader(payload)
	entries, err := readBatchEntries(r)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return entries, nil
}

// readBatchEntries consumes one batch encoding (appendBatch) from the
// middle of a larger stream — the WAL snapshot embeds per-account queues
// this way. Both forms are self-contained: the v2 marker (and its chain
// table) is read here, so a mid-stream batch never depends on outer
// context.
func readBatchEntries(r *wire.Reader) ([]BatchEntry, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var table [][]types.Digest
	if n == batchV2Marker {
		n = r.U32()
		nt := r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nt == 0 || nt > maxDepSigs {
			return nil, fmt.Errorf("batch: chain table of %d outside [1,%d]", nt, maxDepSigs)
		}
		table = make([][]types.Digest, nt)
		for i := range table {
			chain, err := decodeDigestChain(r)
			if err != nil {
				return nil, err
			}
			if len(chain) == 0 {
				return nil, fmt.Errorf("batch: empty chain in table")
			}
			table[i] = chain
		}
	}
	if n > maxBatch {
		return nil, fmt.Errorf("batch: %d entries exceeds cap", n)
	}
	entries := make([]BatchEntry, 0, n)
	for i := uint32(0); i < n; i++ {
		var e BatchEntry
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return nil, err
		}
		if err := e.Payment.UnmarshalBinary(raw); err != nil {
			return nil, err
		}
		if sig := r.Chunk(); len(sig) > 0 {
			e.Sig = sig
		}
		nd := r.U32()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if nd > maxBatch {
			return nil, fmt.Errorf("batch: %d deps exceeds cap", nd)
		}
		for j := uint32(0); j < nd; j++ {
			d, err := decodeDependency(r, table)
			if err != nil {
				return nil, err
			}
			e.Deps = append(e.Deps, d)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
