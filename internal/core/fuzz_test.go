package core

import (
	"reflect"
	"testing"

	"astro/internal/types"
	"astro/internal/wire"
)

// fuzzGroup is a small valid credit group shared by the seed corpora.
func fuzzGroup() []types.Payment {
	return []types.Payment{
		{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 10},
		{Spender: 1, Seq: 2, Beneficiary: 3, Amount: 5},
	}
}

func fuzzDependency() Dependency {
	return Dependency{
		Group: fuzzGroup(),
		Cert: DepCert{Sigs: []DepSig{
			{Replica: 0, Sig: []byte("sig-0")},
			{Replica: 2, Sig: []byte("sig-2"), Chain: []types.Digest{{0x01}, {0x02}}},
		}},
	}
}

// FuzzDecodeCreditChannel drives the full credit-channel payload decoder
// set — every wire generation: the legacy single-group CREDIT, the
// chain-signed CREDITBATCH, the interned CHAINDEF/REF/NACK forms, and the
// restart-time CREDITREDO. Invariant: no panic on arbitrary bytes, and
// the seeds (canonical encodings of each kind) must decode.
func FuzzDecodeCreditChannel(f *testing.F) {
	group := fuzzGroup()
	f.Add(encodeCredit(creditMsg{Signer: 1, Group: group, Sig: []byte("sig")}))
	f.Add(encodeCreditBatch(creditBatchMsg{
		Signer: 2,
		Chain:  []types.Digest{CreditGroupDigest(group)},
		Sig:    []byte("chain-sig"),
		Groups: []creditBatchGroup{{ChainIdx: 0, Group: group}},
	}))
	f.Add(encodeCreditChainDef([]types.Digest{{0x11}, {0x22}}))
	f.Add(encodeCreditRef(creditRefMsg{
		Signer:      3,
		ChainDigest: types.Digest{0x33},
		Sig:         []byte("ref-sig"),
		Groups:      []creditBatchGroup{{ChainIdx: 1, Group: group}},
	}))
	f.Add(encodeCreditNack(types.Digest{0x44}))
	f.Add(encodeCreditRedo([][]types.Payment{group, group[:1]}))
	// Adversarial seeds from the Byzantine encoders: digest-corrupted
	// chain forms, the NACK a hostile receiver answers a reference with,
	// and a NACK naming a chain that never existed.
	def := encodeCreditChainDef([]types.Digest{{0x11}, {0x22}})
	ref := encodeCreditRef(creditRefMsg{
		Signer:      3,
		ChainDigest: types.Digest{0x33},
		Sig:         []byte("ref-sig"),
		Groups:      []creditBatchGroup{{ChainIdx: 1, Group: group}},
	})
	if c, ok := CorruptCreditRefs(def, 0x5a); ok {
		f.Add(c)
	}
	if c, ok := CorruptCreditRefs(ref, 0x5a); ok {
		f.Add(c)
	}
	if n, ok := CreditNackFor(ref); ok {
		f.Add(n)
	}
	f.Add(EncodeCreditNack(types.HashBytes([]byte("never-existed"))))
	// PR 9: the lazy-definition demand exchange — the def+ref pair a
	// NACKed signer answers with (handleCreditNack), including a
	// full-length chain and a reference whose ChainIdx points past it.
	lazyChain := make([]types.Digest, creditChainCap)
	for i := range lazyChain {
		lazyChain[i] = types.HashBytes([]byte{byte(i)})
	}
	f.Add(encodeCreditChainDef(lazyChain))
	f.Add(encodeCreditRef(creditRefMsg{
		Signer:      0,
		ChainDigest: CreditChainDigest(lazyChain),
		Sig:         []byte("wave-sig"),
		Groups:      []creditBatchGroup{{ChainIdx: uint32(len(lazyChain)), Group: group}},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		body := data[1:]
		switch data[0] {
		case msgCreditSingle:
			if m, err := decodeCredit(body); err == nil {
				if len(m.Group) == 0 || len(m.Group) > maxGroup {
					t.Fatalf("accepted group size %d", len(m.Group))
				}
			}
		case msgCreditBatch:
			decodeCreditBatch(body)
		case msgCreditChainDef:
			decodeCreditChainDef(body)
		case msgCreditRef:
			decodeCreditRef(body)
		case msgCreditNack:
			decodeCreditNack(body)
		case msgCreditRedo:
			if groups, err := decodeCreditRedo(body); err == nil {
				if len(groups) == 0 || len(groups) > maxRedoGroups {
					t.Fatalf("accepted redo group count %d", len(groups))
				}
				for _, g := range groups {
					if len(g) == 0 || len(g) > maxGroup {
						t.Fatalf("accepted redo group size %d", len(g))
					}
				}
			}
		}
	})
}

// FuzzDecodeBatch feeds arbitrary bytes to the broadcast-payload decoder.
// A batch that decodes must re-encode and decode to the same entries —
// the batch encoding is canonical, and settlement replay depends on it.
func FuzzDecodeBatch(f *testing.F) {
	f.Add(EncodeBatch([]BatchEntry{
		{Payment: types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 7}},
		{Payment: types.Payment{Spender: 3, Seq: 4, Beneficiary: 1, Amount: 1},
			Sig: []byte("client-sig"), Deps: []Dependency{fuzzDependency()}},
	}))
	f.Add(EncodeBatch(nil))
	// PR 9 seeds: the same chained entries in both wire generations —
	// EncodeBatch takes the v2 (batch-wide chain table) form as soon as a
	// certificate carries a chain; the v1 form must stay decodable.
	shared := []BatchEntry{
		{Payment: types.Payment{Spender: 1, Seq: 2, Beneficiary: 2, Amount: 3},
			Deps: []Dependency{fuzzDependency(), fuzzDependency()}},
	}
	f.Add(EncodeBatch(shared))
	f.Add(EncodeBatchV1(shared))
	// Adversarial: a v2 marker with an empty chain table, and one whose
	// table count is past the cap.
	w := wire.NewWriter(12)
	w.U32(batchV2Marker)
	w.U32(0)
	w.U32(0)
	f.Add(w.Bytes())
	w = wire.NewWriter(12)
	w.U32(batchV2Marker)
	w.U32(0)
	w.U32(maxDepSigs + 1)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeBatch(data)
		if err != nil {
			return
		}
		again, err := DecodeBatch(EncodeBatch(entries))
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatal("batch round-trip diverged")
		}
	})
}

// FuzzDecodeDependency exercises the dependency-certificate decoder,
// covering both signature shapes (plain and chain-context).
func FuzzDecodeDependency(f *testing.F) {
	d := fuzzDependency()
	w := wire.NewWriter(dependencySize(d))
	encodeDependency(w, d)
	f.Add(w.Bytes())
	// PR 9 adversarial seed: the batch-ref certificate form, which is
	// only meaningful inside a v2 batch — standalone decoding (WAL
	// records, this harness) must reject it without panicking.
	var table [][]types.Digest
	for _, ps := range d.Cert.Sigs {
		if ps.Chain != nil {
			table = append(table, ps.Chain)
		}
	}
	w = wire.NewWriter(dependencySizeBatchRef(d))
	encodeDependencyBatchRef(w, d, table)
	f.Add(w.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		dep, err := decodeDependency(r, nil)
		if err != nil {
			return
		}
		if len(dep.Group) == 0 || len(dep.Group) > maxGroup {
			t.Fatalf("accepted group size %d", len(dep.Group))
		}
	})
}

// FuzzDecodeReplicaImage feeds arbitrary bytes to the WAL-snapshot / full
// state-transfer decoder. An image that decodes must survive an
// encode/decode round trip unchanged: recovery correctness rests on the
// snapshot being a faithful, canonical projection.
func FuzzDecodeReplicaImage(f *testing.F) {
	f.Add(encodeReplicaImage(testImage()))
	f.Add(encodeReplicaImage(replicaImage{
		pending:  map[uint64][]byte{},
		endorsed: map[types.PaymentID]types.Digest{},
		repDeps:  map[types.ClientID][]Dependency{},
	}))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := decodeReplicaImage(data)
		if err != nil {
			return
		}
		again, err := decodeReplicaImage(encodeReplicaImage(img))
		if err != nil {
			t.Fatalf("re-encoded image does not decode: %v", err)
		}
		if !reflect.DeepEqual(img, again) {
			t.Fatal("image round-trip diverged")
		}
	})
}

// FuzzDecodePaymentChannel drives the client-facing payment-channel
// decoders with the Byzantine-client attack corpus seeded in: forged and
// spoofed submits, replayed settled submissions, sequence-race probes
// (Seq 0, far-future Seq), and replica-bound control frames reflected
// back. Invariant: no panic on arbitrary bytes, decoded submits respect
// the submit frame grammar, and the stats snapshot round-trips.
func FuzzDecodePaymentChannel(f *testing.F) {
	honest := types.Payment{Spender: 7, Seq: 3, Beneficiary: 9, Amount: 25}
	f.Add(EncodeSubmit(honest, nil))
	f.Add(EncodeSubmit(honest, []byte("forged-signature")))                                       // forged client sig
	f.Add(EncodeSubmit(types.Payment{Spender: 8, Seq: 1, Beneficiary: 7, Amount: 1}, nil))       // spoofed spender
	f.Add(EncodeSubmit(types.Payment{Spender: 7, Seq: 0, Beneficiary: 9, Amount: 1}, nil))       // Seq 0 race
	f.Add(EncodeSubmit(types.Payment{Spender: 7, Seq: 1 << 40, Beneficiary: 9, Amount: 1}, nil)) // far-future Seq
	f.Add(EncodeSubmit(types.Payment{Spender: 7, Seq: 3, Beneficiary: 4, Amount: 999}, nil))     // equivocating resubmit
	f.Add(EncodeConfirm(honest.ID()))                                                            // reflected confirm
	f.Add(EncodeSeqReq(7))
	f.Add(EncodeBalanceReq(7))
	f.Add(EncodeStatsReq())
	f.Add(encodeBalanceResp(7, 100))
	f.Add(encodeSeqResp(7, 4))
	f.Add(encodeStatsResp(EdgeStats{BadSig: 1, Conflicting: 2, FutureSeq: 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		body := data[1:]
		switch data[0] {
		case msgSubmit:
			if p, sig, ok := decodeSubmit(body); ok {
				// A decoded submit must re-encode to the identical frame:
				// idempotent retry (and the settled-replay screen) depend on
				// the submit encoding being canonical.
				if again := encodeSubmit(p, sig); string(again[1:]) != string(body) {
					t.Fatal("submit round-trip diverged")
				}
			}
		case msgStatsResp:
			if s, ok := decodeStatsResp(body); ok {
				if again := encodeStatsResp(s); string(again[1:]) != string(body) {
					t.Fatal("stats round-trip diverged")
				}
			}
		}
	})
}

// FuzzDecodeManifest drives the two decoders the incremental (v2)
// snapshot rests on: the manifest image — a replicaImage whose xlog and
// account sections live beside it as per-account records in the KV store
// — and the per-account spill record itself. Invariants: no panic on
// arbitrary bytes, whatever decodes survives an encode/decode round trip
// unchanged, and a decoded manifest image never carries resident account
// state (restart must fault accounts from the store, not trust bytes
// smuggled into the manifest).
func FuzzDecodeManifest(f *testing.F) {
	img := testImage()
	img.manifest = true
	img.accounts = nil
	full := testImage()
	f.Add(encodeReplicaImage(img), encodeAccountExport(full.accounts[0]))
	f.Add(encodeReplicaImage(img), encodeAccountExport(full.accounts[1]))
	f.Add(encodeReplicaImage(replicaImage{
		manifest: true,
		pending:  map[uint64][]byte{},
		endorsed: map[types.PaymentID]types.Digest{},
		repDeps:  map[types.ClientID][]Dependency{},
	}), encodeAccountExport(AccountExport{Client: 1}))

	f.Fuzz(func(t *testing.T, imgData, recData []byte) {
		if m, err := decodeReplicaImage(imgData); err == nil {
			if m.manifest && len(m.accounts) != 0 {
				t.Fatal("manifest image decoded with resident accounts")
			}
			again, err := decodeReplicaImage(encodeReplicaImage(m))
			if err != nil {
				t.Fatalf("re-encoded image does not decode: %v", err)
			}
			if !reflect.DeepEqual(m, again) {
				t.Fatal("manifest image round-trip diverged")
			}
		}
		if ex, err := decodeAccountExport(recData); err == nil {
			again, err := decodeAccountExport(encodeAccountExport(ex))
			if err != nil {
				t.Fatalf("re-encoded account record does not decode: %v", err)
			}
			if !reflect.DeepEqual(ex, again) {
				t.Fatal("account record round-trip diverged")
			}
		}
	})
}
