package core

// PR 5 evidence benchmarks: settlement fan-out on pinned stripe lanes
// (persistent sched flows, zero goroutines per delivery) vs the PR 3
// spawn-per-delivery baseline (Config.SettleSpawn). The workload is one
// delivered batch touching every stripe — the worst case for fan-out
// overhead, since the per-stripe work is small relative to scheduling.
// On one core the two must hold parity; on multi-core the lanes win by
// goroutine-churn elimination and stripe→lane cache affinity.
//
// Regenerate BENCH_PR5.json with `make bench-pr5`.

import (
	"testing"

	"astro/internal/types"
)

func benchSettleFanout(b *testing.B, spawn bool) {
	r := newSettleReplica(b, DefaultStateStripes, spawn)
	const nClients = 64
	entries := make([]BatchEntry, nClients)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < nClients; c++ {
			entries[c] = BatchEntry{Payment: types.Payment{
				Spender:     types.ClientID(c + 1),
				Seq:         types.Seq(i + 1),
				Beneficiary: types.ClientID((c+1)%nClients + 1),
				Amount:      1,
			}}
		}
		if got := len(r.settleEntries(entries)); got != nClients {
			b.Fatalf("settled %d of %d", got, nClients)
		}
	}
	b.ReportMetric(float64(b.N*nClients), "payments")
}

func BenchmarkSettleFanoutLanes(b *testing.B) { benchSettleFanout(b, false) }
func BenchmarkSettleFanoutSpawn(b *testing.B) { benchSettleFanout(b, true) }
