package core

// Regression tests for the two robustness items found while verifying the
// PR 1 pipeline (ROADMAP "Robustness"): a conflicting resubmission for an
// already-settled sequence number must not wedge the representative, and
// a restarted (stateless) client must be able to resynchronize its
// sequence counter.

import (
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

// TestConflictingResubmissionDoesNotWedgeRepresentative: client 1 settles
// seq 1, then resubmits a DIFFERENT payment under the same identifier.
// Peers would refuse to endorse any batch containing it (double-spend
// protection), so before the pre-screen the refused batch occupied a BRB
// slot that never delivered and per-origin FIFO blocked every later batch
// from this representative — including other clients' payments. With the
// pre-screen the doomed payment is rejected locally and client 5 (same
// representative) keeps settling.
func TestConflictingResubmissionDoesNotWedgeRepresentative(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		cl1 := NewClient(1, c.repOf, mux) // clients 1 and 5 share replica 1
		c.payAndWait(cl1, 2, 10)          // seq 1 settles

		// Conflicting resubmission for the settled seq 1.
		conflict := types.Payment{Spender: 1, Seq: 1, Beneficiary: 3, Amount: 99}
		rep := transport.ReplicaNode(c.repOf(1))
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(conflict, nil)); err != nil {
			t.Fatal(err)
		}

		// A different client of the same representative must still settle.
		c.payAndWait(c.client(5), 2, 5)

		// And the conflicting payment must not have rewritten history.
		for i, r := range c.replicas {
			log := r.XLogSnapshot(1)
			if len(log) != 1 || log[0].Beneficiary != 2 || log[0].Amount != 10 {
				t.Fatalf("replica %d xlog for client 1 = %v", i, log)
			}
		}
	})
}

// TestIdenticalResubmissionResendsConfirmation: a client retrying a
// payment whose confirmation was lost gets a fresh confirmation straight
// from the representative's xlog — no broadcast slot is spent on it.
func TestIdenticalResubmissionResendsConfirmation(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		cl := NewClient(1, c.repOf, mux)

		p := types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 10}
		rep := transport.ReplicaNode(c.repOf(1))
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(p, nil)); err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitConfirm(p.ID(), 10*time.Second); err != nil {
			t.Fatalf("first submission: %v", err)
		}
		before := c.replicas[int(c.repOf(1))].SettledCount()

		// Identical retry: confirmed again, without new settlement work.
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(p, nil)); err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitConfirm(p.ID(), 10*time.Second); err != nil {
			t.Fatalf("retried submission not re-confirmed: %v", err)
		}
		if after := c.replicas[int(c.repOf(1))].SettledCount(); after != before {
			t.Fatalf("retry caused %d new settles", after-before)
		}
	})
}

// TestSeqZeroSubmissionIgnored: a malformed (or malicious) submission
// with sequence number 0 must be dropped, not crash the replica — Seq 0
// used to drive an At(-1) xlog lookup in the pre-screen.
func TestSeqZeroSubmissionIgnored(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		cl := NewClient(1, c.repOf, mux)

		bad := types.Payment{Spender: 1, Seq: 0, Beneficiary: 2, Amount: 10}
		rep := transport.ReplicaNode(c.repOf(1))
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(bad, nil)); err != nil {
			t.Fatal(err)
		}
		// The replica must survive and keep serving this client.
		c.payAndWait(cl, 2, 5)
		if got := c.replicas[int(c.repOf(1))].SettledCount(); got != 1 {
			t.Fatalf("settled = %d, want 1 (Seq 0 must not settle)", got)
		}
	})
}

// TestHugeSeqSubmissionIgnored: a submission whose sequence number
// exceeds int range must be dropped, not crash the replica — a huge Seq
// converted to int before the bounds check would wrap negative and index
// below the xlog in the pre-screen's SettledAt lookup.
func TestHugeSeqSubmissionIgnored(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		cl := NewClient(1, c.repOf, mux)

		bad := types.Payment{Spender: 1, Seq: 1 << 63, Beneficiary: 2, Amount: 10}
		rep := transport.ReplicaNode(c.repOf(1))
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(bad, nil)); err != nil {
			t.Fatal(err)
		}
		// The replica must survive and keep serving this client.
		c.payAndWait(cl, 2, 5)
	})
}

// TestSyncSeqCoversHeldSubmissions: a sequence number still in a
// pre-settlement stage (here: held at the representative awaiting funds)
// must not be handed out again by a resync — the restarted client would
// otherwise submit a conflicting payment for it and recreate the wedge.
func TestSyncSeqCoversHeldSubmissions(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 20 })
	cl := c.client(1)
	// Underfunded: held in pendingSubmits indefinitely, never endorsed.
	if _, err := cl.Pay(2, 500); err != nil {
		t.Fatal(err)
	}
	rep := c.replicas[int(c.repOf(1))]
	deadline := time.Now().Add(5 * time.Second)
	for rep.PendingSubmits(1) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("submission never reached the held queue")
		}
		time.Sleep(time.Millisecond)
	}

	restarted := NewClient(1, c.repOf, transport.NewMux(c.net.Node(transport.ClientNode(1))))
	next, err := restarted.SyncSeq(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if next != 2 {
		t.Fatalf("SyncSeq = %d, want 2 (seq 1 is held in flight)", next)
	}
}

// TestClientSyncSeqAfterRestart: a fresh client process (sequence counter
// back at 1) adopts the replica's next usable sequence number and can
// settle payments again, instead of silently reusing settled identifiers.
func TestClientSyncSeqAfterRestart(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		cl := c.client(1)
		c.payAndWait(cl, 2, 5)
		c.payAndWait(cl, 3, 5)

		// "Restart": a brand-new client on the same endpoint, nextSeq = 1.
		restarted := NewClient(1, c.repOf, transport.NewMux(c.net.Node(transport.ClientNode(1))))
		next, err := restarted.SyncSeq(5 * time.Second)
		if err != nil {
			t.Fatalf("SyncSeq: %v", err)
		}
		if next != 3 {
			t.Fatalf("SyncSeq = %d, want 3 (two payments settled)", next)
		}
		c.payAndWait(restarted, 2, 7)
		c.waitSettledEverywhere(3, 5*time.Second) // confirm precedes remote settles
		for i, r := range c.replicas {
			if got := r.NextSeq(1); got != 4 {
				t.Fatalf("replica %d NextSeq = %d, want 4", i, got)
			}
		}
	})
}
