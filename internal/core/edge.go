package core

// Client-edge hardening: every hostile frame class a Byzantine client can
// aim at a representative is rejected on a cheap path, and each rejection
// increments a per-replica counter so deployments (and the chaos suite)
// can see an attack engaging without grepping logs.
//
// The boundedness argument, per hostile frame:
//
//   - malformed / spoofed / wrong-rep / seq-zero frames: one decode and a
//     couple of map-free comparisons — O(frame) and no state growth;
//   - forged client signatures: one pooled ECDSA verify (the same memo
//     cache the honest path uses), no state growth;
//   - replays of settled payments: one striped SettledAt lookup; the
//     byte-identical case costs one confirmation resend (which the
//     retrying correct client needs anyway);
//   - conflicting / equivocating resubmissions: one endorsement-memory
//     lookup, refused before they occupy a broadcast slot
//     (preScreenSubmit, the anti-wedge screen);
//   - far-future sequence numbers: refused beyond NextSeq + maxSeqWindow,
//     so the settlement queue a hostile client can strand (payments
//     parked behind a gap that will never fill) is capped at maxSeqWindow
//     entries per client — the window is anchored at the *settled* next
//     sequence, which only advances through gap-free settlement, so the
//     cap cannot be ratcheted upward by further hostile submissions;
//   - unfunded submit floods: the per-client hold queue (Astro II
//     projected-balance holds) is capped at maxHeldSubmits; beyond it the
//     newest submission is shed — a correct client retries after its
//     in-flight payments settle, exactly as it would after a lost frame;
//   - hostile CREDIT/NACK/REDO traffic from client nodes: dropped by the
//     sender-class check before any decode.
//
// Counters are replica-wide (not per-client maps) so the accounting
// itself cannot become the memory amplifier.

import (
	"sync/atomic"

	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Stats message kinds on the payment channel: any node may ask a replica
// for its edge-rejection counters; the answer is a fixed-size frame.
const (
	msgStatsReq  byte = 7 // client/operator -> replica: edge stats query
	msgStatsResp byte = 8 // replica -> requester: EdgeStats snapshot
)

// maxSeqWindow bounds how far beyond a client's settled next sequence
// number a submission may reach. Correct clients assign sequence numbers
// densely (SyncSeq resumes from nextUsableSeq, which trails this bound by
// the in-flight pipeline depth), so only an attacker manufacturing gaps
// is affected.
const maxSeqWindow = 1 << 12

// maxHeldSubmits caps the Astro II per-client hold queue (submissions
// waiting for funding). Beyond it, new submissions are shed and counted.
// Strictly smaller than maxSeqWindow: the hold queue models a transient
// funding gap a few payments deep, while the window bounds the whole
// in-flight sequence range, so the cap must bind first.
const maxHeldSubmits = 1 << 10

// EdgeStats is a snapshot of the hostile-traffic rejection counters at a
// replica's client edge. Every counter is monotone; a live attack shows
// as a climbing counter while the invariant auditor stays clean.
type EdgeStats struct {
	Malformed      uint64 // undecodable or short payment-channel frames
	Spoofed        uint64 // submit whose spender is not the sending node
	WrongRep       uint64 // submit for a client this replica does not represent
	BadSig         uint64 // client-auth signature failures (forged payments)
	SeqZero        uint64 // submissions with the never-settleable Seq 0
	FutureSeq      uint64 // submissions beyond the sequence window
	SettledReplay  uint64 // byte-identical resubmits of settled payments
	Conflicting    uint64 // double-spend/equivocating resubmissions refused
	HeldOverflow   uint64 // unfunded submissions shed by the hold-queue cap
	CreditOutsider uint64 // credit-channel frames from non-replica senders
}

// Add accumulates another snapshot — fleet-wide summaries aggregate the
// per-replica counters with it.
func (s *EdgeStats) Add(o EdgeStats) {
	s.Malformed += o.Malformed
	s.Spoofed += o.Spoofed
	s.WrongRep += o.WrongRep
	s.BadSig += o.BadSig
	s.SeqZero += o.SeqZero
	s.FutureSeq += o.FutureSeq
	s.SettledReplay += o.SettledReplay
	s.Conflicting += o.Conflicting
	s.HeldOverflow += o.HeldOverflow
	s.CreditOutsider += o.CreditOutsider
}

// Total sums every rejection class (Sent-style engagement probe).
func (s EdgeStats) Total() uint64 {
	return s.Malformed + s.Spoofed + s.WrongRep + s.BadSig + s.SeqZero +
		s.FutureSeq + s.SettledReplay + s.Conflicting + s.HeldOverflow +
		s.CreditOutsider
}

// edgeCounters is the live, atomically-updated form embedded in Replica.
type edgeCounters struct {
	malformed      atomic.Uint64
	spoofed        atomic.Uint64
	wrongRep       atomic.Uint64
	badSig         atomic.Uint64
	seqZero        atomic.Uint64
	futureSeq      atomic.Uint64
	settledReplay  atomic.Uint64
	conflicting    atomic.Uint64
	heldOverflow   atomic.Uint64
	creditOutsider atomic.Uint64
}

func (e *edgeCounters) snapshot() EdgeStats {
	return EdgeStats{
		Malformed:      e.malformed.Load(),
		Spoofed:        e.spoofed.Load(),
		WrongRep:       e.wrongRep.Load(),
		BadSig:         e.badSig.Load(),
		SeqZero:        e.seqZero.Load(),
		FutureSeq:      e.futureSeq.Load(),
		SettledReplay:  e.settledReplay.Load(),
		Conflicting:    e.conflicting.Load(),
		HeldOverflow:   e.heldOverflow.Load(),
		CreditOutsider: e.creditOutsider.Load(),
	}
}

// EdgeStats returns the replica's hostile-traffic rejection counters.
func (r *Replica) EdgeStats() EdgeStats { return r.edge.snapshot() }

const statsRespSize = 1 + 10*8

func encodeStatsReq() []byte {
	return []byte{msgStatsReq}
}

func encodeStatsResp(s EdgeStats) []byte {
	w := wire.NewWriter(statsRespSize)
	w.U8(msgStatsResp)
	for _, v := range [...]uint64{
		s.Malformed, s.Spoofed, s.WrongRep, s.BadSig, s.SeqZero,
		s.FutureSeq, s.SettledReplay, s.Conflicting, s.HeldOverflow,
		s.CreditOutsider,
	} {
		w.U64(v)
	}
	return w.Bytes()
}

// decodeStatsResp parses a stats response after its kind byte.
func decodeStatsResp(payload []byte) (EdgeStats, bool) {
	var s EdgeStats
	r := wire.NewReader(payload)
	fields := [...]*uint64{
		&s.Malformed, &s.Spoofed, &s.WrongRep, &s.BadSig, &s.SeqZero,
		&s.FutureSeq, &s.SettledReplay, &s.Conflicting, &s.HeldOverflow,
		&s.CreditOutsider,
	}
	for _, f := range fields {
		*f = r.U64()
	}
	return s, r.Finish() == nil
}

// handleStatsReq answers a stats query from any node — the response is a
// fixed-size snapshot of ten atomics, so the query itself cannot be used
// as an amplification vector.
func (r *Replica) handleStatsReq(from transport.NodeID) {
	_ = r.cfg.Mux.Send(from, transport.ChanPayment, encodeStatsResp(r.edge.snapshot()))
}

// withinSeqWindow applies the far-future guard. Anchoring at the settled
// NextSeq (not submittedHi) is what makes the strandable-queue bound
// non-ratchetable; see the package comment.
func (r *Replica) withinSeqWindow(p types.Payment) bool {
	return p.Seq <= r.state.NextSeq(p.Spender)+maxSeqWindow
}
