package core

import (
	"errors"
	"fmt"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/types"
	"astro/internal/wire"
)

// Astro II replaces direct beneficiary crediting with dependencies (paper
// §IV-A, §V, Listings 7–10): when a replica settles a payment, it unicasts
// a signed CREDIT message to the beneficiary's representative. f+1 matching
// CREDIT messages form a dependency certificate — proof that the payment
// was approved by at least one correct replica of the spender's shard.
// The certificate is attached to the beneficiary's next outgoing payment
// and materializes into balance when that payment settles.
//
// Following the paper's two-level batching (§VI-A), CREDIT messages carry a
// *group* of payments whose beneficiaries share the same representative,
// with a single signature over the group digest — one signature per
// sub-batch rather than per payment.

// CreditGroupDigest computes the digest signed in CREDIT messages: a
// domain-separated hash over the canonical encoding of the group.
func CreditGroupDigest(group []types.Payment) types.Digest {
	w := wire.AcquireWriter(5 + len(group)*types.PaymentWireSize)
	defer w.Release()
	w.U8(0x43) // domain: credit-group
	w.U32(uint32(len(group)))
	for _, p := range group {
		w.AppendFunc(p.AppendBinary)
	}
	return types.HashBytes(w.Bytes())
}

// Dependency is a credit group together with a certificate of at least
// f+1 signatures over its digest by replicas of the spender's shard. It is
// transferable: any shard can verify it against the global key registry
// and the public shard assignment.
type Dependency struct {
	Group []types.Payment
	Cert  crypto.Certificate
}

// Value returns the total amount the dependency credits to client c.
// A single group may credit several clients of the same representative;
// each extracts only its own payments.
func (d Dependency) Value(c types.ClientID) types.Amount {
	var sum types.Amount
	for _, p := range d.Group {
		if p.Beneficiary == c {
			sum += p.Amount
		}
	}
	return sum
}

// Errors from dependency verification.
var (
	ErrDepEmpty      = errors.New("dependency: empty group")
	ErrDepMixedShard = errors.New("dependency: spenders from different shards")
)

// VerifyDependency checks that the dependency's certificate carries at
// least f+1 valid signatures from replicas of the (single) shard all the
// group's spenders belong to.
//
// When ver is non-nil the certificate check runs through its memo cache,
// inline on the caller (no pool blocking, so it is safe from worker
// callbacks and lock-holding contexts alike); a dependency whose CREDIT
// signatures this replica already verified costs hashes, not ECDSA. A nil
// ver falls back to the plain serial checker. The payment engine screens
// dependencies on the delivery path *before* taking its state lock
// (Replica.screenDependencies), fanning these checks across the pool.
func VerifyDependency(
	d Dependency,
	ver *verifier.Verifier,
	reg *crypto.Registry,
	f int,
	shardOf func(types.ClientID) types.ShardID,
	replicaShard func(types.ReplicaID) types.ShardID,
) error {
	if len(d.Group) == 0 {
		return ErrDepEmpty
	}
	shard := shardOf(d.Group[0].Spender)
	for _, p := range d.Group[1:] {
		if shardOf(p.Spender) != shard {
			return ErrDepMixedShard
		}
	}
	digest := CreditGroupDigest(d.Group)
	member := func(r types.ReplicaID) bool { return replicaShard(r) == shard }
	var err error
	if ver != nil {
		err = ver.VerifyCertificateInline(reg, d.Cert, digest, f+1, member)
	} else {
		err = crypto.VerifyCertificate(reg, d.Cert, digest, f+1, member)
	}
	if err != nil {
		return fmt.Errorf("dependency: %w", err)
	}
	return nil
}

// dependencySize returns the exact encoded size of a dependency.
func dependencySize(d Dependency) int {
	return 4 + len(d.Group)*types.PaymentWireSize + crypto.CertificateSize(d.Cert)
}

// encodeDependency appends the dependency's wire form.
func encodeDependency(w *wire.Writer, d Dependency) {
	w.U32(uint32(len(d.Group)))
	for _, p := range d.Group {
		w.AppendFunc(p.AppendBinary)
	}
	crypto.EncodeCertificate(w, d.Cert)
}

// maxGroup bounds decoded group sizes (defense against hostile input).
const maxGroup = 1 << 16

func decodeDependency(r *wire.Reader) (Dependency, error) {
	var d Dependency
	n := r.U32()
	if err := r.Err(); err != nil {
		return d, err
	}
	if n == 0 || n > maxGroup {
		return d, fmt.Errorf("dependency: bad group size %d", n)
	}
	d.Group = make([]types.Payment, n)
	for i := range d.Group {
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return d, err
		}
		if err := d.Group[i].UnmarshalBinary(raw); err != nil {
			return d, err
		}
	}
	cert, err := crypto.DecodeCertificate(r)
	if err != nil {
		return d, err
	}
	d.Cert = cert
	return d, nil
}
