package core

import (
	"errors"
	"fmt"
	"slices"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/types"
	"astro/internal/wire"
)

// Astro II replaces direct beneficiary crediting with dependencies (paper
// §IV-A, §V, Listings 7–10): when a replica settles a payment, it unicasts
// a signed CREDIT message to the beneficiary's representative. f+1 matching
// CREDIT messages form a dependency certificate — proof that the payment
// was approved by at least one correct replica of the spender's shard.
// The certificate is attached to the beneficiary's next outgoing payment
// and materializes into balance when that payment settles.
//
// Following the paper's two-level batching (§VI-A), CREDIT messages carry a
// *group* of payments whose beneficiaries share the same representative,
// with a single signature over the group digest — one signature per
// sub-batch rather than per payment. On top of that, a settling replica
// whose ECDSA is busy collapses the credit groups of a whole settlement
// wave into ONE signature over a hash chain of group digests (the CREDIT
// analogue of the BRB ack chains, scheduled by the same
// verifier.ChainSigner): such a signature endorses a group only if the
// group's digest appears in its chain, and it rides inside dependency
// certificates as DepSig.Chain.

// CreditGroupDigest computes the digest signed in CREDIT messages: a
// domain-separated hash over the canonical encoding of the group.
func CreditGroupDigest(group []types.Payment) types.Digest {
	w := wire.AcquireWriter(5 + len(group)*types.PaymentWireSize)
	defer w.Release()
	w.U8(0x43) // domain: credit-group
	w.U32(uint32(len(group)))
	for _, p := range group {
		w.AppendFunc(p.AppendBinary)
	}
	return types.HashBytes(w.Bytes())
}

// CreditChainDomain separates chain signatures over credit-group digests
// from every other signed value in the system (0x43 credit groups, 0x44
// BRB ack chains, 0x45 client payments).
const CreditChainDomain = 0x46

// CreditChainDigest computes the digest a replica signs for a whole
// settlement wave of credit groups: a domain-separated hash over the
// ordered chain of group digests.
func CreditChainDigest(chain []types.Digest) types.Digest {
	return verifier.ChainDigest(CreditChainDomain, chain)
}

// DepSig is one signature of a dependency certificate. Chain nil means the
// signature covers the group's own digest (the single-group wire form);
// otherwise it covers CreditChainDigest(Chain), and it endorses a group
// only if that group's digest appears in the chain.
type DepSig struct {
	Replica types.ReplicaID
	Sig     []byte
	Chain   []types.Digest
}

// DepCert is a set of CREDIT signatures for one group, possibly mixing
// single-group and chain signatures. It generalizes crypto.Certificate;
// an all-single-group certificate keeps a certificate-shaped compact
// encoding (no per-signature chain field) behind the depCertPlain kind
// byte.
type DepCert struct {
	Sigs []DepSig
}

// Len returns the number of signatures gathered.
func (c DepCert) Len() int { return len(c.Sigs) }

// Has reports whether the certificate already carries a signature by r.
func (c DepCert) Has(r types.ReplicaID) bool {
	for _, s := range c.Sigs {
		if s.Replica == r {
			return true
		}
	}
	return false
}

// allPlain reports whether every signature is single-group, i.e. the
// certificate can take the legacy crypto.Certificate wire form.
func (c DepCert) allPlain() bool {
	for _, s := range c.Sigs {
		if s.Chain != nil {
			return false
		}
	}
	return true
}

// Dependency is a credit group together with a certificate of at least
// f+1 signatures endorsing its digest by replicas of the spender's shard.
// It is transferable: any shard can verify it against the global key
// registry and the public shard assignment.
type Dependency struct {
	Group []types.Payment
	Cert  DepCert
}

// Value returns the total amount the dependency credits to client c.
// A single group may credit several clients of the same representative;
// each extracts only its own payments.
func (d Dependency) Value(c types.ClientID) types.Amount {
	var sum types.Amount
	for _, p := range d.Group {
		if p.Beneficiary == c {
			sum += p.Amount
		}
	}
	return sum
}

// Errors from dependency verification.
var (
	ErrDepEmpty      = errors.New("dependency: empty group")
	ErrDepMixedShard = errors.New("dependency: spenders from different shards")
)

// VerifyDependency checks that the dependency's certificate carries at
// least f+1 valid endorsements of the group from distinct replicas of the
// (single) shard all the group's spenders belong to. A chain signature
// endorses the group only if the group digest appears in its chain; its
// ECDSA verifies against the chain digest, so — through ver's memo — the
// k dependencies of one settlement wave cost one verification per signer,
// not k.
//
// When ver is non-nil the signature checks run through its memo cache,
// inline on the caller (no pool blocking, so it is safe from worker
// callbacks and lock-holding contexts alike). A nil ver falls back to the
// plain registry check. The payment engine screens dependencies on the
// delivery path *before* taking any stripe lock
// (Replica.screenDependencies), fanning these checks across the pool.
func VerifyDependency(
	d Dependency,
	ver *verifier.Verifier,
	reg *crypto.Registry,
	f int,
	shardOf func(types.ClientID) types.ShardID,
	replicaShard func(types.ReplicaID) types.ShardID,
) error {
	if len(d.Group) == 0 {
		return ErrDepEmpty
	}
	shard := shardOf(d.Group[0].Spender)
	for _, p := range d.Group[1:] {
		if shardOf(p.Spender) != shard {
			return ErrDepMixedShard
		}
	}
	need := f + 1
	if d.Cert.Len() < need {
		return fmt.Errorf("dependency: %w: have %d, need %d", crypto.ErrCertTooSmall, d.Cert.Len(), need)
	}
	digest := CreditGroupDigest(d.Group)
	seen := make(map[types.ReplicaID]struct{}, len(d.Cert.Sigs))
	valid := 0
	for _, ps := range d.Cert.Sigs {
		if _, dup := seen[ps.Replica]; dup {
			return fmt.Errorf("dependency: %w: replica %d", crypto.ErrCertDuplicate, ps.Replica)
		}
		seen[ps.Replica] = struct{}{}
		if replicaShard(ps.Replica) != shard {
			continue // signer outside the spenders' shard: no endorsement
		}
		dg := digest
		if ps.Chain != nil {
			if !slices.Contains(ps.Chain, digest) {
				continue // chain does not endorse this group
			}
			dg = CreditChainDigest(ps.Chain)
		}
		ok := false
		if ver != nil {
			ok = ver.VerifyReplica(reg, ps.Replica, dg, ps.Sig)
		} else {
			ok = reg.VerifySig(ps.Replica, dg, ps.Sig)
		}
		if ok {
			valid++
			if valid >= need {
				return nil
			}
		}
	}
	return fmt.Errorf("dependency: %w: %d valid of %d needed", crypto.ErrCertTooSmall, valid, need)
}

// Dependency wire form: the group, then a certificate-kind byte selecting
// the compact all-plain encoding (crypto.Certificate's shape: no chain
// fields), the extended per-signature chain form, or — PR 4 — the
// interned form, which factors the certificate's distinct chains into a
// table encoded once and has each signature reference its chain by table
// index. Settlement waves are deterministic per delivery (postSettle
// enqueues groups in representative order over replica-deterministic
// settle results), so when replicas' wave boundaries align the k signers
// of a certificate sign byte-identical chains and the table holds ONE
// chain where the extended form repeated it k times. PR 9 lifts the table
// one level further: inside a v2 batch (batch.go) the table is
// batch-wide, and batch-ref certificates index into it — the many
// dependencies of one settlement wave attached across a batch's entries
// then share ONE copy of each chain per batch, not one per certificate.
// The kind bytes are wire revisions (PR 3 introduced the byte, PR 4 the
// interned kind, PR 9 the batch-ref kind) — every node of a deployment
// must run a build that understands them; the older forms remain
// decodable.
const (
	depCertPlain    byte = 0
	depCertExtended byte = 1
	depCertInterned byte = 2
	depCertBatchRef byte = 3
)

// noChainIdx marks a single-group (chain-less) signature in the interned
// certificate form.
const noChainIdx = ^uint32(0)

// sameChain reports chain equality with a pointer fast path: the chain
// interning cache (creditref.go) hands every DepSig of one signer the same
// backing slice, so most table hits compare one address.
func sameChain(a, b []types.Digest) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) > 0 && &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

// depChainTable collects the certificate's distinct chains, and each
// signature's index into the table (noChainIdx for plain signatures).
// Certificates are small (f+1-ish signatures, chains interned to shared
// backings), so the dedup scan is a handful of pointer compares.
func depChainTable(c DepCert) (table [][]types.Digest, idx []uint32) {
	idx = make([]uint32, len(c.Sigs))
	for i, ps := range c.Sigs {
		if ps.Chain == nil {
			idx[i] = noChainIdx
			continue
		}
		found := -1
		for t, ch := range table {
			if sameChain(ch, ps.Chain) {
				found = t
				break
			}
		}
		if found < 0 {
			found = len(table)
			table = append(table, ps.Chain)
		}
		idx[i] = uint32(found)
	}
	return table, idx
}

// depChainTableBytes is the sizing-pass companion of depChainTable: the
// encoded size of the distinct-chain table, computed without allocating
// the per-signature index slice (exact-capacity encoding is two-pass
// everywhere in this package — see batchSize — so the dedup scan runs in
// both passes; this keeps the sizing pass allocation-free for up to eight
// distinct chains).
func depChainTableBytes(c DepCert) (n int) {
	var stack [8][]types.Digest
	table := stack[:0]
	for _, ps := range c.Sigs {
		if ps.Chain == nil {
			continue
		}
		dup := false
		for _, ch := range table {
			if sameChain(ch, ps.Chain) {
				dup = true
				break
			}
		}
		if !dup {
			table = append(table, ps.Chain)
			n += wire.DigestListSize(len(ps.Chain))
		}
	}
	return n
}

// maxDepSigs bounds decoded certificate sizes (mirrors crypto's
// maxCertSigs): no deployment here exceeds a few hundred replicas, and a
// hostile count must not drive a large pre-allocation.
const maxDepSigs = 4096

// maxCreditChain bounds decoded chain lengths (defense against hostile
// input); far above any settlement wave the credit signer accumulates.
const maxCreditChain = 1024

// dependencySize returns the exact encoded size of a dependency.
func dependencySize(d Dependency) int {
	n := 4 + len(d.Group)*types.PaymentWireSize + 1
	if d.Cert.allPlain() {
		n += 4
		for _, ps := range d.Cert.Sigs {
			n += 8 + len(ps.Sig)
		}
		return n
	}
	n += 4 + depChainTableBytes(d.Cert)
	n += 4
	for _, ps := range d.Cert.Sigs {
		n += 4 + 4 + len(ps.Sig) + 4
	}
	return n
}

// encodeDependency appends the dependency's wire form.
func encodeDependency(w *wire.Writer, d Dependency) {
	w.U32(uint32(len(d.Group)))
	for _, p := range d.Group {
		w.AppendFunc(p.AppendBinary)
	}
	if d.Cert.allPlain() {
		w.U8(depCertPlain)
		w.U32(uint32(len(d.Cert.Sigs)))
		for _, ps := range d.Cert.Sigs {
			w.U32(uint32(ps.Replica))
			w.Chunk(ps.Sig)
		}
		return
	}
	table, idx := depChainTable(d.Cert)
	w.U8(depCertInterned)
	w.U32(uint32(len(table)))
	for _, ch := range table {
		appendDigestChain(w, ch)
	}
	w.U32(uint32(len(d.Cert.Sigs)))
	for i, ps := range d.Cert.Sigs {
		w.U32(uint32(ps.Replica))
		w.Chunk(ps.Sig)
		w.U32(idx[i])
	}
}

// dependencySizeBatchRef is dependencySize for the batch-ref form: chains
// live in the surrounding batch's table, so a chained certificate costs
// one index per signature and nothing per chain.
func dependencySizeBatchRef(d Dependency) int {
	n := 4 + len(d.Group)*types.PaymentWireSize + 1
	if d.Cert.allPlain() {
		n += 4
		for _, ps := range d.Cert.Sigs {
			n += 8 + len(ps.Sig)
		}
		return n
	}
	n += 4
	for _, ps := range d.Cert.Sigs {
		n += 4 + 4 + len(ps.Sig) + 4
	}
	return n
}

// encodeDependencyBatchRef appends the dependency inside a v2 batch:
// all-plain certificates keep the compact plain form, chained ones take
// the batch-ref kind with indices into the batch's table.
func encodeDependencyBatchRef(w *wire.Writer, d Dependency, table [][]types.Digest) {
	w.U32(uint32(len(d.Group)))
	for _, p := range d.Group {
		w.AppendFunc(p.AppendBinary)
	}
	if d.Cert.allPlain() {
		w.U8(depCertPlain)
		w.U32(uint32(len(d.Cert.Sigs)))
		for _, ps := range d.Cert.Sigs {
			w.U32(uint32(ps.Replica))
			w.Chunk(ps.Sig)
		}
		return
	}
	w.U8(depCertBatchRef)
	w.U32(uint32(len(d.Cert.Sigs)))
	for _, ps := range d.Cert.Sigs {
		w.U32(uint32(ps.Replica))
		w.Chunk(ps.Sig)
		if ps.Chain == nil {
			w.U32(noChainIdx)
		} else {
			w.U32(batchChainIdx(table, ps.Chain))
		}
	}
}

// appendDigestChain and decodeDigestChain are the credit-side digest-list
// codec: the shared wire layout with the credit chain-length cap applied.
func appendDigestChain(w *wire.Writer, chain []types.Digest) {
	wire.AppendDigestList(w, chain)
}

func decodeDigestChain(r *wire.Reader) ([]types.Digest, error) {
	return wire.ReadDigestList[types.Digest](r, maxCreditChain)
}

// maxGroup bounds decoded group sizes (defense against hostile input).
const maxGroup = 1 << 16

// decodeDependency parses one dependency. table is the surrounding v2
// batch's chain table for batch-ref certificates; nil outside a v2 batch
// (standalone dependency records, v1 batches), where the batch-ref kind is
// rejected — it has nothing to reference.
func decodeDependency(r *wire.Reader, table [][]types.Digest) (Dependency, error) {
	var d Dependency
	n := r.U32()
	if err := r.Err(); err != nil {
		return d, err
	}
	if n == 0 || n > maxGroup {
		return d, fmt.Errorf("dependency: bad group size %d", n)
	}
	d.Group = make([]types.Payment, n)
	for i := range d.Group {
		raw := r.Fixed(types.PaymentWireSize)
		if err := r.Err(); err != nil {
			return d, err
		}
		if err := d.Group[i].UnmarshalBinary(raw); err != nil {
			return d, err
		}
	}
	kind := r.U8()
	ns := r.U32()
	if err := r.Err(); err != nil {
		return d, err
	}
	if ns > maxDepSigs {
		return d, fmt.Errorf("dependency: cert of %d signatures exceeds cap", ns)
	}
	switch kind {
	case depCertPlain:
		d.Cert.Sigs = make([]DepSig, 0, ns)
		for i := uint32(0); i < ns; i++ {
			id := types.ReplicaID(r.U32())
			sig := r.Chunk()
			if err := r.Err(); err != nil {
				return d, err
			}
			d.Cert.Sigs = append(d.Cert.Sigs, DepSig{Replica: id, Sig: sig})
		}
	case depCertExtended:
		d.Cert.Sigs = make([]DepSig, 0, ns)
		for i := uint32(0); i < ns; i++ {
			id := types.ReplicaID(r.U32())
			sig := r.Chunk()
			if err := r.Err(); err != nil {
				return d, err
			}
			chain, err := decodeDigestChain(r)
			if err != nil {
				return d, err
			}
			d.Cert.Sigs = append(d.Cert.Sigs, DepSig{Replica: id, Sig: sig, Chain: chain})
		}
	case depCertInterned:
		// ns is the chain-table length here (bounded above); the signature
		// count follows the table. Decoded signatures referencing one
		// table entry share its slice, so the interning survives the round
		// trip in memory too.
		ownTable := make([][]types.Digest, ns)
		for i := range ownTable {
			chain, err := decodeDigestChain(r)
			if err != nil {
				return d, err
			}
			if len(chain) == 0 {
				return d, fmt.Errorf("dependency: empty chain in table")
			}
			ownTable[i] = chain
		}
		nSigs := r.U32()
		if err := r.Err(); err != nil {
			return d, err
		}
		if nSigs > maxDepSigs {
			return d, fmt.Errorf("dependency: cert of %d signatures exceeds cap", nSigs)
		}
		if err := decodeDepSigsIndexed(r, &d.Cert, nSigs, ownTable); err != nil {
			return d, err
		}
	case depCertBatchRef:
		// ns is the signature count (like plain/extended); the chains live
		// in the surrounding batch's table, decoded once for every
		// certificate of the batch.
		if table == nil {
			return d, fmt.Errorf("dependency: batch-ref certificate outside a v2 batch")
		}
		if err := decodeDepSigsIndexed(r, &d.Cert, ns, table); err != nil {
			return d, err
		}
	default:
		return d, fmt.Errorf("dependency: unknown cert kind %d", kind)
	}
	return d, nil
}

// decodeDepSigsIndexed reads n (replica, sig, chain-index) records into
// cert, resolving indices against table — the shared tail of the interned
// and batch-ref certificate forms. Decoded signatures referencing one
// table entry share its slice.
func decodeDepSigsIndexed(r *wire.Reader, cert *DepCert, n uint32, table [][]types.Digest) error {
	cert.Sigs = make([]DepSig, 0, n)
	for i := uint32(0); i < n; i++ {
		id := types.ReplicaID(r.U32())
		sig := r.Chunk()
		ci := r.U32()
		if err := r.Err(); err != nil {
			return err
		}
		var chain []types.Digest
		if ci != noChainIdx {
			if int(ci) >= len(table) {
				return fmt.Errorf("dependency: chain index %d out of table range %d", ci, len(table))
			}
			chain = table[ci]
		}
		cert.Sigs = append(cert.Sigs, DepSig{Replica: id, Sig: sig, Chain: chain})
	}
	return nil
}
