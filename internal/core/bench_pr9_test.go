package core

// PR 9 evidence, core side: batch-level chain interning on the payment
// wire. Astro II batches carry each payment's dependency certificates;
// before PR 9 every certificate encoded its signers' chains itself (the
// per-certificate interned form), so certificates across a batch repeat
// the same chains. The v2 form hoists one chain table to the batch and
// has certificates reference it by index. Byte accounting encodes the
// exact payloads both generations produce from the same entries.

import (
	"testing"

	"astro/internal/types"
)

// benchBatchEntries builds a batch of `n` payments whose certificates
// all cite the same f+1-signer chain context — the aligned-wave shape
// settlement produces (deterministic enqueue order means the signers'
// chains intern to one entry).
func benchBatchEntries(n, chainLen int) []BatchEntry {
	chain := make([]types.Digest, chainLen)
	for i := range chain {
		chain[i] = types.HashBytes([]byte{byte(i), byte(i >> 8)})
	}
	sig := make([]byte, 71)
	entries := make([]BatchEntry, n)
	for i := range entries {
		entries[i] = BatchEntry{
			Payment: types.Payment{Spender: types.ClientID(i + 1), Seq: 1, Beneficiary: 2, Amount: 1},
			Deps: []Dependency{{
				Group: []types.Payment{{Spender: 100, Seq: types.Seq(i + 1), Beneficiary: types.ClientID(i + 1), Amount: 1}},
				Cert: DepCert{Sigs: []DepSig{
					{Replica: 0, Sig: sig, Chain: chain},
					{Replica: 1, Sig: sig, Chain: chain},
				}},
			}},
		}
	}
	return entries
}

// BenchmarkBatchChainWireBytes: broadcast-payload bytes per payment with
// per-certificate chain encoding (v1) vs the batch-wide table (v2), at a
// 256-payment batch and chain cap 32.
func BenchmarkBatchChainWireBytes(b *testing.B) {
	entries := benchBatchEntries(256, creditChainCap)
	b.Run("per-cert-v1", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = len(EncodeBatchV1(entries))
		}
		b.ReportMetric(float64(total)/float64(len(entries)), "bytes/payment")
	})
	b.Run("batch-table-v2", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = len(EncodeBatch(entries))
		}
		b.ReportMetric(float64(total)/float64(len(entries)), "bytes/payment")
	})
}
