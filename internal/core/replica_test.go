package core

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// cluster is a single-shard Astro deployment on a memnet for tests.
type cluster struct {
	t        *testing.T
	net      *memnet.Network
	replicas []*Replica
	clients  map[types.ClientID]*Client
	repOf    func(types.ClientID) types.ReplicaID
	keys     []*crypto.KeyPair
	cfgs     []Config // as passed to NewReplica; restart tests rebuild from these
}

func newCluster(t *testing.T, version Version, n int, genesis func(types.ClientID) types.Amount, opts ...func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:       t,
		net:     memnet.New(memnet.WithSeed(7)),
		clients: make(map[types.ClientID]*Client),
	}
	t.Cleanup(c.net.Close)

	replicaIDs := make([]types.ReplicaID, n)
	for i := range replicaIDs {
		replicaIDs[i] = types.ReplicaID(i)
	}
	f := types.MaxFaults(n)

	registry := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, n)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		registry.Add(types.ReplicaID(i), keys[i].Public())
	}
	c.keys = keys
	master := []byte("test-master")

	c.repOf = func(cl types.ClientID) types.ReplicaID {
		return replicaIDs[uint64(cl)%uint64(n)]
	}

	for i := 0; i < n; i++ {
		self := types.ReplicaID(i)
		mux := transport.NewMux(c.net.Node(transport.ReplicaNode(self)))
		cfg := Config{
			Version:    version,
			Self:       self,
			Replicas:   replicaIDs,
			F:          f,
			Mux:        mux,
			RepOf:      c.repOf,
			Genesis:    genesis,
			BatchSize:  4,
			BatchDelay: 2 * time.Millisecond,
			Auth:       crypto.NewLinkAuthenticator(self, master),
			Keys:       keys[i],
			Registry:   registry,
		}
		for _, o := range opts {
			o(&cfg)
		}
		r, err := NewReplica(cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
		c.cfgs = append(c.cfgs, cfg)
	}
	return c
}

func (c *cluster) client(id types.ClientID) *Client {
	if cl, ok := c.clients[id]; ok {
		return cl
	}
	mux := transport.NewMux(c.net.Node(transport.ClientNode(id)))
	cl := NewClient(id, c.repOf, mux)
	c.clients[id] = cl
	return cl
}

// payAndWait submits a payment and waits for its confirmation.
func (c *cluster) payAndWait(cl *Client, b types.ClientID, x types.Amount) {
	c.t.Helper()
	id, err := cl.Pay(b, x)
	if err != nil {
		c.t.Fatalf("pay: %v", err)
	}
	if err := cl.WaitConfirm(id, 10*time.Second); err != nil {
		c.t.Fatalf("confirm %v: %v", id, err)
	}
}

// waitSettledEverywhere waits until all replicas report at least n settles.
func (c *cluster) waitSettledEverywhere(n uint64, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, r := range c.replicas {
			if r.SettledCount() < n {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			counts := make([]uint64, len(c.replicas))
			for i, r := range c.replicas {
				counts[i] = r.SettledCount()
			}
			c.t.Fatalf("timeout waiting for %d settles; have %v", n, counts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func eachVersion(t *testing.T, f func(t *testing.T, v Version)) {
	t.Run("astro1", func(t *testing.T) { f(t, AstroI) })
	t.Run("astro2", func(t *testing.T) { f(t, AstroII) })
}

func TestEndToEndPayment(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		alice := c.client(1)
		c.payAndWait(alice, 2, 30)
		c.waitSettledEverywhere(1, 5*time.Second)

		for i, r := range c.replicas {
			if bal := r.Balance(1); bal != 70 {
				t.Errorf("replica %d: balance(1) = %d, want 70", i, bal)
			}
			log := r.XLogSnapshot(1)
			if len(log) != 1 || log[0].Amount != 30 || log[0].Beneficiary != 2 {
				t.Errorf("replica %d: xlog = %v", i, log)
			}
		}
	})
}

func TestClientSequenceOfPayments(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		alice := c.client(1)
		for i := 0; i < 10; i++ {
			c.payAndWait(alice, 2, 5)
		}
		c.waitSettledEverywhere(10, 5*time.Second)
		for i, r := range c.replicas {
			if bal := r.Balance(1); bal != 50 {
				t.Errorf("replica %d: balance = %d", i, bal)
			}
			if seq := r.NextSeq(1); seq != 11 {
				t.Errorf("replica %d: nextSeq = %d", i, seq)
			}
		}
	})
}

func TestManyClientsConcurrent(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		const nClients = 8
		done := make(chan struct{}, nClients)
		for i := 0; i < nClients; i++ {
			cl := c.client(types.ClientID(i + 1))
			go func(cl *Client) {
				defer func() { done <- struct{}{} }()
				for j := 0; j < 5; j++ {
					id, err := cl.Pay(types.ClientID(100), 1)
					if err != nil {
						t.Error(err)
						return
					}
					if err := cl.WaitConfirm(id, 10*time.Second); err != nil {
						t.Errorf("client %d: %v", cl.ID(), err)
						return
					}
				}
			}(cl)
		}
		for i := 0; i < nClients; i++ {
			<-done
		}
		c.waitSettledEverywhere(nClients*5, 10*time.Second)
	})
}

func TestAstroIBeneficiaryCredited(t *testing.T) {
	c := newCluster(t, AstroI, 4, genesis100)
	alice := c.client(1)
	c.payAndWait(alice, 2, 30)
	c.waitSettledEverywhere(1, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(2); bal != 130 {
			t.Errorf("replica %d: balance(2) = %d, want 130", i, bal)
		}
	}
}

func TestAstroIIDependencyFlow(t *testing.T) {
	// Bob starts with 0 and can only pay Carol using the dependency from
	// Alice's payment: the CREDIT mechanism end to end.
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	alice, bob := c.client(1), c.client(2)

	c.payAndWait(alice, 2, 40)
	// Wait until Bob's representative has accumulated the dependency.
	repBob := c.replicas[int(c.repOf(2))]
	deadline := time.Now().Add(5 * time.Second)
	for repBob.Balance(2) < 40 {
		if time.Now().After(deadline) {
			t.Fatalf("dependency never formed; balance = %d", repBob.Balance(2))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Bob spends 25 of the 40 he received through the dependency.
	c.payAndWait(bob, 3, 25)
	c.waitSettledEverywhere(2, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(2); bal != 15 {
			t.Errorf("replica %d: settled balance(2) = %d, want 15", i, bal)
		}
	}
}

func TestAstroIISubmitHeldUntilFunded(t *testing.T) {
	// Bob (balance 0) submits before Alice's credit reaches his
	// representative: the representative must hold the submission rather
	// than wedge Bob's xlog.
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	alice, bob := c.client(1), c.client(2)

	idBob, err := bob.Pay(3, 25) // unfunded yet
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	repBob := c.replicas[int(c.repOf(2))]
	if held := repBob.PendingSubmits(2); held != 1 {
		t.Fatalf("pending submits = %d, want 1", held)
	}

	c.payAndWait(alice, 2, 40) // funds Bob via dependency
	if err := bob.WaitConfirm(idBob, 10*time.Second); err != nil {
		t.Fatalf("held payment never settled: %v", err)
	}
	c.waitSettledEverywhere(2, 5*time.Second)
	counters := c.replicas[0].Counters()
	if counters.Dropped != 0 {
		t.Errorf("dropped = %d, want 0", counters.Dropped)
	}
}

func TestDoubleSpendPrevented(t *testing.T) {
	// A Byzantine client reuses a sequence number with two different
	// payments submitted to its (correct) representative. Exactly one
	// settles on every replica, and all replicas agree which.
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		NewClient(1, c.repOf, mux) // register handler; we forge manually

		a := types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 60}
		b := types.Payment{Spender: 1, Seq: 1, Beneficiary: 3, Amount: 60}
		rep := transport.ReplicaNode(c.repOf(1))
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(a, nil)); err != nil {
			t.Fatal(err)
		}
		if err := mux.Send(rep, transport.ChanPayment, encodeSubmit(b, nil)); err != nil {
			t.Fatal(err)
		}
		c.waitSettledEverywhere(1, 5*time.Second)
		time.Sleep(100 * time.Millisecond)

		var first []types.Payment
		for i, r := range c.replicas {
			log := r.XLogSnapshot(1)
			if len(log) != 1 {
				t.Fatalf("replica %d settled %d payments for seq 1", i, len(log))
			}
			if first == nil {
				first = log
			} else if log[0] != first[0] {
				t.Fatalf("replicas disagree: %v vs %v", log[0], first[0])
			}
			if bal := r.Balance(1); bal != 40 {
				t.Errorf("replica %d: balance = %d, want 40 (one withdrawal)", i, bal)
			}
		}
	})
}

func TestForeignSubmitRejected(t *testing.T) {
	// A client cannot submit payments for someone else's xlog: the
	// representative checks the sender's node identity.
	c := newCluster(t, AstroI, 4, genesis100)
	mallory := c.client(5)
	forged := types.Payment{Spender: 1, Seq: 1, Beneficiary: 5, Amount: 99}
	rep := transport.ReplicaNode(c.repOf(1))
	if err := c.clients[5].mux.Send(rep, transport.ChanPayment, encodeSubmit(forged, nil)); err != nil {
		t.Fatal(err)
	}
	_ = mallory
	time.Sleep(100 * time.Millisecond)
	for i, r := range c.replicas {
		if r.SettledCount() != 0 {
			t.Fatalf("replica %d settled a forged payment", i)
		}
	}
}

func TestBalanceQuery(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		alice := c.client(1)
		bal, err := alice.QueryBalance(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if bal != 100 {
			t.Errorf("initial balance = %d", bal)
		}
		c.payAndWait(alice, 2, 30)
		bal, err = alice.QueryBalance(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if bal != 70 {
			t.Errorf("balance after payment = %d", bal)
		}
	})
}

func TestAstroIIBalanceIncludesPendingDeps(t *testing.T) {
	gen := func(c types.ClientID) types.Amount {
		if c == 1 {
			return 100
		}
		return 0
	}
	c := newCluster(t, AstroII, 4, gen)
	alice, bob := c.client(1), c.client(2)
	c.payAndWait(alice, 2, 40)

	deadline := time.Now().Add(5 * time.Second)
	for {
		bal, err := bob.QueryBalance(time.Second)
		if err == nil && bal == 40 {
			break // dependency value visible through the representative
		}
		if time.Now().After(deadline) {
			t.Fatalf("balance = %d, want 40", bal)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCrashFaultTolerance(t *testing.T) {
	// With n=4, f=1: crash one non-representative replica; payments still
	// settle at the survivors.
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis100)
		alice := c.client(1) // representative is replica 1
		c.net.Crash(transport.ReplicaNode(3))
		c.payAndWait(alice, 2, 10)
		deadline := time.Now().Add(5 * time.Second)
		for {
			ok := 0
			for i, r := range c.replicas {
				if i != 3 && r.SettledCount() >= 1 {
					ok++
				}
			}
			if ok == 3 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("survivors did not settle")
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

func TestBatchingAmortizesBroadcasts(t *testing.T) {
	// With batch size 4 and 8 back-to-back payments from one client, the
	// replicas should settle all 8 while broadcasting only ~2-3 batches
	// (timing-dependent), far fewer than 8.
	c := newCluster(t, AstroII, 4, genesis100)
	alice := c.client(1)
	ids := make([]types.PaymentID, 0, 8)
	for i := 0; i < 8; i++ {
		id, err := alice.Pay(2, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatalf("confirm %v: %v", id, err)
		}
	}
	c.waitSettledEverywhere(8, 5*time.Second)
}

func TestConfigDefaults(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	mux := transport.NewMux(net.Node(0))
	cfg := Config{
		Version:  AstroI,
		Self:     0,
		Replicas: []types.ReplicaID{0, 1, 2, 3},
		F:        1,
		Mux:      mux,
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.BatchSize != 256 || cfg.BatchDelay != 5*time.Millisecond {
		t.Error("defaults not applied")
	}
	if cfg.RepOf(5) != 1 {
		t.Errorf("default RepOf(5) = %d", cfg.RepOf(5))
	}
	if cfg.ShardOf(1) != 0 || cfg.ReplicaShard(2) != 0 {
		t.Error("default shard maps wrong")
	}
	if cfg.Genesis(1) != 0 {
		t.Error("default genesis wrong")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	mux := transport.NewMux(net.Node(0))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no mux", Config{Version: AstroI, Replicas: []types.ReplicaID{0, 1, 2, 3}, F: 1}},
		{"bad version", Config{Version: 0, Mux: mux, Replicas: []types.ReplicaID{0, 1, 2, 3}, F: 1}},
		{"too few replicas", Config{Version: AstroI, Mux: mux, Replicas: []types.ReplicaID{0, 1}, F: 1}},
		{"astro2 no keys", Config{Version: AstroII, Mux: mux, Replicas: []types.ReplicaID{0, 1, 2, 3}, F: 1}},
	}
	for _, c := range cases {
		if _, err := NewReplica(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
