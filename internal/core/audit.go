package core

// Audit sampling hooks: one consistent cut of a replica's full account
// state, cheap enough to take repeatedly while the system runs. The
// invariant auditor (internal/sim) samples these across all replicas and
// checks conservation-of-money, per-client FIFO, no-duplicate-settle, and
// cross-replica agreement without stopping traffic.

import "astro/internal/types"

// AuditExport captures every materialized account under all stripe locks
// — one consistent cut (no export observes a half-applied transfer),
// sorted by client. This is the same image the WAL snapshot and
// reconfiguration state transfer serialize.
func (r *Replica) AuditExport() []AccountExport {
	return r.state.ExportAccounts()
}

// PendingDepValue returns the total value of dependency certificates held
// at this representative awaiting attachment for client c (Astro II).
// These funds are spendable (Balance includes them) but not yet settled
// state, so the auditor accounts for them separately.
func (r *Replica) PendingDepValue(c types.ClientID) types.Amount {
	if r.cfg.Version != AstroII || r.cfg.RepOf(c) != r.cfg.Self {
		return 0
	}
	var v types.Amount
	r.repMu.Lock()
	for _, d := range r.repDeps[c] {
		v += d.Value(c)
	}
	r.repMu.Unlock()
	return v
}

// DecodeAuditAccounts parses the account section out of a replica's full
// snapshot (the FullSnapshot / reconfig state-transfer encoding). It is
// how out-of-process auditors — the TCP chaos harness, astro-client's
// audit command — turn a fetched remote snapshot into the same
// AccountExport view that in-process auditing reads directly.
func DecodeAuditAccounts(snapshot []byte) ([]AccountExport, error) {
	img, err := decodeReplicaImage(snapshot)
	if err != nil {
		return nil, err
	}
	return img.accounts, nil
}
