package core

// PR 9 pipeline guards. The steady-state target (ROADMAP item 4) is a
// goroutine-free, allocation-lean message pipeline: continuation commits,
// pinned stripe flows, lazy chain definitions. These tests are the
// regression fence — they ride plain `go test`, so `make check` fails if
// a per-commit spawn or a hot-codec allocation creeps back in.

import (
	"testing"
	"time"

	"astro/internal/sched"
	"astro/internal/types"
)

// TestSteadyStateSettleSpawnFree drives a warmed 4-replica cluster — real
// ECDSA certificates, continuation commit coordinators, lazy CHAINDEF —
// through a settlement round and asserts the pipeline spawned zero
// goroutines for it. Everything runs on the fixed lane set: commits
// verify via detached continuations, settlement fans across pinned
// stripe flows, chain definitions resolve from warm caches.
func TestSteadyStateSettleSpawnFree(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	alice := c.client(1)
	bob := c.client(2)

	// Warm-up round: primes every replica's ack-chain and credit-chain
	// caches, so the measured round is the steady state the guard is
	// about (first contact may NACK; that is the lazy protocol working,
	// not a regression — and it spawns nothing either way).
	for i := 0; i < 4; i++ {
		c.payAndWait(alice, 2, 1)
		c.payAndWait(bob, 3, 1)
	}
	c.waitSettledEverywhere(8, 10*time.Second)

	base := sched.Spawns()
	for i := 0; i < 8; i++ {
		c.payAndWait(alice, 2, 1)
		c.payAndWait(bob, 3, 1)
	}
	c.waitSettledEverywhere(24, 10*time.Second)
	if d := sched.Spawns() - base; d != 0 {
		t.Errorf("steady-state settlement spawned %d goroutines, want 0", d)
	}
}

// TestSpawnCounterWiredThroughBaselines is the guard's own guard: with
// the goroutine baselines switched back on, the counter must move. A
// zero here would mean the baseline paths stopped routing through
// sched.Go and the spawn-free assertion above is vacuous.
func TestSpawnCounterWiredThroughBaselines(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100, func(cfg *Config) {
		cfg.CommitSpawn = true
		cfg.SettleSpawn = true
	})
	base := sched.Spawns()
	alice := c.client(1)
	c.payAndWait(alice, 2, 5)
	c.waitSettledEverywhere(1, 10*time.Second)
	if sched.Spawns() == base {
		t.Error("goroutine baselines settled a payment without touching sched.Go")
	}
}

// TestHotPathAllocBudget gates the per-operation allocation count of the
// codecs every settled payment crosses: the batch encoder/decoder (v2,
// warm chain table) and state application. Budgets carry headroom over
// the measured steady state; a fat regression (per-entry reallocations,
// a dropped size precomputation) blows through them.
func TestHotPathAllocBudget(t *testing.T) {
	chain := []types.Digest{types.HashBytes([]byte("a")), types.HashBytes([]byte("b"))}
	dep := Dependency{
		Group: []types.Payment{pay(9, 1, 3, 5)},
		Cert: DepCert{Sigs: []DepSig{
			{Replica: 0, Sig: make([]byte, 64)},
			{Replica: 2, Sig: make([]byte, 64), Chain: chain},
			{Replica: 3, Sig: make([]byte, 64), Chain: chain},
		}},
	}
	entries := make([]BatchEntry, 8)
	for i := range entries {
		entries[i] = BatchEntry{Payment: pay(1, types.Seq(i+1), 2, 1), Deps: []Dependency{dep}}
	}
	data := EncodeBatch(entries)

	// Encoder: one writer buffer (exact-capacity via batchSize) plus the
	// table slice. Anything near per-entry cost is a regression.
	if n := testing.AllocsPerRun(200, func() { _ = EncodeBatch(entries) }); n > 4 {
		t.Errorf("EncodeBatch: %.0f allocs per batch, budget 4", n)
	}
	// Decoder: entries, table, and per-dependency slices are irreducible;
	// the budget rules out per-signature chain copies (the table exists
	// so sigs share backing).
	if n := testing.AllocsPerRun(200, func() { _, _ = DecodeBatch(data) }); n > 48 {
		t.Errorf("DecodeBatch: %.0f allocs per batch, budget 48", n)
	}

	// State application: amortized xlog growth only.
	s := NewState(AstroII, genesis100, nil)
	seq := types.Seq(0)
	if n := testing.AllocsPerRun(500, func() {
		seq++
		s.ApplyEntry(BatchEntry{Payment: pay(1, seq, 2, 1)})
	}); n > 4 {
		t.Errorf("ApplyEntry: %.1f allocs per payment, budget 4", n)
	}
}
