package core

import (
	"fmt"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/wal"
)

// benchSettleWAL drives the 4-replica settlement pipeline end to end —
// submission, signed BRB, settlement — with a WAL backend on every
// replica, reported per settled payment. Client ECDSA is off: the WAL
// write path is the subject, not signature verification.
func benchSettleWAL(b *testing.B, backend func(b *testing.B) wal.Backend) {
	const (
		nReplicas = 4
		nClients  = 64
	)
	net := memnet.New(memnet.WithSeed(7))
	defer net.Close()

	replicaIDs := make([]types.ReplicaID, nReplicas)
	for i := range replicaIDs {
		replicaIDs[i] = types.ReplicaID(i)
	}
	registry := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, nReplicas)
	for i := range keys {
		keys[i] = crypto.MustGenerateKeyPair()
		registry.Add(types.ReplicaID(i), keys[i].Public())
	}
	repOf := func(cl types.ClientID) types.ReplicaID {
		return replicaIDs[uint64(cl)%uint64(nReplicas)]
	}

	replicas := make([]*Replica, nReplicas)
	for i := 0; i < nReplicas; i++ {
		self := types.ReplicaID(i)
		mux := transport.NewMux(net.Node(transport.ReplicaNode(self)))
		r, err := NewReplica(Config{
			Version:    AstroII,
			Self:       self,
			Replicas:   replicaIDs,
			F:          types.MaxFaults(nReplicas),
			Mux:        mux,
			RepOf:      repOf,
			Genesis:    func(types.ClientID) types.Amount { return 1 << 40 },
			BatchSize:  256,
			BatchDelay: time.Millisecond,
			Keys:       keys[i],
			Registry:   registry,
			WAL:        backend(b),
		})
		if err != nil {
			b.Fatal(err)
		}
		replicas[i] = r
	}

	muxes := make([]*transport.Mux, nClients)
	for i := range muxes {
		muxes[i] = transport.NewMux(net.Node(transport.ClientNode(types.ClientID(i))))
	}
	submits := make([][]byte, b.N)
	for i := 0; i < b.N; i++ {
		cl := types.ClientID(i % nClients)
		p := types.Payment{
			Spender:     cl,
			Seq:         types.Seq(i/nClients + 1),
			Beneficiary: types.ClientID((i + 1) % nClients),
			Amount:      1,
		}
		submits[i] = encodeSubmit(p, nil)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := i % nClients
		rep := repOf(types.ClientID(cl))
		if err := muxes[cl].Send(transport.ReplicaNode(rep), transport.ChanPayment, submits[i]); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		all := true
		for _, r := range replicas {
			if r.SettledCount() < uint64(b.N) {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("timed out waiting for %d settles", b.N)
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
	for _, r := range replicas {
		r.Close()
		if err := r.WALErr(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSettleWALFile is the durable configuration: every replica
// appends to a real file-backed WAL (CRC framing, fsync batching,
// Barrier before each broadcast send).
func BenchmarkSettleWALFile(b *testing.B) {
	benchSettleWAL(b, func(b *testing.B) wal.Backend {
		be, err := wal.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		return be
	})
}

// BenchmarkSettleWALNop runs the identical WAL scheduler path against the
// discard backend: the gap to BenchmarkSettleWALFile is pure I/O
// (write+fsync), the gap to BenchmarkSettleWALOff is the durability
// plumbing itself (record encoding, flow hops, barriers).
func BenchmarkSettleWALNop(b *testing.B) {
	benchSettleWAL(b, func(*testing.B) wal.Backend { return wal.Nop{} })
}

// BenchmarkSettleWALOff is the memory-only baseline (pre-PR-6 behavior).
func BenchmarkSettleWALOff(b *testing.B) {
	benchSettleWAL(b, func(*testing.B) wal.Backend { return nil })
}

// BenchmarkReplicaRecover measures the restart cost as a function of log
// length: NewReplica over a file-backed WAL holding n settled payments
// (compaction disabled, so the whole history replays from the log — the
// worst case an operator can configure). Reported per restart.
func BenchmarkReplicaRecover(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("payments=%d", n), func(b *testing.B) {
			const nClients = 16
			dir := b.TempDir()
			net := memnet.New(memnet.WithSeed(7))
			defer net.Close()
			registry := crypto.NewRegistry()
			kp := crypto.MustGenerateKeyPair()
			registry.Add(0, kp.Public())
			mkcfg := func(be wal.Backend, mux *transport.Mux) Config {
				return Config{
					Version:    AstroII,
					Self:       0,
					Replicas:   []types.ReplicaID{0},
					F:          0,
					Mux:        mux,
					Genesis:    func(types.ClientID) types.Amount { return 1 << 40 },
					BatchSize:  64,
					BatchDelay: time.Millisecond,
					Keys:       kp,
					Registry:   registry,
					WAL:        be,
					// Disable compaction: the log keeps the full history.
					WALSnapshotEvery: 1 << 30,
				}
			}

			be, err := wal.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			r, err := NewReplica(mkcfg(be, transport.NewMux(net.Node(transport.ReplicaNode(0)))))
			if err != nil {
				b.Fatal(err)
			}
			// Submissions must originate from the spender's own client node.
			cmuxes := make([]*transport.Mux, nClients)
			for i := range cmuxes {
				cmuxes[i] = transport.NewMux(net.Node(transport.ClientNode(types.ClientID(i))))
			}
			for i := 0; i < n; i++ {
				cl := types.ClientID(i % nClients)
				p := types.Payment{
					Spender:     cl,
					Seq:         types.Seq(i/nClients + 1),
					Beneficiary: types.ClientID((i + 1) % nClients),
					Amount:      1,
				}
				if err := cmuxes[cl].Send(transport.ReplicaNode(0), transport.ChanPayment, encodeSubmit(p, nil)); err != nil {
					b.Fatal(err)
				}
			}
			deadline := time.Now().Add(time.Minute)
			for r.SettledCount() < uint64(n) {
				if time.Now().After(deadline) {
					b.Fatalf("timed out at %d/%d settles", r.SettledCount(), n)
				}
				time.Sleep(time.Millisecond)
			}
			r.Close()

			wantLog := (n + nClients - 1) / nClients // client 0's share
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				be, err := wal.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				mux := transport.NewMux(net.Node(transport.ReplicaNode(0)))
				rec, err := NewReplica(mkcfg(be, mux))
				if err != nil {
					b.Fatal(err)
				}
				if got := len(rec.XLogSnapshot(types.ClientID(0))); got != wantLog {
					b.Fatalf("replayed xlog of %d, want %d", got, wantLog)
				}
				b.StopTimer()
				rec.Abandon()
				mux.Close()
				b.StartTimer()
			}
		})
	}
}
