package core

import (
	"fmt"
	"runtime"
	"testing"

	"astro/internal/kv"
	"astro/internal/types"
)

// benchPagedState builds a State paging against a fresh KV store under
// the benchmark's temp dir; cache 0 means fully resident (no store).
func benchPagedState(b *testing.B, cache int) *State {
	b.Helper()
	gen := func(types.ClientID) types.Amount { return 1 << 30 }
	if cache == 0 {
		return NewState(AstroI, gen, nil)
	}
	store, err := kv.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { store.Close() })
	return NewStatePaged(AstroI, gen, nil, DefaultStateStripes, store, cache)
}

// populateAccounts materializes n accounts, each with a one-payment xlog
// — the shape of a long account tail where most accounts saw little
// traffic (the population the pager exists for).
func populateAccounts(b *testing.B, s *State, n int) {
	b.Helper()
	for c := 1; c <= n; c++ {
		s.ImportAccount(AccountExport{
			Client:  types.ClientID(c),
			Balance: (1 << 30) - 1, // distinguishable from a lazy genesis materialization
			XLog:    []types.Payment{pay(types.ClientID(c), 1, types.ClientID(c%n+1), 1)},
		})
	}
	if err := s.PagerErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStateBytesPerAccount measures resident heap per account across
// population sizes and cache bounds — the headline claim of the paged
// state: memory is O(hot set) plus a small per-key index term, not
// O(accounts). Run with -benchtime=1x; the number of interest is the
// bytes/account metric, not ns/op.
func BenchmarkStateBytesPerAccount(b *testing.B) {
	for _, accounts := range []int{100_000, 1_000_000} {
		for _, cache := range []int{0, 65536, 8192} {
			name := fmt.Sprintf("accounts=%d/cache=%d", accounts, cache)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var before, after runtime.MemStats
					runtime.GC()
					runtime.ReadMemStats(&before)
					s := benchPagedState(b, cache)
					populateAccounts(b, s, accounts)
					runtime.GC()
					runtime.ReadMemStats(&after)
					b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(accounts), "bytes/account")
					runtime.KeepAlive(s)
				}
			})
		}
	}
}

// BenchmarkSettleHot settles payments inside a working set far smaller
// than the cache: every touch hits a resident account — the paged state's
// steady-state fast path.
func BenchmarkSettleHot(b *testing.B) {
	benchSettle(b, 65536, 8192, 64)
}

// BenchmarkSettleColdFault cycles spenders across a population far larger
// than the cache, so nearly every settle faults the account in from the
// store and evicts another — the worst-case paging tax per payment.
func BenchmarkSettleColdFault(b *testing.B) {
	benchSettle(b, 65536, 8192, 65536)
}

func benchSettle(b *testing.B, pop, cache, working int) {
	s := benchPagedState(b, cache)
	populateAccounts(b, s, pop)
	seqs := make([]types.Seq, pop+1)
	for i := range seqs {
		seqs[i] = 1 // populateAccounts settled seq 1 for everyone
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := i%working + 1
		bn := sp%working + 1
		seqs[sp]++
		s.ApplyEntry(BatchEntry{Payment: pay(types.ClientID(sp), seqs[sp], types.ClientID(bn), 1)})
	}
	b.StopTimer()
	if err := s.PagerErr(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSnapshotFull encodes the whole account population into a full
// (v1) image — the resident-mode snapshot cost, paid every cadence no
// matter how little changed.
func BenchmarkSnapshotFull(b *testing.B) {
	const accounts = 100_000
	s := benchPagedState(b, 0)
	populateAccounts(b, s, accounts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := replicaImage{accounts: s.ExportAccounts()}
		if len(encodeReplicaImage(img)) == 0 {
			b.Fatal("empty image")
		}
	}
}

// BenchmarkSnapshotIncremental dirties a small working set and flushes
// just that — the paged-mode snapshot cost, proportional to what changed
// since the last cadence, not to the population.
func BenchmarkSnapshotIncremental(b *testing.B) {
	const accounts, dirty = 100_000, 1024
	s := benchPagedState(b, 2*dirty)
	populateAccounts(b, s, accounts)
	if err := s.FlushDirty(); err != nil {
		b.Fatal(err)
	}
	seq := types.Seq(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		seq++
		for c := 1; c <= dirty; c++ {
			s.ApplyEntry(BatchEntry{Payment: pay(types.ClientID(c), seq, types.ClientID(c+dirty), 1)})
		}
		b.StartTimer()
		if err := s.FlushDirty(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagedRestart measures reopening a published store and building
// a paged state over it: the bounded-restart claim. Cost is the index
// load plus one demand fault — never a full-population decode.
func BenchmarkPagedRestart(b *testing.B) {
	for _, accounts := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			dir := b.TempDir()
			store, err := kv.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			gen := func(types.ClientID) types.Amount { return 1 << 30 }
			s := NewStatePaged(AstroI, gen, nil, DefaultStateStripes, store, 1024)
			populateAccounts(b, s, accounts)
			if err := s.FlushDirty(); err != nil {
				b.Fatal(err)
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := kv.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				rs := NewStatePaged(AstroI, gen, nil, DefaultStateStripes, st, 1024)
				if rs.Balance(1) != (1<<30)-1 {
					b.Fatal("restart lost account 1")
				}
				b.StopTimer()
				st.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkResidentRestart is the restart baseline the paged curve is
// judged against: decode a full image and materialize every account.
func BenchmarkResidentRestart(b *testing.B) {
	for _, accounts := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			s := benchPagedState(b, 0)
			populateAccounts(b, s, accounts)
			blob := encodeReplicaImage(replicaImage{accounts: s.ExportAccounts()})
			gen := func(types.ClientID) types.Amount { return 1 << 30 }
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img, err := decodeReplicaImage(blob)
				if err != nil {
					b.Fatal(err)
				}
				rs := NewState(AstroI, gen, nil)
				for _, ex := range img.accounts {
					rs.ImportAccount(ex)
				}
				if rs.Balance(1) != (1<<30)-1 {
					b.Fatal("restart lost account 1")
				}
			}
		})
	}
}
