package core

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/brb"
	"astro/internal/crypto/verifier"
	"astro/internal/kv"
	"astro/internal/sched"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wal"
	"astro/internal/wire"
)

// Replica is one node of an Astro deployment (paper §III). It plays two
// roles at once:
//
//   - state replica: it participates in the shard's BRB group, and on
//     every delivery approves and settles payments into its copy of the
//     shard's xlogs;
//   - representative: for the clients mapped to it, it accepts payment
//     submissions, batches them (paper §VI-A), broadcasts the batches, and
//     confirms settlement back to the clients. Under Astro II it also
//     collects CREDIT messages into dependency certificates on behalf of
//     its clients (paper Listing 10).
//
// Locking is split by role, so the protocol channels' dispatch goroutines
// (sharded since PR 2) stop serializing on one mutex:
//
//   - settlement state lives in State, which is self-synchronized with
//     per-stripe locks (see State's doc); delivered batches fan out per
//     stripe so disjoint accounts settle concurrently;
//   - repMu guards the representative-side bookkeeping (batch buffer,
//     in-flight projection, held submissions, accumulated dependencies);
//   - creditMu guards the CREDIT accumulator — the only cross-stripe
//     hand-off of the settlement pipeline, keyed by credit-group digest;
//   - endorsedMu guards the endorsement memory (called from inside the
//     BRB layer).
//
// Lock order: creditMu ≺ repMu ≺ State's stripe locks (stripe locks are
// leaves; repMu holders may read balances, creditMu completion hands off
// to repMu after release). endorsedMu is independent and never nested.
type Replica struct {
	cfg Config
	bc  brb.Broadcaster

	state *State

	// repMu guards the representative state below.
	repMu          sync.Mutex
	buffer         []BatchEntry
	flushScheduled bool
	// sendQ holds taken batches awaiting Broadcast, and sending marks the
	// single active drainer (the deliverQ pattern): queue position under
	// repMu — not the later Broadcast call — fixes the global broadcast
	// order, so concurrent flushers (payment dispatch, delivery, credit
	// completions) cannot reorder one client's payments between take and
	// send, and a failed Broadcast retries from the queue front without
	// anything newer overtaking it.
	sendQ   [][]BatchEntry
	sending bool
	// myInflight counts own batches broadcast but not yet self-delivered.
	// Batching is self-clocked: when nothing is in flight, submissions
	// flush immediately (low-load latency); while a batch is in flight,
	// arrivals accumulate, so batch size automatically tracks load × RTT
	// and amortizes per-batch signatures — the effect the paper achieves
	// with its 256-payment batches (§VI-A). The BatchDelay timer remains
	// as a liveness fallback.
	myInflight     int
	repDeps        map[types.ClientID][]Dependency
	pendingSubmits map[types.ClientID][]heldSubmit
	// Astro II projected-balance accounting: a correct representative
	// never broadcasts a payment its client cannot fund (the paper's
	// Listing 9 otherwise wedges the xlog).
	inflightOut  map[types.ClientID]types.Amount
	inflightDeps map[types.ClientID]types.Amount
	attachedVal  map[types.PaymentID]types.Amount
	// submittedHi is the highest sequence number accepted from each
	// client, covering every pre-settlement stage (held, buffered,
	// broadcast in flight); NextSeq resyncs must not hand these out again.
	submittedHi map[types.ClientID]types.Seq

	// creditMu guards the CREDIT accumulator. creditAccum buckets
	// accumulators by a cheap content key; creditStateFor resolves the
	// bucket by exact group comparison, so the group digest is hashed
	// once per distinct group, not once per signer message.
	creditMu    sync.Mutex
	creditAccum map[creditKey][]*creditState

	// creditSigner batches CREDIT signing at the payment layer (Astro II):
	// while one ECDSA is in flight, the credit groups of pending
	// settlement waves collapse into a single signature over a hash chain
	// of group digests — the CREDIT analogue of the BRB ack chains,
	// scheduled by the same verifier.ChainSigner machinery. Signing (and
	// group hashing) runs pool-side, never on a delivery goroutine.
	creditSigner *verifier.ChainSigner[creditJob]

	// Chain-by-digest reference state for the credit channel (see
	// creditref.go): per-peer caches of defined chains (receiver, doubling
	// as the chain interning table) and the bounded retransmit buffer
	// answering CREDITNACKs.
	chainMu        sync.Mutex
	creditChains   *types.PeerCache[[]types.Digest]
	creditWaves    *types.LRU[types.Digest, retainedWave]
	creditRefStats types.RefCounters

	// endorsement memory for the BRB external-validity hook; separate
	// lock because the hook is called from inside the BRB layer.
	endorsedMu sync.Mutex
	endorsed   map[types.PaymentID]types.Digest

	// stripeFlows pin each settlement stripe to a lane-affine flow of the
	// configured scheduler runtime (nil in spawn-baseline mode or with a
	// single stripe, where fan-out is pointless).
	stripeFlows []*sched.Flow

	// Durability (nil wal disables the whole subsystem; see durable.go).
	// bcastMu guards the broadcast-slot reservation table — a leaf lock,
	// never nested with any other. pendingBcast maps every slot this
	// replica durably reserved but has not yet self-delivered to its batch
	// payload; nextBcastSlot is the highest slot ever reserved, mirroring
	// (and, across restarts, seeding) the BRB layer's own sequence.
	wal *wal.Writer
	// accountStore is the WAL backend's embedded KV store, when it has
	// one (wal.KVBackend): the spill target for the bounded-residency
	// account pager and the home of the incremental snapshot manifest.
	accountStore  *kv.Store
	bcastMu       sync.Mutex
	pendingBcast  map[uint64][]byte
	nextBcastSlot uint64
	walBatches    atomic.Uint64
	// recovered marks a replica that replayed any durable state;
	// replayedWaves holds the log tail's settlement waves until
	// finishRecovery re-enqueues their CREDIT groups.
	recovered     bool
	replayedWaves [][]types.Payment

	settledTotal      atomic.Uint64
	confirmedTotal    atomic.Uint64
	broadcastFailures atomic.Uint64

	// edge counts hostile-frame rejections at the client edge (edge.go).
	edge edgeCounters
}

// stripeFlowQueue bounds each stripe flow's queue: deep enough for the
// stripe tasks of many in-flight deliveries, shallow enough that a stalled
// stripe backpressures its deliverers instead of buffering unboundedly.
const stripeFlowQueue = 256

// creditKey is the cheap accumulator-lookup key for a credit group: first
// payment identifier plus group length. Buckets are disambiguated by full
// group comparison (collision-proof, cheaper than hashing), so k CREDIT
// copies of one group from k signers hash the group once.
type creditKey struct {
	first types.PaymentID
	n     int
}

type creditState struct {
	group  []types.Payment
	digest types.Digest
	cert   DepCert
	done   bool
}

// creditJob is one credit group awaiting signature, addressed to the
// beneficiaries' representative (ChainSigner work item).
type creditJob struct {
	rep   types.ReplicaID
	group []types.Payment
}

// heldSubmit is a client submission awaiting funds at the representative.
type heldSubmit struct {
	payment types.Payment
	sig     []byte
}

// NewReplica assembles a replica, registering its protocol handlers on the
// configured mux.
func NewReplica(cfg Config) (*Replica, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:            cfg,
		repDeps:        make(map[types.ClientID][]Dependency),
		pendingSubmits: make(map[types.ClientID][]heldSubmit),
		inflightOut:    make(map[types.ClientID]types.Amount),
		inflightDeps:   make(map[types.ClientID]types.Amount),
		attachedVal:    make(map[types.PaymentID]types.Amount),
		creditAccum:    make(map[creditKey][]*creditState),
		submittedHi:    make(map[types.ClientID]types.Seq),
		endorsed:       make(map[types.PaymentID]types.Digest),
		pendingBcast:   make(map[uint64][]byte),
	}
	// Dependency certificates are verified by screenDependencies on the
	// BRB delivery path, *before* any stripe lock is taken and fanned out
	// across the verifier pool — not by State under its locks (they used
	// to verify memoized-but-serial there, lengthening every settlement
	// critical section). State therefore trusts the deps it is handed.
	//
	// When the WAL backend embeds a KV store (wal.KVBackend) and a cache
	// bound is configured, the state pages against that store: cold
	// accounts spill as per-account records and fault back in on access.
	if as, ok := cfg.WAL.(interface{ AccountStore() *kv.Store }); ok {
		r.accountStore = as.AccountStore()
	}
	if cfg.StateCacheAccounts > 0 && r.accountStore == nil {
		return nil, ErrConfigStateCache
	}
	r.state = NewStatePaged(cfg.Version, cfg.Genesis, nil, cfg.StateStripes, r.accountStore, cfg.StateCacheAccounts)

	// Pin each settlement stripe to a lane-affine flow on the shared
	// runtime: a stripe's settle tasks execute in FIFO order on one lane
	// at a time (per-spender FIFO falls out, since a spender maps to one
	// stripe), with no goroutine spawned per delivery. The round-robin
	// flow homes spread the stripes across lanes; work-stealing rebalances
	// when deliveries load stripes unevenly. Config.SettleSpawn keeps the
	// old spawn-per-delivery fan-out as the measured baseline.
	if !cfg.SettleSpawn && r.state.Stripes() > 1 {
		ns := cfg.Sched.KeySpace()
		r.stripeFlows = make([]*sched.Flow, r.state.Stripes())
		for i := range r.stripeFlows {
			r.stripeFlows[i] = cfg.Sched.Flow(ns+uint64(i), stripeFlowQueue)
		}
	}

	// Durable state replays before anything can deliver or submit: the
	// snapshot plus log tail rebuild the settlement state, endorsement
	// memory, reservation table, and in-flight projections, and the WAL
	// writer must exist before the first post-restart endorsement.
	if cfg.WAL != nil {
		if err := r.recover(cfg.WAL); err != nil {
			return nil, fmt.Errorf("replica %d: wal recovery: %w", cfg.Self, err)
		}
		r.wal = wal.NewWriter(cfg.WAL, cfg.Sched)
	}

	bcfg := brb.Config{
		Mux:       cfg.Mux,
		Self:      cfg.Self,
		Peers:     cfg.Replicas,
		F:         cfg.F,
		Validator: r.validateBatch,
		Deliver:   r.onDeliver,
		Auth:      cfg.Auth,
		Keys:      cfg.Keys,
		Registry:  cfg.Registry,
		Verifier:  cfg.Verifier,
		// Restart seeding: never reuse a reserved slot, and deliver in
		// arrival order so slots committed while this replica was down
		// cannot wedge every origin's FIFO (the broadcast layer does not
		// retransmit old slots to a latecomer) — the settlement engine
		// orders payments by client sequence number independently.
		FirstSlot: r.nextBcastSlot,
		Unordered: r.recovered,
		// Pipeline baselines (BENCH_PR9): goroutine-per-commit
		// coordinators and eager chain definitions, both off by default.
		CommitSpawn:    cfg.CommitSpawn,
		EagerChainDefs: cfg.EagerChainDefs,
	}
	var err error
	switch cfg.Version {
	case AstroI:
		r.bc, err = brb.NewBracha(bcfg)
	case AstroII:
		r.bc, err = brb.NewSigned(bcfg)
	}
	if err != nil {
		return nil, fmt.Errorf("replica %d: %w", cfg.Self, err)
	}

	cfg.Mux.Register(transport.ChanPayment, r.onPaymentMsg)
	// Batch-flush timers interleave with the submissions they flush; keep
	// the two on one dispatch goroutine (repMu makes any order safe, but
	// serialization keeps timer latency proportional to the payment
	// queue, not to unrelated channels).
	cfg.Mux.Register(transport.ChanLocal, r.onLocal, transport.SerializeWith(transport.ChanPayment))
	if cfg.Version == AstroII {
		r.creditChains = types.NewPeerCache[[]types.Digest](creditChainCacheEntries)
		r.creditWaves = types.NewLRU[types.Digest, retainedWave](creditChainCacheEntries)
		r.creditSigner = verifier.NewChainSigner(cfg.Verifier, creditChainCap, verifier.DefaultChainThreshold, r.sendCreditSingle, r.sendCreditChain)
		// Seed the sign-cost estimate so the first loaded wave already
		// knows whether chain batching pays off with these keys.
		probeStart := time.Now()
		if _, err := cfg.Keys.Sign(CreditChainDigest(nil)); err == nil {
			r.creditSigner.SeedCost(time.Since(probeStart))
		}
		cfg.Mux.Register(transport.ChanCredit, r.onCredit)
	}
	if r.recovered {
		r.finishRecovery()
	}
	return r, nil
}

// creditChainCap caps how many credit groups one signature covers; same
// rationale as the BRB ack-chain cap — the amortization gain is hyperbolic
// while the wire cost per CREDITBATCH is linear in the chain.
const creditChainCap = 32

// ID returns the replica's identity.
func (r *Replica) ID() types.ReplicaID { return r.cfg.Self }

// Close shuts the replica down cleanly. With durability enabled it first
// pushes buffered batches through the broadcast path (reserving their
// slots durably — even if the network is already gone, the reservations
// survive to be rebroadcast after restart), then writes a final compacted
// snapshot, flushes and fsyncs every queued WAL record, and closes the
// backend. Finally it releases the replica's scheduler resources — its
// flows' registrations on the (shared, long-lived) runtime — so harnesses
// that build many replicas per process do not grow the flow registry
// without bound. The caller must guarantee no further deliveries reach
// this replica (close the mux or the network first). Safe to call more
// than once.
func (r *Replica) Close() {
	if r.wal != nil {
		r.repMu.Lock()
		r.flushScheduled = true // suppress timer rearm; nothing will serve it
		r.sendQ = append(r.sendQ, r.takeBatchesLocked()...)
		r.repMu.Unlock()
		r.drainBroadcasts()
		r.wal.Snapshot(r.walSnapshotBuild)
		r.wal.Close()
	}
	for _, fl := range r.stripeFlows {
		fl.Release()
	}
}

// Abandon is the in-process kill -9: it discards unsynced WAL work
// without flushing — exactly what a power cut would — and releases the
// replica's scheduler resources. Crash-recovery tests use it to die at an
// arbitrary point; production shutdown uses Close.
func (r *Replica) Abandon() {
	if r.wal != nil {
		r.wal.Abort()
	}
	for _, fl := range r.stripeFlows {
		fl.Release()
	}
}

// SettledCount returns the number of payments this replica has settled;
// the experiment harness samples it to build throughput timelines.
func (r *Replica) SettledCount() uint64 { return r.settledTotal.Load() }

// ConfirmedCount returns the number of settlement confirmations this
// replica has sent to its clients.
func (r *Replica) ConfirmedCount() uint64 { return r.confirmedTotal.Load() }

// CreditSignStats returns how many signing operations this replica has
// spent on CREDIT messages and how many credit groups they covered;
// groups/ops > 1 means settlement-wave chain batching engaged.
func (r *Replica) CreditSignStats() (ops, groups uint64) {
	if r.creditSigner == nil {
		return 0, 0
	}
	return r.creditSigner.Stats()
}

// Balance returns the client's spendable balance as this replica sees it:
// the settled balance plus, if this replica represents the client under
// Astro II, the value of dependency certificates awaiting attachment.
func (r *Replica) Balance(c types.ClientID) types.Amount {
	bal := r.state.Balance(c)
	if r.cfg.Version == AstroII && r.cfg.RepOf(c) == r.cfg.Self {
		r.repMu.Lock()
		bal += r.pendingCreditLocked(c)
		r.repMu.Unlock()
	}
	return bal
}

// pendingCreditLocked sums the spendable value of c's attachable
// dependency certificates. repMu is held; stripe locks nest inside it.
func (r *Replica) pendingCreditLocked(c types.ClientID) types.Amount {
	return r.dedupedDepValue(c, r.repDeps[c])
}

// depAddsCreditLocked reports whether dep carries at least one credit for
// b that is neither held by an already-registered attachable certificate
// nor materialized into the settled balance. repMu is held.
func (r *Replica) depAddsCreditLocked(b types.ClientID, dep Dependency) bool {
	var held map[types.PaymentID]struct{}
	for _, ex := range r.repDeps[b] {
		for _, q := range ex.Group {
			if q.Beneficiary == b {
				if held == nil {
					held = make(map[types.PaymentID]struct{})
				}
				held[q.ID()] = struct{}{}
			}
		}
	}
	for _, q := range dep.Group {
		if q.Beneficiary != b {
			continue
		}
		id := q.ID()
		if _, ok := held[id]; ok {
			continue
		}
		if r.state.DepUsed(b, id) {
			continue
		}
		return true
	}
	return false
}

// dedupedDepValue values a dependency list for client c, counting each
// credited payment once even when certificates overlap — a restart-time
// CREDITREDO can regroup payments whose original settlement-wave
// certificate is still in flight, so two valid certificates for the same
// payment may both register — and skipping credits already materialized
// into the settled balance (settlement dedups through usedDeps, so an
// overlapping certificate carries no new money).
func (r *Replica) dedupedDepValue(c types.ClientID, deps []Dependency) types.Amount {
	var sum types.Amount
	var seen map[types.PaymentID]struct{}
	for _, d := range deps {
		for _, q := range d.Group {
			if q.Beneficiary != c {
				continue
			}
			id := q.ID()
			if _, dup := seen[id]; dup {
				continue
			}
			if seen == nil {
				seen = make(map[types.PaymentID]struct{})
			}
			seen[id] = struct{}{}
			if r.state.DepUsed(c, id) {
				continue
			}
			sum += q.Amount
		}
	}
	return sum
}

// Counters returns the state engine's lifetime statistics.
func (r *Replica) Counters() Counters { return r.state.Counters() }

// XLogSnapshot returns a copy of a client's exclusive log for audit.
func (r *Replica) XLogSnapshot(c types.ClientID) []types.Payment {
	return r.state.XLogSnapshot(c)
}

// NextSeq returns the next settleable sequence number for a client.
func (r *Replica) NextSeq(c types.ClientID) types.Seq {
	return r.state.NextSeq(c)
}

// StateSnapshot exports all xlogs for reconfiguration state transfer.
func (r *Replica) StateSnapshot() map[types.ClientID][]types.Payment {
	return r.state.Snapshot()
}

// validateBatch is the BRB external-validity hook: this replica endorses a
// batch only if every payment is broadcast by its spender's representative
// for a client of this shard, and does not conflict with a payment this
// replica already endorsed for the same identifier — the double-spend
// check of the broadcast layer (paper §II).
func (r *Replica) validateBatch(origin types.ReplicaID, _ uint64, payload []byte) bool {
	entries, err := DecodeBatch(payload)
	if err != nil {
		return false
	}
	myShard := r.cfg.ReplicaShard(r.cfg.Self)
	// End-to-end client signatures (paper §VI-A): verified by every
	// replica before endorsement, so a malicious representative cannot
	// fabricate payments for its clients. The whole batch fans out across
	// the verifier pool — with early exit on the first forgery — before
	// any lock is taken; at the spender's own representative each check
	// is a memo hit from submission time.
	if r.cfg.ClientKeys != nil {
		sigs := make([]verifier.ClientSig, len(entries))
		for i, e := range entries {
			sigs[i] = verifier.ClientSig{
				Client: e.Payment.Spender,
				Digest: PaymentDigest(e.Payment),
				Sig:    e.Sig,
			}
		}
		if !r.cfg.Verifier.VerifyClientBatch(r.cfg.ClientKeys, sigs).Wait() {
			return false
		}
	}
	return r.endorseEntries(origin, myShard, entries)
}

// endorseEntries performs the endorsement checks and, on success, records
// the batch in the endorsement memory — and in the WAL, so the promise
// survives a restart (recEndorse rides the next tail sync rather than a
// barrier: the residual window is documented in internal/wal, and its
// failure mode is liveness, never safety, because recovery refuses to
// adopt endorsement memory from peers).
func (r *Replica) endorseEntries(origin types.ReplicaID, myShard types.ShardID, entries []BatchEntry) bool {
	var w *wire.Writer
	if r.wal != nil {
		w = wire.NewWriter(4 + len(entries)*(16+32))
		w.U32(uint32(len(entries)))
	}
	r.endorsedMu.Lock()
	inBatch := make(map[types.PaymentID]types.Digest, len(entries))
	for _, e := range entries {
		if r.cfg.RepOf(e.Payment.Spender) != origin {
			r.endorsedMu.Unlock()
			return false // origin does not represent this spender
		}
		if r.cfg.ShardOf(e.Payment.Spender) != myShard {
			r.endorsedMu.Unlock()
			return false // xlog belongs to another shard
		}
		h := types.HashPayment(e.Payment)
		if prev, ok := r.endorsed[e.Payment.ID()]; ok && prev != h {
			r.endorsedMu.Unlock()
			return false // conflicting payment for the same identifier
		}
		// The endorsement memory alone cannot see a conflict *inside* one
		// batch (nothing is recorded until every entry checks out), so a
		// batch equivocating against itself must be refused here — settling
		// it would strand the second variant behind an unfillable sequence
		// gap and wedge the origin's per-replica FIFO for every client.
		if prev, ok := inBatch[e.Payment.ID()]; ok && prev != h {
			r.endorsedMu.Unlock()
			return false // batch conflicts with itself
		}
		inBatch[e.Payment.ID()] = h
	}
	for _, e := range entries {
		h := types.HashPayment(e.Payment)
		r.endorsed[e.Payment.ID()] = h
		if w != nil {
			w.U64(uint64(e.Payment.Spender))
			w.U64(uint64(e.Payment.Seq))
			w.Bytes32(h)
		}
	}
	r.endorsedMu.Unlock()
	if w != nil {
		r.wal.Append(recEndorse, w.Bytes())
	}
	return true
}

// onPaymentMsg handles the client-facing channel. Rejection paths are
// ordered cheapest-first and each increments its edge counter — the
// boundedness argument per hostile frame class is in edge.go.
func (r *Replica) onPaymentMsg(from transport.NodeID, payload []byte) {
	if len(payload) == 0 {
		r.edge.malformed.Add(1)
		return
	}
	switch payload[0] {
	case msgSubmit:
		p, sig, ok := decodeSubmit(payload[1:])
		if !ok {
			r.edge.malformed.Add(1)
			return
		}
		// Only the client itself may submit payments for its xlog: the
		// transport authenticates the sender node.
		if transport.ClientNode(p.Spender) != from {
			r.edge.spoofed.Add(1)
			return
		}
		if r.cfg.RepOf(p.Spender) != r.cfg.Self {
			r.edge.wrongRep.Add(1)
			return // not this replica's client
		}
		// End-to-end authentication: with client keys configured, a
		// submission must carry the spender's signature. Verified through
		// the memo cache, so when this replica's own batch comes back for
		// endorsement the same signature is a cache hit, not a second
		// ECDSA.
		if r.cfg.ClientKeys != nil && !r.cfg.Verifier.VerifyClient(r.cfg.ClientKeys, p.Spender, PaymentDigest(p), sig) {
			r.edge.badSig.Add(1)
			return
		}
		if !r.preScreenSubmit(p) {
			return
		}
		r.submit(p, sig)
	case msgStatsReq:
		r.handleStatsReq(from)
	case msgBalanceReq:
		if len(payload) != 9 {
			r.edge.malformed.Add(1)
			return
		}
		c := types.ClientID(be64(payload[1:9]))
		bal := r.Balance(c)
		_ = r.cfg.Mux.Send(from, transport.ChanPayment, encodeBalanceResp(c, bal))
	case msgSeqReq:
		if len(payload) != 9 {
			r.edge.malformed.Add(1)
			return
		}
		c := types.ClientID(be64(payload[1:9]))
		// Clients recovering from a restart resynchronize their sequence
		// counter from the replicated xlog (plus whatever this
		// representative already endorsed beyond it, so a resync cannot
		// collide with in-flight payments).
		_ = r.cfg.Mux.Send(from, transport.ChanPayment, encodeSeqResp(c, r.nextUsableSeq(c)))
	case msgConfirm, msgBalanceResp, msgSeqResp, msgStatsResp:
		// Response kinds reflected back at a replica: hostile, drop.
		r.edge.malformed.Add(1)
	default:
		r.edge.malformed.Add(1)
	}
}

// nextUsableSeq returns the lowest sequence number a restarted client can
// safely assign: past everything settled in the xlog, everything accepted
// from the client into any pre-settlement stage (held, buffered,
// broadcast in flight — the submittedHi high-water mark), and everything
// this replica has endorsed. Handing out a number still in flight would
// let the restarted client create exactly the conflicting-resubmission
// wedge preScreenSubmit exists to prevent.
func (r *Replica) nextUsableSeq(c types.ClientID) types.Seq {
	next := r.state.NextSeq(c)
	r.repMu.Lock()
	if hi := r.submittedHi[c]; hi >= next {
		next = hi + 1
	}
	r.repMu.Unlock()
	r.endorsedMu.Lock()
	for {
		if _, inflight := r.endorsed[types.PaymentID{Spender: c, Seq: next}]; !inflight {
			break
		}
		next++
	}
	r.endorsedMu.Unlock()
	return next
}

// preScreenSubmit rejects submissions that could never settle before they
// occupy a broadcast slot (ROADMAP "wedged representative"): peers
// correctly refuse to endorse a batch containing a payment that conflicts
// with one they already endorsed, but the refused batch would occupy a BRB
// slot that never delivers — and per-origin FIFO would then block every
// later batch from this representative, wedging unrelated clients. The
// screen consults the same endorsement memory peers will consult, so a
// doomed payment is refused locally and instantly instead.
//
// A byte-identical resubmission of an already-settled payment (a client
// retrying a lost confirmation) is answered with a fresh confirmation
// rather than a rebroadcast.
func (r *Replica) preScreenSubmit(p types.Payment) bool {
	if p.Seq == 0 {
		r.edge.seqZero.Add(1)
		return false // sequence numbers start at 1; Seq 0 can never settle
	}
	if settled, ok := r.state.SettledAt(p.Spender, p.Seq); ok {
		if settled == p {
			r.edge.settledReplay.Add(1)
			_ = r.cfg.Mux.Send(transport.ClientNode(p.Spender), transport.ChanPayment, encodeConfirm(p.ID()))
		} else {
			r.edge.conflicting.Add(1)
		}
		return false // settled identifier: never occupy a new slot for it
	}
	if !r.withinSeqWindow(p) {
		// Far beyond anything settleable: accepting it would strand a
		// settlement-queue entry behind a gap that can never fill.
		r.edge.futureSeq.Add(1)
		return false
	}
	r.endorsedMu.Lock()
	h, seen := r.endorsed[p.ID()]
	r.endorsedMu.Unlock()
	if seen {
		// Conflicting: peers would refuse the batch (double-spend
		// protection) and wedge this origin's FIFO. Identical: it is
		// already in flight; the confirmation will arrive on settlement.
		// Either way, do not occupy another slot.
		if h != types.HashPayment(p) {
			r.edge.conflicting.Add(1)
		}
		return false
	}
	return true
}

// submit enqueues a client payment for broadcast, attaching accumulated
// dependencies (Astro II, Listing 7) and enforcing the projected-balance
// rule so a correct representative never wedges a client's xlog.
//
// The (identifier, content-hash) binding is reserved in the endorsement
// memory *here*, before the payment sits in the assembly buffer or the
// held queue: preScreenSubmit's endorsed-map check alone leaves a window
// — from acceptance until the broadcast batch comes back for endorsement
// — in which an equivocating twin would pass the same check and land in
// the same batch, which peers refuse wholesale (wedging this origin's
// FIFO for every client). The reservation is in-memory only; the WAL
// record is written at endorsement time as before, which is consistent
// across a crash because the unbroadcast buffer dies with the process.
func (r *Replica) submit(p types.Payment, sig []byte) {
	id, h := p.ID(), types.HashPayment(p)
	r.endorsedMu.Lock()
	if prev, ok := r.endorsed[id]; ok {
		r.endorsedMu.Unlock()
		if prev != h {
			r.edge.conflicting.Add(1)
		}
		// Identical: already in flight; the confirmation arrives on
		// settlement. Either way, do not occupy another slot.
		return
	}
	r.endorsed[id] = h
	r.endorsedMu.Unlock()

	r.repMu.Lock()
	if p.Seq > r.submittedHi[p.Spender] {
		r.submittedHi[p.Spender] = p.Seq
	}
	if r.cfg.Version == AstroII {
		if len(r.pendingSubmits[p.Spender]) > 0 || !r.fundedLocked(p) {
			if len(r.pendingSubmits[p.Spender]) >= maxHeldSubmits {
				// Hold-queue cap: shed instead of growing without bound
				// under an unfunded-submit flood. A correct client retries
				// once its in-flight payments settle — so release the
				// reservation taken above, or that retry would be treated
				// as already in flight and dropped forever.
				r.edge.heldOverflow.Add(1)
				r.repMu.Unlock()
				r.endorsedMu.Lock()
				if cur, ok := r.endorsed[id]; ok && cur == h {
					delete(r.endorsed, id)
				}
				r.endorsedMu.Unlock()
				return
			}
			r.pendingSubmits[p.Spender] = append(r.pendingSubmits[p.Spender], heldSubmit{payment: p, sig: sig})
			r.repMu.Unlock()
			return
		}
		r.bufferLocked(p, sig)
	} else {
		r.buffer = append(r.buffer, BatchEntry{Payment: p, Sig: sig})
	}
	r.afterBufferLocked()
}

// fundedLocked reports whether the client's projected balance covers p.
// repMu is held; the settled balance is read under the client's stripe
// lock (stripe locks nest inside repMu, never the reverse).
func (r *Replica) fundedLocked(p types.Payment) bool {
	c := p.Spender
	avail := r.state.Balance(c) + r.inflightDeps[c] + r.pendingCreditLocked(c)
	need := r.inflightOut[c] + p.Amount
	return avail >= need
}

// bufferLocked attaches the client's accumulated dependencies to the
// payment and appends it to the batch buffer (Astro II). repMu is held.
func (r *Replica) bufferLocked(p types.Payment, sig []byte) {
	c := p.Spender
	// Deduplicated valuation, mirroring what settlement will actually
	// credit: the symmetric unwind through attachedVal keeps inflightDeps
	// exact even when attached certificates overlap.
	depVal := r.pendingCreditLocked(c)
	deps := r.repDeps[c]
	delete(r.repDeps, c)
	r.inflightDeps[c] += depVal
	r.inflightOut[c] += p.Amount
	r.attachedVal[p.ID()] = depVal
	r.buffer = append(r.buffer, BatchEntry{Payment: p, Sig: sig, Deps: deps})
}

// afterBufferLocked flushes or schedules a flush; it releases repMu.
func (r *Replica) afterBufferLocked() {
	flushNow := len(r.buffer) > 0 && (len(r.buffer) >= r.cfg.BatchSize || r.myInflight == 0)
	schedule := !flushNow && !r.flushScheduled && len(r.buffer) > 0
	if schedule {
		r.flushScheduled = true
	}
	if flushNow {
		r.sendQ = append(r.sendQ, r.takeBatchesLocked()...)
	}
	r.repMu.Unlock()

	if schedule {
		delay := r.cfg.BatchDelay
		time.AfterFunc(delay, func() {
			_ = r.cfg.Mux.SendLocal([]byte{localFlush})
		})
	}
	r.drainBroadcasts()
}

// takeBatchesLocked drains the buffer into batches of at most BatchSize
// and charges them against myInflight. repMu is held.
func (r *Replica) takeBatchesLocked() [][]BatchEntry {
	var out [][]BatchEntry
	for len(r.buffer) > 0 {
		n := len(r.buffer)
		if n > r.cfg.BatchSize {
			n = r.cfg.BatchSize
		}
		out = append(out, r.buffer[:n:n])
		r.buffer = r.buffer[n:]
	}
	r.buffer = nil
	r.myInflight += len(out)
	return out
}

// drainBroadcasts ships queued batches to the BRB layer, in queue order,
// with one active drainer at a time. Neither shipped Broadcaster can fail
// after construction (both only enqueue), but the interface allows it —
// and a future implementation that can fail transiently must not crash a
// node mid-settlement (the pre-PR4 behavior was a panic). A failure
// leaves the batch at the queue front — nothing newer can overtake it, so
// per-client FIFO is preserved by construction — counts it, and retries
// on the batch timer; the in-flight charge stays in place, since the
// batch is still on its way to broadcast.
func (r *Replica) drainBroadcasts() {
	r.repMu.Lock()
	if r.sending {
		r.repMu.Unlock()
		return // the active drainer will pick up what we queued
	}
	r.sending = true
	for len(r.sendQ) > 0 {
		b := r.sendQ[0]
		r.repMu.Unlock()
		payload := EncodeBatch(b)
		if r.wal != nil {
			// Durable slot reservation, fsynced before the first wire
			// message: once any peer can have seen (and acked) this slot,
			// the restart path is guaranteed to know it was used — reusing
			// it under a different payload would be self-equivocation that
			// peers silently refuse, wedging the origin forever. The
			// barrier batches with concurrent appends, so under load one
			// fsync covers a settlement wave's worth of records.
			slot := r.reserveSlot(payload)
			r.wal.Append(recBcast, encodeBcastRecord(slot, payload))
			r.wal.Barrier()
		}
		_, err := r.bc.Broadcast(payload)
		// On a Broadcast error the reservation is deliberately kept:
		// whether the broadcaster consumed the slot is unknowable from
		// here, and an orphan reservation is benign (the restart path
		// rebroadcasts it and the payment layer drops any duplicate),
		// while a reused slot is self-equivocation peers silently refuse.
		r.repMu.Lock()
		if err != nil {
			r.broadcastFailures.Add(1)
			r.sending = false
			schedule := !r.flushScheduled
			if schedule {
				r.flushScheduled = true
			}
			r.repMu.Unlock()
			if schedule {
				time.AfterFunc(r.cfg.BatchDelay, func() {
					_ = r.cfg.Mux.SendLocal([]byte{localFlush})
				})
			}
			return
		}
		r.sendQ = r.sendQ[1:]
	}
	r.sending = false
	r.repMu.Unlock()
}

// BroadcastFailures reports how many times the broadcaster rejected a
// batch and the replica fell back to queue-and-retry.
func (r *Replica) BroadcastFailures() uint64 { return r.broadcastFailures.Load() }

// onLocal handles self-addressed timer events.
func (r *Replica) onLocal(_ transport.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != localFlush {
		return
	}
	r.repMu.Lock()
	r.flushScheduled = false
	r.sendQ = append(r.sendQ, r.takeBatchesLocked()...)
	r.repMu.Unlock()
	r.drainBroadcasts()
}

// onDeliver is the BRB delivery callback: approve and settle the batch —
// fanned out across the state stripes — then emit confirmations and
// (Astro II) CREDIT messages.
func (r *Replica) onDeliver(origin types.ReplicaID, slot uint64, payload []byte) {
	entries, err := DecodeBatch(payload)
	if err != nil {
		return // validated before endorsement; cannot happen from correct peers
	}
	r.screenDependencies(entries)
	drain := false
	if origin == r.cfg.Self {
		if r.wal != nil {
			r.releaseSlot(slot)
		}
		r.repMu.Lock()
		if r.myInflight > 0 {
			r.myInflight--
			// Self-clocked batching: the wire is free again; ship what
			// accumulated while the previous batch was in flight.
			if r.myInflight == 0 && len(r.buffer) > 0 {
				r.sendQ = append(r.sendQ, r.takeBatchesLocked()...)
				drain = true
			}
		}
		r.repMu.Unlock()
	}
	settled := r.settleEntries(entries)
	if r.wal != nil {
		// State first, records second: the snapshot build runs on the same
		// FIFO flow as these appends, so anything it truncates is already
		// inside the image it writes. recSettle re-encodes the post-screen
		// entries — replay drives the identical input through the engine.
		// Both records ride the next tail sync; the delivery is
		// reconstructible from peers (state transfer) until then.
		if len(entries) > 0 {
			r.wal.Append(recSettle, EncodeBatch(entries))
		}
		if origin == r.cfg.Self {
			r.wal.Append(recBcastDone, encodeBcastDoneRecord(slot))
		}
		r.walMaybeSnapshot()
	}
	r.postSettle(settled)
	if drain {
		r.drainBroadcasts()
	}
}

// settleEntries applies a delivered batch to the state, fanning the
// entries out across the state's stripes so disjoint accounts settle
// concurrently. One spender's entries always map to one stripe and are
// applied there in batch order, and the BRB layer delivers batches of one
// origin serially with settleEntries completing before the next delivery
// — so every spender's stripe tasks are enqueued (and, per-flow FIFO,
// executed) in batch order: per-spender FIFO is exactly preserved, even
// with lane stealing enabled. The merged result lists every settlement in
// entry order (per-entry results are deterministic across replicas; the
// CREDIT groups derived from them must hash identically everywhere for
// f+1 accumulation to succeed).
//
// In the default mode each stripe group is submitted to the stripe's
// pinned flow — persistent lane workers, zero goroutines spawned per
// delivery — and the deliverer runs stealable verification work while it
// waits. Config.SettleSpawn restores the spawn-per-delivery baseline.
func (r *Replica) settleEntries(entries []BatchEntry) []types.Payment {
	if len(entries) == 0 {
		return nil
	}
	serial := func() []types.Payment {
		var settled []types.Payment
		for _, e := range entries {
			settled = append(settled, r.state.ApplyEntry(e)...)
		}
		return settled
	}
	if r.state.Stripes() == 1 || len(entries) == 1 {
		return serial()
	}
	// Group entry indices by stripe, preserving order within each group.
	groups := make(map[int][]int)
	for i, e := range entries {
		si := r.state.StripeIndex(e.Payment.Spender)
		groups[si] = append(groups[si], i)
	}
	if len(groups) == 1 {
		return serial()
	}
	results := make([][]types.Payment, len(entries))
	run := func(idxs []int) {
		for _, i := range idxs {
			results[i] = r.state.ApplyEntry(entries[i])
		}
	}
	if r.stripeFlows == nil {
		// Spawn-per-delivery baseline (Config.SettleSpawn).
		var wg sync.WaitGroup
		var own []int
		for _, idxs := range groups {
			if own == nil {
				own = idxs // the delivery goroutine settles one stripe itself
				continue
			}
			wg.Add(1)
			idxs := idxs
			// Routed through sched.Go so the spawn-guard test counts the
			// baseline's per-delivery goroutines.
			sched.Go(func() {
				defer wg.Done()
				run(idxs)
			})
		}
		run(own)
		wg.Wait()
	} else {
		// Pinned-stripe lanes: one task per stripe group, on the stripe's
		// flow. The deliverer must not return before the wave completes
		// (the next delivery's enqueues define per-spender FIFO), so it
		// waits — draining its own stripe flows and stealing verifier work
		// meanwhile. Draining its own flows is what makes the wait safe
		// from ANY calling context: Bracha delivers on a dispatch lane,
		// and a lane blocked here must be able to finish its own wave
		// rather than depend on the other lanes being free (stripe tasks
		// are pure state application — they never block or re-enter).
		done := make(chan struct{})
		var pending atomic.Int32
		pending.Store(int32(len(groups)))
		flows := make([]*sched.Flow, 0, len(groups))
		for si, idxs := range groups {
			idxs := idxs
			flows = append(flows, r.stripeFlows[si])
			r.stripeFlows[si].Submit(func() {
				run(idxs)
				if pending.Add(-1) == 0 {
					close(done)
				}
			})
		}
		r.cfg.Sched.HelpFlows(done, flows)
	}
	var settled []types.Payment
	for _, part := range results {
		settled = append(settled, part...)
	}
	return settled
}

// postSettle handles everything that follows settlement: confirmations to
// own clients, in-flight projection updates, and (Astro II) queuing the
// wave's credit groups on the chain signer.
func (r *Replica) postSettle(settled []types.Payment) {
	if len(settled) == 0 {
		return
	}
	r.settledTotal.Add(uint64(len(settled)))

	var confirms []types.Payment
	var groups map[types.ReplicaID][]types.Payment
	retry := make(map[types.ClientID]struct{})
	if r.cfg.Version == AstroII {
		groups = make(map[types.ReplicaID][]types.Payment)
	}
	r.repMu.Lock()
	for _, p := range settled {
		if r.cfg.RepOf(p.Spender) == r.cfg.Self {
			confirms = append(confirms, p)
			if r.cfg.Version == AstroII {
				// Clamped, not plain subtraction: Amount is unsigned, and a
				// restarted replica can settle a payment whose in-flight
				// charge predates its snapshot — an unclamped decrement
				// would wrap the projection to ~2^64 and freeze the client.
				if v := r.inflightOut[p.Spender]; v <= p.Amount {
					delete(r.inflightOut, p.Spender)
				} else {
					r.inflightOut[p.Spender] = v - p.Amount
				}
				if v, ok := r.attachedVal[p.ID()]; ok {
					if cur := r.inflightDeps[p.Spender]; cur <= v {
						delete(r.inflightDeps, p.Spender)
					} else {
						r.inflightDeps[p.Spender] = cur - v
					}
					delete(r.attachedVal, p.ID())
				}
				// With settlement and projection under different locks, a
				// submission racing this settle may have observed the
				// debited balance while the in-flight projection still
				// charged the payment — and been held although fundable.
				// Re-evaluating held submissions after the projection
				// shrinks closes that window (settlement itself never
				// frees funds under Astro II, so this is the only trigger
				// needed beyond new dependencies).
				if len(r.pendingSubmits[p.Spender]) > 0 {
					retry[p.Spender] = struct{}{}
				}
			}
		}
		if r.cfg.Version == AstroII {
			groups[r.cfg.RepOf(p.Beneficiary)] = append(groups[r.cfg.RepOf(p.Beneficiary)], p)
		}
	}
	r.retryPendingLocked(retry) // releases repMu

	for _, p := range confirms {
		r.confirmedTotal.Add(1)
		_ = r.cfg.Mux.Send(transport.ClientNode(p.Spender), transport.ChanPayment, encodeConfirm(p.ID()))
	}

	// Astro II: queue one CREDIT per beneficiary-representative group —
	// the paper's second batching level (§VI-A): as many signatures as
	// sub-batches, not as payments. The chain signer then collapses the
	// groups pending across settlement waves into one signature per
	// drain pass, and hashes/signs pool-side, off this delivery
	// goroutine. Enqueue in ascending representative order: group
	// contents are already replica-deterministic, so a deterministic
	// order makes the whole wave chain replica-deterministic too — when
	// replicas' wave boundaries align, their chains are byte-identical
	// and the dependency-certificate interning table collapses the k
	// signers' chains into one encoding (deps.go).
	reps := make([]types.ReplicaID, 0, len(groups))
	for rep := range groups {
		reps = append(reps, rep)
	}
	slices.Sort(reps)
	for _, rep := range reps {
		r.creditSigner.Enqueue(creditJob{rep: rep, group: groups[rep]})
	}
}

// sendCreditSingle signs and sends one credit group in the single-group
// wire form (ChainSigner flush callback, pool side).
func (r *Replica) sendCreditSingle(j creditJob) {
	digest := CreditGroupDigest(j.group)
	sig, err := r.creditSigner.Sign(1, func() ([]byte, error) { return r.cfg.Keys.Sign(digest) })
	if err != nil {
		return // entropy failure; withholding a CREDIT is always safe
	}
	msg := encodeCredit(creditMsg{Signer: r.cfg.Self, Group: j.group, Sig: sig})
	_ = r.cfg.Mux.Send(transport.ReplicaNode(j.rep), transport.ChanCredit, msg)
}

// sendCreditChain signs a whole settlement wave of credit groups with one
// signature over the chain of group digests, and sends each destination
// representative a reference to the chain plus its groups (ChainSigner
// flush callback). The chain itself is encoded exactly once, into the
// wave's pooled scratch, and crosses the wire only to destinations that
// have not seen it (CREDITCHAINDEF ahead of the CREDITREF on the same
// FIFO channel); the wave is retained so a CREDITNACK — an evicted or
// never-seen reference — degrades to the self-contained legacy
// CREDITBATCH instead of losing the CREDIT.
func (r *Replica) sendCreditChain(jobs []creditJob, wave *verifier.Wave) {
	chain := make([]types.Digest, len(jobs))
	for i, j := range jobs {
		chain[i] = CreditGroupDigest(j.group)
	}
	cd := CreditChainDigest(chain)
	sig, err := r.creditSigner.Sign(len(jobs), func() ([]byte, error) { return r.cfg.Keys.Sign(cd) })
	if err != nil {
		return
	}
	r.retainCreditWave(cd, retainedWave{chain: chain, sig: sig, jobs: jobs})
	// Self-prime the chain cache: replicas whose wave boundaries align
	// sign byte-identical chains, so a reference from an aligned peer
	// resolves against our own entry (knownCreditChain falls through to
	// the content-addressed any-peer probe) without any definition
	// crossing the wire.
	r.learnCreditChain(r.cfg.Self, cd, chain)
	byRep := make(map[types.ReplicaID][]creditBatchGroup)
	for i, j := range jobs {
		byRep[j.rep] = append(byRep[j.rep], creditBatchGroup{ChainIdx: uint32(i), Group: j.group})
	}
	var def *wire.Writer
	if r.cfg.EagerChainDefs {
		def = wave.Scratch(creditChainDefSize(chain))
		appendCreditChainDef(def, chain)
	}
	for rep, gs := range byRep {
		dest := transport.ReplicaNode(rep)
		if def != nil {
			// Eager baseline: every wave's chain is new, so each
			// destination gets exactly one definition — sent ahead of the
			// reference on the FIFO channel (no cross-wave sent-set to
			// consult; see creditref.go).
			_ = r.cfg.Mux.Send(dest, transport.ChanCredit, def.Bytes())
			r.creditRefStats.DefsSent.Add(1)
		} else {
			// Lazy default: the reference goes out alone. A destination
			// demands the chain (CREDITNACK) only when it both misses it —
			// aligned peers resolve it from their own wave — and still
			// needs a group: once f+1 other signers complete a
			// certificate, our reference is dropped without any round
			// trip, and this wave's definition bytes were never spent.
			r.creditRefStats.DefsDeferred.Add(1)
		}
		m := creditRefMsg{Signer: r.cfg.Self, ChainDigest: cd, Sig: sig, Groups: gs}
		ref := wave.Scratch(creditRefSize(m))
		appendCreditRef(ref, m)
		_ = r.cfg.Mux.Send(dest, transport.ChanCredit, ref.Bytes())
		r.creditRefStats.RefsSent.Add(1)
	}
}

// onCredit routes the credit channel (paper Listing 10): single-group
// CREDITs, chain-signed CREDITBATCHes, and the chain-reference forms all
// accumulate into dependency certificates for this replica's clients —
// f+1 distinct signed approvals from the spender's shard form a
// transferable dependency.
func (r *Replica) onCredit(from transport.NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	// Only registered replicas originate credit traffic (credits cross
	// shards, so the key registry — not this shard's peer list — is the
	// membership test). The chain caches are keyed by the sender, each
	// bounded individually, so no peer can pollute or evict another's
	// definitions, and the registry bounds how many caches can exist.
	if from >= transport.ClientNodeBase {
		r.edge.creditOutsider.Add(1)
		return
	}
	peer := types.ReplicaID(from)
	if !r.cfg.Registry.Known(peer) {
		r.edge.creditOutsider.Add(1)
		return
	}
	switch payload[0] {
	case msgCreditSingle:
		m, err := decodeCredit(payload[1:])
		if err != nil {
			return
		}
		if !r.creditGroupInShard(m.Signer, m.Group) {
			return
		}
		cs := r.lookupCreditState(m.Group)
		if cs == nil {
			return // certificate already complete; drop without ECDSA
		}
		// The signature check runs on the verifier pool, off the
		// transport dispatch goroutine; certificate accumulation
		// re-enters through the completion callback. Accumulation order
		// across signers is irrelevant — any f+1 of them form the
		// dependency.
		r.cfg.Verifier.VerifyReplicaDetached(r.cfg.Registry, m.Signer, cs.digest, m.Sig, func(valid bool) {
			if valid {
				r.creditVerified(cs, m.Signer, m.Sig, nil)
			}
		})
	case msgCreditBatch:
		m, err := decodeCreditBatch(payload[1:])
		if err != nil {
			return
		}
		// Intern the chain (and remember it as defined by this peer, so a
		// later reference to it — the NACK fallback re-primes the cache
		// this way — resolves without another round trip).
		cd := CreditChainDigest(m.Chain)
		m.Chain = r.learnCreditChain(peer, cd, m.Chain)
		r.acceptCreditBatch(m, cd)
	case msgCreditChainDef:
		chain, err := decodeCreditChainDef(payload[1:])
		if err != nil {
			return
		}
		r.learnCreditChain(peer, CreditChainDigest(chain), chain)
	case msgCreditRef:
		m, err := decodeCreditRef(payload[1:])
		if err != nil {
			return
		}
		chain, ok := r.knownCreditChain(peer, m.ChainDigest)
		if !ok {
			r.creditRefStats.RefMisses.Add(1)
			// Lazy mode: a reference whose every group's certificate is
			// already complete (f+1 other signers got there first) carries
			// nothing we still need — drop it silently instead of
			// demanding a chain we would only use to discard the groups.
			// This, not the NACK round trip, is the common lazy case.
			if !r.cfg.EagerChainDefs && !r.creditRefNeeded(m) {
				return
			}
			// Evicted, never seen (lazy), or eager-mode eviction: demand
			// the chain from the sender.
			_ = r.cfg.Mux.Send(from, transport.ChanCredit, encodeCreditNack(m.ChainDigest))
			r.creditRefStats.NacksSent.Add(1)
			return
		}
		r.creditRefStats.RefHits.Add(1)
		// The cache is keyed by the locally recomputed digest, so the
		// resolved chain is guaranteed to hash to m.ChainDigest — the
		// signature check below needs no rehash.
		r.acceptCreditBatch(creditBatchMsg{Signer: m.Signer, Chain: chain, Sig: m.Sig, Groups: m.Groups}, m.ChainDigest)
	case msgCreditNack:
		missing, err := decodeCreditNack(payload[1:])
		if err != nil {
			return
		}
		r.handleCreditNack(from, missing)
	case msgCreditRedo:
		if r.creditSigner == nil {
			return
		}
		groups, err := decodeCreditRedo(payload[1:])
		if err != nil {
			return
		}
		// A restarted representative lost CREDITs addressed to it while it
		// was down (there is no retransmission), stranding its clients'
		// certificates below f+1. Re-sign — through the normal send path,
		// so accumulation and dedup at the requester are unchanged — any
		// requested group this replica can itself vouch for: every payment
		// settled in the local xlogs, every beneficiary represented by the
		// requester, spenders in this replica's shard. Nothing here trusts
		// the requester: the signature only restates what the local log
		// already committed to, and double-materialization is blocked at
		// attach time by the beneficiaries' used-dependency sets.
		for _, group := range groups {
			if !r.redoGroupVouchable(peer, group) {
				continue
			}
			r.creditSigner.Enqueue(creditJob{rep: peer, group: group})
		}
	case msgCreditRescan:
		if r.creditSigner == nil {
			return
		}
		if err := decodeCreditRescan(payload[1:]); err != nil {
			return
		}
		// A restarted representative in *another* shard cannot enumerate
		// the payments it is missing (it has no copy of this shard's
		// xlogs); scan them on its behalf. See serveCreditRescan.
		r.serveCreditRescan(peer)
	}
}

// creditRefNeeded reports whether any group of an unresolvable reference
// still has an open certificate — only then is the chain worth demanding.
// Groups outside the signer's shard are never needed (acceptCreditBatch
// would drop them after resolution anyway).
func (r *Replica) creditRefNeeded(m creditRefMsg) bool {
	for _, g := range m.Groups {
		if !r.creditGroupInShard(m.Signer, g.Group) {
			continue
		}
		if r.lookupCreditState(g.Group) != nil {
			return true
		}
	}
	return false
}

// redoGroupVouchable checks one CREDITREDO group against local state: this
// replica may re-sign it iff it is a credit group it could have produced
// for the requester at settlement time.
func (r *Replica) redoGroupVouchable(requester types.ReplicaID, group []types.Payment) bool {
	if !r.creditGroupInShard(r.cfg.Self, group) {
		return false
	}
	for _, p := range group {
		if r.cfg.RepOf(p.Beneficiary) != requester {
			return false
		}
		settled, ok := r.state.SettledAt(p.Spender, p.Seq)
		if !ok || settled != p {
			return false
		}
	}
	return true
}

// acceptCreditBatch resolves a chain-signed wave's groups against the
// chain and accumulates the endorsed ones: a group whose recomputed digest
// does not sit at its claimed chain index is not endorsed by the signature
// and is dropped. cd is CreditChainDigest(m.Chain), already computed by
// every caller.
func (r *Replica) acceptCreditBatch(m creditBatchMsg, cd types.Digest) {
	var accepted []*creditState
	for _, g := range m.Groups {
		if int(g.ChainIdx) >= len(m.Chain) {
			continue // reference form bounds indices only by the cap
		}
		if !r.creditGroupInShard(m.Signer, g.Group) {
			continue
		}
		cs := r.lookupCreditState(g.Group)
		if cs == nil || cs.digest != m.Chain[g.ChainIdx] {
			continue
		}
		accepted = append(accepted, cs)
	}
	if len(accepted) == 0 {
		return
	}
	// One ECDSA over the chain digest covers every accepted group; the
	// verifier memo collapses re-deliveries and — at this replica — the
	// same chain arriving for other groups.
	r.cfg.Verifier.VerifyReplicaDetached(r.cfg.Registry, m.Signer, cd, m.Sig, func(valid bool) {
		if !valid {
			return
		}
		for _, cs := range accepted {
			r.creditVerified(cs, m.Signer, m.Sig, m.Chain)
		}
	})
}

// creditGroupInShard checks that every spender of the group belongs to the
// signer's shard — else the f+1 counting would mix shards.
func (r *Replica) creditGroupInShard(signer types.ReplicaID, group []types.Payment) bool {
	if len(group) == 0 {
		return false
	}
	shard := r.cfg.ShardOf(group[0].Spender)
	if r.cfg.ReplicaShard(signer) != shard {
		return false
	}
	for _, p := range group[1:] {
		if r.cfg.ShardOf(p.Spender) != shard {
			return false
		}
	}
	return true
}

// lookupCreditState finds (or creates) the accumulator for a credit group,
// hashing the group only on first sight: the bucket key is cheap (first
// payment ID + length) and buckets are disambiguated by exact group
// equality, so the k copies of a group sent by k signers cost one
// CreditGroupDigest, not k. Returns nil when the certificate is already
// complete — the remaining ~m-f-1 CREDIT copies are dropped without the
// expensive signature verification.
func (r *Replica) lookupCreditState(group []types.Payment) *creditState {
	k := creditKey{first: group[0].ID(), n: len(group)}
	r.creditMu.Lock()
	defer r.creditMu.Unlock()
	for _, cs := range r.creditAccum[k] {
		if slices.Equal(cs.group, group) {
			if cs.done {
				return nil
			}
			return cs
		}
	}
	cs := &creditState{group: group, digest: CreditGroupDigest(group)}
	r.creditAccum[k] = append(r.creditAccum[k], cs)
	return cs
}

// creditVerified accumulates a verified CREDIT signature (with its chain
// context, if wave-signed) and, on reaching f+1, registers the dependency
// certificate and retries held submissions.
func (r *Replica) creditVerified(cs *creditState, signer types.ReplicaID, sig []byte, chain []types.Digest) {
	r.creditMu.Lock()
	if cs.done || cs.cert.Has(signer) {
		r.creditMu.Unlock()
		return
	}
	cs.cert.Sigs = append(cs.cert.Sigs, DepSig{Replica: signer, Sig: sig, Chain: chain})
	if cs.cert.Len() < r.cfg.F+1 {
		r.creditMu.Unlock()
		return
	}
	cs.done = true
	dep := Dependency{Group: cs.group, Cert: cs.cert}
	r.creditMu.Unlock()

	beneficiaries := make(map[types.ClientID]struct{})
	for _, p := range dep.Group {
		if r.cfg.RepOf(p.Beneficiary) == r.cfg.Self {
			beneficiaries[p.Beneficiary] = struct{}{}
		}
	}
	r.repMu.Lock()
	for b := range beneficiaries {
		if !r.depAddsCreditLocked(b, dep) {
			// Every credit is already held or materialized — a CREDITREDO
			// regrouping that raced the original certificate. Registering
			// it would only grow the attachable set with dead weight.
			delete(beneficiaries, b)
			continue
		}
		r.repDeps[b] = append(r.repDeps[b], dep)
	}
	if r.wal != nil && len(beneficiaries) > 0 {
		// Log the certificate before any retry can attach it to a payment:
		// until its credits settle into usedDeps, this record is the
		// beneficiaries' only durable claim to the funds. Replay re-adds
		// it to the attachable set; restoreProjections strips it again if
		// a recovered reservation already carries it.
		w := wire.NewWriter(dependencySize(dep))
		encodeDependency(w, dep)
		r.wal.Append(recDep, w.Bytes())
	}
	// New funds may unblock held submissions.
	r.retryPendingLocked(beneficiaries) // releases repMu
}

// retryPendingLocked re-evaluates held submissions of the given clients in
// FIFO order. repMu is held; it is released (via afterBufferLocked).
func (r *Replica) retryPendingLocked(clients map[types.ClientID]struct{}) {
	for c := range clients {
		queue := r.pendingSubmits[c]
		released := 0
		for _, h := range queue {
			if !r.fundedLocked(h.payment) {
				break
			}
			r.bufferLocked(h.payment, h.sig)
			released++
		}
		if released == len(queue) {
			delete(r.pendingSubmits, c)
		} else if released > 0 {
			r.pendingSubmits[c] = queue[released:]
		}
	}
	r.afterBufferLocked()
}

// PendingSubmits reports how many submissions are held back awaiting
// funds for the given client (Astro II representative-side queue).
func (r *Replica) PendingSubmits(c types.ClientID) int {
	r.repMu.Lock()
	defer r.repMu.Unlock()
	return len(r.pendingSubmits[c])
}

// screenDependencies verifies every dependency certificate attached to the
// batch — outside any settlement lock, fanned out across the verifier pool
// — and strips the ones that fail, so State credits what remains without
// re-verifying inside the settlement critical section. Stripping a bad
// certificate is exactly the semantics State's inline check used to apply
// ("unverifiable certificate: ignore, do not credit"); every correct
// replica screens the same delivered batch identically, so replicated
// state stays consistent.
func (r *Replica) screenDependencies(entries []BatchEntry) {
	if r.cfg.Version != AstroII {
		return
	}
	type check struct {
		entry, dep int
		f          *verifier.Future
	}
	var checks []check
	for ei := range entries {
		for di := range entries[ei].Deps {
			d := entries[ei].Deps[di]
			f := r.cfg.Verifier.VerifyAsync(func() bool {
				return VerifyDependency(d, r.cfg.Verifier, r.cfg.Registry, r.cfg.F, r.cfg.ShardOf, r.cfg.ReplicaShard) == nil
			}, nil)
			checks = append(checks, check{entry: ei, dep: di, f: f})
		}
	}
	if len(checks) == 0 {
		return
	}
	var invalid map[[2]int]bool
	for _, c := range checks {
		if !c.f.Wait() {
			if invalid == nil {
				invalid = make(map[[2]int]bool)
			}
			invalid[[2]int{c.entry, c.dep}] = true
		}
	}
	if invalid == nil {
		return
	}
	for ei := range entries {
		deps := entries[ei].Deps
		kept := deps[:0:len(deps)]
		for di := range deps {
			if !invalid[[2]int{ei, di}] {
				kept = append(kept, deps[di])
			}
		}
		entries[ei].Deps = kept
	}
}
