package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/brb"
	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/types"
)

// Replica is one node of an Astro deployment (paper §III). It plays two
// roles at once:
//
//   - state replica: it participates in the shard's BRB group, and on
//     every delivery approves and settles payments into its copy of the
//     shard's xlogs;
//   - representative: for the clients mapped to it, it accepts payment
//     submissions, batches them (paper §VI-A), broadcasts the batches, and
//     confirms settlement back to the clients. Under Astro II it also
//     collects CREDIT messages into dependency certificates on behalf of
//     its clients (paper Listing 10).
type Replica struct {
	cfg Config
	bc  brb.Broadcaster

	mu    sync.Mutex
	state *State
	// representative state
	buffer         []BatchEntry
	flushScheduled bool
	// myInflight counts own batches broadcast but not yet self-delivered.
	// Batching is self-clocked: when nothing is in flight, submissions
	// flush immediately (low-load latency); while a batch is in flight,
	// arrivals accumulate, so batch size automatically tracks load × RTT
	// and amortizes per-batch signatures — the effect the paper achieves
	// with its 256-payment batches (§VI-A). The BatchDelay timer remains
	// as a liveness fallback.
	myInflight     int
	repDeps        map[types.ClientID][]Dependency
	pendingSubmits map[types.ClientID][]heldSubmit
	// Astro II projected-balance accounting: a correct representative
	// never broadcasts a payment its client cannot fund (the paper's
	// Listing 9 otherwise wedges the xlog).
	inflightOut  map[types.ClientID]types.Amount
	inflightDeps map[types.ClientID]types.Amount
	attachedVal  map[types.PaymentID]types.Amount
	creditAccum  map[types.Digest]*creditState
	// submittedHi is the highest sequence number accepted from each
	// client, covering every pre-settlement stage (held, buffered,
	// broadcast in flight); NextSeq resyncs must not hand these out again.
	submittedHi map[types.ClientID]types.Seq

	// endorsement memory for the BRB external-validity hook; separate
	// lock because the hook is called from inside the BRB layer.
	endorsedMu sync.Mutex
	endorsed   map[types.PaymentID]types.Digest

	settledTotal   atomic.Uint64
	confirmedTotal atomic.Uint64
}

type creditState struct {
	group []types.Payment
	cert  crypto.Certificate
	done  bool
}

// heldSubmit is a client submission awaiting funds at the representative.
type heldSubmit struct {
	payment types.Payment
	sig     []byte
}

// NewReplica assembles a replica, registering its protocol handlers on the
// configured mux.
func NewReplica(cfg Config) (*Replica, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:            cfg,
		repDeps:        make(map[types.ClientID][]Dependency),
		pendingSubmits: make(map[types.ClientID][]heldSubmit),
		inflightOut:    make(map[types.ClientID]types.Amount),
		inflightDeps:   make(map[types.ClientID]types.Amount),
		attachedVal:    make(map[types.PaymentID]types.Amount),
		creditAccum:    make(map[types.Digest]*creditState),
		submittedHi:    make(map[types.ClientID]types.Seq),
		endorsed:       make(map[types.PaymentID]types.Digest),
	}
	// Dependency certificates are verified by screenDependencies on the
	// BRB delivery path, *before* the state lock is taken and fanned out
	// across the verifier pool — not by State under r.mu (they used to
	// verify memoized-but-serial there, lengthening every settlement
	// critical section). State therefore trusts the deps it is handed.
	r.state = NewState(cfg.Version, cfg.Genesis, nil)

	bcfg := brb.Config{
		Mux:       cfg.Mux,
		Self:      cfg.Self,
		Peers:     cfg.Replicas,
		F:         cfg.F,
		Validator: r.validateBatch,
		Deliver:   r.onDeliver,
		Auth:      cfg.Auth,
		Keys:      cfg.Keys,
		Registry:  cfg.Registry,
		Verifier:  cfg.Verifier,
	}
	var err error
	switch cfg.Version {
	case AstroI:
		r.bc, err = brb.NewBracha(bcfg)
	case AstroII:
		r.bc, err = brb.NewSigned(bcfg)
	}
	if err != nil {
		return nil, fmt.Errorf("replica %d: %w", cfg.Self, err)
	}

	cfg.Mux.Register(transport.ChanPayment, r.onPaymentMsg)
	// Batch-flush timers interleave with the submissions they flush; keep
	// the two on one dispatch goroutine (the state lock makes any order
	// safe, but serialization keeps timer latency proportional to the
	// payment queue, not to unrelated channels).
	cfg.Mux.Register(transport.ChanLocal, r.onLocal, transport.SerializeWith(transport.ChanPayment))
	if cfg.Version == AstroII {
		cfg.Mux.Register(transport.ChanCredit, r.onCredit)
	}
	return r, nil
}

// ID returns the replica's identity.
func (r *Replica) ID() types.ReplicaID { return r.cfg.Self }

// SettledCount returns the number of payments this replica has settled;
// the experiment harness samples it to build throughput timelines.
func (r *Replica) SettledCount() uint64 { return r.settledTotal.Load() }

// ConfirmedCount returns the number of settlement confirmations this
// replica has sent to its clients.
func (r *Replica) ConfirmedCount() uint64 { return r.confirmedTotal.Load() }

// Balance returns the client's spendable balance as this replica sees it:
// the settled balance plus, if this replica represents the client under
// Astro II, the value of dependency certificates awaiting attachment.
func (r *Replica) Balance(c types.ClientID) types.Amount {
	r.mu.Lock()
	defer r.mu.Unlock()
	bal := r.state.Balance(c)
	if r.cfg.Version == AstroII && r.cfg.RepOf(c) == r.cfg.Self {
		for _, d := range r.repDeps[c] {
			bal += d.Value(c)
		}
	}
	return bal
}

// Counters returns the state engine's lifetime statistics.
func (r *Replica) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Counters()
}

// XLogSnapshot returns a copy of a client's exclusive log for audit.
func (r *Replica) XLogSnapshot(c types.ClientID) []types.Payment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.XLog(c).Snapshot()
}

// NextSeq returns the next settleable sequence number for a client.
func (r *Replica) NextSeq(c types.ClientID) types.Seq {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.NextSeq(c)
}

// StateSnapshot exports all xlogs for reconfiguration state transfer.
func (r *Replica) StateSnapshot() map[types.ClientID][]types.Payment {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[types.ClientID][]types.Payment)
	for _, c := range r.state.Clients() {
		out[c] = r.state.XLog(c).Snapshot()
	}
	return out
}

// validateBatch is the BRB external-validity hook: this replica endorses a
// batch only if every payment is broadcast by its spender's representative
// for a client of this shard, and does not conflict with a payment this
// replica already endorsed for the same identifier — the double-spend
// check of the broadcast layer (paper §II).
func (r *Replica) validateBatch(origin types.ReplicaID, _ uint64, payload []byte) bool {
	entries, err := DecodeBatch(payload)
	if err != nil {
		return false
	}
	myShard := r.cfg.ReplicaShard(r.cfg.Self)
	// End-to-end client signatures (paper §VI-A): verified by every
	// replica before endorsement, so a malicious representative cannot
	// fabricate payments for its clients. The whole batch fans out across
	// the verifier pool — with early exit on the first forgery — before
	// any lock is taken; at the spender's own representative each check
	// is a memo hit from submission time.
	if r.cfg.ClientKeys != nil {
		sigs := make([]verifier.ClientSig, len(entries))
		for i, e := range entries {
			sigs[i] = verifier.ClientSig{
				Client: e.Payment.Spender,
				Digest: PaymentDigest(e.Payment),
				Sig:    e.Sig,
			}
		}
		if !r.cfg.Verifier.VerifyClientBatch(r.cfg.ClientKeys, sigs).Wait() {
			return false
		}
	}
	r.endorsedMu.Lock()
	defer r.endorsedMu.Unlock()
	for _, e := range entries {
		if r.cfg.RepOf(e.Payment.Spender) != origin {
			return false // origin does not represent this spender
		}
		if r.cfg.ShardOf(e.Payment.Spender) != myShard {
			return false // xlog belongs to another shard
		}
		h := types.HashPayment(e.Payment)
		if prev, ok := r.endorsed[e.Payment.ID()]; ok && prev != h {
			return false // conflicting payment for the same identifier
		}
	}
	for _, e := range entries {
		r.endorsed[e.Payment.ID()] = types.HashPayment(e.Payment)
	}
	return true
}

// onPaymentMsg handles the client-facing channel.
func (r *Replica) onPaymentMsg(from transport.NodeID, payload []byte) {
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case msgSubmit:
		p, sig, ok := decodeSubmit(payload[1:])
		if !ok {
			return
		}
		// Only the client itself may submit payments for its xlog: the
		// transport authenticates the sender node.
		if transport.ClientNode(p.Spender) != from {
			return
		}
		if r.cfg.RepOf(p.Spender) != r.cfg.Self {
			return // not this replica's client
		}
		// End-to-end authentication: with client keys configured, a
		// submission must carry the spender's signature. Verified through
		// the memo cache, so when this replica's own batch comes back for
		// endorsement the same signature is a cache hit, not a second
		// ECDSA.
		if r.cfg.ClientKeys != nil && !r.cfg.Verifier.VerifyClient(r.cfg.ClientKeys, p.Spender, PaymentDigest(p), sig) {
			return
		}
		if !r.preScreenSubmit(p) {
			return
		}
		r.submit(p, sig)
	case msgBalanceReq:
		if len(payload) != 9 {
			return
		}
		c := types.ClientID(be64(payload[1:9]))
		bal := r.Balance(c)
		_ = r.cfg.Mux.Send(from, transport.ChanPayment, encodeBalanceResp(c, bal))
	case msgSeqReq:
		if len(payload) != 9 {
			return
		}
		c := types.ClientID(be64(payload[1:9]))
		// Clients recovering from a restart resynchronize their sequence
		// counter from the replicated xlog (plus whatever this
		// representative already endorsed beyond it, so a resync cannot
		// collide with in-flight payments).
		_ = r.cfg.Mux.Send(from, transport.ChanPayment, encodeSeqResp(c, r.nextUsableSeq(c)))
	}
}

// nextUsableSeq returns the lowest sequence number a restarted client can
// safely assign: past everything settled in the xlog, everything accepted
// from the client into any pre-settlement stage (held, buffered,
// broadcast in flight — the submittedHi high-water mark), and everything
// this replica has endorsed. Handing out a number still in flight would
// let the restarted client create exactly the conflicting-resubmission
// wedge preScreenSubmit exists to prevent.
func (r *Replica) nextUsableSeq(c types.ClientID) types.Seq {
	r.mu.Lock()
	next := r.state.NextSeq(c)
	if hi := r.submittedHi[c]; hi >= next {
		next = hi + 1
	}
	r.mu.Unlock()
	r.endorsedMu.Lock()
	for {
		if _, inflight := r.endorsed[types.PaymentID{Spender: c, Seq: next}]; !inflight {
			break
		}
		next++
	}
	r.endorsedMu.Unlock()
	return next
}

// preScreenSubmit rejects submissions that could never settle before they
// occupy a broadcast slot (ROADMAP "wedged representative"): peers
// correctly refuse to endorse a batch containing a payment that conflicts
// with one they already endorsed, but the refused batch would occupy a BRB
// slot that never delivers — and per-origin FIFO would then block every
// later batch from this representative, wedging unrelated clients. The
// screen consults the same endorsement memory peers will consult, so a
// doomed payment is refused locally and instantly instead.
//
// A byte-identical resubmission of an already-settled payment (a client
// retrying a lost confirmation) is answered with a fresh confirmation
// rather than a rebroadcast.
func (r *Replica) preScreenSubmit(p types.Payment) bool {
	if p.Seq == 0 {
		return false // sequence numbers start at 1; Seq 0 can never settle
	}
	r.mu.Lock()
	settled := p.Seq < r.state.NextSeq(p.Spender)
	identical := false
	if settled {
		identical = r.state.XLog(p.Spender).At(int(p.Seq)-1) == p
	}
	r.mu.Unlock()
	if settled {
		if identical {
			_ = r.cfg.Mux.Send(transport.ClientNode(p.Spender), transport.ChanPayment, encodeConfirm(p.ID()))
		}
		return false // settled identifier: never occupy a new slot for it
	}
	r.endorsedMu.Lock()
	_, seen := r.endorsed[p.ID()]
	r.endorsedMu.Unlock()
	if seen {
		// Conflicting: peers would refuse the batch (double-spend
		// protection) and wedge this origin's FIFO. Identical: it is
		// already in flight; the confirmation will arrive on settlement.
		// Either way, do not occupy another slot.
		return false
	}
	return true
}

// submit enqueues a client payment for broadcast, attaching accumulated
// dependencies (Astro II, Listing 7) and enforcing the projected-balance
// rule so a correct representative never wedges a client's xlog.
func (r *Replica) submit(p types.Payment, sig []byte) {
	r.mu.Lock()
	if p.Seq > r.submittedHi[p.Spender] {
		r.submittedHi[p.Spender] = p.Seq
	}
	if r.cfg.Version == AstroII {
		if len(r.pendingSubmits[p.Spender]) > 0 || !r.fundedLocked(p) {
			r.pendingSubmits[p.Spender] = append(r.pendingSubmits[p.Spender], heldSubmit{payment: p, sig: sig})
			r.mu.Unlock()
			return
		}
		r.bufferLocked(p, sig)
	} else {
		r.buffer = append(r.buffer, BatchEntry{Payment: p, Sig: sig})
	}
	r.afterBufferLocked()
}

// fundedLocked reports whether the client's projected balance covers p.
func (r *Replica) fundedLocked(p types.Payment) bool {
	c := p.Spender
	avail := r.state.Balance(c) + r.inflightDeps[c]
	for _, d := range r.repDeps[c] {
		avail += d.Value(c)
	}
	need := r.inflightOut[c] + p.Amount
	return avail >= need
}

// bufferLocked attaches the client's accumulated dependencies to the
// payment and appends it to the batch buffer (Astro II).
func (r *Replica) bufferLocked(p types.Payment, sig []byte) {
	c := p.Spender
	deps := r.repDeps[c]
	delete(r.repDeps, c)
	var depVal types.Amount
	for _, d := range deps {
		depVal += d.Value(c)
	}
	r.inflightDeps[c] += depVal
	r.inflightOut[c] += p.Amount
	r.attachedVal[p.ID()] = depVal
	r.buffer = append(r.buffer, BatchEntry{Payment: p, Sig: sig, Deps: deps})
}

// afterBufferLocked flushes or schedules a flush; it releases the lock.
func (r *Replica) afterBufferLocked() {
	flushNow := len(r.buffer) > 0 && (len(r.buffer) >= r.cfg.BatchSize || r.myInflight == 0)
	schedule := !flushNow && !r.flushScheduled && len(r.buffer) > 0
	if schedule {
		r.flushScheduled = true
	}
	var batches [][]BatchEntry
	if flushNow {
		batches = r.takeBatchesLocked()
	}
	r.mu.Unlock()

	if schedule {
		delay := r.cfg.BatchDelay
		time.AfterFunc(delay, func() {
			_ = r.cfg.Mux.SendLocal([]byte{localFlush})
		})
	}
	r.broadcastBatches(batches)
}

// takeBatchesLocked drains the buffer into batches of at most BatchSize
// and charges them against myInflight.
func (r *Replica) takeBatchesLocked() [][]BatchEntry {
	var out [][]BatchEntry
	for len(r.buffer) > 0 {
		n := len(r.buffer)
		if n > r.cfg.BatchSize {
			n = r.cfg.BatchSize
		}
		out = append(out, r.buffer[:n:n])
		r.buffer = r.buffer[n:]
	}
	r.buffer = nil
	r.myInflight += len(out)
	return out
}

func (r *Replica) broadcastBatches(batches [][]BatchEntry) {
	for _, b := range batches {
		if _, err := r.bc.Broadcast(EncodeBatch(b)); err != nil {
			// Broadcast can only fail on local misconfiguration, caught
			// at construction; losing a batch here would be a bug.
			panic(fmt.Sprintf("replica %d: broadcast: %v", r.cfg.Self, err))
		}
	}
}

// onLocal handles self-addressed timer events.
func (r *Replica) onLocal(_ transport.NodeID, payload []byte) {
	if len(payload) == 0 || payload[0] != localFlush {
		return
	}
	r.mu.Lock()
	r.flushScheduled = false
	batches := r.takeBatchesLocked()
	r.mu.Unlock()
	r.broadcastBatches(batches)
}

// onDeliver is the BRB delivery callback: approve and settle the batch,
// then emit confirmations and (Astro II) CREDIT messages.
func (r *Replica) onDeliver(origin types.ReplicaID, _ uint64, payload []byte) {
	entries, err := DecodeBatch(payload)
	if err != nil {
		return // validated before endorsement; cannot happen from correct peers
	}
	r.screenDependencies(entries)
	r.mu.Lock()
	var nextBatches [][]BatchEntry
	if origin == r.cfg.Self && r.myInflight > 0 {
		r.myInflight--
		// Self-clocked batching: the wire is free again; ship what
		// accumulated while the previous batch was in flight.
		if r.myInflight == 0 && len(r.buffer) > 0 {
			nextBatches = r.takeBatchesLocked()
		}
	}
	var settled []types.Payment
	for _, e := range entries {
		settled = append(settled, r.state.ApplyEntry(e)...)
	}
	r.postSettleLocked(settled)
	r.broadcastBatches(nextBatches)
}

// screenDependencies verifies every dependency certificate attached to the
// batch — outside the state lock, fanned out across the verifier pool —
// and strips the ones that fail, so State credits what remains without
// re-verifying inside the settlement critical section. Stripping a bad
// certificate is exactly the semantics State's inline check used to apply
// ("unverifiable certificate: ignore, do not credit"); every correct
// replica screens the same delivered batch identically, so replicated
// state stays consistent.
func (r *Replica) screenDependencies(entries []BatchEntry) {
	if r.cfg.Version != AstroII {
		return
	}
	type check struct {
		entry, dep int
		f          *verifier.Future
	}
	var checks []check
	for ei := range entries {
		for di := range entries[ei].Deps {
			d := entries[ei].Deps[di]
			f := r.cfg.Verifier.VerifyAsync(func() bool {
				return VerifyDependency(d, r.cfg.Verifier, r.cfg.Registry, r.cfg.F, r.cfg.ShardOf, r.cfg.ReplicaShard) == nil
			}, nil)
			checks = append(checks, check{entry: ei, dep: di, f: f})
		}
	}
	if len(checks) == 0 {
		return
	}
	var invalid map[[2]int]bool
	for _, c := range checks {
		if !c.f.Wait() {
			if invalid == nil {
				invalid = make(map[[2]int]bool)
			}
			invalid[[2]int{c.entry, c.dep}] = true
		}
	}
	if invalid == nil {
		return
	}
	for ei := range entries {
		deps := entries[ei].Deps
		kept := deps[:0:len(deps)]
		for di := range deps {
			if !invalid[[2]int{ei, di}] {
				kept = append(kept, deps[di])
			}
		}
		entries[ei].Deps = kept
	}
}

// postSettleLocked handles everything that follows settlement. It releases
// the lock.
func (r *Replica) postSettleLocked(settled []types.Payment) {
	r.settledTotal.Add(uint64(len(settled)))

	var confirms []types.Payment
	groups := make(map[types.ReplicaID][]types.Payment)
	for _, p := range settled {
		if r.cfg.RepOf(p.Spender) == r.cfg.Self {
			confirms = append(confirms, p)
			if r.cfg.Version == AstroII {
				r.inflightOut[p.Spender] -= p.Amount
				if v, ok := r.attachedVal[p.ID()]; ok {
					r.inflightDeps[p.Spender] -= v
					delete(r.attachedVal, p.ID())
				}
			}
		}
		if r.cfg.Version == AstroII {
			groups[r.cfg.RepOf(p.Beneficiary)] = append(groups[r.cfg.RepOf(p.Beneficiary)], p)
		}
	}
	r.mu.Unlock()

	for _, p := range confirms {
		r.confirmedTotal.Add(1)
		_ = r.cfg.Mux.Send(transport.ClientNode(p.Spender), transport.ChanPayment, encodeConfirm(p.ID()))
	}

	// Astro II: unicast one signed CREDIT per beneficiary-representative
	// group — the paper's second batching level (§VI-A): as many
	// signatures as sub-batches, not as payments.
	if r.cfg.Version == AstroII {
		for rep, group := range groups {
			sig, err := r.cfg.Keys.Sign(CreditGroupDigest(group))
			if err != nil {
				continue
			}
			msg := encodeCredit(creditMsg{Signer: r.cfg.Self, Group: group, Sig: sig})
			_ = r.cfg.Mux.Send(transport.ReplicaNode(rep), transport.ChanCredit, msg)
		}
	}
}

// onCredit accumulates CREDIT messages into dependency certificates for
// this replica's clients (paper Listing 10): f+1 distinct signed approvals
// from the spender's shard form a transferable dependency.
func (r *Replica) onCredit(_ transport.NodeID, payload []byte) {
	m, err := decodeCredit(payload)
	if err != nil || len(m.Group) == 0 {
		return
	}
	// All spenders must come from the signer's shard, else the f+1
	// counting below would mix shards.
	shard := r.cfg.ShardOf(m.Group[0].Spender)
	if r.cfg.ReplicaShard(m.Signer) != shard {
		return
	}
	for _, p := range m.Group[1:] {
		if r.cfg.ShardOf(p.Spender) != shard {
			return
		}
	}
	digest := CreditGroupDigest(m.Group)

	// Cheap checks first: once the dependency certificate is complete,
	// the remaining ~m-f CREDIT copies are dropped without the expensive
	// signature verification.
	r.mu.Lock()
	cs, ok := r.creditAccum[digest]
	if !ok {
		cs = &creditState{group: m.Group}
		r.creditAccum[digest] = cs
	}
	if cs.done {
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()

	// The signature check runs on the verifier pool, off the transport
	// dispatch goroutine; certificate accumulation re-enters through the
	// completion callback. Accumulation order across signers is
	// irrelevant — any f+1 of them form the dependency.
	r.cfg.Verifier.VerifyReplicaDetached(r.cfg.Registry, m.Signer, digest, m.Sig, func(valid bool) {
		if valid {
			r.creditVerified(cs, m)
		}
	})
}

// creditVerified accumulates a verified CREDIT signature and, on reaching
// f+1, registers the dependency certificate and retries held submissions.
func (r *Replica) creditVerified(cs *creditState, m creditMsg) {
	r.mu.Lock()
	if cs.done {
		r.mu.Unlock()
		return
	}
	cs.cert.Add(crypto.PartialSig{Replica: m.Signer, Sig: m.Sig})
	if cs.cert.Len() < r.cfg.F+1 {
		r.mu.Unlock()
		return
	}
	cs.done = true
	dep := Dependency{Group: cs.group, Cert: cs.cert}
	beneficiaries := make(map[types.ClientID]struct{})
	for _, p := range cs.group {
		if r.cfg.RepOf(p.Beneficiary) == r.cfg.Self {
			beneficiaries[p.Beneficiary] = struct{}{}
		}
	}
	for b := range beneficiaries {
		r.repDeps[b] = append(r.repDeps[b], dep)
	}
	// New funds may unblock held submissions.
	r.retryPendingLocked(beneficiaries) // releases the lock
}

// retryPendingLocked re-evaluates held submissions of the given clients in
// FIFO order. It releases the lock.
func (r *Replica) retryPendingLocked(clients map[types.ClientID]struct{}) {
	for c := range clients {
		queue := r.pendingSubmits[c]
		released := 0
		for _, h := range queue {
			if !r.fundedLocked(h.payment) {
				break
			}
			r.bufferLocked(h.payment, h.sig)
			released++
		}
		if released == len(queue) {
			delete(r.pendingSubmits, c)
		} else if released > 0 {
			r.pendingSubmits[c] = queue[released:]
		}
	}
	r.afterBufferLocked()
}

// PendingSubmits reports how many submissions are held back awaiting
// funds for the given client (Astro II representative-side queue).
func (r *Replica) PendingSubmits(c types.ClientID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pendingSubmits[c])
}
