package core

// Client-edge hardening tests: every Byzantine-client frame class is
// rejected with its counter incremented, the rejection cost stays bounded
// (seq window, hold-queue cap), and — the wedge regression — a hostile
// client hammering preScreenSubmit with conflicting resubmissions,
// replays, and credit-channel NACK storms cannot stall an honest client
// sharing the same representative. Run under -race by the Makefile's
// chaos-smoke target.

import (
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

// rawClientMux returns a bare mux on a client node — the transport
// position a Byzantine client attacks from.
func (c *cluster) rawClientMux(id types.ClientID) *transport.Mux {
	return transport.NewMux(c.net.Node(transport.ClientNode(id)))
}

func genesis1000(types.ClientID) types.Amount { return 1000 }

// TestByzantineClientCannotWedgeBroadcastQueue: while a hostile client
// floods its representative with conflicting resubmissions (double-spends
// of its own settled history), byte-identical replays, far-future and
// zero sequence numbers, forged credit traffic, and credit NACK storms,
// an honest client of the same representative must keep settling
// payments. The explicit -race coverage for preScreenSubmit under
// adversarial concurrency.
func TestByzantineClientCannotWedgeBroadcastQueue(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		c := newCluster(t, v, 4, genesis1000)
		rep := c.repOf(1) // clients 1 (hostile) and 5 (honest) share rep 1%4
		honestID := types.ClientID(1 + 4)
		if c.repOf(honestID) != rep {
			t.Fatalf("test topology broken: clients must share a representative")
		}

		// Hostile client 1: settle one real payment first so there is
		// history to replay and equivocate against.
		mallory := c.client(1)
		settled := types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 5}
		if _, err := mallory.Pay(2, 5); err != nil {
			t.Fatal(err)
		}
		if err := mallory.WaitConfirm(settled.ID(), 10*time.Second); err != nil {
			t.Fatal(err)
		}

		attack := c.rawClientMux(1)
		stop := make(chan struct{})
		var volleys atomic.Uint64
		go func() {
			repNode := transport.ReplicaNode(rep)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Conflicting resubmission of the settled identifier.
				_ = attack.Send(repNode, transport.ChanPayment,
					EncodeSubmit(types.Payment{Spender: 1, Seq: 1, Beneficiary: 3, Amount: 1}, nil))
				// Byte-identical replay of the settled payment.
				_ = attack.Send(repNode, transport.ChanPayment, EncodeSubmit(settled, nil))
				// Sequence races: zero and far beyond the window.
				_ = attack.Send(repNode, transport.ChanPayment,
					EncodeSubmit(types.Payment{Spender: 1, Seq: 0, Beneficiary: 2, Amount: 1}, nil))
				_ = attack.Send(repNode, transport.ChanPayment,
					EncodeSubmit(types.Payment{Spender: 1, Seq: 1 << 40, Beneficiary: 2, Amount: 1}, nil))
				// Hostile CREDIT/NACK storm from a client node.
				_ = attack.Send(repNode, transport.ChanCredit,
					EncodeCreditNack(types.HashBytes([]byte("storm"))))
				_ = attack.Send(repNode, transport.ChanCredit,
					EncodeCreditForged(rep, []types.Payment{settled}, []byte("forged")))
				// Malformed junk.
				_ = attack.Send(repNode, transport.ChanPayment, []byte{0xee, 0x01})
				volleys.Add(1)
			}
		}()

		// Honest client on the same representative: must make progress
		// through the storm.
		honest := c.client(honestID)
		for i := 0; i < 10; i++ {
			if _, err := honest.PayReliable(2, 1, RetryPolicy{Timeout: 5 * time.Second}); err != nil {
				close(stop)
				t.Fatalf("honest payment %d starved by hostile client: %v", i, err)
			}
		}
		close(stop)

		if volleys.Load() == 0 {
			t.Fatal("attack goroutine never ran")
		}
		es := c.replicas[int(rep)].EdgeStats()
		if es.Conflicting == 0 || es.SettledReplay == 0 || es.SeqZero == 0 ||
			es.FutureSeq == 0 || es.Malformed == 0 {
			t.Fatalf("attack classes not all counted: %+v", es)
		}
		// ChanCredit only exists on Astro II (Astro I has no dependency
		// certificates); an unregistered channel dies at the mux instead.
		if v == AstroII && es.CreditOutsider == 0 {
			t.Fatalf("hostile credit traffic not counted: %+v", es)
		}
		// The hostile traffic must not have occupied broadcast slots: the
		// representative settled exactly mallory's one payment plus the
		// honest client's ten.
		if got := c.replicas[int(rep)].SettledCount(); got != 11 {
			t.Fatalf("settled %d payments, want 11 (hostile frames took slots)", got)
		}
	})
}

// TestEdgeStatsWireQuery: the counters are queryable over the payment
// channel by a plain client.
func TestEdgeStatsWireQuery(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	alice := c.client(1)
	rep := c.repOf(1)

	// Provoke one counted rejection: client node 3 submits a payment
	// claiming to be spender 1. (A distinct node: a second mux on alice's
	// node would steal her endpoint handler.)
	_ = c.rawClientMux(3).Send(transport.ReplicaNode(rep), transport.ChanPayment,
		EncodeSubmit(types.Payment{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 1}, nil))

	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := alice.QueryStats(2 * time.Second)
		if err == nil && s.Spoofed > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("spoof never surfaced in wire stats (last: %+v, err=%v)", s, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeqWindowAllowsDenseResume: the far-future guard must not reject a
// correct client's SyncSeq-resumed traffic — sequence numbers within the
// window settle normally.
func TestSeqWindowAllowsDenseResume(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	alice := c.client(1)
	c.payAndWait(alice, 2, 10)
	if _, err := alice.SyncSeq(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c.payAndWait(alice, 2, 5)
	if es := c.replicas[int(c.repOf(1))].EdgeStats(); es.FutureSeq != 0 {
		t.Fatalf("dense traffic hit the future-seq guard: %+v", es)
	}
}

// TestHeldSubmitCapSheds: an unfunded Astro II submit flood stops growing
// the hold queue at maxHeldSubmits and is counted, instead of growing
// replica memory without bound.
func TestHeldSubmitCapSheds(t *testing.T) {
	c := newCluster(t, AstroII, 4, func(types.ClientID) types.Amount { return 1 })
	rep := c.repOf(1)
	mux := c.rawClientMux(1)
	repl := c.replicas[int(rep)]

	// Seq 2.. with amount > balance: every submission is held (seq 1 gap
	// keeps them unsettleable, amount keeps them unfunded) — within the
	// window, beyond the cap.
	flood := maxHeldSubmits + 64
	for i := 0; i < flood; i++ {
		p := types.Payment{Spender: 1, Seq: types.Seq(2 + i), Beneficiary: 2, Amount: 50}
		if err := mux.Send(transport.ReplicaNode(rep), transport.ChanPayment, EncodeSubmit(p, nil)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for repl.EdgeStats().HeldOverflow == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("hold-queue cap never engaged: %+v", repl.EdgeStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	repl.repMu.Lock()
	held := len(repl.pendingSubmits[1])
	repl.repMu.Unlock()
	if held > maxHeldSubmits {
		t.Fatalf("hold queue grew to %d, cap is %d", held, maxHeldSubmits)
	}
}

// TestPayReliableIdempotentRetry: resending the byte-identical frame of a
// settled payment yields a fresh confirmation (the lost-confirmation
// path) and never a second settlement.
func TestPayReliableIdempotentRetry(t *testing.T) {
	c := newCluster(t, AstroII, 4, genesis100)
	alice := c.client(1)
	rep := c.repOf(1)

	id, err := alice.PayReliable(2, 10, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	c.waitSettledEverywhere(1, 5*time.Second)

	// Replay the identical frame (what a retry after a lost confirmation
	// sends): the replica must answer with a confirmation, not rebroadcast.
	p := types.Payment{Spender: 1, Seq: id.Seq, Beneficiary: 2, Amount: 10}
	if err := alice.mux.Send(transport.ReplicaNode(rep), transport.ChanPayment, EncodeSubmit(p, nil)); err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 5*time.Second); err != nil {
		t.Fatalf("replayed settled frame not re-confirmed: %v", err)
	}
	if got := c.replicas[int(rep)].SettledCount(); got != 1 {
		t.Fatalf("settled %d, want 1 (replay settled twice)", got)
	}
	if es := c.replicas[int(rep)].EdgeStats(); es.SettledReplay == 0 {
		t.Fatal("replay not counted")
	}
}
