package core

import (
	"testing"
	"time"

	"astro/internal/brb"
	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// withClientAuth equips a cluster with end-to-end client signatures for
// the given client ids, returning the registry and per-client keys.
func withClientAuth(ids ...types.ClientID) (*crypto.ClientKeys, map[types.ClientID]*crypto.KeyPair, func(*Config)) {
	reg := crypto.NewClientKeys()
	keys := make(map[types.ClientID]*crypto.KeyPair)
	for _, id := range ids {
		kp := crypto.MustGenerateKeyPair()
		keys[id] = kp
		reg.Add(id, kp.Public())
	}
	return reg, keys, func(cfg *Config) { cfg.ClientKeys = reg }
}

func TestClientAuthEndToEnd(t *testing.T) {
	eachVersion(t, func(t *testing.T, v Version) {
		_, keys, opt := withClientAuth(1, 2)
		c := newCluster(t, v, 4, genesis100, opt)

		mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
		alice := NewAuthClient(1, c.repOf, mux, keys[1])

		id, err := alice.Pay(2, 30)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatalf("signed payment never settled: %v", err)
		}
		c.waitSettledEverywhere(1, 5*time.Second)
	})
}

func TestClientAuthRejectsUnsigned(t *testing.T) {
	_, _, opt := withClientAuth(1)
	c := newCluster(t, AstroII, 4, genesis100, opt)

	// A plain (unsigned) client: its submissions must be dropped by the
	// representative.
	alice := c.client(1)
	if _, err := alice.Pay(2, 30); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if r.SettledCount() != 0 {
			t.Fatalf("replica %d settled an unsigned payment", i)
		}
	}
}

func TestClientAuthRejectsWrongKey(t *testing.T) {
	_, _, opt := withClientAuth(1)
	c := newCluster(t, AstroII, 4, genesis100, opt)

	// Mallory signs with her own key, not the registered one.
	mux := transport.NewMux(c.net.Node(transport.ClientNode(1)))
	mallory := NewAuthClient(1, c.repOf, mux, crypto.MustGenerateKeyPair())
	if _, err := mallory.Pay(2, 30); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if r.SettledCount() != 0 {
			t.Fatalf("replica %d settled a mis-signed payment", i)
		}
	}
}

func TestClientAuthBlocksForgingRepresentative(t *testing.T) {
	// The attack end-to-end signatures exist for: a malicious
	// representative fabricates a payment for its client. Without the
	// client's signature no other replica endorses the batch, so it
	// never reaches a quorum.
	reg, _, opt := withClientAuth(1)
	c := newCluster(t, AstroII, 4, genesis100, opt)
	_ = reg

	forged := types.Payment{Spender: 1, Seq: 1, Beneficiary: 5, Amount: 99}
	origin := c.repOf(1)
	batch := EncodeBatch([]BatchEntry{{Payment: forged}}) // no signature
	// The malicious representative broadcasts directly through its BRB
	// endpoint: PREPARE to everyone.
	prep := brb.EncodePrepare(origin, 1, batch)
	for i := range c.replicas {
		_ = c.replicas[int(origin)].cfg.Mux.Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, prep)
	}
	time.Sleep(300 * time.Millisecond)
	for i, r := range c.replicas {
		if r.SettledCount() != 0 {
			t.Fatalf("replica %d settled a representative-forged payment", i)
		}
	}
}

func TestPaymentDigestDomainSeparated(t *testing.T) {
	p := pay(1, 1, 2, 3)
	if PaymentDigest(p) == types.HashPayment(p) {
		t.Error("client-signature digest must be domain-separated from the raw payment hash")
	}
	q := p
	q.Amount = 4
	if PaymentDigest(p) == PaymentDigest(q) {
		t.Error("distinct payments share a digest")
	}
}

func TestBatchCodecCarriesSignatures(t *testing.T) {
	entries := []BatchEntry{
		{Payment: pay(1, 1, 2, 3), Sig: []byte("sig-bytes")},
		{Payment: pay(4, 1, 5, 6)}, // unsigned entry
	}
	got, err := DecodeBatch(EncodeBatch(entries))
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Sig) != "sig-bytes" {
		t.Errorf("sig = %q", got[0].Sig)
	}
	if got[1].Sig != nil {
		t.Errorf("unsigned entry decoded with sig %q", got[1].Sig)
	}
}
