package kv

import (
	"bytes"
	"slices"
	"sort"
)

// maxSpanPages bounds a single record's span: the largest legal record
// (header + MaxKey + MaxValue) rounded up to whole pages. Index images or
// recovery scans claiming more are structurally corrupt.
const maxSpanPages = (recHeader + MaxKey + MaxValue + PageSize - 1) / PageSize

// flatEnt is one entry of the flat index form: 24 bytes, no padding.
// pages fits uint16 because maxSpanPages does; keyOff/keyLen address the
// shared key buffer (MaxKey fits uint16).
type flatEnt struct {
	off    uint64
	lsn    uint64
	keyOff uint32
	keyLen uint16
	pages  uint16
}

// memIndex is the in-memory key index: an immutable sorted flat bulk —
// every key concatenated into one backing buffer, one fixed-size entry
// each — plus a small map overlay for keys touched since the bulk was
// built. The flat form costs ~24 bytes + key length per entry where a
// map[string]rec costs >100, and with millions of paged-out accounts the
// index IS the store's memory footprint, so the bulk must stay flat.
// Publish compacts the overlay back into the bulk (rebuild), which keeps
// steady-state memory at the flat rate and the overlay proportional to
// the write set between publishes.
//
// An overlay entry with pages == 0 masks a deleted bulk key (no live
// record occupies zero pages); live tracks the net count.
type memIndex struct {
	keys []byte
	ents []flatEnt
	over map[string]rec
	live int
}

func newMemIndex() *memIndex {
	return &memIndex{over: make(map[string]rec)}
}

func (ix *memIndex) flatKey(i int) []byte {
	e := &ix.ents[i]
	return ix.keys[e.keyOff : e.keyOff+uint32(e.keyLen)]
}

func (ix *memIndex) flatRec(i int) rec {
	e := &ix.ents[i]
	return rec{span{e.off, uint64(e.pages)}, e.lsn}
}

func (ix *memIndex) searchFlat(key []byte) (int, bool) {
	i := sort.Search(len(ix.ents), func(i int) bool {
		return bytes.Compare(ix.flatKey(i), key) >= 0
	})
	return i, i < len(ix.ents) && bytes.Equal(ix.flatKey(i), key)
}

func (ix *memIndex) get(key []byte) (rec, bool) {
	if r, ok := ix.over[string(key)]; ok {
		if r.pages == 0 {
			return rec{}, false
		}
		return r, true
	}
	if i, ok := ix.searchFlat(key); ok {
		return ix.flatRec(i), true
	}
	return rec{}, false
}

// put records key → r and returns the previous record, if any.
func (ix *memIndex) put(key []byte, r rec) (rec, bool) {
	prev, had := ix.get(key)
	ix.over[string(key)] = r
	if !had {
		ix.live++
	}
	ix.maybeCompact()
	return prev, had
}

// del removes key and returns the record it held, if any.
func (ix *memIndex) del(key []byte) (rec, bool) {
	prev, had := ix.get(key)
	if !had {
		return rec{}, false
	}
	ix.live--
	if _, inFlat := ix.searchFlat(key); inFlat {
		ix.over[string(key)] = rec{} // mask the bulk entry
	} else {
		delete(ix.over, string(key))
	}
	ix.maybeCompact()
	return prev, true
}

// maybeCompact folds the overlay into the bulk once it outgrows an
// eighth of the live set: without this, a write burst between publishes
// would balloon the overlay into exactly the per-key map the flat bulk
// exists to avoid. The O(live) rebuild amortizes to O(1) per write.
func (ix *memIndex) maybeCompact() {
	if n := len(ix.over); n >= 1024 && n >= ix.live/8 {
		ix.rebuild()
	}
}

func (ix *memIndex) len() int { return ix.live }

// forEachSorted merge-walks the bulk and the overlay in ascending key
// order, overlay winning on equal keys and masks suppressing their bulk
// entries. Callbacks must not retain the key slice.
func (ix *memIndex) forEachSorted(fn func(key []byte, r rec) error) error {
	ov := make([]string, 0, len(ix.over))
	for k := range ix.over {
		ov = append(ov, k)
	}
	slices.Sort(ov)
	i, j := 0, 0
	for i < len(ix.ents) || j < len(ov) {
		var cmp int
		switch {
		case i == len(ix.ents):
			cmp = 1
		case j == len(ov):
			cmp = -1
		default:
			cmp = bytes.Compare(ix.flatKey(i), []byte(ov[j]))
		}
		if cmp < 0 {
			if err := fn(ix.flatKey(i), ix.flatRec(i)); err != nil {
				return err
			}
			i++
			continue
		}
		if r := ix.over[ov[j]]; r.pages != 0 {
			if err := fn([]byte(ov[j]), r); err != nil {
				return err
			}
		}
		if cmp == 0 {
			i++
		}
		j++
	}
	return nil
}

// rebuild compacts the overlay into a fresh flat bulk and empties it.
// O(live); runs at publish, so between publishes memory grows only by
// the overlay.
func (ix *memIndex) rebuild() {
	if len(ix.over) == 0 {
		return
	}
	keys := make([]byte, 0, len(ix.keys))
	ents := make([]flatEnt, 0, ix.live)
	ix.forEachSorted(func(k []byte, r rec) error {
		ents = append(ents, flatEnt{
			off:    r.off,
			lsn:    r.lsn,
			keyOff: uint32(len(keys)),
			keyLen: uint16(len(k)),
			pages:  uint16(r.pages),
		})
		keys = append(keys, k...)
		return nil
	})
	ix.keys, ix.ents, ix.over = keys, ents, make(map[string]rec)
}
