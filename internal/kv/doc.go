// Package kv is a dependency-free embedded key-value store: the paging
// backend beneath core.State's bounded hot-account cache and the
// incremental-snapshot side of the durable replica state (PR 10). It
// stores byte values under byte keys in one CRC-framed page file with an
// in-memory hash index, batched fsync, and free-page reuse — nothing the
// standard library does not provide.
//
// # On-disk layout
//
// A Store is a directory with two files:
//
//   - kv.data — the page file: an array of fixed-size pages (PageSize).
//     Every record occupies one contiguous span of pages and is framed
//     [magic][lsn][keyLen][valLen][crc32c(key‖value)][key][value]; a
//     record is valid only if its CRC matches, so a torn write (power cut
//     mid-span) yields an invalid span, never wrong data.
//   - kv.index — the published index: the key→span map, the free-span
//     list, and the high-water LSN as of one publish instant, written
//     whole with its own trailing CRC.
//
// # Durability discipline (what is fsynced when)
//
// Writes follow the same discipline as internal/wal:
//
//   - Put/Delete write their record's span with pwrite immediately but do
//     NOT fsync: durability comes from the next Sync (one fsync covers
//     every record written since the last — batched exactly like the WAL's
//     tail-sync), or from the next Publish.
//   - Publish is the atomic checkpoint: fsync kv.data, write the index
//     image to kv.index.tmp, fsync it, rename over kv.index, fsync the
//     directory — write-temp → fsync → atomic publish, the rename being
//     the commit point. A crash anywhere before the rename leaves the
//     previous index intact.
//
// Recovery (Open) loads the published index, then scans only the pages
// that were free at publish time plus whatever grew past the published
// file size — the only places a post-publish write can live (see below) —
// applying any valid record whose LSN exceeds the published high-water
// mark. Open therefore costs O(index + post-publish writes), not O(file),
// and ends by publishing a fresh index so the next open starts clean. A
// missing or corrupt index degrades to a full-file scan in which the
// highest LSN per key wins; CRCs make torn spans invisible either way.
//
// # Free-page reuse and the epoch invariant
//
// Records are never overwritten in place: a Put allocates a fresh span
// (first-fit from the free list, else file growth), and the old span is
// only *pending* free. Pending spans are promoted to the allocatable free
// list at the next Publish. This maintains the invariant recovery depends
// on: every write since the last publish sits either in a span the
// published index lists as free or beyond the published file length, so
// the published index plus that bounded scan region is always a complete
// description of the store. Deletes write a tombstone record (same LSN
// ordering) whose span is reclaimed at the publish that drops the key.
//
// # Locking discipline
//
// One mutex guards the whole store — index map, free lists, and file I/O.
// Store methods never call out while holding it, so callers may invoke
// the store under their own locks (core's state stripes do, on the
// fault/evict path). ForEach invokes its callback with the mutex held and
// transient buffers; the callback must not call back into the store nor
// retain the slices.
package kv
