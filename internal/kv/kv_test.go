package kv

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func put(t *testing.T, s *Store, k, v string) {
	t.Helper()
	if err := s.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put %q: %v", k, err)
	}
}

func get(t *testing.T, s *Store, k string) (string, bool) {
	t.Helper()
	v, ok, err := s.Get([]byte(k))
	if err != nil {
		t.Fatalf("Get %q: %v", k, err)
	}
	return string(v), ok
}

func TestPutGetDeleteReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	put(t, s, "alpha", "1")
	put(t, s, "beta", "2")
	put(t, s, "alpha", "1.1") // overwrite
	if err := s.Delete([]byte("beta")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if v, ok := get(t, s, "alpha"); !ok || v != "1.1" {
		t.Fatalf("alpha = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "beta"); ok {
		t.Fatalf("beta survived delete")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, dir)
	defer s.Close()
	if v, ok := get(t, s, "alpha"); !ok || v != "1.1" {
		t.Fatalf("after reopen alpha = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "beta"); ok {
		t.Fatalf("beta resurrected after reopen")
	}
}

// Abort models kill -9 for everything written after the last Publish:
// records pwritten before the crash may survive (the kernel usually has
// them), and recovery must apply them in LSN order — including a
// tombstone that must not resurrect.
func TestAbortRecoversPostPublishWrites(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	put(t, s, "keep", "old")
	put(t, s, "gone", "x")
	if err := s.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	put(t, s, "keep", "new")
	put(t, s, "fresh", "y")
	if err := s.Delete([]byte("gone")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	s.Abort()

	s = mustOpen(t, dir)
	defer s.Close()
	if v, ok := get(t, s, "keep"); !ok || v != "new" {
		t.Fatalf("keep = %q,%v, want new", v, ok)
	}
	if v, ok := get(t, s, "fresh"); !ok || v != "y" {
		t.Fatalf("fresh = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "gone"); ok {
		t.Fatalf("deleted key resurrected by recovery scan")
	}
}

// A torn page — a record whose span was only partially written when the
// machine died — must be invisible after recovery, and the published
// version of that key must still be served.
func TestTornPageRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	big := bytes.Repeat([]byte("v"), 3*PageSize) // multi-page span
	if err := s.Put([]byte("victim"), big); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	// Overwrite post-publish, then tear the new span by truncating the
	// data file mid-span (the new record allocates at the old EOF since
	// the only free span is the pending one).
	if err := s.Put([]byte("victim"), bytes.Repeat([]byte("w"), 3*PageSize)); err != nil {
		t.Fatalf("Put 2: %v", err)
	}
	s.Abort()
	dataPath := filepath.Join(dir, dataName)
	st, err := os.Stat(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(dataPath, st.Size()-PageSize-7); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir)
	defer s.Close()
	v, ok := get(t, s, "victim")
	if !ok || !bytes.Equal([]byte(v), big) {
		t.Fatalf("victim not restored to published version (len=%d ok=%v)", len(v), ok)
	}
}

// Flipping bytes inside a post-publish record's span must drop that
// record (CRC) without corrupting anything else.
func TestCorruptSpanIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	put(t, s, "stable", "ok")
	if err := s.Publish(); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	put(t, s, "torn", "value")
	s.Abort()

	// Corrupt the torn record's span: it lives past the published pages.
	f, err := os.OpenFile(filepath.Join(dir, dataName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	// The torn record is the last span; flip bytes in its key/value body
	// (not the padding, which the CRC deliberately doesn't cover).
	if _, err := f.WriteAt([]byte{0xFF, 0xFF, 0xFF}, st.Size()-PageSize+recHeader+1); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	if v, ok := get(t, s, "stable"); !ok || v != "ok" {
		t.Fatalf("stable = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "torn"); ok {
		t.Fatalf("corrupt record survived recovery")
	}
}

// A corrupt index file degrades to the full-scan path, which must still
// serve the latest version of every key.
func TestCorruptIndexFullScanFallback(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 20; i++ {
		put(t, s, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%d", i))
	}
	put(t, s, "k05", "rewritten")
	if err := s.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash the index.
	if err := os.WriteFile(filepath.Join(dir, indexName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir)
	defer s.Close()
	if s.Len() != 19 {
		t.Fatalf("Len = %d, want 19", s.Len())
	}
	if v, ok := get(t, s, "k05"); !ok || v != "rewritten" {
		t.Fatalf("k05 = %q,%v", v, ok)
	}
	if _, ok := get(t, s, "k07"); ok {
		t.Fatalf("k07 resurrected in full scan")
	}
}

// Free-page reuse: steady-state overwrites must not grow the file
// without bound once publishes promote the freed spans.
func TestFreePageReuseBoundsFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	val := bytes.Repeat([]byte("x"), PageSize/2)
	for round := 0; round < 10; round++ {
		for i := 0; i < 16; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key%d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// 16 live single-page records; allow pending/fragmentation headroom
	// but fail if every round grew the file (would be ~160 pages).
	if st.FilePages > 64 {
		t.Fatalf("file grew to %d pages for 16 live keys — free reuse broken", st.FilePages)
	}
}

// Crash mid-eviction stream: randomized writes + publishes with an Abort
// at an arbitrary point, then recovery must serve exactly the latest
// pre-crash value for every key that was written before the last sync
// point we control (here: everything, since pwrites are visible
// in-process without a machine crash).
func TestRandomizedAbortRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		dir := t.TempDir()
		s := mustOpen(t, dir)
		want := make(map[string]string)
		ops := 200 + rng.Intn(200)
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("acct%03d", rng.Intn(40))
			switch rng.Intn(10) {
			case 0:
				if err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(want, k)
			case 1:
				if err := s.Publish(); err != nil {
					t.Fatal(err)
				}
			default:
				v := fmt.Sprintf("v%d-%d", trial, i)
				if rng.Intn(4) == 0 {
					v += string(bytes.Repeat([]byte("p"), rng.Intn(2*PageSize)))
				}
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			}
		}
		s.Abort()

		s = mustOpen(t, dir)
		if s.Len() != len(want) {
			t.Fatalf("trial %d: Len = %d, want %d", trial, s.Len(), len(want))
		}
		for k, v := range want {
			got, ok := get(t, s, k)
			if !ok || got != v {
				t.Fatalf("trial %d: %q = %q,%v want %q", trial, k, got, ok, v)
			}
		}
		s.Close()
	}
}

func TestForEachAndStats(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	put(t, s, "a", "1")
	put(t, s, "b", "2")
	seen := map[string]string{}
	err := s.ForEach(func(k, v []byte) error {
		seen[string(k)] = string(v)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if len(seen) != 2 || seen["a"] != "1" || seen["b"] != "2" {
		t.Fatalf("ForEach saw %v", seen)
	}
	st := s.Stats()
	if st.Puts != 2 || st.LiveKeys != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if !s.Has([]byte("a")) || s.Has([]byte("zz")) {
		t.Fatalf("Has mismatch")
	}
}

func TestClosedStoreErrors(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("v")); err != ErrClosed {
		t.Fatalf("Put after Close = %v, want ErrClosed", err)
	}
	if _, _, err := s.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after Close = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

func TestLargeValueRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	big := bytes.Repeat([]byte{0xAB}, 100*PageSize+17)
	if err := s.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s = mustOpen(t, dir)
	defer s.Close()
	v, ok, err := s.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("big round-trip failed: ok=%v err=%v len=%d", ok, err, len(v))
	}
}
