package kv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"sync"
)

// PageSize is the allocation unit of the page file. Records occupy whole
// contiguous spans of pages; the tail of a span is zero padding. 512 keeps
// per-account overhead small (a fresh account image is a few dozen bytes)
// while bounding the page-walk cost of recovery scans.
const PageSize = 512

// Size bounds, mirroring the wire/wal caps: no component of this
// repository produces larger units, and the bounds keep corrupt length
// fields from provoking giant allocations during recovery.
const (
	MaxKey   = 1 << 10
	MaxValue = 16 << 20
)

// ErrClosed is returned by store operations after Close or Abort.
var ErrClosed = errors.New("kv: store closed")

// File names inside a Store's directory.
const (
	dataName  = "kv.data"
	indexName = "kv.index"
)

// Record framing within a span (see doc.go): magic, LSN, key length,
// value length (tombMark for a tombstone), CRC32-Castagnoli over
// key‖value, then key and value bytes.
const (
	recMagic  = 0x414B5631 // "AKV1"
	recHeader = 4 + 8 + 4 + 4 + 4
	tombMark  = ^uint32(0)
)

// Index file framing: magic, version, then the image with a trailing CRC
// over everything before it.
const (
	idxMagic   = 0x414B5649 // "AKVI"
	idxVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// span is a contiguous run of pages.
type span struct {
	off   uint64 // first page
	pages uint64
}

// rec locates one live record: its span and the LSN it was written under.
type rec struct {
	span
	lsn uint64
}

// Stats counts store activity since Open; the paging RUNBOOK section
// explains how to read them.
type Stats struct {
	Puts      uint64
	Gets      uint64
	Deletes   uint64
	Syncs     uint64
	Publishes uint64
	// LiveKeys/FilePages/FreePages describe the current layout.
	LiveKeys  uint64
	FilePages uint64
	FreePages uint64
}

// Store is the embedded KV store. Safe for concurrent use; one internal
// mutex serializes everything (see doc.go for the locking discipline).
type Store struct {
	mu   sync.Mutex
	dir  string
	data *os.File

	index       *memIndex
	free        []span         // allocatable, sorted by off, coalesced
	pendingFree []span         // freed since the last publish; reusable after it
	dead        map[string]rec // tombstones written since the last publish

	filePages uint64 // allocation high-water mark, in pages
	nextLSN   uint64
	unsynced  bool
	closed    bool
	err       error

	puts, gets, deletes, syncs, publishes uint64
}

// Open creates or recovers a store in dir: load the published index, scan
// the publish-time free spans and any file growth for post-publish
// records (highest LSN per key wins, tombstones delete), then publish a
// fresh index so the next open starts from a clean epoch. A missing or
// unreadable index degrades to a full-file scan.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, dataName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kv: %w", err)
	}
	s := &Store{dir: dir, data: f, index: newMemIndex(), dead: make(map[string]rec), nextLSN: 1}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("kv: %w", err)
	}
	actualPages := uint64(st.Size()) / PageSize

	var scan []span
	var minLSN uint64
	if img, ok := readIndexFile(filepath.Join(dir, indexName)); ok {
		s.index = img.index
		// Drop entries the data file no longer covers (truncated outside
		// our control): the flat bulk is immutable, so mask them.
		var drop [][]byte
		for i := range s.index.ents {
			if e := &s.index.ents[i]; e.off+uint64(e.pages) > actualPages {
				drop = append(drop, slices.Clone(s.index.flatKey(i)))
			}
		}
		for _, k := range drop {
			s.index.del(k)
		}
		minLSN = img.maxLSN
		s.nextLSN = img.maxLSN + 1
		// Post-publish writes live only in publish-time free spans or past
		// the published file length — the epoch invariant (doc.go).
		for _, sp := range img.free {
			if sp.off < actualPages {
				if sp.off+sp.pages > actualPages {
					sp.pages = actualPages - sp.off
				}
				scan = append(scan, sp)
			}
		}
		if img.filePages < actualPages {
			scan = append(scan, span{img.filePages, actualPages - img.filePages})
		}
	} else {
		scan = []span{{0, actualPages}}
	}
	s.recoverScan(scan, minLSN)
	s.filePages = actualPages
	s.rebuildFree()
	if err := s.publishLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// recoverScan walks the given page regions for valid records with
// LSN > minLSN, applying the highest LSN per key. Invalid pages (torn
// writes, pre-publish leftovers) are skipped page by page.
func (s *Store) recoverScan(regions []span, minLSN uint64) {
	maxSeen := s.nextLSN - 1
	head := make([]byte, PageSize)
	for _, rg := range regions {
		p := rg.off
		end := rg.off + rg.pages
		for p < end {
			if _, err := s.data.ReadAt(head, int64(p*PageSize)); err != nil {
				break
			}
			key, _, lsn, tomb, npages, ok := peekRecord(head)
			if !ok || lsn <= minLSN || p+npages > end {
				p++
				continue
			}
			var full []byte
			if npages == 1 {
				full = head
			} else {
				full = make([]byte, npages*PageSize)
				if _, err := s.data.ReadAt(full, int64(p*PageSize)); err != nil {
					p++
					continue
				}
			}
			key, _, lsn, tomb, npages, ok = decodeRecord(full)
			if !ok {
				p++
				continue
			}
			if lsn > maxSeen {
				maxSeen = lsn
			}
			if cur, exists := s.index.get(key); !exists || lsn > cur.lsn {
				if tomb {
					s.index.del(key)
				} else {
					s.index.put(key, rec{span{p, npages}, lsn})
				}
			}
			p += npages
		}
	}
	s.nextLSN = maxSeen + 1
}

// rebuildFree recomputes the free list as the complement of the live
// spans — recovery's self-healing step (leaked spans from crashed
// incarnations return to the pool).
func (s *Store) rebuildFree() {
	live := make([]span, 0, s.index.len())
	s.index.forEachSorted(func(_ []byte, r rec) error {
		live = append(live, r.span)
		return nil
	})
	slices.SortFunc(live, func(a, b span) int {
		switch {
		case a.off < b.off:
			return -1
		case a.off > b.off:
			return 1
		}
		return 0
	})
	s.free = s.free[:0]
	var at uint64
	for _, sp := range live {
		if sp.off > at {
			s.free = append(s.free, span{at, sp.off - at})
		}
		if sp.off+sp.pages > at {
			at = sp.off + sp.pages
		}
	}
	if at < s.filePages {
		s.free = append(s.free, span{at, s.filePages - at})
	}
	s.pendingFree = s.pendingFree[:0]
	s.dead = make(map[string]rec)
}

// peekRecord parses a record header from the first page of a candidate
// span, returning the key (if it fits entirely in buf), the LSN, whether
// it is a tombstone, and the span's page count. The CRC is NOT verified —
// decodeRecord on the full span does that.
func peekRecord(buf []byte) (key, val []byte, lsn uint64, tomb bool, npages uint64, ok bool) {
	if len(buf) < recHeader {
		return nil, nil, 0, false, 0, false
	}
	if binary.BigEndian.Uint32(buf[0:4]) != recMagic {
		return nil, nil, 0, false, 0, false
	}
	lsn = binary.BigEndian.Uint64(buf[4:12])
	keyLen := binary.BigEndian.Uint32(buf[12:16])
	valLen := binary.BigEndian.Uint32(buf[16:20])
	tomb = valLen == tombMark
	vl := uint64(0)
	if !tomb {
		vl = uint64(valLen)
	}
	if keyLen == 0 || keyLen > MaxKey || (!tomb && valLen > MaxValue) || lsn == 0 {
		return nil, nil, 0, false, 0, false
	}
	total := uint64(recHeader) + uint64(keyLen) + vl
	npages = (total + PageSize - 1) / PageSize
	return nil, nil, lsn, tomb, npages, true
}

// decodeRecord parses and CRC-verifies one record from the start of buf
// (a full span, possibly with padding). It returns views into buf.
func decodeRecord(buf []byte) (key, val []byte, lsn uint64, tomb bool, npages uint64, ok bool) {
	_, _, lsn, tomb, npages, ok = peekRecord(buf)
	if !ok {
		return nil, nil, 0, false, 0, false
	}
	keyLen := binary.BigEndian.Uint32(buf[12:16])
	valLen := binary.BigEndian.Uint32(buf[16:20])
	vl := uint64(0)
	if !tomb {
		vl = uint64(valLen)
	}
	total := uint64(recHeader) + uint64(keyLen) + vl
	if uint64(len(buf)) < total {
		return nil, nil, 0, false, 0, false
	}
	body := buf[recHeader:total]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(buf[20:24]) {
		return nil, nil, 0, false, 0, false
	}
	key = body[:keyLen]
	if !tomb {
		val = body[keyLen:]
	}
	return key, val, lsn, tomb, npages, true
}

// encodeRecord frames a record into a whole number of zero-padded pages.
func encodeRecord(key, val []byte, lsn uint64, tomb bool) []byte {
	vl := len(val)
	valLen := uint32(vl)
	if tomb {
		valLen = tombMark
		vl = 0
	}
	total := recHeader + len(key) + vl
	npages := (total + PageSize - 1) / PageSize
	buf := make([]byte, npages*PageSize)
	binary.BigEndian.PutUint32(buf[0:4], recMagic)
	binary.BigEndian.PutUint64(buf[4:12], lsn)
	binary.BigEndian.PutUint32(buf[12:16], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[16:20], valLen)
	copy(buf[recHeader:], key)
	if !tomb {
		copy(buf[recHeader+len(key):], val)
	}
	binary.BigEndian.PutUint32(buf[20:24], crc32.Checksum(buf[recHeader:total], crcTable))
	return buf
}

// alloc reserves a span of n pages: first fit from the free list, else
// file growth. Spans freed since the last publish are not eligible (the
// epoch invariant, doc.go).
func (s *Store) alloc(n uint64) span {
	for i, sp := range s.free {
		if sp.pages >= n {
			out := span{sp.off, n}
			if sp.pages == n {
				s.free = slices.Delete(s.free, i, i+1)
			} else {
				s.free[i] = span{sp.off + n, sp.pages - n}
			}
			return out
		}
	}
	out := span{s.filePages, n}
	s.filePages += n
	return out
}

// Put stores val under key, taking effect immediately for readers;
// durability comes with the next Sync or Publish.
func (s *Store) Put(key, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	if len(key) == 0 || len(key) > MaxKey {
		return fmt.Errorf("kv: key of %d bytes outside [1,%d]", len(key), MaxKey)
	}
	if len(val) > MaxValue {
		return fmt.Errorf("kv: value of %d bytes exceeds MaxValue (%d)", len(val), MaxValue)
	}
	lsn := s.nextLSN
	s.nextLSN++
	buf := encodeRecord(key, val, lsn, false)
	sp := s.alloc(uint64(len(buf)) / PageSize)
	if _, err := s.data.WriteAt(buf, int64(sp.off*PageSize)); err != nil {
		return s.fail(err)
	}
	s.unsynced = true
	if old, ok := s.index.put(key, rec{sp, lsn}); ok {
		s.pendingFree = append(s.pendingFree, old.span)
	} else if d, ok := s.dead[string(key)]; ok {
		// Re-created after a delete: the tombstone is superseded by LSN
		// order, so its span can queue for reuse too.
		s.pendingFree = append(s.pendingFree, d.span)
		delete(s.dead, string(key))
	}
	s.puts++
	return nil
}

// Get returns the value stored under key (a fresh copy), or ok=false if
// the key is absent. A read that fails to verify against the index — torn
// media under a published index — is an I/O error, not a miss.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return nil, false, err
	}
	r, ok := s.index.get(key)
	if !ok {
		return nil, false, nil
	}
	val, err := s.readLocked(key, r)
	if err != nil {
		return nil, false, err
	}
	s.gets++
	return val, true, nil
}

func (s *Store) readLocked(key []byte, r rec) ([]byte, error) {
	buf := make([]byte, r.pages*PageSize)
	if _, err := s.data.ReadAt(buf, int64(r.off*PageSize)); err != nil {
		return nil, s.fail(err)
	}
	k, val, lsn, tomb, _, ok := decodeRecord(buf)
	if !ok || tomb || lsn != r.lsn || string(k) != string(key) {
		return nil, s.fail(fmt.Errorf("record for %q at page %d fails verification", key, r.off))
	}
	return slices.Clone(val), nil
}

// Delete removes key, writing a tombstone so the removal survives
// recovery. Deleting an absent key is a no-op.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	ks := string(key)
	old, ok := s.index.get(key)
	if !ok {
		return nil
	}
	lsn := s.nextLSN
	s.nextLSN++
	buf := encodeRecord(key, nil, lsn, true)
	sp := s.alloc(uint64(len(buf)) / PageSize)
	if _, err := s.data.WriteAt(buf, int64(sp.off*PageSize)); err != nil {
		return s.fail(err)
	}
	s.unsynced = true
	s.index.del(key)
	s.pendingFree = append(s.pendingFree, old.span)
	if d, ok := s.dead[ks]; ok {
		s.pendingFree = append(s.pendingFree, d.span)
	}
	s.dead[ks] = rec{sp, lsn}
	s.deletes++
	return nil
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index.len()
}

// Has reports whether key is present, without reading its value.
func (s *Store) Has(key []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index.get(key)
	return ok
}

// ForEachKey invokes fn for every live key in unspecified order without
// reading any values — an index-only walk. Same callback rules as
// ForEach: the mutex is held, fn must not call back into the store nor
// retain the slice.
func (s *Store) ForEachKey(fn func(key []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	return s.index.forEachSorted(func(key []byte, _ rec) error {
		return fn(key)
	})
}

// ForEach invokes fn for every live key in unspecified order, with the
// store's mutex held: fn must not call back into the store and must not
// retain the key/value slices beyond the call.
func (s *Store) ForEach(fn func(key, val []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	return s.index.forEachSorted(func(key []byte, r rec) error {
		val, err := s.readLocked(key, r)
		if err != nil {
			return err
		}
		return fn(key, val)
	})
}

// Sync makes every record written since the last Sync durable as one
// batch (one fsync of the page file).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if !s.unsynced {
		return nil
	}
	if err := s.data.Sync(); err != nil {
		return s.fail(err)
	}
	s.unsynced = false
	s.syncs++
	return nil
}

// Publish checkpoints the store: fsync the page file, atomically replace
// the index file (write-temp → fsync → rename → dir fsync), and promote
// every span freed since the previous publish to the allocatable pool.
// After a successful Publish, Open costs O(index) plus whatever is
// written afterwards.
func (s *Store) Publish() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.usableLocked(); err != nil {
		return err
	}
	return s.publishLocked()
}

func (s *Store) publishLocked() error {
	if err := s.syncLocked(); err != nil {
		return err
	}
	newFree := append(slices.Clone(s.free), s.pendingFree...)
	for _, d := range s.dead {
		newFree = append(newFree, d.span)
	}
	newFree = coalesce(newFree)
	img := indexImage{
		index:     s.index,
		free:      newFree,
		maxLSN:    s.nextLSN - 1,
		filePages: s.filePages,
	}
	tmp := filepath.Join(s.dir, indexName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return s.fail(err)
	}
	if _, err := f.Write(encodeIndex(img)); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Close(); err != nil {
		return s.fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, indexName)); err != nil {
		return s.fail(err)
	}
	if err := syncDir(s.dir); err != nil {
		return s.fail(err)
	}
	s.free = newFree
	s.pendingFree = s.pendingFree[:0]
	s.dead = make(map[string]rec)
	s.index.rebuild()
	s.publishes++
	return nil
}

// coalesce sorts spans by offset and merges adjacent runs.
func coalesce(spans []span) []span {
	if len(spans) == 0 {
		return spans
	}
	slices.SortFunc(spans, func(a, b span) int {
		switch {
		case a.off < b.off:
			return -1
		case a.off > b.off:
			return 1
		}
		return 0
	})
	out := spans[:1]
	for _, sp := range spans[1:] {
		last := &out[len(out)-1]
		if last.off+last.pages == sp.off {
			last.pages += sp.pages
		} else {
			out = append(out, sp)
		}
	}
	return out
}

// Close publishes a final checkpoint and closes the store. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var perr error
	if s.err == nil {
		perr = s.publishLocked()
	}
	s.closed = true
	if cerr := s.data.Close(); perr == nil {
		perr = cerr
	}
	return perr
}

// Abort closes the store without syncing or publishing — the in-process
// kill -9. Whatever the kernel already holds survives; the published
// index stays at the last Publish.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.data.Close()
}

// Err returns the first I/O error, if any (sticky).
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns activity counters and the current layout.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var free uint64
	for _, sp := range s.free {
		free += sp.pages
	}
	for _, sp := range s.pendingFree {
		free += sp.pages
	}
	return Stats{
		Puts: s.puts, Gets: s.gets, Deletes: s.deletes,
		Syncs: s.syncs, Publishes: s.publishes,
		LiveKeys: uint64(s.index.len()), FilePages: s.filePages, FreePages: free,
	}
}

func (s *Store) usableLocked() error {
	if s.closed {
		return ErrClosed
	}
	return s.err
}

func (s *Store) fail(err error) error {
	if s.err == nil {
		s.err = fmt.Errorf("kv: %w", err)
	}
	return s.err
}

// indexImage is the decoded content of the index file.
type indexImage struct {
	index     *memIndex
	free      []span
	maxLSN    uint64
	filePages uint64
}

// encodeIndex serializes an index image with a trailing CRC. Entries are
// written in ascending key order so identical state produces identical
// bytes — and so decode can stream them straight into the flat bulk.
func encodeIndex(img indexImage) []byte {
	size := 4 + 1 + 8 + 8 + 4
	img.index.forEachSorted(func(k []byte, _ rec) error {
		size += 2 + len(k) + 8 + 8 + 8
		return nil
	})
	size += 4 + len(img.free)*16 + 4
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, idxMagic)
	buf = append(buf, idxVersion)
	buf = binary.BigEndian.AppendUint64(buf, img.maxLSN)
	buf = binary.BigEndian.AppendUint64(buf, img.filePages)
	buf = binary.BigEndian.AppendUint32(buf, uint32(img.index.len()))
	img.index.forEachSorted(func(k []byte, r rec) error {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(k)))
		buf = append(buf, k...)
		buf = binary.BigEndian.AppendUint64(buf, r.off)
		buf = binary.BigEndian.AppendUint64(buf, r.pages)
		buf = binary.BigEndian.AppendUint64(buf, r.lsn)
		return nil
	})
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(img.free)))
	for _, sp := range img.free {
		buf = binary.BigEndian.AppendUint64(buf, sp.off)
		buf = binary.BigEndian.AppendUint64(buf, sp.pages)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// decodeIndex parses an index file image; ok=false on any structural or
// CRC defect (the caller then falls back to a full-file scan).
func decodeIndex(data []byte) (indexImage, bool) {
	var img indexImage
	if len(data) < 4+1+8+8+4+4+4 {
		return img, false
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.BigEndian.Uint32(tail) {
		return img, false
	}
	if binary.BigEndian.Uint32(body[0:4]) != idxMagic || body[4] != idxVersion {
		return img, false
	}
	img.maxLSN = binary.BigEndian.Uint64(body[5:13])
	img.filePages = binary.BigEndian.Uint64(body[13:21])
	p := 21
	n := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if n < 0 || uint64(n)*(2+24) > uint64(len(body)-p) {
		return img, false
	}
	ix := newMemIndex()
	ix.ents = make([]flatEnt, 0, n)
	for i := 0; i < n; i++ {
		if p+2 > len(body) {
			return img, false
		}
		kl := int(binary.BigEndian.Uint16(body[p : p+2]))
		p += 2
		if kl == 0 || kl > MaxKey || p+kl+24 > len(body) {
			return img, false
		}
		k := body[p : p+kl]
		p += kl
		r := rec{span{
			binary.BigEndian.Uint64(body[p : p+8]),
			binary.BigEndian.Uint64(body[p+8 : p+16]),
		}, binary.BigEndian.Uint64(body[p+16 : p+24])}
		p += 24
		if r.pages == 0 || r.pages > maxSpanPages || r.lsn == 0 || r.lsn > img.maxLSN || r.off+r.pages < r.off {
			return img, false
		}
		// Entries must arrive in strictly ascending key order (our writer
		// guarantees it): decode streams them straight into the flat bulk.
		if len(ix.ents) > 0 && bytes.Compare(ix.flatKey(len(ix.ents)-1), k) >= 0 {
			return img, false
		}
		ix.ents = append(ix.ents, flatEnt{
			off:    r.off,
			lsn:    r.lsn,
			keyOff: uint32(len(ix.keys)),
			keyLen: uint16(kl),
			pages:  uint16(r.pages),
		})
		ix.keys = append(ix.keys, k...)
	}
	ix.live = n
	img.index = ix
	if p+4 > len(body) {
		return img, false
	}
	nf := int(binary.BigEndian.Uint32(body[p : p+4]))
	p += 4
	if nf < 0 || uint64(nf)*16 != uint64(len(body)-p) {
		return img, false
	}
	img.free = make([]span, nf)
	for i := range img.free {
		img.free[i] = span{
			binary.BigEndian.Uint64(body[p : p+8]),
			binary.BigEndian.Uint64(body[p+8 : p+16]),
		}
		p += 16
	}
	return img, true
}

func readIndexFile(path string) (indexImage, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return indexImage{}, false
	}
	return decodeIndex(data)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
