package kv

import (
	"bytes"
	"testing"
)

// FuzzDecodeKVPage drives the record parser that recovery scans run over
// raw (possibly torn or hostile) page-file bytes. Invariants: no panic,
// and any record that decodes as valid must re-encode to a record that
// decodes identically (the scan trusts decoded spans completely).
func FuzzDecodeKVPage(f *testing.F) {
	f.Add(encodeRecord([]byte("acct42"), []byte("balance"), 7, false))
	f.Add(encodeRecord([]byte("gone"), nil, 9, true))
	f.Add(encodeRecord(bytes.Repeat([]byte("k"), MaxKey), bytes.Repeat([]byte("v"), 3*PageSize), 1, false))
	f.Add(make([]byte, PageSize))
	f.Add([]byte{0x41, 0x4B, 0x56, 0x31})
	f.Fuzz(func(t *testing.T, data []byte) {
		key, val, lsn, tomb, npages, ok := decodeRecord(data)
		if !ok {
			return
		}
		if len(key) == 0 || len(key) > MaxKey || lsn == 0 {
			t.Fatalf("decode accepted out-of-bounds record: key=%d lsn=%d", len(key), lsn)
		}
		if npages == 0 || npages*PageSize < uint64(recHeader+len(key)+len(val)) {
			t.Fatalf("span accounting wrong: npages=%d key=%d val=%d", npages, len(key), len(val))
		}
		re := encodeRecord(key, val, lsn, tomb)
		k2, v2, l2, tb2, _, ok2 := decodeRecord(re)
		if !ok2 || l2 != lsn || tb2 != tomb || !bytes.Equal(k2, key) || !bytes.Equal(v2, val) {
			t.Fatalf("re-encode round trip diverged")
		}
	})
}

// FuzzDecodeKVIndex hardens the published-index parser: arbitrary bytes
// must never panic, and an accepted image must re-encode canonically.
func FuzzDecodeKVIndex(f *testing.F) {
	ix := newMemIndex()
	ix.put([]byte("a"), rec{span{0, 1}, 1})
	ix.put([]byte("b"), rec{span{1, 3}, 2})
	img := indexImage{
		index:     ix,
		free:      []span{{4, 2}},
		maxLSN:    2,
		filePages: 6,
	}
	f.Add(encodeIndex(img))
	f.Add(encodeIndex(indexImage{index: newMemIndex()}))
	f.Add([]byte{0x41, 0x4B, 0x56, 0x49, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, ok := decodeIndex(data)
		if !ok {
			return
		}
		var prev []byte
		err := got.index.forEachSorted(func(k []byte, r rec) error {
			if len(k) == 0 || len(k) > MaxKey || r.pages == 0 || r.pages > maxSpanPages || r.lsn == 0 || r.lsn > got.maxLSN {
				t.Fatalf("decode accepted bad entry %q: %+v (maxLSN %d)", k, r, got.maxLSN)
			}
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Fatalf("decode accepted unsorted entries: %q after %q", k, prev)
			}
			prev = append(prev[:0], k...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		re, ok2 := decodeIndex(encodeIndex(got))
		if !ok2 || re.index.len() != got.index.len() || re.maxLSN != got.maxLSN || re.filePages != got.filePages {
			t.Fatalf("index re-encode round trip diverged")
		}
	})
}
