package consensus

import (
	"sync/atomic"

	"astro/internal/types"
	"astro/internal/wire"
)

type atomicU64 = atomic.Uint64

// Message kinds on transport.ChanConsensus.
const (
	kindPrePrepare byte = 1
	kindPrepare    byte = 2
	kindCommit     byte = 3
	kindViewChange byte = 4
	kindNewView    byte = 5
)

// Local event kinds on transport.ChanLocal.
const (
	localBatch        byte = 1
	localTick         byte = 2
	localNewViewReady byte = 3
)

// Client-channel message kinds (transport.ChanPayment).
const (
	clientSubmit  byte = 1
	clientConfirm byte = 2
)

const maxBatchEntries = 1 << 16

func splitKind(payload []byte) (byte, []byte) {
	if len(payload) == 0 {
		return 0, nil
	}
	return payload[0], payload[1:]
}

func batchDigest(batch []types.Payment) types.Digest {
	w := wire.NewWriter(8 + len(batch)*types.PaymentWireSize)
	w.U8(0x50) // domain: consensus batch
	w.U32(uint32(len(batch)))
	for _, p := range batch {
		w.Raw(p.AppendBinary(nil))
	}
	return types.HashBytes(w.Bytes())
}

func encodeBatchInto(w *wire.Writer, batch []types.Payment) {
	w.U32(uint32(len(batch)))
	for _, p := range batch {
		w.Raw(p.AppendBinary(nil))
	}
}

func decodeBatchFrom(r *wire.Reader) ([]types.Payment, bool) {
	n := r.U32()
	if r.Err() != nil || n > maxBatchEntries {
		return nil, false
	}
	batch := make([]types.Payment, n)
	for i := range batch {
		raw := r.Fixed(types.PaymentWireSize)
		if r.Err() != nil {
			return nil, false
		}
		if err := batch[i].UnmarshalBinary(raw); err != nil {
			return nil, false
		}
	}
	return batch, true
}

func encodePrePrepare(view, seq uint64, batch []types.Payment) []byte {
	w := wire.NewWriter(32 + len(batch)*types.PaymentWireSize)
	w.U8(kindPrePrepare)
	w.U64(view)
	w.U64(seq)
	encodeBatchInto(w, batch)
	return w.Bytes()
}

func decodePrePrepare(body []byte) (view, seq uint64, batch []types.Payment, ok bool) {
	r := wire.NewReader(body)
	view = r.U64()
	seq = r.U64()
	batch, ok = decodeBatchFrom(r)
	if !ok || r.Finish() != nil {
		return 0, 0, nil, false
	}
	return view, seq, batch, true
}

func encodePrepare(view, seq uint64, digest types.Digest) []byte {
	return encodePhase(kindPrepare, view, seq, digest)
}

func encodeCommit(view, seq uint64, digest types.Digest) []byte {
	return encodePhase(kindCommit, view, seq, digest)
}

func encodePhase(kind byte, view, seq uint64, digest types.Digest) []byte {
	w := wire.NewWriter(49)
	w.U8(kind)
	w.U64(view)
	w.U64(seq)
	w.Bytes32(digest)
	return w.Bytes()
}

func decodePhase(body []byte) (view, seq uint64, digest types.Digest, ok bool) {
	r := wire.NewReader(body)
	view = r.U64()
	seq = r.U64()
	digest = r.Bytes32()
	if r.Finish() != nil {
		return 0, 0, types.Digest{}, false
	}
	return view, seq, digest, true
}

// preparedEntry is a prepared-but-unexecuted batch carried by view-change
// and new-view messages.
type preparedEntry struct {
	Seq   uint64
	Batch []types.Payment
}

type viewChangeMsg struct {
	NewView  uint64
	LastExec uint64
	Prepared []preparedEntry
}

func encodeViewChange(m *viewChangeMsg) []byte {
	w := wire.NewWriter(64)
	w.U8(kindViewChange)
	w.U64(m.NewView)
	w.U64(m.LastExec)
	w.U32(uint32(len(m.Prepared)))
	for _, pe := range m.Prepared {
		w.U64(pe.Seq)
		encodeBatchInto(w, pe.Batch)
	}
	return w.Bytes()
}

func decodeViewChange(body []byte) (*viewChangeMsg, bool) {
	r := wire.NewReader(body)
	m := &viewChangeMsg{NewView: r.U64(), LastExec: r.U64()}
	n := r.U32()
	if r.Err() != nil || n > maxBatchEntries {
		return nil, false
	}
	for i := uint32(0); i < n; i++ {
		seq := r.U64()
		batch, ok := decodeBatchFrom(r)
		if !ok {
			return nil, false
		}
		m.Prepared = append(m.Prepared, preparedEntry{Seq: seq, Batch: batch})
	}
	if r.Finish() != nil {
		return nil, false
	}
	return m, true
}

func encodeNewView(view uint64, entries []preparedEntry) []byte {
	w := wire.NewWriter(64)
	w.U8(kindNewView)
	w.U64(view)
	w.U32(uint32(len(entries)))
	for _, pe := range entries {
		w.U64(pe.Seq)
		encodeBatchInto(w, pe.Batch)
	}
	return w.Bytes()
}

func decodeNewView(body []byte) (uint64, []preparedEntry, bool) {
	r := wire.NewReader(body)
	view := r.U64()
	n := r.U32()
	if r.Err() != nil || n > maxBatchEntries {
		return 0, nil, false
	}
	var entries []preparedEntry
	for i := uint32(0); i < n; i++ {
		seq := r.U64()
		batch, ok := decodeBatchFrom(r)
		if !ok {
			return 0, nil, false
		}
		entries = append(entries, preparedEntry{Seq: seq, Batch: batch})
	}
	if r.Finish() != nil {
		return 0, nil, false
	}
	return view, entries, true
}

// ---- client channel ----

func encodeClientSubmit(p types.Payment) []byte {
	w := wire.NewWriter(1 + types.PaymentWireSize)
	w.U8(clientSubmit)
	w.Raw(p.AppendBinary(nil))
	return w.Bytes()
}

func decodeClientSubmit(payload []byte) (types.Payment, bool) {
	var p types.Payment
	if len(payload) != 1+types.PaymentWireSize || payload[0] != clientSubmit {
		return p, false
	}
	if err := p.UnmarshalBinary(payload[1:]); err != nil {
		return p, false
	}
	return p, true
}

func encodeClientConfirm(id types.PaymentID) []byte {
	w := wire.NewWriter(17)
	w.U8(clientConfirm)
	w.U64(uint64(id.Spender))
	w.U64(uint64(id.Seq))
	return w.Bytes()
}

func decodeClientConfirm(payload []byte) (types.PaymentID, bool) {
	var id types.PaymentID
	if len(payload) != 17 || payload[0] != clientConfirm {
		return id, false
	}
	r := wire.NewReader(payload[1:])
	id.Spender = types.ClientID(r.U64())
	id.Seq = types.Seq(r.U64())
	return id, r.Finish() == nil
}
