package consensus

import (
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

type cluster struct {
	t        *testing.T
	net      *memnet.Network
	replicas []*Replica
	ids      []types.ReplicaID
	f        int
}

func genesis100(types.ClientID) types.Amount { return 100 }

func newCluster(t *testing.T, n int, opts ...func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:   t,
		net: memnet.New(memnet.WithSeed(11)),
		f:   types.MaxFaults(n),
	}
	t.Cleanup(c.net.Close)
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, types.ReplicaID(i))
	}
	for i := 0; i < n; i++ {
		mux := transport.NewMux(c.net.Node(transport.ReplicaNode(types.ReplicaID(i))))
		cfg := Config{
			Self:               types.ReplicaID(i),
			Replicas:           c.ids,
			F:                  c.f,
			Mux:                mux,
			Genesis:            genesis100,
			BatchSize:          4,
			BatchDelay:         2 * time.Millisecond,
			RequestTimeout:     400 * time.Millisecond,
			ViewChangeSyncCost: 50 * time.Millisecond,
		}
		for _, o := range opts {
			o(&cfg)
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		c.replicas = append(c.replicas, r)
	}
	return c
}

func (c *cluster) client(id types.ClientID) *Client {
	mux := transport.NewMux(c.net.Node(transport.ClientNode(id)))
	return NewClient(id, c.ids, c.f, mux)
}

func (c *cluster) waitExecuted(n uint64, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		count := 0
		for _, r := range c.replicas {
			if r.ExecutedCount() >= n {
				count++
			}
		}
		// Every caller asserts per-replica state on ALL replicas right
		// after returning, so wait for all of them (no caller crashes
		// nodes); with channels dispatching concurrently, the last
		// replica's commit can otherwise still be in flight when the
		// quorum has already executed.
		if count == len(c.replicas) {
			return
		}
		if time.Now().After(deadline) {
			var got []uint64
			for _, r := range c.replicas {
				got = append(got, r.ExecutedCount())
			}
			c.t.Fatalf("timeout: executed = %v, want %d", got, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConsensusBasicPayment(t *testing.T) {
	c := newCluster(t, 4)
	alice := c.client(1)
	id, err := alice.Pay(2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatalf("confirm: %v", err)
	}
	c.waitExecuted(1, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(1); bal != 70 {
			t.Errorf("replica %d: balance(1) = %d", i, bal)
		}
		if bal := r.Balance(2); bal != 130 {
			t.Errorf("replica %d: balance(2) = %d", i, bal)
		}
	}
}

func TestConsensusSequentialPayments(t *testing.T) {
	c := newCluster(t, 4)
	alice := c.client(1)
	for i := 0; i < 10; i++ {
		id, err := alice.Pay(2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	c.waitExecuted(10, 5*time.Second)
	for i, r := range c.replicas {
		if bal := r.Balance(1); bal != 50 {
			t.Errorf("replica %d: balance = %d", i, bal)
		}
	}
}

func TestConsensusMultipleClients(t *testing.T) {
	c := newCluster(t, 4)
	const nClients = 6
	done := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		cl := c.client(types.ClientID(i + 1))
		go func(cl *Client) {
			for j := 0; j < 4; j++ {
				id, err := cl.Pay(types.ClientID(50), 2)
				if err != nil {
					done <- err
					return
				}
				if err := cl.WaitConfirm(id, 10*time.Second); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(cl)
	}
	for i := 0; i < nClients; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	c.waitExecuted(nClients*4, 5*time.Second)
}

func TestViewChangeOnLeaderCrash(t *testing.T) {
	c := newCluster(t, 4)
	alice := c.client(1)

	// Warm up through the initial leader (replica 0).
	id, err := alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Crash the leader, then submit: followers must elect a new leader
	// and execute.
	c.net.Crash(transport.ReplicaNode(0))
	id, err = alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 20*time.Second); err != nil {
		t.Fatalf("payment after leader crash never confirmed: %v", err)
	}
	// At least one survivor went through a view change.
	changed := false
	for i := 1; i < 4; i++ {
		if c.replicas[i].ViewChanges() > 0 {
			changed = true
		}
	}
	if !changed {
		t.Error("no view change recorded despite leader crash")
	}
}

func TestViewChangePreservesPreparedBatch(t *testing.T) {
	// Execute payments, crash the leader mid-stream, keep submitting;
	// every confirmed payment must have executed at a quorum and no
	// balance may be double-applied.
	c := newCluster(t, 4)
	alice := c.client(1)
	for i := 0; i < 3; i++ {
		id, err := alice.Pay(2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	c.net.Crash(transport.ReplicaNode(0))
	for i := 0; i < 3; i++ {
		id, err := alice.Pay(2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := alice.WaitConfirm(id, 20*time.Second); err != nil {
			t.Fatalf("post-crash payment %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok := 0
		for i := 1; i < 4; i++ {
			if c.replicas[i].Balance(1) == 40 && c.replicas[i].Balance(2) == 160 {
				ok++
			}
		}
		if ok == 3 {
			break
		}
		if time.Now().After(deadline) {
			for i := 1; i < 4; i++ {
				t.Logf("replica %d: bal1=%d bal2=%d", i, c.replicas[i].Balance(1), c.replicas[i].Balance(2))
			}
			t.Fatal("balances did not converge after view change")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSlowLeaderDegradesWithoutViewChange(t *testing.T) {
	// With a timeout far above the injected delay, a slow leader causes
	// degradation but no view change (the paper's Consensus-Leader-A).
	c := newCluster(t, 4, func(cfg *Config) {
		cfg.RequestTimeout = 5 * time.Second
	})
	alice := c.client(1)
	id, err := alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	c.net.SetNodeDelay(transport.ReplicaNode(0), 150*time.Millisecond)
	start := time.Now()
	id, err = alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Errorf("slow leader did not slow execution: %v", elapsed)
	}
	for _, r := range c.replicas {
		if r.ViewChanges() != 0 {
			t.Error("unexpected view change under loose timeout")
		}
	}
}

func TestSlowLeaderTriggersViewChangeUnderTightTimeout(t *testing.T) {
	// With the delay far above the timeout, replicas suspect the leader
	// (the paper's Consensus-Leader-B).
	c := newCluster(t, 4, func(cfg *Config) {
		cfg.RequestTimeout = 200 * time.Millisecond
	})
	alice := c.client(1)
	id, err := alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	c.net.SetNodeDelay(transport.ReplicaNode(0), 2*time.Second)
	id, err = alice.Pay(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WaitConfirm(id, 30*time.Second); err != nil {
		t.Fatalf("payment under slow leader never confirmed: %v", err)
	}
	changed := false
	for i := 1; i < 4; i++ {
		if c.replicas[i].ViewChanges() > 0 {
			changed = true
		}
	}
	if !changed {
		t.Error("tight timeout produced no view change under 2s leader delay")
	}
}

func TestConsensusConfigValidation(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	mux := transport.NewMux(net.Node(0))
	if _, err := New(Config{Self: 0, Replicas: []types.ReplicaID{0, 1}, F: 1, Mux: mux}); err == nil {
		t.Error("sub-quorum config accepted")
	}
	if _, err := New(Config{Self: 0, Replicas: []types.ReplicaID{0, 1, 2, 3}, F: 1}); err == nil {
		t.Error("nil mux accepted")
	}
}

func TestCodecRoundTrips(t *testing.T) {
	batch := []types.Payment{
		{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 3},
		{Spender: 4, Seq: 9, Beneficiary: 5, Amount: 6},
	}
	if _, _, _, ok := decodePrePrepare(encodePrePrepare(3, 7, batch)[1:]); !ok {
		t.Error("preprepare round trip failed")
	}
	v, s, batch2, _ := decodePrePrepare(encodePrePrepare(3, 7, batch)[1:])
	if v != 3 || s != 7 || len(batch2) != 2 || batch2[1] != batch[1] {
		t.Error("preprepare fields wrong")
	}
	d := batchDigest(batch)
	v, s, d2, ok := decodePhase(encodePrepare(1, 2, d)[1:])
	if !ok || v != 1 || s != 2 || d2 != d {
		t.Error("phase round trip failed")
	}
	vc := &viewChangeMsg{NewView: 5, LastExec: 2, Prepared: []preparedEntry{{Seq: 3, Batch: batch}}}
	vc2, ok := decodeViewChange(encodeViewChange(vc)[1:])
	if !ok || vc2.NewView != 5 || vc2.LastExec != 2 || len(vc2.Prepared) != 1 || vc2.Prepared[0].Seq != 3 {
		t.Error("viewchange round trip failed")
	}
	view, entries, ok := decodeNewView(encodeNewView(9, vc.Prepared)[1:])
	if !ok || view != 9 || len(entries) != 1 || len(entries[0].Batch) != 2 {
		t.Error("newview round trip failed")
	}
	id, ok := decodeClientConfirm(encodeClientConfirm(types.PaymentID{Spender: 8, Seq: 4}))
	if !ok || id.Spender != 8 || id.Seq != 4 {
		t.Error("confirm round trip failed")
	}
	p, ok := decodeClientSubmit(encodeClientSubmit(batch[0]))
	if !ok || p != batch[0] {
		t.Error("submit round trip failed")
	}
	if _, _, _, ok := decodePrePrepare([]byte{1, 2}); ok {
		t.Error("garbage preprepare accepted")
	}
	if _, ok := decodeViewChange([]byte{0xFF}); ok {
		t.Error("garbage viewchange accepted")
	}
}
