package consensus

import (
	"sync"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

// Client is a consensus-system client in the BFT-SMaRt style: it keeps
// logical connections to all replicas, submits every payment to all of
// them, and accepts a payment as executed once f+1 replicas confirm it
// (at least one of which must be correct).
type Client struct {
	id       types.ClientID
	replicas []types.ReplicaID
	f        int
	mux      *transport.Mux

	mu      sync.Mutex
	nextSeq types.Seq
	votes   map[types.PaymentID]map[types.ReplicaID]struct{}
	done    map[types.PaymentID]struct{}

	confirms chan types.PaymentID
}

// NewClient creates a client bound to the replica set.
func NewClient(id types.ClientID, replicas []types.ReplicaID, f int, mux *transport.Mux) *Client {
	c := &Client{
		id:       id,
		replicas: append([]types.ReplicaID(nil), replicas...),
		f:        f,
		mux:      mux,
		nextSeq:  1,
		votes:    make(map[types.PaymentID]map[types.ReplicaID]struct{}),
		done:     make(map[types.PaymentID]struct{}),
		confirms: make(chan types.PaymentID, 1<<12),
	}
	mux.Register(transport.ChanPayment, c.onMessage)
	return c
}

// ID returns the client identity.
func (c *Client) ID() types.ClientID { return c.id }

// Pay submits a payment to all replicas and returns its identifier.
func (c *Client) Pay(b types.ClientID, x types.Amount) (types.PaymentID, error) {
	c.mu.Lock()
	p := types.Payment{Spender: c.id, Seq: c.nextSeq, Beneficiary: b, Amount: x}
	c.nextSeq++
	c.mu.Unlock()
	msg := encodeClientSubmit(p)
	for _, r := range c.replicas {
		_ = c.mux.Send(transport.ReplicaNode(r), transport.ChanPayment, msg)
	}
	return p.ID(), nil
}

// Confirmations streams identifiers of payments confirmed by f+1 replicas.
func (c *Client) Confirmations() <-chan types.PaymentID { return c.confirms }

// WaitConfirm blocks until the payment gathers f+1 confirmations or the
// timeout expires.
func (c *Client) WaitConfirm(id types.PaymentID, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case got := <-c.confirms:
			if got == id || got.Seq > id.Seq {
				return nil
			}
		case <-deadline.C:
			return errTimeout
		}
	}
}

var errTimeout = timeoutError{}

type timeoutError struct{}

func (timeoutError) Error() string { return "consensus: client timed out" }

func (c *Client) onMessage(from transport.NodeID, payload []byte) {
	id, ok := decodeClientConfirm(payload)
	if !ok || id.Spender != c.id {
		return
	}
	replica := types.ReplicaID(from)

	c.mu.Lock()
	if _, fin := c.done[id]; fin {
		c.mu.Unlock()
		return
	}
	set := c.votes[id]
	if set == nil {
		set = make(map[types.ReplicaID]struct{})
		c.votes[id] = set
	}
	set[replica] = struct{}{}
	confirmed := len(set) >= c.f+1
	if confirmed {
		c.done[id] = struct{}{}
		delete(c.votes, id)
	}
	c.mu.Unlock()

	if confirmed {
		select {
		case c.confirms <- id:
		default:
		}
	}
}
