// Package consensus implements a leader-based Byzantine fault-tolerant
// state-machine-replication protocol in the PBFT family, serving as the
// paper's consensus baseline (BFT-SMaRt, §VI-A). A payment system built on
// it totally orders all payments — exactly the design Astro argues is
// unnecessary — and inherits the leader bottleneck and view-change
// fragility the robustness experiments (§VI-D) quantify.
//
// Protocol outline:
//
//   - Clients submit each payment to all replicas (the BFT-SMaRt client
//     design) and accept a payment as executed after f+1 matching
//     confirmations.
//   - The leader of the current view assembles batches and sends
//     PRE-PREPARE(view, seq, batch); replicas respond with PREPARE to all;
//     2f+1 matching PREPAREs trigger COMMIT to all; 2f+1 COMMITs make the
//     batch committed, and batches execute in sequence order.
//   - Non-leaders start a timer per pending request; on expiry they
//     broadcast VIEW-CHANGE carrying their prepared-but-unexecuted
//     batches. The leader of the next view collects 2f+1 VIEW-CHANGE
//     messages, waits out a configurable synchronization cost (modeling
//     state transfer, which grows with system size), and emits NEW-VIEW
//     re-proposing surviving batches.
//
// Execution reuses the core approve/settle engine with Astro I semantics
// (direct beneficiary credit), since total order subsumes per-xlog order.
package consensus

import (
	"errors"
	"sync"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/transport"
	"astro/internal/types"
)

// Config assembles one consensus replica.
type Config struct {
	// Self is this replica's identity.
	Self types.ReplicaID
	// Replicas lists all replicas; the leader of view v is
	// Replicas[v mod len(Replicas)].
	Replicas []types.ReplicaID
	// F is the Byzantine fault threshold; len(Replicas) >= 3F+1.
	F int
	// Mux is the node's transport multiplexer; the replica registers on
	// transport.ChanConsensus and transport.ChanLocal.
	Mux *transport.Mux
	// Genesis seeds client balances, as in core.Config.
	Genesis func(types.ClientID) types.Amount

	// BatchSize caps payments per proposal. Default 256.
	BatchSize int
	// BatchDelay bounds batch assembly latency at the leader. Default 5ms.
	BatchDelay time.Duration
	// RequestTimeout is how long a replica waits for a pending request to
	// execute before suspecting the leader and starting a view change.
	// The paper discusses the tension in tuning it (§VI-D): too tight
	// causes spurious view changes, too loose prolongs outages. Default 2s.
	RequestTimeout time.Duration
	// ViewChangeSyncCost is the extra delay the incoming leader spends
	// synchronizing state before emitting NEW-VIEW, modeling the
	// view-change work that grows with system size (the paper observes a
	// few seconds at N=49 and ~20s at N=100). Default: 40ms per replica.
	ViewChangeSyncCost time.Duration
	// Auth enables MAC authentication on replica-to-replica channels,
	// matching BFT-SMaRt's MAC-based channel authentication (the same
	// scheme Astro I uses). Optional.
	Auth *crypto.LinkAuthenticator
	// Verifier is the worker pool used to check inbound link MACs off the
	// protocol lock; handlers re-enter through a completion callback.
	// PBFT-family vote counting is insensitive to message reordering (the
	// network reorders anyway), so asynchronous completion is safe. Nil
	// selects the shared process-wide pool (verifier.Default).
	Verifier *verifier.Verifier
}

// Errors returned by New.
var (
	ErrConfigMux    = errors.New("consensus: config requires Mux")
	ErrConfigQuorum = errors.New("consensus: fewer than 3f+1 replicas")
)

func (c *Config) normalize() error {
	if c.Mux == nil {
		return ErrConfigMux
	}
	if len(c.Replicas) < 3*c.F+1 {
		return ErrConfigQuorum
	}
	if c.Genesis == nil {
		c.Genesis = func(types.ClientID) types.Amount { return 0 }
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = 5 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.ViewChangeSyncCost < 0 {
		c.ViewChangeSyncCost = 0
	} else if c.ViewChangeSyncCost == 0 {
		c.ViewChangeSyncCost = time.Duration(len(c.Replicas)) * 40 * time.Millisecond
	}
	if c.Verifier == nil {
		c.Verifier = verifier.Default()
	}
	return nil
}

func (c *Config) quorum() int { return 2*c.F + 1 }

// leaderOf returns the leader replica of a view.
func (c *Config) leaderOf(view uint64) types.ReplicaID {
	return c.Replicas[int(view%uint64(len(c.Replicas)))]
}

// entry tracks one proposal slot through the three phases. Votes are
// recorded per replica with the digest they endorsed: messages may arrive
// before the proposal itself (the network reorders), so votes are kept
// and counted against the proposed digest once it is known.
type entry struct {
	view     uint64
	digest   types.Digest
	batch    []types.Payment
	prepares map[types.ReplicaID]types.Digest
	commits  map[types.ReplicaID]types.Digest
	// phase flags
	preprepared bool
	prepared    bool // sent COMMIT
	committed   bool
	executed    bool
}

// votesFor counts votes endorsing the given digest.
func votesFor(votes map[types.ReplicaID]types.Digest, d types.Digest) int {
	n := 0
	for _, vd := range votes {
		if vd == d {
			n++
		}
	}
	return n
}

// pendingReq is a client request awaiting execution.
type pendingReq struct {
	payment types.Payment
	arrived time.Time
}

// Replica is one node of the consensus-based payment system.
type Replica struct {
	cfg   Config
	state *core.State

	// mu guards all protocol state. The mux dispatches each channel on
	// its own goroutine (consensus, client, and local-timer traffic run
	// concurrently), so handlers genuinely contend on this lock.
	mu           sync.Mutex
	view         uint64
	inViewChange bool
	nextSeq      uint64 // next sequence the leader assigns
	execUpTo     uint64 // highest executed sequence
	log          map[uint64]*entry
	pending      map[types.PaymentID]*pendingReq
	pendingOrder []types.PaymentID
	vcVotes      map[uint64]map[types.ReplicaID]*viewChangeMsg
	vcStarted    time.Time
	batchTimer   bool

	executedTotal  atomicU64
	viewChangesRun atomicU64
}

// New creates a consensus replica and registers its handlers.
func New(cfg Config) (*Replica, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:     cfg,
		state:   core.NewState(core.AstroI, cfg.Genesis, nil),
		log:     make(map[uint64]*entry),
		pending: make(map[types.PaymentID]*pendingReq),
		vcVotes: make(map[uint64]map[types.ReplicaID]*viewChangeMsg),
	}
	cfg.Mux.Register(transport.ChanConsensus, r.onMessage)
	cfg.Mux.Register(transport.ChanPayment, r.onClientMsg)
	// View-change ticks and batch timers serialize with the protocol
	// messages they inspect.
	cfg.Mux.Register(transport.ChanLocal, r.onLocal, transport.SerializeWith(transport.ChanConsensus))
	r.scheduleTick()
	return r, nil
}

// ID returns the replica identity.
func (r *Replica) ID() types.ReplicaID { return r.cfg.Self }

// ExecutedCount returns the number of payments executed, for throughput
// timelines.
func (r *Replica) ExecutedCount() uint64 { return r.executedTotal.Load() }

// ViewChanges returns how many view changes this replica has completed.
func (r *Replica) ViewChanges() uint64 { return r.viewChangesRun.Load() }

// Balance returns a client's balance in the replicated state.
func (r *Replica) Balance(c types.ClientID) types.Amount {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Balance(c)
}

// View returns the current view number (for diagnostics).
func (r *Replica) View() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view
}

func (r *Replica) isLeader() bool { return r.cfg.leaderOf(r.view) == r.cfg.Self }

func (r *Replica) scheduleTick() {
	interval := r.cfg.RequestTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	time.AfterFunc(interval, func() {
		_ = r.cfg.Mux.SendLocal([]byte{localTick})
	})
}

func (r *Replica) broadcast(msg []byte) {
	for _, p := range r.cfg.Replicas {
		out := msg
		if r.cfg.Auth != nil {
			tag := r.cfg.Auth.Tag(p, msg)
			buf := make([]byte, 0, len(msg)+len(tag))
			buf = append(buf, msg...)
			buf = append(buf, tag...)
			out = buf
		}
		_ = r.cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanConsensus, out)
	}
}

// ---- client side ----

// onClientMsg accepts request submissions (clients send to all replicas).
func (r *Replica) onClientMsg(from transport.NodeID, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := decodeClientSubmit(payload)
	if !ok {
		return
	}
	if transport.ClientNode(p.Spender) != from {
		return // spoofed submission
	}
	id := p.ID()
	if _, dup := r.pending[id]; dup {
		return
	}
	if r.state.NextSeq(p.Spender) > p.Seq {
		return // already executed
	}
	r.pending[id] = &pendingReq{payment: p, arrived: time.Now()}
	r.pendingOrder = append(r.pendingOrder, id)
	if r.isLeader() && !r.inViewChange {
		r.maybePropose(false)
	}
}

// maybePropose assembles and pre-prepares a batch if warranted.
// force proposes any non-empty batch (timer path); otherwise a full batch
// is required.
func (r *Replica) maybePropose(force bool) {
	avail := r.unproposedCount()
	if avail == 0 {
		return
	}
	if avail < r.cfg.BatchSize && !force {
		if !r.batchTimer {
			r.batchTimer = true
			time.AfterFunc(r.cfg.BatchDelay, func() {
				_ = r.cfg.Mux.SendLocal([]byte{localBatch})
			})
		}
		return
	}
	for r.unproposedCount() > 0 {
		batch := r.takeBatch()
		if len(batch) == 0 {
			return
		}
		r.nextSeq++
		seq := r.nextSeq
		e := r.logEntry(seq)
		e.view = r.view
		e.batch = batch
		e.digest = batchDigest(batch)
		e.preprepared = true
		e.prepares[r.cfg.Self] = e.digest
		r.broadcast(encodePrePrepare(r.view, seq, batch))
		if r.unproposedCount() < r.cfg.BatchSize {
			break
		}
	}
	// Leftovers below a full batch wait for the next timer or fill.
	if r.unproposedCount() > 0 && !r.batchTimer {
		r.batchTimer = true
		time.AfterFunc(r.cfg.BatchDelay, func() {
			_ = r.cfg.Mux.SendLocal([]byte{localBatch})
		})
	}
}

// unproposedCount counts pending requests not yet in any log entry.
func (r *Replica) unproposedCount() int { return len(r.pendingOrder) }

// takeBatch removes up to BatchSize requests from the pending queue.
func (r *Replica) takeBatch() []types.Payment {
	n := len(r.pendingOrder)
	if n > r.cfg.BatchSize {
		n = r.cfg.BatchSize
	}
	batch := make([]types.Payment, 0, n)
	for _, id := range r.pendingOrder[:n] {
		if req, ok := r.pending[id]; ok {
			batch = append(batch, req.payment)
		}
	}
	r.pendingOrder = r.pendingOrder[n:]
	return batch
}

// ---- consensus message handling ----

func (r *Replica) onMessage(from transport.NodeID, payload []byte) {
	peer := types.ReplicaID(from)
	if r.cfg.Auth != nil {
		if len(payload) < crypto.TagSize {
			return
		}
		// MAC verification runs on the verifier pool, off the dispatch
		// goroutine and outside r.mu; the protocol handler re-enters via
		// the completion callback. Transports hand buffer ownership to
		// the handler, so retaining payload across the hop is safe.
		msg, tag := payload[:len(payload)-crypto.TagSize], payload[len(payload)-crypto.TagSize:]
		r.cfg.Verifier.VerifyDetached(
			func() bool { return r.cfg.Auth.VerifyTag(peer, msg, tag) },
			func(ok bool) {
				if ok {
					r.dispatch(peer, msg)
				}
				// else: forged or corrupted
			})
		return
	}
	r.dispatch(peer, payload)
}

// dispatch routes an authenticated protocol message under the lock.
func (r *Replica) dispatch(peer types.ReplicaID, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	kind, body := splitKind(payload)
	switch kind {
	case kindPrePrepare:
		r.onPrePrepare(peer, body)
	case kindPrepare:
		r.onPrepare(peer, body)
	case kindCommit:
		r.onCommit(peer, body)
	case kindViewChange:
		r.onViewChange(peer, body)
	case kindNewView:
		r.onNewView(peer, body)
	}
}

func (r *Replica) onPrePrepare(peer types.ReplicaID, body []byte) {
	view, seq, batch, ok := decodePrePrepare(body)
	// Proposals for the current view are accepted even while this
	// replica is still waiting for the NEW-VIEW message: the new leader
	// only proposes after gathering a view-change quorum, and the
	// network may reorder its NEW-VIEW behind its first proposals.
	if !ok || view != r.view {
		return
	}
	if r.cfg.leaderOf(view) != peer {
		return // only the leader proposes
	}
	e := r.logEntry(seq)
	if e.executed {
		return
	}
	if e.preprepared && e.view >= view {
		return
	}
	// A proposal (possibly superseding a stale entry left behind by a
	// failed leader) adopts the new view and digest; votes already
	// gathered are retained — they only count if their digest matches.
	r.resetEntry(e, view, batch)
	e.prepares[peer] = e.digest
	e.prepares[r.cfg.Self] = e.digest
	r.broadcast(encodePrepare(view, seq, e.digest))
	r.checkPrepared(seq, e)
}

// resetEntry re-initializes a log entry for a (re-)proposal in view.
// Vote maps survive: prepares/commits may legitimately arrive before the
// proposal itself (network reordering), and are tallied by digest.
func (r *Replica) resetEntry(e *entry, view uint64, batch []types.Payment) {
	e.view = view
	e.batch = batch
	e.digest = batchDigest(batch)
	e.preprepared = true
	e.prepared = false
	e.committed = false
}

func (r *Replica) onPrepare(peer types.ReplicaID, body []byte) {
	view, seq, digest, ok := decodePhase(body)
	if !ok || view != r.view {
		return
	}
	e := r.logEntry(seq)
	if e.preprepared && e.view != view {
		return
	}
	e.prepares[peer] = digest
	r.checkPrepared(seq, e)
}

func (r *Replica) checkPrepared(seq uint64, e *entry) {
	if e.prepared || !e.preprepared || votesFor(e.prepares, e.digest) < r.cfg.quorum() {
		return
	}
	e.prepared = true
	e.commits[r.cfg.Self] = e.digest
	r.broadcast(encodeCommit(e.view, seq, e.digest))
	r.checkCommitted(seq, e)
}

func (r *Replica) onCommit(peer types.ReplicaID, body []byte) {
	view, seq, digest, ok := decodePhase(body)
	if !ok || view != r.view {
		return
	}
	e := r.logEntry(seq)
	if e.preprepared && e.view != view {
		return
	}
	e.commits[peer] = digest
	r.checkCommitted(seq, e)
}

func (r *Replica) checkCommitted(seq uint64, e *entry) {
	if e.committed || !e.prepared || votesFor(e.commits, e.digest) < r.cfg.quorum() {
		return
	}
	e.committed = true
	r.executeReady()
}

// executeReady applies committed batches in sequence order.
func (r *Replica) executeReady() {
	for {
		e, ok := r.log[r.execUpTo+1]
		if !ok || !e.committed || e.executed {
			return
		}
		e.executed = true
		r.execUpTo++
		for _, p := range e.batch {
			settled := r.state.ApplyEntry(core.BatchEntry{Payment: p})
			r.executedTotal.Add(uint64(len(settled)))
			for _, sp := range settled {
				// Confirm to the spender's client; clients count f+1
				// matching confirmations.
				_ = r.cfg.Mux.Send(transport.ClientNode(sp.Spender), transport.ChanPayment, encodeClientConfirm(sp.ID()))
				id := sp.ID()
				delete(r.pending, id)
				r.dropFromOrder(id)
			}
			// Remove even if queued unfunded: it is in the engine now.
			id := p.ID()
			delete(r.pending, id)
			r.dropFromOrder(id)
		}
	}
}

func (r *Replica) dropFromOrder(id types.PaymentID) {
	for i, x := range r.pendingOrder {
		if x == id {
			r.pendingOrder = append(r.pendingOrder[:i], r.pendingOrder[i+1:]...)
			return
		}
	}
}

func (r *Replica) logEntry(seq uint64) *entry {
	e, ok := r.log[seq]
	if !ok {
		e = &entry{
			prepares: make(map[types.ReplicaID]types.Digest),
			commits:  make(map[types.ReplicaID]types.Digest),
		}
		r.log[seq] = e
	}
	return e
}

// ---- timers and view change ----

func (r *Replica) onLocal(_ transport.NodeID, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(payload) == 0 {
		return
	}
	switch payload[0] {
	case localBatch:
		r.batchTimer = false
		if r.isLeader() && !r.inViewChange {
			r.maybePropose(true)
		}
	case localTick:
		r.onTick()
		r.scheduleTick()
	case localNewViewReady:
		r.finishNewView()
	}
}

// onTick checks whether the oldest pending request has waited past the
// timeout; if so, suspect the leader.
func (r *Replica) onTick() {
	if r.inViewChange {
		// If the view change itself stalls (next leader also faulty),
		// escalate to the following view.
		if time.Since(r.vcStarted) > 2*r.cfg.RequestTimeout {
			r.startViewChange(r.view + 2)
		}
		return
	}
	if r.isLeader() {
		return
	}
	oldest := time.Time{}
	for _, req := range r.pending {
		if oldest.IsZero() || req.arrived.Before(oldest) {
			oldest = req.arrived
		}
	}
	if !oldest.IsZero() && time.Since(oldest) > r.cfg.RequestTimeout {
		r.startViewChange(r.view + 1)
	}
}

func (r *Replica) startViewChange(newView uint64) {
	if newView <= r.view {
		return
	}
	r.inViewChange = true
	r.vcStarted = time.Now()
	r.view = newView
	msg := &viewChangeMsg{NewView: newView, LastExec: r.execUpTo, Prepared: r.preparedTail()}
	r.recordViewChange(r.cfg.Self, msg)
	r.broadcast(encodeViewChange(msg))
}

// preparedTail collects prepared-but-unexecuted batches to hand to the new
// leader.
func (r *Replica) preparedTail() []preparedEntry {
	var out []preparedEntry
	for seq, e := range r.log {
		if seq > r.execUpTo && e.prepared && !e.executed {
			out = append(out, preparedEntry{Seq: seq, Batch: e.batch})
		}
	}
	return out
}

func (r *Replica) onViewChange(peer types.ReplicaID, body []byte) {
	msg, ok := decodeViewChange(body)
	if !ok || msg.NewView < r.view {
		return
	}
	r.recordViewChange(peer, msg)
}

func (r *Replica) recordViewChange(peer types.ReplicaID, msg *viewChangeMsg) {
	votes := r.vcVotes[msg.NewView]
	if votes == nil {
		votes = make(map[types.ReplicaID]*viewChangeMsg)
		r.vcVotes[msg.NewView] = votes
	}
	votes[peer] = msg

	// A replica that sees f+1 view-change votes for a higher view joins
	// the view change even if its own timer has not fired (PBFT rule).
	if len(votes) > r.cfg.F && msg.NewView > r.view && !r.inViewChange {
		r.startViewChange(msg.NewView)
	}

	if r.cfg.leaderOf(msg.NewView) != r.cfg.Self {
		return
	}
	if len(votes) < r.cfg.quorum() {
		return
	}
	if r.view == msg.NewView && r.inViewChange {
		// We are the incoming leader with a quorum: synchronize, then
		// emit NEW-VIEW. The synchronization cost models the state
		// transfer and session re-establishment that dominates view
		// change duration at scale.
		delay := r.cfg.ViewChangeSyncCost
		time.AfterFunc(delay, func() {
			_ = r.cfg.Mux.SendLocal([]byte{localNewViewReady})
		})
	}
}

// finishNewView runs at the incoming leader after the synchronization
// delay: merge the prepared tails and re-propose.
func (r *Replica) finishNewView() {
	if !r.inViewChange || r.cfg.leaderOf(r.view) != r.cfg.Self {
		return
	}
	votes := r.vcVotes[r.view]
	if len(votes) < r.cfg.quorum() {
		return
	}
	// Merge prepared entries: highest view wins per seq; here batches are
	// identified by seq and any prepared batch from a quorum member is
	// safe to re-propose.
	merged := make(map[uint64][]types.Payment)
	maxExec := uint64(0)
	for _, v := range votes {
		if v.LastExec > maxExec {
			maxExec = v.LastExec
		}
		for _, pe := range v.Prepared {
			merged[pe.Seq] = pe.Batch
		}
	}
	var entries []preparedEntry
	for seq, b := range merged {
		if seq > r.execUpTo {
			entries = append(entries, preparedEntry{Seq: seq, Batch: b})
		}
	}
	if r.nextSeq < maxExec {
		r.nextSeq = maxExec
	}
	for _, pe := range entries {
		if pe.Seq > r.nextSeq {
			r.nextSeq = pe.Seq
		}
	}
	r.broadcast(encodeNewView(r.view, entries))
	// Broadcast includes self; the handler transitions us out of the
	// view change like everyone else.
}

func (r *Replica) onNewView(peer types.ReplicaID, body []byte) {
	view, entries, ok := decodeNewView(body)
	if !ok || view < r.view || r.cfg.leaderOf(view) != peer {
		return
	}
	r.view = view
	r.inViewChange = false
	r.viewChangesRun.Add(1)
	// Treat re-proposals as fresh pre-prepares in the new view.
	for _, pe := range entries {
		e := r.logEntry(pe.Seq)
		if e.executed {
			continue
		}
		if e.preprepared && e.view == view {
			continue // already accepted directly from the new leader
		}
		r.resetEntry(e, view, pe.Batch)
		e.prepares[peer] = e.digest
		e.prepares[r.cfg.Self] = e.digest
		r.broadcast(encodePrepare(view, pe.Seq, e.digest))
	}
	// Refresh request timers: give the new leader a full timeout.
	now := time.Now()
	for _, req := range r.pending {
		req.arrived = now
	}
	if r.isLeader() {
		r.maybePropose(true)
	}
}
