package reconfig

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

type fixture struct {
	t        *testing.T
	net      *memnet.Network
	registry *crypto.Registry
	managers map[types.ReplicaID]*Manager
	keys     map[types.ReplicaID]*crypto.KeyPair
	view     View
	f        int
	state    StaticState
}

func newFixture(t *testing.T, n int, state StaticState) *fixture {
	t.Helper()
	fx := &fixture{
		t:        t,
		net:      memnet.New(memnet.WithSeed(3), memnet.WithLatency(memnet.Uniform(time.Millisecond, 3*time.Millisecond))),
		registry: crypto.NewRegistry(),
		managers: make(map[types.ReplicaID]*Manager),
		keys:     make(map[types.ReplicaID]*crypto.KeyPair),
		f:        types.MaxFaults(n),
		state:    state,
	}
	t.Cleanup(fx.net.Close)
	members := make([]types.ReplicaID, n)
	for i := range members {
		members[i] = types.ReplicaID(i)
		kp := crypto.MustGenerateKeyPair()
		fx.keys[members[i]] = kp
		fx.registry.Add(members[i], kp.Public())
	}
	fx.view = View{Num: 1, Members: members}
	for _, id := range members {
		fx.addManager(id)
	}
	return fx
}

func (fx *fixture) addManager(id types.ReplicaID) {
	mux := transport.NewMux(fx.net.Node(transport.ReplicaNode(id)))
	fx.managers[id] = NewManager(Config{
		Self:        id,
		Mux:         mux,
		Keys:        fx.keys[id],
		Registry:    fx.registry,
		F:           fx.f,
		InitialView: fx.view,
		State:       fx.state,
	})
}

func (fx *fixture) join(id types.ReplicaID, consensus bool) *JoinResult {
	fx.t.Helper()
	kp := crypto.MustGenerateKeyPair()
	fx.keys[id] = kp
	mux := transport.NewMux(fx.net.Node(transport.ReplicaNode(id)))
	cfg := JoinConfig{
		Self:        id,
		Mux:         mux,
		Keys:        kp,
		Registry:    fx.registry,
		F:           fx.f,
		CurrentView: fx.view,
		Timeout:     10 * time.Second,
	}
	var res *JoinResult
	var err error
	if consensus {
		res, err = ConsensusJoin(cfg)
	} else {
		res, err = Join(cfg)
	}
	if err != nil {
		fx.t.Fatalf("join %d: %v", id, err)
	}
	return res
}

func TestViewWithJoiner(t *testing.T) {
	v := View{Num: 3, Members: []types.ReplicaID{2, 0, 1}}
	next := v.WithJoiner(5)
	if next.Num != 4 || len(next.Members) != 4 {
		t.Fatalf("next = %+v", next)
	}
	for i := 1; i < len(next.Members); i++ {
		if next.Members[i-1] >= next.Members[i] {
			t.Fatal("members not sorted")
		}
	}
	// Idempotent for existing members.
	again := next.WithJoiner(5)
	if len(again.Members) != 4 {
		t.Error("joiner duplicated")
	}
	if !next.Contains(5) || next.Contains(9) {
		t.Error("Contains wrong")
	}
	if v.Digest() == next.Digest() {
		t.Error("digest collision across views")
	}
}

func TestAsyncJoin(t *testing.T) {
	snap := StaticState{
		7: {{Spender: 7, Seq: 1, Beneficiary: 8, Amount: 5}},
	}
	fx := newFixture(t, 4, snap)
	res := fx.join(100, false)

	if res.View.Num != 2 || !res.View.Contains(100) {
		t.Errorf("joined view = %+v", res.View)
	}
	if len(res.State) != 1 || len(res.State[7]) != 1 || res.State[7][0].Amount != 5 {
		t.Errorf("state = %+v", res.State)
	}
	if res.Latency <= 0 {
		t.Error("latency not measured")
	}
	// All members installed the new view and registered the joiner key.
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := 0
		for _, m := range fx.managers {
			if v := m.View(); v.Num == 2 && v.Contains(100) {
				done++
			}
		}
		if done == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("members did not install the view")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fx.registry.Lookup(100) == nil {
		t.Error("joiner key not registered")
	}
}

func TestSequentialJoinsGrowView(t *testing.T) {
	fx := newFixture(t, 4, nil)
	for i := 0; i < 3; i++ {
		id := types.ReplicaID(100 + i)
		res := fx.join(id, false)
		if int(res.View.Num) != 2+i {
			t.Fatalf("join %d: view num = %d", i, res.View.Num)
		}
		fx.view = res.View
		// The joiner becomes a member able to serve future joins.
		fx.addManager(id)
	}
	if len(fx.view.Members) != 7 {
		t.Errorf("final view size = %d", len(fx.view.Members))
	}
}

func TestJoinToleratesCrashedMembers(t *testing.T) {
	fx := newFixture(t, 4, nil)
	// Crash one member (f=1): the joiner still gathers 2f+1 acks. Crash a
	// non-lowest member so the state-transfer designate survives.
	fx.net.Crash(transport.ReplicaNode(3))
	res := fx.join(100, false)
	if !res.View.Contains(100) {
		t.Error("join failed with one crashed member")
	}
}

func TestJoinTimesOutWithoutQuorum(t *testing.T) {
	fx := newFixture(t, 4, nil)
	// Crash two members (> f): no quorum of acks can form.
	fx.net.Crash(transport.ReplicaNode(2))
	fx.net.Crash(transport.ReplicaNode(3))
	kp := crypto.MustGenerateKeyPair()
	mux := transport.NewMux(fx.net.Node(transport.ReplicaNode(100)))
	_, err := Join(JoinConfig{
		Self: 100, Mux: mux, Keys: kp, Registry: fx.registry,
		F: fx.f, CurrentView: fx.view, Timeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("join succeeded without quorum")
	}
}

func TestConsensusJoin(t *testing.T) {
	fx := newFixture(t, 4, StaticState{})
	res := fx.join(100, true)
	if !res.View.Contains(100) {
		t.Errorf("view = %+v", res.View)
	}
	// Leader and members adopt the view.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if v := fx.managers[0].View(); v.Contains(100) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader did not adopt view")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestConsensusJoinSlowerThanAsync(t *testing.T) {
	// The sequential session handshake makes consensus-style joins slower
	// than the quorum-gathering async join on the same network; the gap
	// widens with membership (Figure 8's shape).
	fx := newFixture(t, 7, nil)
	async := fx.join(100, false)
	fx.view = async.View
	fx.addManager(100)

	cons := fx.join(101, true)
	if cons.Latency < async.Latency {
		t.Logf("async=%v consensus=%v", async.Latency, cons.Latency)
		t.Error("consensus join unexpectedly faster than async join")
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	snap := map[types.ClientID][]types.Payment{
		1: {{Spender: 1, Seq: 1, Beneficiary: 2, Amount: 3}, {Spender: 1, Seq: 2, Beneficiary: 4, Amount: 5}},
		9: {},
	}
	got, ok := decodeState(encodeState(snap)[1:])
	if !ok {
		t.Fatal("decode failed")
	}
	if len(got) != 2 || len(got[1]) != 2 || got[1][1].Amount != 5 || len(got[9]) != 0 {
		t.Errorf("state = %+v", got)
	}
	if _, ok := decodeState([]byte{0xFF, 0xFF, 0xFF, 0xFF}); ok {
		t.Error("absurd state accepted")
	}
}

func TestInstallRejectsBadCert(t *testing.T) {
	fx := newFixture(t, 4, nil)
	// Craft an install with a garbage certificate; members must not
	// adopt the view.
	joinerKeys := crypto.MustGenerateKeyPair()
	var cert crypto.Certificate
	cert.Add(crypto.PartialSig{Replica: 0, Sig: []byte("junk")})
	cert.Add(crypto.PartialSig{Replica: 1, Sig: []byte("junk")})
	cert.Add(crypto.PartialSig{Replica: 2, Sig: []byte("junk")})
	next := fx.view.WithJoiner(100)
	mux := transport.NewMux(fx.net.Node(transport.ReplicaNode(100)))
	msg := encodeInstall(installMsg{View: next, Joiner: 100, JoinerPub: joinerKeys.PublicBytes(), Cert: cert})
	for _, m := range fx.view.Members {
		_ = mux.Send(transport.ReplicaNode(m), transport.ChanReconfig, msg)
	}
	time.Sleep(200 * time.Millisecond)
	for id, m := range fx.managers {
		if m.View().Num != 1 {
			t.Errorf("member %d adopted a forged view", id)
		}
	}
}
