package reconfig

// Fuzz harness for the reconfiguration channel decoders. The seeds lean
// adversarial on purpose: the stale-ADOPT and forged-INSTALL frames the
// Byzantine stale-view behavior (internal/sim) injects are exactly the
// hostile inputs these decoders must survive. Invariants: no panic on
// arbitrary bytes, and accepted views respect the membership cap.

import (
	"testing"

	"astro/internal/crypto"
	"astro/internal/types"
)

func FuzzDecodeReconfigChannel(f *testing.F) {
	v := View{Num: 3, Members: []types.ReplicaID{0, 1, 2, 3}}
	f.Add(ForgeStaleAdopt(v))
	var cert crypto.Certificate
	cert.Add(crypto.PartialSig{Replica: 1, Sig: []byte("not-a-signature")})
	f.Add(ForgeInstall(v, 9, []byte("not-a-key"), cert))
	f.Add(ForgeInstall(View{Num: ^uint64(0), Members: v.Members}, 9, nil, crypto.Certificate{}))
	f.Add(encodeJoinMsg([]byte("pub-key-bytes")))
	f.Add(encodeViewAck(2, 4, []byte("view-sig")))
	f.Add(encodeConsDone(v))
	f.Add(encodeConsPhase(7, 2))
	f.Add(encodeConsSync(7))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body := splitKind(data)
		switch kind {
		case kindJoin, kindConsJoin:
			decodeJoin(body)
		case kindViewAck:
			decodeViewAck(body)
		case kindInstall:
			if m, ok := decodeInstall(body); ok && len(m.View.Members) > maxMembers {
				t.Fatalf("accepted view of %d members over cap", len(m.View.Members))
			}
		case kindState:
			decodeState(body)
		case kindStateFull:
			decodeStateFull(body)
		case kindConsPhase:
			decodeConsPhase(body)
		case kindConsPhaseAck:
			decodeConsPhaseAck(body)
		case kindConsSync:
			decodeConsSync(body)
		case kindConsSyncAck:
			decodeConsSyncAck(body)
		case kindConsAdopt, kindConsDone:
			if v, ok := decodeConsDone(body); ok && len(v.Members) > maxMembers {
				t.Fatalf("accepted view of %d members over cap", len(v.Members))
			}
		}
	})
}
