// Package reconfig implements asynchronous membership reconfiguration for
// Astro (paper Appendix A): replicas pass through a sequence of numbered
// views; a joining replica announces itself to the current view, gathers a
// Byzantine quorum of signed view acknowledgments into a view certificate,
// installs the new view, and receives the xlog state from a member.
// No consensus is involved.
//
// For the paper's Figure 8 comparison, the package also implements a
// consensus-style join modeled on BFT-SMaRt's View Manager: the join
// request is totally ordered through three leader-driven phases, after
// which the leader re-establishes sessions with every member sequentially
// before admitting the joiner — the serialization that makes reconfigura-
// tion an order of magnitude slower in the baseline.
package reconfig

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// View is a numbered membership set.
type View struct {
	Num     uint64
	Members []types.ReplicaID
}

// WithJoiner returns the successor view including the joiner, members
// sorted canonically.
func (v View) WithJoiner(j types.ReplicaID) View {
	members := make([]types.ReplicaID, 0, len(v.Members)+1)
	seen := false
	for _, m := range v.Members {
		if m == j {
			seen = true
		}
		members = append(members, m)
	}
	if !seen {
		members = append(members, j)
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	return View{Num: v.Num + 1, Members: members}
}

// Digest returns the signing digest of the view.
func (v View) Digest() types.Digest {
	w := wire.NewWriter(16 + 4*len(v.Members))
	w.U8(0x44) // domain: view
	w.U64(v.Num)
	w.U32(uint32(len(v.Members)))
	for _, m := range v.Members {
		w.U32(uint32(m))
	}
	return types.HashBytes(w.Bytes())
}

// Contains reports membership.
func (v View) Contains(r types.ReplicaID) bool {
	for _, m := range v.Members {
		if m == r {
			return true
		}
	}
	return false
}

// StateProvider exports the xlog state for transfer to joining replicas.
type StateProvider interface {
	StateSnapshot() map[types.ClientID][]types.Payment
}

// StaticState is a fixed-snapshot StateProvider, used when reconfiguring
// quiescent systems and in tests.
type StaticState map[types.ClientID][]types.Payment

// StateSnapshot implements StateProvider.
func (s StaticState) StateSnapshot() map[types.ClientID][]types.Payment { return s }

// FullStateProvider exports the complete durable-state snapshot (the same
// opaque encoding internal/core writes to disk) for transfer to a replica
// recovering from a crash. A recovering replica is a joiner with a prefix:
// it replays its own snapshot+WAL, then fetches a peer's full snapshot to
// catch up past its log's horizon.
type FullStateProvider interface {
	FullSnapshot() []byte
}

// viewF returns the fault threshold to use for a view: the explicit
// override if positive, else derived from the view size (n >= 3f+1).
func viewF(override int, v View) int {
	if override > 0 {
		return override
	}
	return types.MaxFaults(len(v.Members))
}

// Config assembles a member-side reconfiguration manager.
type Config struct {
	Self     types.ReplicaID
	Mux      *transport.Mux
	Keys     *crypto.KeyPair
	Registry *crypto.Registry
	// F overrides the fault threshold of the current view; 0 derives it
	// from the view size, so thresholds grow as the system grows.
	F int
	// InitialView is the view this member starts in.
	InitialView View
	// State provides the snapshot sent to joiners; nil sends empty state.
	State StateProvider
	// Full provides the complete durable-state snapshot served to
	// recovering replicas (kindStateReq); nil disables the reply.
	Full FullStateProvider
}

// Manager is the member-side protocol handler for both join variants.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	view    View
	paused  bool
	pending map[types.ReplicaID]*consJoin // consensus-variant joins (leader only)
}

type consJoin struct {
	joiner    types.ReplicaID
	joinerPub []byte
	phase     int
	phaseAcks map[types.ReplicaID]struct{}
	syncQueue []types.ReplicaID
}

// NewManager registers the manager on the mux's reconfiguration channel.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg,
		view:    cfg.InitialView,
		pending: make(map[types.ReplicaID]*consJoin),
	}
	cfg.Mux.Register(transport.ChanReconfig, m.onMessage)
	return m
}

// View returns the member's current view.
func (m *Manager) View() View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return View{Num: m.view.Num, Members: append([]types.ReplicaID(nil), m.view.Members...)}
}

// Paused reports whether payment processing is suspended for a view
// installation (exposed so the payment layer can hold new submissions).
func (m *Manager) Paused() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.paused
}

func (m *Manager) onMessage(from transport.NodeID, payload []byte) {
	kind, body := splitKind(payload)
	switch kind {
	case kindJoin:
		m.onJoin(types.ReplicaID(from), body)
	case kindInstall:
		m.onInstall(body)
	case kindStateReq:
		m.onStateReq(types.ReplicaID(from))
	case kindConsJoin:
		m.onConsJoin(types.ReplicaID(from), body)
	case kindConsPhase:
		m.onConsPhase(types.ReplicaID(from), body)
	case kindConsPhaseAck:
		m.onConsPhaseAck(types.ReplicaID(from), body)
	case kindConsSync:
		m.onConsSync(types.ReplicaID(from), body)
	case kindConsSyncAck:
		m.onConsSyncAck(types.ReplicaID(from), body)
	case kindConsAdopt:
		m.onConsAdopt(body)
	}
}

// onConsAdopt adopts the leader-announced view (consensus variant; the
// ordering phases already established agreement on it).
func (m *Manager) onConsAdopt(body []byte) {
	r := wire.NewReader(body)
	v, ok := decodeView(r)
	if !ok {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if v.Num > m.view.Num {
		m.view = v
	}
}

// ---- Astro (consensusless) join, member side ----

// onJoin acknowledges a join announcement with a signature over the
// successor view.
func (m *Manager) onJoin(joiner types.ReplicaID, body []byte) {
	_, ok := decodeJoin(body)
	if !ok {
		return
	}
	m.mu.Lock()
	next := m.view.WithJoiner(joiner)
	m.mu.Unlock()

	sig, err := m.cfg.Keys.Sign(next.Digest())
	if err != nil {
		return
	}
	_ = m.cfg.Mux.Send(transport.ReplicaNode(joiner), transport.ChanReconfig,
		encodeViewAck(m.cfg.Self, next.Num, sig))
}

// onInstall verifies the view certificate, installs the view, registers
// the joiner's key, and (as the lowest-ID member of the previous view)
// ships the state snapshot.
func (m *Manager) onInstall(body []byte) {
	inst, ok := decodeInstall(body)
	if !ok {
		return
	}
	m.mu.Lock()
	// The certificate is signed by members of the predecessor view; its
	// quorum is derived from our current view.
	threshold := 2*viewF(m.cfg.F, m.view) + 1
	m.mu.Unlock()
	if err := crypto.VerifyCertificate(m.cfg.Registry, inst.Cert, inst.View.Digest(), threshold, nil); err != nil {
		return
	}

	m.mu.Lock()
	if inst.View.Num <= m.view.Num {
		m.mu.Unlock()
		return // stale
	}
	// Pause, install, resume: installed views form a sequence.
	m.paused = true
	prev := m.view
	m.view = inst.View
	m.paused = false
	m.mu.Unlock()

	_ = m.cfg.Registry.AddSerialized(inst.Joiner, inst.JoinerPub)

	// The lowest-ID member of the previous view performs state transfer.
	if len(prev.Members) > 0 && prev.Members[0] == m.cfg.Self {
		m.sendState(inst.Joiner)
	}
}

// onStateReq serves a recovering replica's full-snapshot request. Unlike
// the lowest-ID-member rule of state transfer on join, every member
// answers: the requester takes the first response and merges it against
// its replayed prefix, so redundancy only helps.
func (m *Manager) onStateReq(to types.ReplicaID) {
	if m.cfg.Full == nil {
		return
	}
	snap := m.cfg.Full.FullSnapshot()
	if snap == nil {
		return
	}
	_ = m.cfg.Mux.Send(transport.ReplicaNode(to), transport.ChanReconfig, encodeStateFull(snap))
}

func (m *Manager) sendState(to types.ReplicaID) {
	var snap map[types.ClientID][]types.Payment
	if m.cfg.State != nil {
		snap = m.cfg.State.StateSnapshot()
	}
	_ = m.cfg.Mux.Send(transport.ReplicaNode(to), transport.ChanReconfig, encodeState(snap))
}

// ---- consensus-style join (BFT-SMaRt View Manager model), member side ----

// onConsJoin runs at the leader (lowest-ID member): start the three
// ordering phases for the special reconfiguration request.
func (m *Manager) onConsJoin(joiner types.ReplicaID, body []byte) {
	jn, ok := decodeJoin(body)
	if !ok {
		return
	}
	m.mu.Lock()
	if len(m.view.Members) == 0 || m.view.Members[0] != m.cfg.Self {
		m.mu.Unlock()
		return // not the leader
	}
	if _, dup := m.pending[joiner]; dup {
		m.mu.Unlock()
		return
	}
	cj := &consJoin{joiner: joiner, joinerPub: jn.Pub, phase: 1, phaseAcks: make(map[types.ReplicaID]struct{})}
	m.pending[joiner] = cj
	members := append([]types.ReplicaID(nil), m.view.Members...)
	m.mu.Unlock()

	msg := encodeConsPhase(joiner, 1)
	for _, r := range members {
		_ = m.cfg.Mux.Send(transport.ReplicaNode(r), transport.ChanReconfig, msg)
	}
}

// onConsPhase acknowledges an ordering phase back to the leader.
func (m *Manager) onConsPhase(leader types.ReplicaID, body []byte) {
	joiner, phase, ok := decodeConsPhase(body)
	if !ok {
		return
	}
	_ = m.cfg.Mux.Send(transport.ReplicaNode(leader), transport.ChanReconfig,
		encodeConsPhaseAck(joiner, phase))
}

// onConsPhaseAck advances the leader's phase machine: quorum per phase,
// three phases, then the sequential per-member synchronization.
func (m *Manager) onConsPhaseAck(from types.ReplicaID, body []byte) {
	joiner, phase, ok := decodeConsPhaseAck(body)
	if !ok {
		return
	}
	m.mu.Lock()
	cj := m.pending[joiner]
	if cj == nil || cj.phase != phase {
		m.mu.Unlock()
		return
	}
	cj.phaseAcks[from] = struct{}{}
	if len(cj.phaseAcks) < 2*viewF(m.cfg.F, m.view)+1 {
		m.mu.Unlock()
		return
	}
	if cj.phase < 3 {
		cj.phase++
		cj.phaseAcks = make(map[types.ReplicaID]struct{})
		members := append([]types.ReplicaID(nil), m.view.Members...)
		phaseMsg := encodeConsPhase(joiner, cj.phase)
		m.mu.Unlock()
		for _, r := range members {
			_ = m.cfg.Mux.Send(transport.ReplicaNode(r), transport.ChanReconfig, phaseMsg)
		}
		return
	}
	// Ordered: begin sequential session re-establishment with every
	// member — the View Manager behaviour that dominates join latency.
	cj.phase = 4
	cj.syncQueue = append([]types.ReplicaID(nil), m.view.Members...)
	next := cj.syncQueue[0]
	m.mu.Unlock()
	_ = m.cfg.Mux.Send(transport.ReplicaNode(next), transport.ChanReconfig, encodeConsSync(joiner))
}

// onConsSync acknowledges a session re-establishment probe.
func (m *Manager) onConsSync(leader types.ReplicaID, body []byte) {
	joiner, ok := decodeConsSync(body)
	if !ok {
		return
	}
	_ = m.cfg.Mux.Send(transport.ReplicaNode(leader), transport.ChanReconfig, encodeConsSyncAck(joiner))
}

// onConsSyncAck advances the sequential sync; when the queue drains, admit
// the joiner: install the view everywhere, transfer state, notify.
func (m *Manager) onConsSyncAck(from types.ReplicaID, body []byte) {
	joiner, ok := decodeConsSyncAck(body)
	if !ok {
		return
	}
	m.mu.Lock()
	cj := m.pending[joiner]
	if cj == nil || cj.phase != 4 || len(cj.syncQueue) == 0 || cj.syncQueue[0] != from {
		m.mu.Unlock()
		return
	}
	cj.syncQueue = cj.syncQueue[1:]
	if len(cj.syncQueue) > 0 {
		next := cj.syncQueue[0]
		m.mu.Unlock()
		_ = m.cfg.Mux.Send(transport.ReplicaNode(next), transport.ChanReconfig, encodeConsSync(joiner))
		return
	}
	delete(m.pending, joiner)
	next := m.view.WithJoiner(joiner)
	m.view = next
	members := append([]types.ReplicaID(nil), next.Members...)
	m.mu.Unlock()

	_ = m.cfg.Registry.AddSerialized(joiner, cj.joinerPub)
	// Tell every member to adopt the new view (piggybacked as an
	// unauthenticated install for the model; the ordering phases already
	// established agreement).
	ann := encodeConsAdopt(next)
	for _, r := range members {
		if r != joiner {
			_ = m.cfg.Mux.Send(transport.ReplicaNode(r), transport.ChanReconfig, ann)
		}
	}
	m.sendState(joiner)
	_ = m.cfg.Mux.Send(transport.ReplicaNode(joiner), transport.ChanReconfig, encodeConsDone(next))
}

// Errors from the join protocols.
var (
	ErrJoinTimeout = errors.New("reconfig: join timed out")
)

// JoinConfig configures a joining replica.
type JoinConfig struct {
	Self     types.ReplicaID
	Mux      *transport.Mux
	Keys     *crypto.KeyPair
	Registry *crypto.Registry
	// F overrides the fault threshold of the view being joined; 0
	// derives it from the view size.
	F int
	// CurrentView is the view the joiner announces itself to.
	CurrentView View
	// Timeout bounds the whole protocol. Default 30s.
	Timeout time.Duration
}

// JoinResult reports the outcome of a join.
type JoinResult struct {
	View    View
	State   map[types.ClientID][]types.Payment
	Latency time.Duration
}

// Join runs the consensusless join protocol from a fresh replica:
// announce, gather 2f+1 view acks, install, receive state. The returned
// latency is the paper's Figure 8 metric — announcement to readiness.
func Join(cfg JoinConfig) (*JoinResult, error) {
	return runJoin(cfg, false)
}

// ConsensusJoin runs the consensus-style join against the same members,
// for the Figure 8 baseline.
func ConsensusJoin(cfg JoinConfig) (*JoinResult, error) {
	return runJoin(cfg, true)
}

func runJoin(cfg JoinConfig, consensus bool) (*JoinResult, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	next := cfg.CurrentView.WithJoiner(cfg.Self)
	digest := next.Digest()

	type ack struct {
		from types.ReplicaID
		sig  []byte
	}
	acks := make(chan ack, len(cfg.CurrentView.Members)+8)
	stateCh := make(chan map[types.ClientID][]types.Payment, 1)
	doneCh := make(chan View, 1)

	cfg.Mux.Register(transport.ChanReconfig, func(from transport.NodeID, payload []byte) {
		kind, body := splitKind(payload)
		switch kind {
		case kindViewAck:
			id, num, sig, ok := decodeViewAck(body)
			if ok && num == next.Num {
				acks <- ack{from: id, sig: sig}
			}
		case kindState:
			snap, ok := decodeState(body)
			if ok {
				select {
				case stateCh <- snap:
				default:
				}
			}
		case kindConsDone:
			v, ok := decodeConsDone(body)
			if ok {
				select {
				case doneCh <- v:
				default:
				}
			}
		}
	})

	start := time.Now()
	deadline := time.After(cfg.Timeout)
	pub := cfg.Keys.PublicBytes()

	if consensus {
		// Submit the special request to the leader and wait for
		// admission plus state transfer.
		leader := cfg.CurrentView.Members[0]
		if err := cfg.Mux.Send(transport.ReplicaNode(leader), transport.ChanReconfig, encodeConsJoinMsg(pub)); err != nil {
			return nil, fmt.Errorf("reconfig: submit join: %w", err)
		}
		var v View
		select {
		case v = <-doneCh:
		case <-deadline:
			return nil, ErrJoinTimeout
		}
		var snap map[types.ClientID][]types.Payment
		select {
		case snap = <-stateCh:
		case <-deadline:
			return nil, ErrJoinTimeout
		}
		return &JoinResult{View: v, State: snap, Latency: time.Since(start)}, nil
	}

	// Announce to every member of the current view.
	joinMsg := encodeJoinMsg(pub)
	for _, r := range cfg.CurrentView.Members {
		_ = cfg.Mux.Send(transport.ReplicaNode(r), transport.ChanReconfig, joinMsg)
	}

	// Gather a Byzantine quorum of view acknowledgments.
	var cert crypto.Certificate
	need := 2*viewF(cfg.F, cfg.CurrentView) + 1
	for cert.Len() < need {
		select {
		case a := <-acks:
			if !cfg.CurrentView.Contains(a.from) {
				continue
			}
			if !cfg.Registry.VerifySig(a.from, digest, a.sig) {
				continue
			}
			cert.Add(crypto.PartialSig{Replica: a.from, Sig: a.sig})
		case <-deadline:
			return nil, ErrJoinTimeout
		}
	}

	// Install the certified view at every member.
	inst := encodeInstall(installMsg{View: next, Joiner: cfg.Self, JoinerPub: pub, Cert: cert})
	for _, r := range cfg.CurrentView.Members {
		_ = cfg.Mux.Send(transport.ReplicaNode(r), transport.ChanReconfig, inst)
	}

	// Receive the state snapshot.
	select {
	case snap := <-stateCh:
		return &JoinResult{View: next, State: snap, Latency: time.Since(start)}, nil
	case <-deadline:
		return nil, ErrJoinTimeout
	}
}

// FetchConfig configures a full-snapshot fetch by a recovering replica.
type FetchConfig struct {
	Mux *transport.Mux
	// Peers are the members asked for their full snapshot; the first
	// response wins.
	Peers []types.ReplicaID
	// Timeout bounds the fetch. Default 30s.
	Timeout time.Duration
}

// ErrFetchTimeout is returned when no peer answers a full-snapshot fetch.
var ErrFetchTimeout = errors.New("reconfig: state fetch timed out")

// FetchState asks peers for their full durable-state snapshot and returns
// the first response — the catch-up half of crash recovery. Like runJoin
// it temporarily owns the reconfiguration channel; call it before
// NewManager re-registers the member-side handler.
func FetchState(cfg FetchConfig) ([]byte, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	snapCh := make(chan []byte, 1)
	cfg.Mux.Register(transport.ChanReconfig, func(_ transport.NodeID, payload []byte) {
		kind, body := splitKind(payload)
		if kind != kindStateFull {
			return
		}
		snap, ok := decodeStateFull(body)
		if !ok {
			return
		}
		buf := make([]byte, len(snap))
		copy(buf, snap)
		select {
		case snapCh <- buf:
		default:
		}
	})
	req := encodeStateReq()
	for _, p := range cfg.Peers {
		_ = cfg.Mux.Send(transport.ReplicaNode(p), transport.ChanReconfig, req)
	}
	select {
	case snap := <-snapCh:
		return snap, nil
	case <-time.After(cfg.Timeout):
		return nil, ErrFetchTimeout
	}
}
