package reconfig

import (
	"slices"
	"testing"

	"astro/internal/shard"
	"astro/internal/types"
)

func TestShardDirectoryPrecedence(t *testing.T) {
	top := shard.Topology{NumShards: 2, PerShard: 4}
	d := NewShardDirectory(top.Directory())

	// Before any install, the static base answers.
	if got := d.Members(1); !slices.Equal(got, top.Replicas(1)) {
		t.Fatalf("base members = %v, want %v", got, top.Replicas(1))
	}

	// An installed view overrides the base for its shard only.
	v2 := View{Num: 2, Members: []types.ReplicaID{4, 5, 6, 7, 9}}
	d.Install(1, v2)
	if got := d.Members(1); !slices.Equal(got, v2.Members) {
		t.Fatalf("installed members = %v, want %v", got, v2.Members)
	}
	if got := d.Members(0); !slices.Equal(got, top.Replicas(0)) {
		t.Fatalf("shard 0 disturbed by shard 1 install: %v", got)
	}

	// Stale (lower- or equal-numbered) views from laggard peers lose.
	d.Install(1, View{Num: 1, Members: []types.ReplicaID{4, 5, 6, 7}})
	d.Install(1, View{Num: 2, Members: []types.ReplicaID{99}})
	if got := d.Members(1); !slices.Equal(got, v2.Members) {
		t.Fatalf("stale install won: %v", got)
	}

	// Newer views keep winning regardless of feed order.
	v3 := View{Num: 3, Members: []types.ReplicaID{5, 6, 7, 9}}
	d.Install(1, v3)
	if got := d.Members(1); !slices.Equal(got, v3.Members) {
		t.Fatalf("newest install lost: %v", got)
	}

	// Returned slices are copies: mutating one must not corrupt the
	// directory the credit-rescan fan-out iterates.
	got := d.Members(1)
	got[0] = 1000
	if again := d.Members(1); !slices.Equal(again, v3.Members) {
		t.Fatalf("Members leaked internal slice: %v", again)
	}
}

func TestShardDirectoryNilBase(t *testing.T) {
	d := NewShardDirectory(nil)
	if got := d.Members(0); got != nil {
		t.Fatalf("nil base answered: %v", got)
	}
	v := View{Num: 1, Members: []types.ReplicaID{0, 1, 2, 3}}
	d.Install(0, v)
	if got := d.Members(0); !slices.Equal(got, v.Members) {
		t.Fatalf("install over nil base = %v, want %v", got, v.Members)
	}
}
