package reconfig

import (
	"sync"

	"astro/internal/shard"
	"astro/internal/types"
)

// ShardDirectory is a mutable shard-membership directory: it starts from
// a static base (shard.Topology.Directory) and overlays per-shard views
// as reconfiguration installs them, always keeping the highest-numbered
// view per shard. A restarted representative consults it — via Members,
// wired into core.Config.ShardMembers — to enumerate another shard's
// *current* signers when re-requesting CREDIT signatures for cross-shard
// spenders, the one lookup the static topology alone cannot answer once
// a foreign shard has reconfigured.
type ShardDirectory struct {
	mu    sync.RWMutex
	base  shard.Directory
	views map[types.ShardID]View
}

// NewShardDirectory builds a directory over the given static base (nil
// means no static knowledge: only installed views answer).
func NewShardDirectory(base shard.Directory) *ShardDirectory {
	return &ShardDirectory{base: base, views: make(map[types.ShardID]View)}
}

// Install records a shard's view; stale (lower-numbered) views are
// ignored, so feeds from multiple peers converge on the newest.
func (d *ShardDirectory) Install(s types.ShardID, v View) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cur, ok := d.views[s]; ok && cur.Num >= v.Num {
		return
	}
	d.views[s] = v
}

// Members returns the shard's current membership: the newest installed
// view if any, else the static base, else nil. The slice is a copy.
func (d *ShardDirectory) Members(s types.ShardID) []types.ReplicaID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v, ok := d.views[s]; ok {
		return append([]types.ReplicaID(nil), v.Members...)
	}
	if d.base != nil {
		return append([]types.ReplicaID(nil), d.base(s)...)
	}
	return nil
}
