package reconfig

// Adversarial codec helpers: forged reconfiguration frames a Byzantine
// replica behavior (internal/sim) injects to attack view agreement. All
// of them must be rejected by honest Managers — stale view numbers fail
// the monotonicity check, forged installs fail certificate verification —
// and they double as hostile fuzz seeds for the reconfig decoders.

import (
	"astro/internal/crypto"
	"astro/internal/types"
)

// ForgeStaleAdopt builds a consensus-variant ADOPT announcing view v —
// typically a view older than (or equal to) the receivers' current view,
// which onConsAdopt must ignore.
func ForgeStaleAdopt(v View) []byte {
	return encodeConsAdopt(v)
}

// ForgeInstall builds an INSTALL for view v admitting joiner with the
// given (possibly garbage) public key and certificate. With a forged or
// empty certificate, onInstall's 2f+1 verification over the view digest
// must reject it regardless of the view number.
func ForgeInstall(v View, joiner types.ReplicaID, joinerPub []byte, cert crypto.Certificate) []byte {
	return encodeInstall(installMsg{View: v, Joiner: joiner, JoinerPub: joinerPub, Cert: cert})
}
