package reconfig

import (
	"slices"

	"astro/internal/crypto"
	"astro/internal/types"
	"astro/internal/wire"
)

// Message kinds on transport.ChanReconfig.
const (
	kindJoin      byte = 1 // joiner -> members: announce (consensusless)
	kindViewAck   byte = 2 // member -> joiner: signed successor view
	kindInstall   byte = 3 // joiner -> members: certified view
	kindState     byte = 4 // member -> joiner: xlog snapshot
	kindStateReq  byte = 5 // recovering replica -> member: request full snapshot
	kindStateFull byte = 6 // member -> recovering replica: opaque full snapshot

	kindConsJoin     byte = 10 // joiner -> leader
	kindConsPhase    byte = 11 // leader -> members (3 ordering phases)
	kindConsPhaseAck byte = 12 // member -> leader
	kindConsSync     byte = 13 // leader -> member (sequential handshake)
	kindConsSyncAck  byte = 14 // member -> leader
	kindConsAdopt    byte = 15 // leader -> members: adopt new view
	kindConsDone     byte = 16 // leader -> joiner: admitted
)

const (
	maxMembers      = 1 << 12
	maxStateClients = 1 << 20
	maxStateLog     = 1 << 20
)

func splitKind(payload []byte) (byte, []byte) {
	if len(payload) == 0 {
		return 0, nil
	}
	return payload[0], payload[1:]
}

type joinMsg struct {
	Pub []byte
}

func encodeJoinMsg(pub []byte) []byte {
	w := wire.NewWriter(8 + len(pub))
	w.U8(kindJoin)
	w.Chunk(pub)
	return w.Bytes()
}

func encodeConsJoinMsg(pub []byte) []byte {
	w := wire.NewWriter(8 + len(pub))
	w.U8(kindConsJoin)
	w.Chunk(pub)
	return w.Bytes()
}

func decodeJoin(body []byte) (joinMsg, bool) {
	r := wire.NewReader(body)
	m := joinMsg{Pub: r.Chunk()}
	return m, r.Finish() == nil
}

func encodeViewAck(self types.ReplicaID, viewNum uint64, sig []byte) []byte {
	w := wire.NewWriter(24 + len(sig))
	w.U8(kindViewAck)
	w.U32(uint32(self))
	w.U64(viewNum)
	w.Chunk(sig)
	return w.Bytes()
}

func decodeViewAck(body []byte) (types.ReplicaID, uint64, []byte, bool) {
	r := wire.NewReader(body)
	id := types.ReplicaID(r.U32())
	num := r.U64()
	sig := r.Chunk()
	return id, num, sig, r.Finish() == nil
}

func encodeView(w *wire.Writer, v View) {
	w.U64(v.Num)
	w.U32(uint32(len(v.Members)))
	for _, m := range v.Members {
		w.U32(uint32(m))
	}
}

func decodeView(r *wire.Reader) (View, bool) {
	var v View
	v.Num = r.U64()
	n := r.U32()
	if r.Err() != nil || n > maxMembers {
		return v, false
	}
	v.Members = make([]types.ReplicaID, n)
	for i := range v.Members {
		v.Members[i] = types.ReplicaID(r.U32())
	}
	return v, r.Err() == nil
}

type installMsg struct {
	View      View
	Joiner    types.ReplicaID
	JoinerPub []byte
	Cert      crypto.Certificate
}

func encodeInstall(m installMsg) []byte {
	w := wire.NewWriter(128)
	w.U8(kindInstall)
	encodeView(w, m.View)
	w.U32(uint32(m.Joiner))
	w.Chunk(m.JoinerPub)
	crypto.EncodeCertificate(w, m.Cert)
	return w.Bytes()
}

func decodeInstall(body []byte) (installMsg, bool) {
	r := wire.NewReader(body)
	var m installMsg
	var ok bool
	m.View, ok = decodeView(r)
	if !ok {
		return m, false
	}
	m.Joiner = types.ReplicaID(r.U32())
	m.JoinerPub = r.Chunk()
	cert, err := crypto.DecodeCertificate(r)
	if err != nil {
		return m, false
	}
	m.Cert = cert
	return m, r.Finish() == nil
}

// StateBodySize returns the encoded size of a state body, for writer
// pre-sizing.
func StateBodySize(snap map[types.ClientID][]types.Payment) int {
	size := 4
	for _, log := range snap {
		size += 12 + len(log)*types.PaymentWireSize
	}
	return size
}

// AppendStateBody writes the xlog-snapshot body used by the kindState
// transfer message. Exported so the durable-state snapshot (internal/wal
// via internal/core) can embed the identical encoding: one format serves
// both disk and state transfer.
func AppendStateBody(w *wire.Writer, snap map[types.ClientID][]types.Payment) {
	// Sorted clients make the encoding canonical: identical state produces
	// identical bytes, so WAL snapshots are stable across save/load cycles
	// and state transfers are diffable.
	clients := make([]types.ClientID, 0, len(snap))
	for c := range snap {
		clients = append(clients, c)
	}
	slices.Sort(clients)
	w.U32(uint32(len(snap)))
	for _, c := range clients {
		log := snap[c]
		w.U64(uint64(c))
		w.U32(uint32(len(log)))
		for _, p := range log {
			w.AppendFunc(p.AppendBinary)
		}
	}
}

// ReadStateBody consumes a state body written by AppendStateBody.
func ReadStateBody(r *wire.Reader) (map[types.ClientID][]types.Payment, bool) {
	n := r.U32()
	if r.Err() != nil || n > maxStateClients {
		return nil, false
	}
	snap := make(map[types.ClientID][]types.Payment, n)
	for i := uint32(0); i < n; i++ {
		c := types.ClientID(r.U64())
		k := r.U32()
		if r.Err() != nil || k > maxStateLog {
			return nil, false
		}
		log := make([]types.Payment, k)
		for j := range log {
			raw := r.Fixed(types.PaymentWireSize)
			if r.Err() != nil {
				return nil, false
			}
			if err := log[j].UnmarshalBinary(raw); err != nil {
				return nil, false
			}
		}
		snap[c] = log
	}
	return snap, r.Err() == nil
}

func encodeState(snap map[types.ClientID][]types.Payment) []byte {
	w := wire.NewWriter(1 + StateBodySize(snap))
	w.U8(kindState)
	AppendStateBody(w, snap)
	return w.Bytes()
}

func decodeState(body []byte) (map[types.ClientID][]types.Payment, bool) {
	r := wire.NewReader(body)
	snap, ok := ReadStateBody(r)
	return snap, ok && r.Finish() == nil
}

func encodeStateReq() []byte { return []byte{kindStateReq} }

func encodeStateFull(snap []byte) []byte {
	w := wire.NewWriter(5 + len(snap))
	w.U8(kindStateFull)
	w.Chunk(snap)
	return w.Bytes()
}

func decodeStateFull(body []byte) ([]byte, bool) {
	r := wire.NewReader(body)
	snap := r.Chunk()
	return snap, r.Finish() == nil
}

func encodeConsPhase(joiner types.ReplicaID, phase int) []byte {
	w := wire.NewWriter(9)
	w.U8(kindConsPhase)
	w.U32(uint32(joiner))
	w.U8(byte(phase))
	return w.Bytes()
}

func decodeConsPhase(body []byte) (types.ReplicaID, int, bool) {
	r := wire.NewReader(body)
	j := types.ReplicaID(r.U32())
	p := int(r.U8())
	return j, p, r.Finish() == nil
}

func encodeConsPhaseAck(joiner types.ReplicaID, phase int) []byte {
	w := wire.NewWriter(9)
	w.U8(kindConsPhaseAck)
	w.U32(uint32(joiner))
	w.U8(byte(phase))
	return w.Bytes()
}

func decodeConsPhaseAck(body []byte) (types.ReplicaID, int, bool) {
	return decodeConsPhase(body)
}

func encodeConsSync(joiner types.ReplicaID) []byte {
	w := wire.NewWriter(5)
	w.U8(kindConsSync)
	w.U32(uint32(joiner))
	return w.Bytes()
}

func decodeConsSync(body []byte) (types.ReplicaID, bool) {
	r := wire.NewReader(body)
	j := types.ReplicaID(r.U32())
	return j, r.Finish() == nil
}

func encodeConsSyncAck(joiner types.ReplicaID) []byte {
	w := wire.NewWriter(5)
	w.U8(kindConsSyncAck)
	w.U32(uint32(joiner))
	return w.Bytes()
}

func decodeConsSyncAck(body []byte) (types.ReplicaID, bool) {
	return decodeConsSync(body)
}

func encodeConsAdopt(v View) []byte {
	w := wire.NewWriter(32)
	w.U8(kindConsAdopt)
	encodeView(w, v)
	return w.Bytes()
}

func encodeConsDone(v View) []byte {
	w := wire.NewWriter(32)
	w.U8(kindConsDone)
	encodeView(w, v)
	return w.Bytes()
}

func decodeConsDone(body []byte) (View, bool) {
	r := wire.NewReader(body)
	v, ok := decodeView(r)
	return v, ok && r.Finish() == nil
}
