package sim

// The always-on invariant auditor: a sampling loop that repeatedly takes
// consistent per-replica state cuts *while the system runs* and checks
// the paper's safety claims — conservation of money, per-client FIFO,
// no duplicate settlement, and agreement among correct replicas — not
// just at the end of a run. Scenario suites run every Byzantine behavior
// under it; an f-tolerated attack must produce zero violations, an f+1
// break must produce the documented one.
//
// Conservation is checked as a per-replica accounting identity rather
// than a naive cross-replica sum: with no totality (Astro II), the
// beneficiary's representative can hold a dependency credit before the
// spender's own replica settles the withdrawal, so instantaneous
// cross-replica sums legitimately exceed genesis mid-run. What does hold
// at every consistent cut of one replica is
//
//	balance(c) = genesis(c) − Σ xlog(c) amounts + credits(c)
//
// where credits are materialized dependency credits (Astro II, amounts
// resolved from the spenders' settled xlogs) or beneficiary postings in
// local xlogs (Astro I, where settlement transfers atomically). A
// dependency credit whose payment no correct replica has settled — after
// a re-read to absorb sampling races — is a forged credit. The global
// spendable-equals-genesis equality is a separate quiescent check.

import (
	"fmt"
	"sync"
	"time"

	"astro/internal/core"
	"astro/internal/types"
)

// AuditorConfig configures an invariant auditor over a cluster.
type AuditorConfig struct {
	// Clients are the accounts under audit (used for the quiescent
	// conservation check; per-replica checks cover every exported
	// account regardless).
	Clients []types.ClientID
	// Genesis is the initial balance per client (AstroOpts.Genesis).
	Genesis types.Amount
	// Faulty replicas are excluded from agreement and conservation
	// checks — the paper's claims quantify over correct replicas only.
	Faulty map[types.ReplicaID]bool
	// Interval between sampling passes. Default 25ms.
	Interval time.Duration
	// MaxViolations caps the recorded violation list. Default 64.
	MaxViolations int
}

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string // "fifo" | "conservation" | "duplicate-settle" | "forged-credit" | "agreement" | "negative-balance"
	Replica   types.ReplicaID
	Client    types.ClientID
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] replica %d client %d: %s", v.Invariant, v.Replica, v.Client, v.Detail)
}

// AuditReport summarizes an auditor's run.
type AuditReport struct {
	Samples    int
	Violations []Violation
	Truncated  bool // violation list hit MaxViolations
}

// Auditor samples a running AstroCluster.
type Auditor struct {
	c   *AstroCluster
	cfg AuditorConfig

	mu         sync.Mutex
	samples    int
	violations []Violation
	truncated  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewAuditor builds an auditor over the cluster. Start begins sampling.
func (c *AstroCluster) NewAuditor(cfg AuditorConfig) *Auditor {
	if cfg.Interval <= 0 {
		cfg.Interval = 25 * time.Millisecond
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 64
	}
	return &Auditor{
		c:    c,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the sampling loop.
func (a *Auditor) Start() {
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-a.stop:
				return
			case <-t.C:
				a.Sample()
			}
		}
	}()
}

// Stop halts sampling, runs one final pass, and returns the report.
func (a *Auditor) Stop() AuditReport {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
	a.Sample()
	return a.Report()
}

// Report snapshots the violations recorded so far.
func (a *Auditor) Report() AuditReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return AuditReport{Samples: a.samples, Violations: out, Truncated: a.truncated}
}

func (a *Auditor) record(v Violation) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.violations) >= a.cfg.MaxViolations {
		a.truncated = true
		return
	}
	a.violations = append(a.violations, v)
}

// Sample runs one audit pass over every live correct replica. Exported
// so scenario code can force a pass at a known point (e.g. right after
// quiescence).
func (a *Auditor) Sample() {
	exports := a.exportCorrect()
	if len(exports) == 0 {
		return
	}
	a.mu.Lock()
	a.samples++
	a.mu.Unlock()

	ck := &exportChecker{version: a.c.version, genesis: a.cfg.Genesis, record: a.record}

	// Index of settled payments across all correct replicas, for
	// resolving dependency-credit amounts and catching forged credits.
	idx := paymentIndex(exports)

	type miss struct {
		rep types.ReplicaID
		acc core.AccountExport
	}
	var misses []miss
	for rep, accounts := range exports {
		for _, acc := range accounts {
			ck.checkFIFO(rep, acc)
			ck.checkNonNegative(rep, acc)
			if ok := ck.checkConservation(rep, acc, accounts, idx); !ok {
				misses = append(misses, miss{rep, acc})
			}
		}
	}
	if len(misses) > 0 {
		// Second chance: a dependency credit can reference a payment
		// settled between our export of the crediting replica and our
		// export of the spender's signers. Re-export and re-index; only
		// a persistent miss is a forged credit.
		reIdx := paymentIndex(a.exportCorrect())
		for k, v := range idx {
			if _, ok := reIdx[k]; !ok {
				reIdx[k] = v
			}
		}
		for _, m := range misses {
			if ok := ck.checkConservation(m.rep, m.acc, exports[m.rep], reIdx); !ok {
				ck.reportMissingDeps(m.rep, m.acc, reIdx)
			}
		}
	}
	ck.checkAgreement(exports)
}

// AuditExports runs the full invariant battery over one set of
// per-replica account exports — the stateless, out-of-process form of
// the auditor used by the TCP harness and the soak runner, where
// snapshots arrive through reconfig state transfer rather than from
// in-process replica handles. The cut is assumed quiescent: unlike the
// sampling auditor there is no second-chance re-export, so a dependency
// credit that resolves to no settled payment anywhere in the snapshot
// set is reported as forged.
func AuditExports(version core.Version, genesis types.Amount, exports map[types.ReplicaID][]core.AccountExport) []Violation {
	var out []Violation
	ck := &exportChecker{version: version, genesis: genesis,
		record: func(v Violation) { out = append(out, v) }}
	idx := paymentIndex(exports)
	for rep, accounts := range exports {
		for _, acc := range accounts {
			ck.checkFIFO(rep, acc)
			ck.checkNonNegative(rep, acc)
			if !ck.checkConservation(rep, acc, accounts, idx) {
				ck.reportMissingDeps(rep, acc, idx)
			}
		}
	}
	ck.checkAgreement(exports)
	return out
}

// exportCorrect takes one consistent cut per live, correct replica.
func (a *Auditor) exportCorrect() map[types.ReplicaID][]core.AccountExport {
	out := make(map[types.ReplicaID][]core.AccountExport)
	for _, id := range a.c.ReplicaIDs() {
		if a.cfg.Faulty[id] || a.c.Crashed(id) {
			continue
		}
		rep := a.c.Replica(id)
		if rep == nil {
			continue
		}
		out[id] = rep.AuditExport()
	}
	return out
}

// paymentIndex maps settled payment IDs to their content, preferring the
// first variant seen; conflicting variants surface through the agreement
// check, not here.
func paymentIndex(exports map[types.ReplicaID][]core.AccountExport) map[types.PaymentID]types.Payment {
	idx := make(map[types.PaymentID]types.Payment)
	for _, accounts := range exports {
		for _, acc := range accounts {
			for _, p := range acc.XLog {
				if _, ok := idx[p.ID()]; !ok {
					idx[p.ID()] = p
				}
			}
		}
	}
	return idx
}

// exportChecker is the stateless core of the audit: every invariant
// check over a set of account exports, parameterized only by the
// protocol version, the genesis balance, and a violation sink. The
// sampling Auditor and the out-of-process AuditExports both drive it.
type exportChecker struct {
	version core.Version
	genesis types.Amount
	record  func(Violation)
}

// checkFIFO: an exclusive log holds exactly the owner's payments with
// sequence numbers 1..len, in order — per-client FIFO and no duplicate
// settlement in one check.
func (a *exportChecker) checkFIFO(rep types.ReplicaID, acc core.AccountExport) {
	for i, p := range acc.XLog {
		if p.Spender != acc.Client {
			a.record(Violation{
				Invariant: "fifo", Replica: rep, Client: acc.Client,
				Detail: fmt.Sprintf("xlog[%d] spender %d in log of %d", i, p.Spender, acc.Client),
			})
			return
		}
		if p.Seq != types.Seq(i+1) {
			inv := "fifo"
			if i > 0 && p.Seq == acc.XLog[i-1].Seq {
				inv = "duplicate-settle"
			}
			a.record(Violation{
				Invariant: inv, Replica: rep, Client: acc.Client,
				Detail: fmt.Sprintf("xlog[%d] seq %d, want %d", i, p.Seq, i+1),
			})
			return
		}
	}
	// Duplicate dependency use: UsedDeps is sorted; equal neighbors mean
	// one payment credited twice.
	for i := 1; i < len(acc.UsedDeps); i++ {
		if acc.UsedDeps[i] == acc.UsedDeps[i-1] {
			a.record(Violation{
				Invariant: "duplicate-settle", Replica: rep, Client: acc.Client,
				Detail: fmt.Sprintf("dependency %v credited twice", acc.UsedDeps[i]),
			})
			return
		}
	}
}

func (a *exportChecker) checkNonNegative(rep types.ReplicaID, acc core.AccountExport) {
	if acc.Balance < 0 {
		a.record(Violation{
			Invariant: "negative-balance", Replica: rep, Client: acc.Client,
			Detail: fmt.Sprintf("balance %d", acc.Balance),
		})
	}
}

// checkConservation verifies the per-replica accounting identity for one
// account. Returns false (without recording) when a dependency credit's
// amount cannot be resolved from idx — the caller retries with a fresh
// index before declaring a forged credit.
func (a *exportChecker) checkConservation(rep types.ReplicaID, acc core.AccountExport, all []core.AccountExport, idx map[types.PaymentID]types.Payment) bool {
	var out types.Amount
	for _, p := range acc.XLog {
		out += p.Amount
	}
	var in types.Amount
	if a.version == core.AstroII {
		for _, id := range acc.UsedDeps {
			p, ok := idx[id]
			if !ok {
				return false
			}
			in += p.Amount
		}
	} else {
		// Astro I settles by atomic local transfer: credits are the
		// payments to this account in the same replica's xlogs.
		for _, other := range all {
			for _, p := range other.XLog {
				if p.Beneficiary == acc.Client {
					in += p.Amount
				}
			}
		}
	}
	want := a.genesis - out + in
	if acc.Balance != want {
		a.record(Violation{
			Invariant: "conservation", Replica: rep, Client: acc.Client,
			Detail: fmt.Sprintf("balance %d, identity gives %d (genesis %d − settled %d + credits %d)",
				acc.Balance, want, a.genesis, out, in),
		})
	}
	return true
}

// reportMissingDeps records forged-credit violations for every
// dependency of acc that no correct replica has settled.
func (a *exportChecker) reportMissingDeps(rep types.ReplicaID, acc core.AccountExport, idx map[types.PaymentID]types.Payment) {
	for _, id := range acc.UsedDeps {
		if _, ok := idx[id]; !ok {
			a.record(Violation{
				Invariant: "forged-credit", Replica: rep, Client: acc.Client,
				Detail: fmt.Sprintf("credit for %v but no correct replica settled it", id),
			})
		}
	}
}

// checkAgreement: correct replicas' xlogs for one client must be
// prefix-consistent — same payment content at every shared index. A
// lagging replica is fine; a diverging one is the Byzantine break.
func (a *exportChecker) checkAgreement(exports map[types.ReplicaID][]core.AccountExport) {
	type ref struct {
		rep  types.ReplicaID
		xlog []types.Payment
	}
	longest := make(map[types.ClientID]ref)
	for rep, accounts := range exports {
		for _, acc := range accounts {
			if cur, ok := longest[acc.Client]; !ok || len(acc.XLog) > len(cur.xlog) {
				longest[acc.Client] = ref{rep, acc.XLog}
			}
		}
	}
	for rep, accounts := range exports {
		for _, acc := range accounts {
			r := longest[acc.Client]
			if r.rep == rep {
				continue
			}
			for i, p := range acc.XLog {
				if i >= len(r.xlog) {
					break
				}
				if p != r.xlog[i] {
					a.record(Violation{
						Invariant: "agreement", Replica: rep, Client: acc.Client,
						Detail: fmt.Sprintf("xlog[%d] = %v, replica %d has %v", i, p, r.rep, r.xlog[i]),
					})
					break
				}
			}
		}
	}
}

// CheckQuiescent asserts the global conservation equality once traffic
// has stopped and credits have drained: every client's spendable balance
// at its own representative sums to total genesis. Returns nil on
// success.
func (a *Auditor) CheckQuiescent() error {
	var total types.Amount
	for _, cl := range a.cfg.Clients {
		rep := a.c.Replica(a.c.RepOf(cl))
		if rep == nil {
			continue
		}
		total += rep.Balance(cl)
	}
	want := types.Amount(len(a.cfg.Clients)) * a.cfg.Genesis
	if total != want {
		return fmt.Errorf("quiescent conservation: spendable %d, genesis %d", total, want)
	}
	return nil
}
