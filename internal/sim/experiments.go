package sim

import (
	"fmt"
	"os"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/metrics"
	"astro/internal/reconfig"
	"astro/internal/shard"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/workload"
)

// System identifies one of the three systems under evaluation.
type System string

// The three systems the paper compares.
const (
	SystemAstroI    System = "astro1"
	SystemAstroII   System = "astro2"
	SystemConsensus System = "consensus"
)

// AllSystems lists the systems in the paper's presentation order.
var AllSystems = []System{SystemAstroI, SystemAstroII, SystemConsensus}

// Label returns the paper's display name.
func (s System) Label() string {
	switch s {
	case SystemAstroI:
		return "Broadcast echo-based system (Astro I)"
	case SystemAstroII:
		return "Broadcast signature-based system (Astro II)"
	case SystemConsensus:
		return "Consensus-based system (BFT-SMaRt-like)"
	default:
		return string(s)
	}
}

// Measurement is one throughput/latency observation of one system.
type Measurement struct {
	System     System
	N          int
	Clients    int
	Throughput float64 // confirmed payments per second
	AvgLatency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	Errors     uint64
}

// measureOpts parameterizes one measurement run.
type measureOpts struct {
	system     System
	n          int
	clients    int
	duration   time.Duration
	batchSize  int
	batchDelay time.Duration
	latency    memnet.LatencyModel
	realCrypto bool
	seed       uint64
}

// measure runs a uniform closed-loop workload against a fresh deployment
// of the requested system and returns the observation.
func measure(o measureOpts) (Measurement, error) {
	if o.batchSize == 0 {
		o.batchSize = 256
	}
	if o.batchDelay == 0 {
		o.batchDelay = 5 * time.Millisecond
	}
	if o.latency == nil {
		o.latency = memnet.EuropeWAN()
	}
	hist := &metrics.Histogram{}

	var clients []workload.PaymentClient
	var closeFn func()
	switch o.system {
	case SystemAstroI, SystemAstroII:
		version := core.AstroI
		if o.system == SystemAstroII {
			version = core.AstroII
		}
		cl, err := NewAstroCluster(AstroOpts{
			Version:    version,
			Topology:   shard.Topology{NumShards: 1, PerShard: o.n},
			Latency:    o.latency,
			BatchSize:  o.batchSize,
			BatchDelay: o.batchDelay,
			RealCrypto: o.realCrypto,
			Seed:       o.seed,
		})
		if err != nil {
			return Measurement{}, err
		}
		closeFn = cl.Close
		for i := 0; i < o.clients; i++ {
			clients = append(clients, cl.Client(types.ClientID(i+1)))
		}
	case SystemConsensus:
		cl, err := NewConsensusCluster(ConsensusOpts{
			N:          o.n,
			Latency:    o.latency,
			BatchSize:  o.batchSize,
			BatchDelay: o.batchDelay,
			Seed:       o.seed,
		})
		if err != nil {
			return Measurement{}, err
		}
		closeFn = cl.Close
		for i := 0; i < o.clients; i++ {
			clients = append(clients, cl.Client(types.ClientID(i+1)))
		}
	default:
		return Measurement{}, fmt.Errorf("sim: unknown system %q", o.system)
	}
	defer closeFn()

	pool := make([]types.ClientID, o.clients)
	for i := range pool {
		pool[i] = types.ClientID(i + 1)
	}
	res := workload.RunUniform(workload.UniformConfig{
		Clients:       clients,
		Beneficiaries: pool,
		Duration:      o.duration,
		MaxAmount:     100,
		Hist:          hist,
		Seed:          int64(o.seed) + 42,
	})
	return Measurement{
		System:     o.system,
		N:          o.n,
		Clients:    o.clients,
		Throughput: res.Throughput(),
		AvgLatency: hist.Mean(),
		P95Latency: hist.Quantile(0.95),
		P99Latency: hist.Quantile(0.99),
		Errors:     res.Errors,
	}, nil
}

// Fig3Config parameterizes the throughput-vs-system-size experiment
// (paper Figure 3).
type Fig3Config struct {
	// Sizes are the system sizes to sweep (paper: 4..100 step 6).
	Sizes []int
	// Systems to measure; defaults to all three.
	Systems []System
	// Duration per point.
	Duration time.Duration
	// Clients is the closed-loop client count used to approach peak
	// throughput.
	Clients int
	// BatchSize for all systems (paper: 256).
	BatchSize int
	// RealCrypto switches the harness to real ECDSA (see AstroOpts).
	RealCrypto bool
	// Seed for reproducibility.
	Seed uint64
}

// Fig3 measures peak throughput as a function of system size for each
// system (single shard).
func Fig3(cfg Fig3Config) ([]Measurement, error) {
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{4, 10, 22, 46, 70, 100}
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = AllSystems
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	var out []Measurement
	for _, sys := range cfg.Systems {
		for _, n := range cfg.Sizes {
			clients := cfg.Clients
			if clients <= 0 {
				// Saturation needs substantial concurrency at every
				// size (the paper scales client threads per system and
				// size too). The ceiling keeps the closed-loop client
				// fleet itself from dominating the single-core substrate.
				clients = 16 * n
				if clients < 256 {
					clients = 256
				}
				if clients > 1024 {
					clients = 1024
				}
			}
			m, err := measure(measureOpts{
				system: sys, n: n, clients: clients,
				duration: cfg.Duration, batchSize: cfg.BatchSize,
				realCrypto: cfg.RealCrypto,
				seed:       cfg.Seed + uint64(n),
			})
			if err != nil {
				return out, fmt.Errorf("fig3 %s n=%d: %w", sys, n, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig4Config parameterizes the latency/throughput experiment (Figure 4).
type Fig4Config struct {
	// N is the system size (paper: 100).
	N int
	// ClientCounts is the offered-load sweep; each count is one point.
	ClientCounts []int
	// Systems to measure; defaults to all three.
	Systems []System
	// Duration per point.
	Duration time.Duration
	// BatchSize for all systems.
	BatchSize int
	// RealCrypto switches the harness to real ECDSA (see AstroOpts).
	RealCrypto bool
	// Seed for reproducibility.
	Seed uint64
}

// Fig4 sweeps offered load at fixed system size, recording the
// latency/throughput curve of each system.
func Fig4(cfg Fig4Config) ([]Measurement, error) {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if len(cfg.ClientCounts) == 0 {
		cfg.ClientCounts = []int{4, 16, 64, 256}
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = AllSystems
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	var out []Measurement
	for _, sys := range cfg.Systems {
		for _, k := range cfg.ClientCounts {
			m, err := measure(measureOpts{
				system: sys, n: cfg.N, clients: k,
				duration: cfg.Duration, batchSize: cfg.BatchSize,
				realCrypto: cfg.RealCrypto,
				seed:       cfg.Seed + uint64(k),
			})
			if err != nil {
				return out, fmt.Errorf("fig4 %s clients=%d: %w", sys, k, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// FaultKind selects the robustness perturbation.
type FaultKind string

// The two perturbations of §VI-D, plus the durability extension (a
// kill -9 that later restarts the replica from its write-ahead log) and
// the actively malicious behaviors (internal/sim/byzantine.go) — each
// armable mid-run on any Astro replica.
const (
	FaultCrash   FaultKind = "crash"   // crash-stop
	FaultDelay   FaultKind = "delay"   // netem-style 100ms outbound delay
	FaultRestart FaultKind = "restart" // kill -9, then recover from the WAL

	FaultEquivocate      FaultKind = "equivocate"       // conflicting slot contents to different peers
	FaultWithholdCommits FaultKind = "withhold-commits" // sign acks, never emit commits
	FaultForgeRefs       FaultKind = "forge-refs"       // garbage CHAINDEF/COMMITREF/CREDITREF digests
	FaultNackStorm       FaultKind = "nack-storm"       // CHAINNACK/CREDITNACK spam
	FaultStaleView       FaultKind = "stale-view"       // stale/forged reconfiguration messages
)

// Byzantine reports whether the kind is an actively malicious behavior
// (as opposed to a crash-style or timing fault).
func (k FaultKind) Byzantine() bool {
	switch k {
	case FaultEquivocate, FaultWithholdCommits, FaultForgeRefs, FaultNackStorm, FaultStaleView:
		return true
	}
	return false
}

// DelayRule injects extra delay on the directed link From → To —
// per-target and asymmetric, unlike the single node-wide FaultDelay.
// For richer perturbations (loss, duplication, corruption, schedules)
// use AstroOpts.Chaos; FaultDelay itself remains for the paper's 100 ms
// experiment.
type DelayRule struct {
	From, To types.ReplicaID
	Delay    time.Duration
}

// TargetKind selects which replica is perturbed.
type TargetKind string

// Perturbation targets.
const (
	TargetLeader TargetKind = "leader" // consensus leader (replica 0)
	TargetRandom TargetKind = "random" // a non-leader replica serving clients
)

// TimelineConfig parameterizes the robustness timelines (Figures 5–7).
type TimelineConfig struct {
	System System
	N      int
	// Clients is the number of single-threaded closed-loop clients
	// (paper: 10, below saturation).
	Clients int
	// Window is the observation window; the fault hits at FaultAt.
	Window  time.Duration
	FaultAt time.Duration
	Fault   FaultKind
	Target  TargetKind
	// Delay is the injected delay for FaultDelay (paper: 100ms).
	Delay time.Duration
	// LinkDelays are additional asymmetric per-link delays applied at
	// FaultAt, composing with whatever Fault injects.
	LinkDelays []DelayRule
	// RestartAfter is the downtime before a FaultRestart target is
	// rebuilt from its write-ahead log (default 3s). Astro systems only:
	// the consensus baseline has no durable replica state.
	RestartAfter time.Duration
	// DataDir backs the replicas' write-ahead logs for FaultRestart;
	// empty uses a run-scoped temporary directory.
	DataDir string
	// BinWidth of the throughput timeline (paper: 1s).
	BinWidth time.Duration
	// RequestTimeout tunes the consensus suspicion timeout: loose yields
	// the paper's Consensus-Leader-A (degradation without view change),
	// tight yields Consensus-Leader-B (view change).
	RequestTimeout time.Duration
	// ViewChangeSyncCost models new-leader synchronization time.
	ViewChangeSyncCost time.Duration
	// Seed for reproducibility.
	Seed uint64
}

// TimelineResult is a labeled throughput-over-time curve.
type TimelineResult struct {
	Label    string
	BinWidth time.Duration
	// Rates are confirmed payments per second, one entry per bin.
	Rates []float64
	// ViewChanges counts completed view changes (consensus only).
	ViewChanges uint64
	// AuditSamples and AuditViolations report the always-on invariant
	// auditor, which samples conservation/FIFO/agreement throughout the
	// run (Astro systems only; the faulty target is excluded from the
	// correct-replica checks when the fault is Byzantine).
	AuditSamples    int
	AuditViolations []string
}

// Timeline runs one robustness execution and returns the throughput curve.
func Timeline(cfg TimelineConfig) (TimelineResult, error) {
	if cfg.N <= 0 {
		cfg.N = 49
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = 24 * time.Second
	}
	if cfg.FaultAt <= 0 {
		cfg.FaultAt = cfg.Window / 2
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 100 * time.Millisecond
	}
	if cfg.BinWidth <= 0 {
		cfg.BinWidth = time.Second
	}
	if cfg.RestartAfter <= 0 {
		cfg.RestartAfter = 3 * time.Second
	}
	dataDir := cfg.DataDir
	if cfg.Fault == FaultRestart && dataDir == "" {
		tmp, err := os.MkdirTemp("", "astro-restart-*")
		if err != nil {
			return TimelineResult{}, fmt.Errorf("sim: %w", err)
		}
		defer os.RemoveAll(tmp)
		dataDir = tmp
	}

	bins := int(cfg.Window/cfg.BinWidth) + 1
	var tl *metrics.Timeline
	var clients []workload.PaymentClient
	var injectFault func()
	var applyLinkDelays func()
	var viewChanges func() uint64
	var auditStop func() AuditReport
	label := fmt.Sprintf("%s-%s-%s", cfg.System, cfg.Target, cfg.Fault)

	switch cfg.System {
	case SystemAstroI, SystemAstroII:
		version := core.AstroI
		if cfg.System == SystemAstroII {
			version = core.AstroII
		}
		opts := AstroOpts{
			Version:  version,
			Topology: shard.Topology{NumShards: 1, PerShard: cfg.N},
			Genesis:  1 << 40,
			Seed:     cfg.Seed,
		}
		if cfg.Fault == FaultRestart {
			opts.DataDir = dataDir
		}
		cl, err := NewAstroCluster(opts)
		if err != nil {
			return TimelineResult{}, err
		}
		defer cl.Close()
		pool := make([]types.ClientID, cfg.Clients)
		for i := 0; i < cfg.Clients; i++ {
			clients = append(clients, cl.Client(types.ClientID(i+1)))
			pool[i] = types.ClientID(i + 1)
		}
		// "Random" target: the representative of one of the clients, so
		// the fault visibly removes that client's share of throughput
		// (fate sharing, paper §VI-D).
		target := cl.RepOf(1)
		var restartTimer *time.Timer
		defer func() {
			if restartTimer != nil {
				restartTimer.Stop()
			}
		}()
		injectFault = func() {
			switch cfg.Fault {
			case FaultRestart:
				cl.Kill(target)
				restartTimer = time.AfterFunc(cfg.RestartAfter, func() {
					// Timeline curves show the recovery dip; a restart
					// error surfaces as throughput that never returns.
					_ = cl.Restart(target)
				})
			case FaultCrash:
				cl.Crash(target)
			case FaultDelay:
				cl.Delay(target, cfg.Delay)
			default:
				// Byzantine behaviors arm on the target's endpoint; an
				// unknown kind is a no-op rather than a crash mid-run.
				_ = cl.ArmFault(target, cfg.Fault)
			}
		}
		applyLinkDelays = func() {
			for _, r := range cfg.LinkDelays {
				cl.Net.SetLinkDelay(transport.ReplicaNode(r.From), transport.ReplicaNode(r.To), r.Delay)
			}
		}
		faulty := map[types.ReplicaID]bool{}
		if cfg.Fault.Byzantine() {
			faulty[target] = true
		}
		aud := cl.NewAuditor(AuditorConfig{
			Clients:  pool,
			Genesis:  opts.Genesis,
			Faulty:   faulty,
			Interval: 200 * time.Millisecond,
		})
		aud.Start()
		auditStop = aud.Stop
		viewChanges = func() uint64 { return 0 }
	case SystemConsensus:
		if cfg.Fault == FaultRestart {
			return TimelineResult{}, fmt.Errorf("sim: %s has no durable replica state to restart from", cfg.System)
		}
		if cfg.Fault.Byzantine() {
			return TimelineResult{}, fmt.Errorf("sim: Byzantine fault kinds target Astro replicas, not %s", cfg.System)
		}
		cl, err := NewConsensusCluster(ConsensusOpts{
			N:                  cfg.N,
			RequestTimeout:     cfg.RequestTimeout,
			ViewChangeSyncCost: cfg.ViewChangeSyncCost,
			// Coalesce below-saturation requests into shared batches
			// (BFT-SMaRt's batch timeout); otherwise each request pays
			// the full O(N²) agreement cost alone and the single-core
			// substrate saturates on message handling at larger N.
			BatchDelay: 25 * time.Millisecond,
			Seed:       cfg.Seed,
		})
		if err != nil {
			return TimelineResult{}, err
		}
		defer cl.Close()
		for i := 0; i < cfg.Clients; i++ {
			clients = append(clients, cl.Client(types.ClientID(i+1)))
		}
		target := cl.Leader()
		if cfg.Target == TargetRandom {
			target = cl.IDs[len(cl.IDs)-1] // a non-leader replica
		}
		injectFault = func() {
			if cfg.Fault == FaultCrash {
				cl.Crash(target)
			} else {
				cl.Delay(target, cfg.Delay)
			}
		}
		applyLinkDelays = func() {
			for _, r := range cfg.LinkDelays {
				cl.Net.SetLinkDelay(transport.ReplicaNode(r.From), transport.ReplicaNode(r.To), r.Delay)
			}
		}
		viewChanges = func() uint64 {
			var max uint64
			for _, r := range cl.Replicas {
				if v := r.ViewChanges(); v > max {
					max = v
				}
			}
			return max
		}
	default:
		return TimelineResult{}, fmt.Errorf("sim: unknown system %q", cfg.System)
	}

	tl = metrics.NewTimeline(bins, cfg.BinWidth)
	timer := time.AfterFunc(cfg.FaultAt, func() {
		injectFault()
		if applyLinkDelays != nil {
			applyLinkDelays()
		}
	})
	defer timer.Stop()

	pool := make([]types.ClientID, cfg.Clients)
	for i := range pool {
		pool[i] = types.ClientID(i + 1)
	}
	workload.RunUniform(workload.UniformConfig{
		Clients:       clients,
		Beneficiaries: pool,
		Duration:      cfg.Window,
		MaxAmount:     100,
		Timeline:      tl,
		OpTimeout:     cfg.Window, // ops may stall across a view change
		Seed:          int64(cfg.Seed) + 17,
	})

	counts := tl.Bins()
	rates := make([]float64, len(counts))
	for i, n := range counts {
		rates[i] = tl.Rate(n)
	}
	res := TimelineResult{
		Label:       label,
		BinWidth:    cfg.BinWidth,
		Rates:       rates,
		ViewChanges: viewChanges(),
	}
	if auditStop != nil {
		rep := auditStop()
		res.AuditSamples = rep.Samples
		for _, v := range rep.Violations {
			res.AuditViolations = append(res.AuditViolations, v.String())
		}
	}
	return res, nil
}

// Table1Config parameterizes the sharded Smallbank benchmark (Table I).
type Table1Config struct {
	// ShardCounts sweeps the number of shards (paper: 2, 3, 4).
	ShardCounts []int
	// PerShard is the shard size (paper: 52).
	PerShard int
	// ExtraDelays are the injected inter-replica delays (paper: 0, 20ms).
	ExtraDelays []time.Duration
	// OwnersPerShard is the number of Smallbank account owners per shard.
	OwnersPerShard int
	// Duration per cell.
	Duration time.Duration
	// BatchSize for Astro II.
	BatchSize int
	// IncludeBaseline also measures the consensus upper bound
	// (single-shard, scaled by shard count, as the paper does).
	IncludeBaseline bool
	// RealCrypto switches the harness to real ECDSA (see AstroOpts).
	RealCrypto bool
	// Seed for reproducibility.
	Seed uint64
}

// Table1Row is one line of Table I.
type Table1Row struct {
	System        System
	Shards        int
	ExtraDelay    time.Duration
	PerShardTput  float64
	TotalTput     float64
	AvgLatency    time.Duration
	P95Latency    time.Duration
	CrossFraction float64
	Errors        uint64
}

// Table1 runs the sharded Smallbank benchmark.
func Table1(cfg Table1Config) ([]Table1Row, error) {
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{2, 3, 4}
	}
	if cfg.PerShard <= 0 {
		cfg.PerShard = 52
	}
	if len(cfg.ExtraDelays) == 0 {
		cfg.ExtraDelays = []time.Duration{0, 20 * time.Millisecond}
	}
	if cfg.OwnersPerShard <= 0 {
		cfg.OwnersPerShard = 32
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	var rows []Table1Row
	for _, shards := range cfg.ShardCounts {
		for _, delay := range cfg.ExtraDelays {
			row, err := table1Cell(cfg, shards, delay)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	if cfg.IncludeBaseline {
		for _, delay := range cfg.ExtraDelays {
			row, err := table1Baseline(cfg, delay)
			if err != nil {
				return rows, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func table1Cell(cfg Table1Config, shards int, delay time.Duration) (Table1Row, error) {
	top := shard.Topology{NumShards: shards, PerShard: cfg.PerShard}
	shardOf, repOf := workload.Maps(top)
	cl, err := NewAstroCluster(AstroOpts{
		Version:    core.AstroII,
		Topology:   top,
		BatchSize:  cfg.BatchSize,
		ShardOf:    shardOf,
		RepOf:      repOf,
		RealCrypto: cfg.RealCrypto,
		Seed:       cfg.Seed + uint64(shards),
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("table1 shards=%d: %w", shards, err)
	}
	defer cl.Close()
	if delay > 0 {
		for _, r := range top.AllReplicas() {
			cl.Delay(r, delay)
		}
	}

	totalOwners := shards * cfg.OwnersPerShard
	owners := make([]workload.OwnerHandles, 0, totalOwners)
	for o := 0; o < totalOwners; o++ {
		owners = append(owners, workload.OwnerHandles{
			Owner:    o,
			Checking: cl.Client(workload.CheckingOf(o)),
			Savings:  cl.Client(workload.SavingsOf(o)),
		})
	}
	hist := &metrics.Histogram{}
	res := workload.RunSmallbank(workload.SmallbankConfig{
		Owners:   owners,
		Topology: top,
		Duration: cfg.Duration,
		Hist:     hist,
		Seed:     int64(cfg.Seed) + int64(shards)*31,
	})
	total := res.Throughput()
	return Table1Row{
		System:        SystemAstroII,
		Shards:        shards,
		ExtraDelay:    delay,
		PerShardTput:  total / float64(shards),
		TotalTput:     total,
		AvgLatency:    hist.Mean(),
		P95Latency:    hist.Quantile(0.95),
		CrossFraction: res.CrossShardFraction(),
		Errors:        res.Errors,
	}, nil
}

// table1Baseline measures the consensus system on a single shard running
// Smallbank and reports it as the paper does: an optimistic upper bound
// with total = per-shard × max shard count (no cross-shard coordination
// charged).
func table1Baseline(cfg Table1Config, delay time.Duration) (Table1Row, error) {
	cl, err := NewConsensusCluster(ConsensusOpts{
		N:         cfg.PerShard,
		BatchSize: cfg.BatchSize,
		Seed:      cfg.Seed + 99,
	})
	if err != nil {
		return Table1Row{}, fmt.Errorf("table1 baseline: %w", err)
	}
	defer cl.Close()
	if delay > 0 {
		for _, r := range cl.IDs {
			cl.Delay(r, delay)
		}
	}
	top := shard.Topology{NumShards: 1, PerShard: cfg.PerShard}
	owners := make([]workload.OwnerHandles, 0, cfg.OwnersPerShard)
	for o := 0; o < cfg.OwnersPerShard; o++ {
		owners = append(owners, workload.OwnerHandles{
			Owner:    o,
			Checking: cl.Client(workload.CheckingOf(o)),
			Savings:  cl.Client(workload.SavingsOf(o)),
		})
	}
	hist := &metrics.Histogram{}
	res := workload.RunSmallbank(workload.SmallbankConfig{
		Owners:   owners,
		Topology: top,
		Duration: cfg.Duration,
		Hist:     hist,
		Seed:     int64(cfg.Seed) + 131,
	})
	maxShards := 1
	for _, s := range cfg.ShardCounts {
		if s > maxShards {
			maxShards = s
		}
	}
	perShard := res.Throughput()
	return Table1Row{
		System:       SystemConsensus,
		Shards:       1,
		ExtraDelay:   delay,
		PerShardTput: perShard,
		TotalTput:    perShard * float64(maxShards),
		AvgLatency:   hist.Mean(),
		P95Latency:   hist.Quantile(0.95),
		Errors:       res.Errors,
	}, nil
}

// Fig8Config parameterizes the reconfiguration experiment (Figure 8).
type Fig8Config struct {
	// StartN is the initial view size (paper: 4).
	StartN int
	// EndN is the final view size (paper: 80).
	EndN int
	// StateClients and StatePayments size the transferred snapshot.
	StateClients  int
	StatePayments int
	// Systems to measure: SystemAstroII and/or SystemConsensus.
	Systems []System
	// Seed for reproducibility.
	Seed uint64
}

// Fig8Point is one join observation.
type Fig8Point struct {
	System System
	// N is the system size including the joining replica.
	N       int
	Latency time.Duration
}

// Fig8 grows a quiescent system one replica at a time, measuring join
// latency under the consensusless protocol and the consensus-style
// baseline.
func Fig8(cfg Fig8Config) ([]Fig8Point, error) {
	if cfg.StartN <= 0 {
		cfg.StartN = 4
	}
	if cfg.EndN <= cfg.StartN {
		cfg.EndN = 80
	}
	if len(cfg.Systems) == 0 {
		cfg.Systems = []System{SystemAstroII, SystemConsensus}
	}
	if cfg.StateClients < 0 {
		cfg.StateClients = 0
	}

	// Build the transferred snapshot once.
	snap := make(reconfig.StaticState, cfg.StateClients)
	for c := 0; c < cfg.StateClients; c++ {
		log := make([]types.Payment, cfg.StatePayments)
		for i := range log {
			log[i] = types.Payment{
				Spender: types.ClientID(c), Seq: types.Seq(i + 1),
				Beneficiary: types.ClientID((c + 1) % (cfg.StateClients + 1)), Amount: 1,
			}
		}
		snap[types.ClientID(c)] = log
	}

	var out []Fig8Point
	for _, sys := range cfg.Systems {
		points, err := fig8Run(cfg, sys, snap)
		if err != nil {
			return out, err
		}
		out = append(out, points...)
	}
	return out, nil
}

func fig8Run(cfg Fig8Config, sys System, snap reconfig.StaticState) ([]Fig8Point, error) {
	net := memnet.New(memnet.WithLatency(memnet.EuropeWAN()), memnet.WithSeed(cfg.Seed+7))
	defer net.Close()
	// Muxes now own per-channel dispatch goroutines; close them when the
	// run ends or a long bench sweep accumulates leaked goroutines.
	var muxes []*transport.Mux
	newMux := func(id types.ReplicaID) *transport.Mux {
		m := transport.NewMux(net.Node(transport.ReplicaNode(id)))
		muxes = append(muxes, m)
		return m
	}
	defer func() {
		for _, m := range muxes {
			m.Close()
		}
	}()
	registry := crypto.NewRegistry()
	keys := make(map[types.ReplicaID]*crypto.KeyPair)

	members := make([]types.ReplicaID, cfg.StartN)
	for i := range members {
		members[i] = types.ReplicaID(i)
		keys[members[i]] = crypto.MustGenerateKeyPair()
		registry.Add(members[i], keys[members[i]].Public())
	}
	view := reconfig.View{Num: 1, Members: members}

	for _, id := range members {
		mux := newMux(id)
		reconfig.NewManager(reconfig.Config{
			Self: id, Mux: mux, Keys: keys[id], Registry: registry,
			InitialView: view, State: snap,
		})
	}

	var out []Fig8Point
	for n := cfg.StartN; n < cfg.EndN; n++ {
		joiner := types.ReplicaID(1000 + n)
		keys[joiner] = crypto.MustGenerateKeyPair()
		mux := newMux(joiner)
		jc := reconfig.JoinConfig{
			Self: joiner, Mux: mux, Keys: keys[joiner], Registry: registry,
			CurrentView: view, Timeout: 60 * time.Second,
		}
		var res *reconfig.JoinResult
		var err error
		if sys == SystemConsensus {
			res, err = reconfig.ConsensusJoin(jc)
		} else {
			res, err = reconfig.Join(jc)
		}
		if err != nil {
			return out, fmt.Errorf("fig8 %s n=%d: %w", sys, n+1, err)
		}
		out = append(out, Fig8Point{System: sys, N: n + 1, Latency: res.Latency})
		view = res.View
		// The joiner becomes a member serving future joins.
		registry.Add(joiner, keys[joiner].Public())
		// The manager mux takes over the joiner's endpoint handler slot;
		// the join-time mux is done, so release its dispatchers now
		// (Close is idempotent — the deferred sweep may hit it again).
		mux.Close()
		mgrMux := newMux(joiner)
		reconfig.NewManager(reconfig.Config{
			Self: joiner, Mux: mgrMux, Keys: keys[joiner], Registry: registry,
			InitialView: view, State: snap,
		})
	}
	return out, nil
}
