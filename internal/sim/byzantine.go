package sim

// Byzantine replica behaviors: pluggable fault injectors that interpose
// on a replica's protocol traffic at the transport boundary, below the
// Mux. A behavior sees every frame the replica sends or receives — with
// the mux channel tag as frame[0] — and may mutate it, suppress it, or
// emit extra forged frames from the replica's own endpoint (receivers
// attribute frames to transport addresses, so a faulty replica can only
// ever speak as itself; it cannot spoof others, exactly as in the
// paper's model where channels are authenticated).
//
// Every replica endpoint is permanently wrapped (the wrapper is inert
// until armed), so behaviors can be attached and detached while the
// system runs — the experiment harness flips them on mid-run like any
// other FaultKind.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"astro/internal/brb"
	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/reconfig"
	"astro/internal/transport"
	"astro/internal/types"
)

// Emit sends an extra, behavior-forged frame (channel tag included) from
// the faulty replica's endpoint.
type Emit func(to transport.NodeID, frame []byte)

// Behavior is a Byzantine strategy. Outbound interposes on frames the
// replica is about to send, Inbound on frames arriving before the honest
// stack sees them. Both return the frame to deliver — possibly mutated —
// or nil to suppress it. frame[0] is the transport.Channel tag; helpers
// below split and rebuild it. Implementations must be safe for
// concurrent calls: sends originate from many lanes.
type Behavior interface {
	Name() string
	Outbound(to transport.NodeID, frame []byte, emit Emit) []byte
	Inbound(from transport.NodeID, frame []byte, emit Emit) []byte
}

// frameChan returns a frame's channel tag (0 for empty frames).
func frameChan(frame []byte) transport.Channel {
	if len(frame) == 0 {
		return 0
	}
	return transport.Channel(frame[0])
}

// reframe prepends a channel tag to a protocol body.
func reframe(ch transport.Channel, body []byte) []byte {
	out := make([]byte, 0, 1+len(body))
	out = append(out, byte(ch))
	return append(out, body...)
}

// byzEndpoint wraps a replica's endpoint with a swappable behavior. It
// sits between the Mux and the (possibly chaos-wrapped) transport, so
// forged frames still traverse chaos and the network model like any
// honest frame.
type byzEndpoint struct {
	inner    transport.Endpoint
	behavior atomic.Pointer[Behavior]
}

var _ transport.Endpoint = (*byzEndpoint)(nil)

func newByzEndpoint(inner transport.Endpoint) *byzEndpoint {
	return &byzEndpoint{inner: inner}
}

// Set arms (or, with nil, disarms) the behavior.
func (e *byzEndpoint) Set(b Behavior) {
	if b == nil {
		e.behavior.Store(nil)
		return
	}
	e.behavior.Store(&b)
}

func (e *byzEndpoint) ID() transport.NodeID { return e.inner.ID() }
func (e *byzEndpoint) Close() error         { return e.inner.Close() }

func (e *byzEndpoint) emit(to transport.NodeID, frame []byte) {
	_ = e.inner.Send(to, frame)
}

func (e *byzEndpoint) Send(to transport.NodeID, payload []byte) error {
	bp := e.behavior.Load()
	if bp == nil || to == e.inner.ID() { // local timer events stay honest
		return e.inner.Send(to, payload)
	}
	out := (*bp).Outbound(to, payload, e.emit)
	if out == nil {
		return nil
	}
	return e.inner.Send(to, out)
}

func (e *byzEndpoint) SetHandler(h transport.Handler) {
	e.inner.SetHandler(func(from transport.NodeID, payload []byte) {
		bp := e.behavior.Load()
		if bp != nil && from != e.inner.ID() {
			payload = (*bp).Inbound(from, payload, e.emit)
			if payload == nil {
				return
			}
		}
		h(from, payload)
	})
}

// NopBehavior is an embeddable pass-through: override only the hook a
// strategy needs.
type NopBehavior struct{}

func (NopBehavior) Outbound(_ transport.NodeID, frame []byte, _ Emit) []byte { return frame }
func (NopBehavior) Inbound(_ transport.NodeID, frame []byte, _ Emit) []byte  { return frame }

// ---------------------------------------------------------------------
// Equivocation
// ---------------------------------------------------------------------

// Equivocate sends conflicting slot contents to different peers: victims
// receive a variant-B PREPARE whose batch pays a shifted beneficiary,
// everyone else the honest variant A. The behavior signs both variants
// itself and harvests inbound acks for B (its honest stack only collects
// A's), so with a colluding AckAll accomplice it can assemble a full
// 2f+1 certificate for B and commit both variants — the f+1 break the
// auditor must catch. With at most f faulty replicas B can never reach a
// quorum: victims ack B but then deliver A through its valid commit, and
// every invariant holds — the paper's tolerance claim, demonstrated.
type Equivocate struct {
	Self    types.ReplicaID
	Keys    *crypto.KeyPair           // the equivocator's own signing key
	Quorum  int                       // 2f+1 for the shard
	Victims map[transport.NodeID]bool // peers fed variant B
	// Accomplices are colluding peers that receive variant B as an extra
	// PREPARE alongside the honest variant A. On their own the extra
	// prepares are harmless (an honest stack acks one digest per
	// instance); paired with an AckAll behavior on the accomplice, both
	// variants get signed — the extra signature that pushes certB past
	// the quorum in f+1 collusion scenarios.
	Accomplices map[transport.NodeID]bool
	// WithholdFromVictims suppresses honest variant-A commits to the
	// victim set, so a victim's first commit for an equivocated slot is
	// the forged B one (armed only in f+1 collusion scenarios; leaving
	// it false lets victims converge on A and masks the attack).
	WithholdFromVictims bool

	mu    sync.Mutex
	insts map[brbInstance]*equivInstance

	Equivocated  atomic.Uint64 // variant-B prepares sent
	ForgedCommit atomic.Uint64 // forged B commits emitted
}

type brbInstance struct {
	Origin types.ReplicaID
	Slot   uint64
}

type equivInstance struct {
	payloadB  []byte
	digestB   types.Digest
	certB     crypto.Certificate
	committed bool
}

func (b *Equivocate) Name() string { return "equivocate" }

// mutateBatch derives variant B from an honest batch payload: every
// payment's beneficiary is shifted by one, which keeps the batch
// decodable and settleable (same spender, seq, amount, deps) while
// diverging the xlog content any receiver settles.
func mutateBatch(payload []byte) ([]byte, bool) {
	entries, err := core.DecodeBatch(payload)
	if err != nil || len(entries) == 0 {
		return nil, false
	}
	for i := range entries {
		entries[i].Payment.Beneficiary++
	}
	return core.EncodeBatch(entries), true
}

func (b *Equivocate) inst(id brbInstance) *equivInstance {
	// caller holds b.mu
	if b.insts == nil {
		b.insts = make(map[brbInstance]*equivInstance)
	}
	in := b.insts[id]
	if in == nil {
		in = &equivInstance{}
		b.insts[id] = in
	}
	return in
}

func (b *Equivocate) Outbound(to transport.NodeID, frame []byte, emit Emit) []byte {
	if frameChan(frame) != transport.ChanBRB {
		return frame
	}
	body := frame[1:]
	switch {
	case brb.FrameKind(body) == brb.KindPrepare:
		origin, slot, payload, ok := brb.DecodePrepare(body)
		if !ok || origin != b.Self {
			return frame
		}
		id := brbInstance{origin, slot}
		b.mu.Lock()
		in := b.inst(id)
		if in.payloadB == nil {
			pb, ok := mutateBatch(payload)
			if !ok {
				b.mu.Unlock()
				return frame
			}
			in.payloadB = pb
			in.digestB = brb.SignedDigest(origin, slot, pb)
			if sig, err := b.Keys.Sign(in.digestB); err == nil {
				in.certB.Add(crypto.PartialSig{Replica: b.Self, Sig: sig})
			}
		}
		variantB := in.payloadB
		b.mu.Unlock()
		if b.Victims[to] {
			b.Equivocated.Add(1)
			return reframe(transport.ChanBRB, brb.EncodePrepare(origin, slot, variantB))
		}
		if b.Accomplices[to] {
			b.Equivocated.Add(1)
			emit(to, reframe(transport.ChanBRB, brb.EncodePrepare(origin, slot, variantB)))
		}
		return frame
	case brb.IsCommitKind(brb.FrameKind(body)) && b.WithholdFromVictims && b.Victims[to]:
		// Victims only ever see the forged B commit (sent from Inbound
		// once the colluding certificate completes).
		return nil
	}
	return frame
}

func (b *Equivocate) Inbound(from transport.NodeID, frame []byte, emit Emit) []byte {
	if frameChan(frame) != transport.ChanBRB {
		return frame
	}
	origin, slot, digest, sig, ok := brb.DecodeAck(frame[1:])
	if !ok || origin != b.Self {
		return frame
	}
	id := brbInstance{origin, slot}
	b.mu.Lock()
	in := b.insts[id]
	if in == nil || digest != in.digestB || in.committed {
		b.mu.Unlock()
		return frame
	}
	in.certB.Add(crypto.PartialSig{Replica: types.ReplicaID(from), Sig: sig})
	var commitB []byte
	if in.certB.Len() >= b.Quorum {
		in.committed = true
		commitB = reframe(transport.ChanBRB, brb.EncodeCommit(origin, slot, in.payloadB, in.certB))
	}
	b.mu.Unlock()
	if commitB != nil {
		for v := range b.Victims {
			emit(v, commitB)
			b.ForgedCommit.Add(1)
		}
	}
	return frame
}

// AckAll is the accomplice to Equivocate: it acknowledges every PREPARE
// it receives — including a second, conflicting payload for an instance
// it already acked, which an honest replica never signs. On its own it
// is harmless (duplicate acks for one digest dedupe); combined with an
// equivocator it is the second signer that pushes a conflicting
// certificate past the quorum, modeling f+1 collusion.
type AckAll struct {
	NopBehavior
	Self types.ReplicaID
	Keys *crypto.KeyPair

	Forged atomic.Uint64
}

func (b *AckAll) Name() string { return "ack-all" }

func (b *AckAll) Inbound(from transport.NodeID, frame []byte, emit Emit) []byte {
	if frameChan(frame) != transport.ChanBRB {
		return frame
	}
	origin, slot, payload, ok := brb.DecodePrepare(frame[1:])
	if !ok || types.ReplicaID(from) != origin {
		return frame
	}
	if ack, err := brb.ForgeAck(b.Keys, origin, slot, payload); err == nil {
		emit(from, reframe(transport.ChanBRB, ack))
		b.Forged.Add(1)
	}
	return frame
}

// ---------------------------------------------------------------------
// Withheld commits
// ---------------------------------------------------------------------

// WithholdCommits signs acks like an honest replica but never emits a
// commit certificate for its own broadcasts, in any of the three commit
// wire forms. Its clients' payments collect acks and stall forever;
// nobody else is harmed — the canonical "crash at the most annoying
// step" Byzantine strategy.
type WithholdCommits struct {
	NopBehavior

	Suppressed atomic.Uint64
}

func (b *WithholdCommits) Name() string { return "withhold-commits" }

func (b *WithholdCommits) Outbound(_ transport.NodeID, frame []byte, _ Emit) []byte {
	if frameChan(frame) == transport.ChanBRB && brb.IsCommitKind(brb.FrameKind(frame[1:])) {
		b.Suppressed.Add(1)
		return nil
	}
	return frame
}

// ---------------------------------------------------------------------
// Forged chain references
// ---------------------------------------------------------------------

// ForgeChainRefs corrupts the chain-by-digest wire forms this replica
// sends — CHAINDEF/COMMITREF on the broadcast channel and
// CREDITCHAINDEF/CREDITREF on the credit channel — replacing digests and
// indices with garbage. Honest receivers must shrug: a bogus definition
// caches a chain no signature references, a bogus reference misses the
// cache and triggers the NACK → self-contained fallback, and delivery
// proceeds through the legacy form.
type ForgeChainRefs struct {
	NopBehavior
	Salt byte

	Corrupted atomic.Uint64
}

func (b *ForgeChainRefs) Name() string { return "forge-chain-refs" }

func (b *ForgeChainRefs) Outbound(_ transport.NodeID, frame []byte, _ Emit) []byte {
	switch frameChan(frame) {
	case transport.ChanBRB:
		if mut, ok := brb.CorruptChainRefs(frame[1:], b.Salt); ok {
			b.Corrupted.Add(1)
			return reframe(transport.ChanBRB, mut)
		}
	case transport.ChanCredit:
		if mut, ok := core.CorruptCreditRefs(frame[1:], b.Salt); ok {
			b.Corrupted.Add(1)
			return reframe(transport.ChanCredit, mut)
		}
	}
	return frame
}

// ---------------------------------------------------------------------
// NACK storm
// ---------------------------------------------------------------------

// NackStorm answers every chain-referencing commit or credit it receives
// with a burst of NACKs naming the referenced digests, trying to drown
// the sender in full-form resends. The hardened senders do bounded work
// per NACK (one retained resend, nothing evicted for other peers), so
// the storm costs bandwidth and nothing else.
type NackStorm struct {
	NopBehavior
	Burst int // NACK copies per triggering frame (default 8)

	Sent atomic.Uint64
}

func (b *NackStorm) Name() string { return "nack-storm" }

func (b *NackStorm) burst() int {
	if b.Burst <= 0 {
		return 8
	}
	return b.Burst
}

func (b *NackStorm) Inbound(from transport.NodeID, frame []byte, emit Emit) []byte {
	switch frameChan(frame) {
	case transport.ChanBRB:
		if nack, ok := brb.NackFor(frame[1:]); ok {
			f := reframe(transport.ChanBRB, nack)
			for i := 0; i < b.burst(); i++ {
				emit(from, f)
				b.Sent.Add(1)
			}
		}
	case transport.ChanCredit:
		if nack, ok := core.CreditNackFor(frame[1:]); ok {
			f := reframe(transport.ChanCredit, nack)
			for i := 0; i < b.burst(); i++ {
				emit(from, f)
				b.Sent.Add(1)
			}
		}
	}
	return frame
}

// ---------------------------------------------------------------------
// Stale-view reconfiguration
// ---------------------------------------------------------------------

// StaleViewReconfig spams the reconfiguration channel with stale ADOPT
// announcements (view numbers at or below the installed view) and
// forged INSTALLs carrying garbage certificates. Honest managers must
// reject both — monotonicity for the adopts, 2f+1 certificate
// verification for the installs — and keep the live view. Triggered off
// inbound broadcast traffic, throttled to one volley per Every frames.
type StaleViewReconfig struct {
	NopBehavior
	Self  types.ReplicaID
	Peers []transport.NodeID // shard members to spam
	View  reconfig.View      // a stale view (Num <= installed)
	Every int                // volley throttle (default 64)

	seen    atomic.Uint64
	Volleys atomic.Uint64
}

func (b *StaleViewReconfig) Name() string { return "stale-view-reconfig" }

func (b *StaleViewReconfig) Inbound(_ transport.NodeID, frame []byte, emit Emit) []byte {
	every := uint64(b.Every)
	if every == 0 {
		every = 64
	}
	if b.seen.Add(1)%every != 1 {
		return frame
	}
	adopt := reframe(transport.ChanReconfig, reconfig.ForgeStaleAdopt(b.View))
	install := reframe(transport.ChanReconfig, reconfig.ForgeInstall(
		reconfig.View{Num: b.View.Num + 1000, Members: b.View.Members},
		b.Self, []byte("bogus-public-key"), crypto.Certificate{},
	))
	for _, p := range b.Peers {
		emit(p, adopt)
		emit(p, install)
	}
	b.Volleys.Add(1)
	return frame
}

// ---------------------------------------------------------------------
// Fault-kind arming
// ---------------------------------------------------------------------

// NewBehavior builds the canonical behavior for a Byzantine FaultKind
// with shard-derived defaults: the equivocator targets the last non-self
// member of the shard, the stale-view spammer addresses the whole shard
// with the genesis view. members must include self; quorum is the shard's
// 2f+1. Exported so out-of-process deployments (cmd/astro-node -fault)
// arm the same behaviors the in-process matrix runs; scenario code
// needing custom victim sets or collusion builds the Behavior literal
// itself.
func NewBehavior(kind FaultKind, self types.ReplicaID, keys *crypto.KeyPair, members []types.ReplicaID, quorum int) (Behavior, error) {
	var peers []transport.NodeID
	for _, m := range members {
		if m != self {
			peers = append(peers, transport.ReplicaNode(m))
		}
	}
	switch kind {
	case FaultEquivocate:
		victims := map[transport.NodeID]bool{}
		if len(peers) > 0 {
			victims[peers[len(peers)-1]] = true
		}
		return &Equivocate{
			Self:    self,
			Keys:    keys,
			Quorum:  quorum,
			Victims: victims,
		}, nil
	case FaultWithholdCommits:
		return &WithholdCommits{}, nil
	case FaultForgeRefs:
		return &ForgeChainRefs{Salt: 0x5a}, nil
	case FaultNackStorm:
		return &NackStorm{}, nil
	case FaultStaleView:
		return &StaleViewReconfig{
			Self:  self,
			Peers: peers,
			View:  reconfig.View{Num: 1, Members: members},
		}, nil
	default:
		return nil, fmt.Errorf("sim: %q is not a Byzantine fault kind", kind)
	}
}

// WrapBehavior interposes a Byzantine behavior on an endpoint — the
// standalone form of the cluster's always-present wrapper, for real
// deployments stacking tcpnet → chaos → behavior → Mux. A nil behavior
// returns a wrapper that is inert until armed through the cluster APIs;
// standalone callers pass the behavior they want.
func WrapBehavior(inner transport.Endpoint, b Behavior) transport.Endpoint {
	bz := newByzEndpoint(inner)
	bz.Set(b)
	return bz
}

// ArmFault arms the canonical behavior for a Byzantine FaultKind on the
// given replica (see NewBehavior).
func (c *AstroCluster) ArmFault(id types.ReplicaID, kind FaultKind) error {
	members := c.Topology.Replicas(c.Topology.ReplicaShard(id))
	b, err := NewBehavior(kind, id, c.Keys(id), members, c.Quorum())
	if err != nil {
		return err
	}
	return c.SetBehavior(id, b)
}
