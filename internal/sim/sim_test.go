package sim

import (
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// fastLatency keeps smoke tests quick while still exercising the paths.
func fastLatency() memnet.LatencyModel {
	return memnet.Uniform(200*time.Microsecond, time.Millisecond)
}

func TestMeasureAstroII(t *testing.T) {
	m, err := measure(measureOpts{
		system: SystemAstroII, n: 4, clients: 4,
		duration: 400 * time.Millisecond, batchSize: 8,
		batchDelay: time.Millisecond, latency: fastLatency(), seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 {
		t.Errorf("throughput = %v", m.Throughput)
	}
	if m.AvgLatency <= 0 || m.P95Latency < m.AvgLatency/4 {
		t.Errorf("latencies: avg=%v p95=%v", m.AvgLatency, m.P95Latency)
	}
	if m.Errors != 0 {
		t.Errorf("errors = %d", m.Errors)
	}
}

func TestMeasureAstroIAndConsensus(t *testing.T) {
	for _, sys := range []System{SystemAstroI, SystemConsensus} {
		m, err := measure(measureOpts{
			system: sys, n: 4, clients: 2,
			duration: 400 * time.Millisecond, batchSize: 8,
			batchDelay: time.Millisecond, latency: fastLatency(), seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if m.Throughput <= 0 {
			t.Errorf("%s: throughput = %v", sys, m.Throughput)
		}
	}
}

func TestFig3Smoke(t *testing.T) {
	res, err := Fig3(Fig3Config{
		Sizes:    []int{4},
		Systems:  AllSystems,
		Duration: 300 * time.Millisecond,
		Clients:  2,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("points = %d", len(res))
	}
	for _, m := range res {
		if m.Throughput <= 0 {
			t.Errorf("%s: zero throughput", m.System)
		}
	}
}

func TestFig4Smoke(t *testing.T) {
	res, err := Fig4(Fig4Config{
		N:            4,
		ClientCounts: []int{1, 4},
		Systems:      []System{SystemAstroII},
		Duration:     300 * time.Millisecond,
		Seed:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("points = %d", len(res))
	}
	// More clients => more throughput (closed loop below saturation).
	if res[1].Throughput <= res[0].Throughput {
		t.Logf("warning: throughput did not grow with clients: %v vs %v",
			res[0].Throughput, res[1].Throughput)
	}
}

func TestTimelineCrashBroadcast(t *testing.T) {
	res, err := Timeline(TimelineConfig{
		System:   SystemAstroI,
		N:        4,
		Clients:  4,
		Window:   2 * time.Second,
		FaultAt:  time.Second,
		Fault:    FaultCrash,
		Target:   TargetRandom,
		BinWidth: 250 * time.Millisecond,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) == 0 {
		t.Fatal("no bins")
	}
	// Before the fault there must be throughput.
	var pre float64
	for _, r := range res.Rates[:3] {
		pre += r
	}
	if pre == 0 {
		t.Error("no pre-fault throughput")
	}
	// After the crash of one representative (serving 1 of 4 clients),
	// throughput continues (other clients unaffected).
	var post float64
	for _, r := range res.Rates[5:] {
		post += r
	}
	if post == 0 {
		t.Error("broadcast system fully stalled after one crash")
	}
}

func TestTimelineLeaderCrashConsensus(t *testing.T) {
	res, err := Timeline(TimelineConfig{
		System:             SystemConsensus,
		N:                  4,
		Clients:            4,
		Window:             3 * time.Second,
		FaultAt:            time.Second,
		Fault:              FaultCrash,
		Target:             TargetLeader,
		BinWidth:           250 * time.Millisecond,
		RequestTimeout:     400 * time.Millisecond,
		ViewChangeSyncCost: 200 * time.Millisecond,
		Seed:               6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewChanges == 0 {
		t.Error("leader crash produced no view change")
	}
	// Throughput must recover after the view change.
	tail := res.Rates[len(res.Rates)-4:]
	var post float64
	for _, r := range tail {
		post += r
	}
	if post == 0 {
		t.Error("consensus never recovered after leader crash")
	}
}

func TestTable1Smoke(t *testing.T) {
	rows, err := Table1(Table1Config{
		ShardCounts:     []int{2},
		PerShard:        4,
		ExtraDelays:     []time.Duration{0},
		OwnersPerShard:  4,
		Duration:        500 * time.Millisecond,
		BatchSize:       8,
		IncludeBaseline: true,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	astro := rows[0]
	if astro.System != SystemAstroII || astro.Shards != 2 {
		t.Errorf("row 0 = %+v", astro)
	}
	if astro.TotalTput <= 0 {
		t.Error("no Smallbank throughput")
	}
	if astro.PerShardTput*2 != astro.TotalTput {
		t.Error("per-shard/total inconsistent")
	}
	base := rows[1]
	if base.System != SystemConsensus || base.TotalTput <= 0 {
		t.Errorf("baseline row = %+v", base)
	}
}

func TestFig8Smoke(t *testing.T) {
	points, err := Fig8(Fig8Config{
		StartN:        4,
		EndN:          7,
		StateClients:  5,
		StatePayments: 3,
		Systems:       []System{SystemAstroII, SystemConsensus},
		Seed:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Latency <= 0 {
			t.Errorf("%s n=%d: latency %v", p.System, p.N, p.Latency)
		}
	}
	// The consensus-style join should be slower at equal size.
	var astro, cons time.Duration
	for _, p := range points {
		if p.N != 6 {
			continue
		}
		if p.System == SystemAstroII {
			astro = p.Latency
		} else {
			cons = p.Latency
		}
	}
	if cons <= astro {
		t.Logf("warning: consensus join (%v) not slower than astro join (%v)", cons, astro)
	}
}

func TestClusterHelpers(t *testing.T) {
	cl, err := NewAstroCluster(AstroOpts{
		Version:  core.AstroII,
		Topology: shard.Topology{NumShards: 1, PerShard: 4},
		Latency:  fastLatency(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Client(1) != cl.Client(1) {
		t.Error("Client not cached")
	}
	if cl.RepOf(1) != cl.Topology.RepOf(1) {
		t.Error("RepOf mismatch")
	}
	if cl.TotalSettled() != 0 {
		t.Error("fresh cluster settled > 0")
	}

	if _, err := NewConsensusCluster(ConsensusOpts{N: 2}); err == nil {
		t.Error("N=2 consensus accepted")
	}
	if _, err := NewAstroCluster(AstroOpts{Version: core.AstroI, Topology: shard.Topology{NumShards: 0, PerShard: 4}}); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestSystemLabels(t *testing.T) {
	for _, s := range AllSystems {
		if s.Label() == "" || s.Label() == string(s) {
			t.Errorf("label for %s", s)
		}
	}
	if System("x").Label() != "x" {
		t.Error("unknown system label")
	}
	_ = types.ClientID(0) // keep import symmetry with other tests
}
