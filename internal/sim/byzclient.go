package sim

// Byzantine *clients*: active adversaries that own a client transport
// node and speak the real payment-channel wire protocol at replicas —
// the client-side counterpart of the replica Behavior suite. Unlike a
// Behavior (a passive interposer on an honest stack), a HostileClient is
// a driver: it seeds genuine settled history under its own identity and
// then attacks it with forged signatures, double-spends equivocated
// across representatives, sequence-number races around SyncSeq, replays
// of settled submissions, and hostile CREDIT/NACK traffic.
//
// Every attack class maps to a core.EdgeStats counter, so a scenario can
// assert the attack engaged (counter climbing) while the invariant
// auditor stays clean and honest clients keep settling — the bounded-
// cost claim of the client-edge hardening, demonstrated end to end.
//
// The harness is transport-agnostic: it drives a plain transport.Mux, so
// the same volleys run over memnet in the scenario matrix and over real
// TCP in the e2e harness and the soak runner.

import (
	"fmt"
	"sync/atomic"
	"time"

	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/types"
)

// HostileClient is a Byzantine client bound to one (corrupted) identity.
// It holds the identity's genuine registered key when the deployment
// runs client auth — the paper's adversary controls the client, key and
// all — plus a second, unregistered key for forged-signature volleys.
type HostileClient struct {
	id       types.ClientID
	rep      types.ReplicaID // the identity's legitimate representative
	wrongRep types.ReplicaID // a replica that does NOT represent it
	mux      *transport.Mux
	realKey  *crypto.KeyPair // registered (nil without ClientAuth)
	forgeKey *crypto.KeyPair // never registered anywhere

	confirms chan types.PaymentID

	// Volleys counts hostile frames sent — the engagement probe.
	Volleys atomic.Uint64
}

// Hostile returns a Byzantine client on the given identity. The identity
// must not also be used through Client — one mux per transport node.
func (c *AstroCluster) Hostile(id types.ClientID) *HostileClient {
	rep := c.repOf(id)
	var wrongRep types.ReplicaID
	for _, r := range c.Topology.AllReplicas() {
		if r != rep {
			wrongRep = r
			break
		}
	}
	return NewHostileClient(id, rep, wrongRep, c.clientMux(id), c.ClientKey(id))
}

// NewHostileClient binds the attack suite to an arbitrary transport mux —
// the form the TCP harness uses, where no cluster handle exists. rep must
// be the identity's legitimate representative and wrongRep any replica
// that does not represent it. realKey may be nil when the deployment runs
// without client auth. The mux's payment channel is claimed for
// confirmation tracking, so the identity must not also drive a
// core.Client on the same mux.
func NewHostileClient(id types.ClientID, rep, wrongRep types.ReplicaID, mux *transport.Mux, realKey *crypto.KeyPair) *HostileClient {
	h := &HostileClient{
		id:       id,
		rep:      rep,
		wrongRep: wrongRep,
		mux:      mux,
		realKey:  realKey,
		forgeKey: crypto.MustGenerateKeyPair(),
		confirms: make(chan types.PaymentID, 64),
	}
	h.mux.Register(transport.ChanPayment, h.onMessage)
	return h
}

func (h *HostileClient) onMessage(_ transport.NodeID, payload []byte) {
	if id, ok := core.DecodeConfirm(payload); ok && id.Spender == h.id {
		select {
		case h.confirms <- id:
		default:
		}
	}
}

// ID returns the corrupted identity.
func (h *HostileClient) ID() types.ClientID { return h.id }

func (h *HostileClient) repNode() transport.NodeID { return transport.ReplicaNode(h.rep) }

// sign signs with the identity's genuine key, or returns nil without
// client auth (replicas then skip the signature check entirely).
func (h *HostileClient) sign(p types.Payment) []byte {
	if h.realKey == nil {
		return nil
	}
	sig, _ := h.realKey.Sign(core.PaymentDigest(p))
	return sig
}

func (h *HostileClient) send(to transport.NodeID, ch transport.Channel, frame []byte) {
	_ = h.mux.Send(to, ch, frame)
	h.Volleys.Add(1)
}

// SettleOne legitimately settles one payment under the corrupted
// identity, returning the payment and its byte-identical submit frame —
// the settled history the replay and equivocation volleys attack.
// Resends through loss until confirmed or the timeout expires.
func (h *HostileClient) SettleOne(ben types.ClientID, amt types.Amount, timeout time.Duration) (types.Payment, []byte, error) {
	p := types.Payment{Spender: h.id, Seq: 1, Beneficiary: ben, Amount: amt}
	frame := core.EncodeSubmit(p, h.sign(p))
	deadline := time.Now().Add(timeout)
	for {
		if err := h.mux.Send(h.repNode(), transport.ChanPayment, frame); err != nil && time.Now().After(deadline) {
			return p, frame, err
		}
		select {
		case id := <-h.confirms:
			if id == p.ID() {
				return p, frame, nil
			}
		case <-time.After(250 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			return p, frame, fmt.Errorf("sim: hostile seed payment unconfirmed after %v", timeout)
		}
	}
}

// Equivocate double-spends one sequence slot at the legitimate
// representative: two conflicting payments, same (spender, seq), both
// signed with the identity's genuine key. At most one can ever settle;
// the other is refused before it occupies a broadcast slot
// (EdgeStats.Conflicting — or SettledReplay once a variant settles and
// its twin keeps arriving).
func (h *HostileClient) Equivocate(seq types.Seq, benA, benB types.ClientID) {
	pa := types.Payment{Spender: h.id, Seq: seq, Beneficiary: benA, Amount: 1}
	pb := types.Payment{Spender: h.id, Seq: seq, Beneficiary: benB, Amount: 1}
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(pa, h.sign(pa)))
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(pb, h.sign(pb)))
}

// ForgedSig submits a conflicting variant of settled history signed with
// the unregistered key. Under client auth the signature check rejects it
// (EdgeStats.BadSig); without auth the conflict screen does
// (EdgeStats.Conflicting) — it never settles either way.
func (h *HostileClient) ForgedSig(settled types.Payment) {
	p := settled
	p.Beneficiary++
	sig, _ := h.forgeKey.Sign(core.PaymentDigest(p))
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(p, sig))
}

// SpoofAs submits a payment claiming another client as spender. The
// sender-node check refuses it before any crypto (EdgeStats.Spoofed).
func (h *HostileClient) SpoofAs(victim types.ClientID, seq types.Seq, ben types.ClientID) {
	p := types.Payment{Spender: victim, Seq: seq, Beneficiary: ben, Amount: 1}
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(p, nil))
}

// WrongRepSubmit aims an otherwise-valid own payment at a replica that
// does not represent the spender — the cross-representative half of a
// double-spend (EdgeStats.WrongRep at the receiver).
func (h *HostileClient) WrongRepSubmit(p types.Payment) {
	h.send(transport.ReplicaNode(h.wrongRep), transport.ChanPayment, core.EncodeSubmit(p, h.sign(p)))
}

// SeqRace probes the sequence-number edges around SyncSeq: the
// never-settleable Seq 0 (EdgeStats.SeqZero) and a sequence far beyond
// the window (EdgeStats.FutureSeq) that would otherwise strand an
// unbounded gap queue.
func (h *HostileClient) SeqRace(ben types.ClientID) {
	p0 := types.Payment{Spender: h.id, Seq: 0, Beneficiary: ben, Amount: 1}
	pf := types.Payment{Spender: h.id, Seq: 1 << 40, Beneficiary: ben, Amount: 1}
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(p0, h.sign(p0)))
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSubmit(pf, h.sign(pf)))
	h.send(h.repNode(), transport.ChanPayment, core.EncodeSeqReq(h.id))
}

// Replay resends a captured byte-identical settled submit frame. The
// replica re-confirms instead of re-settling (EdgeStats.SettledReplay).
func (h *HostileClient) Replay(settledFrame []byte) {
	h.send(h.repNode(), transport.ChanPayment, settledFrame)
}

// CreditStorm aims hostile credit-channel traffic at the representative:
// forged NACKs for chains that never existed, a CREDIT claiming a
// replica signature, and a re-sign flood over settled history. All die
// at the sender-class check (EdgeStats.CreditOutsider) on Astro II; on
// Astro I the unregistered channel discards them at the mux.
func (h *HostileClient) CreditStorm(settled types.Payment) {
	h.send(h.repNode(), transport.ChanCredit, core.EncodeCreditNack(types.HashBytes([]byte("no-such-chain"))))
	h.send(h.repNode(), transport.ChanCredit, core.EncodeCreditForged(h.rep, []types.Payment{settled}, []byte("forged")))
	h.send(h.repNode(), transport.ChanCredit, core.EncodeCreditRedoRaw([][]types.Payment{{settled}}))
}

// Junk sends undecodable bytes and reflected control frames (a
// confirmation aimed *at* a replica) — both counted as malformed.
func (h *HostileClient) Junk() {
	h.send(h.repNode(), transport.ChanPayment, []byte{0xee, 0x01, 0xfe})
	h.send(h.repNode(), transport.ChanPayment, core.EncodeConfirm(types.PaymentID{Spender: h.id, Seq: 1}))
}

// Storm drives the full attack mix against the settled seed payment
// until stop closes; run it on its own goroutine. Volleys are paced to
// model a bandwidth-bounded attacker (~17 frames per 5ms, a few
// thousand hostile frames per second): the edge hardening bounds the
// *per-frame* cost and the *state* an attacker can occupy, not the raw
// packet rate of the attacker's uplink — an unpaced in-memory loop would
// just measure host scheduling, with every frame queued ahead of honest
// traffic on the shared inbound lanes.
func (h *HostileClient) Storm(stop <-chan struct{}, settled types.Payment, settledFrame []byte) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		h.Equivocate(settled.Seq+1, settled.Beneficiary, settled.Beneficiary+1)
		h.ForgedSig(settled)
		h.SpoofAs(settled.Beneficiary, 1, h.id)
		h.WrongRepSubmit(settled)
		h.SeqRace(settled.Beneficiary)
		h.Replay(settledFrame)
		h.CreditStorm(settled)
		h.Junk()
		time.Sleep(5 * time.Millisecond)
	}
}
