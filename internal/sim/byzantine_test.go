package sim

import (
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/transport"
	"astro/internal/types"
)

// byzCluster builds a 4-node Astro II deployment for adversarial runs.
// Sim crypto keeps acks in the single-slot wire form the equivocation
// harvest reads; forge-refs and NACK-storm runs flip realCrypto on so the
// chain-by-digest forms those behaviors attack actually engage.
func byzCluster(t *testing.T, seed uint64, realCrypto bool, dataDir string) *AstroCluster {
	t.Helper()
	c, err := NewAstroCluster(AstroOpts{
		Version:    core.AstroII,
		Topology:   shard.Topology{NumShards: 1, PerShard: 4},
		Latency:    fastLatency(),
		BatchSize:  8,
		BatchDelay: time.Millisecond,
		RealCrypto: realCrypto,
		Seed:       seed,
		DataDir:    dataDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func auditorFor(c *AstroCluster, faulty ...types.ReplicaID) *Auditor {
	fm := make(map[types.ReplicaID]bool, len(faulty))
	for _, id := range faulty {
		fm[id] = true
	}
	return c.NewAuditor(AuditorConfig{
		Clients: []types.ClientID{1, 2, 3, 4},
		Genesis: 1 << 40,
		Faulty:  fm,
	})
}

func requireCleanReport(t *testing.T, rep AuditReport) {
	t.Helper()
	if rep.Samples == 0 {
		t.Fatal("auditor never sampled")
	}
	for _, v := range rep.Violations {
		t.Errorf("invariant violation: %s", v)
	}
}

// TestByzantineFaultMatrix runs every Byzantine behavior with exactly f
// faulty replicas under the always-on auditor: the paper's tolerance
// claim says correct replicas keep every invariant, so the report must be
// empty — and the behavior's engagement counters prove the attack
// actually fired rather than idling.
func TestByzantineFaultMatrix(t *testing.T) {
	kinds := []FaultKind{
		FaultEquivocate, FaultWithholdCommits, FaultForgeRefs,
		FaultNackStorm, FaultStaleView,
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			real := kind == FaultForgeRefs || kind == FaultNackStorm
			dataDir := ""
			if kind == FaultStaleView {
				// Reconfig managers (the stale-view attack surface) are
				// only wired up on durable deployments.
				dataDir = t.TempDir()
			}
			c := byzCluster(t, 100+uint64(len(kind)), real, dataDir)
			target := c.RepOf(1)
			aud := auditorFor(c, target)
			aud.Start()
			if err := c.ArmFault(target, kind); err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			wg := runLoad(c, stop)
			time.Sleep(600 * time.Millisecond)
			close(stop)
			wg.Wait()
			requireCleanReport(t, aud.Stop())

			switch beh := c.Behavior(target).(type) {
			case *Equivocate:
				if beh.Equivocated.Load() == 0 {
					t.Error("no variant-B prepares sent: attack never engaged")
				}
				if beh.ForgedCommit.Load() != 0 {
					t.Errorf("%d forged commits with only f faulty: certB must starve below quorum",
						beh.ForgedCommit.Load())
				}
			case *WithholdCommits:
				if beh.Suppressed.Load() == 0 {
					t.Error("no commits suppressed: attack never engaged")
				}
			case *ForgeChainRefs:
				if beh.Corrupted.Load() == 0 {
					t.Error("no frames corrupted: chain wire forms never engaged")
				}
			case *NackStorm:
				if beh.Sent.Load() == 0 {
					t.Error("no NACKs sent: no chain-referencing traffic reached the attacker")
				}
			case *StaleViewReconfig:
				if beh.Volleys.Load() == 0 {
					t.Error("no stale-view volleys sent: attack never engaged")
				}
			default:
				t.Fatalf("unexpected behavior %T", beh)
			}
		})
	}
}

// TestEquivocationBreaksAtFPlusOne is the other half of the tolerance
// claim: with f+1 colluding replicas — an equivocator plus an AckAll
// accomplice that signs both variants — a conflicting certificate reaches
// the 2f+1 quorum, the victim settles variant B while the remaining
// correct replica settles A, and the auditor must report the agreement
// violation. The documented degradation, observed.
func TestEquivocationBreaksAtFPlusOne(t *testing.T) {
	c := byzCluster(t, 31, false, "")
	equiv := c.RepOf(1)

	// Cast the remaining three replicas: one accomplice, one victim, one
	// bystander that stays honest and converges on variant A.
	var accomplice, victim types.ReplicaID
	picked := 0
	for _, id := range c.ReplicaIDs() {
		if id == equiv {
			continue
		}
		switch picked {
		case 0:
			accomplice = id
		case 1:
			victim = id
		}
		picked++
	}

	if err := c.SetBehavior(equiv, &Equivocate{
		Self:                equiv,
		Keys:                c.Keys(equiv),
		Quorum:              c.Quorum(),
		Victims:             map[transport.NodeID]bool{transport.ReplicaNode(victim): true},
		Accomplices:         map[transport.NodeID]bool{transport.ReplicaNode(accomplice): true},
		WithholdFromVictims: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBehavior(accomplice, &AckAll{
		Self: accomplice,
		Keys: c.Keys(accomplice),
	}); err != nil {
		t.Fatal(err)
	}

	aud := auditorFor(c, equiv, accomplice)
	aud.Start()

	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	rep := aud.Stop()

	eb := c.Behavior(equiv).(*Equivocate)
	if eb.ForgedCommit.Load() == 0 {
		t.Fatal("no forged commit emitted: the colluding certificate never completed")
	}
	agreement := 0
	for _, v := range rep.Violations {
		if v.Invariant == "agreement" {
			agreement++
		}
	}
	if agreement == 0 {
		t.Errorf("f+1 equivocation went undetected: %d violations, none for agreement (forged commits: %d)",
			len(rep.Violations), eb.ForgedCommit.Load())
	}
}

// TestTimelineByzantine wires a Byzantine fault kind through the
// experiment harness: the run completes, the auditor samples throughout,
// and an f-tolerated attack leaves no violations on the result.
func TestTimelineByzantine(t *testing.T) {
	res, err := Timeline(TimelineConfig{
		System:   SystemAstroII,
		N:        4,
		Clients:  4,
		Window:   2 * time.Second,
		FaultAt:  500 * time.Millisecond,
		Fault:    FaultWithholdCommits,
		Target:   TargetRandom,
		BinWidth: 250 * time.Millisecond,
		Seed:     8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditSamples == 0 {
		t.Error("timeline ran without auditor samples")
	}
	for _, v := range res.AuditViolations {
		t.Errorf("violation under f faulty: %s", v)
	}
	var pre float64
	for _, r := range res.Rates[:2] {
		pre += r
	}
	if pre == 0 {
		t.Error("no pre-fault throughput")
	}

	if _, err := Timeline(TimelineConfig{
		System: SystemConsensus, N: 4, Clients: 1,
		Window: time.Second, Fault: FaultEquivocate,
	}); err == nil {
		t.Error("consensus baseline must reject Byzantine fault kinds")
	}
}

// TestTimelineLinkDelays pins the asymmetric per-link delay extension:
// rules apply at FaultAt on top of the base fault and the run completes.
func TestTimelineLinkDelays(t *testing.T) {
	res, err := Timeline(TimelineConfig{
		System:  SystemAstroII,
		N:       4,
		Clients: 4,
		Window:  1500 * time.Millisecond,
		FaultAt: 500 * time.Millisecond,
		Fault:   FaultDelay,
		Delay:   20 * time.Millisecond,
		LinkDelays: []DelayRule{
			{From: 1, To: 2, Delay: 30 * time.Millisecond},
			{From: 2, To: 1, Delay: 5 * time.Millisecond},
		},
		Target:   TargetRandom,
		BinWidth: 250 * time.Millisecond,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range res.Rates {
		total += r
	}
	if total == 0 {
		t.Error("no throughput under link delays")
	}
	for _, v := range res.AuditViolations {
		t.Errorf("violation under delay faults: %s", v)
	}
}
