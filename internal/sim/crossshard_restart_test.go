package sim

import (
	"os"
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/types"
)

// TestCrossShardCreditRescan exercises the one recovery path a replica's
// own WAL can never cover: a representative that loses a cross-shard
// dependency certificate cannot even *name* the payment it is missing,
// because the spender's xlog lives in another shard and representatives
// never hold foreign xlogs. The restarted representative therefore asks
// the foreign shard to rescan on its behalf (CREDITRESCAN, routed via
// the Config.ShardMembers directory), and the spender's shard re-signs
// every settled payment benefiting the requester's clients.
//
// The loss is made deterministic by wiping the victim's data directory
// outright before the restart — the strongest form of the fault, and
// immune to the WAL having happened to sync the certificate before the
// kill. The recovered certificate is then proven genuine by spending
// above genesis: the payment verifies only if the re-signed f+1
// dependency certificate convinces every shard-1 replica.
func TestCrossShardCreditRescan(t *testing.T) {
	top := shard.Topology{NumShards: 2, PerShard: 4}
	c, err := NewAstroCluster(AstroOpts{
		Version:            core.AstroII,
		Topology:           top,
		Latency:            fastLatency(),
		BatchSize:          4,
		BatchDelay:         time.Millisecond,
		Seed:               31,
		Genesis:            1000,
		DataDir:            t.TempDir(),
		WALSnapshotEvery:   4,
		StateCacheAccounts: 4, // paging on: rescan must work against paged state
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	// Client 2 lives in shard 0, client 1 in shard 1; its representative
	// is the victim.
	if !top.CrossShard(2, 1) {
		t.Fatal("test precondition: 2->1 must be cross-shard")
	}
	victim := top.RepOf(1)

	waitBalance := func(cl types.ClientID, want types.Amount, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for c.Replica(victim).Balance(cl) != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: balance(%d) = %d at replica %d, want %d",
					what, cl, c.Replica(victim).Balance(cl), victim, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	spender := c.Client(2)
	id, err := spender.Pay(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := spender.WaitConfirm(id, 15*time.Second); err != nil {
		t.Fatalf("confirm cross-shard payment: %v", err)
	}
	waitBalance(1, 1030, "pre-kill credit accumulation")

	// kill -9, then erase every trace of the victim's durable state: the
	// WAL, the KV store, and with them the dependency certificate. The
	// restart rebuilds from genesis plus a shard-1 snapshot — neither of
	// which knows the shard-0 payment existed.
	c.Kill(victim)
	if err := os.RemoveAll(c.replicaDir(victim)); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	waitBalance(1, 1030, "post-wipe rescan recovery")

	// Spend above genesis out of the recovered credit: 1010 > 1000 is
	// affordable only with the certificate, and settles only if all
	// shard-1 replicas accept its re-signed shard-0 signatures.
	bob := c.Client(1)
	id, err = bob.Pay(3, 1010)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.WaitConfirm(id, 15*time.Second); err != nil {
		t.Fatalf("confirm spend of recovered credit: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for _, rid := range top.Replicas(1) {
		for c.Replica(rid).Balance(1) != 20 {
			if time.Now().After(deadline) {
				t.Fatalf("shard-1 replica %d: balance(1) = %d, want 20",
					rid, c.Replica(rid).Balance(1))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if err := c.Replica(victim).PagerErr(); err != nil {
		t.Errorf("restarted replica pager error: %v", err)
	}
	if cnt := c.Replica(victim).Counters(); cnt.Conflicts != 0 {
		t.Errorf("restarted replica observed %d conflicts", cnt.Conflicts)
	}
}
