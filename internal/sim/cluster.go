// Package sim assembles complete in-process deployments of the three
// systems under evaluation — Astro I, Astro II, and the consensus baseline
// — over the simulated network, and implements the paper's experiments
// (one function per figure/table) on top of them.
//
// The package is the shared engine behind cmd/astro-bench and the
// root-level benchmarks.
package sim

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"astro/internal/consensus"
	"astro/internal/core"
	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/reconfig"
	"astro/internal/sched"
	"astro/internal/shard"
	"astro/internal/transport"
	"astro/internal/transport/chaos"
	"astro/internal/transport/memnet"
	"astro/internal/types"
	"astro/internal/wal"
)

// AstroOpts configures an Astro deployment.
type AstroOpts struct {
	// Version selects Astro I or Astro II.
	Version core.Version
	// Topology partitions replicas into shards; use {1, N} for the
	// non-sharded experiments.
	Topology shard.Topology
	// Latency is the link latency model. Defaults to memnet.EuropeWAN().
	Latency memnet.LatencyModel
	// BatchSize and BatchDelay tune representative batching (paper: 256).
	BatchSize  int
	BatchDelay time.Duration
	// Genesis is the flat initial balance for every client. The paper's
	// experiments assume clients can always settle immediately.
	Genesis types.Amount
	// ShardOf and RepOf override the topology's default client maps
	// (used by Smallbank's account scheme). Optional.
	ShardOf func(types.ClientID) types.ShardID
	RepOf   func(types.ClientID) types.ReplicaID
	// Bandwidth is the per-node egress capacity in bytes/sec; 0 selects
	// the paper's ~30 MiB/s, negative disables the bandwidth model.
	Bandwidth float64
	// StateStripes is the settlement-state stripe count per replica
	// (core.Config.StateStripes): 0 selects the default, 1 the
	// global-lock baseline kept for contention measurements.
	StateStripes int
	// RealCrypto uses real ECDSA signatures instead of the simulated
	// constant-time authenticators. The simulation shares one host CPU
	// across all replicas, whereas the paper gave every replica its own
	// cores and found Astro II bandwidth-bound, not CPU-bound (§VI-A);
	// simulated authenticators (with ECDSA-like wire sizes) restore that
	// regime. The library itself always uses real ECDSA — this knob only
	// exists in the experiment harness.
	RealCrypto bool
	// Seed feeds the network jitter generator.
	Seed uint64
	// DataDir enables durable replica state: each replica appends to a
	// write-ahead log under DataDir/rep<id>, Kill models a kill -9, and
	// Restart rebuilds the replica from its log plus peer state transfer.
	// Empty keeps replicas memory-only (the default for throughput
	// experiments, where durability I/O is a separate axis).
	DataDir string
	// WALSnapshotEvery is the compaction cadence (core.Config); 0 keeps
	// the core default.
	WALSnapshotEvery int
	// StateCacheAccounts bounds resident accounts per replica
	// (core.Config.StateCacheAccounts): cold accounts page to the WAL's
	// embedded KV store and snapshots become incremental. Requires
	// DataDir; 0 keeps every account resident.
	StateCacheAccounts int
	// Chaos, when non-nil, interposes the chaos controller on every
	// replica and client endpoint: seeded drop/corrupt/duplicate/delay
	// rules, schedules, and partitions on top of the latency model. See
	// internal/transport/chaos.
	Chaos *chaos.Controller
	// ClientAuth enables end-to-end client payment signatures: a shared
	// client-key registry is installed on every replica, each client gets
	// a key pair registered on first use, and Client returns signing
	// clients. Byzantine-client scenarios want it on — a forged payment
	// signature is only rejectable when signatures are checked at all.
	ClientAuth bool
}

// DefaultBandwidth matches the paper's measured ~30 MiB/s between EC2
// regions; frameOverhead approximates per-message TCP/IP framing.
const (
	DefaultBandwidth = 30 << 20
	frameOverhead    = 64
)

func networkFor(latency memnet.LatencyModel, bandwidth float64, seed uint64) *memnet.Network {
	opts := []memnet.Option{memnet.WithLatency(latency), memnet.WithSeed(seed)}
	if bandwidth == 0 {
		bandwidth = DefaultBandwidth
	}
	if bandwidth > 0 {
		opts = append(opts, memnet.WithBandwidth(bandwidth, frameOverhead))
	}
	return memnet.New(opts...)
}

// AstroCluster is a running Astro deployment.
type AstroCluster struct {
	Net      *memnet.Network
	Topology shard.Topology
	Replicas map[types.ReplicaID]*core.Replica

	repOf   func(types.ClientID) types.ReplicaID
	clients map[types.ClientID]*core.Client
	muxes   []*transport.Mux
	rt      *sched.Runtime
	version core.Version
	keys    map[types.ReplicaID]*crypto.KeyPair
	chaos   *chaos.Controller
	byz     map[types.ReplicaID]*byzEndpoint

	// Client-auth deployment state (AstroOpts.ClientAuth): the shared
	// public-key registry every replica verifies against, and the private
	// halves handed to clients as they are created.
	clientReg  *crypto.ClientKeys
	clientKeys map[types.ClientID]*crypto.KeyPair

	// stateMu guards the replica bookkeeping maps against concurrent
	// Restart (which replaces entries in place) — the auditor and the
	// measurement loop read them from their own goroutines.
	stateMu sync.RWMutex

	// Durable-deployment bookkeeping (DataDir set): everything Restart
	// needs to rebuild a replica in place.
	dataDir string
	cfgs    map[types.ReplicaID]core.Config
	repMux  map[types.ReplicaID]*transport.Mux
}

// NewAstroCluster builds and starts a deployment.
func NewAstroCluster(opts AstroOpts) (*AstroCluster, error) {
	if err := opts.Topology.Validate(); err != nil {
		return nil, err
	}
	if opts.Latency == nil {
		opts.Latency = memnet.EuropeWAN()
	}
	if opts.Genesis == 0 {
		opts.Genesis = 1 << 40
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	net := networkFor(opts.Latency, opts.Bandwidth, opts.Seed)

	// All replicas of the in-process deployment share one lane runtime
	// sized to the host — transport dispatch, settlement stripe fan-out,
	// and the verification pool all execute on the same lanes: the
	// simulation multiplexes every replica onto the same cores, so
	// per-replica substrates would only oversubscribe.
	rt := sched.Default()
	ver := verifier.Default()

	master := []byte("astro-sim-master")
	registry := crypto.NewRegistry()
	registry.EnableSim(master)
	keys := make(map[types.ReplicaID]*crypto.KeyPair)
	for _, r := range opts.Topology.AllReplicas() {
		if opts.RealCrypto {
			keys[r] = crypto.MustGenerateKeyPair()
			registry.Add(r, keys[r].Public())
		} else {
			keys[r] = crypto.NewSimKeyPair(r, master)
			registry.AddSim(r)
		}
	}

	shardOf := opts.ShardOf
	if shardOf == nil {
		shardOf = opts.Topology.ShardOf
	}
	repOf := opts.RepOf
	if repOf == nil {
		repOf = opts.Topology.RepOf
	}
	genesis := func(types.ClientID) types.Amount { return opts.Genesis }
	allShards := make([]types.ShardID, opts.Topology.NumShards)
	for i := range allShards {
		allShards[i] = types.ShardID(i)
	}

	c := &AstroCluster{
		Net:      net,
		Topology: opts.Topology,
		Replicas: make(map[types.ReplicaID]*core.Replica),
		repOf:    repOf,
		clients:  make(map[types.ClientID]*core.Client),
		rt:       rt,
		version:  opts.Version,
		keys:     keys,
		chaos:    opts.Chaos,
		byz:      make(map[types.ReplicaID]*byzEndpoint),
		dataDir:  opts.DataDir,
		cfgs:     make(map[types.ReplicaID]core.Config),
		repMux:   make(map[types.ReplicaID]*transport.Mux),
	}
	if opts.ClientAuth {
		c.clientReg = crypto.NewClientKeys()
		c.clientKeys = make(map[types.ClientID]*crypto.KeyPair)
	}
	for s := 0; s < opts.Topology.NumShards; s++ {
		members := opts.Topology.Replicas(types.ShardID(s))
		for _, id := range members {
			mux := transport.NewMux(c.wrapReplicaEndpoint(id), transport.WithRuntime(rt))
			c.muxes = append(c.muxes, mux)
			cfg := core.Config{
				Version:      opts.Version,
				Self:         id,
				Replicas:     members,
				F:            opts.Topology.F(),
				Mux:          mux,
				RepOf:        repOf,
				ShardOf:      shardOf,
				ReplicaShard: opts.Topology.ReplicaShard,
				ShardMembers: opts.Topology.Directory(),
				Shards:       allShards,
				Genesis:      genesis,
				BatchSize:    opts.BatchSize,
				BatchDelay:   opts.BatchDelay,
				StateStripes: opts.StateStripes,
				Sched:        rt,
				Auth:         crypto.NewLinkAuthenticator(id, master),
				Keys:         keys[id],
				Registry:     registry,
				Verifier:     ver,
				ClientKeys:   c.clientReg,
			}
			if opts.DataDir != "" {
				be, err := wal.OpenAuto(c.replicaDir(id), opts.StateCacheAccounts > 0)
				if err != nil {
					net.Close()
					return nil, fmt.Errorf("sim: replica %d: %w", id, err)
				}
				cfg.WAL = be
				cfg.WALSnapshotEvery = opts.WALSnapshotEvery
				cfg.StateCacheAccounts = opts.StateCacheAccounts
			}
			rep, err := core.NewReplica(cfg)
			if err != nil {
				net.Close()
				return nil, fmt.Errorf("sim: replica %d: %w", id, err)
			}
			c.Replicas[id] = rep
			c.cfgs[id] = cfg
			c.repMux[id] = mux
			if opts.DataDir != "" {
				// Durable deployments serve full-state transfer to
				// recovering peers on the reconfiguration channel.
				reconfig.NewManager(reconfig.Config{
					Self: id, Mux: mux, Keys: keys[id], Registry: registry,
					InitialView: reconfig.View{Num: 1, Members: members},
					Full:        rep,
				})
			}
		}
	}
	return c, nil
}

func (c *AstroCluster) replicaDir(id types.ReplicaID) string {
	return filepath.Join(c.dataDir, fmt.Sprintf("rep%d", id))
}

// wrapReplicaEndpoint builds a replica's endpoint stack: raw network
// node, then the chaos controller (if configured), then the Byzantine
// interposer — so a faulty replica's forged traffic still rides the
// chaos rules and the latency model like honest traffic. The interposer
// is always present (inert until armed) and survives across Restart: the
// same byzEndpoint is re-pointed at the rebuilt inner stack, so an armed
// behavior stays armed through a kill/restart cycle.
func (c *AstroCluster) wrapReplicaEndpoint(id types.ReplicaID) transport.Endpoint {
	var ep transport.Endpoint = c.Net.Node(transport.ReplicaNode(id))
	if c.chaos != nil {
		ep = c.chaos.Wrap(ep)
	}
	bz := newByzEndpoint(ep)
	c.stateMu.Lock()
	if old, ok := c.byz[id]; ok {
		if b := old.behavior.Load(); b != nil {
			bz.behavior.Store(b)
		}
	}
	c.byz[id] = bz
	c.stateMu.Unlock()
	return bz
}

// SetBehavior arms (or with nil disarms) a Byzantine behavior on a
// replica's endpoint, effective immediately — mid-run, mid-broadcast.
func (c *AstroCluster) SetBehavior(id types.ReplicaID, b Behavior) error {
	c.stateMu.RLock()
	bz, ok := c.byz[id]
	c.stateMu.RUnlock()
	if !ok {
		return fmt.Errorf("sim: unknown replica %d", id)
	}
	bz.Set(b)
	return nil
}

// Behavior returns the Byzantine behavior currently armed on a replica's
// endpoint (nil when disarmed or unknown) — scenario code reads its
// engagement counters.
func (c *AstroCluster) Behavior(id types.ReplicaID) Behavior {
	c.stateMu.RLock()
	bz, ok := c.byz[id]
	c.stateMu.RUnlock()
	if !ok {
		return nil
	}
	if bp := bz.behavior.Load(); bp != nil {
		return *bp
	}
	return nil
}

// Replica returns a replica handle under the state lock (safe against a
// concurrent Restart); nil if unknown.
func (c *AstroCluster) Replica(id types.ReplicaID) *core.Replica {
	c.stateMu.RLock()
	defer c.stateMu.RUnlock()
	return c.Replicas[id]
}

// ReplicaIDs returns every replica identity in the deployment, sorted.
func (c *AstroCluster) ReplicaIDs() []types.ReplicaID {
	return c.Topology.AllReplicas()
}

// Crashed reports whether a replica is currently crash-stopped.
func (c *AstroCluster) Crashed(id types.ReplicaID) bool {
	return c.Net.Crashed(transport.ReplicaNode(id))
}

// Keys exposes a replica's key pair — Byzantine behaviors sign
// equivocating variants with the faulty replica's own key.
func (c *AstroCluster) Keys(id types.ReplicaID) *crypto.KeyPair { return c.keys[id] }

// Chaos returns the cluster's chaos controller (nil when not configured).
func (c *AstroCluster) Chaos() *chaos.Controller { return c.chaos }

// Quorum returns the 2f+1 commit quorum of a replica's shard.
func (c *AstroCluster) Quorum() int { return 2*c.Topology.F() + 1 }

// Kill crash-stops a replica the way kill -9 does: the network drops its
// traffic and the process state — including write-ahead-log appends not
// yet synced — is discarded without any flush.
func (c *AstroCluster) Kill(id types.ReplicaID) {
	c.Net.Crash(transport.ReplicaNode(id))
	c.stateMu.RLock()
	r, rok := c.Replicas[id]
	m, mok := c.repMux[id]
	c.stateMu.RUnlock()
	if rok {
		r.Abandon()
	}
	if mok {
		m.Close()
	}
}

// Restart rebuilds a killed replica in place: replay the data directory's
// snapshot and log tail, rejoin the network on the same endpoint, and
// fetch a full snapshot from a live peer to merge the settlement suffix
// missed while down (Astro broadcasts are never retransmitted, so state
// transfer is the only way to learn it). A fetch timeout is tolerated —
// with every peer down the replica still comes back from its own log.
func (c *AstroCluster) Restart(id types.ReplicaID) error {
	if c.dataDir == "" {
		return errors.New("sim: Restart requires AstroOpts.DataDir")
	}
	c.stateMu.RLock()
	cfg, ok := c.cfgs[id]
	c.stateMu.RUnlock()
	if !ok {
		return fmt.Errorf("sim: unknown replica %d", id)
	}
	node := transport.ReplicaNode(id)
	c.Net.Restore(node)
	be, err := wal.OpenAuto(c.replicaDir(id), cfg.StateCacheAccounts > 0)
	if err != nil {
		return fmt.Errorf("sim: restart %d: %w", id, err)
	}
	mux := transport.NewMux(c.wrapReplicaEndpoint(id), transport.WithRuntime(c.rt))
	c.muxes = append(c.muxes, mux)
	cfg.Mux = mux
	cfg.WAL = be
	rep, err := core.NewReplica(cfg)
	if err != nil {
		return fmt.Errorf("sim: restart %d: %w", id, err)
	}
	peers := make([]types.ReplicaID, 0, len(cfg.Replicas)-1)
	for _, p := range cfg.Replicas {
		if p != id && !c.Net.Crashed(transport.ReplicaNode(p)) {
			peers = append(peers, p)
		}
	}
	if len(peers) > 0 {
		// FetchState temporarily owns the reconfiguration channel; the
		// manager below takes it over once the catch-up is done.
		snap, ferr := reconfig.FetchState(reconfig.FetchConfig{
			Mux: mux, Peers: peers, Timeout: 15 * time.Second,
		})
		if ferr == nil {
			if merr := rep.MergeFullSnapshot(snap); merr != nil {
				return fmt.Errorf("sim: restart %d: merge: %w", id, merr)
			}
		} else if !errors.Is(ferr, reconfig.ErrFetchTimeout) {
			return fmt.Errorf("sim: restart %d: fetch: %w", id, ferr)
		}
	}
	reconfig.NewManager(reconfig.Config{
		Self: id, Mux: mux, Keys: cfg.Keys, Registry: cfg.Registry,
		InitialView: reconfig.View{Num: 1, Members: cfg.Replicas},
		Full:        rep,
	})
	c.stateMu.Lock()
	c.Replicas[id] = rep
	c.cfgs[id] = cfg
	c.repMux[id] = mux
	c.stateMu.Unlock()
	return nil
}

// AntiEntropy merges a live peer's full snapshot into replica id — the
// final convergence step an operator runs after an outage window, closing
// the gap for deliveries that committed while the replica was down but
// after its restart-time state fetch.
func (c *AstroCluster) AntiEntropy(id, donor types.ReplicaID) error {
	rep, ok := c.Replicas[id]
	if !ok {
		return fmt.Errorf("sim: unknown replica %d", id)
	}
	d, ok := c.Replicas[donor]
	if !ok {
		return fmt.Errorf("sim: unknown replica %d", donor)
	}
	return rep.MergeFullSnapshot(d.FullSnapshot())
}

// Client returns (creating on first use) the client with the given id.
// On a ClientAuth deployment the client signs every payment with a key
// registered on creation.
func (c *AstroCluster) Client(id types.ClientID) *core.Client {
	if cl, ok := c.clients[id]; ok {
		return cl
	}
	mux := c.clientMux(id)
	var cl *core.Client
	if c.clientReg != nil {
		cl = core.NewAuthClient(id, c.repOf, mux, c.ClientKey(id))
	} else {
		cl = core.NewClient(id, c.repOf, mux)
	}
	c.clients[id] = cl
	return cl
}

// clientMux builds a mux on a client's transport node, chaos-wrapped
// like every other endpoint. One mux per node: a second would steal the
// first's endpoint handler.
func (c *AstroCluster) clientMux(id types.ClientID) *transport.Mux {
	var ep transport.Endpoint = c.Net.Node(transport.ClientNode(id))
	if c.chaos != nil {
		ep = c.chaos.Wrap(ep)
	}
	mux := transport.NewMux(ep)
	c.muxes = append(c.muxes, mux)
	return mux
}

// ClientKey returns (generating and registering on first use) a client's
// signing key pair. Only valid on ClientAuth deployments — hostile
// clients use it to model a *corrupted* client that equivocates under
// its own genuine key.
func (c *AstroCluster) ClientKey(id types.ClientID) *crypto.KeyPair {
	if c.clientReg == nil {
		return nil
	}
	if kp, ok := c.clientKeys[id]; ok {
		return kp
	}
	kp := crypto.MustGenerateKeyPair()
	c.clientKeys[id] = kp
	c.clientReg.Add(id, kp.Public())
	return kp
}

// ClientRegistry exposes the shared client-key registry (nil unless
// ClientAuth).
func (c *AstroCluster) ClientRegistry() *crypto.ClientKeys { return c.clientReg }

// RepOf exposes the representative mapping.
func (c *AstroCluster) RepOf(id types.ClientID) types.ReplicaID { return c.repOf(id) }

// Crash crash-stops a replica.
func (c *AstroCluster) Crash(r types.ReplicaID) { c.Net.Crash(transport.ReplicaNode(r)) }

// Delay injects netem-style outbound delay at a replica.
func (c *AstroCluster) Delay(r types.ReplicaID, d time.Duration) {
	c.Net.SetNodeDelay(transport.ReplicaNode(r), d)
}

// TotalSettled sums settles across replicas (each payment counts once per
// replica; divide by replica count for per-payment figures).
func (c *AstroCluster) TotalSettled() uint64 {
	c.stateMu.RLock()
	defer c.stateMu.RUnlock()
	var sum uint64
	for _, r := range c.Replicas {
		sum += r.SettledCount()
	}
	return sum
}

// SchedStats snapshots the lane runtime the deployment executes on —
// per-lane queue depths, executed/stolen task counts, and queue-latency
// EWMAs. The experiment harness samples it to report how evenly dispatch,
// settlement, and crypto work spread across the lanes.
func (c *AstroCluster) SchedStats() sched.Stats {
	return c.rt.Stats()
}

// CreditRefStats aggregates the credit-channel chain-reference counters
// across replicas (PR 4): defs/refs sent, reference cache hits/misses,
// and NACK fallback traffic — the experiment harness samples it to report
// how often the wire amortization engaged vs degraded to the legacy form.
func (c *AstroCluster) CreditRefStats() core.CreditRefStats {
	c.stateMu.RLock()
	defer c.stateMu.RUnlock()
	var sum core.CreditRefStats
	for _, r := range c.Replicas {
		sum.Add(r.CreditRefStats())
	}
	return sum
}

// Close shuts the deployment down: the network stops delivering, every
// mux drains its in-flight handlers, and the replicas release their
// scheduler flows (the lane runtime is shared and keeps running).
func (c *AstroCluster) Close() {
	c.Net.Close()
	for _, m := range c.muxes {
		m.Close()
	}
	for _, r := range c.Replicas {
		r.Close()
	}
}

// ConsensusOpts configures a consensus-baseline deployment.
type ConsensusOpts struct {
	// N is the replica count.
	N int
	// Latency is the link latency model. Defaults to memnet.EuropeWAN().
	Latency memnet.LatencyModel
	// BatchSize and BatchDelay tune leader batching.
	BatchSize  int
	BatchDelay time.Duration
	// RequestTimeout is the view-change suspicion timeout.
	RequestTimeout time.Duration
	// ViewChangeSyncCost models the new leader's synchronization work
	// (zero selects the default, which scales with N).
	ViewChangeSyncCost time.Duration
	// Genesis is the flat initial balance for every client.
	Genesis types.Amount
	// Bandwidth is the per-node egress capacity in bytes/sec; 0 selects
	// the paper's ~30 MiB/s, negative disables the bandwidth model.
	Bandwidth float64
	// Seed feeds the network jitter generator.
	Seed uint64
}

// ConsensusCluster is a running consensus-baseline deployment.
type ConsensusCluster struct {
	Net      *memnet.Network
	Replicas []*consensus.Replica
	IDs      []types.ReplicaID
	F        int

	clients map[types.ClientID]*consensus.Client
	muxes   []*transport.Mux
}

// NewConsensusCluster builds and starts a deployment.
func NewConsensusCluster(opts ConsensusOpts) (*ConsensusCluster, error) {
	if opts.N < 4 {
		return nil, fmt.Errorf("sim: consensus needs N >= 4, got %d", opts.N)
	}
	if opts.Latency == nil {
		opts.Latency = memnet.EuropeWAN()
	}
	if opts.Genesis == 0 {
		opts.Genesis = 1 << 40
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	net := networkFor(opts.Latency, opts.Bandwidth, opts.Seed)
	c := &ConsensusCluster{
		Net:     net,
		F:       types.MaxFaults(opts.N),
		clients: make(map[types.ClientID]*consensus.Client),
	}
	for i := 0; i < opts.N; i++ {
		c.IDs = append(c.IDs, types.ReplicaID(i))
	}
	genesis := func(types.ClientID) types.Amount { return opts.Genesis }
	for i := 0; i < opts.N; i++ {
		mux := transport.NewMux(net.Node(transport.ReplicaNode(types.ReplicaID(i))))
		c.muxes = append(c.muxes, mux)
		r, err := consensus.New(consensus.Config{
			Self:               types.ReplicaID(i),
			Replicas:           c.IDs,
			F:                  c.F,
			Mux:                mux,
			Genesis:            genesis,
			BatchSize:          opts.BatchSize,
			BatchDelay:         opts.BatchDelay,
			RequestTimeout:     opts.RequestTimeout,
			ViewChangeSyncCost: opts.ViewChangeSyncCost,
			// BFT-SMaRt authenticates channels with MACs, like Astro I.
			Auth:     crypto.NewLinkAuthenticator(types.ReplicaID(i), []byte("astro-sim-master")),
			Verifier: verifier.Default(),
		})
		if err != nil {
			net.Close()
			return nil, fmt.Errorf("sim: consensus replica %d: %w", i, err)
		}
		c.Replicas = append(c.Replicas, r)
	}
	return c, nil
}

// Client returns (creating on first use) the client with the given id.
func (c *ConsensusCluster) Client(id types.ClientID) *consensus.Client {
	if cl, ok := c.clients[id]; ok {
		return cl
	}
	mux := transport.NewMux(c.Net.Node(transport.ClientNode(id)))
	c.muxes = append(c.muxes, mux)
	cl := consensus.NewClient(id, c.IDs, c.F, mux)
	c.clients[id] = cl
	return cl
}

// Leader returns the leader of view 0 (replica 0).
func (c *ConsensusCluster) Leader() types.ReplicaID { return c.IDs[0] }

// Crash crash-stops a replica.
func (c *ConsensusCluster) Crash(r types.ReplicaID) { c.Net.Crash(transport.ReplicaNode(r)) }

// Delay injects netem-style outbound delay at a replica.
func (c *ConsensusCluster) Delay(r types.ReplicaID, d time.Duration) {
	c.Net.SetNodeDelay(transport.ReplicaNode(r), d)
}

// Close shuts the deployment down.
func (c *ConsensusCluster) Close() {
	c.Net.Close()
	for _, m := range c.muxes {
		m.Close()
	}
}
