package sim

import (
	"sync"
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/types"
)

// durableCluster builds a 4-node Astro II deployment with file-backed
// WALs under a test temp dir and an aggressive compaction cadence.
func durableCluster(t *testing.T, seed uint64) *AstroCluster {
	t.Helper()
	c, err := NewAstroCluster(AstroOpts{
		Version:          core.AstroII,
		Topology:         shard.Topology{NumShards: 1, PerShard: 4},
		Latency:          fastLatency(),
		BatchSize:        8,
		BatchDelay:       time.Millisecond,
		Seed:             seed,
		DataDir:          t.TempDir(),
		WALSnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// runLoad drives fixed-shape closed-loop payments (client i always pays
// client i%4+1 one unit) from 4 clients until stop closes. Fixed shapes
// make a reissued sequence number byte-identical to the original, so a
// payment endorsed just before a kill can be re-driven after the restart
// without tripping the no-double-endorsement rule.
func runLoad(c *AstroCluster, stop <-chan struct{}) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		cl := c.Client(types.ClientID(i))
		ben := types.ClientID(i%4 + 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := cl.Pay(ben, 1)
				if err != nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				if err := cl.WaitConfirm(id, 500*time.Millisecond); err != nil {
					// The representative may be down; resynchronize the
					// sequence number with whatever it (or its restarted
					// incarnation) has settled and re-drive.
					cl.SyncSeq(time.Second)
				}
			}
		}()
	}
	return &wg
}

// spendableTotal sums every client's balance as seen by its own
// representative — the only replica that also counts dependency
// certificates awaiting attachment.
func spendableTotal(c *AstroCluster) types.Amount {
	var sum types.Amount
	for i := 1; i <= 4; i++ {
		cl := types.ClientID(i)
		sum += c.Replicas[c.RepOf(cl)].Balance(cl)
	}
	return sum
}

// waitConverged polls until all replicas agree on every client's xlog.
func waitConverged(t *testing.T, c *AstroCluster, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ok := true
	check:
		for i := 1; i <= 4; i++ {
			cl := types.ClientID(i)
			var want []types.Payment
			for _, r := range c.Replicas {
				log := r.XLogSnapshot(cl)
				if want == nil {
					want = log
					continue
				}
				if len(log) != len(want) {
					ok = false
					break check
				}
				for j := range log {
					if log[j] != want[j] {
						ok = false
						break check
					}
				}
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for i := 1; i <= 4; i++ {
				cl := types.ClientID(i)
				for id, r := range c.Replicas {
					t.Logf("replica %d: xlog(%d) len %d", id, cl, len(r.XLogSnapshot(cl)))
				}
			}
			t.Fatal("xlogs never converged across replicas")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// assertSafety checks the restart-independent invariants on every
// replica: per-spender FIFO sequence numbers and zero observed
// equivocations (a replica that forgot an endorsement across a restart
// and endorsed a conflicting payment would surface here).
func assertSafety(t *testing.T, c *AstroCluster) {
	t.Helper()
	for id, r := range c.Replicas {
		for i := 1; i <= 4; i++ {
			cl := types.ClientID(i)
			for j, p := range r.XLogSnapshot(cl) {
				if p.Seq != types.Seq(j+1) {
					t.Fatalf("replica %d: client %d xlog[%d].Seq = %d, want %d (FIFO hole)",
						id, cl, j, p.Seq, j+1)
				}
			}
		}
		if cnt := r.Counters(); cnt.Conflicts != 0 {
			t.Errorf("replica %d: %d equivocation conflicts", id, cnt.Conflicts)
		}
	}
}

// TestKillRestartMidLoad kills a representative mid-load with no flush,
// restarts it from its WAL while the load keeps running, and checks the
// cluster converges with FIFO xlogs, no double endorsements, and money
// conserved: after anti-entropy the restarted representative re-requests
// CREDIT signatures for any of its clients' settled-but-uncovered credits
// (CREDITREDO), so even certificates lost in the unsynced tail are
// eventually re-accumulated.
func TestKillRestartMidLoad(t *testing.T) {
	c := durableCluster(t, 11)
	victim := c.RepOf(1)
	genesisTotal := types.Amount(4) << 40

	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(250 * time.Millisecond)
	c.Kill(victim)
	time.Sleep(250 * time.Millisecond)
	if err := c.Restart(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Final anti-entropy from a healthy peer closes the window for
	// deliveries committed between the kill and the restart-time fetch.
	var donor types.ReplicaID
	for id := range c.Replicas {
		if id != victim {
			donor = id
			break
		}
	}
	if err := c.AntiEntropy(victim, donor); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}

	waitConverged(t, c, 10*time.Second)
	assertSafety(t, c)
	deadline := time.Now().Add(10 * time.Second)
	for {
		total := spendableTotal(c)
		if total > genesisTotal {
			t.Fatalf("money created: spendable total %d > genesis %d", total, genesisTotal)
		}
		if total == genesisTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spendable deficit %d never recovered (CREDITREDO failed)",
				genesisTotal-total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.Replicas[victim].WALErr(); err != nil {
		t.Errorf("restarted replica WAL error: %v", err)
	}
}

// TestKillRestartConservation kills from a quiesced (hence fully synced —
// the WAL tail-syncs as soon as appends drain) state, restarts under new
// load, and asserts strict conservation of money: every unit of genesis
// is spendable somewhere once traffic quiesces again.
func TestKillRestartConservation(t *testing.T) {
	c := durableCluster(t, 12)
	victim := c.RepOf(1)
	genesisTotal := types.Amount(4) << 40

	waitQuiescedConservation := func(phase string) {
		deadline := time.Now().Add(10 * time.Second)
		for spendableTotal(c) != genesisTotal {
			if time.Now().After(deadline) {
				t.Fatalf("%s: spendable total %d never returned to genesis %d",
					phase, spendableTotal(c), genesisTotal)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	waitConverged(t, c, 10*time.Second)
	waitQuiescedConservation("pre-kill")

	c.Kill(victim)
	stop = make(chan struct{})
	wg = runLoad(c, stop)
	time.Sleep(200 * time.Millisecond)
	if err := c.Restart(victim); err != nil {
		t.Fatalf("restart: %v", err)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	var donor types.ReplicaID
	for id := range c.Replicas {
		if id != victim {
			donor = id
			break
		}
	}
	if err := c.AntiEntropy(victim, donor); err != nil {
		t.Fatalf("anti-entropy: %v", err)
	}
	waitConverged(t, c, 10*time.Second)
	assertSafety(t, c)
	waitQuiescedConservation("post-restart")
}

// TestKillAtRandomPoint varies the kill instant across runs — the
// property half of the crash-recovery story: whatever the cut, the
// restarted replica must come back without safety violations.
func TestKillAtRandomPoint(t *testing.T) {
	for i, killAfter := range []time.Duration{
		30 * time.Millisecond, 110 * time.Millisecond, 260 * time.Millisecond,
	} {
		c := durableCluster(t, 20+uint64(i))
		victim := c.RepOf(1)
		genesisTotal := types.Amount(4) << 40

		stop := make(chan struct{})
		wg := runLoad(c, stop)
		time.Sleep(killAfter)
		c.Kill(victim)
		time.Sleep(50 * time.Millisecond)
		close(stop)
		wg.Wait()

		if err := c.Restart(victim); err != nil {
			t.Fatalf("kill at %v: restart: %v", killAfter, err)
		}
		var donor types.ReplicaID
		for id := range c.Replicas {
			if id != victim {
				donor = id
				break
			}
		}
		if err := c.AntiEntropy(victim, donor); err != nil {
			t.Fatalf("kill at %v: anti-entropy: %v", killAfter, err)
		}
		waitConverged(t, c, 10*time.Second)
		assertSafety(t, c)
		if total := spendableTotal(c); total > genesisTotal {
			t.Errorf("kill at %v: money created: %d > %d", killAfter, total, genesisTotal)
		}
	}
}

// TestTimelineRestart runs the experiment-harness integration: the
// throughput timeline with a kill -9 plus WAL restart mid-window. The
// curve must show throughput before the fault and after the recovery.
func TestTimelineRestart(t *testing.T) {
	res, err := Timeline(TimelineConfig{
		System:       SystemAstroII,
		N:            4,
		Clients:      4,
		Window:       3 * time.Second,
		FaultAt:      time.Second,
		Fault:        FaultRestart,
		RestartAfter: 500 * time.Millisecond,
		Target:       TargetRandom,
		BinWidth:     250 * time.Millisecond,
		Seed:         6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rates) == 0 {
		t.Fatal("no bins")
	}
	var pre float64
	for _, r := range res.Rates[:3] {
		pre += r
	}
	if pre == 0 {
		t.Error("no pre-fault throughput")
	}
	var tail float64
	for _, r := range res.Rates[len(res.Rates)-4:] {
		tail += r
	}
	if tail == 0 {
		t.Error("no throughput after restart: recovery failed")
	}
}

// TestRestartRequiresDataDir pins the API contract for memory-only
// clusters and the consensus baseline.
func TestRestartRequiresDataDir(t *testing.T) {
	c, err := NewAstroCluster(AstroOpts{
		Version:  core.AstroII,
		Topology: shard.Topology{NumShards: 1, PerShard: 4},
		Latency:  fastLatency(),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Restart(0); err == nil {
		t.Error("Restart on a memory-only cluster should fail")
	}
	if _, err := Timeline(TimelineConfig{
		System: SystemConsensus, N: 4, Clients: 1,
		Window: time.Second, Fault: FaultRestart,
	}); err == nil {
		t.Error("consensus FaultRestart should be rejected")
	}
}
