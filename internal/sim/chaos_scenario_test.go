package sim

import (
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/reconfig"
	"astro/internal/shard"
	"astro/internal/transport"
	"astro/internal/transport/chaos"
	"astro/internal/types"
)

// TestChaosLoadClean runs payments through a lossy, reordering, duplicating,
// corrupting network: every perturbation class engages (the controller's
// counters prove it) and the correct replicas keep every invariant — chaos
// may slow the system down, never make it wrong.
func TestChaosLoadClean(t *testing.T) {
	ctrl := chaos.NewController(42)
	ctrl.SetDefault(chaos.Rule{
		Drop:      0.03,
		Corrupt:   0.01,
		Duplicate: 0.02,
		Reorder:   0.05,
		DelayMin:  200 * time.Microsecond,
		DelayMax:  2 * time.Millisecond,
	})
	c, err := NewAstroCluster(AstroOpts{
		Version:    2, // core.AstroII
		Topology:   shard.Topology{NumShards: 1, PerShard: 4},
		Latency:    fastLatency(),
		BatchSize:  8,
		BatchDelay: time.Millisecond,
		Seed:       55,
		Chaos:      ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	aud := auditorFor(c)
	aud.Start()
	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()
	// Let in-flight deliveries drain before the final sample.
	time.Sleep(100 * time.Millisecond)
	requireCleanReport(t, aud.Stop())

	st := ctrl.Stats()
	if st.Sent == 0 || st.Dropped == 0 || st.Delayed == 0 || st.Duplicated == 0 || st.Corrupted == 0 {
		t.Errorf("chaos never fully engaged: %+v", st)
	}
}

// TestChaosScheduledPartition drives a schedule: partition one replica
// mid-run, heal later, all from the same seeded controller. The system
// rides through with zero invariant violations.
func TestChaosScheduledPartition(t *testing.T) {
	ctrl := chaos.NewController(7)
	c, err := NewAstroCluster(AstroOpts{
		Version:    2,
		Topology:   shard.Topology{NumShards: 1, PerShard: 4},
		Latency:    fastLatency(),
		BatchSize:  8,
		BatchDelay: time.Millisecond,
		Seed:       56,
		Chaos:      ctrl,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	isolated := c.RepOf(2)
	var rest []transport.NodeID
	for _, id := range c.ReplicaIDs() {
		if id != isolated {
			rest = append(rest, transport.ReplicaNode(id))
		}
	}
	stopSched := ctrl.StartSchedule([]chaos.Phase{
		{At: 150 * time.Millisecond, Apply: func(ct *chaos.Controller) {
			ct.Partition([]transport.NodeID{transport.ReplicaNode(isolated)}, rest)
		}},
		{At: 450 * time.Millisecond, Apply: func(ct *chaos.Controller) {
			ct.Heal()
		}},
	})
	defer stopSched()

	aud := auditorFor(c)
	aud.Start()
	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(800 * time.Millisecond)
	close(stop)
	wg.Wait()
	time.Sleep(100 * time.Millisecond)
	requireCleanReport(t, aud.Stop())

	if ctrl.Stats().Blocked == 0 {
		t.Error("partition never blocked a frame")
	}
}

// TestKillRestartUnderPartition combines the durability story with a
// network partition: one replica is killed and restarted from its WAL
// while a memnet partition separates another replica from the rest.
// After healing and anti-entropy, the cluster converges with FIFO logs
// and no money created.
func TestKillRestartUnderPartition(t *testing.T) {
	c := durableCluster(t, 33)
	victim := c.RepOf(1)
	isolated := c.RepOf(3)
	genesisTotal := types.Amount(4) << 40

	var rest []transport.NodeID
	for _, id := range c.ReplicaIDs() {
		if id != isolated {
			rest = append(rest, transport.NodeID(transport.ReplicaNode(id)))
		}
	}

	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(150 * time.Millisecond)
	c.Net.Partition([]transport.NodeID{transport.ReplicaNode(isolated)}, rest)
	time.Sleep(100 * time.Millisecond)
	c.Kill(victim)
	time.Sleep(100 * time.Millisecond)
	if err := c.Restart(victim); err != nil {
		t.Fatalf("restart under partition: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	c.Net.HealPartition()
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	var donor types.ReplicaID
	for _, d := range c.ReplicaIDs() {
		if d != victim && d != isolated {
			donor = d
			break
		}
	}
	for _, id := range []types.ReplicaID{victim, isolated} {
		if err := c.AntiEntropy(id, donor); err != nil {
			t.Fatalf("anti-entropy %d: %v", id, err)
		}
	}
	waitConverged(t, c, 10*time.Second)
	assertSafety(t, c)
	if total := spendableTotal(c); total > genesisTotal {
		t.Errorf("money created under partition: %d > %d", total, genesisTotal)
	}
}

// TestReconfigurationUnderFault is the capstone scenario: a durable
// cluster under live load, a Byzantine replica spamming stale-view and
// forged-install reconfiguration messages, asymmetric link delays — and
// in the middle of it a fresh replica joins through the consensusless
// protocol and another replica leaves by crash. The always-on auditor
// asserts conservation-of-money and per-client FIFO throughout.
func TestReconfigurationUnderFault(t *testing.T) {
	c := durableCluster(t, 44)
	staleSpammer := c.RepOf(2)
	leaver := c.RepOf(4)

	aud := auditorFor(c, staleSpammer)
	aud.Start()
	if err := c.ArmFault(staleSpammer, FaultStaleView); err != nil {
		t.Fatal(err)
	}
	// Asymmetric link degradation on top of the Byzantine fault.
	c.Net.SetLinkDelay(transport.ReplicaNode(0), transport.ReplicaNode(1), 5*time.Millisecond)
	c.Net.SetLinkDelay(transport.ReplicaNode(1), transport.ReplicaNode(0), 500*time.Microsecond)

	stop := make(chan struct{})
	wg := runLoad(c, stop)
	time.Sleep(200 * time.Millisecond)

	// Join: a brand-new replica announces itself to the live view and
	// gathers 2f+1 acks while the stale-view volleys try to confuse the
	// members.
	joiner := types.ReplicaID(100)
	members := c.ReplicaIDs()
	registry := c.cfgs[members[0]].Registry
	keys := crypto.NewSimKeyPair(joiner, []byte("astro-sim-master"))
	registry.AddSim(joiner)
	jmux := transport.NewMux(c.Net.Node(transport.ReplicaNode(joiner)))
	defer jmux.Close()
	res, err := reconfig.Join(reconfig.JoinConfig{
		Self: joiner, Mux: jmux, Keys: keys, Registry: registry,
		CurrentView: reconfig.View{Num: 1, Members: members},
		Timeout:     15 * time.Second,
	})
	if err != nil {
		t.Fatalf("join under fault: %v", err)
	}
	if res.View.Num < 2 {
		t.Errorf("join installed view %d, want >= 2", res.View.Num)
	}

	// Leave: crash-stop a member while the load keeps running.
	time.Sleep(100 * time.Millisecond)
	c.Kill(leaver)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	time.Sleep(100 * time.Millisecond)

	rep := aud.Stop()
	requireCleanReport(t, rep)
	if beh, ok := c.Behavior(staleSpammer).(*StaleViewReconfig); !ok || beh.Volleys.Load() == 0 {
		t.Error("stale-view attack never engaged during the scenario")
	}
}
