package sim

import (
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/shard"
	"astro/internal/types"
)

func hostileCluster(t *testing.T, seed uint64, clientAuth bool) *AstroCluster {
	t.Helper()
	c, err := NewAstroCluster(AstroOpts{
		Version:    core.AstroII,
		Topology:   shard.Topology{NumShards: 1, PerShard: 4},
		Latency:    fastLatency(),
		BatchSize:  8,
		BatchDelay: time.Millisecond,
		Seed:       seed,
		ClientAuth: clientAuth,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func edgeTotals(c *AstroCluster) core.EdgeStats {
	var sum core.EdgeStats
	for _, id := range c.ReplicaIDs() {
		if r := c.Replica(id); r != nil {
			sum.Add(r.EdgeStats())
		}
	}
	return sum
}

// TestHostileClientStorm runs the full Byzantine-client attack mix —
// with and without end-to-end client signatures — under the always-on
// auditor: every attack class must engage its rejection counter, the
// invariants must hold, and honest clients on every representative must
// keep settling through the storm.
func TestHostileClientStorm(t *testing.T) {
	for _, auth := range []bool{false, true} {
		name := "noauth"
		if auth {
			name = "clientauth"
		}
		t.Run(name, func(t *testing.T) {
			c := hostileCluster(t, 200+uint64(len(name)), auth)

			// Client 9 shares representative 1 with honest client 1
			// (repOf = id % 4) — the direct contention case.
			hostile := c.Hostile(9)
			settled, frame, err := hostile.SettleOne(2, 5, 10*time.Second)
			if err != nil {
				t.Fatal(err)
			}

			aud := auditorFor(c)
			aud.Start()
			stop := make(chan struct{})
			go hostile.Storm(stop, settled, frame)

			for i := 1; i <= 4; i++ {
				cl := c.Client(types.ClientID(i))
				ben := types.ClientID(i%4 + 1)
				for k := 0; k < 5; k++ {
					if _, err := cl.PayReliable(ben, 1, core.RetryPolicy{Timeout: 5 * time.Second}); err != nil {
						close(stop)
						t.Fatalf("honest client %d starved by the storm: %v", i, err)
					}
				}
			}
			close(stop)
			requireCleanReport(t, aud.Stop())

			if hostile.Volleys.Load() == 0 {
				t.Fatal("storm never fired")
			}
			es := edgeTotals(c)
			if es.Conflicting == 0 || es.Spoofed == 0 || es.WrongRep == 0 ||
				es.SeqZero == 0 || es.FutureSeq == 0 || es.SettledReplay == 0 ||
				es.CreditOutsider == 0 || es.Malformed == 0 {
				t.Fatalf("attack classes not all counted: %+v", es)
			}
			if auth && es.BadSig == 0 {
				t.Fatalf("forged signatures not counted under client auth: %+v", es)
			}
			if !auth && es.BadSig != 0 {
				t.Fatalf("BadSig counted without signature checking: %+v", es)
			}
		})
	}
}

// TestAuditExportsStateless: the out-of-process audit over a quiescent
// snapshot set passes on a clean run and pinpoints tampering — the same
// battery the TCP harness and the soak runner apply to snapshots fetched
// over state transfer.
func TestAuditExportsStateless(t *testing.T) {
	c := hostileCluster(t, 31, false)
	const perClient = 3
	for i := 1; i <= 4; i++ {
		cl := c.Client(types.ClientID(i))
		ben := types.ClientID(i%4 + 1)
		for k := 0; k < perClient; k++ {
			if _, err := cl.PayReliable(ben, 2, core.RetryPolicy{Timeout: 5 * time.Second}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Quiescence: every replica has settled all 12 payments.
	want := uint64(4 * perClient)
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, id := range c.ReplicaIDs() {
			if c.Replica(id).SettledCount() != want {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster never quiesced")
		}
		time.Sleep(10 * time.Millisecond)
	}

	export := func() map[types.ReplicaID][]core.AccountExport {
		out := make(map[types.ReplicaID][]core.AccountExport)
		for _, id := range c.ReplicaIDs() {
			out[id] = c.Replica(id).AuditExport()
		}
		return out
	}

	if vs := AuditExports(core.AstroII, 1<<40, export()); len(vs) != 0 {
		t.Fatalf("clean quiescent snapshot flagged: %v", vs)
	}

	// Inflated balance → the conservation identity must trip.
	tampered := export()
	tampered[0][0].Balance += 7
	vs := AuditExports(core.AstroII, 1<<40, tampered)
	if len(vs) == 0 {
		t.Fatal("inflated balance not detected")
	}
	found := false
	for _, v := range vs {
		if v.Invariant == "conservation" && v.Replica == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a conservation violation at replica 0, got %v", vs)
	}

	// Duplicated sequence number → FIFO/duplicate-settle must trip.
	tampered = export()
	acc := &tampered[1][0]
	if len(acc.XLog) < 2 {
		t.Fatalf("test needs an xlog with >= 2 entries, got %d", len(acc.XLog))
	}
	acc.XLog[1].Seq = acc.XLog[0].Seq
	vs = AuditExports(core.AstroII, 1<<40, tampered)
	found = false
	for _, v := range vs {
		if v.Invariant == "duplicate-settle" || v.Invariant == "fifo" {
			found = true
		}
	}
	if !found {
		t.Fatalf("duplicated settlement not detected: %v", vs)
	}
}
