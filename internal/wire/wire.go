// Package wire provides small helpers for hand-rolled binary message
// codecs: an appending writer and a consuming reader with sticky errors.
//
// Every protocol in this repository (BRB, payments, consensus, reconfig)
// defines its messages with explicit field-by-field encodings built on this
// package, so the wire format is deterministic and implementation-defined —
// no reflection, no gob.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrShort is returned when a reader runs out of input mid-field.
var ErrShort = errors.New("wire: short buffer")

// ErrTooLong is returned when a length prefix exceeds the configured cap.
var ErrTooLong = errors.New("wire: length prefix too large")

// MaxChunk bounds every length-prefixed field to protect readers against
// maliciously large prefixes. 16 MiB comfortably exceeds the largest batch
// any component of this repository produces.
const MaxChunk = 16 << 20

// Writer accumulates an encoded message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with the given capacity pre-allocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// maxPooledCap bounds the buffer size retained by released writers, so one
// oversized message does not pin memory in the pool indefinitely.
const maxPooledCap = 64 << 10

// AcquireWriter returns an empty pooled writer with at least the given
// capacity pre-allocated. Release it with Release when the encoding has
// been fully consumed (hashed, or handed to a transport that copies).
//
// The hot encode paths — per-message digests, ACK/COMMIT assembly, batch
// encoding — produce buffers that are consumed synchronously, so pooling
// them removes an allocation per protocol message.
func AcquireWriter(capacity int) *Writer {
	w := writerPool.Get().(*Writer)
	if cap(w.buf) < capacity {
		w.buf = make([]byte, 0, capacity)
	}
	return w
}

// Release resets w and returns it to the pool. The caller must not touch w
// — or any slice previously obtained from Bytes — after the call.
func (w *Writer) Release() {
	if cap(w.buf) > maxPooledCap {
		w.buf = nil
	} else {
		w.buf = w.buf[:0]
	}
	writerPool.Put(w)
}

// Bytes returns the accumulated encoding.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends a single byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Raw appends b verbatim, with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// AppendFunc appends via an append-style function (for example
// types.Payment.AppendBinary), writing directly into the accumulated
// buffer instead of through an intermediate allocation.
func (w *Writer) AppendFunc(f func([]byte) []byte) { w.buf = f(w.buf) }

// Bytes32 appends a fixed 32-byte value (e.g. a digest).
func (w *Writer) Bytes32(b [32]byte) { w.buf = append(w.buf, b[:]...) }

// Chunk appends a uint32 length prefix followed by b.
func (w *Writer) Chunk(b []byte) {
	w.U32(uint32(len(b)))
	w.Raw(b)
}

// String appends a uint32 length prefix followed by the string bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// DigestListSize is the exact encoded size of a digest list of length n.
func DigestListSize(n int) int { return 4 + 32*n }

// AppendDigestList appends a uint32 count followed by the 32-byte digests.
// It is generic over the digest type so protocol packages can pass their
// own named [32]byte types (types.Digest) without copying. The digest-chain
// wire forms of the chain-reference protocol (CHAINDEF, extended
// certificates) all share this layout.
func AppendDigestList[D ~[32]byte](w *Writer, ds []D) {
	w.U32(uint32(len(ds)))
	for _, d := range ds {
		w.buf = append(w.buf, d[:]...)
	}
}

// ReadDigestList consumes a digest list of at most max entries. A zero
// count decodes as nil.
func ReadDigestList[D ~[32]byte](r *Reader, max int) ([]D, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if int(n) > max {
		return nil, fmt.Errorf("%w: digest list of %d (cap %d)", ErrTooLong, n, max)
	}
	if n == 0 {
		return nil, nil
	}
	ds := make([]D, n)
	for i := range ds {
		b := r.take(32)
		if b == nil {
			return nil, r.Err()
		}
		copy(ds[i][:], b)
	}
	return ds, nil
}

// Reader consumes an encoded message. Methods record the first error and
// become no-ops afterwards; check Err (or use Finish) once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over data. The reader does not copy data;
// Chunk and Rest return sub-slices of it.
func NewReader(data []byte) *Reader {
	return &Reader{buf: data}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 consumes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 consumes a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 consumes a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Bool consumes one byte and reports whether it is non-zero.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Bytes32 consumes a fixed 32-byte value.
func (r *Reader) Bytes32() (out [32]byte) {
	b := r.take(32)
	if b != nil {
		copy(out[:], b)
	}
	return out
}

// Chunk consumes a uint32 length prefix and that many bytes. The returned
// slice aliases the reader's input.
func (r *Reader) Chunk() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if n > MaxChunk {
		r.err = fmt.Errorf("%w: %d", ErrTooLong, n)
		return nil
	}
	return r.take(int(n))
}

// String consumes a uint32 length prefix and that many bytes as a string.
func (r *Reader) String() string {
	return string(r.Chunk())
}

// Fixed consumes exactly n bytes with no length prefix. The returned
// slice aliases the reader's input.
func (r *Reader) Fixed(n int) []byte {
	if n < 0 {
		r.err = ErrShort
		return nil
	}
	return r.take(n)
}

// Rest consumes and returns all remaining bytes.
func (r *Reader) Rest() []byte {
	return r.take(r.Remaining())
}

// Finish returns an error if decoding failed or if unconsumed bytes remain.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes", r.Remaining())
	}
	return nil
}
