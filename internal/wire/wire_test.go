package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(0xAB)
	w.U16(0xCDEF)
	w.U32(0xDEADBEEF)
	w.U64(0x0123456789ABCDEF)
	w.Bool(true)
	w.Bool(false)
	w.Chunk([]byte("hello"))
	w.String("world")
	var d [32]byte
	for i := range d {
		d[i] = byte(i)
	}
	w.Bytes32(d)
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if got := r.U16(); got != 0xCDEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool mismatch")
	}
	if got := r.Chunk(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Chunk = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bytes32(); got != d {
		t.Error("Bytes32 mismatch")
	}
	if got := r.Rest(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Rest = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestReaderShort(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U32()
	if !errors.Is(r.Err(), ErrShort) {
		t.Errorf("Err = %v, want ErrShort", r.Err())
	}
	// sticky error: subsequent reads are no-ops
	if got := r.U64(); got != 0 {
		t.Errorf("U64 after error = %d", got)
	}
	if err := r.Finish(); !errors.Is(err, ErrShort) {
		t.Errorf("Finish = %v", err)
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	if err := r.Finish(); err == nil {
		t.Error("Finish with trailing bytes: want error")
	}
}

func TestChunkTooLong(t *testing.T) {
	w := NewWriter(8)
	w.U32(MaxChunk + 1)
	r := NewReader(w.Bytes())
	if got := r.Chunk(); got != nil {
		t.Errorf("Chunk = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrTooLong) {
		t.Errorf("Err = %v, want ErrTooLong", r.Err())
	}
}

func TestChunkEmpty(t *testing.T) {
	w := NewWriter(8)
	w.Chunk(nil)
	w.Chunk([]byte{})
	r := NewReader(w.Bytes())
	if got := r.Chunk(); len(got) != 0 {
		t.Errorf("Chunk = %v", got)
	}
	if got := r.Chunk(); len(got) != 0 {
		t.Errorf("Chunk = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, s string, blob []byte) bool {
		w := NewWriter(0)
		w.U8(a)
		w.U16(b)
		w.U32(c)
		w.U64(d)
		w.String(s)
		w.Chunk(blob)
		r := NewReader(w.Bytes())
		ok := r.U8() == a && r.U16() == b && r.U32() == c && r.U64() == d &&
			r.String() == s && bytes.Equal(r.Chunk(), blob)
		return ok && r.Finish() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireRelease(t *testing.T) {
	w := AcquireWriter(16)
	if w.Len() != 0 {
		t.Fatalf("acquired writer not empty: len=%d", w.Len())
	}
	w.U32(7)
	w.Chunk([]byte("hello"))
	got := append([]byte(nil), w.Bytes()...)
	w.Release()

	r := NewReader(got)
	if r.U32() != 7 || string(r.Chunk()) != "hello" || r.Finish() != nil {
		t.Fatal("pooled writer produced wrong encoding")
	}

	// A re-acquired writer must come back empty regardless of prior use.
	w2 := AcquireWriter(4)
	defer w2.Release()
	if w2.Len() != 0 {
		t.Fatalf("re-acquired writer not empty: len=%d", w2.Len())
	}
}

func TestAcquireReleaseOversized(t *testing.T) {
	w := AcquireWriter(maxPooledCap * 2)
	w.Raw(make([]byte, maxPooledCap+1))
	w.Release() // must drop the oversized buffer without panicking
	w = AcquireWriter(8)
	defer w.Release()
	w.U64(42)
	if NewReader(w.Bytes()).U64() != 42 {
		t.Fatal("writer after oversized release broken")
	}
}

func TestAppendFunc(t *testing.T) {
	w := NewWriter(8)
	w.U8(1)
	w.AppendFunc(func(b []byte) []byte { return append(b, 2, 3) })
	w.U8(4)
	if !bytes.Equal(w.Bytes(), []byte{1, 2, 3, 4}) {
		t.Fatalf("AppendFunc encoding = %v", w.Bytes())
	}
}
