package crypto

import (
	"bytes"
	"testing"

	"astro/internal/types"
)

func TestSimKeySignVerify(t *testing.T) {
	master := []byte("harness-master")
	kp := NewSimKeyPair(3, master)
	reg := NewRegistry()
	reg.EnableSim(master)
	reg.AddSim(3)

	d := types.HashBytes([]byte("payload"))
	sig, err := kp.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != simSigSize {
		t.Errorf("sim sig size = %d, want %d (ECDSA-like)", len(sig), simSigSize)
	}
	if !reg.VerifySig(3, d, sig) {
		t.Error("valid sim signature rejected")
	}
	if reg.VerifySig(3, types.HashBytes([]byte("other")), sig) {
		t.Error("sim signature accepted for wrong digest")
	}
	if reg.VerifySig(4, d, sig) {
		t.Error("sim signature accepted for wrong signer")
	}
}

func TestSimKeyNotVerifiableWithoutMaster(t *testing.T) {
	kp := NewSimKeyPair(1, []byte("secret"))
	reg := NewRegistry() // no EnableSim
	reg.AddSim(1)
	d := types.HashBytes([]byte("x"))
	sig, _ := kp.Sign(d)
	if reg.VerifySig(1, d, sig) {
		t.Error("sim signature verified without master secret")
	}
}

func TestSimKeySerializedIdentity(t *testing.T) {
	master := []byte("m")
	kp := NewSimKeyPair(7, master)
	pub := kp.PublicBytes()
	if !bytes.HasPrefix(pub, []byte(simKeyMagic)) {
		t.Fatalf("serialized sim key missing magic: %q", pub)
	}
	reg := NewRegistry()
	reg.EnableSim(master)
	if err := reg.AddSerialized(7, pub); err != nil {
		t.Fatal(err)
	}
	d := types.HashBytes([]byte("y"))
	sig, _ := kp.Sign(d)
	if !reg.VerifySig(7, d, sig) {
		t.Error("serialized sim identity does not verify")
	}
	// Real keys round-trip through the same API.
	real := MustGenerateKeyPair()
	if err := reg.AddSerialized(8, real.PublicBytes()); err != nil {
		t.Fatal(err)
	}
	sig2, _ := real.Sign(d)
	if !reg.VerifySig(8, d, sig2) {
		t.Error("serialized real key does not verify")
	}
	if err := reg.AddSerialized(9, []byte("garbage")); err == nil {
		t.Error("garbage key accepted")
	}
}

func TestSimCertificates(t *testing.T) {
	master := []byte("cert-master")
	reg := NewRegistry()
	reg.EnableSim(master)
	d := types.HashBytes([]byte("batch"))
	var cert Certificate
	for i := types.ReplicaID(0); i < 3; i++ {
		reg.AddSim(i)
		kp := NewSimKeyPair(i, master)
		sig, _ := kp.Sign(d)
		cert.Add(PartialSig{Replica: i, Sig: sig})
	}
	if err := VerifyCertificate(reg, cert, d, 3, nil); err != nil {
		t.Errorf("sim certificate rejected: %v", err)
	}
	// Tampered signature fails.
	cert.Sigs[0].Sig[0] ^= 0xFF
	if err := VerifyCertificate(reg, cert, d, 3, nil); err == nil {
		t.Error("tampered sim certificate accepted")
	}
}

func TestRegistryKnown(t *testing.T) {
	reg := NewRegistry()
	if reg.Known(1) {
		t.Error("empty registry knows replica")
	}
	reg.AddSim(1)
	if !reg.Known(1) {
		t.Error("AddSim not visible through Known")
	}
	reg.Add(2, MustGenerateKeyPair().Public())
	if !reg.Known(2) || reg.Len() != 2 {
		t.Error("mixed registry bookkeeping wrong")
	}
}

func TestDeriveKeyPairDeterministic(t *testing.T) {
	a, err := DeriveKeyPair([]byte("seed-x"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DeriveKeyPair([]byte("seed-x"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.PublicBytes(), b.PublicBytes()) {
		t.Fatal("same seed produced different keys")
	}
	c, err := DeriveKeyPair([]byte("seed-y"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.PublicBytes(), c.PublicBytes()) {
		t.Fatal("different seeds produced the same key")
	}
	// Signatures by one derivation verify under the other's public key.
	d := types.HashBytes([]byte("m"))
	sig, err := a.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(b.Public(), d, sig) {
		t.Fatal("cross-derivation verification failed")
	}
}
