package crypto

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// maxCertSigs bounds decoded certificate size; no deployment in this
// repository exceeds a few hundred replicas.
const maxCertSigs = 4096

// CertificateSize returns the exact encoded size of cert, for
// exact-capacity buffer preallocation.
func CertificateSize(cert Certificate) int {
	n := 4
	for _, ps := range cert.Sigs {
		n += 8 + len(ps.Sig)
	}
	return n
}

// EncodeCertificate appends the canonical encoding of cert to w.
func EncodeCertificate(w *wire.Writer, cert Certificate) {
	w.U32(uint32(len(cert.Sigs)))
	for _, ps := range cert.Sigs {
		w.U32(uint32(ps.Replica))
		w.Chunk(ps.Sig)
	}
}

// DecodeCertificate decodes a certificate previously written with
// EncodeCertificate. Returned signatures alias the reader's input.
func DecodeCertificate(r *wire.Reader) (Certificate, error) {
	var cert Certificate
	n := r.U32()
	if err := r.Err(); err != nil {
		return cert, err
	}
	if n > maxCertSigs {
		return cert, fmt.Errorf("certificate: %d signatures exceeds cap", n)
	}
	cert.Sigs = make([]PartialSig, 0, n)
	for i := uint32(0); i < n; i++ {
		id := types.ReplicaID(r.U32())
		sig := r.Chunk()
		if err := r.Err(); err != nil {
			return Certificate{}, err
		}
		cert.Sigs = append(cert.Sigs, PartialSig{Replica: id, Sig: sig})
	}
	return cert, nil
}
