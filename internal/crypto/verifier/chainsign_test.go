package verifier

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"astro/internal/types"
)

// collectSigner wires a ChainSigner to counters: flushOne/flushChain
// record what the drain decided, and a configurable latency is charged
// through Sign so the adaptive threshold sees it.
type collectSigner struct {
	mu      sync.Mutex
	singles []int
	chains  [][]int
	signLat time.Duration
	cs      *ChainSigner[int]
}

func newCollectSigner(t *testing.T, v *Verifier, lat time.Duration) *collectSigner {
	t.Helper()
	c := &collectSigner{signLat: lat}
	sign := func() ([]byte, error) {
		if c.signLat > 0 {
			time.Sleep(c.signLat)
		}
		return []byte("sig"), nil
	}
	c.cs = NewChainSigner(v, 8, DefaultChainThreshold,
		func(item int) {
			if _, err := c.cs.Sign(1, sign); err != nil {
				t.Error(err)
			}
			c.mu.Lock()
			c.singles = append(c.singles, item)
			c.mu.Unlock()
		},
		func(items []int, wv *Wave) {
			if _, err := c.cs.Sign(len(items), sign); err != nil {
				t.Error(err)
			}
			// Exercise the per-wave scratch contract: bytes written before
			// the flush returns stay intact across further Scratch calls.
			w := wv.Scratch(8)
			w.U32(uint32(len(items)))
			if wv.Scratch(8); w.Len() != 4 {
				t.Error("wave scratch clobbered")
			}
			c.mu.Lock()
			c.chains = append(c.chains, items)
			c.mu.Unlock()
		})
	return c
}

func (c *collectSigner) waitCovered(t *testing.T, n uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, covered := c.cs.Stats(); covered >= n {
			return
		}
		if time.Now().After(deadline) {
			_, covered := c.cs.Stats()
			t.Fatalf("covered %d of %d", covered, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChainSignerBatchesUnderLoad: with an expensive signer (cost above
// the threshold) and items arriving faster than signatures complete, the
// drain must collapse pending items into chains — fewer signing operations
// than items — while covering every item exactly once, in order.
func TestChainSignerBatchesUnderLoad(t *testing.T) {
	v := New(1)
	defer v.Close()
	c := newCollectSigner(t, v, time.Millisecond)
	c.cs.SeedCost(time.Millisecond)

	const n = 40
	for i := 0; i < n; i++ {
		c.cs.Enqueue(i)
	}
	c.waitCovered(t, n)

	ops, covered := c.cs.Stats()
	if covered != n {
		t.Fatalf("covered = %d, want %d", covered, n)
	}
	if ops >= n {
		t.Fatalf("ops = %d, want < %d (no amortization happened)", ops, n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var seen []int
	for _, s := range c.singles {
		seen = append(seen, s)
	}
	for _, ch := range c.chains {
		if len(ch) > 8 {
			t.Fatalf("chain of %d exceeds maxBatch 8", len(ch))
		}
		seen = append(seen, ch...)
	}
	if len(seen) != n {
		t.Fatalf("flushed %d items, want %d", len(seen), n)
	}
	if len(c.chains) == 0 {
		t.Fatal("no chain was ever flushed under load")
	}
}

// TestChainSignerCheapSignerStaysSingle: a signer whose measured cost sits
// below the threshold (the simulation harness regime) must keep the
// single-item wire form — one flushOne per item, never a chain.
func TestChainSignerCheapSignerStaysSingle(t *testing.T) {
	v := New(1)
	defer v.Close()
	c := newCollectSigner(t, v, 0)
	c.cs.SeedCost(time.Microsecond)

	const n = 25
	for i := 0; i < n; i++ {
		c.cs.Enqueue(i)
	}
	c.waitCovered(t, n)
	ops, covered := c.cs.Stats()
	if ops != n || covered != n {
		t.Fatalf("ops, covered = %d, %d, want %d, %d", ops, covered, n, n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.chains) != 0 {
		t.Fatalf("cheap signer produced %d chains", len(c.chains))
	}
}

// TestChainSignerConcurrentEnqueue hammers Enqueue from many goroutines
// (exercised under -race by the Makefile's race target) and checks nothing
// is lost or duplicated.
func TestChainSignerConcurrentEnqueue(t *testing.T) {
	v := New(2)
	defer v.Close()
	var count atomic.Int64
	var cs *ChainSigner[int]
	cs = NewChainSigner(v, 16, DefaultChainThreshold,
		func(int) {
			if _, err := cs.Sign(1, func() ([]byte, error) { return nil, nil }); err != nil {
				t.Error(err)
			}
			count.Add(1)
		},
		func(items []int, _ *Wave) {
			if _, err := cs.Sign(len(items), func() ([]byte, error) { return nil, nil }); err != nil {
				t.Error(err)
			}
			count.Add(int64(len(items)))
		})
	cs.SeedCost(time.Millisecond) // force the chain path to be eligible

	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				cs.Enqueue(w*per + i)
			}
		}(w)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for count.Load() != workers*per {
		if time.Now().After(deadline) {
			t.Fatalf("flushed %d of %d", count.Load(), workers*per)
		}
		time.Sleep(time.Millisecond)
	}
	if _, covered := cs.Stats(); covered != workers*per {
		t.Fatalf("covered = %d, want %d", covered, workers*per)
	}
	if cs.Pending() != 0 {
		t.Fatalf("pending = %d after drain", cs.Pending())
	}
}

// TestChainDigestDomainsDisjoint: the same chain under different domain
// bytes must hash differently, and any chain change must change the
// digest.
func TestChainDigestDomainsDisjoint(t *testing.T) {
	chain := []types.Digest{types.HashBytes([]byte("a")), types.HashBytes([]byte("b"))}
	if ChainDigest(0x44, chain) == ChainDigest(0x46, chain) {
		t.Fatal("domains collide")
	}
	reordered := []types.Digest{chain[1], chain[0]}
	if ChainDigest(0x46, chain) == ChainDigest(0x46, reordered) {
		t.Fatal("order-insensitive chain digest")
	}
	if ChainDigest(0x46, chain) == ChainDigest(0x46, chain[:1]) {
		t.Fatal("length-insensitive chain digest")
	}
}
