package verifier

import (
	"container/list"
	"sync"
)

// memoKeyT is a collision-resistant digest of (domain, signer, message
// digest, signature); see memoKey.
type memoKeyT [32]byte

// memoCache is a small mutex-guarded LRU of signature verdicts. Both
// outcomes are cached: verification is deterministic, so a signature that
// failed once fails forever, and caching failures blunts repeated garbage
// from a Byzantine peer as effectively as caching successes speeds up
// re-delivered commits.
type memoCache struct {
	capacity int

	mu sync.Mutex
	m  map[memoKeyT]*list.Element
	ll *list.List // front = most recently used
}

type memoEntry struct {
	key memoKeyT
	ok  bool
}

// newMemoCache returns a cache holding up to capacity verdicts; capacity
// <= 0 disables caching (get always misses, put is a no-op).
func newMemoCache(capacity int) *memoCache {
	c := &memoCache{capacity: capacity}
	if capacity > 0 {
		c.m = make(map[memoKeyT]*list.Element, capacity)
		c.ll = list.New()
	}
	return c
}

func (c *memoCache) get(k memoKeyT) (ok, hit bool) {
	if c.capacity <= 0 {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.m[k]
	if !found {
		return false, false
	}
	c.ll.MoveToFront(e)
	return e.Value.(*memoEntry).ok, true
}

func (c *memoCache) put(k memoKeyT, ok bool) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, found := c.m[k]; found {
		e.Value.(*memoEntry).ok = ok
		c.ll.MoveToFront(e)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.m, oldest.Value.(*memoEntry).key)
		}
	}
	c.m[k] = c.ll.PushFront(&memoEntry{key: k, ok: ok})
}

// len reports the number of cached verdicts (for tests).
func (c *memoCache) len() int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
