package verifier

import (
	"sync"

	"astro/internal/types"
)

// memoKeyT is a collision-resistant digest of (domain, signer, message
// digest, signature); see memoKey.
type memoKeyT [32]byte

// memoCache is a small mutex-guarded LRU of signature verdicts — a thin
// synchronized wrapper over types.LRU, the repository's one eviction
// implementation (the chain-reference caches of PR 4 use it bare, under
// their owners' locks; the memo cache adds the lock because it is shared
// by every worker).
//
// Both outcomes are cached: verification is deterministic, so a signature
// that failed once fails forever, and caching failures blunts repeated
// garbage from a Byzantine peer as effectively as caching successes
// speeds up re-delivered commits.
type memoCache struct {
	mu  sync.Mutex
	lru *types.LRU[memoKeyT, bool] // nil when caching is disabled
}

// newMemoCache returns a cache holding up to capacity verdicts; capacity
// <= 0 disables caching (get always misses, put is a no-op).
func newMemoCache(capacity int) *memoCache {
	c := &memoCache{}
	if capacity > 0 {
		c.lru = types.NewLRU[memoKeyT, bool](capacity)
	}
	return c
}

func (c *memoCache) get(k memoKeyT) (ok, hit bool) {
	if c.lru == nil {
		return false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Get(k)
}

func (c *memoCache) put(k memoKeyT, ok bool) {
	if c.lru == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Put(k, ok)
}

// len reports the number of cached verdicts (for tests).
func (c *memoCache) len() int {
	if c.lru == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
