// Package verifier provides the parallel signature verifier of the
// BRB/payment hot path.
//
// Astro settles payments by merely broadcasting them, so end-to-end
// throughput is dominated by ECDSA verification on the broadcast delivery
// path (paper §VI-A amortizes it with 256-payment batches). Verifying
// serially, inline on the transport dispatch path, leaves all but one
// core idle exactly where the system is CPU-bound. This package supplies
// the standard remedy from the BFT literature — crypto pipelining:
//
//   - a Verifier with asynchronous (VerifyAsync, callbacks/futures) and
//     batched (VerifyBatch, VerifyClientBatch) entry points, so protocol
//     layers hand signature checks off and re-enter their state machines
//     on completion;
//   - a parallel VerifyCertificate that fans a quorum certificate's
//     signatures out and early-exits as soon as the threshold is
//     confirmed or failure is certain;
//   - a bounded memoization cache keyed by (signer, digest, signature), so
//     re-delivered commits, echoed acks, and an origin re-verifying its
//     own aggregated certificate never pay ECDSA twice;
//   - a blocking submission entry point (Async) for work that must never
//     run on the caller — the BRB ack *sign* path hands its ECDSA off
//     from transport dispatch flows.
//
// Execution rides a pluggable backend (see exec.go). The default is the
// unified lane scheduler (internal/sched): verify/sign tasks are unkeyed,
// stealable work on the same lanes that run transport dispatch and
// settlement fan-out, and goroutines blocked on a Future lend themselves
// to the lanes while they wait. The PR 1 dedicated worker pool survives
// behind WithWorkerPool as the measured baseline and as an isolation
// knob. A single worker degrades gracefully: calls run serially but the
// memo cache still applies, so single-core hosts pay at most a hash per
// duplicate check.
//
// Verifiers are safe for concurrent use. A process-wide shared verifier
// is available through Default; it executes on the shared lane runtime
// (sched.Default()), so every replica of an in-process simulation sizes
// its crypto to the host's actual core count.
package verifier

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/crypto"
	"astro/internal/sched"
	"astro/internal/types"
)

// Verifier is a batch verifier with a bounded memo cache, executing on a
// pluggable backend: lane runtime by default, dedicated worker pool as
// the measured baseline (see exec.go).
type Verifier struct {
	ex   executor
	memo *memoCache

	hits   atomic.Uint64
	misses atomic.Uint64

	// verifyNanos is an EWMA (weight 1/8) of the measured cost of one
	// signature check, in nanoseconds, fed by every memo miss. Zero means
	// unmeasured. It drives FastVerify: the continuation commit path
	// stays synchronous when checks are cheap (sim HMAC, ~1µs) and only
	// pays fan-out + continuation overhead in the real-ECDSA regime.
	verifyNanos atomic.Int64
}

// fastVerifyThreshold is the per-signature cost below which certificate
// verification runs inline on the submitter instead of fanning out: at
// ~10µs a whole quorum certificate costs less than one scheduling round
// trip. Real ECDSA (~40µs+) never qualifies; the sim HMAC regime always
// does once measured.
const fastVerifyThreshold = 10 * time.Microsecond

// timedCheck runs one raw signature check and folds its cost into the
// EWMA. All memo-miss paths route through it so the regime estimate
// tracks whatever primitive the registry actually uses.
func (v *Verifier) timedCheck(check func() bool) bool {
	start := time.Now()
	ok := check()
	v.recordVerifyCost(time.Since(start).Nanoseconds())
	return ok
}

func (v *Verifier) recordVerifyCost(ns int64) {
	if ns <= 0 {
		ns = 1
	}
	for {
		old := v.verifyNanos.Load()
		nw := ns
		if old != 0 {
			nw = old + (ns-old)/8
			if nw <= 0 {
				nw = 1
			}
		}
		if v.verifyNanos.CompareAndSwap(old, nw) {
			return
		}
	}
}

// FastVerify reports whether measured signature checks are cheap enough
// that verifying a certificate inline beats handing it to the backend.
// Unmeasured (no miss yet) reports false: the conservative default keeps
// real ECDSA off submitter stacks until proven cheap.
func (v *Verifier) FastVerify() bool {
	n := v.verifyNanos.Load()
	return n > 0 && n < int64(fastVerifyThreshold)
}

// DefaultMemoSize is the memo-cache capacity used when none is configured:
// large enough to hold the in-flight signatures of several hundred
// concurrent broadcast instances, small enough to be negligible in memory.
const DefaultMemoSize = 8192

// Option configures a Verifier.
type Option func(*options)

type options struct {
	memoSize   int
	workerPool bool
	runtime    *sched.Runtime
}

// WithMemoSize sets the memo-cache capacity. Zero disables memoization
// (used by benchmarks measuring raw verification throughput).
func WithMemoSize(n int) Option {
	return func(o *options) { o.memoSize = n }
}

// WithWorkerPool selects the dedicated worker-pool backend (the PR 1–4
// substrate: its own goroutines and task channel) instead of lanes. Kept
// as the measured baseline for the lane scheduler and for callers that
// want crypto isolated from dispatch.
func WithWorkerPool() Option {
	return func(o *options) { o.workerPool = true }
}

// WithRuntime runs the verifier's work on an existing lane runtime
// instead of creating a private one; the runtime is shared, so Close does
// not stop it. Overrides the worker count and WithWorkerPool.
func WithRuntime(rt *sched.Runtime) Option {
	return func(o *options) { o.runtime = rt }
}

// New creates a verifier backed by the given number of workers; workers
// <= 0 sizes to the host (GOMAXPROCS, with the lane runtime's floor of
// two). The default backend is a private lane runtime with exactly that
// many lanes — a 1-worker verifier is fully serial, which wedge-style
// fixtures rely on.
func New(workers int, opts ...Option) *Verifier {
	o := options{memoSize: DefaultMemoSize}
	for _, opt := range opts {
		opt(&o)
	}
	var ex executor
	switch {
	case o.runtime != nil:
		ex = newLaneExec(o.runtime, false)
	case o.workerPool:
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		ex = newChanExec(workers)
	default:
		ex = newLaneExec(sched.New(workers), true)
	}
	return &Verifier{
		ex:   ex,
		memo: newMemoCache(o.memoSize),
	}
}

var (
	defaultOnce sync.Once
	defaultPool *Verifier
)

// Default returns the process-wide shared verifier, creating it on first
// use over the shared lane runtime (sched.Default()) — verification and
// signing ride the same lanes as transport dispatch and settlement
// fan-out, sized once to the host. It is never closed.
func Default() *Verifier {
	defaultOnce.Do(func() {
		defaultPool = New(0, WithRuntime(sched.Default()))
	})
	return defaultPool
}

// Workers returns the backend's parallelism.
func (v *Verifier) Workers() int { return v.ex.workers() }

// MemoStats returns the lifetime memo-cache hit and miss counts.
func (v *Verifier) MemoStats() (hits, misses uint64) {
	return v.hits.Load(), v.misses.Load()
}

// Close stops the backend after the queued work drains. Submissions after
// Close (and submissions that find the queue full) run inline on the
// caller, so no verification is ever lost. A shared lane runtime
// (WithRuntime, Default) is not stopped — only this verifier's
// submissions are. Close must not be called on the Default pool.
func (v *Verifier) Close() {
	v.ex.close()
}

// submit runs f on the backend, or inline on the caller when the backend
// is closed or saturated. Inline fallback keeps the system live under
// overload (natural backpressure) and makes deadlock impossible: no
// submitter ever blocks waiting for a worker.
func (v *Verifier) submit(f func()) {
	if !v.ex.trySubmit(f) {
		f()
	}
}

// submitBlocking runs f on the backend, blocking the caller until the
// task is enqueued rather than falling back inline when the queue is
// full. It is the entry point for work that must never execute on the
// calling goroutine — BRB ack *signing* is handed off from transport
// dispatch flows, and an inline ECDSA there would stall a whole channel's
// delivery. Blocking instead is safe (the backend never waits on dispatch
// progress) and is itself the backpressure: a replica flooded with
// prepares slows its reading of further prepares, not its other channels.
// Only a closed backend degrades to running f on the caller.
func (v *Verifier) submitBlocking(f func()) {
	if !v.ex.submitBlocking(f) {
		f()
	}
}

// Async schedules arbitrary work on the pool, blocking until enqueued
// (never running it on the caller while the pool is open). Protocol layers
// use it to move signing — the one remaining serial ECDSA of the hot path
// — onto the same workers that verification runs on (the BRB ack signer
// drains its pending-ack queue through here).
func (v *Verifier) Async(f func()) {
	v.submitBlocking(f)
}

// TryAsync schedules f on the pool when a slot is free and otherwise runs
// it inline on the caller. It is the submission form for continuations
// that may already be executing on a pool worker (the PR 9 commit
// coordinators): a blocking enqueue from a worker can deadlock a full
// queue against itself, while the inline fallback degrades overload to
// the caller's CPU — the documented backpressure — and can never wedge.
func (v *Verifier) TryAsync(f func()) {
	v.submit(f)
}

// Future resolves to the result of an asynchronous verification.
type Future struct {
	ex   executor
	done chan struct{}
	ok   bool
}

// futureTrue and futureFalse are shared pre-resolved futures for memo
// hits: immutable after init, so handing the same instance to every
// caller is safe and costs nothing per hit.
var futureTrue, futureFalse *Future

func init() {
	futureTrue = &Future{done: make(chan struct{}), ok: true}
	close(futureTrue.done)
	futureFalse = &Future{done: make(chan struct{}), ok: false}
	close(futureFalse.done)
}

func resolvedFuture(ok bool) *Future {
	if ok {
		return futureTrue
	}
	return futureFalse
}

// Wait blocks until the verification completes and reports its result.
// While waiting, the caller lends itself to the backend as an extra
// worker (running queued, stealable work), so waiting on a future from
// inside a backend callback cannot deadlock.
func (f *Future) Wait() bool {
	if f.ex == nil {
		<-f.done
		return f.ok
	}
	f.ex.waitDone(f.done)
	return f.ok
}

// VerifyAsync schedules an arbitrary boolean check on the pool. The
// callback, if non-nil, runs exactly once with the result (on a worker
// goroutine, or on the caller when the pool degrades to inline execution).
// No memoization is applied; use the typed entry points for that.
func (v *Verifier) VerifyAsync(check func() bool, cb func(bool)) *Future {
	f := &Future{ex: v.ex, done: make(chan struct{})}
	v.submit(func() {
		ok := check()
		f.ok = ok
		close(f.done)
		if cb != nil {
			cb(ok)
		}
	})
	return f
}

// VerifyDetached is VerifyAsync for callers that only want the callback:
// no future is allocated. This is the fire-and-forget form protocol
// handlers use per message, so it must not cost a heap allocation per
// call beyond the closures themselves.
func (v *Verifier) VerifyDetached(check func() bool, cb func(bool)) {
	v.submit(func() { cb(check()) })
}

// Memo key domains. Signatures by replicas and clients live in distinct
// namespaces so a colliding numeric ID cannot alias cache entries.
const (
	domainReplica byte = 0x01
	domainClient  byte = 0x02
)

func memoKey(domain byte, signer uint64, digest types.Digest, sig []byte) memoKeyT {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = domain
	binary.BigEndian.PutUint64(hdr[1:], signer)
	h.Write(hdr[:])
	h.Write(digest[:])
	h.Write(sig)
	var k memoKeyT
	h.Sum(k[:0])
	return k
}

// memoLookup consults the cache; reports (result, hit).
func (v *Verifier) memoLookup(k memoKeyT) (bool, bool) {
	ok, hit := v.memo.get(k)
	if hit {
		v.hits.Add(1)
	} else {
		v.misses.Add(1)
	}
	return ok, hit
}

// verifyMemoized runs the check through the cache, synchronously on the
// caller. The expensive path is taken at most once per (signer, digest,
// sig) while the entry stays cached.
func (v *Verifier) verifyMemoized(k memoKeyT, check func() bool) bool {
	if ok, hit := v.memoLookup(k); hit {
		return ok
	}
	ok := v.timedCheck(check)
	v.memo.put(k, ok)
	return ok
}

// verifyMemoizedAsync is verifyMemoized on the pool: memo hits resolve
// immediately on the caller, misses are scheduled.
func (v *Verifier) verifyMemoizedAsync(k memoKeyT, check func() bool, cb func(bool)) *Future {
	if ok, hit := v.memoLookup(k); hit {
		if cb != nil {
			cb(ok)
		}
		return resolvedFuture(ok)
	}
	f := &Future{ex: v.ex, done: make(chan struct{})}
	v.submit(func() {
		ok := v.timedCheck(check)
		v.memo.put(k, ok)
		f.ok = ok
		close(f.done)
		if cb != nil {
			cb(ok)
		}
	})
	return f
}

// verifyMemoizedDetached is verifyMemoizedAsync without the future.
func (v *Verifier) verifyMemoizedDetached(k memoKeyT, check func() bool, cb func(bool)) {
	if ok, hit := v.memoLookup(k); hit {
		cb(ok)
		return
	}
	v.submit(func() {
		ok := v.timedCheck(check)
		v.memo.put(k, ok)
		cb(ok)
	})
}

// VerifyReplica synchronously verifies a replica signature against reg,
// through the memo cache.
func (v *Verifier) VerifyReplica(reg *crypto.Registry, id types.ReplicaID, digest types.Digest, sig []byte) bool {
	k := memoKey(domainReplica, uint64(id), digest, sig)
	return v.verifyMemoized(k, func() bool { return reg.VerifySig(id, digest, sig) })
}

// VerifyReplicaAsync schedules a memoized replica-signature check. The
// callback, if non-nil, runs exactly once with the result; on a memo hit
// it runs immediately on the caller.
func (v *Verifier) VerifyReplicaAsync(reg *crypto.Registry, id types.ReplicaID, digest types.Digest, sig []byte, cb func(bool)) *Future {
	k := memoKey(domainReplica, uint64(id), digest, sig)
	return v.verifyMemoizedAsync(k, func() bool { return reg.VerifySig(id, digest, sig) }, cb)
}

// VerifyReplicaDetached is VerifyReplicaAsync for callers that only want
// the callback; no future is allocated.
func (v *Verifier) VerifyReplicaDetached(reg *crypto.Registry, id types.ReplicaID, digest types.Digest, sig []byte, cb func(bool)) {
	k := memoKey(domainReplica, uint64(id), digest, sig)
	v.verifyMemoizedDetached(k, func() bool { return reg.VerifySig(id, digest, sig) }, cb)
}

// VerifyClient synchronously verifies a client signature against keys,
// through the memo cache.
func (v *Verifier) VerifyClient(keys *crypto.ClientKeys, id types.ClientID, digest types.Digest, sig []byte) bool {
	k := memoKey(domainClient, uint64(id), digest, sig)
	return v.verifyMemoized(k, func() bool { return keys.VerifySig(id, digest, sig) })
}

// Check is one work item of VerifyBatch.
type Check func() bool

// VerifyBatch fans the checks out across the pool and resolves to whether
// every one of them passed. The first failure cancels checks that have not
// started yet (they resolve as skipped, the batch as failed).
func (v *Verifier) VerifyBatch(checks []Check) *Future {
	f := &Future{ex: v.ex, done: make(chan struct{})}
	n := len(checks)
	if n == 0 {
		f.ok = true
		close(f.done)
		return f
	}
	var remaining atomic.Int64
	remaining.Store(int64(n))
	var failed atomic.Bool
	for _, c := range checks {
		c := c
		v.submit(func() {
			if !failed.Load() && !c() {
				failed.Store(true)
			}
			if remaining.Add(-1) == 0 {
				f.ok = !failed.Load()
				close(f.done)
			}
		})
	}
	return f
}

// ClientSig is one client signature of a batch.
type ClientSig struct {
	Client types.ClientID
	Digest types.Digest
	Sig    []byte
}

// VerifyClientBatch fans a batch of client-signature checks across the
// pool, memoized per signature, resolving to whether all are valid. This
// is the replica's pre-endorsement check of a 256-payment batch (paper
// §VI-A) without holding any protocol lock.
func (v *Verifier) VerifyClientBatch(keys *crypto.ClientKeys, sigs []ClientSig) *Future {
	checks := make([]Check, len(sigs))
	for i, s := range sigs {
		s := s
		checks[i] = func() bool { return v.VerifyClient(keys, s.Client, s.Digest, s.Sig) }
	}
	return v.VerifyBatch(checks)
}

// certVote is one signature verdict of a parallel certificate check.
type certVote struct {
	replica types.ReplicaID
	ok      bool
	skipped bool
}

// certPrepassResult carries the cheap serial phase of certificate
// verification: structural checks done, memo consulted, remaining
// signatures collected.
type certPrepassResult struct {
	decided    bool // the memo alone settled it (err nil means accepted)
	pending    []crypto.PartialSig
	valid      int
	invalid    int
	badReplica types.ReplicaID
	maxInvalid int
}

// certPrepass performs duplicate/membership/key checks and resolves what
// it can from the memo cache. A non-nil error (or decided with nil error)
// means the outcome is already known.
func (v *Verifier) certPrepass(reg *crypto.Registry, cert crypto.Certificate, digest types.Digest, threshold int, membership func(types.ReplicaID) bool) (certPrepassResult, error) {
	var pp certPrepassResult
	if len(cert.Sigs) < threshold {
		return pp, fmt.Errorf("%w: have %d, need %d", crypto.ErrCertTooSmall, len(cert.Sigs), threshold)
	}
	seen := make(map[types.ReplicaID]struct{}, len(cert.Sigs))
	eligible := 0
	for _, ps := range cert.Sigs {
		if _, dup := seen[ps.Replica]; dup {
			return pp, fmt.Errorf("%w: replica %d", crypto.ErrCertDuplicate, ps.Replica)
		}
		seen[ps.Replica] = struct{}{}
		if membership != nil && !membership(ps.Replica) {
			continue
		}
		if !reg.Known(ps.Replica) {
			return pp, fmt.Errorf("%w: replica %d", crypto.ErrCertUnknownKey, ps.Replica)
		}
		eligible++
		if ok, hit := v.memoLookup(memoKey(domainReplica, uint64(ps.Replica), digest, ps.Sig)); hit {
			if ok {
				pp.valid++
			} else {
				pp.invalid++
				pp.badReplica = ps.Replica
			}
		} else {
			pp.pending = append(pp.pending, ps)
		}
	}
	if eligible < threshold {
		return pp, fmt.Errorf("%w: %d eligible of %d needed", crypto.ErrCertTooSmall, eligible, threshold)
	}
	pp.maxInvalid = eligible - threshold
	if pp.valid >= threshold {
		pp.decided = true
		return pp, nil
	}
	if pp.invalid > pp.maxInvalid {
		return pp, fmt.Errorf("%w: replica %d", crypto.ErrCertBadSig, pp.badReplica)
	}
	return pp, nil
}

// certSerial finishes a certificate check one signature at a time on the
// calling goroutine, with the same early exits as the parallel path.
func (v *Verifier) certSerial(pending []crypto.PartialSig, verify func(crypto.PartialSig) bool, valid, invalid int, badReplica types.ReplicaID, maxInvalid, threshold int) error {
	for _, ps := range pending {
		if verify(ps) {
			valid++
			if valid >= threshold {
				return nil
			}
		} else {
			invalid++
			badReplica = ps.Replica
			if invalid > maxInvalid {
				return fmt.Errorf("%w: replica %d", crypto.ErrCertBadSig, badReplica)
			}
		}
	}
	return fmt.Errorf("%w: %d valid of %d needed", crypto.ErrCertTooSmall, valid, threshold)
}

// VerifyCertificateInline is VerifyCertificate restricted to the calling
// goroutine: serial, memoized, with the same early exits and acceptance
// semantics, and — crucially — no blocking on the pool. It is the variant
// safe to call while holding a lock that pool callbacks may themselves
// acquire (the payment engine verifies dependency certificates under its
// state lock; see core.VerifyDependency).
func (v *Verifier) VerifyCertificateInline(reg *crypto.Registry, cert crypto.Certificate, digest types.Digest, threshold int, membership func(types.ReplicaID) bool) error {
	pp, err := v.certPrepass(reg, cert, digest, threshold, membership)
	if err != nil || pp.decided {
		return err
	}
	verify := func(ps crypto.PartialSig) bool {
		k := memoKey(domainReplica, uint64(ps.Replica), digest, ps.Sig)
		ok := v.timedCheck(func() bool { return reg.VerifySig(ps.Replica, digest, ps.Sig) })
		v.memo.put(k, ok)
		return ok
	}
	return v.certSerial(pp.pending, verify, pp.valid, pp.invalid, pp.badReplica, pp.maxInvalid, threshold)
}

// VerifyCertificate checks that cert carries at least threshold valid
// signatures over digest, fanning the signature checks across the pool
// and early-exiting as soon as the threshold is confirmed or failure is
// certain. Signature verdicts are memoized, so an origin re-verifying the
// certificate it aggregated from individually-verified acks pays no ECDSA
// at all.
//
// Semantics match crypto.VerifyCertificate with one deliberate relaxation:
// once threshold valid signatures are confirmed the certificate is
// accepted without examining the rest, so a certificate carrying a quorum
// of valid signatures plus extra invalid ones may be accepted where the
// serial checker reports ErrCertBadSig. A quorum of valid signatures is
// exactly the endorsement the protocol needs, so the relaxation is safe —
// and it is what makes early exit possible.
func (v *Verifier) VerifyCertificate(reg *crypto.Registry, cert crypto.Certificate, digest types.Digest, threshold int, membership func(types.ReplicaID) bool) error {
	pp, err := v.certPrepass(reg, cert, digest, threshold, membership)
	if err != nil || pp.decided {
		return err
	}
	valid, invalid := pp.valid, pp.invalid
	badReplica := pp.badReplica
	maxInvalid := pp.maxInvalid
	pending := pp.pending

	verify := func(ps crypto.PartialSig) bool {
		k := memoKey(domainReplica, uint64(ps.Replica), digest, ps.Sig)
		ok := v.timedCheck(func() bool { return reg.VerifySig(ps.Replica, digest, ps.Sig) })
		v.memo.put(k, ok)
		return ok
	}

	// Serial fast path: a single worker (or a near-resolved certificate)
	// gains nothing from fan-out, so skip the scheduling overhead.
	if v.ex.workers() == 1 || len(pending) <= 2 {
		return v.certSerial(pending, verify, valid, invalid, badReplica, maxInvalid, threshold)
	}

	// Fan out. The votes channel is buffered to len(pending) so stragglers
	// that finish after an early exit never block; the stop flag lets them
	// skip the ECDSA work entirely.
	votes := make(chan certVote, len(pending))
	var stop atomic.Bool
	for _, ps := range pending {
		ps := ps
		v.submit(func() {
			if stop.Load() {
				votes <- certVote{skipped: true}
				return
			}
			votes <- certVote{replica: ps.Replica, ok: verify(ps)}
		})
	}
	outstanding := len(pending)
	for outstanding > 0 {
		// awaitVote helps the backend while waiting, so a full queue
		// cannot stall the coordinator behind its own unscheduled checks.
		vt := v.ex.awaitVote(votes)
		outstanding--
		if vt.skipped {
			continue
		}
		if vt.ok {
			valid++
			if valid >= threshold {
				stop.Store(true)
				return nil
			}
		} else {
			invalid++
			badReplica = vt.replica
			if invalid > maxInvalid {
				stop.Store(true)
				return fmt.Errorf("%w: replica %d", crypto.ErrCertBadSig, badReplica)
			}
		}
	}
	// Fully drained without reaching the threshold; by the counting above
	// this implies invalid > maxInvalid was hit, but keep a safe fallback.
	return fmt.Errorf("%w: %d valid of %d needed", crypto.ErrCertTooSmall, valid, threshold)
}

// CertTally is the atomic completion state of a continuation-style
// certificate check: votes arrive from any goroutine, and the callback
// fires exactly once when the tally settles. need is the count of valid
// votes that accepts; budget is the count of invalid votes tolerated
// before acceptance becomes impossible (one more rejects). Exactly one
// terminal condition fires if every pending signature votes: with
// pending = need + budget outstanding votes, fewer than need valid votes
// forces more than budget invalid ones.
type CertTally struct {
	valid, invalid atomic.Int32
	need, budget   int32
	done           atomic.Bool
	cb             func(bool)
}

// NewCertTally builds a tally that calls cb exactly once. A need of zero
// or less is already-decided: cb(true) fires before NewCertTally returns.
func NewCertTally(need, budget int, cb func(bool)) *CertTally {
	t := &CertTally{need: int32(need), budget: int32(budget), cb: cb}
	if need <= 0 {
		t.done.Store(true)
		cb(true)
	}
	return t
}

// Vote records one signature verdict. Votes after the tally has settled
// are dropped; the winning vote invokes the callback on its own stack
// (a verifier lane, a helper inside Help/RunStolen, or the submitter on
// an inline memo/serial completion) — see the continuation discipline in
// the sched package docs for what the callback may do there.
func (t *CertTally) Vote(ok bool) {
	if t.done.Load() {
		return
	}
	if ok {
		if t.valid.Add(1) >= t.need && t.done.CompareAndSwap(false, true) {
			t.cb(true)
		}
	} else if t.invalid.Add(1) > t.budget && t.done.CompareAndSwap(false, true) {
		t.cb(false)
	}
}

// Done reports whether the tally has settled — the early-exit probe that
// lets a queued check skip its ECDSA once the outcome is known.
func (t *CertTally) Done() bool { return t.done.Load() }

// VerifyCertificateDetached is the continuation form of VerifyCertificate:
// cb(true) iff the certificate carries threshold valid signatures, with
// the same memoization, early exit, and acceptance relaxation. The
// callback runs exactly once — inline on the caller when the prepass or
// the fast-verify regime settles it (structural failure, memo hits, cheap
// checks), otherwise on whichever goroutine casts the deciding vote. It
// must follow the continuation discipline (sched package docs): never
// block on the verifier, and only re-enter flows that cannot re-enter
// this wait.
func (v *Verifier) VerifyCertificateDetached(reg *crypto.Registry, cert crypto.Certificate, digest types.Digest, threshold int, membership func(types.ReplicaID) bool, cb func(bool)) {
	pp, err := v.certPrepass(reg, cert, digest, threshold, membership)
	if err != nil {
		cb(false)
		return
	}
	if pp.decided {
		cb(true)
		return
	}
	verify := func(ps crypto.PartialSig) bool {
		k := memoKey(domainReplica, uint64(ps.Replica), digest, ps.Sig)
		ok := v.timedCheck(func() bool { return reg.VerifySig(ps.Replica, digest, ps.Sig) })
		v.memo.put(k, ok)
		return ok
	}
	// Cheap-check regime, single worker, or a near-resolved certificate:
	// finish serially on the caller — no continuation overhead.
	if v.FastVerify() || v.ex.workers() == 1 || len(pp.pending) <= 2 {
		cb(v.certSerial(pp.pending, verify, pp.valid, pp.invalid, pp.badReplica, pp.maxInvalid, threshold) == nil)
		return
	}
	t := NewCertTally(threshold-pp.valid, pp.maxInvalid-pp.invalid, cb)
	for _, ps := range pp.pending {
		ps := ps
		v.submit(func() {
			if t.Done() {
				return
			}
			t.Vote(verify(ps))
		})
	}
}
