package verifier

import (
	"sync"
	"time"

	"astro/internal/sched"
)

// executor is the execution backend of a Verifier. Two implementations
// exist:
//
//   - laneExec (the default) runs verification and signing as unkeyed,
//     stealable work on a lane runtime (internal/sched) — by default the
//     process-wide shared runtime, so crypto work rides the same lanes as
//     transport dispatch and settlement fan-out;
//   - chanExec is the PR 1 dedicated worker pool (its own goroutines and
//     task channel), kept as the measured baseline for the lane port
//     (WithWorkerPool) and for callers that want isolation.
//
// The helping contract is shared: goroutines blocked on a result
// (Future.Wait, the certificate coordinator) lend themselves to the
// backend, so a full queue — or a pool smaller than the wait graph — can
// never deadlock a waiter on its own unscheduled checks.
type executor interface {
	// workers reports the backend's parallelism.
	workers() int
	// trySubmit enqueues f without blocking; false means the queue is
	// full or the backend closed — the caller runs f inline (overload
	// degrades to the caller's CPU, no verification is ever lost).
	trySubmit(f func()) bool
	// submitBlocking enqueues f, blocking until accepted — never running
	// f on the caller while the backend is open. False means the backend
	// is closed and the caller must run f inline.
	submitBlocking(f func()) bool
	// waitDone helps run queued backend work until done closes.
	waitDone(done <-chan struct{})
	// awaitVote returns the next certificate vote, helping run queued
	// backend work while waiting.
	awaitVote(votes <-chan certVote) certVote
	// close stops the backend; queued work still drains.
	close()
}

// laneExec runs verifier work as unkeyed tasks on a lane runtime.
type laneExec struct {
	rt  *sched.Runtime
	own bool // Close closes the runtime only if this verifier created it

	closeMu sync.RWMutex
	closed  bool
}

func newLaneExec(rt *sched.Runtime, own bool) *laneExec {
	return &laneExec{rt: rt, own: own}
}

func (e *laneExec) workers() int { return e.rt.Lanes() }

func (e *laneExec) trySubmit(f func()) bool {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return false
	}
	return e.rt.TrySubmit(f)
}

func (e *laneExec) submitBlocking(f func()) bool {
	e.closeMu.RLock()
	if e.closed {
		e.closeMu.RUnlock()
		return false
	}
	e.closeMu.RUnlock()
	// Submit blocks until accepted and never runs f on the caller while
	// the runtime is open; a concurrent close degrades it to inline
	// execution, matching the closed contract above.
	e.rt.Submit(f)
	return true
}

func (e *laneExec) waitDone(done <-chan struct{}) {
	e.rt.Help(done)
}

// awaitVote interleaves vote receipt with stealing: the coordinator of a
// fanned-out certificate check runs pending work (its own checks
// included, wherever they were spilled) instead of idling, and can make
// progress even when every lane is occupied.
func (e *laneExec) awaitVote(votes <-chan certVote) certVote {
	var timer *time.Timer
	for {
		select {
		case vt := <-votes:
			if timer != nil {
				timer.Stop()
			}
			return vt
		default:
		}
		if e.rt.RunStolen() {
			continue
		}
		if timer == nil {
			timer = time.NewTimer(helpPoll)
		} else {
			timer.Reset(helpPoll)
		}
		select {
		case vt := <-votes:
			timer.Stop()
			return vt
		case <-timer.C:
		}
	}
}

// helpPoll bounds how long a vote waiter sleeps between steal sweeps when
// nothing is stealable (its own checks are running on lanes or other
// helpers).
const helpPoll = 100 * time.Microsecond

func (e *laneExec) close() {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return
	}
	e.closed = true
	e.closeMu.Unlock()
	if e.own {
		e.rt.Close()
	}
}

// chanExec is the dedicated worker pool: fixed goroutines draining one
// task channel. Kept verbatim from the pre-lane verifier as the measured
// baseline (WithWorkerPool) — BENCH_PR5 compares the two backends on the
// same host.
type chanExec struct {
	n     int
	tasks chan func()

	// closeMu guards closed and the tasks channel against a concurrent
	// close; submitters hold the read side across their sends.
	closeMu sync.RWMutex
	closed  bool
}

func newChanExec(workers int) *chanExec {
	e := &chanExec{
		n:     workers,
		tasks: make(chan func(), workers*128),
	}
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

func (e *chanExec) worker() {
	for f := range e.tasks {
		f()
	}
}

func (e *chanExec) workers() int { return e.n }

func (e *chanExec) trySubmit(f func()) bool {
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed {
		return false
	}
	select {
	case e.tasks <- f:
		return true
	default:
		return false
	}
}

func (e *chanExec) submitBlocking(f func()) bool {
	e.closeMu.RLock()
	if !e.closed {
		// Holding the read lock across the send keeps close (which closes
		// the channel under the write lock) ordered after the enqueue.
		e.tasks <- f
		e.closeMu.RUnlock()
		return true
	}
	e.closeMu.RUnlock()
	return false
}

func (e *chanExec) waitDone(done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		case t, open := <-e.tasks:
			if !open {
				// Pool closed: remaining work runs inline on submitters.
				<-done
				return
			}
			t()
		}
	}
}

func (e *chanExec) awaitVote(votes <-chan certVote) certVote {
	for {
		select {
		case vt := <-votes:
			return vt
		case t, open := <-e.tasks:
			if !open {
				return <-votes
			}
			t()
		}
	}
}

func (e *chanExec) close() {
	e.closeMu.Lock()
	defer e.closeMu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.tasks)
	}
}
