package verifier

// PR 5 evidence benchmarks: the verifier's two execution backends on the
// same workload — lane runtime (unkeyed stealable tasks on internal/sched,
// the default) vs the PR 1 dedicated worker pool (WithWorkerPool). The
// workload is the replica's hottest call: a batch of real-ECDSA client
// signature checks fanned out and waited on. Memoization is disabled so
// every iteration pays full verification.
//
// Regenerate BENCH_PR5.json with `make bench-pr5`.

import (
	"testing"

	"astro/internal/crypto"
	"astro/internal/types"
)

func benchVerifyBackend(b *testing.B, v *Verifier) {
	defer v.Close()
	keys := crypto.NewClientKeys()
	const n = 64
	sigs := make([]ClientSig, n)
	for i := 0; i < n; i++ {
		kp := crypto.MustGenerateKeyPair()
		keys.Add(types.ClientID(i), kp.Public())
		d := types.HashBytes([]byte{byte(i), byte(i >> 8)})
		sig, err := kp.Sign(d)
		if err != nil {
			b.Fatal(err)
		}
		sigs[i] = ClientSig{Client: types.ClientID(i), Digest: d, Sig: sig}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !v.VerifyClientBatch(keys, sigs).Wait() {
			b.Fatal("valid batch rejected")
		}
	}
	b.ReportMetric(float64(b.N*n), "sigs")
}

func BenchmarkVerifyBackendLanes(b *testing.B) {
	benchVerifyBackend(b, New(0, WithMemoSize(0)))
}

func BenchmarkVerifyBackendPool(b *testing.B) {
	benchVerifyBackend(b, New(0, WithMemoSize(0), WithWorkerPool()))
}
