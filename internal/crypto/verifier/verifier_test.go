package verifier

import (
	"errors"
	"sync"
	"testing"

	"astro/internal/crypto"
	"astro/internal/types"
)

// testRegistry builds n real-ECDSA replicas and a certificate of all their
// signatures over digest.
func testRegistry(t testing.TB, n int, digest types.Digest) (*crypto.Registry, []*crypto.KeyPair, crypto.Certificate) {
	t.Helper()
	reg := crypto.NewRegistry()
	keys := make([]*crypto.KeyPair, n)
	var cert crypto.Certificate
	for i := 0; i < n; i++ {
		keys[i] = crypto.MustGenerateKeyPair()
		reg.Add(types.ReplicaID(i), keys[i].Public())
		sig, err := keys[i].Sign(digest)
		if err != nil {
			t.Fatal(err)
		}
		cert.Add(crypto.PartialSig{Replica: types.ReplicaID(i), Sig: sig})
	}
	return reg, keys, cert
}

func TestVerifyReplicaMemo(t *testing.T) {
	v := New(2)
	defer v.Close()
	d := types.HashBytes([]byte("m"))
	reg, keys, _ := testRegistry(t, 1, d)
	sig, err := keys[0].Sign(d)
	if err != nil {
		t.Fatal(err)
	}

	if !v.VerifyReplica(reg, 0, d, sig) {
		t.Fatal("valid signature rejected")
	}
	h0, m0 := v.MemoStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("after first verify: hits=%d misses=%d, want 0/1", h0, m0)
	}
	// Same (signer, digest, sig): must be a cache hit.
	if !v.VerifyReplica(reg, 0, d, sig) {
		t.Fatal("cached valid signature rejected")
	}
	h1, m1 := v.MemoStats()
	if h1 != 1 || m1 != 1 {
		t.Fatalf("after repeat verify: hits=%d misses=%d, want 1/1", h1, m1)
	}
	// Failures are memoized too.
	bad := append([]byte(nil), sig...)
	bad[len(bad)-1] ^= 0xff
	if v.VerifyReplica(reg, 0, d, bad) {
		t.Fatal("corrupted signature accepted")
	}
	if v.VerifyReplica(reg, 0, d, bad) {
		t.Fatal("corrupted signature accepted from cache")
	}
	h2, m2 := v.MemoStats()
	if h2 != 2 || m2 != 2 {
		t.Fatalf("after failed repeat: hits=%d misses=%d, want 2/2", h2, m2)
	}
}

func TestVerifyAsyncCallback(t *testing.T) {
	v := New(2)
	defer v.Close()
	d := types.HashBytes([]byte("m"))
	reg, keys, _ := testRegistry(t, 1, d)
	sig, _ := keys[0].Sign(d)

	res := make(chan bool, 1)
	f := v.VerifyReplicaAsync(reg, 0, d, sig, func(ok bool) { res <- ok })
	if !f.Wait() {
		t.Fatal("future resolved false for valid signature")
	}
	if !<-res {
		t.Fatal("callback got false for valid signature")
	}
	// Memo hit path resolves immediately and still fires the callback.
	f = v.VerifyReplicaAsync(reg, 0, d, sig, func(ok bool) { res <- ok })
	if !f.Wait() || !<-res {
		t.Fatal("memoized async verify failed")
	}
}

func TestVerifyBatch(t *testing.T) {
	v := New(4)
	defer v.Close()
	trueN := func() bool { return true }
	falseN := func() bool { return false }

	if !v.VerifyBatch(nil).Wait() {
		t.Fatal("empty batch must pass")
	}
	if !v.VerifyBatch([]Check{trueN, trueN, trueN}).Wait() {
		t.Fatal("all-valid batch must pass")
	}
	if v.VerifyBatch([]Check{trueN, falseN, trueN}).Wait() {
		t.Fatal("batch with a failure must fail")
	}
}

func TestVerifyClientBatch(t *testing.T) {
	v := New(4)
	defer v.Close()
	keys := crypto.NewClientKeys()
	const n = 16
	sigs := make([]ClientSig, n)
	for i := 0; i < n; i++ {
		kp := crypto.MustGenerateKeyPair()
		keys.Add(types.ClientID(i), kp.Public())
		d := types.HashBytes([]byte{byte(i)})
		sig, err := kp.Sign(d)
		if err != nil {
			t.Fatal(err)
		}
		sigs[i] = ClientSig{Client: types.ClientID(i), Digest: d, Sig: sig}
	}
	if !v.VerifyClientBatch(keys, sigs).Wait() {
		t.Fatal("valid client batch rejected")
	}
	// One forged signature sinks the batch.
	forged := make([]ClientSig, n)
	copy(forged, sigs)
	forged[7].Sig = append([]byte(nil), sigs[7].Sig...)
	forged[7].Sig[2] ^= 0x55
	if v.VerifyClientBatch(keys, forged).Wait() {
		t.Fatal("client batch with forged signature accepted")
	}
}

func TestVerifyCertificateParallel(t *testing.T) {
	v := New(4)
	defer v.Close()
	d := types.HashBytes([]byte("batch"))
	reg, _, cert := testRegistry(t, 10, d)
	threshold := 7 // 2f+1 at n=10

	if err := v.VerifyCertificate(reg, cert, d, threshold, nil); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if err := v.VerifyCertificate(reg, cert, d, len(cert.Sigs)+1, nil); !errors.Is(err, crypto.ErrCertTooSmall) {
		t.Fatalf("oversized threshold: got %v, want ErrCertTooSmall", err)
	}
	wrong := types.HashBytes([]byte("other"))
	if err := v.VerifyCertificate(reg, cert, wrong, threshold, nil); !errors.Is(err, crypto.ErrCertBadSig) {
		t.Fatalf("wrong digest: got %v, want ErrCertBadSig", err)
	}
}

func TestVerifyCertificateForgedEarlyExit(t *testing.T) {
	// A certificate with exactly threshold signatures where one is forged
	// can never reach the quorum: failure must be reported as a bad
	// signature, from the first forged verdict.
	v := New(4)
	defer v.Close()
	d := types.HashBytes([]byte("batch"))
	reg, keys, _ := testRegistry(t, 7, d)
	var cert crypto.Certificate
	for i := 0; i < 7; i++ {
		sig, err := keys[i].Sign(d)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			sig[4] ^= 0xaa // forge one signature
		}
		cert.Add(crypto.PartialSig{Replica: types.ReplicaID(i), Sig: sig})
	}
	if err := v.VerifyCertificate(reg, cert, d, 7, nil); !errors.Is(err, crypto.ErrCertBadSig) {
		t.Fatalf("forged certificate: got %v, want ErrCertBadSig", err)
	}
	// And the verdict is memoized: a redelivery fails from cache without
	// re-running ECDSA on the forged signature.
	h0, _ := v.MemoStats()
	if err := v.VerifyCertificate(reg, cert, d, 7, nil); !errors.Is(err, crypto.ErrCertBadSig) {
		t.Fatalf("redelivered forged certificate: got %v, want ErrCertBadSig", err)
	}
	h1, _ := v.MemoStats()
	if h1 == h0 {
		t.Fatal("redelivered certificate produced no memo hits")
	}
}

func TestVerifyCertificateQuorumSemantics(t *testing.T) {
	// Extra invalid signatures beyond a confirmed quorum do not invalidate
	// the certificate (the documented relaxation vs the serial checker),
	// but duplicates and unknown signers are still structural errors.
	v := New(1) // serial path must implement the same semantics
	defer v.Close()
	d := types.HashBytes([]byte("batch"))
	reg, keys, cert := testRegistry(t, 10, d)

	forged := crypto.Certificate{}
	for _, ps := range cert.Sigs {
		forged.Add(ps)
	}
	// Append an extra signer with a garbage signature.
	extra := crypto.MustGenerateKeyPair()
	reg.Add(99, extra.Public())
	forged.Add(crypto.PartialSig{Replica: 99, Sig: []byte("garbage")})
	if err := v.VerifyCertificate(reg, forged, d, 7, nil); err != nil {
		t.Fatalf("quorum of valid sigs + extra garbage: got %v, want nil", err)
	}

	unknown := crypto.Certificate{}
	sig, _ := keys[0].Sign(d)
	unknown.Add(crypto.PartialSig{Replica: 1000, Sig: sig})
	if err := v.VerifyCertificate(reg, unknown, d, 1, nil); !errors.Is(err, crypto.ErrCertUnknownKey) {
		t.Fatalf("unknown signer: got %v, want ErrCertUnknownKey", err)
	}
}

func TestVerifyCertificateMembership(t *testing.T) {
	v := New(4)
	defer v.Close()
	d := types.HashBytes([]byte("batch"))
	reg, _, cert := testRegistry(t, 6, d)
	inShard := func(r types.ReplicaID) bool { return r < 3 }
	if err := v.VerifyCertificate(reg, cert, d, 3, inShard); err != nil {
		t.Fatalf("membership-filtered certificate rejected: %v", err)
	}
	if err := v.VerifyCertificate(reg, cert, d, 4, inShard); !errors.Is(err, crypto.ErrCertTooSmall) {
		t.Fatalf("threshold above membership: got %v, want ErrCertTooSmall", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	// Hammer one verifier from many goroutines mixing all entry points;
	// run under -race this is the data-race regression test.
	v := New(4, WithMemoSize(64)) // small memo to force eviction churn
	defer v.Close()
	d := types.HashBytes([]byte("m"))
	reg, keys, cert := testRegistry(t, 10, d)
	sig0, _ := keys[0].Sign(d)
	bad := append([]byte(nil), sig0...)
	bad[0] ^= 1

	var wg sync.WaitGroup
	errs := make(chan string, 256)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if !v.VerifyReplica(reg, 0, d, sig0) {
					errs <- "valid sig rejected"
				}
				if v.VerifyReplica(reg, 0, d, bad) {
					errs <- "bad sig accepted"
				}
				if err := v.VerifyCertificate(reg, cert, d, 7, nil); err != nil {
					errs <- "valid cert rejected: " + err.Error()
				}
				f := v.VerifyReplicaAsync(reg, types.ReplicaID(i%10), d, cert.Sigs[i%10].Sig, nil)
				if !f.Wait() {
					errs <- "async valid sig rejected"
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestMemoEviction(t *testing.T) {
	c := newMemoCache(2)
	k1 := memoKey(domainReplica, 1, types.Digest{}, []byte("a"))
	k2 := memoKey(domainReplica, 2, types.Digest{}, []byte("b"))
	k3 := memoKey(domainReplica, 3, types.Digest{}, []byte("c"))
	c.put(k1, true)
	c.put(k2, false)
	if _, hit := c.get(k1); !hit {
		t.Fatal("k1 evicted prematurely")
	}
	c.put(k3, true) // evicts k2 (least recently used)
	if _, hit := c.get(k2); hit {
		t.Fatal("k2 not evicted")
	}
	if ok, hit := c.get(k1); !hit || !ok {
		t.Fatal("k1 lost")
	}
	if ok, hit := c.get(k3); !hit || !ok {
		t.Fatal("k3 lost")
	}
	if got := c.len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
}

func TestCloseRunsInline(t *testing.T) {
	v := New(2)
	v.Close()
	ran := false
	f := v.VerifyAsync(func() bool { ran = true; return true }, nil)
	if !f.Wait() || !ran {
		t.Fatal("submission after Close did not run inline")
	}
}

func TestVerifyDetached(t *testing.T) {
	v := New(2)
	defer v.Close()
	d := types.HashBytes([]byte("m"))
	reg, keys, _ := testRegistry(t, 1, d)
	sig, _ := keys[0].Sign(d)

	res := make(chan bool, 2)
	v.VerifyReplicaDetached(reg, 0, d, sig, func(ok bool) { res <- ok })
	if !<-res {
		t.Fatal("detached verify of valid signature reported false")
	}
	// Second call is a memo hit: the callback must still fire, inline.
	v.VerifyReplicaDetached(reg, 0, d, sig, func(ok bool) { res <- ok })
	if !<-res {
		t.Fatal("memoized detached verify reported false")
	}
	v.VerifyDetached(func() bool { return false }, func(ok bool) { res <- ok })
	if <-res {
		t.Fatal("detached verify of failing check reported true")
	}
}
