package verifier

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"astro/internal/metrics"
	"astro/internal/types"
	"astro/internal/wire"
)

// ChainSigner is the reusable scheduling core of batch-level signing,
// generalized from the BRB ack signer: a single logical signer drains a
// queue of pending items on the verifier pool, and while one signature is
// in flight, further items accumulate — the drain then covers them all
// with ONE signature over a hash chain of their digests, so per-item
// signing cost shrinks with load (self-clocked batching). The protocol
// layer supplies two flush callbacks: flushOne keeps the original
// single-item wire form (so batching is purely an under-load optimization
// and the wire stays compatible with peers that never batch), flushChain
// emits one signature covering a whole slice of items.
//
// Chain batching is adaptive: a chain trades one signature for chain bytes
// in every message that carries it, which only pays off when signing is
// expensive (real ECDSA, ~25-60µs) — not for cheap authenticators (the
// simulation harness's ~1µs HMACs). The signer therefore tracks an EWMA of
// observed signing latency (fold measurements in through Sign; seed it
// with a probe via SeedCost) and engages chains only above the threshold.
//
// Enqueue blocks until the drain task is accepted by the pool — never
// running the signature on the caller — so protocol handlers on transport
// dispatch goroutines can feed it directly; a saturated pool backpressures
// the feeding channel, not the other channels. A ChainSigner is safe for
// concurrent use.
type ChainSigner[T any] struct {
	v          *Verifier
	maxBatch   int
	threshold  time.Duration
	flushOne   func(T)
	flushChain func([]T, *Wave)

	mu      sync.Mutex
	pending []T
	signing bool

	// cost is the EWMA of observed signing latency; ops/covered are
	// lifetime statistics (their ratio is the amortization factor).
	cost    metrics.EWMA
	ops     atomic.Uint64
	covered atomic.Uint64
}

// DefaultChainThreshold separates cheap authenticators from real ECDSA:
// chains engage only when the measured signing cost exceeds it.
const DefaultChainThreshold = 10 * time.Microsecond

// Wave is the per-flush scratch context handed to chain flush callbacks.
// A chain flush fans one signature out to several destinations, and the
// expensive part of that fan-out — serializing the chain — is identical
// for every destination. Scratch hands the callback pooled writers whose
// contents stay valid for the whole flush, so the callback encodes the
// chain (and any other shared prefix) exactly once and reuses the bytes
// per destination; the signer releases every scratch writer back to the
// pool when the flush returns.
type Wave struct {
	scratch []*wire.Writer
}

// Scratch returns an empty pooled writer with at least the given capacity.
// Its bytes remain valid until the flush callback returns; the caller must
// NOT retain them (transports that copy are fine) and must not Release the
// writer itself.
func (wv *Wave) Scratch(capacity int) *wire.Writer {
	w := wire.AcquireWriter(capacity)
	wv.scratch = append(wv.scratch, w)
	return w
}

// release returns every scratch writer to the pool (drain side, after the
// flush callback returns).
func (wv *Wave) release() {
	for _, w := range wv.scratch {
		w.Release()
	}
	wv.scratch = wv.scratch[:0]
}

// NewChainSigner creates a chain signer draining on v (nil selects the
// shared Default pool). maxBatch caps how many items one signature covers;
// threshold <= 0 selects DefaultChainThreshold. flushChain receives a Wave
// whose Scratch writers let it build the shared per-wave encodings once.
func NewChainSigner[T any](v *Verifier, maxBatch int, threshold time.Duration, flushOne func(T), flushChain func([]T, *Wave)) *ChainSigner[T] {
	if v == nil {
		v = Default()
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	if threshold <= 0 {
		threshold = DefaultChainThreshold
	}
	return &ChainSigner[T]{
		v:          v,
		maxBatch:   maxBatch,
		threshold:  threshold,
		flushOne:   flushOne,
		flushChain: flushChain,
	}
}

// SeedCost initializes the signing-cost estimate (typically from one probe
// signature at construction), so the first loaded drain already knows
// whether chain batching pays off.
func (s *ChainSigner[T]) SeedCost(d time.Duration) { s.cost.Set(d) }

// Sign runs the protocol layer's signing primitive, folding its latency
// into the cost EWMA and charging covered items against one signing
// operation in the lifetime statistics. Flush callbacks route their
// signatures through here.
func (s *ChainSigner[T]) Sign(covered int, sign func() ([]byte, error)) ([]byte, error) {
	start := time.Now()
	sig, err := sign()
	s.cost.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	s.ops.Add(1)
	s.covered.Add(uint64(covered))
	return sig, nil
}

// Stats returns how many signing operations ran and how many items they
// covered. covered/ops > 1 means chain batching engaged.
func (s *ChainSigner[T]) Stats() (ops, covered uint64) {
	return s.ops.Load(), s.covered.Load()
}

// Pending returns the number of items queued and not yet signed.
func (s *ChainSigner[T]) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Enqueue queues one item for signing. Whichever enqueue finds the signer
// idle kicks the drain onto the pool (blocking until the task is accepted,
// never signing on the caller); everything that accumulates while the
// drain signs is batch-signed on its next pass.
func (s *ChainSigner[T]) Enqueue(item T) {
	s.mu.Lock()
	s.pending = append(s.pending, item)
	kick := !s.signing
	if kick {
		s.signing = true
	}
	s.mu.Unlock()
	if kick {
		s.v.Async(s.drain)
	}
}

// drain is the pool-side signer: it repeatedly takes everything queued and
// flushes it, one signature per pass. Each signature in flight lets the
// next pass accumulate more items, so the chain length — and with it the
// per-item signing cost — tracks load automatically.
func (s *ChainSigner[T]) drain() {
	var wave Wave
	for {
		s.mu.Lock()
		batch := s.pending
		s.pending = nil
		if len(batch) == 0 {
			s.signing = false
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		for len(batch) > 0 {
			n := 1 // cheap signer: chains would cost more than they save
			if s.cost.Value() >= s.threshold {
				n = min(len(batch), s.maxBatch)
			}
			if n == 1 {
				s.flushOne(batch[0])
			} else {
				s.flushChain(batch[:n:n], &wave)
				wave.release()
			}
			batch = batch[n:]
		}
	}
}

// ChainDigest computes a domain-separated hash over an ordered list of
// digests — the value one chain signature covers. Protocol layers choose
// distinct domain bytes so chain signatures from different subsystems can
// never be replayed as one another.
func ChainDigest(domain byte, chain []types.Digest) types.Digest {
	h := sha256.New()
	var hdr [5]byte
	hdr[0] = domain
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(chain)))
	h.Write(hdr[:])
	for _, d := range chain {
		h.Write(d[:])
	}
	var out types.Digest
	h.Sum(out[:0])
	return out
}
