package crypto

import (
	"errors"
	"testing"
	"testing/quick"

	"astro/internal/types"
	"astro/internal/wire"
)

func TestSignVerify(t *testing.T) {
	kp := MustGenerateKeyPair()
	d := types.HashBytes([]byte("payment"))
	sig, err := kp.Sign(d)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if !Verify(kp.Public(), d, sig) {
		t.Error("valid signature rejected")
	}
	d2 := types.HashBytes([]byte("other"))
	if Verify(kp.Public(), d2, sig) {
		t.Error("signature accepted for wrong digest")
	}
	other := MustGenerateKeyPair()
	if Verify(other.Public(), d, sig) {
		t.Error("signature accepted under wrong key")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	kp := MustGenerateKeyPair()
	der := kp.PublicBytes()
	pub, err := ParsePublicKey(der)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d := types.HashBytes([]byte("x"))
	sig, err := kp.Sign(d)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if !Verify(pub, d, sig) {
		t.Error("parsed key does not verify")
	}
	if _, err := ParsePublicKey([]byte("garbage")); err == nil {
		t.Error("parse garbage: want error")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	if reg.Lookup(1) != nil {
		t.Error("lookup on empty registry should be nil")
	}
	kp := MustGenerateKeyPair()
	reg.Add(1, kp.Public())
	if reg.Lookup(1) != kp.Public() {
		t.Error("lookup returned wrong key")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
}

func buildCert(t *testing.T, reg *Registry, d types.Digest, ids []types.ReplicaID) Certificate {
	t.Helper()
	var cert Certificate
	for _, id := range ids {
		kp := MustGenerateKeyPair()
		reg.Add(id, kp.Public())
		sig, err := kp.Sign(d)
		if err != nil {
			t.Fatalf("sign: %v", err)
		}
		cert.Add(PartialSig{Replica: id, Sig: sig})
	}
	return cert
}

func TestCertificateVerify(t *testing.T) {
	reg := NewRegistry()
	d := types.HashBytes([]byte("batch"))
	cert := buildCert(t, reg, d, []types.ReplicaID{0, 1, 2})

	if err := VerifyCertificate(reg, cert, d, 3, nil); err != nil {
		t.Errorf("valid cert rejected: %v", err)
	}
	if err := VerifyCertificate(reg, cert, d, 4, nil); !errors.Is(err, ErrCertTooSmall) {
		t.Errorf("under-threshold cert: err = %v", err)
	}
	wrong := types.HashBytes([]byte("tampered"))
	if err := VerifyCertificate(reg, cert, wrong, 3, nil); !errors.Is(err, ErrCertBadSig) {
		t.Errorf("wrong-digest cert: err = %v", err)
	}
}

func TestCertificateDuplicateSigner(t *testing.T) {
	reg := NewRegistry()
	d := types.HashBytes([]byte("dup"))
	kp := MustGenerateKeyPair()
	reg.Add(5, kp.Public())
	sig, err := kp.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	// Certificate.Add dedups, so construct duplicates directly.
	cert := Certificate{Sigs: []PartialSig{{Replica: 5, Sig: sig}, {Replica: 5, Sig: sig}}}
	if err := VerifyCertificate(reg, cert, d, 2, nil); !errors.Is(err, ErrCertDuplicate) {
		t.Errorf("duplicate signer: err = %v", err)
	}
}

func TestCertificateUnknownSigner(t *testing.T) {
	reg := NewRegistry()
	d := types.HashBytes([]byte("unk"))
	kp := MustGenerateKeyPair()
	sig, err := kp.Sign(d)
	if err != nil {
		t.Fatal(err)
	}
	cert := Certificate{Sigs: []PartialSig{{Replica: 99, Sig: sig}}}
	if err := VerifyCertificate(reg, cert, d, 1, nil); !errors.Is(err, ErrCertUnknownKey) {
		t.Errorf("unknown signer: err = %v", err)
	}
}

func TestCertificateMembership(t *testing.T) {
	reg := NewRegistry()
	d := types.HashBytes([]byte("shard"))
	cert := buildCert(t, reg, d, []types.ReplicaID{0, 1, 2, 3})
	inShard := func(id types.ReplicaID) bool { return id < 2 }
	// Only replicas 0,1 count toward the threshold.
	if err := VerifyCertificate(reg, cert, d, 2, inShard); err != nil {
		t.Errorf("cert with 2 in-shard sigs rejected at threshold 2: %v", err)
	}
	if err := VerifyCertificate(reg, cert, d, 3, inShard); !errors.Is(err, ErrCertTooSmall) {
		t.Errorf("cert with 2 in-shard sigs at threshold 3: err = %v", err)
	}
}

func TestCertificateAddKeepsSorted(t *testing.T) {
	var cert Certificate
	for _, id := range []types.ReplicaID{5, 1, 3, 1, 2, 5} {
		cert.Add(PartialSig{Replica: id, Sig: []byte{byte(id)}})
	}
	if cert.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (dedup)", cert.Len())
	}
	for i := 1; i < len(cert.Sigs); i++ {
		if cert.Sigs[i-1].Replica >= cert.Sigs[i].Replica {
			t.Fatalf("not sorted at %d: %v", i, cert.Sigs)
		}
	}
}

func TestCertificateCodec(t *testing.T) {
	reg := NewRegistry()
	d := types.HashBytes([]byte("enc"))
	cert := buildCert(t, reg, d, []types.ReplicaID{2, 7, 9})

	w := wire.NewWriter(0)
	EncodeCertificate(w, cert)
	r := wire.NewReader(w.Bytes())
	got, err := DecodeCertificate(r)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if err := VerifyCertificate(reg, got, d, 3, nil); err != nil {
		t.Errorf("round-tripped cert invalid: %v", err)
	}
}

func TestCertificateCodecCorrupt(t *testing.T) {
	r := wire.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := DecodeCertificate(r); err == nil {
		t.Error("decode absurd count: want error")
	}
}

func TestLinkAuthenticator(t *testing.T) {
	master := []byte("shared-master-secret")
	a := NewLinkAuthenticator(1, master)
	b := NewLinkAuthenticator(2, master)
	c := NewLinkAuthenticator(3, master)

	msg := []byte("echo (s,n)")
	tag := a.Tag(2, msg)
	if !b.VerifyTag(1, msg, tag) {
		t.Error("peer rejects valid tag")
	}
	if b.VerifyTag(1, []byte("tampered"), tag) {
		t.Error("tampered message accepted")
	}
	if c.VerifyTag(1, msg, tag) {
		t.Error("third party verified tag for foreign link")
	}
	if len(tag) != TagSize {
		t.Errorf("tag size = %d, want %d", len(tag), TagSize)
	}
}

func TestLinkAuthenticatorSymmetry(t *testing.T) {
	master := []byte("m")
	f := func(x, y uint32, msg []byte) bool {
		a := NewLinkAuthenticator(types.ReplicaID(x), master)
		b := NewLinkAuthenticator(types.ReplicaID(y), master)
		return b.VerifyTag(types.ReplicaID(x), msg, a.Tag(types.ReplicaID(y), msg))
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
