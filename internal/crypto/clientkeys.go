package crypto

import (
	"crypto/ecdsa"
	"sync"

	"astro/internal/types"
)

// ClientKeys maps client identities to their public keys, for deployments
// enabling end-to-end client signatures (paper §VI-A): each payment is
// signed by its spender, so even a malicious representative cannot issue
// payments without the client's consent.
//
// Like the replica Registry, client keys are distributed during the
// permissioned setup ("both clients and replicas hold an identifying
// public/secret key-pair", §III).
type ClientKeys struct {
	mu   sync.RWMutex
	keys map[types.ClientID]*ecdsa.PublicKey
}

// NewClientKeys returns an empty client key registry.
func NewClientKeys() *ClientKeys {
	return &ClientKeys{keys: make(map[types.ClientID]*ecdsa.PublicKey)}
}

// Add registers a client's public key.
func (c *ClientKeys) Add(id types.ClientID, pub *ecdsa.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.keys[id] = pub
}

// VerifySig reports whether sig is a valid signature over digest by the
// client's registered key. Unknown clients never verify.
func (c *ClientKeys) VerifySig(id types.ClientID, digest types.Digest, sig []byte) bool {
	c.mu.RLock()
	pub := c.keys[id]
	c.mu.RUnlock()
	if pub == nil {
		return false
	}
	return Verify(pub, digest, sig)
}

// Len returns the number of registered clients.
func (c *ClientKeys) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.keys)
}
