package crypto_test

import (
	"fmt"
	"testing"

	"astro/internal/crypto"
	"astro/internal/crypto/verifier"
	"astro/internal/types"
)

func BenchmarkSign(b *testing.B) {
	kp := crypto.MustGenerateKeyPair()
	d := types.HashBytes([]byte("payment batch"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := crypto.MustGenerateKeyPair()
	d := types.HashBytes([]byte("payment batch"))
	sig, err := kp.Sign(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !crypto.Verify(kp.Public(), d, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkSimSign(b *testing.B) {
	kp := crypto.NewSimKeyPair(1, []byte("master"))
	d := types.HashBytes([]byte("payment batch"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(d); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCert builds an n-replica registry and a full certificate over d.
func benchCert(b *testing.B, n int, d types.Digest) (*crypto.Registry, crypto.Certificate) {
	b.Helper()
	reg := crypto.NewRegistry()
	var cert crypto.Certificate
	for i := types.ReplicaID(0); i < types.ReplicaID(n); i++ {
		kp := crypto.MustGenerateKeyPair()
		reg.Add(i, kp.Public())
		sig, err := kp.Sign(d)
		if err != nil {
			b.Fatal(err)
		}
		cert.Add(crypto.PartialSig{Replica: i, Sig: sig})
	}
	return reg, cert
}

func BenchmarkVerifyCertificate(b *testing.B) {
	// A 2f+1 certificate at f=1 (the Astro II commit certificate for a
	// minimal system).
	d := types.HashBytes([]byte("batch"))
	reg, cert := benchCert(b, 3, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := crypto.VerifyCertificate(reg, cert, d, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyCertificateParallel compares the serial checker against
// the worker-pool one on the paper's N=10 configuration (2f+1 = 7
// signatures per commit certificate). Memoization is disabled so both
// sides pay full ECDSA every iteration; the parallel side's speedup is
// bounded by min(GOMAXPROCS, 7).
func BenchmarkVerifyCertificateParallel(b *testing.B) {
	d := types.HashBytes([]byte("batch"))
	reg, full := benchCert(b, 10, d)
	cert := crypto.Certificate{Sigs: full.Sigs[:7]} // exactly 2f+1, as an origin commits
	const threshold = 7

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := crypto.VerifyCertificate(reg, cert, d, threshold, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		v := verifier.New(0, verifier.WithMemoSize(0))
		defer v.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.VerifyCertificate(reg, cert, d, threshold, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-memo", func(b *testing.B) {
		// With the memo on, a re-verified certificate costs hashes only —
		// the redelivered-commit case.
		v := verifier.New(0)
		defer v.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.VerifyCertificate(reg, cert, d, threshold, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVerifyBatchClientSigs measures the pre-endorsement client
// signature check of a 256-payment batch (paper §VI-A), serial vs pooled.
func BenchmarkVerifyBatchClientSigs(b *testing.B) {
	const batch = 256
	keys := crypto.NewClientKeys()
	sigs := make([]verifier.ClientSig, batch)
	for i := 0; i < batch; i++ {
		kp := crypto.MustGenerateKeyPair()
		keys.Add(types.ClientID(i), kp.Public())
		d := types.HashBytes([]byte(fmt.Sprintf("p%d", i)))
		sig, err := kp.Sign(d)
		if err != nil {
			b.Fatal(err)
		}
		sigs[i] = verifier.ClientSig{Client: types.ClientID(i), Digest: d, Sig: sig}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sigs {
				if !keys.VerifySig(s.Client, s.Digest, s.Sig) {
					b.Fatal("verify failed")
				}
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		v := verifier.New(0, verifier.WithMemoSize(0))
		defer v.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !v.VerifyClientBatch(keys, sigs).Wait() {
				b.Fatal("verify failed")
			}
		}
	})
}

func BenchmarkMACTag(b *testing.B) {
	auth := crypto.NewLinkAuthenticator(1, []byte("master"))
	msg := make([]byte, 8192) // one 256-payment batch
	b.ResetTimer()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		auth.Tag(2, msg)
	}
}
