package crypto

import (
	"testing"

	"astro/internal/types"
)

func BenchmarkSign(b *testing.B) {
	kp := MustGenerateKeyPair()
	d := types.HashBytes([]byte("payment batch"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	kp := MustGenerateKeyPair()
	d := types.HashBytes([]byte("payment batch"))
	sig, err := kp.Sign(d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Verify(kp.Public(), d, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkSimSign(b *testing.B) {
	kp := NewSimKeyPair(1, []byte("master"))
	d := types.HashBytes([]byte("payment batch"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kp.Sign(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyCertificate(b *testing.B) {
	// A 2f+1 certificate at f=1 (the Astro II commit certificate for a
	// minimal system).
	reg := NewRegistry()
	d := types.HashBytes([]byte("batch"))
	var cert Certificate
	for i := types.ReplicaID(0); i < 3; i++ {
		kp := MustGenerateKeyPair()
		reg.Add(i, kp.Public())
		sig, err := kp.Sign(d)
		if err != nil {
			b.Fatal(err)
		}
		cert.Add(PartialSig{Replica: i, Sig: sig})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyCertificate(reg, cert, d, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMACTag(b *testing.B) {
	auth := NewLinkAuthenticator(1, []byte("master"))
	msg := make([]byte, 8192) // one 256-payment batch
	b.ResetTimer()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		auth.Tag(2, msg)
	}
}
