// Package crypto provides the cryptographic substrate of Astro:
//
//   - ECDSA (NIST P-256) key pairs, signing and verification — the scheme
//     the paper uses for Astro II's signature-based broadcast and for
//     CREDIT messages;
//   - a replica key registry for verifying signatures and certificates;
//   - quorum certificates: sets of (replica, signature) pairs over a common
//     digest, verified against a threshold (2f+1 for BRB commits, f+1 for
//     dependency certificates);
//   - HMAC-SHA256 pairwise link authenticators — the MAC scheme Astro I
//     uses for channel authentication.
//
// Only the Go standard library is used.
package crypto

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/x509"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"astro/internal/types"
)

// KeyPair is a signing key. Two kinds exist:
//
//   - real ECDSA P-256 keys (GenerateKeyPair) — the scheme the paper uses
//     and the default everywhere in the library;
//   - simulated authenticators (NewSimKeyPair) — constant-time HMAC tags
//     with ECDSA-like wire size, used only by the experiment harness to
//     emulate the paper's per-replica CPUs on a single-core host (every
//     replica of the simulation shares one core, which would otherwise
//     make signature throughput, not protocol structure, the bottleneck).
//     Simulated signatures verify only against a Registry sharing the
//     same master secret.
type KeyPair struct {
	priv *ecdsa.PrivateKey

	simID     types.ReplicaID
	simMaster []byte
}

// simSigSize pads simulated tags to a typical ECDSA-P256 ASN.1 signature
// length so bandwidth accounting stays faithful.
const simSigSize = 71

// NewSimKeyPair creates a simulated signing identity bound to a shared
// master secret (see KeyPair).
func NewSimKeyPair(id types.ReplicaID, master []byte) *KeyPair {
	m := make([]byte, len(master))
	copy(m, master)
	return &KeyPair{simID: id, simMaster: m}
}

// simTag computes the simulated signature of digest by id under master.
func simTag(master []byte, id types.ReplicaID, digest types.Digest) []byte {
	mac := hmac.New(sha256.New, master)
	var hdr [4]byte
	hdr[0] = byte(id >> 24)
	hdr[1] = byte(id >> 16)
	hdr[2] = byte(id >> 8)
	hdr[3] = byte(id)
	mac.Write(hdr[:])
	mac.Write(digest[:])
	tag := mac.Sum(nil)
	out := make([]byte, simSigSize)
	copy(out, tag)
	copy(out[len(tag):], tag) // deterministic padding
	return out
}

// GenerateKeyPair creates a fresh P-256 key pair.
func GenerateKeyPair() (*KeyPair, error) {
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("generate key: %w", err)
	}
	return &KeyPair{priv: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair for setup paths where key
// generation failure is unrecoverable (it can only fail if the system
// entropy source is broken).
func MustGenerateKeyPair() *KeyPair {
	kp, err := GenerateKeyPair()
	if err != nil {
		panic(err)
	}
	return kp
}

// DeriveKeyPair deterministically derives a P-256 key pair from a seed.
// Every party deriving from the same seed obtains the same key, which the
// demo deployment tools (cmd/astro-node) use to bootstrap a shared key
// registry from one secret. Production deployments should distribute
// independently generated keys instead.
//
// The scalar is computed directly from the seed stream (ecdsa.GenerateKey
// is intentionally non-deterministic even with a fixed reader).
func DeriveKeyPair(seed []byte) (*KeyPair, error) {
	curve := elliptic.P256()
	params := curve.Params()
	// 40 bytes of stream make the mod-(N-1) bias negligible (< 2^-64).
	buf := make([]byte, 40)
	if _, err := newHashStream(seed).Read(buf); err != nil {
		return nil, fmt.Errorf("derive key: %w", err)
	}
	d := new(big.Int).SetBytes(buf)
	d.Mod(d, new(big.Int).Sub(params.N, big.NewInt(1)))
	d.Add(d, big.NewInt(1)) // d in [1, N-1]
	priv := &ecdsa.PrivateKey{
		PublicKey: ecdsa.PublicKey{Curve: curve},
		D:         d,
	}
	priv.PublicKey.X, priv.PublicKey.Y = curve.ScalarBaseMult(d.Bytes())
	return &KeyPair{priv: priv}, nil
}

// hashStream is a deterministic byte stream: SHA-256(seed || counter).
type hashStream struct {
	seed []byte
	ctr  uint64
	buf  []byte
}

func newHashStream(seed []byte) *hashStream {
	s := make([]byte, len(seed))
	copy(s, seed)
	return &hashStream{seed: s}
}

func (h *hashStream) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(h.buf) == 0 {
			d := sha256.New()
			d.Write(h.seed)
			var c [8]byte
			for i := 0; i < 8; i++ {
				c[i] = byte(h.ctr >> (56 - 8*i))
			}
			d.Write(c[:])
			h.ctr++
			h.buf = d.Sum(nil)
		}
		k := copy(p[n:], h.buf)
		h.buf = h.buf[k:]
		n += k
	}
	return n, nil
}

// Public returns the public key, or nil for simulated keys.
func (k *KeyPair) Public() *ecdsa.PublicKey {
	if k.priv == nil {
		return nil
	}
	return &k.priv.PublicKey
}

// simKeyMagic prefixes serialized simulated public identities.
const simKeyMagic = "astro-sim-key:"

// PublicBytes returns the serialized public key (PKIX/DER for real keys,
// a tagged identity for simulated ones), suitable for distribution in the
// permissioned setup phase.
func (k *KeyPair) PublicBytes() []byte {
	if k.priv == nil {
		return []byte(fmt.Sprintf("%s%d", simKeyMagic, k.simID))
	}
	der, err := x509.MarshalPKIXPublicKey(k.Public())
	if err != nil {
		// Marshalling a valid in-memory P-256 key cannot fail.
		panic(err)
	}
	return der
}

// ParsePublicKey parses a key serialized by PublicBytes.
func ParsePublicKey(der []byte) (*ecdsa.PublicKey, error) {
	pub, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("parse public key: %w", err)
	}
	ec, ok := pub.(*ecdsa.PublicKey)
	if !ok {
		return nil, errors.New("parse public key: not an ECDSA key")
	}
	return ec, nil
}

// Sign signs the digest: an ASN.1 DER ECDSA signature for real keys, a
// padded HMAC tag for simulated ones.
func (k *KeyPair) Sign(digest types.Digest) ([]byte, error) {
	if k.priv == nil {
		return simTag(k.simMaster, k.simID, digest), nil
	}
	sig, err := ecdsa.SignASN1(rand.Reader, k.priv, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sign: %w", err)
	}
	return sig, nil
}

// Verify reports whether sig is a valid signature over digest by pub.
func Verify(pub *ecdsa.PublicKey, digest types.Digest, sig []byte) bool {
	return ecdsa.VerifyASN1(pub, digest[:], sig)
}

// Registry maps replica identities to their public keys. The registry is
// populated during system setup (Astro is permissioned: replica key pairs
// are distributed in advance) and is immutable afterwards except through
// reconfiguration, which adds keys for joining replicas.
//
// A registry may additionally hold a simulation master secret (EnableSim),
// against which simulated signatures verify; see KeyPair.
type Registry struct {
	mu        sync.RWMutex
	keys      map[types.ReplicaID]*ecdsa.PublicKey
	sim       map[types.ReplicaID]bool
	simMaster []byte
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		keys: make(map[types.ReplicaID]*ecdsa.PublicKey),
		sim:  make(map[types.ReplicaID]bool),
	}
}

// EnableSim installs the shared master secret for simulated signatures.
func (r *Registry) EnableSim(master []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.simMaster = make([]byte, len(master))
	copy(r.simMaster, master)
}

// Add registers the public key for a replica. Re-registering a replica
// overwrites its key; reconfiguration uses this when a replica re-joins.
func (r *Registry) Add(id types.ReplicaID, pub *ecdsa.PublicKey) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.keys[id] = pub
	delete(r.sim, id)
}

// AddSim registers a replica as using simulated signatures (EnableSim
// must have installed the master secret).
func (r *Registry) AddSim(id types.ReplicaID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sim[id] = true
	delete(r.keys, id)
}

// AddSerialized registers a key serialized by KeyPair.PublicBytes,
// handling both kinds.
func (r *Registry) AddSerialized(id types.ReplicaID, pub []byte) error {
	if len(pub) > len(simKeyMagic) && string(pub[:len(simKeyMagic)]) == simKeyMagic {
		r.AddSim(id)
		return nil
	}
	parsed, err := ParsePublicKey(pub)
	if err != nil {
		return err
	}
	r.Add(id, parsed)
	return nil
}

// Lookup returns the ECDSA public key for a replica, or nil if the
// replica is unknown or uses simulated signatures.
func (r *Registry) Lookup(id types.ReplicaID) *ecdsa.PublicKey {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.keys[id]
}

// Known reports whether the replica has any registered key.
func (r *Registry) Known(id types.ReplicaID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.keys[id] != nil || r.sim[id]
}

// VerifySig verifies a signature by the given replica over digest,
// dispatching on the replica's key kind. Unknown replicas never verify.
func (r *Registry) VerifySig(id types.ReplicaID, digest types.Digest, sig []byte) bool {
	r.mu.RLock()
	pub := r.keys[id]
	isSim := r.sim[id]
	master := r.simMaster
	r.mu.RUnlock()
	switch {
	case pub != nil:
		return Verify(pub, digest, sig)
	case isSim && master != nil:
		return hmac.Equal(sig, simTag(master, id, digest))
	default:
		return false
	}
}

// Len returns the number of registered replicas.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.keys) + len(r.sim)
}

// PartialSig is one replica's signature over a shared digest.
type PartialSig struct {
	Replica types.ReplicaID
	Sig     []byte
}

// Certificate is a set of partial signatures over a common digest. A
// certificate with 2f+1 signatures proves Byzantine-quorum endorsement;
// one with f+1 signatures proves endorsement by at least one correct
// replica (the threshold for Astro II dependency certificates).
type Certificate struct {
	Sigs []PartialSig
}

// Add appends a partial signature, keeping signatures sorted by replica ID
// for a canonical encoding. Adding a duplicate replica is a no-op.
func (c *Certificate) Add(ps PartialSig) {
	i := sort.Search(len(c.Sigs), func(i int) bool { return c.Sigs[i].Replica >= ps.Replica })
	if i < len(c.Sigs) && c.Sigs[i].Replica == ps.Replica {
		return
	}
	c.Sigs = append(c.Sigs, PartialSig{})
	copy(c.Sigs[i+1:], c.Sigs[i:])
	c.Sigs[i] = ps
}

// Len returns the number of distinct signers.
func (c *Certificate) Len() int { return len(c.Sigs) }

// Errors returned by VerifyCertificate.
var (
	ErrCertTooSmall   = errors.New("certificate: below threshold")
	ErrCertBadSig     = errors.New("certificate: invalid signature")
	ErrCertUnknownKey = errors.New("certificate: unknown signer")
	ErrCertDuplicate  = errors.New("certificate: duplicate signer")
)

// VerifyCertificate checks that cert carries at least threshold valid
// signatures over digest from distinct replicas registered in reg and,
// if membership is non-nil, that every signer satisfies it (used to
// restrict certificates to the replicas of a specific shard).
func VerifyCertificate(reg *Registry, cert Certificate, digest types.Digest, threshold int, membership func(types.ReplicaID) bool) error {
	if len(cert.Sigs) < threshold {
		return fmt.Errorf("%w: have %d, need %d", ErrCertTooSmall, len(cert.Sigs), threshold)
	}
	seen := make(map[types.ReplicaID]struct{}, len(cert.Sigs))
	valid := 0
	for _, ps := range cert.Sigs {
		if _, dup := seen[ps.Replica]; dup {
			return fmt.Errorf("%w: replica %d", ErrCertDuplicate, ps.Replica)
		}
		seen[ps.Replica] = struct{}{}
		if membership != nil && !membership(ps.Replica) {
			continue
		}
		if !reg.Known(ps.Replica) {
			return fmt.Errorf("%w: replica %d", ErrCertUnknownKey, ps.Replica)
		}
		if !reg.VerifySig(ps.Replica, digest, ps.Sig) {
			return fmt.Errorf("%w: replica %d", ErrCertBadSig, ps.Replica)
		}
		valid++
	}
	if valid < threshold {
		return fmt.Errorf("%w: %d valid of %d needed", ErrCertTooSmall, valid, threshold)
	}
	return nil
}

// LinkAuthenticator derives and applies pairwise HMAC-SHA256 keys for
// channel authentication between replicas — the MAC scheme of Astro I.
// All instances sharing the same master secret derive identical link keys,
// emulating the pre-distributed pairwise keys of a permissioned deployment.
type LinkAuthenticator struct {
	self   types.ReplicaID
	master []byte

	mu    sync.Mutex
	cache map[types.ReplicaID][]byte
}

// TagSize is the length of a link MAC tag in bytes.
const TagSize = sha256.Size

// NewLinkAuthenticator creates an authenticator for replica self using the
// shared master secret.
func NewLinkAuthenticator(self types.ReplicaID, master []byte) *LinkAuthenticator {
	m := make([]byte, len(master))
	copy(m, master)
	return &LinkAuthenticator{
		self:   self,
		master: m,
		cache:  make(map[types.ReplicaID][]byte),
	}
}

// linkKey returns the symmetric key for the link between self and peer.
// The key depends only on the unordered pair, so both ends derive the same
// key: K = HMAC(master, min || max).
func (a *LinkAuthenticator) linkKey(peer types.ReplicaID) []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if k, ok := a.cache[peer]; ok {
		return k
	}
	lo, hi := a.self, peer
	if lo > hi {
		lo, hi = hi, lo
	}
	mac := hmac.New(sha256.New, a.master)
	var buf [8]byte
	buf[0] = byte(lo >> 24)
	buf[1] = byte(lo >> 16)
	buf[2] = byte(lo >> 8)
	buf[3] = byte(lo)
	buf[4] = byte(hi >> 24)
	buf[5] = byte(hi >> 16)
	buf[6] = byte(hi >> 8)
	buf[7] = byte(hi)
	mac.Write(buf[:])
	k := mac.Sum(nil)
	a.cache[peer] = k
	return k
}

// Tag computes the MAC tag for a message sent on the link to peer.
func (a *LinkAuthenticator) Tag(peer types.ReplicaID, msg []byte) []byte {
	mac := hmac.New(sha256.New, a.linkKey(peer))
	mac.Write(msg)
	return mac.Sum(nil)
}

// VerifyTag reports whether tag authenticates msg on the link to peer.
func (a *LinkAuthenticator) VerifyTag(peer types.ReplicaID, msg, tag []byte) bool {
	want := a.Tag(peer, msg)
	return hmac.Equal(want, tag)
}
