package e2e

import (
	"sync"
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/sim"
	"astro/internal/types"
)

// retry is the hardened-client policy every e2e scenario drives with:
// generous attempts, short per-attempt timeouts, sequence resync — the
// loop that rides out packet loss, partitions, and mid-run restarts.
var retry = core.RetryPolicy{Attempts: 15, Timeout: 2 * time.Second, Resync: true}

// TestTCPByzantineChaosMatrix re-runs the PR 7 behavior-at-f scenario
// matrix across real processes: four astro-node replicas on loopback
// TCP, each with light seeded chaos on its outbound link, replica 3
// running one Byzantine behavior via -fault. Hardened clients on the
// correct representatives must settle through it, and the correct
// replicas' quiescent snapshots must pass the full invariant battery.
func TestTCPByzantineChaosMatrix(t *testing.T) {
	kinds := []sim.FaultKind{
		sim.FaultEquivocate, sim.FaultWithholdCommits, sim.FaultForgeRefs,
		sim.FaultNackStorm, sim.FaultStaleView,
	}
	for _, kind := range kinds {
		t.Run(string(kind), func(t *testing.T) {
			chaosArgs := func(seed string) []string {
				return []string{"-chaos", "drop=0.005,dup=0.005,delay=100us-500us", "-chaos-seed", seed}
			}
			c := startTCPCluster(t, 4, map[int][]string{
				0: chaosArgs("10"),
				1: chaosArgs("11"),
				2: chaosArgs("12"),
				3: append(chaosArgs("13"), "-fault", string(kind)),
			})

			// Clients 1 and 2 are represented by correct replicas 1 and 2
			// (repOf = id % 4); the faulty seat represents nobody here, so
			// even withhold-commits must not stall anyone.
			for _, id := range []types.ClientID{1, 2} {
				cl := c.client(id)
				for k := 0; k < 4; k++ {
					if _, err := cl.PayReliable(id%2+1, 1, retry); err != nil {
						t.Fatalf("client %d payment %d under %s: %v", id, k, kind, err)
					}
				}
			}

			// The audit quantifies over correct replicas, as the paper does.
			c.waitCleanAudit(map[types.ReplicaID]bool{3: true}, 30*time.Second)
		})
	}
}

// TestTCPPartitionHealKillRestart is the full crash-partition gauntlet on
// real TCP: every node runs the same -chaos-schedule, so the cluster
// partitions {0,1,2} | {3} in lockstep; mid-partition, replica 1 is
// killed with SIGKILL (no flush — the WAL is all that survives) and
// restarted against the same data directory while the partition still
// holds; the schedule then heals. Clients pump hardened payments
// throughout. Afterwards all four replicas — including the one that was
// partitioned and the one that died — must converge to snapshots that
// pass conservation, FIFO, and agreement.
func TestTCPPartitionHealKillRestart(t *testing.T) {
	schedule := []string{"-chaos-schedule", "1s:part=0 1 2|3;4s:heal", "-chaos-seed", "21"}
	c := startTCPCluster(t, 4, map[int][]string{
		0: schedule, 1: schedule, 2: schedule, 3: schedule,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	settled := make([]int, 4)
	// Tighter policy than the matrix test: a goroutine only notices stop
	// between payments, so one worst-case PayReliable bounds the drain
	// after the load window. 10×1s rides out the ~3s partition (during
	// which chaos cuts the minority side off from everyone, clients
	// included) without stretching shutdown past ~15s.
	pol := core.RetryPolicy{Attempts: 10, Timeout: time.Second, Resync: true}
	for _, id := range []types.ClientID{1, 2, 3} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := c.client(id)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := cl.PayReliable(id%3+1, 1, pol); err == nil {
					settled[id]++
				}
			}
		}()
	}

	time.Sleep(1500 * time.Millisecond) // partition is up
	c.kill9(1)
	time.Sleep(1 * time.Second)
	c.restart(1) // recovers from WAL + peer catch-up, no chaos second life
	time.Sleep(2 * time.Second) // heal fires at t=4s on the survivors

	time.Sleep(1500 * time.Millisecond) // post-heal load window
	close(stop)
	wg.Wait()

	for _, id := range []types.ClientID{1, 2, 3} {
		if settled[id] == 0 {
			t.Errorf("client %d settled nothing through the gauntlet", id)
		}
	}
	c.waitCleanAudit(nil, 45*time.Second)
}

// TestTCPHostileClientEdge points the Byzantine-client attack suite at a
// real deployment over TCP: the hostile identity seeds genuine settled
// history, then storms its representative with every attack class while
// an honest client sharing that representative keeps settling. The
// representative's edge counters (read over the wire with the stats
// query) must show the storm was absorbed, and the quiescent audit must
// be clean.
func TestTCPHostileClientEdge(t *testing.T) {
	c := startTCPCluster(t, 4, nil)

	// Client 9 and client 1 share representative 1 (repOf = id % 4).
	hostile := sim.NewHostileClient(9, c.repOf(9), 0, c.clientMux(9), nil)
	settled, frame, err := hostile.SettleOne(2, 5, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	go hostile.Storm(stop, settled, frame)

	honest := c.client(1)
	for k := 0; k < 5; k++ {
		if _, err := honest.PayReliable(2, 1, retry); err != nil {
			close(stop)
			t.Fatalf("honest payment %d starved by the storm: %v", k, err)
		}
	}
	close(stop)

	es, err := honest.QueryStats(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if es.Total() == 0 {
		t.Fatal("representative absorbed the storm without counting a single rejection")
	}
	if es.Conflicting == 0 || es.Spoofed == 0 || es.SeqZero == 0 ||
		es.FutureSeq == 0 || es.SettledReplay == 0 || es.Malformed == 0 ||
		es.CreditOutsider == 0 {
		t.Fatalf("attack classes not all counted at the representative: %+v", es)
	}
	c.waitCleanAudit(nil, 30*time.Second)
}
