// Package e2e runs the robustness scenario matrix across real
// cmd/astro-node processes on real TCP — the multi-process counterpart of
// the in-memory internal/sim suite. The harness builds astro-node once
// per test binary, launches clusters on loopback ports with per-node
// flags (chaos rules, partition schedules, Byzantine behaviors, WAL
// directories), drives them with in-process hardened clients over
// tcpnet, and closes every scenario with the out-of-process invariant
// audit: per-replica state snapshots fetched over the reconfig
// state-transfer channel and checked with sim.AuditExports.
//
// These tests are CI-sized (`make chaos-smoke-tcp`); the open-ended form
// of the same palette is cmd/astro-soak (`make soak`).
package e2e

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"astro/internal/core"
	"astro/internal/reconfig"
	"astro/internal/sim"
	"astro/internal/transport"
	"astro/internal/transport/tcpnet"
	"astro/internal/types"
)

const genesis = types.Amount(1_000_000) // astro-node's default

var nodeBin string

// TestMain builds cmd/astro-node once; every scenario execs the same
// binary, exactly as an operator would.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "astro-e2e-bin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	nodeBin = filepath.Join(dir, "astro-node")
	cmd := exec.Command("go", "build", "-o", nodeBin, "astro/cmd/astro-node")
	cmd.Dir = "../.." // package dir is <repo>/internal/e2e
	if out, err := cmd.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "e2e: build astro-node: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// tcpCluster is a handle on n astro-node processes bound to loopback.
type tcpCluster struct {
	t        *testing.T
	n        int
	addrs    []string
	peerArg  string
	peerMap  map[transport.NodeID]string
	ids      []types.ReplicaID
	dataRoot string
	procs    []*exec.Cmd
	logs     []*os.File
}

// startTCPCluster reserves n loopback ports, then launches one WAL-backed
// astro-node per id with any per-node extra flags (chaos rules,
// schedules, -fault). Processes are killed at test cleanup; their stdout
// lands in <tmp>/r<i>.log for post-mortems.
func startTCPCluster(t *testing.T, n int, extra map[int][]string) *tcpCluster {
	t.Helper()
	c := &tcpCluster{
		t: t, n: n,
		peerMap:  make(map[transport.NodeID]string),
		dataRoot: t.TempDir(),
		procs:    make([]*exec.Cmd, n),
		logs:     make([]*os.File, n),
	}
	// Reserve all ports before releasing any, to keep the (unavoidable)
	// close-to-bind race window as small as possible.
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		c.addrs = append(c.addrs, ln.Addr().String())
		c.ids = append(c.ids, types.ReplicaID(i))
		c.peerMap[transport.NodeID(i)] = ln.Addr().String()
		if i > 0 {
			c.peerArg += ","
		}
		c.peerArg += fmt.Sprintf("%d=%s", i, ln.Addr().String())
	}
	for _, ln := range listeners {
		ln.Close()
	}
	for i := 0; i < n; i++ {
		c.launch(i, extra[i])
	}
	t.Cleanup(func() {
		for i := range c.procs {
			c.stop(i)
		}
		if t.Failed() {
			for i := range c.logs {
				if b, err := os.ReadFile(filepath.Join(c.dataRoot, fmt.Sprintf("r%d.log", i))); err == nil {
					t.Logf("--- replica %d log ---\n%s", i, b)
				}
			}
		}
	})
	c.waitReachable(10 * time.Second)
	return c
}

func (c *tcpCluster) launch(i int, extra []string) {
	c.t.Helper()
	args := []string{
		"-id", strconv.Itoa(i),
		"-listen", c.addrs[i],
		"-peers", c.peerArg,
		"-batch", "8",
		"-batch-delay", "1ms",
		"-data-dir", filepath.Join(c.dataRoot, fmt.Sprintf("r%d", i)),
		"-wal-snapshot-every", "16",
	}
	args = append(args, extra...)
	logf, err := os.OpenFile(filepath.Join(c.dataRoot, fmt.Sprintf("r%d.log", i)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.t.Fatal(err)
	}
	cmd := exec.Command(nodeBin, args...)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		c.t.Fatalf("start replica %d: %v", i, err)
	}
	if c.logs[i] != nil {
		c.logs[i].Close()
	}
	c.procs[i], c.logs[i] = cmd, logf
}

func (c *tcpCluster) stop(i int) {
	if p := c.procs[i]; p != nil && p.Process != nil {
		p.Process.Kill()
		p.Wait()
		c.procs[i] = nil
	}
}

// kill9 SIGKILLs replica i — no flush, no shutdown hook; the WAL is all
// that survives.
func (c *tcpCluster) kill9(i int) {
	c.t.Helper()
	p := c.procs[i]
	if p == nil || p.Process == nil {
		c.t.Fatalf("replica %d not running", i)
	}
	if err := p.Process.Signal(syscall.SIGKILL); err != nil {
		c.t.Fatalf("kill -9 replica %d: %v", i, err)
	}
	p.Wait()
	c.procs[i] = nil
}

// restart relaunches replica i against its existing WAL directory, with
// fresh extra flags (typically none: a recovering node comes back clean
// even if its first life ran chaos or a Byzantine behavior).
func (c *tcpCluster) restart(i int, extra ...string) {
	c.t.Helper()
	c.launch(i, extra)
}

func (c *tcpCluster) waitReachable(timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	for _, addr := range c.addrs {
		for {
			conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
			if err == nil {
				conn.Close()
				break
			}
			if time.Now().After(deadline) {
				c.t.Fatalf("replica at %s never started listening", addr)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func (c *tcpCluster) repOf(id types.ClientID) types.ReplicaID {
	return c.ids[uint64(id)%uint64(len(c.ids))]
}

// clientMux opens a client-side tcpnet endpoint (dial-only) and its mux.
func (c *tcpCluster) clientMux(id types.ClientID) *transport.Mux {
	c.t.Helper()
	ep, err := tcpnet.New(tcpnet.Config{
		Self:  transport.ClientNode(id),
		Peers: c.peerMap,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { ep.Close() })
	return transport.NewMux(ep)
}

// client returns a hardened client on its own TCP connection.
func (c *tcpCluster) client(id types.ClientID) *core.Client {
	return core.NewClient(id, c.repOf, c.clientMux(id))
}

// audit fetches one state snapshot per (non-excluded) replica over the
// reconfig channel and runs the stateless invariant battery. An
// unreachable replica is an error, not a violation.
func (c *tcpCluster) audit(mux *transport.Mux, exclude map[types.ReplicaID]bool) ([]sim.Violation, error) {
	exports := make(map[types.ReplicaID][]core.AccountExport)
	for _, rid := range c.ids {
		if exclude[rid] {
			continue
		}
		snap, err := reconfig.FetchState(reconfig.FetchConfig{
			Mux: mux, Peers: []types.ReplicaID{rid}, Timeout: 5 * time.Second,
		})
		if err != nil {
			return nil, fmt.Errorf("replica %d snapshot: %w", rid, err)
		}
		accs, err := core.DecodeAuditAccounts(snap)
		if err != nil {
			return nil, fmt.Errorf("replica %d snapshot decode: %w", rid, err)
		}
		exports[rid] = accs
	}
	return sim.AuditExports(core.AstroII, genesis, exports), nil
}

// waitCleanAudit polls the audit until it comes back clean: right after a
// load window the cut is legitimately transient (in-flight credits,
// restart catch-up), so violations only count if they persist past the
// deadline.
func (c *tcpCluster) waitCleanAudit(exclude map[types.ReplicaID]bool, timeout time.Duration) {
	c.t.Helper()
	mux := c.clientMux(types.ClientID(90))
	start := time.Now()
	deadline := start.Add(timeout)
	var lastVs []sim.Violation
	var lastErr error
	for {
		vs, err := c.audit(mux, exclude)
		if err == nil && len(vs) == 0 {
			c.t.Logf("audit clean after %v (last dirty cut: %d violations, err=%v)",
				time.Since(start).Round(time.Millisecond), len(lastVs), lastErr)
			return
		}
		lastVs, lastErr = vs, err
		if time.Now().After(deadline) {
			if err != nil {
				c.t.Fatalf("audit never completed: %v", err)
			}
			for _, v := range vs {
				c.t.Errorf("VIOLATION %v", v)
			}
			c.t.Fatalf("audit still dirty after %v: %d violations", timeout, len(vs))
		}
		time.Sleep(250 * time.Millisecond)
	}
}
