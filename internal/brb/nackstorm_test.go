package brb

// NACK-path hardening: a CHAINNACK storm must cost the origin bounded
// work — exactly one legacy resend per NACK, nothing superlinear — and
// NACKs from outside the group must be ignored entirely (no resend, no
// sent-set churn, no counter movement). Run under -race: the storm
// hammers the dispatch goroutine while the origin's own protocol runs.

import (
	"testing"
	"time"

	"astro/internal/transport"
	"astro/internal/types"
)

// waitStat polls read until it returns want or the deadline passes.
func waitStat(t *testing.T, what string, want uint64, read func() uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if read() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s = %d, want >= %d", what, read(), want)
}

func TestChainNackStormBoundedWork(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	slot, err := h.bcs[0].Broadcast([]byte("stormed-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
		t.Fatalf("deliveries = %d, want 4", got)
	}
	origin := h.bcs[0].(*Signed)
	base := origin.ChainRefStats()

	const storm = 50
	missing := []types.Digest{types.HashBytes([]byte("claimed-missing"))}
	nack := EncodeChainNack(0, slot, missing)
	for i := 0; i < storm; i++ {
		if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, nack); err != nil {
			t.Fatal(err)
		}
	}
	waitStat(t, "NacksReceived", base.NacksReceived+storm, func() uint64 {
		return origin.ChainRefStats().NacksReceived
	})
	st := origin.ChainRefStats()
	if resends := st.FullSends - base.FullSends; resends > storm {
		t.Errorf("amplification: %d full resends for %d NACKs", resends, storm)
	}

	// NACKs for a slot the origin never committed cost nothing beyond the
	// counter — no resend at all.
	preFull := origin.ChainRefStats().FullSends
	ghost := EncodeChainNack(0, slot+1000, missing)
	for i := 0; i < storm; i++ {
		if err := h.muxes[3].Send(transport.ReplicaNode(0), transport.ChanBRB, ghost); err != nil {
			t.Fatal(err)
		}
	}
	waitStat(t, "NacksReceived", st.NacksReceived+storm, func() uint64 {
		return origin.ChainRefStats().NacksReceived
	})
	if got := origin.ChainRefStats().FullSends; got != preFull {
		t.Errorf("uncommitted-slot NACKs triggered %d resends", got-preFull)
	}
}

func TestChainNackNonMemberIgnored(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	slot, err := h.bcs[0].Broadcast([]byte("gated-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
		t.Fatalf("deliveries = %d, want 4", got)
	}
	origin := h.bcs[0].(*Signed)
	base := origin.ChainRefStats()

	// A replica-space node outside the group's peer list.
	outsider := transport.NewMux(h.net.Node(transport.ReplicaNode(50)))
	t.Cleanup(outsider.Close)
	nack := EncodeChainNack(0, slot, []types.Digest{types.HashBytes([]byte("x"))})
	const storm = 50
	for i := 0; i < storm; i++ {
		if err := outsider.Send(transport.ReplicaNode(0), transport.ChanBRB, nack); err != nil {
			t.Fatal(err)
		}
	}
	// The membership gate runs before any counter or resend; give the
	// frames time to drain through dispatch, then check nothing moved.
	time.Sleep(200 * time.Millisecond)
	st := origin.ChainRefStats()
	if st.NacksReceived != base.NacksReceived || st.FullSends != base.FullSends {
		t.Errorf("non-member NACKs processed: nacks %d->%d, fullsends %d->%d",
			base.NacksReceived, st.NacksReceived, base.FullSends, st.FullSends)
	}
}
