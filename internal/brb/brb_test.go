package brb

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// harness builds a BRB group of n replicas over a memnet.
type harness struct {
	t     *testing.T
	net   *memnet.Network
	n, f  int
	peers []types.ReplicaID
	muxes []*transport.Mux
	bcs   []Broadcaster

	mu       sync.Mutex
	dlv      map[types.ReplicaID][]delivery // per receiving replica
	dlvCh    chan struct{}
	registry *crypto.Registry
	keys     []*crypto.KeyPair
}

type protocol int

const (
	protoBracha protocol = iota + 1
	protoSigned
)

func newHarness(t *testing.T, proto protocol, n int, opts ...func(*Config)) *harness {
	t.Helper()
	h := &harness{
		t:     t,
		net:   memnet.New(memnet.WithSeed(42)),
		n:     n,
		f:     types.MaxFaults(n),
		dlv:   make(map[types.ReplicaID][]delivery),
		dlvCh: make(chan struct{}, 1<<16),
	}
	t.Cleanup(h.net.Close)
	for i := 0; i < n; i++ {
		h.peers = append(h.peers, types.ReplicaID(i))
	}
	if proto == protoSigned {
		h.registry = crypto.NewRegistry()
		for i := 0; i < n; i++ {
			kp := crypto.MustGenerateKeyPair()
			h.keys = append(h.keys, kp)
			h.registry.Add(types.ReplicaID(i), kp.Public())
		}
	}
	for i := 0; i < n; i++ {
		self := types.ReplicaID(i)
		mux := transport.NewMux(h.net.Node(transport.ReplicaNode(self)))
		h.muxes = append(h.muxes, mux)
		cfg := Config{
			Mux:   mux,
			Self:  self,
			Peers: h.peers,
			F:     h.f,
			Deliver: func(origin types.ReplicaID, slot uint64, payload []byte) {
				h.mu.Lock()
				h.dlv[self] = append(h.dlv[self], delivery{origin: origin, slot: slot, payload: payload})
				h.mu.Unlock()
				h.dlvCh <- struct{}{}
			},
		}
		for _, o := range opts {
			o(&cfg)
		}
		var bc Broadcaster
		var err error
		switch proto {
		case protoBracha:
			bc, err = NewBracha(cfg)
		case protoSigned:
			cfg.Keys = h.keys[i]
			cfg.Registry = h.registry
			bc, err = NewSigned(cfg)
		}
		if err != nil {
			t.Fatalf("replica %d: %v", i, err)
		}
		h.bcs = append(h.bcs, bc)
	}
	return h
}

// waitDeliveries blocks until total deliveries across all replicas reach
// want, or the timeout elapses.
func (h *harness) waitDeliveries(want int, timeout time.Duration) int {
	h.t.Helper()
	deadline := time.After(timeout)
	for {
		h.mu.Lock()
		total := 0
		for _, d := range h.dlv {
			total += len(d)
		}
		h.mu.Unlock()
		if total >= want {
			return total
		}
		select {
		case <-h.dlvCh:
		case <-deadline:
			h.mu.Lock()
			total := 0
			for _, d := range h.dlv {
				total += len(d)
			}
			h.mu.Unlock()
			return total
		}
	}
}

func (h *harness) deliveriesAt(r types.ReplicaID) []delivery {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]delivery, len(h.dlv[r]))
	copy(out, h.dlv[r])
	return out
}

func testBothProtocols(t *testing.T, f func(t *testing.T, proto protocol)) {
	t.Run("bracha", func(t *testing.T) { f(t, protoBracha) })
	t.Run("signed", func(t *testing.T) { f(t, protoSigned) })
}

func TestBroadcastDeliversEverywhere(t *testing.T) {
	testBothProtocols(t, func(t *testing.T, proto protocol) {
		h := newHarness(t, proto, 4)
		if _, err := h.bcs[0].Broadcast([]byte("payment-1")); err != nil {
			t.Fatal(err)
		}
		if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
			t.Fatalf("deliveries = %d, want 4", got)
		}
		for r := 0; r < 4; r++ {
			d := h.deliveriesAt(types.ReplicaID(r))
			if len(d) != 1 || string(d[0].payload) != "payment-1" || d[0].origin != 0 || d[0].slot != 1 {
				t.Errorf("replica %d: %+v", r, d)
			}
		}
	})
}

func TestFIFOOrderPerOrigin(t *testing.T) {
	testBothProtocols(t, func(t *testing.T, proto protocol) {
		h := newHarness(t, proto, 4)
		const k = 10
		for i := 1; i <= k; i++ {
			if _, err := h.bcs[1].Broadcast([]byte(fmt.Sprintf("m%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		if got := h.waitDeliveries(4*k, 10*time.Second); got != 4*k {
			t.Fatalf("deliveries = %d, want %d", got, 4*k)
		}
		for r := 0; r < 4; r++ {
			d := h.deliveriesAt(types.ReplicaID(r))
			for i, dv := range d {
				if dv.slot != uint64(i+1) {
					t.Fatalf("replica %d: delivery %d has slot %d", r, i, dv.slot)
				}
				if want := fmt.Sprintf("m%d", i+1); string(dv.payload) != want {
					t.Fatalf("replica %d: payload %q, want %q", r, dv.payload, want)
				}
			}
		}
	})
}

func TestConcurrentOrigins(t *testing.T) {
	testBothProtocols(t, func(t *testing.T, proto protocol) {
		h := newHarness(t, proto, 7)
		const per = 5
		for r := 0; r < 7; r++ {
			for i := 0; i < per; i++ {
				if _, err := h.bcs[r].Broadcast([]byte(fmt.Sprintf("r%d-m%d", r, i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := 7 * 7 * per
		if got := h.waitDeliveries(want, 15*time.Second); got != want {
			t.Fatalf("deliveries = %d, want %d", got, want)
		}
		// Per-origin FIFO at every replica.
		for r := 0; r < 7; r++ {
			last := make(map[types.ReplicaID]uint64)
			for _, dv := range h.deliveriesAt(types.ReplicaID(r)) {
				if dv.slot != last[dv.origin]+1 {
					t.Fatalf("replica %d: origin %d slot %d after %d", r, dv.origin, dv.slot, last[dv.origin])
				}
				last[dv.origin] = dv.slot
			}
		}
	})
}

func TestAgreementUnderEquivocation(t *testing.T) {
	// A Byzantine origin sends PREPARE with payload A to half the
	// replicas and payload B to the other half, for the same slot.
	// Agreement: no two correct replicas may deliver different payloads;
	// (with a split vote, typically nobody delivers).
	t.Run("bracha", func(t *testing.T) {
		h := newHarness(t, protoBracha, 4)
		byz := h.net.Node(transport.ReplicaNode(99))
		mux := transport.NewMux(byz)
		_ = mux
		// Use replica 3's identity slot space: we forge PREPAREs "from"
		// node 99, which onMessage rejects unless peer == origin. So
		// instead replace replica 3's broadcaster usage: craft prepares
		// directly from node 3's endpoint... Simpler: drive replica 3's
		// mux directly.
		a := EncodePrepare(3, 1, []byte("A"))
		b := EncodePrepare(3, 1, []byte("B"))
		auth3 := crypto.NewLinkAuthenticator(3, nil) // harness uses no Auth
		_ = auth3
		for i := 0; i < 2; i++ {
			_ = h.muxes[3].Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, a)
		}
		_ = h.muxes[3].Send(transport.ReplicaNode(2), transport.ChanBRB, b)
		time.Sleep(300 * time.Millisecond)
		checkAgreement(t, h)
	})
	t.Run("signed", func(t *testing.T) {
		h := newHarness(t, protoSigned, 4)
		a := EncodePrepare(3, 1, []byte("A"))
		b := EncodePrepare(3, 1, []byte("B"))
		for i := 0; i < 2; i++ {
			_ = h.muxes[3].Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, a)
		}
		_ = h.muxes[3].Send(transport.ReplicaNode(2), transport.ChanBRB, b)
		time.Sleep(300 * time.Millisecond)
		checkAgreement(t, h)
	})
}

func checkAgreement(t *testing.T, h *harness) {
	t.Helper()
	h.mu.Lock()
	defer h.mu.Unlock()
	byID := make(map[instanceID]string)
	for r, ds := range h.dlv {
		for _, dv := range ds {
			id := instanceID{origin: dv.origin, slot: dv.slot}
			if prev, ok := byID[id]; ok && prev != string(dv.payload) {
				t.Fatalf("agreement violated at replica %d: id %+v delivered %q and %q", r, id, prev, dv.payload)
			}
			byID[id] = string(dv.payload)
		}
	}
}

func TestBrachaToleratesCrashFaults(t *testing.T) {
	// With n=4, f=1: one replica crashed, broadcasts from a correct
	// origin still deliver at the remaining 3 replicas.
	h := newHarness(t, protoBracha, 4)
	h.net.Crash(transport.ReplicaNode(3))
	if _, err := h.bcs[0].Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(3, 5*time.Second); got < 3 {
		t.Fatalf("deliveries = %d, want >= 3", got)
	}
}

func TestSignedToleratesCrashFaults(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	h.net.Crash(transport.ReplicaNode(3))
	if _, err := h.bcs[0].Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(3, 5*time.Second); got < 3 {
		t.Fatalf("deliveries = %d, want >= 3", got)
	}
}

func TestValidatorWithholdsEndorsement(t *testing.T) {
	testBothProtocols(t, func(t *testing.T, proto protocol) {
		reject := func(cfg *Config) {
			cfg.Validator = func(origin types.ReplicaID, slot uint64, payload []byte) bool {
				return string(payload) != "bad"
			}
		}
		h := newHarness(t, proto, 4, reject)
		if _, err := h.bcs[0].Broadcast([]byte("bad")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(300 * time.Millisecond)
		if got := h.waitDeliveries(1, 100*time.Millisecond); got != 0 {
			t.Fatalf("rejected payload delivered %d times", got)
		}
		// A good payload still goes through, in the next slot.
		if _, err := h.bcs[0].Broadcast([]byte("good")); err != nil {
			t.Fatal(err)
		}
		// Slot 1 was never delivered, so slot 2 must be held back by FIFO.
		time.Sleep(300 * time.Millisecond)
		if got := h.waitDeliveries(1, 100*time.Millisecond); got != 0 {
			t.Fatal("slot 2 delivered before slot 1 (FIFO violation)")
		}
	})
}

func TestBrachaMACAuthenticationRejectsForgery(t *testing.T) {
	master := []byte("shared")
	withAuth := func(cfg *Config) {
		cfg.Auth = crypto.NewLinkAuthenticator(cfg.Self, master)
	}
	h := newHarness(t, protoBracha, 4, withAuth)
	// Legit broadcast flows.
	if _, err := h.bcs[0].Broadcast([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(4, 5*time.Second); got != 4 {
		t.Fatalf("authenticated broadcast: deliveries = %d", got)
	}
	// An attacker without the master secret injects a forged READY storm
	// for a bogus instance; replicas must discard it.
	evil := transport.NewMux(h.net.Node(transport.ReplicaNode(50)))
	forged := EncodeReady(0, 2, []byte("forged"))
	for i := 0; i < 4; i++ {
		msg := append(append([]byte{}, forged...), make([]byte, 32)...) // zero tag
		_ = evil.Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, msg)
	}
	time.Sleep(200 * time.Millisecond)
	if got := h.waitDeliveries(5, 100*time.Millisecond); got != 4 {
		t.Fatalf("forged traffic caused deliveries: %d", got)
	}
}

func TestSignedRejectsForgedCommit(t *testing.T) {
	h := newHarness(t, protoSigned, 4)
	// A Byzantine node crafts a COMMIT with a garbage certificate.
	evil := transport.NewMux(h.net.Node(transport.ReplicaNode(50)))
	var cert crypto.Certificate
	cert.Add(crypto.PartialSig{Replica: 0, Sig: []byte("junk")})
	cert.Add(crypto.PartialSig{Replica: 1, Sig: []byte("junk")})
	cert.Add(crypto.PartialSig{Replica: 2, Sig: []byte("junk")})
	msg := EncodeCommit(0, 1, []byte("stolen"), cert)
	for i := 0; i < 4; i++ {
		_ = evil.Send(transport.ReplicaNode(types.ReplicaID(i)), transport.ChanBRB, msg)
	}
	time.Sleep(200 * time.Millisecond)
	if got := h.waitDeliveries(1, 100*time.Millisecond); got != 0 {
		t.Fatalf("forged commit delivered %d times", got)
	}
}

func TestSignedMessageComplexityLinear(t *testing.T) {
	// O(N) check: messages per broadcast should be ~3N (prepare + ack +
	// commit), versus Bracha's ~2N²+N.
	n := 10
	h := newHarness(t, protoSigned, n)
	h.net.ResetStats()
	if _, err := h.bcs[0].Broadcast([]byte("count me")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(n, 5*time.Second); got != n {
		t.Fatalf("deliveries = %d", got)
	}
	msgs := h.net.Stats().MessagesSent
	if max := uint64(4 * n); msgs > max {
		t.Errorf("signed BRB used %d messages, want <= %d (O(N))", msgs, max)
	}
}

func TestBrachaMessageComplexityQuadratic(t *testing.T) {
	n := 10
	h := newHarness(t, protoBracha, n)
	h.net.ResetStats()
	if _, err := h.bcs[0].Broadcast([]byte("count me")); err != nil {
		t.Fatal(err)
	}
	if got := h.waitDeliveries(n, 5*time.Second); got != n {
		t.Fatalf("deliveries = %d", got)
	}
	msgs := h.net.Stats().MessagesSent
	// prepare N + echo N² + ready N² = 2N²+N (some duplicate-suppression
	// slack allowed).
	if min := uint64(n * n); msgs < min {
		t.Errorf("bracha used %d messages, expected >= %d (O(N²))", msgs, min)
	}
}

func TestConfigValidation(t *testing.T) {
	net := memnet.New()
	defer net.Close()
	mux := transport.NewMux(net.Node(1))
	_, err := NewBracha(Config{Mux: mux, Self: 0, Peers: []types.ReplicaID{0, 1}, F: 1,
		Deliver: func(types.ReplicaID, uint64, []byte) {}})
	if err == nil {
		t.Error("n < 3f+1 accepted")
	}
	_, err = NewBracha(Config{Mux: mux, Self: 0, Peers: []types.ReplicaID{0, 1, 2, 3}, F: 1})
	if err == nil {
		t.Error("nil Deliver accepted")
	}
	_, err = NewSigned(Config{Mux: mux, Self: 0, Peers: []types.ReplicaID{0, 1, 2, 3}, F: 1,
		Deliver: func(types.ReplicaID, uint64, []byte) {}})
	if err == nil {
		t.Error("signed without keys accepted")
	}
}

func TestDeliveredCounter(t *testing.T) {
	testBothProtocols(t, func(t *testing.T, proto protocol) {
		h := newHarness(t, proto, 4)
		for i := 0; i < 3; i++ {
			if _, err := h.bcs[2].Broadcast([]byte("p")); err != nil {
				t.Fatal(err)
			}
		}
		if got := h.waitDeliveries(12, 5*time.Second); got != 12 {
			t.Fatalf("deliveries = %d", got)
		}
		for r := 0; r < 4; r++ {
			if got := h.bcs[r].Delivered(2); got != 3 {
				t.Errorf("replica %d Delivered(2) = %d, want 3", r, got)
			}
			if got := h.bcs[r].Delivered(0); got != 0 {
				t.Errorf("replica %d Delivered(0) = %d, want 0", r, got)
			}
		}
	})
}

func TestFIFOHelper(t *testing.T) {
	f := newFIFO()
	// out-of-order arrival: slots 2,3 buffered until 1 arrives.
	if out := f.ready(instanceID{origin: 1, slot: 2}, []byte("b")); len(out) != 0 {
		t.Fatalf("slot 2 delivered early: %v", out)
	}
	if out := f.ready(instanceID{origin: 1, slot: 3}, []byte("c")); len(out) != 0 {
		t.Fatalf("slot 3 delivered early: %v", out)
	}
	out := f.ready(instanceID{origin: 1, slot: 1}, []byte("a"))
	if len(out) != 3 {
		t.Fatalf("got %d deliveries, want 3", len(out))
	}
	for i, dv := range out {
		if dv.slot != uint64(i+1) {
			t.Errorf("delivery %d slot %d", i, dv.slot)
		}
	}
	// duplicates and stale slots ignored
	if out := f.ready(instanceID{origin: 1, slot: 1}, []byte("a")); len(out) != 0 {
		t.Error("stale slot redelivered")
	}
	// independent origins do not interfere
	if out := f.ready(instanceID{origin: 2, slot: 1}, []byte("z")); len(out) != 1 {
		t.Error("origin 2 blocked by origin 1")
	}
}
