package brb

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// Chain-by-digest references (the wire-level counterpart of the PR 2/3
// signing amortization): a chain of k batch-signed acks appears in the
// certificate of every one of the k commits it endorses, so the legacy
// COMMITBATCH form re-transmits each signer's full chain — 44 bytes per
// slot per signer — once per SLOT. The reference protocol transmits a
// chain to each destination at most once:
//
//   - CHAINDEF carries the chain itself, content-addressed: the receiver
//     recomputes AckChainDigest and stores the chain in a bounded per-peer
//     LRU. A CHAINDEF is not authenticated — a bogus one only caches a
//     chain no valid signature will ever match;
//   - COMMITREF is a COMMIT whose certificate signatures name their chains
//     by digest (plus the instance's index in the chain) instead of
//     carrying them inline. The sender tracks, per destination, which
//     digests it has already transmitted (an LRU of the same capacity and
//     policy as the receiver's, so both sides age in lockstep) and emits
//     the CHAINDEF ahead of the first reference on the same FIFO channel;
//   - CHAINNACK is the fallback: a receiver that cannot resolve enough
//     references for a quorum — the chain was evicted, or never seen —
//     names the missing digests, and the origin degrades to the
//     self-contained legacy COMMITBATCH for that slot (and forgets the
//     digests were sent, so the next wave re-defines them). Delivery is
//     therefore never stalled by a cache miss, only detoured through the
//     PR 3 encoding. The same fallback absorbs transports that do not
//     keep per-link FIFO (a jittered memnet latency model can deliver a
//     reference before its definition): a premature reference costs one
//     NACK round trip, never a lost commit. A Byzantine NACK stream costs
//     one bounded unicast resend per NACK (the legacy form the peer could
//     have requested anyway) and evicts nothing from anyone else's cache.
//
// Legacy ACKBATCH/COMMITBATCH remain fully decodable; single-slot commits
// (kindCommit) are untouched. The net effect at chain cap 32: chain bytes
// per committed payment drop from quorum x chain-length x 44 to the
// amortized quorum x 44 + quorum x 37 of one CHAINDEF per wave plus the
// per-commit references — O(1) in chain length (see BENCH_PR4.json).

// chainCacheEntries bounds the per-peer chain caches, on both sides: a
// receiver keeps at most this many defined chains per sending peer (so one
// peer can never evict another's chains), and a sender remembers at most
// this many transmitted digests per destination. At the maxSignBatch chain
// length this is ~90 KiB per peer, and deep enough to cover several
// settlement waves of in-flight commits.
const chainCacheEntries = 64

// ChainRefStats counts the chain-reference protocol's traffic at one
// replica, for tests and the benchmark harness: CHAINDEF/COMMITREF/
// self-contained commit sends (single-slot all-plain certificates and
// NACK-triggered resends both count under FullSends), inbound reference
// cache hits and misses, and NACK round trips. The shape is shared with
// the credit channel's identical protocol (types.RefStats).
type ChainRefStats = types.RefStats

// learnChain caches a chain defined by peer under its digest, then
// re-runs any references parked waiting for it (lazy-CHAINDEF mode).
// Chains longer than maxSignBatch are never produced by an honest drain
// loop and are not cached (bounding per-entry memory); the commit they
// arrived in still verifies through its own inline copy.
func (s *Signed) learnChain(peer types.ReplicaID, digest types.Digest, chain []ChainEntry) {
	if len(chain) == 0 || len(chain) > maxSignBatch {
		return
	}
	s.chainMu.Lock()
	s.chainsKnown.Put(peer, digest, chain)
	s.chainMu.Unlock()
	for _, pr := range s.takeWaiting(digest) {
		s.handleCommitRef(pr.id, pr.peer, pr.payload, pr.sigs)
	}
}

// knownChain resolves a chain reference from peer, marking it most
// recently used (mirroring the sender's touch on every reference). A miss
// in peer's section falls through to every other peer's: chains are
// content-addressed (the digest is recomputed from the learned bytes), so
// whoever defined a chain, it is THE chain — and in lazy-CHAINDEF mode a
// chain demanded once (or signed by this replica itself) resolves the
// references every origin sends afterwards.
func (s *Signed) knownChain(peer types.ReplicaID, digest types.Digest) ([]ChainEntry, bool) {
	s.chainMu.Lock()
	defer s.chainMu.Unlock()
	if chain, ok := s.chainsKnown.Get(peer, digest); ok {
		return chain, true
	}
	return s.chainsKnown.GetAny(digest)
}

// pendingRef is a COMMITREF parked while its chain definition is in
// flight (lazy-CHAINDEF mode): the receiver NACKs a missing digest once
// and parks later references to it instead of NACK-storming, then re-runs
// them when the definition lands. The slices alias the transport frame —
// both endpoints hand each message a private buffer, the same ownership
// the delivery queue already relies on.
type pendingRef struct {
	id      instanceID
	peer    types.ReplicaID
	payload []byte
	sigs    []refSig
}

// maxWaitingRefs bounds the total parked references. Overflow (or a
// per-digest pileup beyond one wave's worth) degrades to NACKing the
// reference instead of parking it — the origin's answer then re-sends it,
// so delivery retries through the bounded NACK loop rather than growing
// memory. Honest steady state parks at most one wave per origin.
const (
	maxWaitingRefs         = 256
	maxWaitingRefsPerChain = maxSignBatch + 8
)

// parkRef buffers an unresolvable reference under the first digest it is
// missing. It reports (parked, nack): nack is true when the caller should
// send the CHAINNACK — the first waiter for the digest demands the
// definition, and an overflow victim falls back to the NACK round trip.
func (s *Signed) parkRef(d types.Digest, pr pendingRef) (parked, nack bool) {
	s.chainMu.Lock()
	defer s.chainMu.Unlock()
	waiting := s.refsWaiting[d]
	if s.refsWaitingCount >= maxWaitingRefs || len(waiting) >= maxWaitingRefsPerChain {
		return false, true
	}
	s.refsWaiting[d] = append(waiting, pr)
	s.refsWaitingCount++
	return true, len(waiting) == 0
}

// takeWaiting removes and returns the references parked on digest.
func (s *Signed) takeWaiting(digest types.Digest) []pendingRef {
	s.chainMu.Lock()
	defer s.chainMu.Unlock()
	waiting, ok := s.refsWaiting[digest]
	if !ok {
		return nil
	}
	delete(s.refsWaiting, digest)
	s.refsWaitingCount -= len(waiting)
	return waiting
}

// chainSentTo reports whether digest was already transmitted to dest,
// touching the entry so sender and receiver age their caches identically.
// The caller must NOT rely on the answer across a cache-capacity window —
// a false negative only costs a duplicate CHAINDEF, a false positive is
// repaired by the NACK fallback.
func (s *Signed) chainSentTo(dest types.ReplicaID, digest types.Digest) bool {
	s.chainMu.Lock()
	defer s.chainMu.Unlock()
	return s.chainsSent.Contains(dest, digest)
}

// markChainSent records that digest has been transmitted to dest. Called
// after the CHAINDEF send returns, so any goroutine observing the mark
// orders its own sends behind the definition on the FIFO channel.
func (s *Signed) markChainSent(dest types.ReplicaID, digest types.Digest) {
	s.chainMu.Lock()
	s.chainsSent.Put(dest, digest, struct{}{})
	s.chainMu.Unlock()
}

// forgetChainsSent drops digests from dest's sent-set (NACK handling: the
// receiver evicted them, so the next reference must re-define).
func (s *Signed) forgetChainsSent(dest types.ReplicaID, digests []types.Digest) {
	s.chainMu.Lock()
	for _, d := range digests {
		s.chainsSent.Delete(dest, d)
	}
	s.chainMu.Unlock()
}

// --- wire forms ---

// chainDefSize is the exact size of a CHAINDEF message.
func chainDefSize(chain []ChainEntry) int {
	return 1 + 4 + len(chain)*chainEntrySize
}

func appendChainDef(w *wire.Writer, chain []ChainEntry) {
	w.U8(kindChainDef)
	appendChain(w, chain)
}

// EncodeChainDef encodes a CHAINDEF message. Exported for tests that forge
// Byzantine traffic.
func EncodeChainDef(chain []ChainEntry) []byte {
	w := wire.NewWriter(chainDefSize(chain))
	appendChainDef(w, chain)
	return w.Bytes()
}

// decodeChainDef parses a CHAINDEF payload after its kind byte. Defined
// chains are bounded by maxSignBatch — the longest an honest drain
// produces — not the looser certificate bound.
func decodeChainDef(r *wire.Reader) ([]ChainEntry, error) {
	chain, err := decodeChain(r)
	if err != nil {
		return nil, err
	}
	if len(chain) == 0 || len(chain) > maxSignBatch {
		return nil, fmt.Errorf("brb: chain definition of %d outside [1,%d]", len(chain), maxSignBatch)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return chain, nil
}

// refSig is one signature of a COMMITREF certificate before resolution:
// either a plain single-slot signature, or a reference to a previously
// defined chain together with this instance's index in it.
type refSig struct {
	Replica types.ReplicaID
	Sig     []byte
	HasRef  bool
	Ref     types.Digest
	Idx     uint32
}

// per-signature reference modes on the wire.
const (
	refModePlain byte = 0
	refModeChain byte = 1
)

// commitRefSize is the exact size of a COMMITREF message.
func commitRefSize(payload []byte, sigs []refSig) int {
	n := headerSize + 4 + len(payload) + 4
	for _, s := range sigs {
		n += 4 + 4 + len(s.Sig) + 1
		if s.HasRef {
			n += 32 + 4
		}
	}
	return n
}

func appendCommitRef(w *wire.Writer, origin types.ReplicaID, slot uint64, payload []byte, sigs []refSig) {
	appendHeader(w, kindCommitRef, origin, slot)
	w.Chunk(payload)
	w.U32(uint32(len(sigs)))
	for _, s := range sigs {
		w.U32(uint32(s.Replica))
		w.Chunk(s.Sig)
		if s.HasRef {
			w.U8(refModeChain)
			w.Bytes32(s.Ref)
			w.U32(s.Idx)
		} else {
			w.U8(refModePlain)
		}
	}
}

// EncodeCommitRef encodes a COMMIT whose certificate references chains by
// digest. Exported for tests.
func EncodeCommitRef(origin types.ReplicaID, slot uint64, payload []byte, sigs []refSig) []byte {
	w := wire.NewWriter(commitRefSize(payload, sigs))
	appendCommitRef(w, origin, slot, payload, sigs)
	return w.Bytes()
}

func decodeCommitRef(r *wire.Reader) ([]refSig, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > maxAckCertSigs {
		return nil, fmt.Errorf("brb: commit-ref cert of %d signatures exceeds cap", n)
	}
	sigs := make([]refSig, 0, n)
	for i := uint32(0); i < n; i++ {
		var s refSig
		s.Replica = types.ReplicaID(r.U32())
		s.Sig = r.Chunk()
		mode := r.U8()
		if err := r.Err(); err != nil {
			return nil, err
		}
		switch mode {
		case refModePlain:
		case refModeChain:
			s.HasRef = true
			s.Ref = r.Bytes32()
			s.Idx = r.U32()
			if err := r.Err(); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("brb: unknown reference mode %d", mode)
		}
		sigs = append(sigs, s)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return sigs, nil
}

// chainNackSize is the exact size of a CHAINNACK message.
func chainNackSize(missing []types.Digest) int {
	return headerSize + wire.DigestListSize(len(missing))
}

func appendChainNack(w *wire.Writer, origin types.ReplicaID, slot uint64, missing []types.Digest) {
	appendHeader(w, kindChainNack, origin, slot)
	wire.AppendDigestList(w, missing)
}

// EncodeChainNack encodes a CHAINNACK message. Exported for tests.
func EncodeChainNack(origin types.ReplicaID, slot uint64, missing []types.Digest) []byte {
	w := wire.NewWriter(chainNackSize(missing))
	appendChainNack(w, origin, slot, missing)
	return w.Bytes()
}

// maxNackDigests bounds NACK digest lists on both sides: the decoder
// rejects longer lists, and the sender truncates to it (a certificate can
// reference up to quorum distinct chains, which in very large groups
// exceeds this). Truncation is harmless — naming ANY missing digest
// triggers the same full self-contained resend.
const maxNackDigests = chainCacheEntries

func decodeChainNack(r *wire.Reader) ([]types.Digest, error) {
	missing, err := wire.ReadDigestList[types.Digest](r, maxNackDigests)
	if err != nil {
		return nil, err
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return missing, nil
}
