package brb

import (
	"fmt"
	"sync"

	"astro/internal/transport"
	"astro/internal/types"
	"astro/internal/wire"
)

// Bracha implements BRB with the echo/ready protocol of Bracha & Toueg,
// the broadcast layer of Astro I (paper §IV-A, Listing 5).
//
// Per instance: the origin PREPAREs the payload to all; every replica
// ECHOes the first payload it sees for the instance (subject to the
// validator); a Byzantine quorum (2f+1) of matching ECHOes triggers a
// READY, as do f+1 READYs (amplification); 2f+1 matching READYs deliver,
// in per-origin slot order.
type Bracha struct {
	cfg Config

	mu      sync.Mutex
	nextOut uint64
	inst    map[instanceID]*brachaInstance
	order   *fifo
}

var _ Broadcaster = (*Bracha)(nil)

type brachaInstance struct {
	echoSent  bool
	readySent bool
	delivered bool
	// votes are tallied per payload digest so a Byzantine origin sending
	// different payloads to different replicas splits the vote and no
	// payload reaches a quorum.
	echoes   map[types.Digest]map[types.ReplicaID]struct{}
	readys   map[types.Digest]map[types.ReplicaID]struct{}
	payloads map[types.Digest][]byte
}

func newBrachaInstance() *brachaInstance {
	return &brachaInstance{
		echoes:   make(map[types.Digest]map[types.ReplicaID]struct{}),
		readys:   make(map[types.Digest]map[types.ReplicaID]struct{}),
		payloads: make(map[types.Digest][]byte),
	}
}

// NewBracha creates the protocol instance and registers it on the mux's
// BRB channel.
func NewBracha(cfg Config) (*Bracha, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &Bracha{
		cfg:     cfg,
		nextOut: cfg.FirstSlot,
		inst:    make(map[instanceID]*brachaInstance),
		order:   newFIFO(),
	}
	cfg.Mux.Register(transport.ChanBRB, b.onMessage)
	return b, nil
}

// Broadcast implements Broadcaster.
func (b *Bracha) Broadcast(payload []byte) (uint64, error) {
	b.mu.Lock()
	b.nextOut++
	slot := b.nextOut
	b.mu.Unlock()
	msg := EncodePrepare(b.cfg.Self, slot, payload)
	b.sendToAll(msg)
	return slot, nil
}

// Delivered implements Broadcaster.
func (b *Bracha) Delivered(origin types.ReplicaID) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.order.delivered[origin]
}

// sendToAll sends msg to every peer, including self (self-sends are
// delivered through the local dispatch path).
func (b *Bracha) sendToAll(msg []byte) {
	for _, p := range b.cfg.Peers {
		b.sendTo(p, msg)
	}
}

func (b *Bracha) sendTo(peer types.ReplicaID, msg []byte) {
	out := msg
	if b.cfg.Auth != nil {
		tag := b.cfg.Auth.Tag(peer, msg)
		buf := make([]byte, 0, len(msg)+len(tag))
		buf = append(buf, msg...)
		buf = append(buf, tag...)
		out = buf
	}
	// Errors mean the destination is unreachable (crashed); reliable
	// broadcast tolerates message loss to faulty nodes by design.
	_ = b.cfg.Mux.Send(transport.ReplicaNode(peer), transport.ChanBRB, out)
}

func (b *Bracha) onMessage(from transport.NodeID, payload []byte) {
	peer := types.ReplicaID(from)
	if b.cfg.Auth != nil {
		if len(payload) < 32 {
			return
		}
		msg, tag := payload[:len(payload)-32], payload[len(payload)-32:]
		if !b.cfg.Auth.VerifyTag(peer, msg, tag) {
			return // forged or corrupted
		}
		payload = msg
	}
	r := wire.NewReader(payload)
	kind := r.U8()
	origin := types.ReplicaID(r.U32())
	slot := r.U64()
	body := r.Chunk()
	if r.Err() != nil {
		return
	}
	id := instanceID{origin: origin, slot: slot}
	switch kind {
	case kindPrepare:
		// Only the origin itself may open its instances; a spoofed
		// PREPARE from another replica is ignored.
		if peer != origin {
			return
		}
		b.handlePrepare(id, body)
	case kindEcho:
		b.handleEcho(id, peer, body)
	case kindReady:
		b.handleReady(id, peer, body)
	}
}

func (b *Bracha) handlePrepare(id instanceID, payload []byte) {
	b.mu.Lock()
	in := b.instance(id)
	if in.echoSent || in.delivered {
		b.mu.Unlock()
		return
	}
	if b.cfg.Validator != nil && !b.cfg.Validator(id.origin, id.slot, payload) {
		b.mu.Unlock()
		return
	}
	in.echoSent = true
	b.mu.Unlock()
	b.sendToAll(EncodeEcho(id.origin, id.slot, payload))
}

func (b *Bracha) handleEcho(id instanceID, peer types.ReplicaID, payload []byte) {
	d := types.HashBytes(payload)
	b.mu.Lock()
	in := b.instance(id)
	if in.delivered {
		b.mu.Unlock()
		return
	}
	in.payloads[d] = payload
	set := in.echoes[d]
	if set == nil {
		set = make(map[types.ReplicaID]struct{})
		in.echoes[d] = set
	}
	set[peer] = struct{}{}
	sendReady := len(set) >= b.cfg.quorum() && !in.readySent
	if sendReady {
		in.readySent = true
	}
	b.mu.Unlock()
	if sendReady {
		b.sendToAll(EncodeReady(id.origin, id.slot, payload))
	}
}

func (b *Bracha) handleReady(id instanceID, peer types.ReplicaID, payload []byte) {
	d := types.HashBytes(payload)
	b.mu.Lock()
	in := b.instance(id)
	if in.delivered {
		b.mu.Unlock()
		return
	}
	in.payloads[d] = payload
	set := in.readys[d]
	if set == nil {
		set = make(map[types.ReplicaID]struct{})
		in.readys[d] = set
	}
	set[peer] = struct{}{}

	// Amplification: f+1 READYs for the same payload imply at least one
	// correct replica saw an echo quorum; join in.
	sendReady := len(set) >= b.cfg.F+1 && !in.readySent
	if sendReady {
		in.readySent = true
	}

	var deliveries []delivery
	if len(set) >= b.cfg.quorum() {
		in.delivered = true
		// Retain nothing; tallies for a delivered instance are garbage.
		b.inst[id] = deliveredMarker
		if b.cfg.Unordered {
			// Recovery mode, mirroring Signed: slots missed while down are
			// never retransmitted, so waiting for a consecutive run would
			// wedge the origin forever. The marker above dedups; the
			// high-water mark keeps Delivered() meaningful.
			if id.slot > b.order.delivered[id.origin] {
				b.order.delivered[id.origin] = id.slot
			}
			deliveries = []delivery{{origin: id.origin, slot: id.slot, payload: payload}}
		} else {
			deliveries = b.order.ready(id, payload)
		}
	}
	b.mu.Unlock()

	if sendReady {
		b.sendToAll(EncodeReady(id.origin, id.slot, payload))
	}
	for _, dv := range deliveries {
		b.cfg.Deliver(dv.origin, dv.slot, dv.payload)
	}
}

// deliveredMarker replaces a delivered instance's state so duplicate
// messages are cheap to ignore and tallies can be collected.
var deliveredMarker = &brachaInstance{delivered: true}

func (b *Bracha) instance(id instanceID) *brachaInstance {
	in, ok := b.inst[id]
	if !ok {
		in = newBrachaInstance()
		b.inst[id] = in
	}
	return in
}

// String implements fmt.Stringer for diagnostics.
func (b *Bracha) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Sprintf("bracha{self=%d peers=%d f=%d out=%d}", b.cfg.Self, len(b.cfg.Peers), b.cfg.F, b.nextOut)
}
