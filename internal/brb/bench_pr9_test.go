package brb

// PR 9 evidence: the goroutine-free commit pipeline. Latency pair —
// continuation-style commit coordinators (default) vs the goroutine-per-
// commit baseline (Config.CommitSpawn), both on the same ECDSA N=4
// broadcast path. Wire pair — chain-definition bytes per payment under
// lazy CHAINDEF (steady state sends none; a NACK demands one) vs the
// eager per-destination definition, and the tabled fallback resend
// (COMMITTAB, message-level chain table) vs the legacy COMMITBATCH with
// inline chains. All byte accounting encodes the exact messages each
// mode sends, from the same tree.

import (
	"sync"
	"testing"
	"time"

	"astro/internal/crypto"
	"astro/internal/transport"
	"astro/internal/transport/memnet"
	"astro/internal/types"
)

// benchSignedECDSA is the N=4 real-ECDSA broadcast pipeline with a config
// hook, shared by the continuation/spawn latency pair and the PR 2 ack
// pipeline benchmark.
func benchSignedECDSA(b *testing.B, opt func(*Config)) {
	net := memnet.New()
	defer net.Close()
	peers := make([]types.ReplicaID, 4)
	registry := crypto.NewRegistry()
	var keys []*crypto.KeyPair
	for i := range peers {
		peers[i] = types.ReplicaID(i)
		keys = append(keys, crypto.MustGenerateKeyPair())
		registry.Add(types.ReplicaID(i), keys[i].Public())
	}
	var mu sync.Mutex
	delivered := 0
	cond := sync.NewCond(&mu)
	var bcs []*Signed
	for i := 0; i < 4; i++ {
		mux := transport.NewMux(net.Node(transport.ReplicaNode(types.ReplicaID(i))))
		cfg := Config{
			Mux: mux, Self: types.ReplicaID(i), Peers: peers, F: 1,
			Deliver: func(types.ReplicaID, uint64, []byte) {
				mu.Lock()
				delivered++
				cond.Broadcast()
				mu.Unlock()
			},
			Keys:     keys[i],
			Registry: registry,
		}
		if opt != nil {
			opt(&cfg)
		}
		s, err := NewSigned(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bcs = append(bcs, s)
	}
	wait := func(total int) {
		mu.Lock()
		for delivered < total {
			cond.Wait()
		}
		mu.Unlock()
	}

	payload := make([]byte, 8192) // a 256-payment batch
	const window = 64
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcs[0].Broadcast(payload); err != nil {
			b.Fatal(err)
		}
		if i >= window {
			wait((i - window + 1) * 4)
		}
	}
	done := make(chan struct{})
	go func() {
		wait(b.N * 4)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatal("deliveries timed out")
	}
	b.StopTimer()
}

// BenchmarkCommitContinuationECDSA: commits verify as detached
// continuations on the verifier's lanes — zero goroutines per commit.
func BenchmarkCommitContinuationECDSA(b *testing.B) {
	benchSignedECDSA(b, nil)
}

// BenchmarkCommitSpawnECDSA: the goroutine-per-commit coordinator
// baseline the continuations replaced.
func BenchmarkCommitSpawnECDSA(b *testing.B) {
	benchSignedECDSA(b, func(c *Config) { c.CommitSpawn = true })
}

// BenchmarkChainDefWireBytes: chain-definition traffic per committed
// payment for one aligned wave (chain cap 32, quorum 3, 256-byte
// payloads), per destination. Eager mode sends the CHAINDEF ahead of the
// first reference; lazy steady state sends none (the destination learned
// the chain from its own ACKBATCH handling); the lazy worst case pays a
// NACK round trip — one NACK, the demanded definition, and the re-sent
// reference, on top of the original reference the receiver parked.
func BenchmarkChainDefWireBytes(b *testing.B) {
	const (
		slots   = maxSignBatch
		quorum  = 3
		payload = 256
	)
	payloads := make([][]byte, slots)
	chain := make([]ChainEntry, slots)
	for i := range chain {
		payloads[i] = make([]byte, payload)
		chain[i] = ChainEntry{Origin: 0, Slot: uint64(i + 1), Digest: SignedDigest(0, uint64(i+1), payloads[i])}
	}
	cd := AckChainDigest(chain)
	sig := make([]byte, 71) // ECDSA-sized; byte accounting needs no validity
	refs := func() int {
		total := 0
		for i := 0; i < slots; i++ {
			var sigs []refSig
			for q := 0; q < quorum; q++ {
				sigs = append(sigs, refSig{Replica: types.ReplicaID(q), Sig: sig, HasRef: true, Ref: cd, Idx: uint32(i)})
			}
			total += len(EncodeCommitRef(0, uint64(i+1), payloads[i], sigs))
		}
		return total
	}

	b.Run("eager", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = len(EncodeChainDef(chain)) + refs()
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
		b.ReportMetric(float64(len(EncodeChainDef(chain)))/float64(slots), "defbytes/payment")
	})
	b.Run("lazy-warm", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = refs()
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
		b.ReportMetric(0, "defbytes/payment")
	})
	b.Run("lazy-nack", func(b *testing.B) {
		var total, def int
		for n := 0; n < b.N; n++ {
			def = len(EncodeChainNack(0, 1, []types.Digest{cd})) + len(EncodeChainDef(chain))
			// The original references were sent and parked; the demand
			// answer re-sends the first slot's reference with the defs.
			var sigs []refSig
			for q := 0; q < quorum; q++ {
				sigs = append(sigs, refSig{Replica: types.ReplicaID(q), Sig: sig, HasRef: true, Ref: cd, Idx: 0})
			}
			total = refs() + def + len(EncodeCommitRef(0, 1, payloads[0], sigs))
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
		b.ReportMetric(float64(def)/float64(slots), "defbytes/payment")
	})
}

// BenchmarkCommitTabWireBytes: the self-contained fallback resend — the
// legacy COMMITBATCH repeats each signer's inline chain per slot; the
// tabled COMMITTAB encodes each distinct chain once per message.
func BenchmarkCommitTabWireBytes(b *testing.B) {
	const (
		slots   = maxSignBatch
		quorum  = 3
		payload = 256
	)
	payloads := make([][]byte, slots)
	chain := make([]ChainEntry, slots)
	for i := range chain {
		payloads[i] = make([]byte, payload)
		chain[i] = ChainEntry{Origin: 0, Slot: uint64(i + 1), Digest: SignedDigest(0, uint64(i+1), payloads[i])}
	}
	cd := AckChainDigest(chain)
	sig := make([]byte, 71)
	var cert AckCert
	for q := 0; q < quorum; q++ {
		cert.Sigs = append(cert.Sigs, AckSig{Replica: types.ReplicaID(q), Sig: sig, Chain: chain, ChainDigest: cd})
	}

	b.Run("legacy-batch", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for i := 0; i < slots; i++ {
				total += len(EncodeCommitBatch(0, uint64(i+1), payloads[i], cert))
			}
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
	})
	b.Run("tabled", func(b *testing.B) {
		var total int
		for n := 0; n < b.N; n++ {
			total = 0
			for i := 0; i < slots; i++ {
				total += len(EncodeCommitTab(0, uint64(i+1), payloads[i], cert))
			}
		}
		b.ReportMetric(float64(total)/float64(slots), "bytes/payment")
	})
}
