package brb

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// Batch-level ack signing (the hash-chain amortization of ROADMAP's
// "Batch-level signing" item): a replica that has several acks pending
// while an earlier ECDSA is in flight signs them all at once. The single
// signature covers a *chain* — the ordered list of (origin, slot, ack
// digest) entries — so one signing operation endorses many BRB instances,
// possibly across different origins. Each origin receives the full chain
// and extracts the entries addressed to it; the signature only verifies
// against the whole chain, so the chain rides along inside commit
// certificates (AckSig.Chain) and every verifier recomputes the same chain
// digest. The verifier memo then collapses the cost on the receiving side
// too: a chain of k slots costs one ECDSA verification for all k commits
// it appears in.
//
// Single pending acks keep the original one-slot wire form (kindAck, and
// plain crypto.Certificate commits), so batching is purely an under-load
// optimization and the protocol remains wire-compatible with peers that
// never batch.
//
// The queue/drain/adaptive-threshold scheduling that feeds these chains
// is generalized as verifier.ChainSigner (shared with the payment layer's
// settlement-wave CREDIT signing); this file keeps the BRB-specific chain
// digests and wire forms.

// ChainEntry is one element of a batch-signed ack chain: the instance it
// acknowledges and the ack digest that a single-slot signature would have
// covered (SignedDigest of the instance).
type ChainEntry struct {
	Origin types.ReplicaID
	Slot   uint64
	Digest types.Digest
}

// AckSig is one signature of an ack certificate. Chain nil means the
// signature covers the instance's own ack digest (the single-slot form);
// otherwise it covers AckChainDigest(Chain), and it endorses an instance
// only if the chain carries that instance's entry.
type AckSig struct {
	Replica types.ReplicaID
	Sig     []byte
	Chain   []ChainEntry
	// ChainDigest memoizes AckChainDigest(Chain) when Chain is non-nil —
	// the origin computes it once while verifying the ACKBATCH, and the
	// chain-reference sender (sendCommit) keys CHAINDEF bookkeeping on it
	// without rehashing. Never encoded; receivers recompute from content.
	ChainDigest types.Digest
}

// AckCert is a quorum of ack signatures for one instance, possibly mixing
// single-slot and chain signatures. It generalizes crypto.Certificate,
// which remains the wire form when every signature is single-slot.
type AckCert struct {
	Sigs []AckSig
}

// Len returns the number of signatures gathered.
func (c AckCert) Len() int { return len(c.Sigs) }

// has reports whether the certificate already carries a signature by r.
func (c AckCert) has(r types.ReplicaID) bool {
	for _, s := range c.Sigs {
		if s.Replica == r {
			return true
		}
	}
	return false
}

// allPlain reports whether every signature is single-slot, i.e. the
// certificate can be downgraded to the legacy crypto.Certificate wire form.
func (c AckCert) allPlain() bool {
	for _, s := range c.Sigs {
		if s.Chain != nil {
			return false
		}
	}
	return true
}

// maxAckChain bounds decoded chain lengths (defense against hostile
// input); far above any batch a signer's drain loop accumulates.
const maxAckChain = 1024

// maxSignBatch caps how many pending acks one signature covers. The
// amortization gain is hyperbolic — 32 already cuts per-ack signing cost
// ~32× — while the wire cost is linear: every commit certificate carries
// each signer's full chain, so unbounded chains would bloat commits (and
// redundantly, once per signer). 32 keeps the chain overhead per
// certificate signature (32×44 B) comparable to the ECDSA it replaces.
const maxSignBatch = 32

// chainEntrySize is the wire size of one chain entry.
const chainEntrySize = 4 + 8 + 32

// chainContains reports whether the chain carries the entry for the given
// instance with the given ack digest.
func chainContains(chain []ChainEntry, id instanceID, d types.Digest) bool {
	for _, e := range chain {
		if e.Origin == id.origin && e.Slot == id.slot && e.Digest == d {
			return true
		}
	}
	return false
}

// AckChainDigest computes the digest a replica signs for a batch of acks:
// a domain-separated hash over the canonical chain encoding. The 0x44
// domain byte keeps chain signatures disjoint from single-slot ack
// signatures (0x42 inside SignedDigest), so neither can be replayed as
// the other.
func AckChainDigest(chain []ChainEntry) types.Digest {
	w := wire.AcquireWriter(5 + len(chain)*chainEntrySize)
	defer w.Release()
	w.U8(0x44) // domain: brb-ack-chain
	w.U32(uint32(len(chain)))
	for _, e := range chain {
		w.U32(uint32(e.Origin))
		w.U64(e.Slot)
		w.Bytes32(e.Digest)
	}
	return types.HashBytes(w.Bytes())
}

func appendChain(w *wire.Writer, chain []ChainEntry) {
	w.U32(uint32(len(chain)))
	for _, e := range chain {
		w.U32(uint32(e.Origin))
		w.U64(e.Slot)
		w.Bytes32(e.Digest)
	}
}

func decodeChain(r *wire.Reader) ([]ChainEntry, error) {
	n := r.U32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > maxAckChain {
		return nil, fmt.Errorf("brb: ack chain of %d exceeds cap", n)
	}
	if n == 0 {
		return nil, nil
	}
	chain := make([]ChainEntry, n)
	for i := range chain {
		chain[i].Origin = types.ReplicaID(r.U32())
		chain[i].Slot = r.U64()
		chain[i].Digest = r.Bytes32()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return chain, nil
}

// ackBatchSize is the exact size of an ACKBATCH message.
func ackBatchSize(chain []ChainEntry, sig []byte) int {
	return 1 + 4 + len(chain)*chainEntrySize + 4 + len(sig)
}

func appendAckBatch(w *wire.Writer, chain []ChainEntry, sig []byte) {
	w.U8(kindAckBatch)
	appendChain(w, chain)
	w.Chunk(sig)
}

// EncodeAckBatch encodes an ACKBATCH message: one signature over the
// chain digest, endorsing every instance the chain lists. Exported for
// tests that forge Byzantine traffic.
func EncodeAckBatch(chain []ChainEntry, sig []byte) []byte {
	w := wire.NewWriter(ackBatchSize(chain, sig))
	appendAckBatch(w, chain, sig)
	return w.Bytes()
}

// ackCertSize is the exact encoded size of an extended certificate.
func ackCertSize(cert AckCert) int {
	n := 4
	for _, s := range cert.Sigs {
		n += 4 + 4 + len(s.Sig) + 4 + len(s.Chain)*chainEntrySize
	}
	return n
}

func appendAckCert(w *wire.Writer, cert AckCert) {
	w.U32(uint32(len(cert.Sigs)))
	for _, s := range cert.Sigs {
		w.U32(uint32(s.Replica))
		w.Chunk(s.Sig)
		appendChain(w, s.Chain)
	}
}

// maxAckCertSigs mirrors crypto's decoded-certificate bound.
const maxAckCertSigs = 4096

func decodeAckCert(r *wire.Reader) (AckCert, error) {
	var cert AckCert
	n := r.U32()
	if err := r.Err(); err != nil {
		return cert, err
	}
	if n > maxAckCertSigs {
		return cert, fmt.Errorf("brb: ack cert of %d signatures exceeds cap", n)
	}
	cert.Sigs = make([]AckSig, 0, n)
	for i := uint32(0); i < n; i++ {
		id := types.ReplicaID(r.U32())
		sig := r.Chunk()
		if err := r.Err(); err != nil {
			return AckCert{}, err
		}
		chain, err := decodeChain(r)
		if err != nil {
			return AckCert{}, err
		}
		cert.Sigs = append(cert.Sigs, AckSig{Replica: id, Sig: sig, Chain: chain})
	}
	return cert, nil
}

// commitBatchSize is the exact size of a COMMITBATCH message.
func commitBatchSize(payload []byte, cert AckCert) int {
	return headerSize + 4 + len(payload) + ackCertSize(cert)
}

func appendCommitBatch(w *wire.Writer, origin types.ReplicaID, slot uint64, payload []byte, cert AckCert) {
	appendHeader(w, kindCommitBatch, origin, slot)
	w.Chunk(payload)
	appendAckCert(w, cert)
}

// EncodeCommitBatch encodes a COMMIT carrying an extended (chain-capable)
// certificate. Exported for tests.
func EncodeCommitBatch(origin types.ReplicaID, slot uint64, payload []byte, cert AckCert) []byte {
	w := wire.NewWriter(commitBatchSize(payload, cert))
	appendCommitBatch(w, origin, slot, payload, cert)
	return w.Bytes()
}
