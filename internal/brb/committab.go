package brb

import (
	"fmt"

	"astro/internal/types"
	"astro/internal/wire"
)

// Tabled commit encoding (PR 9): the self-contained successor of the
// legacy COMMITBATCH. The legacy form writes each signature's chain
// inline, so a certificate whose signers share a chain — or a message
// that must stay self-contained, like the NACK fallback resend — repeats
// identical chains. The tabled form interns every distinct chain once in
// a message-level table and has each signature name its chain by index:
//
//	kind origin slot | payload | U32 ntab (chain)* | U32 nsigs
//	    (replica sig idx)*
//
// where idx is an index into the table or noChainTabIdx for a single-slot
// signature. The receiver hashes each table entry exactly once (feeding
// both the chain cache and the certificate's memoized ChainDigest) and
// the decoded signatures share the table's chain slices, so downstream
// pointer-equality fast paths keep working. The same table shape scales
// to the batch level on the payment channel (core's CREDITBATCH and the
// v2 payment-batch encoding intern across a whole wave's certificates).
//
// Legacy kindCommitBatch remains fully decodable as the
// fallback/baseline, per the PR 1–5 convention.

// noChainTabIdx marks a single-slot signature in the tabled encoding.
const noChainTabIdx = ^uint32(0)

// commitTabSize is the exact size of a COMMITTAB message for the given
// table and certificate.
func commitTabSize(payload []byte, table [][]ChainEntry, cert AckCert) int {
	n := headerSize + 4 + len(payload) + 4
	for _, chain := range table {
		n += 4 + len(chain)*chainEntrySize
	}
	n += 4
	for _, s := range cert.Sigs {
		n += 4 + 4 + len(s.Sig) + 4
	}
	return n
}

// commitChainTable collects the distinct chains of a certificate, in
// first-appearance order, keyed by ChainDigest (computing it if the
// caller has not). It returns the table and each signature's index into
// it (noChainTabIdx for single-slot signatures). The stack-backed sizing
// mirrors core's dependency-certificate interning: quorum certificates
// rarely name more than a handful of chains.
func commitChainTable(cert AckCert) (table [][]ChainEntry, digests []types.Digest, idxs []uint32) {
	var stack [8]types.Digest
	digests = stack[:0]
	idxs = make([]uint32, len(cert.Sigs))
	for i := range cert.Sigs {
		a := &cert.Sigs[i]
		if a.Chain == nil {
			idxs[i] = noChainTabIdx
			continue
		}
		cd := a.ChainDigest
		if cd == (types.Digest{}) {
			cd = AckChainDigest(a.Chain)
		}
		found := false
		for j, d := range digests {
			if d == cd {
				idxs[i] = uint32(j)
				found = true
				break
			}
		}
		if !found {
			idxs[i] = uint32(len(table))
			table = append(table, a.Chain)
			digests = append(digests, cd)
		}
	}
	return table, digests, idxs
}

func appendCommitTab(w *wire.Writer, origin types.ReplicaID, slot uint64, payload []byte, table [][]ChainEntry, cert AckCert, idxs []uint32) {
	appendHeader(w, kindCommitTab, origin, slot)
	w.Chunk(payload)
	w.U32(uint32(len(table)))
	for _, chain := range table {
		appendChain(w, chain)
	}
	w.U32(uint32(len(cert.Sigs)))
	for i, s := range cert.Sigs {
		w.U32(uint32(s.Replica))
		w.Chunk(s.Sig)
		w.U32(idxs[i])
	}
}

// EncodeCommitTab encodes a COMMIT carrying a chain-tabled certificate.
// Exported for tests and the wire-cost benchmarks.
func EncodeCommitTab(origin types.ReplicaID, slot uint64, payload []byte, cert AckCert) []byte {
	table, _, idxs := commitChainTable(cert)
	w := wire.NewWriter(commitTabSize(payload, table, cert))
	appendCommitTab(w, origin, slot, payload, table, cert, idxs)
	return w.Bytes()
}

// maxCommitTabChains bounds the decoded chain table: a certificate of at
// most maxAckCertSigs signatures names at most that many distinct chains.
const maxCommitTabChains = maxAckCertSigs

// decodeCommitTab parses a COMMITTAB after the payload chunk, returning
// the certificate and the table digests (hashed once per table entry, for
// the caller's chain cache). Signatures share the table's chain slices
// and carry the memoized ChainDigest, so verification never rehashes.
func decodeCommitTab(r *wire.Reader) (AckCert, [][]ChainEntry, []types.Digest, error) {
	nt := r.U32()
	if err := r.Err(); err != nil {
		return AckCert{}, nil, nil, err
	}
	if nt > maxCommitTabChains {
		return AckCert{}, nil, nil, fmt.Errorf("brb: commit chain table of %d exceeds cap", nt)
	}
	table := make([][]ChainEntry, 0, nt)
	digests := make([]types.Digest, 0, nt)
	for i := uint32(0); i < nt; i++ {
		chain, err := decodeChain(r)
		if err != nil {
			return AckCert{}, nil, nil, err
		}
		if len(chain) == 0 || len(chain) > maxSignBatch {
			return AckCert{}, nil, nil, fmt.Errorf("brb: tabled chain of %d outside [1,%d]", len(chain), maxSignBatch)
		}
		table = append(table, chain)
		digests = append(digests, AckChainDigest(chain))
	}
	ns := r.U32()
	if err := r.Err(); err != nil {
		return AckCert{}, nil, nil, err
	}
	if ns > maxAckCertSigs {
		return AckCert{}, nil, nil, fmt.Errorf("brb: tabled cert of %d signatures exceeds cap", ns)
	}
	cert := AckCert{Sigs: make([]AckSig, 0, ns)}
	for i := uint32(0); i < ns; i++ {
		id := types.ReplicaID(r.U32())
		sig := r.Chunk()
		idx := r.U32()
		if err := r.Err(); err != nil {
			return AckCert{}, nil, nil, err
		}
		a := AckSig{Replica: id, Sig: sig}
		if idx != noChainTabIdx {
			if idx >= uint32(len(table)) {
				return AckCert{}, nil, nil, fmt.Errorf("brb: chain table index %d of %d", idx, len(table))
			}
			a.Chain = table[idx]
			a.ChainDigest = digests[idx]
		}
		cert.Sigs = append(cert.Sigs, a)
	}
	if err := r.Finish(); err != nil {
		return AckCert{}, nil, nil, err
	}
	return cert, table, digests, nil
}
